// Digital image retrieval with the paper's proposed high-bandwidth I/O
// interface (§5.2): an application receives a large image as an immutable,
// potentially non-contiguous buffer aggregate and consumes it through the
// generator interface at the granularity of its own data unit (a scanline),
// copying only when a scanline straddles a fragment boundary.
//
//   ./build/examples/image_retrieval
#include <cstdio>
#include <vector>

#include "src/fbuf/fbuf_system.h"
#include "src/ipc/rpc.h"
#include "src/msg/generator.h"
#include "src/msg/message.h"
#include "src/vm/machine.h"

using namespace fbufs;

namespace {

constexpr std::uint64_t kWidth = 1024;
constexpr std::uint64_t kHeight = 768;
constexpr std::uint64_t kScanline = kWidth;  // 8-bit pixels: 1 KB per line
constexpr std::uint64_t kImageBytes = kWidth * kHeight;
// The file server's transfer unit — deliberately not a multiple of the
// scanline, so some scanlines straddle fragment seams.
constexpr std::uint64_t kPduBytes = 45000;

}  // namespace

int main() {
  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  Domain* file_server = machine.CreateDomain("image-server");
  Domain* viewer = machine.CreateDomain("viewer");
  const PathId path = fsys.paths().Register({file_server->id(), viewer->id()});

  std::printf("== image retrieval through the buffer-aggregate interface ==\n");
  std::printf("image: %llux%llu (%llu KB), delivered as %llu KB fragments\n\n",
              static_cast<unsigned long long>(kWidth),
              static_cast<unsigned long long>(kHeight),
              static_cast<unsigned long long>(kImageBytes / 1024),
              static_cast<unsigned long long>(kPduBytes / 1024));

  // The image server produces the image as a sequence of PDU-sized fbufs
  // (the way it arrived from disk or network), joined into one aggregate —
  // the viewer never sees the seams unless it asks for raw fragments.
  Message image;
  std::vector<Fbuf*> pieces;
  std::uint64_t produced = 0;
  std::uint8_t checker = 0;
  while (produced < kImageBytes) {
    const std::uint64_t n = std::min(kPduBytes, kImageBytes - produced);
    Fbuf* fb = nullptr;
    if (!Ok(fsys.Allocate(*file_server, path, n, true, &fb))) {
      std::fprintf(stderr, "allocation failed\n");
      return 1;
    }
    // Fill with a deterministic pattern (row-major pixel ramp).
    std::vector<std::uint8_t> data(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      data[i] = static_cast<std::uint8_t>((produced + i) % 251);
    }
    file_server->WriteBytes(fb->base, data.data(), n);
    image = Message::Concat(image, Message::Whole(fb));
    pieces.push_back(fb);
    produced += n;
    checker ^= data[0];
  }

  // Hand the aggregate to the viewer: references only.
  rpc.ChargeCrossing(*file_server, *viewer);
  for (Fbuf* fb : pieces) {
    fsys.Transfer(fb, *file_server, *viewer);
    fsys.Free(fb, *file_server);
  }

  // The viewer consumes scanline by scanline via the generator. A scanline
  // that lies inside one fragment is delivered without copying.
  const SimStats before = machine.stats();
  const SimTime t0 = machine.clock().Now();
  UnitGenerator lines(image, viewer, kScanline);
  std::vector<std::uint8_t> line;
  bool zero_copy = false;
  std::uint64_t rendered = 0;
  std::uint64_t pixel_sum = 0;
  while (lines.Next(&line, &zero_copy) == Status::kOk) {
    // "Render": fold the pixels so the data is genuinely consumed.
    for (std::uint8_t px : line) {
      pixel_sum += px;
    }
    rendered++;
  }
  const SimStats d = machine.stats().Since(before);

  std::printf("scanlines rendered:        %llu\n", static_cast<unsigned long long>(rendered));
  std::printf("zero-copy scanlines:       %llu (%.1f%%)\n",
              static_cast<unsigned long long>(lines.units_returned() - lines.units_copied()),
              100.0 * (lines.units_returned() - lines.units_copied()) /
                  lines.units_returned());
  std::printf("boundary-crossing copies:  %llu (one per %llu KB fragment seam)\n",
              static_cast<unsigned long long>(lines.units_copied()),
              static_cast<unsigned long long>(kPduBytes / 1024));
  std::printf("bytes physically copied:   %llu of %llu (%.2f%%)\n",
              static_cast<unsigned long long>(d.bytes_copied),
              static_cast<unsigned long long>(kImageBytes),
              100.0 * d.bytes_copied / kImageBytes);
  std::printf("simulated consume time:    %.2f ms (pixel checksum %llu)\n",
              (machine.clock().Now() - t0) / 1e6,
              static_cast<unsigned long long>(pixel_sum));

  for (Fbuf* fb : pieces) {
    fsys.Free(fb, *viewer);
  }
  std::printf("\nThe image crossed a protection boundary and was consumed with ~2%% of it\n"
              "ever copied — the non-contiguity is absorbed by the generator interface.\n");
  return 0;
}
