// Quickstart: the fbuf facility in five minutes.
//
// Creates a simulated machine with two protection domains, registers an I/O
// data path, and moves a buffer from a producer to a consumer twice — the
// second time entirely from the path's fbuf cache — demonstrating the
// paper's central claim: in the steady state a cross-domain transfer
// performs no page-table work at all and moves no bytes.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "src/fbuf/fbuf_system.h"
#include "src/ipc/rpc.h"
#include "src/vm/machine.h"

using namespace fbufs;

int main() {
  // A simulated shared-memory host with the DecStation 5000/200 cost model.
  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);

  Domain* producer = machine.CreateDomain("producer");
  Domain* consumer = machine.CreateDomain("consumer");

  // The producer knows where its data is headed (its communication
  // endpoint), so it registers the I/O data path up front. That is what
  // makes fbuf caching possible.
  const PathId path = fsys.paths().Register({producer->id(), consumer->id()});

  auto one_round = [&](const char* label, const char* payload) {
    const SimStats before = machine.stats();
    const SimTime t0 = machine.clock().Now();

    // 1. Allocate an fbuf on the path (volatile: immutability enforced
    //    lazily, only if the consumer asks).
    Fbuf* fb = nullptr;
    if (!Ok(fsys.Allocate(*producer, path, 4096, /*want_volatile=*/true, &fb))) {
      std::fprintf(stderr, "allocation failed\n");
      return;
    }
    // 2. Fill it through the producer's checked view of memory.
    producer->WriteBytes(fb->base, payload, std::strlen(payload) + 1);

    // 3. Transfer: the consumer gains read access at the *same* virtual
    //    address — the fbuf region is shared by all domains.
    fsys.Transfer(fb, *producer, *consumer);

    // 4. The consumer reads it in place. Writing would fault: fbufs are
    //    immutable once transferred.
    char msg[64] = {};
    consumer->ReadBytes(fb->base, msg, sizeof(msg));

    // 5. Both sides release their references; the fbuf parks on the path's
    //    LIFO free list with every mapping intact, ready for reuse.
    fsys.Free(fb, *consumer);
    fsys.Free(fb, *producer);

    const SimStats d = machine.stats().Since(before);
    std::printf("%-12s consumer read: \"%s\"\n", label, msg);
    std::printf("             simulated time %5.1f us | page-table updates %llu | "
                "TLB flushes %llu | bytes copied %llu | cache hit %s\n",
                (machine.clock().Now() - t0) / 1000.0,
                static_cast<unsigned long long>(d.pt_updates),
                static_cast<unsigned long long>(d.tlb_flushes),
                static_cast<unsigned long long>(d.bytes_copied),
                d.fbuf_cache_hits > 0 ? "yes" : "no");
  };

  std::printf("== fbufs quickstart ==\n\n");
  machine.trace().EnableAll();  // watch what the kernel actually does
  one_round("cold:", "hello from the producer");
  one_round("warm:", "zero mapping work this time");

  std::printf("\nThe warm round did no page-table work and copied nothing: the fbuf,\n"
              "its physical pages and the consumer's mappings were all reused.\n");
  std::printf("\nkernel event trace:\n%s", machine.trace().Dump(12).c_str());
  return 0;
}
