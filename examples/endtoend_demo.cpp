// Two simulated DecStations talking UDP/IP over the Osiris/ATM testbed —
// the paper's end-to-end configuration, runnable as a demo.
//
//   ./build/examples/endtoend_demo [message_kb]
#include <cstdio>
#include <cstdlib>

#include "src/topo/testbed.h"

using namespace fbufs;

int main(int argc, char** argv) {
  const std::uint64_t msg_kb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const std::uint64_t msg_bytes = msg_kb * 1024;

  std::printf("== end-to-end UDP/IP over simulated Osiris ATM (622 Mbps link) ==\n");
  std::printf("message size: %llu KB, IP PDU 16 KB, sliding window\n\n",
              static_cast<unsigned long long>(msg_kb));
  std::printf("%-24s %12s %10s %10s %16s\n", "configuration", "Mbps", "tx-CPU", "rx-CPU",
              "crossings/host");

  struct Case {
    const char* name;
    StackPlacement placement;
    bool cached;
    const char* crossings;
  };
  const Case cases[] = {
      {"kernel-kernel", StackPlacement::kKernelOnly, true, "0"},
      {"user-user", StackPlacement::kUserKernel, true, "1"},
      {"user-netserver-user", StackPlacement::kUserNetserverKernel, true, "2"},
      {"user-user, uncached", StackPlacement::kUserKernel, false, "1"},
  };
  for (const Case& c : cases) {
    TestbedConfig cfg;
    cfg.placement = c.placement;
    cfg.cached = c.cached;
    cfg.volatile_fbufs = c.cached;
    Testbed tb(cfg);
    const auto r = tb.Run(/*messages=*/12, msg_bytes, /*warmup=*/2);
    std::printf("%-24s %12.1f %9.0f%% %9.0f%% %16s\n", c.name, r.throughput_mbps,
                r.sender_cpu_load * 100, r.receiver_cpu_load * 100, c.crossings);
  }

  std::printf("\nWith cached/volatile fbufs the protection-domain crossings cost almost\n"
              "nothing at this message size: throughput is pinned by the TurboChannel\n"
              "DMA ceiling (~285 Mbps), exactly as the paper reports.\n");
  return 0;
}
