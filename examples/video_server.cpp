// Real-time video delivery across protection domains — one of the I/O
// intensive applications the paper's introduction motivates.
//
// A capture driver in the kernel produces 640x480x16bpp frames (600 KB)
// that pass through a user-level video server (which prepends a small
// header describing the frame — buffer editing, no copy) and end at a
// display client. We compare what a 25 MHz DecStation-class machine could
// sustain with cached fbufs against a copying kernel, in frames per second
// and CPU headroom.
//
//   ./build/examples/video_server
#include <cstdio>

#include "src/baseline/copy_transfer.h"
#include "src/fbuf/fbuf_system.h"
#include "src/ipc/rpc.h"
#include "src/msg/message.h"
#include "src/vm/machine.h"

using namespace fbufs;

namespace {

constexpr std::uint64_t kFrameBytes = 640 * 480 * 2;  // 600 KB
constexpr int kFrames = 60;

struct FrameHeader {
  std::uint32_t seq;
  std::uint32_t width;
  std::uint32_t height;
  std::uint32_t bits_per_pixel;
};

// Pipeline using fbufs: driver (kernel) -> video server -> display.
double RunFbufPipeline(double* cpu_load) {
  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  Domain& kernel = machine.kernel();
  Domain* server = machine.CreateDomain("video-server");
  Domain* display = machine.CreateDomain("display");

  const PathId frame_path = fsys.paths().Register({kernel.id(), server->id(), display->id()});
  const PathId hdr_path = fsys.paths().Register({server->id(), display->id()});

  const SimTime t0 = machine.clock().Now();
  for (int f = 0; f < kFrames; ++f) {
    // Capture: the driver DMAs a frame into a path-cached fbuf and touches
    // its bookkeeping word in each page.
    Fbuf* frame = nullptr;
    if (!Ok(fsys.Allocate(kernel, frame_path, kFrameBytes, true, &frame,
                          /*clear=*/false))) {
      return -1;
    }
    kernel.TouchRange(frame->base, kFrameBytes, Access::kWrite);

    // Kernel -> server crossing.
    rpc.ChargeCrossing(kernel, *server);
    fsys.Transfer(frame, kernel, *server);
    fsys.Free(frame, kernel);

    // The server annotates the frame: new header fbuf, logically
    // concatenated — the frame itself is immutable and untouched.
    Fbuf* hdr = nullptr;
    if (!Ok(fsys.Allocate(*server, hdr_path, sizeof(FrameHeader), true, &hdr))) {
      return -1;
    }
    const FrameHeader h{static_cast<std::uint32_t>(f), 640, 480, 16};
    server->WriteBytes(hdr->base, &h, sizeof(h));
    const Message annotated =
        Message::Concat(Message::Whole(hdr), Message::Leaf(frame, 0, kFrameBytes));

    // Server -> display crossing: both fbufs move by reference.
    rpc.ChargeCrossing(*server, *display);
    fsys.Transfer(hdr, *server, *display);
    fsys.Transfer(frame, *server, *display);
    fsys.Free(hdr, *server);
    fsys.Free(frame, *server);

    // The display consumes the frame (reads every page once).
    annotated.Touch(*display, Access::kRead);
    fsys.Free(hdr, *display);
    fsys.Free(frame, *display);
  }
  const SimTime elapsed = machine.clock().Now() - t0;
  const double fps = kFrames * 1e9 / static_cast<double>(elapsed);
  // CPU budget for 30 fps delivery:
  *cpu_load = (elapsed / kFrames) / (1e9 / 30.0);
  return fps;
}

// The same pipeline, but every boundary copies the frame.
double RunCopyPipeline(double* cpu_load) {
  Machine machine{MachineConfig{}};
  CopyTransfer copy(&machine);
  Domain& kernel = machine.kernel();
  Domain* server = machine.CreateDomain("video-server");
  Domain* display = machine.CreateDomain("display");

  BufferRef frame;
  if (!Ok(copy.Alloc(kernel, kFrameBytes, &frame))) {
    return -1;
  }
  const SimTime t0 = machine.clock().Now();
  for (int f = 0; f < kFrames; ++f) {
    kernel.TouchRange(frame.sender_addr, kFrameBytes, Access::kWrite);
    machine.clock().Advance(machine.costs().ipc_kernel_user_ns);
    if (!Ok(copy.Send(frame, kernel, *server))) {
      return -1;
    }
    // Server forwards to the display: a second copy.
    BufferRef hop;
    hop.sender_addr = frame.receiver_addr;
    hop.bytes = frame.bytes;
    hop.pages = frame.pages;
    machine.clock().Advance(machine.costs().ipc_user_user_ns);
    if (!Ok(copy.Send(hop, *server, *display))) {
      return -1;
    }
    display->TouchRange(hop.receiver_addr, kFrameBytes, Access::kRead);
  }
  const SimTime elapsed = machine.clock().Now() - t0;
  *cpu_load = (elapsed / kFrames) / (1e9 / 30.0);
  return kFrames * 1e9 / static_cast<double>(elapsed);
}

}  // namespace

int main() {
  std::printf("== video delivery: kernel driver -> video server -> display ==\n");
  std::printf("frame: 640x480x16bpp = %llu KB, 3 protection domains\n\n",
              static_cast<unsigned long long>(kFrameBytes / 1024));
  double fbuf_load = 0, copy_load = 0;
  const double fbuf_fps = RunFbufPipeline(&fbuf_load);
  const double copy_fps = RunCopyPipeline(&copy_load);
  std::printf("cached fbufs: %6.1f fps sustainable  (CPU for 30 fps: %3.0f%%)\n", fbuf_fps,
              fbuf_load * 100);
  std::printf("copying:      %6.1f fps sustainable  (CPU for 30 fps: %3.0f%%)\n", copy_fps,
              copy_load * 100);
  std::printf("\nWith fbufs the frame crosses two protection boundaries by reference;\n"
              "the copying kernel moves %.1f MB per frame and cannot reach video rate.\n",
              2.0 * kFrameBytes / (1 << 20));
  return 0;
}
