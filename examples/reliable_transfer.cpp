// Reliable bulk transfer over a lossy channel with SWP — demonstrating why
// fbufs provide copy (not move) semantics: the sender retains references to
// transmitted data for retransmission, at the cost of a reference count
// bump, never a copy.
//
//   ./build/examples/reliable_transfer [drop_percent]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/proto/swp.h"
#include "src/proto/test_protocols.h"
#include "src/vm/machine.h"

using namespace fbufs;

int main(int argc, char** argv) {
  const std::uint32_t drop = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 25;

  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  ProtocolStack stack(&machine, &fsys, &rpc);
  stack.set_domain_count(2);

  Domain* sender_dom = machine.CreateDomain("sender");
  Domain* receiver_dom = machine.CreateDomain("receiver");
  const PathId tx_hdr = fsys.paths().Register({sender_dom->id(), receiver_dom->id()});
  const PathId rx_hdr = fsys.paths().Register({receiver_dom->id(), sender_dom->id()});
  const PathId data_path = fsys.paths().Register({sender_dom->id(), receiver_dom->id()});

  SwpProtocol sender(sender_dom, &stack, tx_hdr, /*window=*/8);
  SwpProtocol receiver(receiver_dom, &stack, rx_hdr, 8);
  LossyChannel to_receiver(sender_dom, &stack, /*seed=*/2026, drop);
  LossyChannel to_sender(receiver_dom, &stack, 2027, drop);
  SinkProtocol sink(receiver_dom, &stack);

  sender.set_below(&to_receiver);
  to_receiver.set_peer_above(&receiver);
  receiver.set_below(&to_sender);
  to_sender.set_peer_above(&sender);
  receiver.set_above(&sink);

  // Ship 32 x 32 KB messages across a wire that eats `drop`% of frames.
  constexpr int kMessages = 32;
  constexpr std::uint64_t kBytes = 32 * 1024;
  const SimTime t0 = machine.clock().Now();
  int accepted = 0;
  int timer_fires = 0;
  while (accepted < kMessages) {
    Fbuf* fb = nullptr;
    if (!Ok(fsys.Allocate(*sender_dom, data_path, kBytes, true, &fb))) {
      std::fprintf(stderr, "allocation failed\n");
      return 1;
    }
    sender_dom->TouchRange(fb->base, kBytes, Access::kWrite);
    const Status st = sender.Push(Message::Whole(fb));
    fsys.Free(fb, *sender_dom);
    if (st == Status::kOk) {
      accepted++;
    } else {
      // Window full: the retransmission timer fires.
      machine.clock().Advance(2 * kMillisecond);
      sender.Tick();
      timer_fires++;
    }
  }
  while (sender.unacked() > 0) {
    machine.clock().Advance(2 * kMillisecond);
    sender.Tick();
    timer_fires++;
  }
  const double seconds = (machine.clock().Now() - t0) / 1e9;

  std::printf("== reliable transfer over a %u%%-lossy channel ==\n\n", drop);
  std::printf("delivered:        %llu/%d messages (%llu KB), all in order\n",
              static_cast<unsigned long long>(sink.received()), kMessages,
              static_cast<unsigned long long>(sink.bytes_received() / 1024));
  std::printf("frames dropped:   %llu data, %llu ack\n",
              static_cast<unsigned long long>(to_receiver.dropped()),
              static_cast<unsigned long long>(to_sender.dropped()));
  std::printf("retransmissions:  %llu (timer fired %d times)\n",
              static_cast<unsigned long long>(sender.retransmissions()), timer_fires);
  std::printf("duplicates culled:%llu at the receiver\n",
              static_cast<unsigned long long>(receiver.duplicates_dropped()));
  std::printf("bytes copied:     %llu — retransmission reuses retained fbufs\n",
              static_cast<unsigned long long>(machine.stats().bytes_copied));
  std::printf("simulated time:   %.1f ms (%.1f Mbps effective)\n", seconds * 1e3,
              sink.bytes_received() * 8.0 / seconds / 1e6);
  return sink.received() == kMessages ? 0 : 1;
}
