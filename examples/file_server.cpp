// A file server built on the unified buffer cache: clients in separate
// protection domains read shared files with zero copies, and network and
// file traffic draw from one physical memory pool.
//
//   ./build/examples/file_server
#include <cstdio>

#include "src/cache/file_cache.h"
#include "src/msg/generator.h"
#include "src/sim/rng.h"
#include "src/vm/machine.h"

using namespace fbufs;

int main() {
  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine);
  FileCacheConfig ccfg;
  ccfg.block_bytes = 8192;
  ccfg.capacity_blocks = 48;
  FileCache cache(&fsys, ccfg);

  Domain* alice = machine.CreateDomain("alice");
  Domain* bob = machine.CreateDomain("bob");

  std::printf("== file server: two clients, one block cache, zero copies ==\n\n");

  // Both clients scan the same 32-block file; Alice goes first (cold), Bob
  // rides her cache entries.
  auto scan = [&](Domain* who, const char* name) {
    const SimTime t0 = machine.clock().Now();
    std::uint64_t bytes = 0;
    std::uint64_t records = 0;
    for (std::uint64_t block = 0; block < 32; ++block) {
      Message m;
      if (!Ok(cache.Read(/*file=*/1, block, *who, &m))) {
        std::fprintf(stderr, "read failed\n");
        return;
      }
      // Consume the block as 512-byte records through the generator.
      UnitGenerator gen(m, who, 512);
      std::vector<std::uint8_t> rec;
      bool zc;
      while (gen.Next(&rec, &zc) == Status::kOk) {
        records++;
      }
      bytes += m.length();
      cache.Release(m, *who);
    }
    const double ms = (machine.clock().Now() - t0) / 1e6;
    std::printf("%-6s read %3llu KB as %llu records in %8.2f ms (%s)\n", name,
                static_cast<unsigned long long>(bytes / 1024),
                static_cast<unsigned long long>(records), ms,
                cache.hits() > 0 ? "warm cache" : "cold: all disk");
  };
  scan(alice, "alice");
  scan(bob, "bob");

  std::printf("\ncache: %llu misses (disk reads), %llu hits, %llu blocks resident\n",
              static_cast<unsigned long long>(cache.misses()),
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.resident_blocks()));
  std::printf("bytes physically copied anywhere: %llu\n",
              static_cast<unsigned long long>(machine.stats().bytes_copied));
  std::printf("\nBob's entire scan hit Alice's cached blocks: every block is one\n"
              "immutable fbuf mapped read-only into both clients — the IO-Lite idea\n"
              "growing out of the fbuf substrate.\n\n");
  std::printf("fbuf system state:\n%s", fsys.DebugDump().c_str());
  return 0;
}
