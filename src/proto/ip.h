// IP, over the message abstraction: fragmentation of large messages into
// PDU-sized fragments on the way down, reassembly on the way up — all
// zero-copy (fragments are slices; reassembly is concatenation).
//
// Like the paper's version, the protocol is "slightly modified to support
// messages larger than 64 KBytes": length and offset fields are widened to
// 32 bits, giving a 24-byte header.
#ifndef SRC_PROTO_IP_H_
#define SRC_PROTO_IP_H_

#include <cstdint>
#include <map>

#include "src/proto/protocol.h"

namespace fbufs {

struct IpHeader {
  std::uint8_t version_ihl = 0x45;
  std::uint8_t tos = 0;
  std::uint8_t ttl = 64;
  std::uint8_t proto = 17;              // UDP
  std::uint32_t total_length = 0;       // this fragment, header included
  std::uint32_t id = 0;                 // datagram id for reassembly
  std::uint32_t frag_offset = 0;        // byte offset of this fragment's body
  std::uint32_t adu_length = 0;         // whole datagram body length
  std::uint16_t checksum = 0;           // header checksum
  std::uint16_t zero = 0;
};
static_assert(sizeof(IpHeader) == 24);

class IpProtocol : public Protocol {
 public:
  static constexpr std::uint64_t kHeaderBytes = sizeof(IpHeader);

  // |pdu_size| is the maximum fragment body (the paper uses 4 KB for the
  // loopback experiment and 16 or 32 KB for the end-to-end runs).
  IpProtocol(Domain* domain, ProtocolStack* stack, PathId hdr_path, std::uint64_t pdu_size)
      : Protocol("ip", domain, stack), hdr_path_(hdr_path), pdu_size_(pdu_size) {}

  Status Push(Message m) override;
  Status Pop(Message m) override;

  // IP looks at its header only.
  bool touches_body() const override { return false; }

  std::uint64_t fragments_sent() const { return fragments_sent_; }
  std::uint64_t datagrams_reassembled() const { return datagrams_reassembled_; }
  std::size_t reassembly_backlog() const { return reassembly_.size(); }

 private:
  struct Reassembly {
    std::map<std::uint64_t, Message> fragments;  // offset -> body slice
    std::uint64_t received = 0;
    std::uint64_t total = 0;
  };

  Status SendFragment(const Message& body, std::uint32_t id, std::uint64_t offset,
                      std::uint64_t adu_length);

  PathId hdr_path_;
  std::uint64_t pdu_size_;
  std::uint32_t next_id_ = 1;
  std::map<std::uint32_t, Reassembly> reassembly_;
  std::uint64_t fragments_sent_ = 0;
  std::uint64_t datagrams_reassembled_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PROTO_IP_H_
