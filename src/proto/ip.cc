#include "src/proto/ip.h"

#include <cstring>

namespace fbufs {

namespace {
std::uint16_t HeaderChecksum(const IpHeader& h) {
  IpHeader copy = h;
  copy.checksum = 0;
  const auto* words = reinterpret_cast<const std::uint16_t*>(&copy);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < sizeof(copy) / 2; ++i) {
    sum += words[i];
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}
}  // namespace

Status IpProtocol::SendFragment(const Message& body, std::uint32_t id, std::uint64_t offset,
                                std::uint64_t adu_length) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  TraceSpan span(machine.trace(), TraceCategory::kProto, "ip-fragment", id, offset);
  machine.clock().Advance(machine.costs().proto_pdu_ns);

  Fbuf* hdr_fb = nullptr;
  Status st = stack_->fsys()->Allocate(*domain(), hdr_path_, kHeaderBytes,
                                       /*want_volatile=*/true, &hdr_fb);
  if (!Ok(st)) {
    return st;
  }
  IpHeader h;
  h.total_length = static_cast<std::uint32_t>(kHeaderBytes + body.length());
  h.id = id;
  h.frag_offset = static_cast<std::uint32_t>(offset);
  h.adu_length = static_cast<std::uint32_t>(adu_length);
  h.checksum = HeaderChecksum(h);
  machine.clock().Advance(machine.costs().ChecksumCost(kHeaderBytes));
  st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  if (!Ok(st)) {
    stack_->fsys()->Free(hdr_fb, *domain());
    return st;
  }
  fragments_sent_++;
  const Message pdu = Message::Concat(Message::Whole(hdr_fb), body);
  st = SendDown(pdu);
  const Status free_st = stack_->fsys()->Free(hdr_fb, *domain());
  return Ok(st) ? free_st : st;
}

Status IpProtocol::Push(Message m) {
  const std::uint32_t id = next_id_++;
  const std::uint64_t total = m.length();
  if (total <= pdu_size_) {
    return SendFragment(m, id, 0, total);
  }
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  TraceSpan span(machine.trace(), TraceCategory::kProto, "ip-fragmentation", id, total);
  // Fragmentation does not disturb the original buffers: each fragment is an
  // offset/length view. The paper observes a fixed overhead once a message
  // needs fragmenting at all (the Figure 4 "anomaly").
  stack_->machine()->clock().Advance(stack_->machine()->costs().frag_fixed_ns);
  for (std::uint64_t off = 0; off < total; off += pdu_size_) {
    const std::uint64_t len = std::min(pdu_size_, total - off);
    const Status st = SendFragment(m.Slice(off, len), id, off, total);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

Status IpProtocol::Pop(Message m) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  machine.clock().Advance(machine.costs().proto_pdu_ns);

  IpHeader h;
  Status st = m.CopyOut(*domain(), 0, &h, sizeof(h));
  if (!Ok(st)) {
    return st;
  }
  machine.clock().Advance(machine.costs().ChecksumCost(kHeaderBytes));
  if (HeaderChecksum(h) != h.checksum) {
    return Status::kInvalidArgument;
  }
  const std::uint64_t body_len = h.total_length - kHeaderBytes;
  const Message body = m.Slice(kHeaderBytes, body_len);
  if (body.length() < body_len) {
    return Status::kTruncated;
  }
  if (h.frag_offset == 0 && body_len == h.adu_length) {
    return SendUp(body);  // unfragmented datagram
  }

  // Reassembly. The delivering caller owns this fragment instance's
  // references, so retain our own for the time the fragment sits here.
  Reassembly& r = reassembly_[h.id];
  if (r.fragments.count(h.frag_offset) != 0) {
    return Status::kOk;  // duplicate fragment: drop
  }
  st = stack_->RetainMessage(body, *domain());
  if (!Ok(st)) {
    return st;
  }
  r.fragments[h.frag_offset] = body;
  r.received += body_len;
  r.total = h.adu_length;
  if (r.received < r.total) {
    return Status::kOk;
  }

  Message adu;
  for (const auto& [off, frag] : r.fragments) {
    adu = Message::Concat(adu, frag);
  }
  datagrams_reassembled_++;
  st = SendUp(adu);
  // Release the retained fragment references.
  for (const auto& [off, frag] : r.fragments) {
    const Status fst = stack_->FreeMessage(frag, *domain());
    if (!Ok(fst) && Ok(st)) {
      st = fst;
    }
  }
  reassembly_.erase(h.id);
  return st;
}

}  // namespace fbufs
