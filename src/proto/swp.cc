#include "src/proto/swp.h"

#include <algorithm>

namespace fbufs {

Status SwpProtocol::TransmitData(std::uint32_t seq, const Message& m) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  // The send span encloses fragmentation (IP) and adapter work below.
  TraceSpan span(machine.trace(), TraceCategory::kProto, "swp-send", seq, m.length());
  send_time_[seq] = machine.clock().Now();
  machine.clock().Advance(machine.costs().proto_pdu_ns);
  Fbuf* hdr_fb = nullptr;
  Status st = stack_->fsys()->Allocate(*domain(), hdr_path_, sizeof(SwpHeader),
                                       /*want_volatile=*/true, &hdr_fb);
  if (!Ok(st)) {
    return st;
  }
  SwpHeader h;
  h.type = SwpHeader::kData;
  h.seq = seq;
  h.len = m.length();
  st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  if (Ok(st)) {
    st = SendDown(Message::Concat(Message::Whole(hdr_fb), m));
  }
  const Status free_st = stack_->fsys()->Free(hdr_fb, *domain());
  return Ok(st) ? free_st : st;
}

Status SwpProtocol::TransmitAck() {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  TraceSpan span(machine.trace(), TraceCategory::kProto, "swp-ack", recv_next_, 0);
  machine.clock().Advance(machine.costs().proto_pdu_ns);
  Fbuf* hdr_fb = nullptr;
  Status st = stack_->fsys()->Allocate(*domain(), hdr_path_, sizeof(SwpHeader),
                                       /*want_volatile=*/true, &hdr_fb);
  if (!Ok(st)) {
    return st;
  }
  SwpHeader h;
  h.type = SwpHeader::kAck;
  h.seq = recv_next_;
  h.len = 0;
  st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  if (Ok(st)) {
    acks_sent_++;
    st = SendDown(Message::Whole(hdr_fb));
  }
  const Status free_st = stack_->fsys()->Free(hdr_fb, *domain());
  return Ok(st) ? free_st : st;
}

Status SwpProtocol::Push(Message m) {
  if (outstanding_.size() >= window_) {
    return Status::kExhausted;
  }
  // Copy semantics at work: retain a reference so the data stays intact and
  // accessible for retransmission, no matter what the producer does next
  // with its own references.
  Status st = stack_->RetainMessage(m, *domain());
  if (!Ok(st)) {
    return st;
  }
  const std::uint32_t seq = next_seq_++;
  outstanding_[seq] = m;
  st = TransmitData(seq, m);
  if (Ok(st)) {
    ArmTimer();
  }
  return st;
}

void SwpProtocol::ArmTimer() {
  if (loop_ == nullptr || timer_pending_ || outstanding_.empty()) {
    return;
  }
  timer_pending_ = true;
  // The timeout matures RTO nanoseconds of *sender* time from now; the
  // loop's dispatch floor may already be past that (host timelines are only
  // partially ordered), so clamp the event key, never the deadline.
  const SimTime deadline = stack_->machine()->clock().Now() + rto_;
  const SimTime key = std::max(deadline, loop_->Now());
  timer_id_ = loop_->Schedule(key, "swp-rto", [this, deadline] {
    timer_pending_ = false;
    if (outstanding_.empty()) {
      return;  // defensive: a full ack should have cancelled this event
    }
    timer_fires_++;
    // The interrupt fires once the sender's own clock reaches the deadline.
    stack_->machine()->clock().AdvanceToAtLeast(deadline);
    Tick();
    ArmTimer();
  });
}

Status SwpProtocol::Tick() {
  // A retransmitted frame can be acknowledged synchronously (the ack rides
  // back inside TransmitData's call chain) and erase outstanding_ entries,
  // so iterate over a snapshot of the sequence numbers.
  std::vector<std::uint32_t> seqs;
  seqs.reserve(outstanding_.size());
  for (const auto& [seq, m] : outstanding_) {
    seqs.push_back(seq);
  }
  for (const std::uint32_t seq : seqs) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) {
      continue;  // acked by an earlier retransmission this tick
    }
    retransmissions_++;
    const Status st = TransmitData(seq, it->second);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

Status SwpProtocol::DeliverReady() {
  while (true) {
    auto it = stash_.find(recv_next_);
    if (it == stash_.end()) {
      return Status::kOk;
    }
    Message ready = it->second;
    stash_.erase(it);
    recv_next_++;
    delivered_in_order_++;
    const Status st = SendUp(ready);
    // Release the references taken when the frame was stashed.
    const Status free_st = stack_->FreeMessage(ready, *domain());
    if (!Ok(st)) {
      return st;
    }
    if (!Ok(free_st)) {
      return free_st;
    }
  }
}

Status SwpProtocol::Pop(Message m) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  TraceSpan span(machine.trace(), TraceCategory::kProto, "swp-recv", 0, m.length());
  machine.clock().Advance(machine.costs().proto_pdu_ns);
  SwpHeader h;
  Status st = m.CopyOut(*domain(), 0, &h, sizeof(h));
  if (!Ok(st)) {
    return st;
  }

  if (h.type == SwpHeader::kAck) {
    // Cumulative: everything below h.seq is delivered; drop retentions.
    while (!outstanding_.empty() && outstanding_.begin()->first < h.seq) {
      const std::uint32_t acked = outstanding_.begin()->first;
      const auto sent = send_time_.find(acked);
      if (sent != send_time_.end()) {
        if (machine.metrics() != nullptr && machine.clock().Now() >= sent->second) {
          machine.metrics()->GetHistogram("swp.rtt_ns")
              ->Observe(machine.clock().Now() - sent->second);
        }
        send_time_.erase(sent);
      }
      const Status free_st = stack_->FreeMessage(outstanding_.begin()->second, *domain());
      if (!Ok(free_st)) {
        return free_st;
      }
      outstanding_.erase(outstanding_.begin());
    }
    if (h.seq > send_base_) {
      send_base_ = h.seq;
    }
    if (outstanding_.empty() && timer_pending_ && loop_ != nullptr) {
      loop_->Cancel(timer_id_);
      timer_pending_ = false;
    }
    return Status::kOk;
  }
  if (h.type != SwpHeader::kData) {
    return Status::kInvalidArgument;
  }

  const Message body = m.Slice(sizeof(SwpHeader), h.len);
  if (body.length() < h.len) {
    return Status::kTruncated;
  }
  if (h.seq < recv_next_ || stash_.count(h.seq) != 0) {
    duplicates_dropped_++;
    return TransmitAck();  // re-ack so the sender stops retransmitting
  }
  if (h.seq == recv_next_) {
    recv_next_++;
    delivered_in_order_++;
    st = SendUp(body);
    if (!Ok(st)) {
      return st;
    }
    st = DeliverReady();
    if (!Ok(st)) {
      return st;
    }
  } else {
    // Out of order: retain and stash until the gap fills.
    st = stack_->RetainMessage(body, *domain());
    if (!Ok(st)) {
      return st;
    }
    stash_[h.seq] = body;
  }
  return TransmitAck();
}

}  // namespace fbufs
