// The paper's measurement protocols: a test (source) protocol that
// repeatedly creates messages and a dummy (sink) protocol that touches one
// word per page of whatever reaches it, then lets the references drop.
#ifndef SRC_PROTO_TEST_PROTOCOLS_H_
#define SRC_PROTO_TEST_PROTOCOLS_H_

#include <cstdint>

#include "src/proto/protocol.h"

namespace fbufs {

// Originator-side test protocol: allocates an fbuf on its data path, writes
// one word in each page, and pushes the message down the stack.
class SourceProtocol : public Protocol {
 public:
  SourceProtocol(Domain* domain, ProtocolStack* stack, PathId data_path,
                 bool volatile_fbufs = true)
      : Protocol("test-source", domain, stack),
        data_path_(data_path),
        volatile_(volatile_fbufs) {}

  // One paper iteration: allocate, write, send, release.
  Status SendOne(std::uint64_t bytes) {
    Fbuf* fb = nullptr;
    Status st = stack_->fsys()->Allocate(*domain(), data_path_, bytes, volatile_, &fb);
    if (!Ok(st)) {
      return st;
    }
    st = domain()->TouchRange(fb->base, bytes, Access::kWrite);
    if (!Ok(st)) {
      // The write failed (e.g. no frame left to fault in): drop the
      // reference, or the fbuf stays live-but-unsendable forever.
      stack_->fsys()->Free(fb, *domain());
      return st;
    }
    st = SendDown(Message::Whole(fb));
    const Status free_st = stack_->fsys()->Free(fb, *domain());
    sent_++;
    bytes_sent_ += bytes;
    return Ok(st) ? free_st : st;
  }

  Status Push(Message) override { return Status::kInvalidArgument; }
  Status Pop(Message) override { return Status::kOk; }  // ignores upcalls

  std::uint64_t sent() const { return sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  PathId data_path_;
  bool volatile_;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

// Receiver-side dummy protocol: reads one word in each page of the received
// message and returns; the proxy edge then drops this domain's references.
class SinkProtocol : public Protocol {
 public:
  SinkProtocol(Domain* domain, ProtocolStack* stack)
      : Protocol("dummy-sink", domain, stack) {}

  Status Push(Message) override { return Status::kInvalidArgument; }

  Status Pop(Message m) override {
    const Status st = m.Touch(*domain(), Access::kRead);
    if (!Ok(st)) {
      return st;
    }
    received_++;
    bytes_received_ += m.length();
    return Status::kOk;
  }

  std::uint64_t received() const { return received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  std::uint64_t received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

// "Infinitely fast network": sits below IP, turns PDUs around and sends
// them back up the stack (the paper's local loopback experiment, Figure 4).
class LoopbackProtocol : public Protocol {
 public:
  LoopbackProtocol(Domain* domain, ProtocolStack* stack)
      : Protocol("loopback", domain, stack) {}

  Status Push(Message m) override {
    turned_around_++;
    return SendUp(m);
  }
  Status Pop(Message) override { return Status::kInvalidArgument; }

  std::uint64_t turned_around() const { return turned_around_; }

 private:
  std::uint64_t turned_around_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PROTO_TEST_PROTOCOLS_H_
