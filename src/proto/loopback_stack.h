// The paper's Figure 4 configuration: a UDP/IP stack with a local loopback
// protocol below IP ("an infinitely fast network"), either entirely inside
// one protection domain or spread over three (originator, network server,
// receiver).
//
//   source (S)  -->  UDP (N)  -->  IP (N)  -->  loopback (N)
//                                                  |
//   sink (R)   <--  UDP (N)  <--  IP (N)  <--------+
#ifndef SRC_PROTO_LOOPBACK_STACK_H_
#define SRC_PROTO_LOOPBACK_STACK_H_

#include <memory>

#include "src/proto/ip.h"
#include "src/proto/protocol.h"
#include "src/proto/test_protocols.h"
#include "src/proto/udp.h"

namespace fbufs {

struct LoopbackStackConfig {
  std::uint64_t pdu_size = 4096;  // IP fragment body size (paper: 4 KB)
  bool three_domains = true;      // false: everything in a single domain
  bool cached_paths = true;       // uncached fbufs when false
  bool volatile_fbufs = true;
  bool integrated = true;         // integrated aggregate transfer at edges
};

class LoopbackStack {
 public:
  LoopbackStack(Machine* machine, FbufSystem* fsys, Rpc* rpc,
                const LoopbackStackConfig& config);

  // Sends one test message of |bytes| through the whole path.
  Status SendMessage(std::uint64_t bytes) { return source_->SendOne(bytes); }

  SourceProtocol& source() { return *source_; }
  SinkProtocol& sink() { return *sink_; }
  IpProtocol& ip() { return *ip_; }
  UdpProtocol& udp() { return *udp_; }
  ProtocolStack& stack() { return *stack_; }
  Machine& machine() { return *machine_; }

 private:
  Machine* machine_;
  std::unique_ptr<ProtocolStack> stack_;
  std::unique_ptr<SourceProtocol> source_;
  std::unique_ptr<UdpProtocol> udp_;
  std::unique_ptr<IpProtocol> ip_;
  std::unique_ptr<LoopbackProtocol> loopback_;
  std::unique_ptr<SinkProtocol> sink_;
};

}  // namespace fbufs

#endif  // SRC_PROTO_LOOPBACK_STACK_H_
