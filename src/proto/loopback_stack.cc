#include "src/proto/loopback_stack.h"

namespace fbufs {

LoopbackStack::LoopbackStack(Machine* machine, FbufSystem* fsys, Rpc* rpc,
                             const LoopbackStackConfig& config)
    : machine_(machine) {
  ProtocolStack::Config scfg;
  scfg.integrated = config.integrated;
  stack_ = std::make_unique<ProtocolStack>(machine, fsys, rpc, scfg);

  Domain* src_dom;
  Domain* net_dom;
  Domain* dst_dom;
  if (config.three_domains) {
    src_dom = machine->CreateDomain("originator");
    net_dom = machine->CreateDomain("netserver");
    dst_dom = machine->CreateDomain("receiver");
    stack_->set_domain_count(3);
  } else {
    src_dom = net_dom = dst_dom = machine->CreateDomain("monolith");
    stack_->set_domain_count(1);
  }

  // Data path: originator's buffers visit the network server and the
  // receiver. Header fbufs never leave the network server's domain.
  // In the uncached configuration every allocation — headers included —
  // goes through the default allocator, as when no data path can be
  // identified (§5.2).
  PathId data_path = kNoPath;
  PathId hdr_path = kNoPath;
  if (config.cached_paths) {
    if (config.three_domains) {
      data_path = fsys->paths().Register({src_dom->id(), net_dom->id(), dst_dom->id()});
    } else {
      data_path = fsys->paths().Register({src_dom->id()});
    }
    hdr_path = fsys->paths().Register({net_dom->id()});
  }

  source_ = std::make_unique<SourceProtocol>(src_dom, stack_.get(), data_path,
                                             config.volatile_fbufs);
  udp_ = std::make_unique<UdpProtocol>(net_dom, stack_.get(), hdr_path);
  ip_ = std::make_unique<IpProtocol>(net_dom, stack_.get(), hdr_path, config.pdu_size);
  loopback_ = std::make_unique<LoopbackProtocol>(net_dom, stack_.get());
  sink_ = std::make_unique<SinkProtocol>(dst_dom, stack_.get());

  source_->set_below(udp_.get());
  udp_->set_below(ip_.get());
  udp_->SetDefaultPorts(1000, 2000);
  udp_->Bind(2000, sink_.get());
  ip_->set_above(udp_.get());
  ip_->set_below(loopback_.get());
  loopback_->set_above(ip_.get());
}

}  // namespace fbufs
