// Transport framework: a reliable sliding-window engine with a pluggable
// congestion policy, in the x-kernel tradition.
//
// SWP (src/proto/swp.h) showed *why* fbufs provide copy rather than move
// semantics (§2.1.3): a reliable sender retains references — never copies —
// to transmitted data until it is acknowledged. This header factors SWP's
// engine (retention, cumulative acks, go-back-all retransmission, the
// evented RTO timer, in-order delivery with an out-of-order stash) away from
// its *fixed window*, which becomes one CongestionPolicy among three:
//
//   * FixedWindowPolicy — the classic SWP window: at most W PDUs in flight,
//     loss signals ignored. Under incast this is the transport that
//     collapses: every drop triggers a full-window retransmission storm
//     while the pinned retransmit fbufs inflate memory pressure.
//   * CreditPolicy — ATM-native credit flow control: the receiver advertises
//     an absolute per-flow grant in every ack, sized to its fbuf headroom
//     (PressureManager::CreditFor), and the sender never has more PDUs in
//     flight than its latest grant. The sender physically cannot overrun the
//     receiver's memory.
//   * AimdPolicy — a TCP-like window: slow start, additive increase,
//     multiplicative decrease on RTO or on an ECN echo (SwitchNode marks
//     frames whose per-VCI queue crosses a threshold; the receiver echoes
//     the mark in its next ack).
//
// Retained frames are additionally recorded in a RetransmitLedger
// (src/pressure/retransmit_ledger.h): pinned fbufs == unacked PDUs is an
// audited invariant, the PressureManager can page cold pinned fbufs out to
// backing store, and a mid-retransmit domain termination reclaims the
// ledger instead of leaking it.
//
// Wire format: the 16-byte SwpHeader is unchanged for SWP; credit and AIMD
// transports extend it to 24 bytes with a credit grant and a flags word
// (the ECN echo). Acknowledgements are cumulative in both formats.
#ifndef SRC_PROTO_TRANSPORT_H_
#define SRC_PROTO_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/latency.h"
#include "src/pressure/retransmit_ledger.h"
#include "src/proto/protocol.h"
#include "src/sim/event_loop.h"

namespace fbufs {

struct SwpHeader {
  static constexpr std::uint32_t kData = 0x5350'4441;  // "SPDA"
  static constexpr std::uint32_t kAck = 0x5350'4143;   // "SPAC"

  std::uint32_t type = kData;
  std::uint32_t seq = 0;   // data: frame number | ack: next expected frame
  std::uint64_t len = 0;   // data payload bytes
};
static_assert(sizeof(SwpHeader) == 16);

// The extended header used by the credit and AIMD transports: the SwpHeader
// layout plus a credit grant and flags. Layout-compatible with SwpHeader in
// its first 16 bytes.
struct TransportHeader {
  static constexpr std::uint32_t kFlagEce = 1u << 0;  // congestion echoed

  std::uint32_t type = SwpHeader::kData;
  std::uint32_t seq = 0;
  std::uint64_t len = 0;
  std::uint32_t credit = 0;  // ack: the receiver's current per-flow grant
  std::uint32_t flags = 0;
};
static_assert(sizeof(TransportHeader) == 24);

// Decides when the sender may put a new PDU in flight, and reacts to the
// congestion signals the engine feeds it. Policies are deterministic pure
// state machines — no randomness, no wall clock — so same-seed runs stay
// byte-identical.
class CongestionPolicy {
 public:
  virtual ~CongestionPolicy() = default;

  // May a new PDU enter the network with |in_flight| already unacked?
  virtual bool CanSend(std::size_t in_flight) const = 0;
  // Status surfaced to producers when CanSend refuses. Every refusal status
  // must classify as IsBackpressure so producers park instead of failing.
  virtual Status RefusalStatus() const = 0;
  // A cumulative ack arrived: everything below |ack_seq| is delivered,
  // |newly_acked| PDUs just left the window, |ecn_echo| is the receiver's
  // congestion-experienced echo, |next_seq| the sender's next fresh frame.
  virtual void OnAck(std::uint32_t ack_seq, std::uint32_t newly_acked,
                     bool ecn_echo, std::uint32_t next_seq) {
    (void)ack_seq;
    (void)newly_acked;
    (void)ecn_echo;
    (void)next_seq;
  }
  // The RTO fired with PDUs outstanding (a loss signal).
  virtual void OnTimeout(std::uint32_t next_seq) { (void)next_seq; }
  // The receiver granted an absolute in-flight budget (credit transports).
  virtual void OnCreditGrant(std::uint32_t credits) { (void)credits; }
  // Current window, in PDUs (informational: metrics and benches).
  virtual std::uint32_t window() const = 0;
};

// SWP's window: at most |window| PDUs in flight, forever.
class FixedWindowPolicy : public CongestionPolicy {
 public:
  explicit FixedWindowPolicy(std::uint32_t window) : window_(window) {}

  bool CanSend(std::size_t in_flight) const override {
    return in_flight < window_;
  }
  Status RefusalStatus() const override { return Status::kExhausted; }
  std::uint32_t window() const override { return window_; }

 private:
  std::uint32_t window_;
};

// Credit-based flow control: the in-flight budget is whatever the receiver
// last granted. Loss and ECN are ignored — the receiver's memory headroom is
// the only signal, and it is authoritative.
class CreditPolicy : public CongestionPolicy {
 public:
  explicit CreditPolicy(std::uint32_t initial_credits = 2)
      : credits_(initial_credits) {}

  bool CanSend(std::size_t in_flight) const override {
    return in_flight < credits_;
  }
  Status RefusalStatus() const override { return Status::kCreditExhausted; }
  void OnCreditGrant(std::uint32_t credits) override {
    credits_ = credits;
    grants_++;
    if (credits < min_grant_) {
      min_grant_ = credits;
    }
  }
  std::uint32_t window() const override { return credits_; }

  std::uint64_t grants() const { return grants_; }
  // Smallest grant ever received (shows the pressure squeeze).
  std::uint32_t min_grant() const { return min_grant_; }

 private:
  std::uint32_t credits_;
  std::uint64_t grants_ = 0;
  std::uint32_t min_grant_ = static_cast<std::uint32_t>(-1);
};

// AIMD: slow start to ssthresh, then additive increase (one PDU per window's
// worth of acks); multiplicative decrease on an ECN echo, slow-start restart
// on RTO. The |recover_| guard reacts at most once per window of data to a
// burst of congestion signals (TCP's NewReno recovery point).
class AimdPolicy : public CongestionPolicy {
 public:
  struct Config {
    std::uint32_t initial_cwnd = 1;
    std::uint32_t initial_ssthresh = 32;
    std::uint32_t max_cwnd = 64;
  };

  AimdPolicy() : AimdPolicy(Config{}) {}
  explicit AimdPolicy(const Config& cfg)
      : cfg_(cfg), cwnd_(cfg.initial_cwnd), ssthresh_(cfg.initial_ssthresh) {}

  bool CanSend(std::size_t in_flight) const override {
    return in_flight < cwnd_;
  }
  Status RefusalStatus() const override { return Status::kCongestion; }

  void OnAck(std::uint32_t ack_seq, std::uint32_t newly_acked, bool ecn_echo,
             std::uint32_t next_seq) override {
    if (ecn_echo && ack_seq > recover_) {
      ssthresh_ = cwnd_ / 2 > 1 ? cwnd_ / 2 : 1;
      cwnd_ = ssthresh_;
      recover_ = next_seq;
      ecn_backoffs_++;
      return;  // the halving consumes this ack; growth resumes next ack
    }
    if (cwnd_ < ssthresh_) {
      // Slow start: one PDU per acked PDU, not past ssthresh.
      cwnd_ += newly_acked;
      if (cwnd_ > ssthresh_) {
        cwnd_ = ssthresh_;
      }
    } else {
      // Congestion avoidance: one PDU per window's worth of acks.
      ack_accum_ += newly_acked;
      while (ack_accum_ >= cwnd_) {
        ack_accum_ -= cwnd_;
        cwnd_++;
      }
    }
    if (cwnd_ > cfg_.max_cwnd) {
      cwnd_ = cfg_.max_cwnd;
    }
  }

  void OnTimeout(std::uint32_t next_seq) override {
    ssthresh_ = cwnd_ / 2 > 2 ? cwnd_ / 2 : 2;
    cwnd_ = 1;
    ack_accum_ = 0;
    recover_ = next_seq;
    timeout_backoffs_++;
  }

  std::uint32_t window() const override { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  std::uint64_t ecn_backoffs() const { return ecn_backoffs_; }
  std::uint64_t timeout_backoffs() const { return timeout_backoffs_; }

 private:
  Config cfg_;
  std::uint32_t cwnd_;
  std::uint32_t ssthresh_;
  std::uint32_t ack_accum_ = 0;
  std::uint32_t recover_ = 0;
  std::uint64_t ecn_backoffs_ = 0;
  std::uint64_t timeout_backoffs_ = 0;
};

// The reliable-transport engine. One Transport instance is one side of one
// conversation: Push accepts messages subject to the congestion policy and
// transmits data frames; Pop handles arriving data (cumulative ack, in-order
// delivery) and acks (release retained references). Trace spans and the RTT
// histogram are named after the protocol ("swp-send", "credit.rtt_ns", ...).
class Transport : public Protocol {
 public:
  Transport(std::string name, Domain* domain, ProtocolStack* stack,
            PathId hdr_path, std::unique_ptr<CongestionPolicy> policy,
            bool extended_header);

  // --- Sender side ------------------------------------------------------------
  // Accepts a message when the policy admits it (RefusalStatus otherwise),
  // retains it for possible retransmission, records the pin in the attached
  // ledger, and transmits a data frame.
  Status Push(Message m) override;

  // Retransmits every unacknowledged frame (timer fired). Signals the policy
  // once per invocation when frames were outstanding. Idempotent when
  // nothing is outstanding.
  Status Tick();

  // Drives retransmission from |loop|: every data transmit arms a one-shot
  // timeout |rto| nanoseconds of sender time out. When it fires with frames
  // still outstanding they are retransmitted and the timer re-arms; when the
  // last outstanding frame is acknowledged the pending timeout is cancelled
  // (EventLoop::Cancel), so a fully-acked sender leaves no stale events in
  // the queue.
  void AttachTimer(EventLoop* loop, SimTime rto) {
    loop_ = loop;
    rto_ = rto;
  }

  // Records every pin/release in |ledger| (sender side). The ledger is
  // bookkeeping only — the transport still owns the references.
  void AttachLedger(RetransmitLedger* ledger) { ledger_ = ledger; }
  RetransmitLedger* ledger() const { return ledger_; }

  // Optional latency-decomposition sink (src/obs/latency.h). When attached,
  // every acknowledged PDU contributes wire (last-tx→ack), retransmit
  // (first-tx→last-tx) and pin_hold (push→ack) samples.
  void AttachLatency(LatencyDecomposition* lat) { lat_ = lat; }
  LatencyDecomposition* latency() const { return lat_; }

  // --- Receiver side -----------------------------------------------------------
  // Handles an arriving frame: data frames are acknowledged (cumulative)
  // and delivered upward in order; ack frames release retained references.
  Status Pop(Message m) override;

  // Out-of-band ECN: the fabric calls this before Pop when the arriving data
  // frame crossed a switch queue over its marking threshold (frames are
  // immutable fbufs — the mark cannot be written into the header in flight).
  // The receiver echoes the mark in the ack it sends for that frame.
  void MarkCongestionExperienced() {
    pending_ece_ = true;
    marks_seen_++;
  }

  // The receiver's grant calculator (credit transports): called per ack to
  // size the advertised in-flight budget. Unset, acks advertise an unbounded
  // grant.
  void SetCreditSource(std::function<std::uint32_t()> fn) {
    credit_source_ = std::move(fn);
  }

  // Flow abort: the owning domain was terminated (or the flow failed for
  // good) with frames possibly outstanding. The kernel's §3.3 cleanup
  // already dropped every fbuf reference the domain held; this forgets the
  // transport's bookkeeping — outstanding frames, stash, timers — and
  // reclaims the ledger. Never call it on a live, draining flow.
  void OnFlowAbort();

  // Orderly teardown on a LIVE domain (the peer died or the connection is
  // being closed): drops every reference this conversation still holds —
  // retained outstanding frames on the sender side, stashed out-of-order
  // frames on the receiver side — cancels the timer, and reclaims the
  // ledger. Unlike OnFlowAbort, the references are real and must be freed
  // here; §3.3 cleanup will never run for a domain that stays alive.
  Status Shutdown();

  // Registers a Machine termination hook that calls OnFlowAbort when this
  // transport's own domain dies. The transport must outlive any subsequent
  // DestroyDomain on the machine (true for the world structs that own both).
  void InstallAbortOnTermination();

  bool touches_body() const override { return false; }

  std::uint32_t unacked() const { return static_cast<std::uint32_t>(outstanding_.size()); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t delivered_in_order() const { return delivered_in_order_; }
  std::uint64_t timer_fires() const { return timer_fires_; }
  std::uint32_t next_seq() const { return next_seq_; }
  // Receiver-side out-of-order frames still awaiting their gap (nonzero at
  // quiescence means delivery wedged — the fault auditor's concern).
  std::size_t stashed() const { return stash_.size(); }
  SimTime rto() const { return rto_; }
  CongestionPolicy& policy() { return *policy_; }
  const CongestionPolicy& policy() const { return *policy_; }
  std::uint64_t marks_seen() const { return marks_seen_; }
  std::uint64_t ece_echoed() const { return ece_echoed_; }
  bool aborted() const { return aborted_; }

 private:
  Status TransmitData(std::uint32_t seq, const Message& m);
  Status TransmitAck();
  Status DeliverReady();
  void ArmTimer();
  std::uint64_t header_bytes() const {
    return extended_ ? sizeof(TransportHeader) : sizeof(SwpHeader);
  }

  PathId hdr_path_;
  std::unique_ptr<CongestionPolicy> policy_;
  bool extended_;
  RetransmitLedger* ledger_ = nullptr;

  // Span / metric names derived from the protocol name, owned here so the
  // trace can intern stable pointers.
  std::string span_send_;
  std::string span_ack_;
  std::string span_recv_;
  std::string rtt_metric_;

  // Evented retransmission (AttachTimer); null loop means Tick()-driven.
  EventLoop* loop_ = nullptr;
  SimTime rto_ = 0;
  bool timer_pending_ = false;
  EventLoop::EventId timer_id_ = 0;

  // Sender state: retained frames awaiting acknowledgement.
  std::uint32_t next_seq_ = 0;
  std::uint32_t send_base_ = 0;
  std::map<std::uint32_t, Message> outstanding_;

  // Receiver state: next frame to deliver and the out-of-order stash.
  std::uint32_t recv_next_ = 0;
  std::map<std::uint32_t, Message> stash_;

  // Last transmit time per outstanding frame, for the RTT histogram.
  // Retransmission restamps the frame (Karn-style: a retransmitted frame's
  // sample measures its latest transmission, not the first).
  std::map<std::uint32_t, SimTime> send_time_;

  // Latency-decomposition bookkeeping, maintained only while lat_ is
  // attached: when the PDU entered Push and when it first hit the wire.
  LatencyDecomposition* lat_ = nullptr;
  std::map<std::uint32_t, SimTime> pushed_time_;
  std::map<std::uint32_t, SimTime> first_tx_;

  // Receiver-side ECN state: a mark arrived with the frame about to Pop.
  bool pending_ece_ = false;
  std::function<std::uint32_t()> credit_source_;

  bool aborted_ = false;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t delivered_in_order_ = 0;
  std::uint64_t timer_fires_ = 0;
  std::uint64_t marks_seen_ = 0;
  std::uint64_t ece_echoed_ = 0;
};

// The two new transports, packaged like SwpProtocol for worlds and benches.

class CreditTransport : public Transport {
 public:
  CreditTransport(Domain* domain, ProtocolStack* stack, PathId hdr_path,
                  std::uint32_t initial_credits = 2)
      : Transport("credit", domain, stack, hdr_path,
                  std::make_unique<CreditPolicy>(initial_credits),
                  /*extended_header=*/true) {}

  CreditPolicy& credit_policy() { return static_cast<CreditPolicy&>(policy()); }
};

class AimdTransport : public Transport {
 public:
  AimdTransport(Domain* domain, ProtocolStack* stack, PathId hdr_path,
                const AimdPolicy::Config& cfg = AimdPolicy::Config())
      : Transport("aimd", domain, stack, hdr_path,
                  std::make_unique<AimdPolicy>(cfg),
                  /*extended_header=*/true) {}

  AimdPolicy& aimd_policy() { return static_cast<AimdPolicy&>(policy()); }
};

}  // namespace fbufs

#endif  // SRC_PROTO_TRANSPORT_H_
