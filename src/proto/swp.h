// SWP: a sliding-window reliable transport protocol over the message
// abstraction, in the x-kernel tradition.
//
// This is the extension that shows *why* fbufs provide copy rather than
// move semantics (§2.1.3): a reliable sender must retain access to
// transmitted data until it is acknowledged, because it may need to
// retransmit — with immutable, reference-counted fbufs the retention is a
// reference, never a copy. The receiver buffers out-of-order frames the
// same way.
//
// The engine — retention, cumulative acks, go-back-all retransmission, the
// evented RTO timer, in-order delivery — lives in src/proto/transport.h;
// SWP is that engine under a FixedWindowPolicy with the classic 16-byte
// header. Frames carry (type, sequence, length); acknowledgements are
// cumulative. Retransmission is driven either by explicit Tick() calls (a
// hand-cranked timer interrupt) or — when an EventLoop is attached via
// AttachTimer — by a real scheduled retransmission timeout.
#ifndef SRC_PROTO_SWP_H_
#define SRC_PROTO_SWP_H_

#include <cstdint>
#include <memory>

#include "src/proto/transport.h"
#include "src/sim/rng.h"

namespace fbufs {

class SwpProtocol : public Transport {
 public:
  SwpProtocol(Domain* domain, ProtocolStack* stack, PathId hdr_path,
              std::uint32_t window = 8)
      : Transport("swp", domain, stack, hdr_path,
                  std::make_unique<FixedWindowPolicy>(window),
                  /*extended_header=*/false) {}
};

// A deliberately unreliable hop for failure injection: drops a configurable
// fraction of frames and can duplicate or reorder. Wire it below two SWP
// peers; Push on one side Pops on the other.
class LossyChannel : public Protocol {
 public:
  LossyChannel(Domain* domain, ProtocolStack* stack, std::uint64_t seed,
               std::uint32_t drop_percent)
      : Protocol("lossy-channel", domain, stack),
        rng_(seed),
        drop_percent_(ClampPercent(drop_percent)) {}

  // The protocol whose Pop receives what the *other* side pushes.
  void set_peer_above(Protocol* p) { peer_above_ = p; }

  // Reconfigures the loss rate mid-experiment (fault-injection campaigns).
  // Saturates at 100: beyond-certain loss is a script bug, not a regime.
  void set_drop_percent(std::uint32_t p) { drop_percent_ = ClampPercent(p); }
  std::uint32_t drop_percent() const { return drop_percent_; }

  Status Push(Message m) override {
    if (rng_.Chance(drop_percent_, 100)) {
      dropped_++;
      return Status::kOk;  // the wire ate it
    }
    forwarded_++;
    return SendUpTo(peer_above_, m);
  }
  Status Pop(Message) override { return Status::kInvalidArgument; }

  bool touches_body() const override { return false; }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  static std::uint32_t ClampPercent(std::uint32_t p) { return p > 100 ? 100 : p; }

  Rng rng_;
  std::uint32_t drop_percent_;
  Protocol* peer_above_ = nullptr;
  std::uint64_t dropped_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PROTO_SWP_H_
