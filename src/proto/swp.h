// SWP: a sliding-window reliable transport protocol over the message
// abstraction, in the x-kernel tradition.
//
// This is the extension that shows *why* fbufs provide copy rather than
// move semantics (§2.1.3): a reliable sender must retain access to
// transmitted data until it is acknowledged, because it may need to
// retransmit — with immutable, reference-counted fbufs the retention is a
// reference, never a copy. The receiver buffers out-of-order frames the
// same way.
//
// Frames carry a small header (type, sequence, length); acknowledgements
// are cumulative. Retransmission is driven either by explicit Tick() calls
// (a hand-cranked timer interrupt) or — when an EventLoop is attached via
// AttachTimer — by a real scheduled retransmission timeout: each transmit
// arms a one-shot event RTO nanoseconds out, and the handler retransmits
// whatever is still outstanding when it fires.
#ifndef SRC_PROTO_SWP_H_
#define SRC_PROTO_SWP_H_

#include <cstdint>
#include <map>

#include "src/proto/protocol.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"

namespace fbufs {

struct SwpHeader {
  static constexpr std::uint32_t kData = 0x5350'4441;  // "SPDA"
  static constexpr std::uint32_t kAck = 0x5350'4143;   // "SPAC"

  std::uint32_t type = kData;
  std::uint32_t seq = 0;   // data: frame number | ack: next expected frame
  std::uint64_t len = 0;   // data payload bytes
};
static_assert(sizeof(SwpHeader) == 16);

class SwpProtocol : public Protocol {
 public:
  SwpProtocol(Domain* domain, ProtocolStack* stack, PathId hdr_path,
              std::uint32_t window = 8)
      : Protocol("swp", domain, stack), hdr_path_(hdr_path), window_(window) {}

  // --- Sender side ------------------------------------------------------------
  // Accepts a message when the window has room (kExhausted otherwise),
  // retains it for possible retransmission, and transmits a data frame.
  Status Push(Message m) override;

  // Retransmits every unacknowledged frame (timer fired). Idempotent when
  // nothing is outstanding.
  Status Tick();

  // Drives retransmission from |loop|: every data transmit arms a one-shot
  // timeout |rto| nanoseconds of sender time out. When it fires with frames
  // still outstanding they are retransmitted and the timer re-arms; when the
  // last outstanding frame is acknowledged the pending timeout is cancelled
  // (EventLoop::Cancel), so a fully-acked sender leaves no stale events in
  // the queue.
  void AttachTimer(EventLoop* loop, SimTime rto) {
    loop_ = loop;
    rto_ = rto;
  }

  // --- Receiver side -----------------------------------------------------------
  // Handles an arriving frame: data frames are acknowledged (cumulative)
  // and delivered upward in order; ack frames release retained references.
  Status Pop(Message m) override;

  bool touches_body() const override { return false; }

  std::uint32_t unacked() const { return static_cast<std::uint32_t>(outstanding_.size()); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t delivered_in_order() const { return delivered_in_order_; }
  std::uint64_t timer_fires() const { return timer_fires_; }
  std::uint32_t next_seq() const { return next_seq_; }
  // Receiver-side out-of-order frames still awaiting their gap (nonzero at
  // quiescence means delivery wedged — the fault auditor's concern).
  std::size_t stashed() const { return stash_.size(); }
  SimTime rto() const { return rto_; }

 private:
  Status TransmitData(std::uint32_t seq, const Message& m);
  Status TransmitAck();
  Status DeliverReady();
  void ArmTimer();

  PathId hdr_path_;
  std::uint32_t window_;

  // Evented retransmission (AttachTimer); null loop means Tick()-driven.
  EventLoop* loop_ = nullptr;
  SimTime rto_ = 0;
  bool timer_pending_ = false;
  EventLoop::EventId timer_id_ = 0;

  // Sender state: retained frames awaiting acknowledgement.
  std::uint32_t next_seq_ = 0;
  std::uint32_t send_base_ = 0;
  std::map<std::uint32_t, Message> outstanding_;

  // Receiver state: next frame to deliver and the out-of-order stash.
  std::uint32_t recv_next_ = 0;
  std::map<std::uint32_t, Message> stash_;

  // Last transmit time per outstanding frame, for the RTT histogram.
  // Retransmission restamps the frame (Karn-style: a retransmitted frame's
  // sample measures its latest transmission, not the first).
  std::map<std::uint32_t, SimTime> send_time_;

  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t delivered_in_order_ = 0;
  std::uint64_t timer_fires_ = 0;
};

// A deliberately unreliable hop for failure injection: drops a configurable
// fraction of frames and can duplicate or reorder. Wire it below two SWP
// peers; Push on one side Pops on the other.
class LossyChannel : public Protocol {
 public:
  LossyChannel(Domain* domain, ProtocolStack* stack, std::uint64_t seed,
               std::uint32_t drop_percent)
      : Protocol("lossy-channel", domain, stack),
        rng_(seed),
        drop_percent_(ClampPercent(drop_percent)) {}

  // The protocol whose Pop receives what the *other* side pushes.
  void set_peer_above(Protocol* p) { peer_above_ = p; }

  // Reconfigures the loss rate mid-experiment (fault-injection campaigns).
  // Saturates at 100: beyond-certain loss is a script bug, not a regime.
  void set_drop_percent(std::uint32_t p) { drop_percent_ = ClampPercent(p); }
  std::uint32_t drop_percent() const { return drop_percent_; }

  Status Push(Message m) override {
    if (rng_.Chance(drop_percent_, 100)) {
      dropped_++;
      return Status::kOk;  // the wire ate it
    }
    forwarded_++;
    return SendUpTo(peer_above_, m);
  }
  Status Pop(Message) override { return Status::kInvalidArgument; }

  bool touches_body() const override { return false; }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  static std::uint32_t ClampPercent(std::uint32_t p) { return p > 100 ? 100 : p; }

  Rng rng_;
  std::uint32_t drop_percent_;
  Protocol* peer_above_ = nullptr;
  std::uint64_t dropped_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PROTO_SWP_H_
