#include "src/proto/udp.h"

#include <cstring>

namespace fbufs {

namespace {
std::uint16_t HeaderChecksum(const UdpHeader& h) {
  // One's-complement sum over the header with the checksum field zeroed.
  UdpHeader copy = h;
  copy.checksum = 0;
  const auto* words = reinterpret_cast<const std::uint16_t*>(&copy);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < sizeof(copy) / 2; ++i) {
    sum += words[i];
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}
}  // namespace

Status UdpProtocol::Send(const Message& m, std::uint16_t src_port, std::uint16_t dst_port) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  TraceSpan span(machine.trace(), TraceCategory::kProto, "udp-send", dst_port, m.length());
  machine.clock().Advance(machine.costs().proto_pdu_ns);

  Fbuf* hdr_fb = nullptr;
  Status st = stack_->fsys()->Allocate(*domain(), hdr_path_, kHeaderBytes,
                                       /*want_volatile=*/true, &hdr_fb);
  if (!Ok(st)) {
    return st;
  }
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.length = static_cast<std::uint32_t>(kHeaderBytes + m.length());
  h.checksum = HeaderChecksum(h);
  machine.clock().Advance(machine.costs().ChecksumCost(kHeaderBytes));
  st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  if (!Ok(st)) {
    stack_->fsys()->Free(hdr_fb, *domain());
    return st;
  }
  if (checksum_body_) {
    std::uint16_t body_sum = 0;
    st = m.Checksum(*domain(), &body_sum);
    if (!Ok(st)) {
      stack_->fsys()->Free(hdr_fb, *domain());
      return st;
    }
  }

  const Message framed = Message::Concat(Message::Whole(hdr_fb), m);
  st = SendDown(framed);
  // The header fbuf was created here; release our reference now that the
  // synchronous downstream call is over.
  const Status free_st = stack_->fsys()->Free(hdr_fb, *domain());
  return Ok(st) ? free_st : st;
}

Status UdpProtocol::Pop(Message m) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  machine.clock().Advance(machine.costs().proto_pdu_ns);

  UdpHeader h;
  Status st = m.CopyOut(*domain(), 0, &h, sizeof(h));
  if (!Ok(st)) {
    dropped_++;
    return st;
  }
  machine.clock().Advance(machine.costs().ChecksumCost(kHeaderBytes));
  if (HeaderChecksum(h) != h.checksum) {
    dropped_++;
    return Status::kInvalidArgument;
  }
  auto it = bindings_.find(h.dst_port);
  if (it == bindings_.end()) {
    dropped_++;
    return Status::kNotFound;
  }
  const std::uint64_t body_len = h.length - kHeaderBytes;
  const Message body = m.Slice(kHeaderBytes, body_len);
  if (body.length() < body_len) {
    dropped_++;
    return Status::kTruncated;
  }
  delivered_++;
  return SendUpTo(it->second, body);
}

}  // namespace fbufs
