// Protocol framework: an x-kernel-style graph of protocol objects that may
// span multiple protection domains.
//
// Protocols exchange immutable Messages. Adjacent protocols in the same
// domain call each other directly; an edge between domains is a proxy that
// charges the IPC crossing, moves the message's fbuf references to the
// receiving domain (plus, for the non-integrated transfer, the per-fbuf
// list-marshalling cost the paper's §3.2.3 optimization removes), runs the
// callee, and releases the receiving domain's references when the
// synchronous delivery completes.
//
// Reference discipline:
//   * whoever allocates an fbuf frees its own reference when its use of the
//     message ends (source protocols after SendDown returns; header
//     allocators after the downstream call returns);
//   * a cross-domain delivery grants the receiving domain one reference per
//     distinct fbuf and the proxy releases them after the callee returns;
//   * a protocol that must retain data across calls (reassembly,
//     retransmission) takes its own references via FbufSystem::AddRef.
#ifndef SRC_PROTO_PROTOCOL_H_
#define SRC_PROTO_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fbuf/fbuf_system.h"
#include "src/ipc/rpc.h"
#include "src/msg/message.h"

namespace fbufs {

class ProtocolStack;
class RingHub;

class Protocol {
 public:
  Protocol(std::string name, Domain* domain, ProtocolStack* stack)
      : stack_(stack), name_(std::move(name)), domain_(domain) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  const std::string& name() const { return name_; }
  Domain* domain() const { return domain_; }

  // Downcall: the message heads toward the network.
  virtual Status Push(Message m) = 0;
  // Upcall: the message heads toward the application.
  virtual Status Pop(Message m) = 0;

  // Whether this protocol reads message bodies (as opposed to only its own
  // header). A proxy delivering into a protocol that never touches bodies
  // transfers references lazily, so body pages are never mapped into that
  // domain — the paper's netserver/UDP case.
  virtual bool touches_body() const { return true; }

  void set_below(Protocol* p) { below_ = p; }
  void set_above(Protocol* p) { above_ = p; }
  Protocol* below() const { return below_; }
  Protocol* above() const { return above_; }

 protected:
  Status SendDown(const Message& m);
  Status SendUp(const Message& m);
  // Demultiplexing layers deliver to a specific client instead of above_.
  Status SendUpTo(Protocol* client, const Message& m);

  ProtocolStack* stack_;

 private:
  std::string name_;
  Domain* domain_;
  Protocol* below_ = nullptr;
  Protocol* above_ = nullptr;
};

struct ProtocolStackConfig {
  // Integrated buffer management (§3.2.3): pass aggregates by reference;
  // no per-fbuf list marshal/rebuild at domain boundaries.
  bool integrated = true;
};

// Shared infrastructure for one protocol graph.
class ProtocolStack {
 public:
  using Config = ProtocolStackConfig;

  ProtocolStack(Machine* machine, FbufSystem* fsys, Rpc* rpc, Config config = Config())
      : machine_(machine), fsys_(fsys), rpc_(rpc), config_(config) {}

  Machine* machine() { return machine_; }
  FbufSystem* fsys() { return fsys_; }
  Rpc* rpc() { return rpc_; }
  const Config& config() const { return config_; }

  // Declared after wiring so crossings can charge the paper's cache/TLB
  // pressure penalty for paths spanning more than two domains.
  void set_domain_count(std::uint32_t n) { domain_count_ = n; }
  std::uint32_t domain_count() const { return domain_count_; }

  // Opt-in ring transport (src/ring): with a hub attached, a cross-domain
  // delivery whose (src, dst) pair has — or can lazily get — a ring submits
  // a handoff descriptor instead of a synchronous Rpc::Invoke; the callee
  // runs later, when the consumer drains its batch. nullptr (the default)
  // keeps every delivery on the synchronous path, byte-identical to the
  // pre-ring simulator.
  void EnableRings(RingHub* rings) { rings_ = rings; }
  RingHub* rings() { return rings_; }
  // Deliveries whose deferred callee failed (the submit-time status only
  // covers the descriptor write).
  std::uint64_t ring_errors() const { return ring_errors_; }

  // Delivers |m| from |from| into |to| (Push when |down|, Pop otherwise),
  // crossing a protection boundary if their domains differ.
  Status Deliver(const Message& m, Protocol* from, Protocol* to, bool down);

  // Releases |d|'s references on all distinct fbufs of |m|.
  Status FreeMessage(const Message& m, Domain& d);

  // Retains |m| in |d|: one extra reference per distinct fbuf.
  Status RetainMessage(const Message& m, Domain& d);

 private:
  Status DeliverRinged(const Message& m, Protocol* to, bool down, Domain& src,
                       Domain& dst, class TransferRing& ring);

  Machine* machine_;
  FbufSystem* fsys_;
  Rpc* rpc_;
  Config config_;
  std::uint32_t domain_count_ = 1;
  RingHub* rings_ = nullptr;
  std::uint64_t ring_errors_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PROTO_PROTOCOL_H_
