#include "src/proto/protocol.h"

#include <cassert>

namespace fbufs {

Status Protocol::SendDown(const Message& m) {
  assert(below_ != nullptr);
  return stack_->Deliver(m, this, below_, /*down=*/true);
}

Status Protocol::SendUp(const Message& m) {
  assert(above_ != nullptr);
  return stack_->Deliver(m, this, above_, /*down=*/false);
}

Status Protocol::SendUpTo(Protocol* client, const Message& m) {
  assert(client != nullptr);
  return stack_->Deliver(m, this, client, /*down=*/false);
}

Status ProtocolStack::Deliver(const Message& m, Protocol* from, Protocol* to, bool down) {
  Domain& src = *from->domain();
  Domain& dst = *to->domain();
  if (src.id() == dst.id()) {
    return down ? to->Push(m) : to->Pop(m);
  }

  // Proxy edge: a cross-domain invocation carrying the aggregate. The
  // crossing span encloses the transfers, so their VM map/fault spans nest
  // inside it on the exported timeline.
  TraceSpan span(machine_->trace(), TraceCategory::kIpc, "crossing", src.id(), dst.id());
  LayerScope layer(machine_->attribution(), CostDomain::kProto);
  ActorScope actor(machine_->attribution(), src.id());
  const std::vector<Fbuf*> fbufs = m.Fbufs();
  if (!config_.integrated) {
    // Steps 2a/3c of the base mechanism: build the fbuf list in the sender,
    // rebuild the aggregate in the receiver.
    machine_->clock().Advance(2 * fbufs.size() * machine_->costs().fbuf_list_marshal_ns);
  }
  const bool lazy = !to->touches_body();
  for (Fbuf* fb : fbufs) {
    const Status st = fsys_->Transfer(fb, src, dst, lazy);
    if (!Ok(st)) {
      return st;
    }
  }
  if (domain_count_ > 2) {
    // §4: a third domain on the path thrashes TLB and instruction cache
    // (no shared libraries: protocol-infrastructure text is duplicated).
    machine_->clock().Advance((domain_count_ - 2) * machine_->costs().cache_pressure_ns);
  }
  const Status st = rpc_->Invoke(src, dst, [&] { return down ? to->Push(m) : to->Pop(m); });
  // Synchronous delivery complete: the receiving domain's references die
  // unless the callee retained explicitly.
  const Status free_st = FreeMessage(m, dst);
  return Ok(st) ? free_st : st;
}

Status ProtocolStack::FreeMessage(const Message& m, Domain& d) {
  for (Fbuf* fb : m.Fbufs()) {
    const Status st = fsys_->Free(fb, d);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

Status ProtocolStack::RetainMessage(const Message& m, Domain& d) {
  for (Fbuf* fb : m.Fbufs()) {
    const Status st = fsys_->AddRef(fb, d);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

}  // namespace fbufs
