#include "src/proto/protocol.h"

#include <cassert>
#include <vector>

#include "src/obs/lifecycle.h"
#include "src/ring/ring_hub.h"

namespace fbufs {

Status Protocol::SendDown(const Message& m) {
  assert(below_ != nullptr);
  return stack_->Deliver(m, this, below_, /*down=*/true);
}

Status Protocol::SendUp(const Message& m) {
  assert(above_ != nullptr);
  return stack_->Deliver(m, this, above_, /*down=*/false);
}

Status Protocol::SendUpTo(Protocol* client, const Message& m) {
  assert(client != nullptr);
  return stack_->Deliver(m, this, client, /*down=*/false);
}

Status ProtocolStack::Deliver(const Message& m, Protocol* from, Protocol* to, bool down) {
  Domain& src = *from->domain();
  Domain& dst = *to->domain();
  if (src.id() == dst.id()) {
    return down ? to->Push(m) : to->Pop(m);
  }

  if (rings_ != nullptr) {
    TransferRing* ring = rings_->RingFor(src.id(), dst.id());
    if (ring != nullptr) {
      return DeliverRinged(m, to, down, src, dst, *ring);
    }
  }

  // Proxy edge: a cross-domain invocation carrying the aggregate. The
  // crossing span encloses the transfers, so their VM map/fault spans nest
  // inside it on the exported timeline.
  TraceSpan span(machine_->trace(), TraceCategory::kIpc, "crossing", src.id(), dst.id());
  LayerScope layer(machine_->attribution(), CostDomain::kProto);
  ActorScope actor(machine_->attribution(), src.id());
  const std::vector<Fbuf*> fbufs = m.Fbufs();
  if (!config_.integrated) {
    // Steps 2a/3c of the base mechanism: build the fbuf list in the sender,
    // rebuild the aggregate in the receiver.
    machine_->clock().Advance(2 * fbufs.size() * machine_->costs().fbuf_list_marshal_ns);
  }
  const bool lazy = !to->touches_body();
  for (Fbuf* fb : fbufs) {
    const Status st = fsys_->Transfer(fb, src, dst, lazy);
    if (!Ok(st)) {
      return st;
    }
  }
  if (domain_count_ > 2) {
    // §4: a third domain on the path thrashes TLB and instruction cache
    // (no shared libraries: protocol-infrastructure text is duplicated).
    machine_->clock().Advance((domain_count_ - 2) * machine_->costs().cache_pressure_ns);
  }
  const Status st = rpc_->Invoke(src, dst, [&] { return down ? to->Push(m) : to->Pop(m); });
  // Synchronous delivery complete: the receiving domain's references die
  // unless the callee retained explicitly.
  const Status free_st = FreeMessage(m, dst);
  return Ok(st) ? free_st : st;
}

Status ProtocolStack::DeliverRinged(const Message& m, Protocol* to, bool down,
                                    Domain& src, Domain& dst,
                                    TransferRing& ring) {
  const std::vector<Fbuf*> fbufs = m.Fbufs();
  const AttrPathId path =
      fbufs.empty() ? kAttrNoPath : static_cast<AttrPathId>(fbufs.front()->path);
  {
    // Producer-side half of the proxy edge: marshal (if non-integrated) and
    // the eager reference transfers happen at submit, exactly as on the sync
    // path, so the receiver holds its references before the descriptor is
    // visible in the ring — the fbuf cannot die under the queued handoff.
    LayerScope layer(machine_->attribution(), CostDomain::kProto);
    ActorScope actor(machine_->attribution(), src.id());
    if (!config_.integrated) {
      machine_->clock().Advance(2 * fbufs.size() *
                                machine_->costs().fbuf_list_marshal_ns);
    }
    const bool lazy = !to->touches_body();
    for (Fbuf* fb : fbufs) {
      const Status st = fsys_->Transfer(fb, src, dst, lazy);
      if (!Ok(st)) {
        return st;
      }
    }
    if (domain_count_ > 2) {
      machine_->clock().Advance((domain_count_ - 2) *
                                machine_->costs().cache_pressure_ns);
    }
  }
  Domain* dstp = &dst;
  const Status sub = ring.SubmitHandoff(
      path,
      [this, m, to, down, dstp] {
        LayerScope layer(machine_->attribution(), CostDomain::kProto);
        ActorScope actor(machine_->attribution(), dstp->id());
        if (machine_->lifecycle() != nullptr) {
          for (Fbuf* fb : m.Fbufs()) {
            machine_->lifecycle()->Hop(fb->id, HopKind::kRingDeliver,
                                       dstp->id(), "ring");
          }
        }
        const Status st = down ? to->Push(m) : to->Pop(m);
        const Status free_st = FreeMessage(m, *dstp);
        return Ok(st) ? free_st : st;
      },
      [this, m, dstp] { FreeMessage(m, *dstp); },
      [this](Status st, SimTime) {
        if (!Ok(st)) {
          ring_errors_++;
        }
      });
  if (!Ok(sub)) {
    // Full SQ: release the references granted above and surface the
    // retryable status (FlowBackoff::IsBackpressure) to the caller.
    FreeMessage(m, dst);
    return sub;
  }
  if (machine_->lifecycle() != nullptr) {
    for (Fbuf* fb : fbufs) {
      machine_->lifecycle()->Hop(fb->id, HopKind::kRingSubmit, src.id(), "ring",
                                 dst.id());
    }
  }
  return Status::kOk;
}

Status ProtocolStack::FreeMessage(const Message& m, Domain& d) {
  for (Fbuf* fb : m.Fbufs()) {
    const Status st = fsys_->Free(fb, d);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

Status ProtocolStack::RetainMessage(const Message& m, Domain& d) {
  for (Fbuf* fb : m.Fbufs()) {
    const Status st = fsys_->AddRef(fb, d);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

}  // namespace fbufs
