// UDP, over the message abstraction: real header build/parse and port
// demultiplexing. Per the paper's §4, UDP is "slightly modified to support
// messages larger than 64 KBytes": the length field is widened to 32 bits
// (the header grows from 8 to 12 bytes). The checksum covers the header;
// covering the body is configurable (off by default, as was common practice
// and as the paper's netserver discussion assumes).
#ifndef SRC_PROTO_UDP_H_
#define SRC_PROTO_UDP_H_

#include <cstdint>
#include <map>

#include "src/proto/protocol.h"

namespace fbufs {

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t length = 0;  // header + body (widened for > 64 KB messages)
  std::uint16_t checksum = 0;
  std::uint16_t zero = 0;
};
static_assert(sizeof(UdpHeader) == 12);

class UdpProtocol : public Protocol {
 public:
  static constexpr std::uint64_t kHeaderBytes = sizeof(UdpHeader);

  // |hdr_path| is the data path used to allocate header fbufs (kNoPath for
  // uncached headers).
  UdpProtocol(Domain* domain, ProtocolStack* stack, PathId hdr_path,
              bool checksum_body = false)
      : Protocol("udp", domain, stack), hdr_path_(hdr_path), checksum_body_(checksum_body) {}

  // Routes messages arriving for |port| up into |client|.
  void Bind(std::uint16_t port, Protocol* client) { bindings_[port] = client; }

  // Ports used by Push (the Protocol-interface entry).
  void SetDefaultPorts(std::uint16_t src, std::uint16_t dst) {
    default_src_ = src;
    default_dst_ = dst;
  }

  Status Push(Message m) override { return Send(m, default_src_, default_dst_); }
  Status Pop(Message m) override;

  Status Send(const Message& m, std::uint16_t src_port, std::uint16_t dst_port);

  bool touches_body() const override { return checksum_body_; }

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  PathId hdr_path_;
  bool checksum_body_;
  std::uint16_t default_src_ = 1;
  std::uint16_t default_dst_ = 2;
  std::map<std::uint16_t, Protocol*> bindings_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PROTO_UDP_H_
