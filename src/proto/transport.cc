#include "src/proto/transport.h"

#include <algorithm>
#include <utility>

#include "src/obs/lifecycle.h"

namespace fbufs {

Transport::Transport(std::string name, Domain* domain, ProtocolStack* stack,
                     PathId hdr_path, std::unique_ptr<CongestionPolicy> policy,
                     bool extended_header)
    : Protocol(name, domain, stack),
      hdr_path_(hdr_path),
      policy_(std::move(policy)),
      extended_(extended_header),
      span_send_(name + "-send"),
      span_ack_(name + "-ack"),
      span_recv_(name + "-recv"),
      rtt_metric_(name + ".rtt_ns") {}

Status Transport::TransmitData(std::uint32_t seq, const Message& m) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  // The send span encloses fragmentation (IP) and adapter work below.
  TraceSpan span(machine.trace(), TraceCategory::kProto, span_send_.c_str(),
                 seq, m.length());
  send_time_[seq] = machine.clock().Now();
  if (lat_ != nullptr && first_tx_.count(seq) == 0) {
    first_tx_[seq] = send_time_[seq];
  }
  machine.clock().Advance(machine.costs().proto_pdu_ns);
  Fbuf* hdr_fb = nullptr;
  Status st = stack_->fsys()->Allocate(*domain(), hdr_path_, header_bytes(),
                                       /*want_volatile=*/true, &hdr_fb);
  if (!Ok(st)) {
    return st;
  }
  if (extended_) {
    TransportHeader h;
    h.type = SwpHeader::kData;
    h.seq = seq;
    h.len = m.length();
    st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  } else {
    SwpHeader h;
    h.type = SwpHeader::kData;
    h.seq = seq;
    h.len = m.length();
    st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  }
  if (Ok(st)) {
    st = SendDown(Message::Concat(Message::Whole(hdr_fb), m));
  }
  const Status free_st = stack_->fsys()->Free(hdr_fb, *domain());
  return Ok(st) ? free_st : st;
}

Status Transport::TransmitAck() {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  TraceSpan span(machine.trace(), TraceCategory::kProto, span_ack_.c_str(),
                 recv_next_, 0);
  machine.clock().Advance(machine.costs().proto_pdu_ns);
  Fbuf* hdr_fb = nullptr;
  Status st = stack_->fsys()->Allocate(*domain(), hdr_path_, header_bytes(),
                                       /*want_volatile=*/true, &hdr_fb);
  if (!Ok(st)) {
    return st;
  }
  if (extended_) {
    TransportHeader h;
    h.type = SwpHeader::kAck;
    h.seq = recv_next_;
    h.len = 0;
    // The grant rides on every ack: the receiver's current view of how many
    // PDUs this flow may keep in flight, sized to its fbuf headroom.
    h.credit = credit_source_ ? credit_source_()
                              : static_cast<std::uint32_t>(-1);
    h.flags = 0;
    if (pending_ece_) {
      h.flags |= TransportHeader::kFlagEce;
      pending_ece_ = false;
      ece_echoed_++;
    }
    st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  } else {
    SwpHeader h;
    h.type = SwpHeader::kAck;
    h.seq = recv_next_;
    h.len = 0;
    st = domain()->WriteBytes(hdr_fb->base, &h, sizeof(h));
  }
  if (Ok(st)) {
    acks_sent_++;
    st = SendDown(Message::Whole(hdr_fb));
  }
  const Status free_st = stack_->fsys()->Free(hdr_fb, *domain());
  return Ok(st) ? free_st : st;
}

Status Transport::Push(Message m) {
  if (!policy_->CanSend(outstanding_.size())) {
    return policy_->RefusalStatus();
  }
  // Copy semantics at work: retain a reference so the data stays intact and
  // accessible for retransmission, no matter what the producer does next
  // with its own references.
  Status st = stack_->RetainMessage(m, *domain());
  if (!Ok(st)) {
    return st;
  }
  const std::uint32_t seq = next_seq_++;
  outstanding_[seq] = m;
  Machine& machine = *stack_->machine();
  if (ledger_ != nullptr) {
    ledger_->Pin(seq, m.Fbufs(), machine.clock().Now());
  }
  if (machine.lifecycle() != nullptr) {
    // The retained reference is the paper's retransmit pin — record it even
    // when no ledger audits this flow.
    for (Fbuf* fb : m.Fbufs()) {
      machine.lifecycle()->Hop(fb->id, HopKind::kPin, domain()->id(), "proto",
                               seq);
    }
  }
  if (lat_ != nullptr) {
    pushed_time_[seq] = machine.clock().Now();
  }
  st = TransmitData(seq, m);
  if (Ok(st)) {
    ArmTimer();
  }
  return st;
}

void Transport::ArmTimer() {
  if (loop_ == nullptr || timer_pending_ || outstanding_.empty()) {
    return;
  }
  timer_pending_ = true;
  // The timeout matures RTO nanoseconds of *sender* time from now; the
  // loop's dispatch floor may already be past that (host timelines are only
  // partially ordered), so clamp the event key, never the deadline.
  const SimTime deadline = stack_->machine()->clock().Now() + rto_;
  const SimTime key = std::max(deadline, loop_->Now());
  timer_id_ = loop_->Schedule(key, "swp-rto", [this, deadline] {
    timer_pending_ = false;
    if (outstanding_.empty()) {
      return;  // defensive: a full ack should have cancelled this event
    }
    timer_fires_++;
    // The interrupt fires once the sender's own clock reaches the deadline.
    stack_->machine()->clock().AdvanceToAtLeast(deadline);
    Tick();
    ArmTimer();
  });
}

Status Transport::Tick() {
  if (!outstanding_.empty()) {
    // One loss signal per timer fire, however many frames go back out.
    policy_->OnTimeout(next_seq_);
  }
  // A retransmitted frame can be acknowledged synchronously (the ack rides
  // back inside TransmitData's call chain) and erase outstanding_ entries,
  // so iterate over a snapshot of the sequence numbers.
  std::vector<std::uint32_t> seqs;
  seqs.reserve(outstanding_.size());
  for (const auto& [seq, m] : outstanding_) {
    seqs.push_back(seq);
  }
  for (const std::uint32_t seq : seqs) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) {
      continue;  // acked by an earlier retransmission this tick
    }
    retransmissions_++;
    const Status st = TransmitData(seq, it->second);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

Status Transport::DeliverReady() {
  while (true) {
    auto it = stash_.find(recv_next_);
    if (it == stash_.end()) {
      return Status::kOk;
    }
    Message ready = it->second;
    stash_.erase(it);
    recv_next_++;
    delivered_in_order_++;
    const Status st = SendUp(ready);
    // Release the references taken when the frame was stashed.
    const Status free_st = stack_->FreeMessage(ready, *domain());
    if (!Ok(st)) {
      return st;
    }
    if (!Ok(free_st)) {
      return free_st;
    }
  }
}

Status Transport::Pop(Message m) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kProto);
  ActorScope actor(machine.attribution(), domain()->id());
  PathScope pscope(machine.attribution(), hdr_path_);
  TraceSpan span(machine.trace(), TraceCategory::kProto, span_recv_.c_str(),
                 0, m.length());
  machine.clock().Advance(machine.costs().proto_pdu_ns);
  SwpHeader h;
  Status st = m.CopyOut(*domain(), 0, &h, sizeof(h));
  if (!Ok(st)) {
    return st;
  }

  if (h.type == SwpHeader::kAck) {
    std::uint32_t credit = static_cast<std::uint32_t>(-1);
    bool ece = false;
    if (extended_) {
      TransportHeader xh;
      st = m.CopyOut(*domain(), 0, &xh, sizeof(xh));
      if (!Ok(st)) {
        return st;
      }
      credit = xh.credit;
      ece = (xh.flags & TransportHeader::kFlagEce) != 0;
    }
    // Cumulative: everything below h.seq is delivered; drop retentions.
    std::uint32_t newly_acked = 0;
    while (!outstanding_.empty() && outstanding_.begin()->first < h.seq) {
      const std::uint32_t acked = outstanding_.begin()->first;
      const SimTime now = machine.clock().Now();
      const auto sent = send_time_.find(acked);
      if (sent != send_time_.end()) {
        if (machine.metrics() != nullptr && now >= sent->second) {
          machine.metrics()->GetHistogram(rtt_metric_)
              ->Observe(now - sent->second);
        }
        if (lat_ != nullptr) {
          const SimTime last_tx = sent->second;
          if (now >= last_tx) {
            lat_->wire.push_back(now - last_tx);
          }
          const auto ftx = first_tx_.find(acked);
          if (ftx != first_tx_.end()) {
            if (last_tx >= ftx->second) {
              lat_->retransmit.push_back(last_tx - ftx->second);
            }
            first_tx_.erase(ftx);
          }
          const auto pushed = pushed_time_.find(acked);
          if (pushed != pushed_time_.end()) {
            if (now >= pushed->second) {
              lat_->pin_hold.push_back(now - pushed->second);
            }
            pushed_time_.erase(pushed);
          }
        }
        send_time_.erase(sent);
      }
      if (machine.lifecycle() != nullptr) {
        for (Fbuf* fb : outstanding_.begin()->second.Fbufs()) {
          machine.lifecycle()->Hop(fb->id, HopKind::kUnpin, domain()->id(),
                                   "proto", acked);
        }
      }
      const Status free_st = stack_->FreeMessage(outstanding_.begin()->second, *domain());
      if (!Ok(free_st)) {
        return free_st;
      }
      outstanding_.erase(outstanding_.begin());
      newly_acked++;
    }
    if (ledger_ != nullptr) {
      ledger_->ReleaseBelow(h.seq);
    }
    if (h.seq > send_base_) {
      send_base_ = h.seq;
    }
    if (extended_) {
      policy_->OnCreditGrant(credit);
    }
    // Duplicate acks (newly_acked == 0) still reach the policy: an ECN echo
    // on a re-ack must still shrink the AIMD window.
    policy_->OnAck(h.seq, newly_acked, ece, next_seq_);
    if (timer_pending_ && loop_ != nullptr &&
        (outstanding_.empty() || newly_acked > 0)) {
      // Full ack: nothing left to guard. Partial ack: the clock restarts
      // for the frames still in flight — keeping the original deadline
      // would fire a spurious go-back-all RTO every rto_ whenever the
      // window stays continuously occupied, acks or no acks.
      loop_->Cancel(timer_id_);
      timer_pending_ = false;
      ArmTimer();
    }
    return Status::kOk;
  }
  if (h.type != SwpHeader::kData) {
    return Status::kInvalidArgument;
  }

  const Message body = m.Slice(header_bytes(), h.len);
  if (body.length() < h.len) {
    return Status::kTruncated;
  }
  if (h.seq < recv_next_ || stash_.count(h.seq) != 0) {
    duplicates_dropped_++;
    return TransmitAck();  // re-ack so the sender stops retransmitting
  }
  if (h.seq == recv_next_) {
    recv_next_++;
    delivered_in_order_++;
    st = SendUp(body);
    if (!Ok(st)) {
      return st;
    }
    st = DeliverReady();
    if (!Ok(st)) {
      return st;
    }
  } else {
    // Out of order: retain and stash until the gap fills.
    st = stack_->RetainMessage(body, *domain());
    if (!Ok(st)) {
      return st;
    }
    stash_[h.seq] = body;
  }
  return TransmitAck();
}

Status Transport::Shutdown() {
  if (timer_pending_ && loop_ != nullptr) {
    loop_->Cancel(timer_id_);
    timer_pending_ = false;
  }
  Status st = Status::kOk;
  Machine& machine = *stack_->machine();
  for (auto& [seq, m] : outstanding_) {
    if (machine.lifecycle() != nullptr) {
      // Orderly close: the retained pins are released here, not by an ack.
      for (Fbuf* fb : m.Fbufs()) {
        machine.lifecycle()->Hop(fb->id, HopKind::kUnpin, domain()->id(),
                                 "proto", seq);
      }
    }
    const Status free_st = stack_->FreeMessage(m, *domain());
    if (Ok(st) && !Ok(free_st)) {
      st = free_st;
    }
  }
  outstanding_.clear();
  send_time_.clear();
  pushed_time_.clear();
  first_tx_.clear();
  for (auto& [seq, m] : stash_) {
    const Status free_st = stack_->FreeMessage(m, *domain());
    if (Ok(st) && !Ok(free_st)) {
      st = free_st;
    }
  }
  stash_.clear();
  if (ledger_ != nullptr) {
    ledger_->ReclaimAll();
  }
  aborted_ = true;
  return st;
}

void Transport::OnFlowAbort() {
  aborted_ = true;
  if (timer_pending_ && loop_ != nullptr) {
    loop_->Cancel(timer_id_);
    timer_pending_ = false;
  }
  // The §3.3 domain cleanup already dropped every reference this domain held
  // (fbufs were unmapped and unreffed when it died) — freeing here would
  // double-free. Forget the bookkeeping only. The lifecycle journeys of the
  // pinned fbufs were already closed (abort hops) by the §3.3 sweep, which
  // runs before this hook — recording unpins here would hit ended journeys.
  outstanding_.clear();
  send_time_.clear();
  pushed_time_.clear();
  first_tx_.clear();
  stash_.clear();
  if (ledger_ != nullptr) {
    ledger_->ReclaimAll();
  }
}

void Transport::InstallAbortOnTermination() {
  stack_->machine()->AddTerminationHook([this](Domain& d) {
    if (&d == domain()) {
      OnFlowAbort();
    }
  });
}

}  // namespace fbufs
