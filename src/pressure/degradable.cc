#include "src/pressure/degradable.h"

#include "src/pressure/backoff.h"

namespace fbufs {

Status DegradablePath::SendPdu(std::uint64_t bytes, Fbuf** retained) {
  if (retained != nullptr) {
    *retained = nullptr;
  }
  if (pressure_->ModeFor(path_) == PathMode::kZeroCopy) {
    const Status st = SendZeroCopy(bytes, retained);
    if (Ok(st)) {
      pressure_->RecordAllocSuccess(path_);
      return st;
    }
    if (!IsBackpressure(st)) {
      return st;
    }
    if (pressure_->RecordAllocFailure(path_) == PathMode::kZeroCopy) {
      // Not degraded yet: hand the backpressure to the caller to park on.
      return st;
    }
    // Threshold reached — this PDU and the following ones go via copy.
  }
  Status st = SendDegraded(bytes);
  if (IsBackpressure(st)) {
    // The copy path allocates outside the fbuf system, so it never reaches
    // the allocator's built-in emergency sweep: run it here. Frames parked
    // on free lists (a degraded path sends no deallocation traffic that
    // would recycle them) come back to the physical pool, and the copy is
    // retried once.
    if (pressure_->OnAllocationFailure(2 * PagesFor(bytes)) > 0) {
      st = SendDegraded(bytes);
    }
  }
  return st;
}

Status DegradablePath::SendZeroCopy(std::uint64_t bytes, Fbuf** retained) {
  Fbuf* fb = nullptr;
  Status st = fsys_->Allocate(*sender_, path_, bytes, /*want_volatile=*/true, &fb);
  if (!Ok(st)) {
    return st;
  }
  st = sender_->TouchRange(fb->base, bytes, Access::kWrite);
  if (!Ok(st)) {
    fsys_->Free(fb, *sender_);
    return st;
  }
  st = fsys_->Transfer(fb, *sender_, *receiver_);
  if (!Ok(st)) {
    fsys_->Free(fb, *sender_);
    return st;
  }
  st = receiver_->TouchRange(fb->base, bytes, Access::kRead);
  const Status recv_free = fsys_->Free(fb, *receiver_);
  if (!Ok(st) || !Ok(recv_free)) {
    fsys_->Free(fb, *sender_);
    return !Ok(st) ? st : recv_free;
  }
  // The sender's reference is the retention handle; without a taker it
  // drops now and the fbuf returns to the path's free list.
  if (retained != nullptr) {
    *retained = fb;
  } else {
    fsys_->Free(fb, *sender_);
  }
  zero_copy_pdus_++;
  return Status::kOk;
}

Status DegradablePath::SendDegraded(std::uint64_t bytes) {
  Machine& machine = fsys_->machine();
  const std::uint64_t pages = PagesFor(bytes);
  auto it = tx_staging_.find(pages);
  if (it == tx_staging_.end()) {
    BufferRef fresh;
    const Status st = copy_->Alloc(*sender_, bytes, &fresh);
    if (!Ok(st)) {
      return st;  // even the copy path is out of memory: caller parks
    }
    it = tx_staging_.emplace(pages, fresh).first;
  }
  BufferRef& ref = it->second;
  ref.bytes = bytes;
  Status st = sender_->TouchRange(ref.sender_addr, bytes, Access::kWrite);
  if (!Ok(st)) {
    return st;
  }
  st = copy_->Send(ref, *sender_, *receiver_);
  if (!Ok(st)) {
    return st;
  }
  st = receiver_->TouchRange(ref.receiver_addr, bytes, Access::kRead);
  if (!Ok(st)) {
    return st;
  }
  copy_->ReceiverFree(ref, *receiver_);
  machine.stats().degraded_pdus++;
  degraded_pdus_++;
  return Status::kOk;
}

}  // namespace fbufs
