// Memory-pressure manager: watermarks, reclamation sweeps, degradation.
//
// The paper's shared fbuf pool has a soft spot §3.3 only partially
// addresses: a slow or greedy domain can sit on fbufs until every other
// path starves, and the allocator's only answer is an error return. This
// subsystem makes exhaustion a survivable regime instead of a terminal one:
//
//   * Watermarks. The pool is "under pressure" when free physical frames
//     drop below the low watermark. Every allocation checks (cheaply); the
//     first crossing schedules a reclamation sweep on the event loop, so
//     memory drains back before allocations start failing.
//   * Reclamation sweep. In rising order of cost: discard the frames of
//     free-listed fbufs (FbufSystem::ReclaimFreeMemory — pure §3.3
//     pageout-daemon behaviour), evict clean FileCache blocks down to a
//     configured floor (they can be re-read from disk), and finally destroy
//     the free lists of idle cached paths (FbufSystem::ShrinkIdlePaths),
//     which gives back region space and chunk quota at the price of cold
//     restarts. The sweep stops as soon as free frames reach the high
//     watermark.
//   * Emergency sweep. An allocation about to fail for lack of frames or
//     region space runs the same sweep synchronously; if anything came
//     back, the allocation is retried once (FbufSystem wires this through
//     the PressureHooks interface).
//   * Degradation. A path whose allocations keep failing is switched to
//     the copy path (see DegradablePath in degradable.h): senders keep
//     making progress at copy speed instead of parking forever. The switch
//     back is automatic: once free frames recover to the high watermark,
//     ModeFor reports zero-copy again.
#ifndef SRC_PRESSURE_PRESSURE_H_
#define SRC_PRESSURE_PRESSURE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cache/file_cache.h"
#include "src/fbuf/fbuf_system.h"
#include "src/pressure/retransmit_ledger.h"
#include "src/sim/event_loop.h"

namespace fbufs {

struct PressureConfig {
  // Free-frame watermarks. Below |low_free_frames| the pool is under
  // pressure (sweeps trigger); a sweep works until free frames reach
  // |high_free_frames|, and a degraded path returns to zero-copy there.
  std::uint64_t low_free_frames = 64;
  std::uint64_t high_free_frames = 128;
  // The sweep never shrinks an attached FileCache below this many blocks.
  std::uint64_t cache_floor_blocks = 8;
  // A cached path allocator that has not served an allocation for this long
  // counts as idle and loses its free lists in the sweep's last stage.
  SimTime path_idle_ns = 10 * kMillisecond;
  // Consecutive allocation failures on a path before it degrades to copy.
  std::uint32_t degrade_after_failures = 3;
  // A retransmit-pinned fbuf this old counts as cold: its retransmission has
  // already waited at least one RTO-scale horizon, so the sweep's pageout
  // stage may write it to backing store (the next retransmission faults it
  // back in at page_in_ns instead of wedging the allocator now).
  SimTime pageout_min_age_ns = 2 * kMillisecond;
};

// Whether a path should currently move data zero-copy or via the copy
// fallback.
enum class PathMode { kZeroCopy, kDegraded };

class PressureManager : public PressureHooks {
 public:
  // Installs itself as |fsys|'s pressure hooks; detaches in the destructor.
  PressureManager(FbufSystem* fsys, const PressureConfig& config = PressureConfig());
  ~PressureManager() override;

  PressureManager(const PressureManager&) = delete;
  PressureManager& operator=(const PressureManager&) = delete;

  // With a loop attached, watermark crossings schedule the sweep as an
  // event; without one the sweep runs synchronously inside Allocate.
  void AttachEventLoop(EventLoop* loop) { loop_ = loop; }
  // Clean blocks of |cache| become reclaimable (evicted toward the floor).
  void AttachFileCache(FileCache* cache) { cache_ = cache; }

  // Registers a transport's pinned-retransmit ledger. The sweep gains a
  // pageout stage: cold pinned fbufs (pinned longer than pageout_min_age_ns)
  // are written to backing store — their contents must survive for the
  // retransmission, so unlike free-listed memory they are paged, never
  // discarded. Ledgers must outlive the manager or be detached by
  // DetachRetransmitLedgers.
  void AttachRetransmitLedger(const RetransmitLedger* ledger) {
    ledgers_.push_back(ledger);
  }
  void DetachRetransmitLedgers() { ledgers_.clear(); }

  // --- Credit flow control ----------------------------------------------------
  // The receiver-side grant calculator: how many PDUs of |pdu_pages| pages
  // each of |flows| senders may keep in flight, given current free frames
  // minus the low-watermark reserve. Clamped to [1, max_credit]: the floor
  // avoids credit deadlock (a flow with zero credit never generates the ack
  // that would re-grant it), the ceiling bounds how much one ack can open.
  // As the pool approaches the low watermark the grant shrinks toward 1 —
  // this is how memory pressure propagates backward into the network.
  std::uint32_t CreditFor(std::uint64_t pdu_pages, std::uint32_t flows,
                          std::uint32_t max_credit) const;

  // PressureHooks:
  void OnAllocate() override;
  std::uint64_t OnAllocationFailure(std::uint64_t pages_needed) override;

  // --- Degradation state machine --------------------------------------------
  // Current mode for |path|. A degraded path auto-restores to zero-copy
  // when free frames have recovered to the high watermark.
  PathMode ModeFor(PathId path);
  // A zero-copy allocation on |path| failed with a backpressure status.
  // Returns the mode to use from now on (kDegraded once the consecutive-
  // failure threshold is reached).
  PathMode RecordAllocFailure(PathId path);
  // A zero-copy allocation succeeded: the failure streak resets.
  void RecordAllocSuccess(PathId path);

  bool UnderPressure() const;

  // True while any path this manager tracks is currently degraded (the
  // auto-restore check in ModeFor applies, so a recovered pool reports
  // false). Backs the path-registration admission gate.
  bool AnyPathDegraded();

  std::uint64_t sweeps() const { return sweeps_; }
  std::uint64_t admissions_refused() const { return fsys_->paths().refused(); }
  std::uint64_t pages_reclaimed() const { return pages_reclaimed_; }
  std::uint64_t degradations() const { return degradations_; }
  std::uint64_t restorations() const { return restorations_; }
  std::uint64_t pages_paged_out() const { return pages_paged_out_; }

 private:
  struct PathState {
    PathMode mode = PathMode::kZeroCopy;
    std::uint32_t consecutive_failures = 0;
  };

  std::uint64_t FreeFrames() const;
  // One reclamation pass toward |target_free| frames; returns pages freed.
  std::uint64_t Sweep(std::uint64_t target_free);
  // The sweep's pageout stage: page cold ledger-pinned fbufs to backing
  // store until |target_free| frames are free or the cold set is exhausted.
  void PageOutColdPinned(std::uint64_t target_free);

  FbufSystem* fsys_;
  PressureConfig config_;
  EventLoop* loop_ = nullptr;
  FileCache* cache_ = nullptr;
  std::vector<const RetransmitLedger*> ledgers_;
  std::uint64_t pages_paged_out_ = 0;
  bool sweep_scheduled_ = false;
  bool in_sweep_ = false;
  std::map<PathId, PathState> path_states_;

  std::uint64_t sweeps_ = 0;
  std::uint64_t pages_reclaimed_ = 0;
  std::uint64_t degradations_ = 0;
  std::uint64_t restorations_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PRESSURE_PRESSURE_H_
