#include "src/pressure/pressure.h"

#include <algorithm>

namespace fbufs {

PressureManager::PressureManager(FbufSystem* fsys, const PressureConfig& config)
    : fsys_(fsys), config_(config) {
  fsys_->SetPressureHooks(this);
  // Pressure-aware admission: while any path on the host is degraded, new
  // path registrations are refused with kBackpressure — a host that cannot
  // serve its existing paths zero-copy should not accept more.
  fsys_->paths().SetAdmissionGate([this] {
    return AnyPathDegraded() ? Status::kBackpressure : Status::kOk;
  });
}

PressureManager::~PressureManager() {
  fsys_->paths().ClearAdmissionGate();
  fsys_->SetPressureHooks(nullptr);
}

std::uint64_t PressureManager::FreeFrames() const {
  return fsys_->machine().pmem().free_frames();
}

bool PressureManager::UnderPressure() const {
  return FreeFrames() < config_.low_free_frames;
}

void PressureManager::OnAllocate() {
  if (in_sweep_ || !UnderPressure()) {
    return;
  }
  if (loop_ == nullptr) {
    Sweep(config_.high_free_frames);
    return;
  }
  if (sweep_scheduled_) {
    return;
  }
  sweep_scheduled_ = true;
  // Clamp the key, never the value: the machine clock may be ahead of the
  // loop's dispatch floor.
  const SimTime key = std::max(loop_->Now(), fsys_->machine().clock().Now());
  loop_->Schedule(key, "pressure-sweep", [this] {
    sweep_scheduled_ = false;
    if (UnderPressure()) {
      Sweep(config_.high_free_frames);
    }
  });
}

std::uint64_t PressureManager::OnAllocationFailure(std::uint64_t pages_needed) {
  // Emergency path: the allocation is about to fail, so sweep synchronously
  // and far enough to cover the request even if the watermark is tiny.
  return Sweep(std::max(config_.high_free_frames, pages_needed));
}

std::uint64_t PressureManager::Sweep(std::uint64_t target_free) {
  if (in_sweep_) {
    return 0;  // FileCache eviction re-enters via Free; never recurse
  }
  in_sweep_ = true;
  SimStats& stats = fsys_->machine().stats();
  stats.pressure_sweeps++;
  sweeps_++;
  const std::uint64_t before = FreeFrames();

  // Stage 1 — discard frames of free-listed fbufs (cheapest: contents are
  // dead by definition, §3.3).
  if (FreeFrames() < target_free) {
    fsys_->ReclaimFreeMemory(target_free - FreeFrames());
  }

  // Stage 2 — evict clean file-cache blocks toward the floor, LRU first.
  // Re-reading them costs disk time, not correctness.
  while (cache_ != nullptr && FreeFrames() < target_free &&
         cache_->resident_blocks() > config_.cache_floor_blocks) {
    if (cache_->Shrink(cache_->resident_blocks() - 1) == 0) {
      break;
    }
    // The evicted block's fbuf lands on the kernel path's free list with
    // its frames still attached; discard them so the progress is visible
    // in FreeFrames() and the loop stops as soon as the target is met.
    fsys_->ReclaimFreeMemory(target_free - FreeFrames());
  }

  // Stage 3 — page out cold retransmit-pinned fbufs to backing store.
  // Their contents must survive for the retransmission (copy semantics:
  // the transport's reference is a promise the data stays intact), so they
  // are paged, never discarded; the eventual retransmit faults them back in.
  if (FreeFrames() < target_free && !ledgers_.empty()) {
    PageOutColdPinned(target_free);
  }

  // Stage 4 — destroy the free lists of idle cached paths, releasing region
  // space and chunk quota (the most expensive: those paths restart cold).
  if (FreeFrames() < target_free) {
    fsys_->ShrinkIdlePaths(config_.path_idle_ns);
  }

  in_sweep_ = false;
  const std::uint64_t after = FreeFrames();
  const std::uint64_t freed = after > before ? after - before : 0;
  stats.pressure_pages_reclaimed += freed;
  pages_reclaimed_ += freed;
  return freed;
}

void PressureManager::PageOutColdPinned(std::uint64_t target_free) {
  const SimTime now = fsys_->machine().clock().Now();
  for (const RetransmitLedger* ledger : ledgers_) {
    if (FreeFrames() >= target_free) {
      return;
    }
    ledger->ForEachCold(now, config_.pageout_min_age_ns, [&](Fbuf* fb) {
      if (FreeFrames() >= target_free) {
        return;  // target met; later entries stay resident
      }
      pages_paged_out_ += fsys_->PageOutFbuf(fb);
    });
  }
}

bool PressureManager::AnyPathDegraded() {
  for (const auto& [path, state] : path_states_) {
    if (state.mode == PathMode::kDegraded && ModeFor(path) == PathMode::kDegraded) {
      return true;
    }
  }
  return false;
}

PathMode PressureManager::ModeFor(PathId path) {
  auto it = path_states_.find(path);
  if (it == path_states_.end()) {
    return PathMode::kZeroCopy;
  }
  PathState& s = it->second;
  if (s.mode == PathMode::kDegraded && FreeFrames() >= config_.high_free_frames) {
    // Pressure cleared: restore zero-copy.
    s.mode = PathMode::kZeroCopy;
    s.consecutive_failures = 0;
    restorations_++;
  }
  return s.mode;
}

PathMode PressureManager::RecordAllocFailure(PathId path) {
  PathState& s = path_states_[path];
  if (s.mode == PathMode::kDegraded) {
    return s.mode;
  }
  if (++s.consecutive_failures >= config_.degrade_after_failures) {
    s.mode = PathMode::kDegraded;
    degradations_++;
  }
  return s.mode;
}

std::uint32_t PressureManager::CreditFor(std::uint64_t pdu_pages,
                                         std::uint32_t flows,
                                         std::uint32_t max_credit) const {
  if (pdu_pages == 0) {
    pdu_pages = 1;
  }
  if (flows == 0) {
    flows = 1;
  }
  const std::uint64_t free = FreeFrames();
  const std::uint64_t reserve = config_.low_free_frames;
  const std::uint64_t headroom = free > reserve ? free - reserve : 0;
  // Integer throughout: same free-frame count, same grant, every run.
  std::uint64_t grant = headroom / (pdu_pages * flows);
  if (grant < 1) {
    grant = 1;  // the no-deadlock floor: a granted PDU is how acks flow back
  }
  if (grant > max_credit) {
    grant = max_credit;
  }
  return static_cast<std::uint32_t>(grant);
}

void PressureManager::RecordAllocSuccess(PathId path) {
  auto it = path_states_.find(path);
  if (it != path_states_.end()) {
    it->second.consecutive_failures = 0;
  }
}

}  // namespace fbufs
