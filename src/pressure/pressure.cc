#include "src/pressure/pressure.h"

#include <algorithm>

namespace fbufs {

PressureManager::PressureManager(FbufSystem* fsys, const PressureConfig& config)
    : fsys_(fsys), config_(config) {
  fsys_->SetPressureHooks(this);
  // Pressure-aware admission: while any path on the host is degraded, new
  // path registrations are refused with kBackpressure — a host that cannot
  // serve its existing paths zero-copy should not accept more.
  fsys_->paths().SetAdmissionGate([this] {
    return AnyPathDegraded() ? Status::kBackpressure : Status::kOk;
  });
}

PressureManager::~PressureManager() {
  fsys_->paths().ClearAdmissionGate();
  fsys_->SetPressureHooks(nullptr);
}

std::uint64_t PressureManager::FreeFrames() const {
  return fsys_->machine().pmem().free_frames();
}

bool PressureManager::UnderPressure() const {
  return FreeFrames() < config_.low_free_frames;
}

void PressureManager::OnAllocate() {
  if (in_sweep_ || !UnderPressure()) {
    return;
  }
  if (loop_ == nullptr) {
    Sweep(config_.high_free_frames);
    return;
  }
  if (sweep_scheduled_) {
    return;
  }
  sweep_scheduled_ = true;
  // Clamp the key, never the value: the machine clock may be ahead of the
  // loop's dispatch floor.
  const SimTime key = std::max(loop_->Now(), fsys_->machine().clock().Now());
  loop_->Schedule(key, "pressure-sweep", [this] {
    sweep_scheduled_ = false;
    if (UnderPressure()) {
      Sweep(config_.high_free_frames);
    }
  });
}

std::uint64_t PressureManager::OnAllocationFailure(std::uint64_t pages_needed) {
  // Emergency path: the allocation is about to fail, so sweep synchronously
  // and far enough to cover the request even if the watermark is tiny.
  return Sweep(std::max(config_.high_free_frames, pages_needed));
}

std::uint64_t PressureManager::Sweep(std::uint64_t target_free) {
  if (in_sweep_) {
    return 0;  // FileCache eviction re-enters via Free; never recurse
  }
  in_sweep_ = true;
  SimStats& stats = fsys_->machine().stats();
  stats.pressure_sweeps++;
  sweeps_++;
  const std::uint64_t before = FreeFrames();

  // Stage 1 — discard frames of free-listed fbufs (cheapest: contents are
  // dead by definition, §3.3).
  if (FreeFrames() < target_free) {
    fsys_->ReclaimFreeMemory(target_free - FreeFrames());
  }

  // Stage 2 — evict clean file-cache blocks toward the floor, LRU first.
  // Re-reading them costs disk time, not correctness.
  while (cache_ != nullptr && FreeFrames() < target_free &&
         cache_->resident_blocks() > config_.cache_floor_blocks) {
    if (cache_->Shrink(cache_->resident_blocks() - 1) == 0) {
      break;
    }
    // The evicted block's fbuf lands on the kernel path's free list with
    // its frames still attached; discard them so the progress is visible
    // in FreeFrames() and the loop stops as soon as the target is met.
    fsys_->ReclaimFreeMemory(target_free - FreeFrames());
  }

  // Stage 3 — destroy the free lists of idle cached paths, releasing region
  // space and chunk quota (the most expensive: those paths restart cold).
  if (FreeFrames() < target_free) {
    fsys_->ShrinkIdlePaths(config_.path_idle_ns);
  }

  in_sweep_ = false;
  const std::uint64_t after = FreeFrames();
  const std::uint64_t freed = after > before ? after - before : 0;
  stats.pressure_pages_reclaimed += freed;
  pages_reclaimed_ += freed;
  return freed;
}

bool PressureManager::AnyPathDegraded() {
  for (const auto& [path, state] : path_states_) {
    if (state.mode == PathMode::kDegraded && ModeFor(path) == PathMode::kDegraded) {
      return true;
    }
  }
  return false;
}

PathMode PressureManager::ModeFor(PathId path) {
  auto it = path_states_.find(path);
  if (it == path_states_.end()) {
    return PathMode::kZeroCopy;
  }
  PathState& s = it->second;
  if (s.mode == PathMode::kDegraded && FreeFrames() >= config_.high_free_frames) {
    // Pressure cleared: restore zero-copy.
    s.mode = PathMode::kZeroCopy;
    s.consecutive_failures = 0;
    restorations_++;
  }
  return s.mode;
}

PathMode PressureManager::RecordAllocFailure(PathId path) {
  PathState& s = path_states_[path];
  if (s.mode == PathMode::kDegraded) {
    return s.mode;
  }
  if (++s.consecutive_failures >= config_.degrade_after_failures) {
    s.mode = PathMode::kDegraded;
    degradations_++;
  }
  return s.mode;
}

void PressureManager::RecordAllocSuccess(PathId path) {
  auto it = path_states_.find(path);
  if (it != path_states_.end()) {
    it->second.consecutive_failures = 0;
  }
}

}  // namespace fbufs
