// DegradablePath: one sender→receiver data path that moves PDUs zero-copy
// while memory allows and falls back to the baseline copy facility when the
// PressureManager degrades it — the "graceful" in graceful degradation.
//
// In zero-copy mode each PDU is the paper's cycle: allocate an fbuf on the
// path, write one word per page, transfer, receiver reads. The sender's
// reference is handed back to the caller (|retained|) so a bench can model
// retention — a retransmission buffer, slow consumer, etc. — by freeing it
// later; frames stay pinned exactly that long.
//
// In degraded mode the PDU goes through CopyTransfer instead: the kernel
// memcpys into a pooled landing buffer, nothing in the fbuf pool is pinned,
// and the PDU is counted in degraded_pdus / bytes_copied. The sender-side
// staging buffer is allocated once per PDU size and reused, so the copy
// path's footprint is bounded no matter how long pressure lasts.
#ifndef SRC_PRESSURE_DEGRADABLE_H_
#define SRC_PRESSURE_DEGRADABLE_H_

#include <cstdint>
#include <map>

#include "src/baseline/copy_transfer.h"
#include "src/fbuf/fbuf_system.h"
#include "src/pressure/pressure.h"

namespace fbufs {

class DegradablePath {
 public:
  DegradablePath(FbufSystem* fsys, CopyTransfer* copy, PressureManager* pressure,
                 Domain* sender, Domain* receiver, PathId path)
      : fsys_(fsys),
        copy_(copy),
        pressure_(pressure),
        sender_(sender),
        receiver_(receiver),
        path_(path) {}

  // Moves one |bytes| PDU sender→receiver.
  //
  // Zero-copy mode: on success *|retained| (if non-null) is the fbuf with
  // the sender's reference still held — the caller must Free(fb, sender)
  // when its retention period ends; pass nullptr to release immediately.
  // A backpressure failure before the path degrades is returned as-is so
  // the caller can park and retry (see FlowBackoff).
  //
  // Degraded mode: the copy cycle runs, *|retained| is null (nothing is
  // pinned), and the machine's degraded_pdus / bytes_copied stats move.
  Status SendPdu(std::uint64_t bytes, Fbuf** retained);

  PathMode mode() { return pressure_->ModeFor(path_); }
  std::uint64_t zero_copy_pdus() const { return zero_copy_pdus_; }
  std::uint64_t degraded_pdus() const { return degraded_pdus_; }

 private:
  Status SendZeroCopy(std::uint64_t bytes, Fbuf** retained);
  Status SendDegraded(std::uint64_t bytes);

  FbufSystem* fsys_;
  CopyTransfer* copy_;
  PressureManager* pressure_;
  Domain* sender_;
  Domain* receiver_;
  PathId path_;
  // pages -> reusable sender-side staging buffer for the copy path.
  std::map<std::uint64_t, BufferRef> tx_staging_;

  std::uint64_t zero_copy_pdus_ = 0;
  std::uint64_t degraded_pdus_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PRESSURE_DEGRADABLE_H_
