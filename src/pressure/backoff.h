// Shared retry/backoff policy for senders hitting memory pressure.
//
// The fbuf pool is a shared resource: when an allocation (or a send window)
// comes back exhausted, the productive reaction is to park the flow on the
// event loop and try again later — not to fail it, and not to spin. Every
// parked sender in the tree (SWP producer, topology flows, the pressure
// bench) uses this one policy so "capped exponential backoff" means the same
// thing everywhere, and the same stall watchdog bounds how long a flow may
// go without progress before it is failed for good.
//
// Everything here is deterministic (no jitter): backoff delays are a pure
// function of the attempt count, which keeps same-seed runs byte-identical.
#ifndef SRC_PRESSURE_BACKOFF_H_
#define SRC_PRESSURE_BACKOFF_H_

#include <cstdint>
#include <optional>

#include "src/sim/clock.h"
#include "src/vm/types.h"

namespace fbufs {

// Statuses that mean "the resource may free up — parking is productive", as
// opposed to hard errors (dead domain, protection violation) where retrying
// can never succeed. Congestion and spent credits are backpressure too: the
// window reopens on the next ack and credits on the next grant, so a parked
// producer will make progress without any operator intervention.
inline bool IsBackpressure(Status st) {
  return st == Status::kExhausted || st == Status::kNoMemory ||
         st == Status::kQuotaExceeded || st == Status::kNoVirtualSpace ||
         st == Status::kCongestion || st == Status::kCreditExhausted;
}

// Capped exponential backoff: attempt 0 waits |initial|, each further
// attempt multiplies by |multiplier| until |cap|.
struct BackoffPolicy {
  SimTime initial = kMillisecond / 2;
  std::uint32_t multiplier = 2;
  SimTime cap = 8 * kMillisecond;

  SimTime Delay(std::uint32_t attempt) const {
    SimTime d = initial;
    for (std::uint32_t i = 0; i < attempt; ++i) {
      if (d >= cap || d > cap / multiplier) {
        return cap;
      }
      d *= multiplier;
    }
    return d < cap ? d : cap;
  }
};

// Per-flow backoff state plus the stall watchdog: a flow that makes no
// progress for |stall_horizon| is declared stalled and must be failed (the
// §3.3 cleanup invariants are then audited over whatever it left behind).
struct FlowBackoff {
  BackoffPolicy policy;
  SimTime stall_horizon = 250 * kMillisecond;

  std::uint32_t attempt = 0;
  SimTime last_progress = 0;
  bool stalled = false;

  // Call whenever the flow moves forward; resets the exponential ramp and
  // the watchdog clock.
  void Progress(SimTime now) {
    attempt = 0;
    last_progress = now;
  }

  // Call on a backpressure failure at |now|. Returns the delay to park for,
  // or nullopt once the no-progress horizon is exhausted (the flow is then
  // marked stalled and must not be retried).
  std::optional<SimTime> Park(SimTime now) {
    if (now >= last_progress && now - last_progress >= stall_horizon) {
      stalled = true;
      return std::nullopt;
    }
    return policy.Delay(attempt++);
  }
};

}  // namespace fbufs

#endif  // SRC_PRESSURE_BACKOFF_H_
