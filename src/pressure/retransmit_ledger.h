// RetransmitLedger: the bookkeeping side of pinned retransmission buffers.
//
// A reliable transport retains fbuf references for every unacknowledged PDU
// (§2.1.3 — copy semantics make retention a reference, never a copy). Under
// deep congestion those references pin memory for whole RTOs, which couples
// the network's failure mode to the memory subsystem's. The ledger makes the
// pinning first-class and auditable:
//
//   * the transport Pins each transmitted PDU's fbufs (with the pin time)
//     and Releases them on cumulative ack, so at any instant
//     pinned PDUs == the sender's unacked window — the InvariantAuditor
//     hard-checks exactly that equality, and that the ledger drained at
//     quiescence;
//   * a flow abort (domain termination mid-retransmit) ReclaimsAll: the
//     kernel's §3.3 cleanup already dropped the references, the ledger only
//     forgets its bookkeeping — and counts the reclamation, so campaigns can
//     assert the abort path actually ran;
//   * the PressureManager's pageout stage walks ForEachCold to find fbufs
//     that have been pinned longer than a threshold (the retransmission is
//     not imminent — the data is cold) and writes them to backing store
//     instead of letting the pinned window wedge the allocator.
//
// The ledger holds raw Fbuf pointers, never references: the transport owns
// the references (RetainMessage/FreeMessage); the ledger is pure accounting
// and is safe to clear after the fbufs died.
#ifndef SRC_PRESSURE_RETRANSMIT_LEDGER_H_
#define SRC_PRESSURE_RETRANSMIT_LEDGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/fbuf/fbuf.h"
#include "src/sim/clock.h"

namespace fbufs {

class RetransmitLedger {
 public:
  // Records |fbufs| as pinned for PDU |seq| at |now|. One entry per PDU; a
  // retransmission does not re-pin (the references were never dropped).
  void Pin(std::uint32_t seq, const std::vector<Fbuf*>& fbufs, SimTime now) {
    Entry& e = entries_[seq];
    if (!e.fbufs.empty()) {
      return;  // already pinned (defensive; Push pins exactly once)
    }
    e.fbufs = fbufs;
    e.pinned_at = now;
    for (const Fbuf* fb : fbufs) {
      pinned_pages_ += fb->pages;
    }
    total_pinned_++;
    if (entries_.size() > peak_pinned_pdus_) {
      peak_pinned_pdus_ = entries_.size();
    }
  }

  // Cumulative ack: every PDU with seq < |upto| is released.
  void ReleaseBelow(std::uint32_t upto) {
    while (!entries_.empty() && entries_.begin()->first < upto) {
      Drop(entries_.begin());
      released_on_ack_++;
    }
  }

  void Release(std::uint32_t seq) {
    auto it = entries_.find(seq);
    if (it != entries_.end()) {
      Drop(it);
      released_on_ack_++;
    }
  }

  // Flow abort: the domain died (or the flow was failed) with PDUs still
  // pinned. The references are gone either way; forget the bookkeeping and
  // count the reclamation.
  void ReclaimAll() {
    reclaimed_on_abort_ += entries_.size();
    entries_.clear();
    pinned_pages_ = 0;
  }

  // Fbufs pinned since before |now - min_age| (cold: their retransmission
  // has already waited at least one pageout horizon). Visit order is seq
  // order — deterministic.
  void ForEachCold(SimTime now, SimTime min_age,
                   const std::function<void(Fbuf*)>& fn) const {
    for (const auto& [seq, e] : entries_) {
      if (now >= e.pinned_at && now - e.pinned_at >= min_age) {
        for (Fbuf* fb : e.fbufs) {
          fn(fb);
        }
      }
    }
  }

  std::size_t pinned_pdus() const { return entries_.size(); }
  std::uint64_t pinned_pages() const { return pinned_pages_; }
  std::size_t peak_pinned_pdus() const { return peak_pinned_pdus_; }
  std::uint64_t total_pinned() const { return total_pinned_; }
  std::uint64_t released_on_ack() const { return released_on_ack_; }
  std::uint64_t reclaimed_on_abort() const { return reclaimed_on_abort_; }

 private:
  struct Entry {
    std::vector<Fbuf*> fbufs;
    SimTime pinned_at = 0;
  };

  void Drop(std::map<std::uint32_t, Entry>::iterator it) {
    for (const Fbuf* fb : it->second.fbufs) {
      pinned_pages_ -= fb->pages;
    }
    entries_.erase(it);
  }

  std::map<std::uint32_t, Entry> entries_;
  std::uint64_t pinned_pages_ = 0;
  std::size_t peak_pinned_pdus_ = 0;
  std::uint64_t total_pinned_ = 0;
  std::uint64_t released_on_ack_ = 0;
  std::uint64_t reclaimed_on_abort_ = 0;
};

}  // namespace fbufs

#endif  // SRC_PRESSURE_RETRANSMIT_LEDGER_H_
