#include "src/sim/phys_mem.h"

#include <cassert>
#include <cstring>

namespace fbufs {

PhysMem::PhysMem(std::uint32_t frames, SimClock* clock, const CostParams* costs,
                 SimStats* stats)
    : total_frames_(frames),
      clock_(clock),
      costs_(costs),
      stats_(stats),
      arena_(static_cast<std::size_t>(frames) * kPageSize),
      refcount_(frames, 0) {
  free_list_.reserve(frames);
  // Hand frames out in ascending order: push in reverse so pop_back yields 0 first.
  for (std::uint32_t i = frames; i > 0; --i) {
    free_list_.push_back(i - 1);
  }
}

std::optional<FrameId> PhysMem::Allocate(bool clear) {
  if (free_list_.empty()) {
    return std::nullopt;
  }
  const FrameId frame = free_list_.back();
  free_list_.pop_back();
  refcount_[frame] = 1;
  stats_->pages_allocated++;
  if (clear) {
    std::memset(Data(frame), 0, kPageSize);
    clock_->Advance(costs_->page_clear_ns);
    stats_->pages_cleared++;
  }
  return frame;
}

void PhysMem::Ref(FrameId frame) {
  assert(frame < total_frames_ && refcount_[frame] > 0);
  refcount_[frame]++;
}

void PhysMem::Unref(FrameId frame) {
  assert(frame < total_frames_ && refcount_[frame] > 0);
  if (--refcount_[frame] == 0) {
    free_list_.push_back(frame);
    stats_->pages_freed++;
  }
}

std::uint32_t PhysMem::RefCount(FrameId frame) const {
  assert(frame < total_frames_);
  return refcount_[frame];
}

std::uint8_t* PhysMem::Data(FrameId frame) {
  assert(frame < total_frames_);
  return arena_.data() + static_cast<std::size_t>(frame) * kPageSize;
}

const std::uint8_t* PhysMem::Data(FrameId frame) const {
  assert(frame < total_frames_);
  return arena_.data() + static_cast<std::size_t>(frame) * kPageSize;
}

}  // namespace fbufs
