// Simulated time base for one host.
//
// All costs in the simulator are expressed in nanoseconds of simulated time
// and accumulated on a SimClock. A Machine owns one clock; throughput numbers
// reported by the benches are bytes divided by simulated elapsed time.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cassert>
#include <cstdint>

namespace fbufs {

// Nanoseconds of simulated time.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

// Monotonic simulated clock. Not thread safe; the simulator is
// single-threaded and deterministic by design.
//
// An optional charge hook observes every clock movement (the time-attribution
// profiler in src/obs hangs off it): work charges (Advance) and event-
// delivery waits (AdvanceTo / AdvanceToAtLeast) are distinguished so idle
// time is attributable separately. The hook is a plain function pointer —
// one predictable branch per movement when unset, and it never charges
// simulated time itself, so attaching it cannot change any simulated number.
class SimClock {
 public:
  // |wait| is true when the clock moved to an event delivery time rather
  // than being charged for work.
  using ChargeHook = void (*)(void* ctx, SimTime ns, bool wait);

  SimClock() = default;

  // Current simulated time since construction (or the last Reset).
  SimTime Now() const { return now_ns_; }

  void SetChargeHook(ChargeHook hook, void* ctx) {
    hook_ = hook;
    hook_ctx_ = ctx;
  }

  // Advances the clock by |ns| nanoseconds of simulated work.
  void Advance(SimTime ns) {
    now_ns_ += ns;
    if (hook_ != nullptr && ns > 0) {
      hook_(hook_ctx_, ns, /*wait=*/false);
    }
  }

  // Moves the clock forward to the delivery time |t| of a scheduled event.
  // In the event-loop world a backwards delivery time is a scheduling bug,
  // not a benign no-op: it means some layer computed an event time behind
  // work this host already performed. Assert so it surfaces in debug and
  // sanitizer builds instead of silently warping results.
  void AdvanceTo(SimTime t) {
    assert(t >= now_ns_ && "SimClock::AdvanceTo: backwards delivery time (scheduling bug)");
    if (t > now_ns_) {
      const SimTime delta = t - now_ns_;
      now_ns_ = t;
      if (hook_ != nullptr) {
        hook_(hook_ctx_, delta, /*wait=*/true);
      }
    }
  }

  // Waits until at least |t|: a no-op when the host is already past it.
  // This is the right call when blocking on a condition that may have been
  // satisfied in the past (e.g. an acknowledgement that already arrived).
  void AdvanceToAtLeast(SimTime t) {
    if (t > now_ns_) {
      const SimTime delta = t - now_ns_;
      now_ns_ = t;
      if (hook_ != nullptr) {
        hook_(hook_ctx_, delta, /*wait=*/true);
      }
    }
  }

  void Reset() { now_ns_ = 0; }

 private:
  SimTime now_ns_ = 0;
  ChargeHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
};

}  // namespace fbufs

#endif  // SRC_SIM_CLOCK_H_
