// Simulated time base for one host.
//
// All costs in the simulator are expressed in nanoseconds of simulated time
// and accumulated on a SimClock. A Machine owns one clock; throughput numbers
// reported by the benches are bytes divided by simulated elapsed time.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cstdint>

namespace fbufs {

// Nanoseconds of simulated time.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

// Monotonic simulated clock. Not thread safe; the simulator is
// single-threaded and deterministic by design.
class SimClock {
 public:
  SimClock() = default;

  // Current simulated time since construction (or the last Reset).
  SimTime Now() const { return now_ns_; }

  // Advances the clock by |ns| nanoseconds of simulated work.
  void Advance(SimTime ns) { now_ns_ += ns; }

  // Moves the clock forward to |t| if |t| is in the future; used when a host
  // blocks on an external event (e.g. the link delivering the next cell).
  void AdvanceTo(SimTime t) {
    if (t > now_ns_) {
      now_ns_ = t;
    }
  }

  void Reset() { now_ns_ = 0; }

 private:
  SimTime now_ns_ = 0;
};

}  // namespace fbufs

#endif  // SRC_SIM_CLOCK_H_
