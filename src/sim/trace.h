// Event tracing: a lightweight, ring-buffered record of what the simulated
// kernel did and when — flat events, begin/end spans, and phase markers.
//
// Tracing is off by default and costs one branch per emission point when
// disabled. Enable categories selectively; events carry the simulated
// timestamp, a static label and two operands (addresses, ids, sizes —
// whatever the site finds useful). Spans (TracePhase::kBegin/kEnd) nest by
// emission order: the simulator is single-threaded per host, so a host's
// begin/end stream is properly bracketed and the Chrome-trace exporter
// (src/obs/trace_export.h) can render it directly. Phase markers
// (TraceCategory::kPhase) stamp campaign faults and bench phases onto the
// same timeline. Tests assert on sequences; humans read Dump() or load the
// exported JSON in Perfetto.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace fbufs {

enum class TraceCategory : std::uint8_t {
  kVm = 0,    // mapping changes, protection, faults
  kFbuf,      // allocation, transfer, free, secure, paging
  kIpc,       // crossings, notices
  kProto,     // protocol sends/deliveries
  kNet,       // adapter / link activity
  kPhase,     // campaign fault phases, bench phases (markers)
  kCount,
};

// What kind of record an event is. kInstant is the historical flat event;
// kBegin/kEnd bracket a span; kMarker is a phase marker (rendered
// process-wide by the exporter).
enum class TracePhase : std::uint8_t {
  kInstant = 0,
  kBegin,
  kEnd,
  kMarker,
};

struct TraceEvent {
  SimTime time = 0;
  TraceCategory category = TraceCategory::kVm;
  TracePhase phase = TracePhase::kInstant;
  const char* what = "";  // static string supplied by the emission site
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Trace {
 public:
  explicit Trace(const SimClock* clock, std::size_t capacity = 4096)
      : clock_(clock), capacity_(capacity) {
    ring_.reserve(capacity);
  }

  // Re-points the timestamp source. A multicore Machine switches this to the
  // active CPU lane's clock so events are stamped on the lane that ran them.
  void set_clock(const SimClock* clock) { clock_ = clock; }

  // --- Control -----------------------------------------------------------------
  void Enable(TraceCategory c) { mask_ |= Bit(c); }
  void Disable(TraceCategory c) { mask_ &= ~Bit(c); }
  void EnableAll() { mask_ = ~std::uint32_t{0}; }
  void DisableAll() { mask_ = 0; }
  bool enabled(TraceCategory c) const { return (mask_ & Bit(c)) != 0; }

  // Re-sizes the ring. Only legal before any event was emitted (or after
  // Clear): campaigns that export full timelines raise the capacity before
  // enabling categories.
  void SetCapacity(std::size_t capacity) {
    assert(ring_.empty() && "Trace::SetCapacity: ring not empty");
    capacity_ = capacity;
    ring_.reserve(capacity);
  }
  std::size_t capacity() const { return capacity_; }

  // --- Emission (hot path) -------------------------------------------------------
  void Emit(TraceCategory c, const char* what, std::uint64_t a = 0, std::uint64_t b = 0) {
    EmitFull(c, TracePhase::kInstant, what, a, b);
  }

  // Span brackets. Use TraceSpan (RAII) at emission sites; these are the
  // raw primitives.
  void Begin(TraceCategory c, const char* what, std::uint64_t a = 0, std::uint64_t b = 0) {
    EmitFull(c, TracePhase::kBegin, what, a, b);
  }
  void End(TraceCategory c, const char* what, std::uint64_t a = 0, std::uint64_t b = 0) {
    EmitFull(c, TracePhase::kEnd, what, a, b);
  }

  // A phase marker on the kPhase category (campaign faults, bench phases).
  void Marker(const char* what, std::uint64_t a = 0, std::uint64_t b = 0) {
    EmitFull(TraceCategory::kPhase, TracePhase::kMarker, what, a, b);
  }

  // Copies |label| into trace-owned stable storage and returns a pointer
  // usable as a TraceEvent label. For dynamic labels (campaign fault names);
  // static strings should be passed directly.
  const char* Intern(const std::string& label) {
    interned_.push_back(label);
    return interned_.back().c_str();
  }

  // --- Inspection ----------------------------------------------------------------
  // Events in emission order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const {
    std::vector<TraceEvent> out;
    if (!wrapped_) {
      out.assign(ring_.begin(), ring_.end());
      return out;
    }
    out.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
    return out;
  }

  // Count of surviving events whose label is |what|. Pointer equality fast
  // path (labels are usually literals emitted from one site), strcmp slow
  // path — never allocates.
  std::size_t Count(const char* what) const {
    std::size_t n = 0;
    for (const TraceEvent& e : ring_) {
      if (e.what == what || std::strcmp(e.what, what) == 0) {
        n++;
      }
    }
    return n;
  }

  void Clear() {
    ring_.clear();
    next_ = 0;
    wrapped_ = false;
    total_ = 0;
  }

  std::uint64_t total_emitted() const { return total_; }
  std::size_t size() const { return ring_.size(); }

  // Human-readable dump of up to |max| most recent events.
  std::string Dump(std::size_t max = 64) const;

 private:
  static std::uint32_t Bit(TraceCategory c) {
    return std::uint32_t{1} << static_cast<std::uint8_t>(c);
  }

  void EmitFull(TraceCategory c, TracePhase phase, const char* what, std::uint64_t a,
                std::uint64_t b) {
    if (!enabled(c)) {
      return;
    }
    TraceEvent e{clock_->Now(), c, phase, what, a, b};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_] = e;
      wrapped_ = true;
    }
    next_ = (next_ + 1) % capacity_;
    total_++;
  }

  const SimClock* clock_;
  std::size_t capacity_;
  std::uint32_t mask_ = 0;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t total_ = 0;
  std::deque<std::string> interned_;  // stable storage for dynamic labels
};

// RAII span: emits Begin on construction and End on destruction, both only
// when the category was enabled at construction time — a span stays balanced
// even if the mask is toggled while it is open.
class TraceSpan {
 public:
  TraceSpan(Trace& t, TraceCategory c, const char* what, std::uint64_t a = 0,
            std::uint64_t b = 0)
      : t_(&t), c_(c), what_(what), armed_(t.enabled(c)) {
    if (armed_) {
      t_->Begin(c_, what_, a, b);
    }
  }
  ~TraceSpan() {
    if (armed_) {
      t_->End(c_, what_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Trace* t_;
  TraceCategory c_;
  const char* what_;
  bool armed_;
};

const char* TraceCategoryName(TraceCategory c);

}  // namespace fbufs

#endif  // SRC_SIM_TRACE_H_
