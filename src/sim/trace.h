// Event tracing: a lightweight, ring-buffered record of what the simulated
// kernel did and when.
//
// Tracing is off by default and costs one branch per emission point when
// disabled. Enable categories selectively; events carry the simulated
// timestamp, a static label and two operands (addresses, ids, sizes —
// whatever the site finds useful). Tests assert on sequences; humans read
// Dump().
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace fbufs {

enum class TraceCategory : std::uint8_t {
  kVm = 0,    // mapping changes, protection, faults
  kFbuf,      // allocation, transfer, free, secure, paging
  kIpc,       // crossings, notices
  kProto,     // protocol sends/deliveries
  kNet,       // adapter / link activity
  kCount,
};

struct TraceEvent {
  SimTime time = 0;
  TraceCategory category = TraceCategory::kVm;
  const char* what = "";  // static string supplied by the emission site
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Trace {
 public:
  explicit Trace(const SimClock* clock, std::size_t capacity = 4096)
      : clock_(clock), capacity_(capacity) {
    ring_.reserve(capacity);
  }

  // --- Control -----------------------------------------------------------------
  void Enable(TraceCategory c) { mask_ |= Bit(c); }
  void Disable(TraceCategory c) { mask_ &= ~Bit(c); }
  void EnableAll() { mask_ = ~std::uint32_t{0}; }
  void DisableAll() { mask_ = 0; }
  bool enabled(TraceCategory c) const { return (mask_ & Bit(c)) != 0; }

  // --- Emission (hot path) -------------------------------------------------------
  void Emit(TraceCategory c, const char* what, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled(c)) {
      return;
    }
    TraceEvent e{clock_->Now(), c, what, a, b};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_] = e;
      wrapped_ = true;
    }
    next_ = (next_ + 1) % capacity_;
    total_++;
  }

  // --- Inspection ----------------------------------------------------------------
  // Events in emission order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const {
    std::vector<TraceEvent> out;
    if (!wrapped_) {
      out.assign(ring_.begin(), ring_.end());
      return out;
    }
    out.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
    return out;
  }

  // Count of surviving events whose label is |what|.
  std::size_t Count(const char* what) const {
    std::size_t n = 0;
    for (const TraceEvent& e : ring_) {
      if (std::string(e.what) == what) {
        n++;
      }
    }
    return n;
  }

  void Clear() {
    ring_.clear();
    next_ = 0;
    wrapped_ = false;
    total_ = 0;
  }

  std::uint64_t total_emitted() const { return total_; }
  std::size_t size() const { return ring_.size(); }

  // Human-readable dump of up to |max| most recent events.
  std::string Dump(std::size_t max = 64) const;

 private:
  static std::uint32_t Bit(TraceCategory c) {
    return std::uint32_t{1} << static_cast<std::uint8_t>(c);
  }

  const SimClock* clock_;
  std::size_t capacity_;
  std::uint32_t mask_ = 0;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t total_ = 0;
};

const char* TraceCategoryName(TraceCategory c);

}  // namespace fbufs

#endif  // SRC_SIM_TRACE_H_
