// Calibrated cost model for the simulated machine.
//
// Every primitive the simulator performs (page-table update, TLB consistency
// action, TLB miss, page fault, page clear, byte copy, IPC crossing, ...)
// charges a cost from this table to the host's SimClock. The default values
// are fitted to the DecStation 5000/200 (25 MHz MIPS R3000) figures reported
// in the fbufs paper, so that the per-page costs of Table 1 and the curve
// shapes of Figures 3-6 emerge from the same operation sequences the paper
// describes, rather than being hard-coded in the benches.
//
// Calibration anchors from the paper (all per 4 KB page unless noted):
//   - cached/volatile fbuf transfer:   3 us  (two software TLB misses)
//   - volatile, uncached fbuf:        21 us  (map/unmap in both domains)
//   - cached, non-volatile fbuf:      29 us  (raise + restore write protect)
//   - plain (uncached, non-volatile): 47 us  (sum of the above mechanisms)
//   - Mach copy-on-write:            159 us  (lazy pmap update: 2 faults)
//   - physical copy:                 204 us  (~20 MB/s copy bandwidth)
//   - page clear (fill with zeros):   57 us
//   - DASH-style remap ping-pong:     22 us
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace fbufs {

// Simulated page size. The DecStation 5000/200 used 4 KB pages.
constexpr std::uint64_t kPageSize = 4096;
constexpr std::uint64_t kPageShift = 12;

static_assert((std::uint64_t{1} << kPageShift) == kPageSize);

// All members are simulated nanoseconds unless the name says otherwise.
struct CostParams {
  // --- Virtual memory primitives -------------------------------------------
  // Update one physical (machine-dependent) page-table entry.
  SimTime pt_update_ns = 3500;
  // TLB/cache consistency action for one page after a mapping change.
  SimTime tlb_flush_ns = 2000;
  // Service one software-filled TLB miss (MIPS R3000 refill handler).
  SimTime tlb_miss_ns = 1500;
  // Raise or restore write protection on one page, including the kernel trap
  // needed to reach the VM system (used by non-volatile fbufs).
  SimTime prot_change_ns = 13000;
  // Take and service one page fault (trap, lock VM structures, map, return).
  SimTime page_fault_ns = 70250;
  // Fill one page with zeros (security clearing of newly allocated memory).
  SimTime page_clear_ns = 57000;
  // Bring one page back from backing store (disk access + transfer; fbufs
  // are pageable, §2.1.3).
  SimTime page_in_ns = 20 * kMillisecond;
  // Find/reserve a free virtual address range (per buffer, not per page).
  SimTime va_alloc_ns = 10000;
  // Release a virtual address range (per buffer).
  SimTime va_free_ns = 5000;
  // Copy one full page between buffers (memory-bandwidth bound).
  SimTime copy_page_ns = 201000;
  // Extra per-page cost of a general-purpose remap facility (DASH style):
  // updating the high-level machine-independent map in addition to the
  // low-level page tables, on both the unmap and map side.
  SimTime remap_page_overhead_ns = 9500;
  // Per-page cost of general-purpose kernel buffer allocation (finding,
  // accounting and entering a page through the full VM path). The fbuf
  // region's streamlined per-domain allocators avoid this.
  SimTime alloc_page_kernel_ns = 11500;
  // Touch (read or write) one word through the cache.
  SimTime mem_word_ns = 80;

  // --- IPC ------------------------------------------------------------------
  // Round-trip null RPC crossing the kernel/user boundary (Mach 3.0 class).
  SimTime ipc_kernel_user_ns = 95000;
  // Round-trip null RPC between two user domains (two kernel entries).
  SimTime ipc_user_user_ns = 145000;
  // Extra per-PDU cost charged per protection domain beyond two on a data
  // path: models the TLB/instruction-cache pressure the paper observes when a
  // third domain (no shared libraries) joins the path.
  SimTime cache_pressure_ns = 30000;

  // --- Dispatch ---------------------------------------------------------------
  // Per-item cost of running work through an evented dispatch queue (run
  // queue manipulation + context switch to the servicing thread). Charged
  // only on the multicore path (num_cpus > 1); the synchronous single-CPU
  // model folds this into its IPC crossing constants.
  SimTime dispatch_ns = 4000;

  // --- Transfer rings ----------------------------------------------------------
  // Write or read one descriptor slot of a shared-memory submission or
  // completion ring (a few cache lines touched; no kernel involvement).
  SimTime ring_entry_ns = 700;
  // Ring the consumer's doorbell: one uncached/MMIO-class store plus the
  // memory barrier before it. The wakeup it triggers is charged separately
  // as an IPC crossing — this is only the producer-side store.
  SimTime ring_doorbell_ns = 1000;

  // --- Protocol processing ---------------------------------------------------
  // Per-PDU control-path cost of one protocol layer (header build/parse,
  // demux, session lookup). Fitted so the receiving host's CPU load matches
  // the paper's §4 measurements (88% at 16 KB PDUs, 55% at 32 KB, cached).
  SimTime proto_pdu_ns = 48000;
  // Per-PDU device-driver cost (interrupt handling, buffer bookkeeping,
  // per-cell descriptor management).
  SimTime driver_pdu_ns = 250000;
  // Per-byte driver-side cost (descriptor rings and cache effects scale
  // with PDU size on the DecStation).
  SimTime driver_byte_ns = 6;
  // Fixed fragmentation overhead charged once per message that needs
  // fragmenting (the paper's "anomaly" that sets in above one PDU).
  SimTime frag_fixed_ns = 120000;
  // Internet checksum cost per byte summed.
  SimTime csum_byte_ns = 12;
  // Per-fbuf cost of translating an aggregate object into an fbuf list at a
  // domain boundary and rebuilding it on the other side (steps 2a/3c of the
  // base mechanism — eliminated by the integrated transfer of §3.2.3).
  SimTime fbuf_list_marshal_ns = 2500;

  // --- I/O subsystem ----------------------------------------------------------
  // DMA start-up latency per ATM cell on the TurboChannel (limits the Osiris
  // board to ~367 Mbps even though the bus peaks at 800 Mbps).
  SimTime dma_cell_startup_ns = 566;
  // Additional per-cell stall from CPU/memory contention on the bus
  // (reduces attainable I/O throughput to ~285 Mbps).
  SimTime bus_contention_ns = 301;
  // Peak TurboChannel bandwidth, megabits per second.
  std::uint64_t bus_peak_mbps = 800;
  // Net link bandwidth after ATM cell overhead, megabits per second
  // (622 Mbps OC-12 minus cell tax = 516 Mbps).
  std::uint64_t link_net_mbps = 516;

  // --- Derived helpers ---------------------------------------------------------
  // Cost of copying |bytes| bytes (pro-rated from copy_page_ns).
  SimTime CopyCost(std::uint64_t bytes) const {
    return bytes * copy_page_ns / kPageSize;
  }
  // Cost of checksumming |bytes| bytes.
  SimTime ChecksumCost(std::uint64_t bytes) const { return bytes * csum_byte_ns; }
  // Time for |bytes| of payload to cross the link.
  SimTime WireTime(std::uint64_t bytes) const {
    return bytes * 8 * 1000 / link_net_mbps;  // bits / (Mbit/s) = microseconds
  }
  // Time for the adapter to DMA |bytes| over the bus, cell by cell.
  SimTime DmaTime(std::uint64_t bytes) const;

  // The DecStation 5000/200 defaults (same values as member initializers);
  // named so tests and benches can reset explicitly.
  static CostParams DecStation5000();
  // A free machine: all costs zero. Useful for functional tests that assert
  // on behaviour, not time.
  static CostParams Zero();
};

}  // namespace fbufs

#endif  // SRC_SIM_COST_MODEL_H_
