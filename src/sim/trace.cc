#include "src/sim/trace.h"

#include <sstream>

namespace fbufs {

const char* TraceCategoryName(TraceCategory c) {
  switch (c) {
    case TraceCategory::kVm:
      return "vm";
    case TraceCategory::kFbuf:
      return "fbuf";
    case TraceCategory::kIpc:
      return "ipc";
    case TraceCategory::kProto:
      return "proto";
    case TraceCategory::kNet:
      return "net";
    case TraceCategory::kPhase:
      return "phase";
    case TraceCategory::kCount:
      break;
  }
  return "?";
}

namespace {

const char* PhaseSigil(TracePhase p) {
  switch (p) {
    case TracePhase::kInstant:
      return " ";
    case TracePhase::kBegin:
      return ">";
    case TracePhase::kEnd:
      return "<";
    case TracePhase::kMarker:
      return "#";
  }
  return "?";
}

}  // namespace

std::string Trace::Dump(std::size_t max) const {
  const std::vector<TraceEvent> events = Snapshot();
  const std::size_t start = events.size() > max ? events.size() - max : 0;
  std::ostringstream os;
  for (std::size_t i = start; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << e.time / 1000 << "us [" << TraceCategoryName(e.category) << "]"
       << PhaseSigil(e.phase) << " " << e.what << " a=0x" << std::hex << e.a << " b=0x" << e.b
       << std::dec << "\n";
  }
  return os.str();
}

}  // namespace fbufs
