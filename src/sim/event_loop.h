// Discrete-event simulation core.
//
// The engine that coordinates every timeline in the simulator: a
// deterministic event queue keyed by (SimTime, sequence number) plus
// Resource objects modelling serially-reusable things (a host CPU, a
// TurboChannel DMA engine, the wire). Layers above schedule work as events;
// per-host SimClocks are views over the loop's time in the sense that they
// only move while the loop dispatches events on that host, and resources
// account their own busy time so utilization (CPU load, bus occupancy) falls
// out of the schedule instead of being hand-computed.
//
// Determinism: two runs that schedule the same events in the same order
// dispatch them identically — ties in time break by schedule order (seq).
// The loop keeps a running FNV-1a hash of every dispatched event and can
// record the full trace, so tests can assert byte-identical replays.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/sim/clock.h"

namespace fbufs {

class EventLoop {
 public:
  using Handler = std::function<void()>;
  using EventId = std::uint64_t;

  struct TraceEntry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::string label;

    bool operator==(const TraceEntry& o) const {
      return time == o.time && seq == o.seq && label == o.label;
    }
  };

  // Dispatch floor: the key of the most recently dispatched event. Event
  // keys order the schedule; handlers read their own host clocks for a
  // host's notion of time (host timelines are only partially ordered).
  SimTime Now() const { return now_; }

  // Schedules |fn| to run at |t|. The queue is monotonic: scheduling behind
  // the dispatch floor is a bug in the caller's timeline arithmetic.
  EventId Schedule(SimTime t, std::string label, Handler fn);
  EventId ScheduleIn(SimTime delay, std::string label, Handler fn) {
    return Schedule(now_ + delay, std::move(label), std::move(fn));
  }

  // Cancels a pending event. Returns true when the event existed and had not
  // yet been dispatched; a cancelled event never dispatches, never enters the
  // trace (or the trace hash), and does not count as dispatched. Re-armed
  // timers (SWP's RTO) and drained queues cancel instead of letting stale
  // events fire as no-ops.
  bool Cancel(EventId id);

  // Dispatches the earliest pending event. Returns false when the queue is
  // empty (quiescence).
  bool RunOne();

  // Runs to quiescence; returns the number of events dispatched.
  std::uint64_t Run();

  // Dispatches every event with key <= |t| (bounded run for open-ended
  // schedules such as retransmission timers that re-arm themselves).
  std::uint64_t RunUntil(SimTime t);

  bool empty() const { return pending() == 0; }
  // Cancelled events still sitting in the queue do not count as pending.
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t events_dispatched() const { return dispatched_; }
  std::uint64_t events_cancelled() const { return cancelled_total_; }

  // Process-wide dispatch counter across every EventLoop instance: the
  // simulator's own throughput signal (events/sec of host wall-clock in the
  // benches' sim_throughput sections). Monotonic over the process lifetime.
  static std::uint64_t TotalDispatched();

  // FNV-1a over (time, seq, label) of every dispatched event.
  std::uint64_t trace_hash() const { return trace_hash_; }

  void set_record_trace(bool on) { record_trace_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::string label;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void HashDispatch(const Event& e);
  // Discards cancelled events from the queue head so callers see live state.
  void PurgeCancelledTop();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;       // scheduled, not yet dispatched
  std::unordered_set<EventId> cancelled_;  // cancelled, still in the queue
  std::uint64_t cancelled_total_ = 0;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t trace_hash_ = 14695981039346656037ull;  // FNV offset basis
  bool record_trace_ = false;
  std::vector<TraceEntry> trace_;
};

// A serially-reusable resource: at most one piece of work occupies it at a
// time, and work that finds it busy queues behind the current occupant
// (busy-until algebra). Tracks total occupied time inside an accounting
// window so per-resource utilization is a byproduct of the schedule.
class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  // Work that becomes ready at |ready| and occupies the resource for
  // |duration| completes at the returned time.
  SimTime Acquire(SimTime ready, SimTime duration) {
    const SimTime start = ready > busy_until_ ? ready : busy_until_;
    busy_until_ = start + duration;
    acquisitions_++;
    RecordBusy(start, busy_until_);
    return busy_until_;
  }

  // Accounts externally-timed occupancy (a CPU whose work is charged to a
  // SimClock by the code that runs on it). Intervals must not overlap.
  void RecordBusy(SimTime start, SimTime end) {
    if (end <= start) {
      return;
    }
    if (record_intervals_) {
      intervals_.push_back({start, end});
    }
    if (start < window_start_) {
      start = end > window_start_ ? window_start_ : end;
    }
    busy_ns_ += end - start;
  }

  // Busy-interval recording, for the trace exporter's per-resource lanes.
  // Off by default (zero cost beyond one branch per RecordBusy).
  struct BusyInterval {
    SimTime start = 0;
    SimTime end = 0;
  };
  void set_record_intervals(bool on) { record_intervals_ = on; }
  const std::vector<BusyInterval>& intervals() const { return intervals_; }

  // Restarts utilization accounting at |at|; busy time before it no longer
  // counts (measurement begins after warmup).
  void ResetAccounting(SimTime at) {
    window_start_ = at;
    busy_ns_ = 0;
  }

  SimTime busy_until() const { return busy_until_; }
  SimTime busy_ns() const { return busy_ns_; }
  SimTime window_start() const { return window_start_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  const std::string& name() const { return name_; }

  // Fraction of [window_start, until] the resource was occupied. Acquire
  // records a whole occupancy up front, so on a saturated resource busy time
  // can outrun the window; a fraction above 1.0 is an accounting artifact,
  // not a physical possibility — clamp it.
  double Utilization(SimTime until) const {
    if (until <= window_start_) {
      return 0.0;
    }
    const double u =
        static_cast<double>(busy_ns_) / static_cast<double>(until - window_start_);
    return u > 1.0 ? 1.0 : u;
  }

  // Like Utilization, but busy_until()-aware: work still in flight when the
  // window closes at |until| is trimmed to the window, so a saturated
  // resource reports ~1.0 instead of counting occupancy that lies in the
  // future. (Intervals are non-overlapping and ordered on a serial resource,
  // so everything past |until| belongs to the in-flight tail.)
  double UtilizationInWindow(SimTime until) const {
    if (until <= window_start_) {
      return 0.0;
    }
    SimTime busy = busy_ns_;
    if (busy_until_ > until) {
      const SimTime overhang = busy_until_ - until;
      busy = overhang >= busy ? 0 : busy - overhang;
    }
    const double u = static_cast<double>(busy) / static_cast<double>(until - window_start_);
    return u > 1.0 ? 1.0 : u;
  }

  void Reset() {
    busy_until_ = 0;
    busy_ns_ = 0;
    window_start_ = 0;
    acquisitions_ = 0;
    intervals_.clear();
  }

 private:
  std::string name_;
  SimTime busy_until_ = 0;
  SimTime busy_ns_ = 0;
  SimTime window_start_ = 0;
  std::uint64_t acquisitions_ = 0;
  bool record_intervals_ = false;
  std::vector<BusyInterval> intervals_;
};

}  // namespace fbufs

#endif  // SRC_SIM_EVENT_LOOP_H_
