// Operation counters for the simulated machine.
//
// Counters let tests assert on mechanism ("a cached reuse performs zero
// page-table updates") and let benches decompose where time goes.
//
// The field list is an X-macro: Since(), ToString() and the metrics export
// (src/obs/metrics.h users) all iterate FBUFS_SIMSTATS_FIELDS, so adding a
// counter here is the only step — it can no longer silently vanish from
// Since() because the author forgot to mirror it.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <string>

// X(name) for every counter, in display order.
#define FBUFS_SIMSTATS_FIELDS(X)                                                   \
  X(pt_updates)              /* physical page-table entry updates */               \
  X(tlb_flushes)             /* per-page TLB/cache consistency actions */          \
  X(tlb_misses)              /* software-serviced TLB refills */                   \
  X(page_faults)             /* faults taken (COW, zero-fill, absent) */           \
  X(prot_faults)             /* access violations (protection errors) */           \
  X(pages_cleared)           /* security page clears */                            \
  X(pages_swapped_out)       /* fbuf pages written to backing store */             \
  X(pages_swapped_in)        /* fbuf pages faulted back in */                      \
  X(pages_allocated)         /* physical frames handed out */                      \
  X(pages_freed)             /* physical frames returned */                        \
  X(bytes_copied)            /* bytes physically copied */                         \
  X(va_allocs)               /* virtual address range reservations */              \
  X(ipc_calls)               /* cross-domain RPCs */                               \
  X(fbuf_allocs)             /* fbuf allocations (cached hits included) */         \
  X(fbuf_cache_hits)         /* allocations served from a free list */             \
  X(fbuf_transfers)          /* cross-domain fbuf transfers */                     \
  X(dealloc_notices)         /* piggybacked deallocation notices */                \
  X(dealloc_messages)        /* explicit deallocation messages */                  \
  X(degraded_pdus)           /* PDUs sent via the copy fallback */                 \
  X(pressure_sweeps)         /* reclamation sweeps (evented + emergency) */        \
  X(pressure_pages_reclaimed) /* pages recovered by sweeps */

namespace fbufs {

struct SimStats {
#define FBUFS_SIMSTATS_DECL(name) std::uint64_t name = 0;
  FBUFS_SIMSTATS_FIELDS(FBUFS_SIMSTATS_DECL)
#undef FBUFS_SIMSTATS_DECL

  void Reset() { *this = SimStats{}; }

  // Difference against an earlier snapshot (field-wise, assumes monotonic).
  SimStats Since(const SimStats& base) const;

  // Visits every counter as (name, value) — the metrics export walks this.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
#define FBUFS_SIMSTATS_VISIT(name) fn(#name, name);
    FBUFS_SIMSTATS_FIELDS(FBUFS_SIMSTATS_VISIT)
#undef FBUFS_SIMSTATS_VISIT
  }

  // Human-readable multi-line dump for benches and debugging.
  std::string ToString() const;
};

}  // namespace fbufs

#endif  // SRC_SIM_STATS_H_
