// Operation counters for the simulated machine.
//
// Counters let tests assert on mechanism ("a cached reuse performs zero
// page-table updates") and let benches decompose where time goes.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <string>

namespace fbufs {

struct SimStats {
  std::uint64_t pt_updates = 0;        // physical page-table entry updates
  std::uint64_t tlb_flushes = 0;       // per-page TLB/cache consistency actions
  std::uint64_t tlb_misses = 0;        // software-serviced TLB refills
  std::uint64_t page_faults = 0;       // faults taken (COW, zero-fill, absent)
  std::uint64_t prot_faults = 0;       // access violations (protection errors)
  std::uint64_t pages_cleared = 0;     // security page clears
  std::uint64_t pages_swapped_out = 0;  // fbuf pages written to backing store
  std::uint64_t pages_swapped_in = 0;   // fbuf pages faulted back in
  std::uint64_t pages_allocated = 0;   // physical frames handed out
  std::uint64_t pages_freed = 0;       // physical frames returned
  std::uint64_t bytes_copied = 0;      // bytes physically copied
  std::uint64_t va_allocs = 0;         // virtual address range reservations
  std::uint64_t ipc_calls = 0;         // cross-domain RPCs
  std::uint64_t fbuf_allocs = 0;       // fbuf allocations (cached hits included)
  std::uint64_t fbuf_cache_hits = 0;   // allocations served from a free list
  std::uint64_t fbuf_transfers = 0;    // cross-domain fbuf transfers
  std::uint64_t dealloc_notices = 0;   // piggybacked deallocation notices
  std::uint64_t dealloc_messages = 0;  // explicit deallocation messages
  std::uint64_t degraded_pdus = 0;     // PDUs sent via the copy fallback
  std::uint64_t pressure_sweeps = 0;   // reclamation sweeps (evented + emergency)
  std::uint64_t pressure_pages_reclaimed = 0;  // pages recovered by sweeps

  void Reset() { *this = SimStats{}; }

  // Difference against an earlier snapshot (field-wise, assumes monotonic).
  SimStats Since(const SimStats& base) const;

  // Human-readable multi-line dump for benches and debugging.
  std::string ToString() const;
};

}  // namespace fbufs

#endif  // SRC_SIM_STATS_H_
