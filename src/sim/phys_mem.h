// Physical memory: a real byte arena divided into page frames.
//
// Data in the simulator genuinely lives here. Zero-copy transfer is
// observable as two domains translating to the same frame; a copying
// facility performs an actual memcpy between frames. Frames are reference
// counted so copy-on-write and shared fbuf mappings can share them.
#ifndef SRC_SIM_PHYS_MEM_H_
#define SRC_SIM_PHYS_MEM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/stats.h"

namespace fbufs {

// Index of a physical page frame.
using FrameId = std::uint32_t;
constexpr FrameId kInvalidFrame = static_cast<FrameId>(-1);

class PhysMem {
 public:
  // |frames| page frames of backing store. The arena is allocated up front;
  // ~64 MB at the default 16384 frames.
  PhysMem(std::uint32_t frames, SimClock* clock, const CostParams* costs, SimStats* stats);

  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  // Re-points the clock charges land on. A multicore Machine switches this
  // to the active CPU lane's clock (frame clearing runs on the lane that
  // asked for the frame).
  void set_clock(SimClock* clock) { clock_ = clock; }

  // Allocates one frame with reference count 1. If |clear| is true the frame
  // is filled with zeros and the page-clear cost is charged (security
  // clearing of memory recycled across protection domains).
  // Returns nullopt when physical memory is exhausted.
  std::optional<FrameId> Allocate(bool clear);

  // Increments the reference count (a new mapping shares the frame).
  void Ref(FrameId frame);

  // Drops one reference; frees the frame when the count reaches zero.
  void Unref(FrameId frame);

  std::uint32_t RefCount(FrameId frame) const;

  // Direct access to the frame's bytes (kPageSize of them). Only the VM
  // layer and devices (DMA) should touch frames directly; domain code goes
  // through Domain accessors so permissions and TLB behaviour apply.
  std::uint8_t* Data(FrameId frame);
  const std::uint8_t* Data(FrameId frame) const;

  std::uint32_t total_frames() const { return total_frames_; }
  std::uint32_t free_frames() const { return static_cast<std::uint32_t>(free_list_.size()); }

 private:
  std::uint32_t total_frames_;
  SimClock* clock_;
  const CostParams* costs_;
  SimStats* stats_;
  std::vector<std::uint8_t> arena_;
  std::vector<std::uint32_t> refcount_;
  std::vector<FrameId> free_list_;
};

}  // namespace fbufs

#endif  // SRC_SIM_PHYS_MEM_H_
