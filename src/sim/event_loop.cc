#include "src/sim/event_loop.h"

namespace fbufs {

namespace {
// Single-threaded simulator: a plain counter is enough.
std::uint64_t g_total_dispatched = 0;
}  // namespace

std::uint64_t EventLoop::TotalDispatched() { return g_total_dispatched; }

EventLoop::EventId EventLoop::Schedule(SimTime t, std::string label, Handler fn) {
  assert(t >= now_ && "EventLoop::Schedule: event behind the dispatch floor");
  const EventId id = next_seq_++;
  Event e;
  e.time = t;
  e.seq = id;
  e.label = std::move(label);
  e.fn = std::move(fn);
  queue_.push(std::move(e));
  live_.insert(id);
  return id;
}

bool EventLoop::Cancel(EventId id) {
  if (live_.erase(id) == 0) {
    return false;  // never scheduled, already dispatched, or already cancelled
  }
  cancelled_.insert(id);
  cancelled_total_++;
  return true;
}

void EventLoop::PurgeCancelledTop() {
  while (!queue_.empty() && cancelled_.count(queue_.top().seq) != 0) {
    cancelled_.erase(queue_.top().seq);
    queue_.pop();
  }
}

bool EventLoop::RunOne() {
  PurgeCancelledTop();
  if (queue_.empty()) {
    return false;
  }
  Event e = queue_.top();
  queue_.pop();
  live_.erase(e.seq);
  now_ = e.time;
  HashDispatch(e);
  dispatched_++;
  g_total_dispatched++;
  e.fn();
  return true;
}

std::uint64_t EventLoop::Run() {
  std::uint64_t n = 0;
  while (RunOne()) {
    n++;
  }
  return n;
}

std::uint64_t EventLoop::RunUntil(SimTime t) {
  std::uint64_t n = 0;
  for (;;) {
    PurgeCancelledTop();
    if (queue_.empty() || queue_.top().time > t || !RunOne()) {
      break;
    }
    n++;
  }
  return n;
}

void EventLoop::HashDispatch(const Event& e) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  auto mix = [this](const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      trace_hash_ ^= p[i];
      trace_hash_ *= kPrime;
    }
  };
  mix(&e.time, sizeof(e.time));
  mix(&e.seq, sizeof(e.seq));
  mix(e.label.data(), e.label.size());
  if (record_trace_) {
    trace_.push_back(TraceEntry{e.time, e.seq, e.label});
  }
}

}  // namespace fbufs
