// Deterministic pseudo-random number generator for workload generation.
//
// SplitMix64: tiny, fast, and identical across platforms, so property tests
// and benches are reproducible bit-for-bit.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace fbufs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be nonzero.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // True with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) { return Below(den) < num; }

 private:
  std::uint64_t state_;
};

}  // namespace fbufs

#endif  // SRC_SIM_RNG_H_
