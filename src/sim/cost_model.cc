#include "src/sim/cost_model.h"

namespace fbufs {

namespace {
// ATM cell payload size (AAL5-style, 48 bytes of the 53-byte cell).
constexpr std::uint64_t kCellPayload = 48;
}  // namespace

SimTime CostParams::DmaTime(std::uint64_t bytes) const {
  const std::uint64_t cells = (bytes + kCellPayload - 1) / kCellPayload;
  // Per cell: start-up latency + payload transfer at bus peak + contention.
  const SimTime per_cell_transfer = kCellPayload * 8 * 1000 / bus_peak_mbps;
  return cells * (dma_cell_startup_ns + per_cell_transfer + bus_contention_ns);
}

CostParams CostParams::DecStation5000() { return CostParams{}; }

CostParams CostParams::Zero() {
  CostParams p;
  p.pt_update_ns = 0;
  p.tlb_flush_ns = 0;
  p.tlb_miss_ns = 0;
  p.prot_change_ns = 0;
  p.page_fault_ns = 0;
  p.page_clear_ns = 0;
  p.page_in_ns = 0;
  p.va_alloc_ns = 0;
  p.va_free_ns = 0;
  p.copy_page_ns = 0;
  p.remap_page_overhead_ns = 0;
  p.alloc_page_kernel_ns = 0;
  p.mem_word_ns = 0;
  p.ipc_kernel_user_ns = 0;
  p.ipc_user_user_ns = 0;
  p.cache_pressure_ns = 0;
  p.dispatch_ns = 0;
  p.ring_entry_ns = 0;
  p.ring_doorbell_ns = 0;
  p.proto_pdu_ns = 0;
  p.driver_pdu_ns = 0;
  p.driver_byte_ns = 0;
  p.frag_fixed_ns = 0;
  p.csum_byte_ns = 0;
  p.fbuf_list_marshal_ns = 0;
  p.dma_cell_startup_ns = 0;
  p.bus_contention_ns = 0;
  return p;
}

}  // namespace fbufs
