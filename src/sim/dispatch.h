// CPU lanes and evented dispatch queues: the multicore substrate.
//
// A CpuLane generalizes Resource into a schedulable CPU: it keeps the
// Resource busy-until/utilization algebra and adds its own SimClock — the
// lane's timeline. A multicore Machine owns N lanes; work executed "on" a
// lane charges that lane's clock, so two lanes of one host genuinely overlap
// in simulated time while work on one lane stays serial.
//
// A DispatchQueue is the scheduling primitive on top: work items enqueue
// with a ready time and run when their lane frees, in enqueue order.
// Queueing delay (start - ready) is measured per item, so scheduler-induced
// latency under load is an output of the schedule, not a modeled constant.
// Several queues may bind to one lane (per-domain queues sharing a CPU);
// they serialize through the lane's clock, exactly like runnable threads
// sharing a run queue.
//
// Determinism: items run in (ready-time, enqueue order) via the EventLoop's
// (time, seq) keys; no wall clock, no randomness. Same schedule, same run.
#ifndef SRC_SIM_DISPATCH_H_
#define SRC_SIM_DISPATCH_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "src/sim/clock.h"
#include "src/sim/event_loop.h"

namespace fbufs {

// A schedulable CPU: serial Resource occupancy plus the lane's own timeline.
class CpuLane : public Resource {
 public:
  CpuLane(std::string name, std::uint32_t index)
      : Resource(std::move(name)), index_(index) {}

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  std::uint32_t index() const { return index_; }

 private:
  SimClock clock_;
  std::uint32_t index_;
};

// RSS-style steering: hash a flow key (a VCI) to a fixed lane so one flow's
// receive processing always lands on the same CPU (packet order preserved
// per flow, cache affinity preserved per lane) while distinct flows spread.
// Fibonacci hashing; any fixed multiplier works, determinism is what counts.
inline std::uint32_t RssSteer(std::uint32_t key, std::uint32_t lanes) {
  if (lanes <= 1) {
    return 0;
  }
  return static_cast<std::uint32_t>((key * 2654435761u) >> 16) % lanes;
}

// Serializes work items onto one CpuLane. Items run to completion in enqueue
// order; an item that finds the lane still busy with its predecessor waits,
// and the wait is accounted. The |work| callback is expected to charge the
// lane's clock (that is how its cost is measured); |done| fires with the
// item's completion time on the lane.
class DispatchQueue {
 public:
  using Work = std::function<void()>;
  using Done = std::function<void(SimTime)>;
  // Per-item queueing-delay observer (the aggregate observer below sees every
  // item; this one lets the submitter slice waits by its own key, e.g. path).
  using WaitCb = std::function<void(SimTime)>;

  DispatchQueue(EventLoop* loop, CpuLane* lane, std::string name)
      : loop_(loop), lane_(lane), name_(std::move(name)) {}

  DispatchQueue(const DispatchQueue&) = delete;
  DispatchQueue& operator=(const DispatchQueue&) = delete;

  // Context hooks bracket every item (and the idle-wait that may precede
  // it): a multicore Machine installs them to switch its active CPU to this
  // queue's lane, so clock charges inside |work| land on the right timeline.
  void SetContextHooks(std::function<void()> enter, std::function<void()> exit) {
    enter_ = std::move(enter);
    exit_ = std::move(exit);
  }

  // Observes each item's start time (on the lane's timeline) and queueing
  // delay as it begins running (metrics export).
  void SetWaitObserver(std::function<void(SimTime, SimTime)> obs) {
    wait_obs_ = std::move(obs);
  }

  // Enqueues |work|, ready to run at |ready| on the lane's timeline. The
  // queue drains itself through the event loop; callers never block.
  void Enqueue(SimTime ready, std::string label, Work work, Done done = {},
               WaitCb wait_cb = {}) {
    items_.push_back(Item{ready, std::move(label), std::move(work), std::move(done),
                          std::move(wait_cb)});
    enqueued_++;
    if (depth() > max_depth_) {
      max_depth_ = depth();
    }
    if (!pump_scheduled_) {
      SchedulePump(ready);
    }
  }

  CpuLane& lane() { return *lane_; }
  const std::string& name() const { return name_; }
  std::size_t depth() const { return items_.size(); }
  std::size_t max_depth() const { return max_depth_; }
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t completed() const { return completed_; }
  // Total and maximum queueing delay (start - ready) over completed items:
  // the scheduler-induced latency the single-clock model could not show.
  SimTime total_wait_ns() const { return total_wait_ns_; }
  SimTime max_wait_ns() const { return max_wait_ns_; }

 private:
  struct Item {
    SimTime ready = 0;
    std::string label;
    Work work;
    Done done;
    WaitCb wait_cb;
  };

  void SchedulePump(SimTime ready) {
    pump_scheduled_ = true;
    // The event key only orders dispatch; the true start time is computed
    // against the lane clock when the item actually runs. Clamp to the
    // loop's floor (lane timelines are only partially ordered).
    const SimTime at = std::max(ready, loop_->Now());
    loop_->Schedule(at, "dispatch/" + name_, [this] { Pump(); });
  }

  void Pump() {
    pump_scheduled_ = false;
    if (items_.empty()) {
      return;
    }
    Item item = std::move(items_.front());
    items_.pop_front();
    const SimTime start = std::max(item.ready, lane_->clock().Now());
    const SimTime wait = start - item.ready;
    total_wait_ns_ += wait;
    if (wait > max_wait_ns_) {
      max_wait_ns_ = wait;
    }
    if (wait_obs_) {
      wait_obs_(start, wait);
    }
    if (item.wait_cb) {
      item.wait_cb(wait);
    }
    if (enter_) {
      enter_();
    }
    // Idle until the item's ready time (DMA completion, message arrival):
    // attributed as wait on the lane's own timeline.
    lane_->clock().AdvanceToAtLeast(start);
    const SimTime before = lane_->clock().Now();
    item.work();
    const SimTime after = lane_->clock().Now();
    lane_->RecordBusy(before, after);
    if (exit_) {
      exit_();
    }
    completed_++;
    if (item.done) {
      item.done(after);
    }
    if (!items_.empty() && !pump_scheduled_) {
      SchedulePump(std::max(items_.front().ready, lane_->clock().Now()));
    }
  }

  EventLoop* loop_;
  CpuLane* lane_;
  std::string name_;
  std::deque<Item> items_;
  bool pump_scheduled_ = false;
  std::size_t max_depth_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t completed_ = 0;
  SimTime total_wait_ns_ = 0;
  SimTime max_wait_ns_ = 0;
  std::function<void()> enter_;
  std::function<void()> exit_;
  std::function<void(SimTime, SimTime)> wait_obs_;
};

}  // namespace fbufs

#endif  // SRC_SIM_DISPATCH_H_
