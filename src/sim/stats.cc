#include "src/sim/stats.h"

#include <sstream>

namespace fbufs {

SimStats SimStats::Since(const SimStats& base) const {
  SimStats d;
#define FBUFS_SIMSTATS_DIFF(name) d.name = name - base.name;
  FBUFS_SIMSTATS_FIELDS(FBUFS_SIMSTATS_DIFF)
#undef FBUFS_SIMSTATS_DIFF
  return d;
}

std::string SimStats::ToString() const {
  std::ostringstream os;
  int col = 0;
#define FBUFS_SIMSTATS_PRINT(name)                    \
  os << #name << "=" << name;                         \
  os << (++col % 5 == 0 ? "\n" : " ");
  FBUFS_SIMSTATS_FIELDS(FBUFS_SIMSTATS_PRINT)
#undef FBUFS_SIMSTATS_PRINT
  std::string s = os.str();
  while (!s.empty() && (s.back() == ' ' || s.back() == '\n')) {
    s.pop_back();
  }
  return s;
}

}  // namespace fbufs
