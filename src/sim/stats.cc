#include "src/sim/stats.h"

#include <sstream>

namespace fbufs {

SimStats SimStats::Since(const SimStats& base) const {
  SimStats d;
  d.pt_updates = pt_updates - base.pt_updates;
  d.tlb_flushes = tlb_flushes - base.tlb_flushes;
  d.tlb_misses = tlb_misses - base.tlb_misses;
  d.page_faults = page_faults - base.page_faults;
  d.prot_faults = prot_faults - base.prot_faults;
  d.pages_cleared = pages_cleared - base.pages_cleared;
  d.pages_swapped_out = pages_swapped_out - base.pages_swapped_out;
  d.pages_swapped_in = pages_swapped_in - base.pages_swapped_in;
  d.pages_allocated = pages_allocated - base.pages_allocated;
  d.pages_freed = pages_freed - base.pages_freed;
  d.bytes_copied = bytes_copied - base.bytes_copied;
  d.va_allocs = va_allocs - base.va_allocs;
  d.ipc_calls = ipc_calls - base.ipc_calls;
  d.fbuf_allocs = fbuf_allocs - base.fbuf_allocs;
  d.fbuf_cache_hits = fbuf_cache_hits - base.fbuf_cache_hits;
  d.fbuf_transfers = fbuf_transfers - base.fbuf_transfers;
  d.dealloc_notices = dealloc_notices - base.dealloc_notices;
  d.dealloc_messages = dealloc_messages - base.dealloc_messages;
  d.degraded_pdus = degraded_pdus - base.degraded_pdus;
  d.pressure_sweeps = pressure_sweeps - base.pressure_sweeps;
  d.pressure_pages_reclaimed = pressure_pages_reclaimed - base.pressure_pages_reclaimed;
  return d;
}

std::string SimStats::ToString() const {
  std::ostringstream os;
  os << "pt_updates=" << pt_updates << " tlb_flushes=" << tlb_flushes
     << " tlb_misses=" << tlb_misses << " page_faults=" << page_faults
     << " prot_faults=" << prot_faults << " pages_cleared=" << pages_cleared
     << "\npages_allocated=" << pages_allocated << " pages_freed=" << pages_freed
     << " bytes_copied=" << bytes_copied << " va_allocs=" << va_allocs
     << " ipc_calls=" << ipc_calls << "\nfbuf_allocs=" << fbuf_allocs
     << " fbuf_cache_hits=" << fbuf_cache_hits << " fbuf_transfers=" << fbuf_transfers
     << " dealloc_notices=" << dealloc_notices
     << " dealloc_messages=" << dealloc_messages << "\ndegraded_pdus=" << degraded_pdus
     << " pressure_sweeps=" << pressure_sweeps
     << " pressure_pages_reclaimed=" << pressure_pages_reclaimed;
  return os.str();
}

}  // namespace fbufs
