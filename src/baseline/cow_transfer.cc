#include "src/baseline/cow_transfer.h"

namespace fbufs {

Status CowTransfer::Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), originator.id());
  const std::uint64_t pages = PagesFor(bytes);
  auto va = originator.aspace().Allocate(pages);
  if (!va.has_value()) {
    return Status::kNoVirtualSpace;
  }
  machine_->clock().Advance(machine_->costs().va_alloc_ns);
  machine_->stats().va_allocs++;
  const Status st = machine_->vm().MapAnonymous(originator, *va, pages, Prot::kReadWrite,
                                                /*eager=*/true, /*clear=*/true,
                                                ChargeMode::kGeneral);
  if (!Ok(st)) {
    return st;
  }
  ref->sender_addr = *va;
  ref->bytes = bytes;
  ref->pages = pages;
  return Status::kOk;
}

Status CowTransfer::Send(BufferRef& ref, Domain& from, Domain& to) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), from.id());
  // The receiver gets a fresh address range each message (Mach receives into
  // newly allocated out-of-line memory). Range reservation is per message,
  // not per page.
  auto va = to.aspace().Allocate(ref.pages);
  if (!va.has_value()) {
    return Status::kNoVirtualSpace;
  }
  machine_->clock().Advance(machine_->costs().va_alloc_ns);
  machine_->stats().va_allocs++;
  const Status st = machine_->vm().ShareCow(from, ref.sender_addr, to, *va, ref.pages);
  if (!Ok(st)) {
    return st;
  }
  ref.receiver_addr = *va;
  return Status::kOk;
}

Status CowTransfer::ReceiverFree(BufferRef& ref, Domain& receiver) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), receiver.id());
  // Bulk deallocate: per-page pt removal + TLB consistency.
  const Status st =
      machine_->vm().Unmap(receiver, ref.receiver_addr, ref.pages, ChargeMode::kStreamlined);
  if (!Ok(st)) {
    return st;
  }
  receiver.aspace().Free(ref.receiver_addr, ref.pages);
  ref.receiver_addr = 0;
  return Status::kOk;
}

Status CowTransfer::SenderFree(BufferRef& ref, Domain& sender) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), sender.id());
  machine_->clock().Advance(machine_->costs().va_free_ns);
  const Status st =
      machine_->vm().Unmap(sender, ref.sender_addr, ref.pages, ChargeMode::kGeneral);
  if (!Ok(st)) {
    return st;
  }
  sender.aspace().Free(ref.sender_addr, ref.pages);
  return Status::kOk;
}

}  // namespace fbufs
