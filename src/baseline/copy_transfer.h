// Physical-copy transfer: the kernel memcpys the data into a receiver-side
// buffer. The receiver buffer is allocated once per (receiver, size) and
// reused, so the steady-state incremental cost is the copy itself — the
// paper's 204 us/page, memory-bandwidth bound.
#ifndef SRC_BASELINE_COPY_TRANSFER_H_
#define SRC_BASELINE_COPY_TRANSFER_H_

#include <map>

#include "src/baseline/transfer_facility.h"

namespace fbufs {

class CopyTransfer : public TransferFacility {
 public:
  explicit CopyTransfer(Machine* machine) : machine_(machine) {}

  std::string name() const override { return "copy"; }

  Status Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) override;
  Status Send(BufferRef& ref, Domain& from, Domain& to) override;
  Status ReceiverFree(BufferRef& ref, Domain& receiver) override;
  Status SenderFree(BufferRef& ref, Domain& sender) override;

 private:
  Status ReceiverBuffer(Domain& to, std::uint64_t pages, VirtAddr* addr);

  Machine* machine_;
  // (receiver domain, pages) -> reusable landing buffer.
  std::map<std::pair<DomainId, std::uint64_t>, VirtAddr> pool_;
};

}  // namespace fbufs

#endif  // SRC_BASELINE_COPY_TRANSFER_H_
