#include "src/baseline/copy_transfer.h"

#include <cstring>

namespace fbufs {

Status CopyTransfer::Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), originator.id());
  const std::uint64_t pages = PagesFor(bytes);
  auto va = originator.aspace().Allocate(pages);
  if (!va.has_value()) {
    return Status::kNoVirtualSpace;
  }
  machine_->clock().Advance(machine_->costs().va_alloc_ns);
  machine_->stats().va_allocs++;
  const Status st = machine_->vm().MapAnonymous(originator, *va, pages, Prot::kReadWrite,
                                                /*eager=*/true, /*clear=*/true,
                                                ChargeMode::kGeneral);
  if (!Ok(st)) {
    originator.aspace().Free(*va, pages);
    return st;
  }
  ref->sender_addr = *va;
  ref->bytes = bytes;
  ref->pages = pages;
  return Status::kOk;
}

Status CopyTransfer::ReceiverBuffer(Domain& to, std::uint64_t pages, VirtAddr* addr) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), to.id());
  auto it = pool_.find({to.id(), pages});
  if (it != pool_.end()) {
    *addr = it->second;
    return Status::kOk;
  }
  auto va = to.aspace().Allocate(pages);
  if (!va.has_value()) {
    return Status::kNoVirtualSpace;
  }
  machine_->clock().Advance(machine_->costs().va_alloc_ns);
  machine_->stats().va_allocs++;
  const Status st = machine_->vm().MapAnonymous(to, *va, pages, Prot::kReadWrite,
                                                /*eager=*/true, /*clear=*/true,
                                                ChargeMode::kGeneral);
  if (!Ok(st)) {
    to.aspace().Free(*va, pages);
    return st;
  }
  pool_[{to.id(), pages}] = *va;
  *addr = *va;
  return Status::kOk;
}

Status CopyTransfer::Send(BufferRef& ref, Domain& from, Domain& to) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), from.id());
  VirtAddr dst = 0;
  Status st = ReceiverBuffer(to, ref.pages, &dst);
  if (!Ok(st)) {
    return st;
  }
  // Kernel copy, page by page, through real frames.
  for (std::uint64_t i = 0; i < ref.pages; ++i) {
    const FrameId sf = from.DebugFrame(PageOf(ref.sender_addr) + i);
    const FrameId df = to.DebugFrame(PageOf(dst) + i);
    if (sf == kInvalidFrame || df == kInvalidFrame) {
      return Status::kNotMapped;
    }
    std::memcpy(machine_->pmem().Data(df), machine_->pmem().Data(sf), kPageSize);
  }
  machine_->clock().Advance(machine_->costs().CopyCost(ref.bytes));
  machine_->stats().bytes_copied += ref.bytes;
  ref.receiver_addr = dst;
  return Status::kOk;
}

Status CopyTransfer::ReceiverFree(BufferRef& ref, Domain& receiver) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), receiver.id());
  // The landing buffer is pooled; nothing to undo.
  (void)ref;
  (void)receiver;
  return Status::kOk;
}

Status CopyTransfer::SenderFree(BufferRef& ref, Domain& sender) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), sender.id());
  machine_->clock().Advance(machine_->costs().va_free_ns);
  const Status st =
      machine_->vm().Unmap(sender, ref.sender_addr, ref.pages, ChargeMode::kGeneral);
  if (!Ok(st)) {
    return st;
  }
  sender.aspace().Free(ref.sender_addr, ref.pages);
  return Status::kOk;
}

}  // namespace fbufs
