// Mach's native data transfer, as used for the Figure 3 comparison: data is
// physically copied for messages under 2 KB and transferred copy-on-write
// otherwise.
#ifndef SRC_BASELINE_MACH_NATIVE_H_
#define SRC_BASELINE_MACH_NATIVE_H_

#include "src/baseline/copy_transfer.h"
#include "src/baseline/cow_transfer.h"
#include "src/baseline/transfer_facility.h"

namespace fbufs {

class MachNativeTransfer : public TransferFacility {
 public:
  static constexpr std::uint64_t kCopyThreshold = 2048;

  explicit MachNativeTransfer(Machine* machine) : copy_(machine), cow_(machine) {}

  std::string name() const override { return "mach-native"; }

  Status Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) override {
    const Status st = Pick(bytes).Alloc(originator, bytes, ref);
    ref->cookie = bytes < kCopyThreshold ? 0 : 1;
    return st;
  }
  Status Send(BufferRef& ref, Domain& from, Domain& to) override {
    return Pick(ref).Send(ref, from, to);
  }
  Status ReceiverFree(BufferRef& ref, Domain& receiver) override {
    return Pick(ref).ReceiverFree(ref, receiver);
  }
  Status SenderFree(BufferRef& ref, Domain& sender) override {
    return Pick(ref).SenderFree(ref, sender);
  }

 private:
  TransferFacility& Pick(std::uint64_t bytes) {
    return bytes < kCopyThreshold ? static_cast<TransferFacility&>(copy_)
                                  : static_cast<TransferFacility&>(cow_);
  }
  TransferFacility& Pick(const BufferRef& ref) {
    return ref.cookie == 0 ? static_cast<TransferFacility&>(copy_)
                           : static_cast<TransferFacility&>(cow_);
  }

  CopyTransfer copy_;
  CowTransfer cow_;
};

}  // namespace fbufs

#endif  // SRC_BASELINE_MACH_NATIVE_H_
