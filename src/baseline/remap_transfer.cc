#include "src/baseline/remap_transfer.h"

namespace fbufs {

Status RemapTransfer::Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), originator.id());
  const std::uint64_t pages = PagesFor(bytes);
  auto va = shared_va_.Allocate(pages);
  if (!va.has_value()) {
    return Status::kNoVirtualSpace;
  }
  machine_->clock().Advance(machine_->costs().va_alloc_ns);
  machine_->stats().va_allocs++;
  // Pages enter cleared per the configured fraction (kRealistic models the
  // security clearing of memory recycled between protection domains).
  const bool clear = mode_ == Mode::kRealistic && clear_percent_ > 0;
  const Status st = machine_->vm().MapAnonymous(originator, *va, pages, Prot::kReadWrite,
                                                /*eager=*/true, /*clear=*/false,
                                                ChargeMode::kGeneral);
  if (!Ok(st)) {
    return st;
  }
  if (clear) {
    // Pro-rate the clear cost by the fraction of each page actually cleared.
    const SimTime per_page = machine_->costs().page_clear_ns * clear_percent_ / 100;
    machine_->clock().Advance(per_page * pages);
    machine_->stats().pages_cleared += pages;
  }
  ref->sender_addr = *va;
  ref->receiver_addr = *va;  // same address everywhere (shared range)
  ref->bytes = bytes;
  ref->pages = pages;
  return Status::kOk;
}

Status RemapTransfer::Send(BufferRef& ref, Domain& from, Domain& to) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), from.id());
  return machine_->vm().Remap(from, ref.sender_addr, to, ref.sender_addr, ref.pages);
}

Status RemapTransfer::SendBack(BufferRef& ref, Domain& from, Domain& to) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), from.id());
  return machine_->vm().Remap(from, ref.sender_addr, to, ref.sender_addr, ref.pages);
}

Status RemapTransfer::ReceiverFree(BufferRef& ref, Domain& receiver) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), receiver.id());
  if (mode_ == Mode::kPingPong) {
    return Status::kOk;  // the buffer bounces back instead
  }
  machine_->clock().Advance(machine_->costs().va_free_ns);
  const Status st =
      machine_->vm().Unmap(receiver, ref.receiver_addr, ref.pages, ChargeMode::kStreamlined);
  if (!Ok(st)) {
    return st;
  }
  shared_va_.Free(ref.receiver_addr, ref.pages);
  return Status::kOk;
}

Status RemapTransfer::SenderFree(BufferRef& ref, Domain& sender) {
  LayerScope layer(machine_->attribution(), CostDomain::kBaseline);
  ActorScope actor(machine_->attribution(), sender.id());
  // Move semantics: after Send the sender no longer owns the pages. Only a
  // buffer that was never sent (or bounced back in ping-pong) is released
  // here.
  if (sender.FindEntry(PageOf(ref.sender_addr)) == nullptr) {
    shared_va_.Free(ref.sender_addr, ref.pages);
    return Status::kOk;
  }
  machine_->clock().Advance(machine_->costs().va_free_ns);
  const Status st =
      machine_->vm().Unmap(sender, ref.sender_addr, ref.pages, ChargeMode::kStreamlined);
  if (!Ok(st)) {
    return st;
  }
  shared_va_.Free(ref.sender_addr, ref.pages);
  return Status::kOk;
}

}  // namespace fbufs
