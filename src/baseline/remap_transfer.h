// DASH-style virtual page remapping with move semantics (§2.2 of the paper).
//
// Two operating modes, matching the paper's re-evaluation of Tzou/Anderson:
//   * kPingPong — the same buffer is remapped back and forth between two
//     domains; no allocation, clearing or deallocation appears in the cost
//     (their benchmark; ~22 us/page on the DecStation).
//   * kRealistic — high-bandwidth data flows one way: the source continually
//     allocates (and clears a configurable fraction of) fresh buffers and
//     the sink deallocates them (~42-99 us/page depending on the cleared
//     fraction).
//
// Remapping uses the same virtual address in both domains (DASH's shared
// address range), so no receiver-side address allocation is needed.
#ifndef SRC_BASELINE_REMAP_TRANSFER_H_
#define SRC_BASELINE_REMAP_TRANSFER_H_

#include "src/baseline/transfer_facility.h"
#include "src/vm/address_space.h"

namespace fbufs {

// Virtual range shared by all domains for remapped buffers (between the
// private range and the fbuf region).
constexpr VirtAddr kRemapRegionBase = kPrivateEnd;
constexpr std::uint64_t kRemapRegionPages = 32 * 1024;  // 128 MB

class RemapTransfer : public TransferFacility {
 public:
  enum class Mode { kPingPong, kRealistic };

  // |clear_percent| of each allocated page is zero-filled in kRealistic mode
  // (security clearing of the unwritten remainder); 0-100.
  RemapTransfer(Machine* machine, Mode mode, std::uint32_t clear_percent = 100)
      : machine_(machine), mode_(mode), clear_percent_(clear_percent) {
    shared_va_.Extend(kRemapRegionBase, kRemapRegionPages);
  }

  std::string name() const override {
    return mode_ == Mode::kPingPong ? "remap-pingpong" : "remap-realistic";
  }

  Status Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) override;
  Status Send(BufferRef& ref, Domain& from, Domain& to) override;
  Status ReceiverFree(BufferRef& ref, Domain& receiver) override;
  Status SenderFree(BufferRef& ref, Domain& sender) override;

  // Ping-pong helper: remap the buffer back to the originator.
  Status SendBack(BufferRef& ref, Domain& from, Domain& to);

 private:
  Machine* machine_;
  Mode mode_;
  std::uint32_t clear_percent_;
  // One allocator for the globally shared remap range: a buffer occupies the
  // same virtual address in whichever domain currently holds it.
  AddressSpace shared_va_{AddressSpace::Empty{}};
};

}  // namespace fbufs

#endif  // SRC_BASELINE_REMAP_TRANSFER_H_
