// Common interface over cross-domain data transfer mechanisms.
//
// Table 1 and Figure 3 of the paper compare fbufs against physical copying,
// Mach's copy-on-write, and (in §2.2) DASH-style page remapping. Each
// baseline implements this interface so the benches can drive them all with
// the identical allocate → write → send → read → free cycle.
#ifndef SRC_BASELINE_TRANSFER_FACILITY_H_
#define SRC_BASELINE_TRANSFER_FACILITY_H_

#include <cstdint>
#include <string>

#include "src/vm/machine.h"
#include "src/vm/types.h"

namespace fbufs {

// Handle to one in-flight buffer. The facility interprets the fields.
struct BufferRef {
  VirtAddr sender_addr = 0;    // where the originator writes
  VirtAddr receiver_addr = 0;  // where the receiver reads (set by Send)
  std::uint64_t bytes = 0;
  std::uint64_t pages = 0;
  std::uint64_t cookie = 0;  // facility private
};

class TransferFacility {
 public:
  virtual ~TransferFacility() = default;

  virtual std::string name() const = 0;

  // Prepares a buffer of |bytes| writable by |originator|.
  virtual Status Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) = 0;

  // Makes the buffer's current contents readable by |to| at
  // ref->receiver_addr (copy semantics unless the facility is a mover).
  virtual Status Send(BufferRef& ref, Domain& from, Domain& to) = 0;

  // The receiver is done with its view.
  virtual Status ReceiverFree(BufferRef& ref, Domain& receiver) = 0;

  // The originator is done with the buffer (end of the benchmark loop;
  // facilities with reusable sender buffers treat this as a no-op between
  // iterations and reclaim in their destructor).
  virtual Status SenderFree(BufferRef& ref, Domain& sender) = 0;
};

}  // namespace fbufs

#endif  // SRC_BASELINE_TRANSFER_FACILITY_H_
