// Adapter presenting the fbuf facility through the common TransferFacility
// interface, so the comparison benches drive fbufs and the baselines with an
// identical cycle. The four paper variants are selected by (cached,
// volatile).
#ifndef SRC_BASELINE_FBUF_ADAPTER_H_
#define SRC_BASELINE_FBUF_ADAPTER_H_

#include "src/baseline/transfer_facility.h"
#include "src/fbuf/fbuf_system.h"

namespace fbufs {

class FbufTransferAdapter : public TransferFacility {
 public:
  // |path| must name a registered path whose originator is the allocating
  // domain for cached operation; pass kNoPath for uncached fbufs.
  FbufTransferAdapter(FbufSystem* fsys, PathId path, bool cached, bool is_volatile)
      : fsys_(fsys), path_(path), cached_(cached), volatile_(is_volatile) {}

  std::string name() const override {
    std::string n = "fbufs";
    n += cached_ ? "-cached" : "-uncached";
    n += volatile_ ? "-volatile" : "-secured";
    return n;
  }

  Status Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) override {
    Fbuf* fb = nullptr;
    const Status st =
        fsys_->Allocate(originator, cached_ ? path_ : kNoPath, bytes, volatile_, &fb);
    if (!Ok(st)) {
      return st;
    }
    ref->sender_addr = fb->base;
    ref->receiver_addr = fb->base;  // same address in every domain
    ref->bytes = bytes;
    ref->pages = fb->pages;
    ref->cookie = fb->id;
    return Status::kOk;
  }

  Status Send(BufferRef& ref, Domain& from, Domain& to) override {
    return fsys_->Transfer(Get(ref), from, to);
  }

  Status ReceiverFree(BufferRef& ref, Domain& receiver) override {
    return fsys_->Free(Get(ref), receiver);
  }

  Status SenderFree(BufferRef& ref, Domain& sender) override {
    return fsys_->Free(Get(ref), sender);
  }

 private:
  Fbuf* Get(const BufferRef& ref) { return fsys_->Get(static_cast<FbufId>(ref.cookie)); }

  FbufSystem* fsys_;
  PathId path_;
  bool cached_;
  bool volatile_;
};

}  // namespace fbufs

#endif  // SRC_BASELINE_FBUF_ADAPTER_H_
