// Mach-style copy-on-write transfer.
//
// Copy semantics without eager copying: the kernel marks the sender's pages
// COW and creates receiver map entries, but — like Mach's lazy strategy for
// physical page tables — installs no low-level entries. The receiver's first
// touch of each page faults, and so does the sender's next write, giving the
// paper's "two page faults for each transfer" and its 159 us/page cost.
#ifndef SRC_BASELINE_COW_TRANSFER_H_
#define SRC_BASELINE_COW_TRANSFER_H_

#include "src/baseline/transfer_facility.h"

namespace fbufs {

class CowTransfer : public TransferFacility {
 public:
  explicit CowTransfer(Machine* machine) : machine_(machine) {}

  std::string name() const override { return "mach-cow"; }

  Status Alloc(Domain& originator, std::uint64_t bytes, BufferRef* ref) override;
  Status Send(BufferRef& ref, Domain& from, Domain& to) override;
  Status ReceiverFree(BufferRef& ref, Domain& receiver) override;
  Status SenderFree(BufferRef& ref, Domain& sender) override;

 private:
  Machine* machine_;
};

}  // namespace fbufs

#endif  // SRC_BASELINE_COW_TRANSFER_H_
