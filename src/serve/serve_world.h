// ServeWorld: a star topology serving files to a fan-in of client hosts.
//
// One sender-shaped server host (its FileCache and FileServer in the app
// domain) with a unidirectional link to each of C receiver-shaped client
// hosts. Tens of thousands of logical request flows multiplex over the
// client hosts: each request is framed (src/serve/request.h), written into
// a small fbuf by a frontend domain on the server machine, and delivered to
// the FileServer over the IPC fabric — synchronously, or batched over
// transfer rings when |use_rings| is set. The response blocks the server
// pushes down its stack come out of the driver as staged PDUs; the world
// segments them into ATM cells, runs them over the client's link (drops
// included), reassembles, and delivers into the client's receive stack,
// mirroring TopologyRunner's wire mechanics.
//
// Flow lifecycle (§3.3): a request completes when its last PDU is delivered
// (or accounted dropped); the client's dealloc notice rides back one cell
// time later and only then does FileServer unpin the request's cache
// blocks. A failed flow (dead client domain, stalled backpressure) takes
// the same notice path through AbortRequest, so pins never leak no matter
// how the flow ends.
#ifndef SRC_SERVE_SERVE_WORLD_H_
#define SRC_SERVE_SERVE_WORLD_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/file_cache.h"
#include "src/net/atm.h"
#include "src/pressure/backoff.h"
#include "src/pressure/pressure.h"
#include "src/serve/file_server.h"
#include "src/sim/event_loop.h"
#include "src/topo/topology.h"

namespace fbufs {

struct ServeWorldConfig {
  std::size_t clients = 4;
  SimHostConfig host;  // stack shape shared by server and clients
  FileCacheConfig cache;
  double client_link_mbps = 155.0;  // per-client access link (TAXI rate)
  std::uint32_t base_vci = 40;      // client i listens on base_vci + i
  std::uint16_t port = 80;
  // Concurrent request window; arrivals beyond it queue FIFO.
  std::uint32_t max_inflight = 64;
  bool use_rings = false;       // batch server-side crossings over rings
  bool attach_pressure = false;  // PressureManager + degraded miss path
  PressureConfig pressure;
  BackoffPolicy backoff;
  SimTime stall_horizon = 250 * kMillisecond;
  std::uint64_t topo_seed = 0x5e44e;
};

struct ServeRequestSpec {
  SimTime at = 0;            // arrival time (event-loop timeline)
  std::uint32_t client = 0;  // which client host issues it
  FileId file = 0;
  std::uint32_t blocks = 1;  // requested length, in cache blocks
};

struct ServeRunStats {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;  // all PDUs accounted (drops included)
  std::uint64_t truncated = 0;  // completed, but lost PDUs to link drops
  std::uint64_t failed = 0;     // hard failure or stall watchdog
  std::uint64_t stall_failures = 0;
  std::uint64_t unfinished = 0;  // still pending at quiescence (aborted)
  std::uint64_t parks = 0;       // backpressure park/retry episodes
  std::uint64_t served_blocks = 0;
  std::uint64_t hit_blocks = 0;
  std::uint64_t degraded_blocks = 0;
  std::uint64_t pdus_dropped = 0;
  std::uint64_t discarded_pdus = 0;  // staged by serves that then failed
  std::uint64_t delivered_bytes = 0;
  SimTime elapsed_ns = 0;
  // Request completion latencies (issue -> last PDU accounted), in
  // completion order; failed requests are excluded.
  std::vector<SimTime> latencies;
  double goodput_mbps = 0;
  double hit_ratio = 0;
};

// The frontend protocol: origin of request messages on the server machine.
// It never receives traffic itself — requests are injected with
// ProtocolStack::Deliver(frontend -> FileServer), so the crossing is
// charged (and rides rings when enabled) like any other IPC.
class RequestSource : public Protocol {
 public:
  RequestSource(Domain* domain, ProtocolStack* stack)
      : Protocol("request-source", domain, stack) {}
  Status Push(Message) override { return Status::kInvalidArgument; }
  Status Pop(Message) override { return Status::kInvalidArgument; }
  bool touches_body() const override { return false; }
};

class ServeWorld {
 public:
  explicit ServeWorld(const ServeWorldConfig& config);

  ServeWorld(const ServeWorld&) = delete;
  ServeWorld& operator=(const ServeWorld&) = delete;

  // Runs one request schedule to quiescence (including the ring epilogue
  // and all dealloc notices) and reports. Callable repeatedly; stats are
  // per run.
  ServeRunStats Run(const std::vector<ServeRequestSpec>& schedule);

  // Turns on latency-decomposition sampling: queue_wait (arrival → issue),
  // wire (staged → RX DMA done), dispatch (RX DMA done → client CPU pickup)
  // recorded here, pin_hold by the FileServer. Call before Run.
  void EnableLatency() {
    latency_enabled_ = true;
    file_server_->AttachLatency(&lat_);
  }
  const LatencyDecomposition& latency() const { return lat_; }

  EventLoop& loop() { return loop_; }
  Topology& topo() { return topo_; }
  SimHost& server() { return *topo_.host(server_node_); }
  SimHost& client(std::size_t i) { return *topo_.host(client_nodes_[i]); }
  NodeId server_node() const { return server_node_; }
  NodeId client_node(std::size_t i) const { return client_nodes_[i]; }
  LinkId client_link(std::size_t i) const { return client_links_[i]; }
  std::size_t client_count() const { return client_nodes_.size(); }
  FileCache& cache() { return *cache_; }
  FileServer& file_server() { return *file_server_; }
  PressureManager* pressure() { return pressure_.get(); }
  const ServeWorldConfig& config() const { return cfg_; }

 private:
  struct Pending {
    ServeRequestSpec spec;
    SimTime issue_at = 0;
    std::uint64_t pdus_left = 0;
    std::uint64_t dropped = 0;
    bool serve_seen = false;  // FileServer's outcome arrived
    FlowBackoff backoff;
  };
  // FIFO claim on the server's staged PDUs: |remaining| PDUs of request
  // |id| will come out of the driver next (|discard| when the serve failed
  // and the partial response must be dropped on the floor).
  struct WireClaim {
    std::uint64_t id = 0;
    std::uint64_t remaining = 0;
    bool discard = false;
  };

  SimTime Key(SimTime t) const;
  void Arrive(const ServeRequestSpec& spec);
  void Issue(const ServeRequestSpec& spec);
  void DeliverRequest(std::uint64_t id);
  void OnServed(const FileServer::Served& served);
  void SchedulePump();
  void PumpStaged();
  void WirePdu(std::uint64_t id, SimHost::StagedPdu pdu);
  void DeliverPduEvent(std::uint64_t id, std::vector<std::uint8_t> payload,
                       SimTime rx_dma_done);
  void PduDropped(std::uint64_t id);
  void FinishRequest(std::uint64_t id);
  void FailRequest(std::uint64_t id, Status st);
  // Schedules the dealloc notice (one cell time) that releases the pins.
  void ScheduleNotice(std::uint64_t id, bool failed);
  void IssueFromQueue();
  void ParkRetry(std::uint64_t id, const std::string& label,
                 EventLoop::Handler retry);

  ServeWorldConfig cfg_;
  EventLoop loop_;
  Topology topo_;
  NodeId server_node_ = 0;
  std::vector<NodeId> client_nodes_;
  std::vector<LinkId> client_links_;
  std::vector<std::unique_ptr<AtmReassembler>> reassemblers_;

  Domain* frontend_dom_ = nullptr;
  PathId request_path_ = kNoPath;
  std::unique_ptr<RequestSource> frontend_;
  std::unique_ptr<FileCache> cache_;
  std::unique_ptr<FileServer> file_server_;
  std::unique_ptr<PressureManager> pressure_;

  bool latency_enabled_ = false;
  LatencyDecomposition lat_;

  // Per-run state.
  std::map<std::uint64_t, Pending> pending_;
  std::deque<ServeRequestSpec> overflow_;
  std::deque<WireClaim> wire_claims_;
  std::uint64_t next_id_ = 1;
  std::uint32_t inflight_ = 0;
  bool pump_scheduled_ = false;
  ServeRunStats stats_;
};

}  // namespace fbufs

#endif  // SRC_SERVE_SERVE_WORLD_H_
