// FileServer: the zero-copy file-serving protocol (sendfile, the fbuf way).
//
// The server is an application-domain protocol on a sender-shaped host. It
// accepts HTTP-like GET requests over the IPC/ring fabric (a request fbuf
// delivered cross-domain into Pop), resolves them in the FileCache, and
// sends every cached block straight down the network stack by reference:
// the block's fbuf IS the response payload — headers are prepended in front
// of it, the driver DMA-gathers from its frames, and bytes_copied stays
// zero. That is sendfile()/splice(): file cache pages wired into the
// transmit path without ever visiting a staging buffer.
//
// Pin lifecycle (§3.3 discipline): every block handed to the wire is pinned
// in the cache for the duration of the flow, so capacity churn and pressure
// sweeps cannot evict the frames mid-transfer. The pin drops when the
// flow's dealloc notice returns (CompleteRequest) or the flow dies
// (AbortRequest); a request that fails mid-serve unpins everything it
// pinned before propagating the Status — zero leaked pins, always.
//
// Misses under memory pressure take the copy/degradable path: the block is
// staged through one persistent server-owned fbuf (bounded footprint),
// paying CopyCost and counting degraded_pdus/bytes_copied, exactly like
// DegradablePath does for senders. Without a PressureManager attached, a
// backpressure failure propagates to the caller instead of silently
// staging (PR 4 rollback discipline).
#ifndef SRC_SERVE_FILE_SERVER_H_
#define SRC_SERVE_FILE_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/cache/file_cache.h"
#include "src/obs/latency.h"
#include "src/pressure/pressure.h"
#include "src/proto/protocol.h"
#include "src/serve/request.h"

namespace fbufs {

class FileServer : public Protocol {
 public:
  // Outcome of one request's serve pass (the cache/stack work; wire
  // delivery is the runner's business). Fired at the end of every decoded
  // Pop, success or failure, so the request runner can drive retries and
  // wire scheduling off one hook in both sync and ring transports.
  struct Served {
    std::uint64_t request_id = 0;
    std::uint32_t client = 0;
    Status status = Status::kOk;
    std::uint32_t blocks = 0;  // blocks pushed down the stack
    std::uint32_t hit_blocks = 0;
    std::uint32_t degraded_blocks = 0;
  };
  using ServedFn = std::function<void(const Served&)>;

  FileServer(Domain* domain, ProtocolStack* stack, FileCache* cache)
      : Protocol("file-server", domain, stack), cache_(cache) {}
  ~FileServer() override;

  void set_on_served(ServedFn fn) { on_served_ = std::move(fn); }

  // Enables the degraded miss path: when the cache cannot stage a block
  // (backpressure), it is served through one persistent staging fbuf
  // allocated on |staging_path| at copy cost instead of failing the
  // request. The staging fbuf is allocated eagerly, while memory is still
  // healthy — by the time the degraded path is needed, allocation is by
  // definition failing.
  void AttachPressure(PressureManager* pressure, PathId staging_path);

  // Optional latency sink: every released pin contributes a pin_hold sample
  // (pin at serve time → release at the flow's dealloc notice / abort).
  void AttachLatency(LatencyDecomposition* lat) { lat_ = lat; }

  Status Push(Message) override { return Status::kInvalidArgument; }
  // One GET request: parse, then serve each block by reference (pin ->
  // SendDown -> release our refs; the pin outlives Pop).
  Status Pop(Message m) override;

  // The flow's dealloc notice returned: the wire is done with the blocks.
  Status CompleteRequest(std::uint64_t request_id);
  // The flow failed (client died, link never recovered): same pin release,
  // counted separately.
  Status AbortRequest(std::uint64_t request_id);

  std::uint64_t requests() const { return requests_; }
  std::uint64_t completed_requests() const { return completed_requests_; }
  std::uint64_t aborted_requests() const { return aborted_requests_; }
  std::uint64_t parse_errors() const { return parse_errors_; }
  std::uint64_t blocks_served() const { return blocks_served_; }
  std::uint64_t hit_blocks() const { return hit_blocks_; }
  std::uint64_t degraded_blocks() const { return degraded_blocks_; }
  std::uint64_t bytes_served() const { return bytes_served_; }
  // Requests whose pins are still held (serve done, dealloc notice not yet
  // returned).
  std::uint64_t inflight_requests() const { return inflight_.size(); }

 private:
  struct PinRecord {
    FileId file = 0;
    std::uint64_t block = 0;
    FbufId fbuf = kInvalidFbufId;  // the pinned block's fbuf (provenance)
    SimTime pinned_at = 0;
  };
  struct Inflight {
    std::uint32_t client = 0;
    std::vector<PinRecord> pins;
  };

  // Allocates the persistent staging fbuf if it is not already held.
  Status EnsureStaging();
  // Serves one block through the persistent staging fbuf at copy cost.
  Status ServeDegraded(FileId file, std::uint64_t block);
  void ReleasePins(std::uint64_t request_id);

  FileCache* cache_;
  LatencyDecomposition* lat_ = nullptr;
  PressureManager* pressure_ = nullptr;
  PathId staging_path_ = kNoPath;
  Fbuf* staging_ = nullptr;
  ServedFn on_served_;
  std::map<std::uint64_t, Inflight> inflight_;

  std::uint64_t requests_ = 0;
  std::uint64_t completed_requests_ = 0;
  std::uint64_t aborted_requests_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint64_t blocks_served_ = 0;
  std::uint64_t hit_blocks_ = 0;
  std::uint64_t degraded_blocks_ = 0;
  std::uint64_t bytes_served_ = 0;
};

}  // namespace fbufs

#endif  // SRC_SERVE_FILE_SERVER_H_
