#include "src/serve/serve_world.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace fbufs {

ServeWorld::ServeWorld(const ServeWorldConfig& config)
    : cfg_(config), topo_(config.topo_seed) {
  auto srv = std::make_unique<SimHost>(cfg_.host, HostRole::kSender,
                                       cfg_.base_vci, cfg_.port, "server");
  SimHost* server = srv.get();
  server_node_ = topo_.AddHost(std::move(srv));
  for (std::size_t i = 0; i < cfg_.clients; ++i) {
    auto cl = std::make_unique<SimHost>(
        cfg_.host, HostRole::kReceiver,
        cfg_.base_vci + static_cast<std::uint32_t>(i), cfg_.port,
        "client" + std::to_string(i));
    SimHost* raw = cl.get();
    const NodeId n = topo_.AddHost(std::move(cl));
    client_nodes_.push_back(n);
    client_links_.push_back(topo_.AddLink(server_node_, n,
                                          &raw->machine.costs(),
                                          "wire/" + std::to_string(i),
                                          cfg_.client_link_mbps));
    reassemblers_.push_back(std::make_unique<AtmReassembler>());
  }

  // The cache and the server protocol live on the server host; responses
  // must fit one PDU per block so the wire accounting below (one claim per
  // block) holds.
  assert(cfg_.cache.block_bytes + 64 <= cfg_.host.pdu_size &&
         "a cache block must fit one PDU with headers");
  cache_ = std::make_unique<FileCache>(&server->fsys, cfg_.cache);
  Domain* app = server->source->domain();
  file_server_ =
      std::make_unique<FileServer>(app, server->stack.get(), cache_.get());
  file_server_->set_below(server->udp.get());
  file_server_->set_on_served(
      [this](const FileServer::Served& s) { OnServed(s); });

  // The frontend domain injects requests; it is a third protection domain
  // on the server machine, so the stack's crossing cost model sees it.
  frontend_dom_ = server->machine.CreateDomain("frontend");
  server->stack->set_domain_count(server->stack->domain_count() + 1);
  frontend_ = std::make_unique<RequestSource>(frontend_dom_, server->stack.get());
  std::vector<DomainId> req_hops{frontend_dom_->id()};
  if (app->id() != frontend_dom_->id()) {
    req_hops.push_back(app->id());
  }
  request_path_ = server->fsys.paths().Register(req_hops);

  if (cfg_.attach_pressure) {
    pressure_ = std::make_unique<PressureManager>(&server->fsys, cfg_.pressure);
    pressure_->AttachEventLoop(&loop_);
    pressure_->AttachFileCache(cache_.get());
    // Degraded staging path: the app domain down to the kernel, the same
    // route a served block takes.
    std::vector<DomainId> stage_hops{app->id()};
    if (server->udp->domain()->id() != stage_hops.back()) {
      stage_hops.push_back(server->udp->domain()->id());
    }
    if (server->machine.kernel().id() != stage_hops.back()) {
      stage_hops.push_back(server->machine.kernel().id());
    }
    file_server_->AttachPressure(pressure_.get(),
                                 server->fsys.paths().Register(stage_hops));
  }
  if (cfg_.use_rings) {
    server->EnableRings(&loop_);
  }

  // Staged PDUs go to the wire through the pump event, so the synchronous
  // and ring transports (where PDUs materialize later, during ring drains)
  // share one path.
  server->driver->set_on_transmit(
      [this, server](std::vector<std::uint8_t> payload, std::uint32_t) {
        server->staged.push_back(
            SimHost::StagedPdu{std::move(payload), server->machine.clock().Now()});
        SchedulePump();
      });
}

SimTime ServeWorld::Key(SimTime t) const {
  // Event keys order dispatch; host clocks carry the simulated times. A
  // computed time can lie behind the loop's dispatch floor, so clamp the
  // key — never the value.
  return std::max(t, loop_.Now());
}

ServeRunStats ServeWorld::Run(const std::vector<ServeRequestSpec>& schedule) {
  stats_ = ServeRunStats{};
  pending_.clear();
  overflow_.clear();
  wire_claims_.clear();
  server().staged.clear();
  inflight_ = 0;
  const SimTime t_start = loop_.Now();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const ServeRequestSpec spec = schedule[i];
    loop_.Schedule(Key(spec.at), "arrive/" + std::to_string(i),
                   [this, spec] { Arrive(spec); });
  }
  // Drain to quiescence. With rings a quiescent point can still hold
  // partial batches the flush timer has not pushed out; FlushAll forces
  // them and the loop continues until nothing moves at all.
  while (true) {
    const std::uint64_t dispatched = loop_.Run();
    if (server().ring_hub != nullptr &&
        (!pending_.empty() || !overflow_.empty() || !wire_claims_.empty())) {
      server().ring_hub->FlushAll();
      if (!loop_.empty()) {
        continue;
      }
    }
    if (dispatched == 0 && loop_.empty()) {
      break;
    }
  }
  // Anything still pending at quiescence can never finish (a deferred
  // delivery that was dropped on the floor): abort it so its pins come
  // back and the §3.3 audit sees a clean server.
  std::vector<std::uint64_t> stuck;
  for (const auto& [id, p] : pending_) {
    stuck.push_back(id);
  }
  for (const std::uint64_t id : stuck) {
    stats_.unfinished++;
    stats_.failed++;
    file_server_->AbortRequest(id);
    pending_.erase(id);
  }
  inflight_ = 0;

  stats_.elapsed_ns = loop_.Now() - t_start;
  if (stats_.elapsed_ns > 0) {
    stats_.goodput_mbps = static_cast<double>(stats_.delivered_bytes) * 8.0 *
                          1000.0 / static_cast<double>(stats_.elapsed_ns);
  }
  if (stats_.served_blocks > 0) {
    stats_.hit_ratio = static_cast<double>(stats_.hit_blocks) /
                       static_cast<double>(stats_.served_blocks);
  }
  return stats_;
}

void ServeWorld::Arrive(const ServeRequestSpec& spec) {
  if (inflight_ >= cfg_.max_inflight) {
    overflow_.push_back(spec);
    return;
  }
  Issue(spec);
}

void ServeWorld::Issue(const ServeRequestSpec& spec) {
  const std::uint64_t id = next_id_++;
  Pending p;
  p.spec = spec;
  p.issue_at = loop_.Now();
  p.backoff.policy = cfg_.backoff;
  p.backoff.stall_horizon = cfg_.stall_horizon;
  p.backoff.last_progress = loop_.Now();
  if (latency_enabled_) {
    // Admission wait: nominal arrival to issue (zero unless the inflight
    // window pushed the request through the overflow queue).
    lat_.queue_wait.push_back(loop_.Now() >= spec.at ? loop_.Now() - spec.at
                                                     : 0);
  }
  pending_.emplace(id, std::move(p));
  inflight_++;
  stats_.requests++;
  DeliverRequest(id);
}

void ServeWorld::DeliverRequest(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  Pending& p = it->second;
  ServeRequest req;
  req.id = id;
  req.client = p.spec.client;
  req.file = p.spec.file;
  req.blocks = p.spec.blocks;
  char buf[96];
  const std::size_t n = EncodeRequest(req, buf, sizeof(buf));
  assert(n > 0);

  SimHost& srv = server();
  const SimTime before = srv.machine.clock().Now();
  Fbuf* fb = nullptr;
  Status st = srv.fsys.Allocate(*frontend_dom_, request_path_, n,
                                /*want_volatile=*/true, &fb);
  if (Ok(st)) {
    st = frontend_dom_->WriteBytes(fb->base, buf, n);
  }
  if (Ok(st)) {
    st = srv.stack->Deliver(Message::Leaf(fb, 0, n), frontend_.get(),
                            file_server_.get(), /*down=*/false);
  }
  if (fb != nullptr) {
    srv.fsys.Free(fb, *frontend_dom_);
  }
  srv.cpu.RecordBusy(before, srv.machine.clock().Now());

  auto again = pending_.find(id);
  if (again == pending_.end()) {
    return;  // the synchronous serve already completed or failed the flow
  }
  if (again->second.serve_seen) {
    return;  // OnServed owns the outcome from here
  }
  if (!Ok(st)) {
    if (IsBackpressure(st)) {
      // Ring SQ full or the request-fbuf pool exhausted: park, resubmit.
      ParkRetry(id, "reqpark/" + std::to_string(id),
                [this, id] { DeliverRequest(id); });
    } else {
      FailRequest(id, st);
    }
    return;
  }
  // Ring transport accepted the descriptor: the serve outcome arrives via
  // on_served when the consumer drains its batch.
}

void ServeWorld::OnServed(const FileServer::Served& served) {
  auto it = pending_.find(served.request_id);
  if (it == pending_.end()) {
    return;
  }
  Pending& p = it->second;
  p.serve_seen = true;
  if (!Ok(served.status)) {
    // Whatever the failed serve already staged is a partial response the
    // client must never see: claim those PDUs for discard.
    if (served.blocks > 0) {
      wire_claims_.push_back(
          WireClaim{served.request_id, served.blocks, /*discard=*/true});
      SchedulePump();
    }
    if (IsBackpressure(served.status)) {
      // Out of memory mid-serve: park the whole request and resubmit it
      // (the retry re-enters Pop with the same request line).
      const std::uint64_t id = served.request_id;
      ParkRetry(id, "servepark/" + std::to_string(id), [this, id] {
        auto pit = pending_.find(id);
        if (pit == pending_.end()) {
          return;
        }
        pit->second.serve_seen = false;
        DeliverRequest(id);
      });
    } else {
      FailRequest(served.request_id, served.status);
    }
    return;
  }
  p.backoff.Progress(loop_.Now());
  stats_.served_blocks += served.blocks;
  stats_.hit_blocks += served.hit_blocks;
  stats_.degraded_blocks += served.degraded_blocks;
  p.pdus_left = served.blocks;  // one PDU per block (asserted in the ctor)
  if (served.blocks == 0) {
    FinishRequest(served.request_id);
    return;
  }
  wire_claims_.push_back(
      WireClaim{served.request_id, served.blocks, /*discard=*/false});
  SchedulePump();
}

void ServeWorld::SchedulePump() {
  if (pump_scheduled_) {
    return;
  }
  pump_scheduled_ = true;
  loop_.Schedule(Key(server().machine.clock().Now()), "pump", [this] {
    pump_scheduled_ = false;
    PumpStaged();
  });
}

void ServeWorld::PumpStaged() {
  SimHost& srv = server();
  while (!srv.staged.empty() && !wire_claims_.empty()) {
    SimHost::StagedPdu pdu = std::move(srv.staged.front());
    srv.staged.pop_front();
    WireClaim& claim = wire_claims_.front();
    const std::uint64_t id = claim.id;
    const bool discard = claim.discard;
    if (--claim.remaining == 0) {
      wire_claims_.pop_front();
    }
    if (discard) {
      stats_.discarded_pdus++;
      continue;
    }
    WirePdu(id, std::move(pdu));
  }
}

void ServeWorld::WirePdu(std::uint64_t id, SimHost::StagedPdu pdu) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    // The flow died while its PDUs were queueing for the wire.
    stats_.discarded_pdus++;
    return;
  }
  const std::uint32_t client_i = it->second.spec.client;
  SimHost& srv = server();
  SimHost& rx = client(client_i);
  const std::uint32_t vci = cfg_.base_vci + client_i;

  // The PDU crosses as ATM cells, mirroring TopologyRunner: segment with
  // the AAL5 trailer, serialize on TX DMA, occupy the client's wire (drops
  // decided at the far end), RX DMA, reassemble.
  const std::vector<AtmCell> cells = AtmSegmenter::Segment(pdu.payload, vci);
  const std::uint64_t wire_bytes = cells.size() * AtmCell::kPayloadBytes;
  const SimTime t = srv.out_adapter().TxDma(wire_bytes, pdu.ready);
  const TopoLink::Outcome out =
      topo_.link(client_links_[client_i]).Transmit(wire_bytes, t);
  if (out.dropped) {
    PduDropped(id);
    return;
  }
  const SimTime rx_dma_done = rx.adapter.RxDma(wire_bytes, out.arrival);
  if (latency_enabled_ && rx_dma_done >= pdu.ready) {
    // Staged-at-driver to RX-DMA-complete: TX DMA + cells on the wire + RX
    // DMA — the PDU's whole time on the network path.
    lat_.wire.push_back(rx_dma_done - pdu.ready);
  }
  std::vector<std::uint8_t> reassembled;
  Status cell_st = Status::kExhausted;
  for (const AtmCell& cell : cells) {
    cell_st = reassemblers_[client_i]->Push(cell, &reassembled);
  }
  if (!Ok(cell_st)) {
    FailRequest(id, cell_st);  // CRC failure cannot happen on these links
    return;
  }
  loop_.Schedule(Key(rx_dma_done), "deliver/" + std::to_string(id),
                 [this, id, payload = std::move(reassembled),
                  rx_dma_done]() mutable {
                   DeliverPduEvent(id, std::move(payload), rx_dma_done);
                 });
}

void ServeWorld::DeliverPduEvent(std::uint64_t id,
                                 std::vector<std::uint8_t> payload,
                                 SimTime rx_dma_done) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;  // flow already failed; its notice is on the way
  }
  Pending& p = it->second;
  SimHost& rx = client(p.spec.client);
  SimClock& clock = rx.machine.clock();
  // The client CPU picks the PDU up no earlier than its DMA completion; it
  // may already be past that point serving another delivery.
  clock.AdvanceToAtLeast(rx_dma_done);
  const SimTime before = clock.Now();
  if (latency_enabled_ && before >= rx_dma_done) {
    // How far past DMA completion the client CPU got around to the PDU.
    lat_.dispatch.push_back(before - rx_dma_done);
  }
  const std::uint64_t sink_before = rx.sink->bytes_received();
  const Status st = rx.driver->DeliverPdu(payload, cfg_.base_vci + p.spec.client,
                                          rx.config.volatile_fbufs);
  if (!Ok(st)) {
    if (IsBackpressure(st)) {
      // The client could not buffer the PDU: park the delivery and retry
      // with the same payload.
      ParkRetry(id, "rxpark/" + std::to_string(id),
                [this, id, payload = std::move(payload), rx_dma_done]() mutable {
                  DeliverPduEvent(id, std::move(payload), rx_dma_done);
                });
      return;
    }
    // Hard failure — typically the client's app domain died mid-download.
    // The flow fails; its pins come back via the abort notice.
    FailRequest(id, st);
    return;
  }
  p.backoff.Progress(loop_.Now());
  const SimTime after = clock.Now();
  rx.cpu.RecordBusy(before, after);
  stats_.delivered_bytes += rx.sink->bytes_received() - sink_before;
  assert(p.pdus_left > 0);
  if (--p.pdus_left == 0) {
    FinishRequest(id);
  }
}

void ServeWorld::PduDropped(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  it->second.dropped++;
  stats_.pdus_dropped++;
  // The dropped PDU still completes the flow's accounting: this is a
  // credit scheme, not a reliability protocol, and a lossy run must drain
  // rather than hang (goodput reports the shortfall).
  assert(it->second.pdus_left > 0);
  if (--it->second.pdus_left == 0) {
    FinishRequest(id);
  }
}

void ServeWorld::FinishRequest(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  Pending& p = it->second;
  stats_.completed++;
  if (p.dropped > 0) {
    stats_.truncated++;
  }
  stats_.latencies.push_back(loop_.Now() - p.issue_at);
  ScheduleNotice(id, /*failed=*/false);
  pending_.erase(it);
  inflight_--;
  IssueFromQueue();
}

void ServeWorld::FailRequest(std::uint64_t id, Status st) {
  (void)st;
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  if (it->second.backoff.stalled) {
    stats_.stall_failures++;
  }
  stats_.failed++;
  ScheduleNotice(id, /*failed=*/true);
  pending_.erase(it);
  inflight_--;
  IssueFromQueue();
}

void ServeWorld::ScheduleNotice(std::uint64_t id, bool failed) {
  // The dealloc notice (or, for a dead flow, the kernel's failure notice)
  // rides back over the otherwise idle reverse channel: one cell's worth
  // of latency, and only then do the server's pins drop.
  const SimTime at = Key(loop_.Now() + server().machine.costs().WireTime(48));
  loop_.Schedule(at,
                 (failed ? std::string("abort-notice/")
                         : std::string("dealloc-notice/")) + std::to_string(id),
                 [this, id, failed] {
                   // kNotFound is fine: a serve that failed inside Pop
                   // already released its pins there.
                   if (failed) {
                     file_server_->AbortRequest(id);
                   } else {
                     file_server_->CompleteRequest(id);
                   }
                 });
}

void ServeWorld::IssueFromQueue() {
  while (!overflow_.empty() && inflight_ < cfg_.max_inflight) {
    const ServeRequestSpec spec = overflow_.front();
    overflow_.pop_front();
    Issue(spec);
  }
}

void ServeWorld::ParkRetry(std::uint64_t id, const std::string& label,
                           EventLoop::Handler retry) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  const auto delay = it->second.backoff.Park(loop_.Now());
  if (!delay.has_value()) {
    // No progress for the whole horizon: the watchdog gives up so the run
    // drains and the §3.3 invariants can be audited over what remains.
    FailRequest(id, Status::kExhausted);
    return;
  }
  stats_.parks++;
  loop_.Schedule(Key(loop_.Now() + *delay), label, std::move(retry));
}

}  // namespace fbufs
