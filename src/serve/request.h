// HTTP-like GET request framing for the file-serving subsystem.
//
// A request names a file and a length in cache blocks, plus the flow id the
// response (and its §3.3 dealloc notice) will be tracked under and the
// client index the response is routed back to. The wire form is a short
// human-readable line — sendfiled's local request channel carries exactly
// this kind of framed GET — written into a small fbuf and delivered to the
// FileServer over the IPC/ring fabric like any other cross-domain message.
#ifndef SRC_SERVE_REQUEST_H_
#define SRC_SERVE_REQUEST_H_

#include <cstdint>
#include <cstdio>

#include "src/cache/file_cache.h"

namespace fbufs {

struct ServeRequest {
  std::uint64_t id = 0;      // flow id: names the response + dealloc notice
  std::uint32_t client = 0;  // requesting client (response routing)
  FileId file = 0;
  std::uint32_t blocks = 0;  // requested length, in cache blocks
};

// Encodes |r| as "GET /f<file> b=<blocks> r=<id> c=<client>\n" into |buf|.
// Returns the encoded length (including the newline), or 0 if |cap| is too
// small.
inline std::size_t EncodeRequest(const ServeRequest& r, char* buf,
                                 std::size_t cap) {
  const int n = std::snprintf(
      buf, cap, "GET /f%u b=%u r=%llu c=%u\n", r.file, r.blocks,
      static_cast<unsigned long long>(r.id), r.client);
  if (n <= 0 || static_cast<std::size_t>(n) >= cap) {
    return 0;
  }
  return static_cast<std::size_t>(n);
}

// Parses a request line produced by EncodeRequest. |buf| must be
// NUL-terminated. Returns false on malformed input.
inline bool DecodeRequest(const char* buf, ServeRequest* out) {
  unsigned file = 0;
  unsigned blocks = 0;
  unsigned long long id = 0;
  unsigned client = 0;
  if (std::sscanf(buf, "GET /f%u b=%u r=%llu c=%u", &file, &blocks, &id,
                  &client) != 4) {
    return false;
  }
  out->file = file;
  out->blocks = blocks;
  out->id = id;
  out->client = client;
  return true;
}

}  // namespace fbufs

#endif  // SRC_SERVE_REQUEST_H_
