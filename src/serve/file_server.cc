#include "src/serve/file_server.h"

#include <algorithm>
#include <cstring>

#include "src/obs/lifecycle.h"
#include "src/pressure/backoff.h"
#include "src/sim/trace.h"

namespace fbufs {

FileServer::~FileServer() {
  if (staging_ != nullptr && domain()->alive()) {
    stack_->fsys()->Free(staging_, *domain());
  }
}

Status FileServer::Pop(Message m) {
  Machine& machine = *stack_->machine();
  machine.clock().Advance(machine.costs().proto_pdu_ns);

  // Parse the request line. CopyOut reads through the domain's mappings but
  // charges no bytes_copied: header-sized inspection, not a data copy.
  char line[128] = {0};
  const std::uint64_t n =
      std::min<std::uint64_t>(m.length(), sizeof(line) - 1);
  Status st = m.CopyOut(*domain(), 0, line, n);
  if (!Ok(st)) {
    return st;
  }
  ServeRequest req;
  if (!DecodeRequest(line, &req)) {
    parse_errors_++;
    return Status::kInvalidArgument;
  }
  requests_++;

  LayerScope layer(machine.attribution(), CostDomain::kApp);
  ActorScope actor(machine.attribution(), domain()->id());
  TraceSpan span(machine.trace(), TraceCategory::kProto, "serve", req.file,
                 req.blocks);

  Inflight& fl = inflight_[req.id];
  fl.client = req.client;

  Served served;
  served.request_id = req.id;
  served.client = req.client;
  for (std::uint32_t b = 0; Ok(served.status) && b < req.blocks; ++b) {
    const bool resident = cache_->Resident(req.file, b);
    Message bm;
    st = cache_->Read(req.file, b, *domain(), &bm);
    if (Ok(st)) {
      if (resident) {
        served.hit_blocks++;
      }
      // Pin before the block touches the wire: the flow's dealloc notice
      // (CompleteRequest) is what unpins, so sweeps cannot evict it while
      // the transfer is outstanding. The block is resident (we just read
      // it), so Pin cannot fail.
      cache_->Pin(req.file, b);
      PinRecord rec;
      rec.file = req.file;
      rec.block = b;
      rec.pinned_at = machine.clock().Now();
      const std::vector<Fbuf*> block_fbufs = bm.Fbufs();
      if (!block_fbufs.empty()) {
        rec.fbuf = block_fbufs.front()->id;
      }
      if (machine.lifecycle() != nullptr && rec.fbuf != kInvalidFbufId) {
        machine.lifecycle()->Hop(rec.fbuf, HopKind::kPin, domain()->id(),
                                 "serve", req.id);
      }
      fl.pins.push_back(rec);
      st = SendDown(bm);
      // Our own read reference drops now; the wire keeps the block alive
      // via the pin, not via a serve-domain mapping.
      const Status rel = cache_->Release(bm, *domain());
      if (Ok(st)) {
        st = rel;
      }
      if (Ok(st)) {
        served.blocks++;
        bytes_served_ += cache_->config().block_bytes;
      } else {
        served.status = st;
      }
    } else if (IsBackpressure(st) && pressure_ != nullptr) {
      st = ServeDegraded(req.file, b);
      if (Ok(st)) {
        served.blocks++;
        served.degraded_blocks++;
        bytes_served_ += cache_->config().block_bytes;
      } else {
        served.status = st;
      }
    } else {
      // No pressure manager: the miss-path failure propagates as-is, it is
      // never papered over with a silent copy.
      served.status = st;
    }
  }
  blocks_served_ += served.blocks;
  hit_blocks_ += served.hit_blocks;
  degraded_blocks_ += served.degraded_blocks;
  if (!Ok(served.status)) {
    // Failed mid-serve: nothing stays pinned on behalf of a request that
    // will never complete.
    ReleasePins(req.id);
    aborted_requests_++;
  }
  if (on_served_) {
    on_served_(served);
  }
  return served.status;
}

void FileServer::AttachPressure(PressureManager* pressure,
                                PathId staging_path) {
  pressure_ = pressure;
  staging_path_ = staging_path;
  // Best-effort: if even this fails, ServeDegraded retries per serve.
  EnsureStaging();
}

Status FileServer::EnsureStaging() {
  if (staging_ != nullptr) {
    return Status::kOk;
  }
  // One persistent staging fbuf for the server's lifetime: the degraded
  // path has a bounded memory footprint no matter how many flows it
  // carries, and its memory is reserved up front, not begged for at the
  // bottom of a pressure episode.
  return stack_->fsys()->Allocate(*domain(), staging_path_,
                                  cache_->config().block_bytes,
                                  /*want_volatile=*/true, &staging_);
}

Status FileServer::ServeDegraded(FileId file, std::uint64_t block) {
  Machine& machine = *stack_->machine();
  const std::uint64_t bytes = cache_->config().block_bytes;
  {
    const Status st = EnsureStaging();
    if (!Ok(st)) {
      return st;
    }
  }
  // The block comes off the disk...
  {
    LayerScope layer(machine.attribution(), CostDomain::kCache);
    ActorScope actor(machine.attribution(), domain()->id());
    machine.clock().Advance(cache_->config().disk_access_ns);
    machine.clock().Advance(bytes * 8 * 1000 / cache_->config().disk_mbps);
  }
  // ...into the staging buffer: same deterministic content the cache would
  // hold, so degraded responses are byte-identical to hits.
  std::vector<std::uint8_t> content(bytes);
  for (std::uint64_t i = 0; i < bytes; ++i) {
    content[i] = static_cast<std::uint8_t>(file * 37 + block * 11 + i);
  }
  Status st = domain()->WriteBytes(staging_->base, content.data(), bytes);
  if (!Ok(st)) {
    return st;
  }
  {
    LayerScope layer(machine.attribution(), CostDomain::kBaseline);
    ActorScope actor(machine.attribution(), domain()->id());
    TraceSpan span(machine.trace(), TraceCategory::kFbuf, "serve-degraded",
                   file, block);
    machine.clock().Advance(machine.costs().CopyCost(bytes));
  }
  machine.stats().bytes_copied += bytes;
  machine.stats().degraded_pdus += 1;
  if (machine.lifecycle() != nullptr) {
    machine.lifecycle()->Hop(staging_->id, HopKind::kDegradeCopy,
                             domain()->id(), "serve", block);
  }
  return SendDown(Message::Leaf(staging_, 0, bytes));
}

void FileServer::ReleasePins(std::uint64_t request_id) {
  auto it = inflight_.find(request_id);
  if (it == inflight_.end()) {
    return;
  }
  Machine& machine = *stack_->machine();
  const SimTime now = machine.clock().Now();
  for (const PinRecord& rec : it->second.pins) {
    cache_->Unpin(rec.file, rec.block);
    if (machine.lifecycle() != nullptr && rec.fbuf != kInvalidFbufId) {
      machine.lifecycle()->Hop(rec.fbuf, HopKind::kUnpin, domain()->id(),
                               "serve", request_id);
    }
    if (lat_ != nullptr && now >= rec.pinned_at) {
      lat_->pin_hold.push_back(now - rec.pinned_at);
    }
  }
  inflight_.erase(it);
}

Status FileServer::CompleteRequest(std::uint64_t request_id) {
  if (inflight_.find(request_id) == inflight_.end()) {
    return Status::kNotFound;
  }
  ReleasePins(request_id);
  completed_requests_++;
  return Status::kOk;
}

Status FileServer::AbortRequest(std::uint64_t request_id) {
  if (inflight_.find(request_id) == inflight_.end()) {
    return Status::kNotFound;
  }
  ReleasePins(request_id);
  aborted_requests_++;
  return Status::kOk;
}

}  // namespace fbufs
