// Scripted fault schedules: deterministic, timed lists of fault actions.
//
// A FaultSchedule is data, not behavior — a campaign is reproducible because
// the schedule is a plain list of (time, action) pairs that a CampaignRunner
// arms as ordinary EventLoop events. Same schedule + same topology seed =>
// byte-identical trace, which is what turns the simulator into a
// correctness tool: a failure found under fire replays exactly.
#ifndef SRC_FAULT_FAULT_SCHEDULE_H_
#define SRC_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/topo/topology.h"

namespace fbufs {

// One timed fault. Which fields matter depends on |kind|; times are absolute
// event-loop times. Actions with a nonzero |duration| restore the knob they
// touched to its pre-fault value at |at| + |duration|.
struct FaultAction {
  enum class Kind {
    kSetLinkLoss,         // topology link |link| drops |percent| from |at| on
    kLossBurst,           // like kSetLinkLoss, restored after |duration|
    kAckPathOnlyLoss,     // SWP world: only the ack (reverse) channel drops
                          // |percent|; forward data path untouched
    kLinkFlap,            // link |link| goes dark (100% loss) for |duration|
    kSqueezeSwitchQueue,  // switch |node| port |port| queue clamps to
                          // |queue_pdus| for |duration| (0 = permanently)
    kTerminateDomain,     // domain named |domain| on host |node| is destroyed
  };

  Kind kind = Kind::kSetLinkLoss;
  SimTime at = 0;
  SimTime duration = 0;  // 0 = permanent
  LinkId link = 0;
  std::uint32_t percent = 0;
  NodeId node = kNoNode;
  std::size_t port = 0;
  std::size_t queue_pdus = 0;
  std::string domain;  // kTerminateDomain: domain name on host |node|
  std::string label;   // phase label in the campaign report
};

struct FaultSchedule {
  std::string name;
  std::vector<FaultAction> actions;

  FaultSchedule& Add(FaultAction a) {
    actions.push_back(std::move(a));
    return *this;
  }
};

const char* FaultKindName(FaultAction::Kind k);

}  // namespace fbufs

#endif  // SRC_FAULT_FAULT_SCHEDULE_H_
