#include "src/fault/report.h"

#include <cstdio>
#include <sstream>

namespace fbufs {

namespace {

// Matches the BENCH_*.json number format exactly (%.10g) so campaign and
// bench artifacts diff with the same tooling.
std::string Num(double v) {
  char buf[32];
  if (v != v) {
    return "null";
  }
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string Num(std::uint64_t v) { return std::to_string(v); }

std::string Bool(bool b) { return b ? "true" : "false"; }

}  // namespace

bool CampaignReport::audits_passed() const {
  if (audits_.empty()) {
    return false;  // a campaign that never audited proves nothing
  }
  for (const AuditEntry& a : audits_) {
    if (!a.passed) {
      return false;
    }
  }
  return true;
}

std::string CampaignReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": \"" << name_ << "\",\n";
  os << "  \"seed\": " << seed_ << ",\n";
  os << "  \"schedule\": [\n";
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const ScheduledFault& f = schedule_[i];
    os << "    {\"label\": \"" << f.label << "\", \"kind\": \"" << f.kind
       << "\", \"at_ns\": " << Num(f.at_ns)
       << ", \"duration_ns\": " << Num(f.duration_ns)
       << ", \"percent\": " << f.percent << "}"
       << (i + 1 < schedule_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const Phase& p = phases_[i];
    os << "    {\"label\": \"" << p.label << "\", \"start_ns\": " << Num(p.start_ns)
       << ", \"end_ns\": " << Num(p.end_ns)
       << ", \"delivered_bytes\": " << Num(p.delivered_bytes)
       << ", \"goodput_mbps\": " << Num(p.goodput_mbps)
       << ", \"drops\": " << Num(p.drops)
       << ", \"retransmissions\": " << Num(p.retransmissions) << "}"
       << (i + 1 < phases_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  if (!rows_.empty()) {
    os << "  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << "    {";
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\"" << rows_[r][i].first
           << "\": " << Num(rows_[r][i].second);
      }
      os << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
  }
  os << "  \"audits\": [\n";
  for (std::size_t i = 0; i < audits_.size(); ++i) {
    const AuditEntry& a = audits_[i];
    os << "    {\"label\": \"" << a.label << "\", \"at_ns\": " << Num(a.at_ns)
       << ", \"passed\": " << Bool(a.passed) << ",\n";
    os << "     \"hosts\": [\n";
    for (std::size_t h = 0; h < a.hosts.size(); ++h) {
      const HostAuditResult& hr = a.hosts[h];
      os << "       {\"host\": \"" << hr.host
         << "\", \"leaked_frames\": " << Num(hr.leaked_frames)
         << ", \"refcount_mismatches\": " << Num(hr.refcount_mismatches)
         << ", \"dangling_mappings\": " << Num(hr.dangling_mappings)
         << ", \"free_list_errors\": " << Num(hr.free_list_errors)
         << ", \"orphaned_live_fbufs\": " << Num(hr.orphaned_live_fbufs)
         << ", \"live_fbufs\": " << Num(hr.live_fbufs)
         << ", \"free_listed_fbufs\": " << Num(hr.free_listed_fbufs)
         << ", \"passed\": " << Bool(hr.passed) << "}"
         << (h + 1 < a.hosts.size() ? "," : "") << "\n";
    }
    os << "     ]";
    if (a.has_swp) {
      os << ",\n     \"swp\": {\"window_wedged\": " << Bool(a.swp.window_wedged)
         << ", \"unacked\": " << a.swp.unacked
         << ", \"stashed\": " << Num(a.swp.stashed)
         << ", \"bytes_copied\": " << Num(a.swp.bytes_copied)
         << ", \"passed\": " << Bool(a.swp.passed) << "}";
    }
    if (!a.conversations.empty()) {
      os << ",\n     \"conversations\": [\n";
      for (std::size_t c = 0; c < a.conversations.size(); ++c) {
        const SwpAuditResult& cr = a.conversations[c].second;
        os << "       {\"flow\": \"" << a.conversations[c].first
           << "\", \"window_wedged\": " << Bool(cr.window_wedged)
           << ", \"unacked\": " << cr.unacked
           << ", \"stashed\": " << Num(cr.stashed)
           << ", \"bytes_copied\": " << Num(cr.bytes_copied)
           << ", \"ledger_pinned\": " << Num(cr.ledger_pinned)
           << ", \"ledger_mismatch\": " << Num(cr.ledger_mismatch)
           << ", \"passed\": " << Bool(cr.passed) << "}"
           << (c + 1 < a.conversations.size() ? "," : "") << "\n";
      }
      os << "     ]";
    }
    os << "}" << (i + 1 < audits_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"outcome_note\": \"" << outcome_note_ << "\",\n";
  os << "  \"passed\": " << Bool(passed()) << "\n";
  os << "}\n";
  return os.str();
}

bool CampaignReport::Write() const {
  const std::string path = "CAMPAIGN_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

}  // namespace fbufs
