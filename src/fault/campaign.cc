#include "src/fault/campaign.h"

#include <cassert>

namespace fbufs {

namespace {

DomainId FindAliveDomain(Machine& m, const std::string& name) {
  for (std::size_t i = 0; i < m.domain_count(); ++i) {
    Domain* d = m.domain(static_cast<DomainId>(i));
    if (d != nullptr && d->alive() && d->name() == name) {
      return d->id();
    }
  }
  return kInvalidDomainId;
}

}  // namespace

const char* FaultKindName(FaultAction::Kind k) {
  switch (k) {
    case FaultAction::Kind::kSetLinkLoss:
      return "set_link_loss";
    case FaultAction::Kind::kLossBurst:
      return "loss_burst";
    case FaultAction::Kind::kAckPathOnlyLoss:
      return "ack_path_only_loss";
    case FaultAction::Kind::kLinkFlap:
      return "link_flap";
    case FaultAction::Kind::kSqueezeSwitchQueue:
      return "squeeze_switch_queue";
    case FaultAction::Kind::kTerminateDomain:
      return "terminate_domain";
  }
  return "unknown";
}

void CampaignRunner::MarkPhase(const std::string& label) {
  // One marker per distinct machine: the SWP host is usually also an
  // audited host, and a duplicate marker would double up in the export.
  std::vector<Machine*> seen;
  for (const AuditedHost& h : audited_) {
    seen.push_back(h.machine);
  }
  auto add_unique = [&seen](Machine* m) {
    if (m == nullptr) {
      return;
    }
    for (Machine* s : seen) {
      if (s == m) {
        return;
      }
    }
    seen.push_back(m);
  };
  add_unique(swp_machine_);
  for (const Conversation& c : conversations_) {
    add_unique(c.machine);
  }
  for (Machine* m : seen) {
    Trace& t = m->trace();
    if (t.enabled(TraceCategory::kPhase)) {
      t.Marker(t.Intern(label));
    }
  }
}

void CampaignRunner::TakeSample(const std::string& label) {
  Sample s;
  s.at = loop_->Now();
  s.label = label;
  if (runner_ != nullptr) {
    for (std::size_t i = 0; i < runner_->flow_count(); ++i) {
      s.delivered += runner_->flow_sink(i).bytes_received();
    }
  }
  if (topo_ != nullptr) {
    for (LinkId l = 0; l < topo_->link_count(); ++l) {
      s.drops += topo_->link(l).drops();
    }
    for (NodeId n = 0; n < topo_->node_count(); ++n) {
      if (topo_->is_switch(n)) {
        s.drops += topo_->switch_at(n)->drops_total();
      }
    }
  }
  if (swp_sink_ != nullptr) {
    s.delivered += swp_sink_->bytes_received();
  }
  if (data_channel_ != nullptr) {
    s.drops += data_channel_->dropped();
  }
  if (ack_channel_ != nullptr) {
    s.drops += ack_channel_->dropped();
  }
  if (swp_sender_ != nullptr) {
    s.retransmissions += swp_sender_->retransmissions();
  }
  for (const Conversation& c : conversations_) {
    if (c.sink != nullptr) {
      s.delivered += c.sink->bytes_received();
    }
    if (c.sender != nullptr) {
      s.retransmissions += c.sender->retransmissions();
    }
  }
  samples_.push_back(std::move(s));
}

Machine* CampaignRunner::MachineFor(const FaultAction& a) {
  if (a.node != kNoNode && topo_ != nullptr) {
    SimHost* h = topo_->host(a.node);
    return h != nullptr ? &h->machine : nullptr;
  }
  if (swp_machine_ != nullptr) {
    return swp_machine_;
  }
  return conversations_.empty() ? nullptr : conversations_.front().machine;
}

void CampaignRunner::Apply(const FaultAction& a) {
  switch (a.kind) {
    case FaultAction::Kind::kSetLinkLoss:
    case FaultAction::Kind::kLossBurst:
    case FaultAction::Kind::kLinkFlap: {
      assert(topo_ != nullptr && "link faults need an attached topology");
      TopoLink& link = topo_->link(a.link);
      const std::uint32_t prev = link.drop_percent();
      const std::uint32_t pct =
          a.kind == FaultAction::Kind::kLinkFlap ? 100 : a.percent;
      link.set_drop_percent(pct);
      if (a.duration > 0) {
        loop_->Schedule(a.at + a.duration, "fault-restore/" + a.label,
                        [this, a, prev] {
                          TakeSample(a.label + "/restored");
                          MarkPhase("fault/" + a.label + "/restored");
                          topo_->link(a.link).set_drop_percent(prev);
                        });
      }
      break;
    }
    case FaultAction::Kind::kAckPathOnlyLoss: {
      assert(ack_channel_ != nullptr && "ack-path loss needs an SWP world");
      const std::uint32_t prev = ack_channel_->drop_percent();
      ack_channel_->set_drop_percent(a.percent);
      if (a.duration > 0) {
        loop_->Schedule(a.at + a.duration, "fault-restore/" + a.label,
                        [this, a, prev] {
                          TakeSample(a.label + "/restored");
                          MarkPhase("fault/" + a.label + "/restored");
                          ack_channel_->set_drop_percent(prev);
                        });
      }
      break;
    }
    case FaultAction::Kind::kSqueezeSwitchQueue: {
      assert(topo_ != nullptr && topo_->is_switch(a.node));
      SwitchNode* sw = topo_->switch_at(a.node);
      const std::size_t prev = sw->port_queue_limit(a.port);
      sw->set_port_queue_limit(a.port, a.queue_pdus);
      if (a.duration > 0) {
        loop_->Schedule(a.at + a.duration, "fault-restore/" + a.label,
                        [this, a, prev] {
                          TakeSample(a.label + "/restored");
                          MarkPhase("fault/" + a.label + "/restored");
                          topo_->switch_at(a.node)->set_port_queue_limit(a.port,
                                                                         prev);
                        });
      }
      break;
    }
    case FaultAction::Kind::kTerminateDomain: {
      Machine* m = MachineFor(a);
      assert(m != nullptr && "terminate needs a host machine");
      const DomainId victim = FindAliveDomain(*m, a.domain);
      assert(victim != kInvalidDomainId && "terminate target not found/alive");
      m->DestroyDomain(victim);
      break;
    }
  }
}

void CampaignRunner::Arm(const FaultSchedule& schedule) {
  TakeSample("start");
  MarkPhase("campaign/start");
  for (const FaultAction& a : schedule.actions) {
    report_.AddScheduledFault(CampaignReport::ScheduledFault{
        a.label, FaultKindName(a.kind), a.at, a.duration, a.percent});
    // The sample precedes the fault within the same event, so the phase
    // ending here reflects the regime before the knob turned.
    loop_->Schedule(a.at, "fault/" + a.label, [this, a] {
      TakeSample(a.label);
      MarkPhase("fault/" + a.label);
      Apply(a);
    });
  }
}

void CampaignRunner::ScheduleAudit(SimTime at, const std::string& label) {
  loop_->Schedule(at, "audit/" + label,
                  [this, label] { RunAudit(label, /*include_swp=*/false); });
}

void CampaignRunner::RunAudit(const std::string& label, bool include_swp) {
  CampaignReport::AuditEntry e;
  e.label = label;
  e.at_ns = loop_->Now();
  bool passed = !audited_.empty() || (include_swp && swp_sender_ != nullptr) ||
                (include_swp && !conversations_.empty());
  for (const AuditedHost& h : audited_) {
    e.hosts.push_back(InvariantAuditor::AuditHost(h.label, *h.machine, *h.fsys));
    passed = passed && e.hosts.back().passed;
  }
  if (include_swp && swp_sender_ != nullptr) {
    e.swp = InvariantAuditor::AuditSwp(*swp_sender_, *swp_receiver_,
                                       *swp_machine_);
    e.has_swp = true;
    passed = passed && e.swp.passed;
  }
  if (include_swp) {
    for (const Conversation& c : conversations_) {
      e.conversations.emplace_back(
          c.label, InvariantAuditor::AuditSwp(*c.sender, *c.receiver, *c.machine));
      passed = passed && e.conversations.back().second.passed;
    }
  }
  e.passed = passed;
  report_.AddAudit(std::move(e));
}

CampaignReport CampaignRunner::Finish() {
  assert(!finished_ && "Finish() is one-shot");
  finished_ = true;
  TakeSample("end");
  MarkPhase("campaign/end");
  RunAudit("final", /*include_swp=*/true);

  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    const Sample& a = samples_[i];
    const Sample& b = samples_[i + 1];
    CampaignReport::Phase p;
    p.label = a.label;
    p.start_ns = a.at;
    p.end_ns = b.at;
    p.delivered_bytes = b.delivered - a.delivered;
    p.drops = b.drops - a.drops;
    p.retransmissions = b.retransmissions - a.retransmissions;
    if (b.at > a.at) {
      p.goodput_mbps = static_cast<double>(p.delivered_bytes) * 8.0 * 1000.0 /
                       static_cast<double>(b.at - a.at);
    }
    report_.AddPhase(std::move(p));
  }
  return std::move(report_);
}

}  // namespace fbufs
