// CampaignRunner: arms a FaultSchedule as EventLoop events against a live
// world and records what happens.
//
// The runner does not drive traffic — the campaign's bench starts its flows
// (TopologyRunner::RunFlows, or an SWP producer) on the same loop, and the
// armed fault events fire interleaved with the traffic's own events at their
// scheduled times. Around every fault (and at start/finish) the runner
// snapshots delivered bytes / drops / retransmissions, so Finish() can cut
// the run into per-phase goodput deltas. Audits — mid-campaign or final —
// run the InvariantAuditor over every attached host; the final audit also
// checks the SWP conversation when one is attached (quiescence is the only
// time a clean window is required).
//
// Three world flavors are supported, matching the campaign styles:
//   * AttachTopology: faults address links/switches/hosts of a Topology and
//     goodput is read from the TopologyRunner's flow sinks;
//   * AttachSwp: a two-peer SWP conversation over LossyChannels —
//     kAckPathOnlyLoss lives here, because only SWP has the retransmission
//     machinery that makes pure ack loss recoverable;
//   * AddConversation (repeatable): many transport conversations over one
//     fabric — the incast/congestion campaigns, where the final audit also
//     checks every sender's pinned-retransmit ledger.
#ifndef SRC_FAULT_CAMPAIGN_H_
#define SRC_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/auditor.h"
#include "src/fault/fault_schedule.h"
#include "src/fault/report.h"
#include "src/proto/swp.h"
#include "src/proto/test_protocols.h"
#include "src/topo/topo_runner.h"
#include "src/topo/topology.h"

namespace fbufs {

class CampaignRunner {
 public:
  CampaignRunner(std::string name, std::uint64_t seed, EventLoop* loop)
      : loop_(loop), report_(std::move(name), seed) {}

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  void AttachTopology(Topology* topo, TopologyRunner* runner) {
    topo_ = topo;
    runner_ = runner;
  }

  void AttachSwp(Transport* sender, Transport* receiver,
                 LossyChannel* data_channel, LossyChannel* ack_channel,
                 SinkProtocol* sink, Machine* machine) {
    swp_sender_ = sender;
    swp_receiver_ = receiver;
    data_channel_ = data_channel;
    ack_channel_ = ack_channel;
    swp_sink_ = sink;
    swp_machine_ = machine;
  }

  // Multi-flow campaigns (incast worlds): each conversation is one
  // sender/receiver transport pair with its own sink. Samples sum their
  // goodput and retransmissions; the final audit checks every conversation's
  // window, stash, and pinned-retransmit ledger.
  void AddConversation(const std::string& label, Transport* sender,
                       Transport* receiver, SinkProtocol* sink,
                       Machine* machine) {
    conversations_.push_back(Conversation{label, sender, receiver, sink, machine});
  }

  // Includes |machine| in every audit. |fsys| must be the machine's fbuf
  // system.
  void AddAuditedHost(const std::string& label, Machine* machine,
                      FbufSystem* fsys) {
    audited_.push_back(AuditedHost{label, machine, fsys});
  }

  // Schedules every action (plus its restore event, for bounded faults) and
  // takes the campaign's opening sample. Call before running traffic.
  void Arm(const FaultSchedule& schedule);

  // Schedules a mid-campaign host audit (SWP is excluded: an open window
  // mid-flow is normal, not a wedge).
  void ScheduleAudit(SimTime at, const std::string& label);

  // Campaign-specific verdict recorded alongside the audits.
  void SetOutcome(bool ok, std::string note) {
    report_.SetOutcome(ok, std::move(note));
  }

  // After the traffic ran the loop to quiescence: closes the last phase,
  // runs the final audit (with the SWP wedge check when attached), and
  // yields the finished report.
  CampaignReport Finish();

 private:
  struct AuditedHost {
    std::string label;
    Machine* machine = nullptr;
    FbufSystem* fsys = nullptr;
  };

  struct Conversation {
    std::string label;
    Transport* sender = nullptr;
    Transport* receiver = nullptr;
    SinkProtocol* sink = nullptr;
    Machine* machine = nullptr;
  };

  struct Sample {
    SimTime at = 0;
    std::string label;
    std::uint64_t delivered = 0;
    std::uint64_t drops = 0;
    std::uint64_t retransmissions = 0;
  };

  void TakeSample(const std::string& label);
  // Drops a phase marker (campaign start, each fault, each restore, end)
  // into the trace of every attached machine, so exported timelines carry
  // the fault schedule alongside the kernel spans.
  void MarkPhase(const std::string& label);
  void Apply(const FaultAction& a);
  void RunAudit(const std::string& label, bool include_swp);
  Machine* MachineFor(const FaultAction& a);

  EventLoop* loop_;
  CampaignReport report_;

  Topology* topo_ = nullptr;
  TopologyRunner* runner_ = nullptr;

  Transport* swp_sender_ = nullptr;
  Transport* swp_receiver_ = nullptr;
  LossyChannel* data_channel_ = nullptr;
  LossyChannel* ack_channel_ = nullptr;
  SinkProtocol* swp_sink_ = nullptr;
  Machine* swp_machine_ = nullptr;

  std::vector<Conversation> conversations_;
  std::vector<AuditedHost> audited_;
  std::vector<Sample> samples_;
  bool finished_ = false;
};

}  // namespace fbufs

#endif  // SRC_FAULT_CAMPAIGN_H_
