// IncastWorld: a rack-structured fan-in of reliable transport conversations
// converging on one receiver host, packaged for the congestion benches and
// the congestion_collapse fault campaign.
//
// R racks × S senders each run one conversation (a sender Transport, a
// receiver Transport, a sink) over a shared fabric: each sender's frames
// serialize onto its own ingress wire (a TopoLink — campaign loss faults
// address it), queue through the rack's ToR switch uplink, then through the
// core switch's downlink to the receiver — the classic incast bottleneck.
// Switch queues are bounded in PDUs; past the saturation knee they drop, and
// with ECN enabled they mark per-VCI queue standing above the threshold
// (Transport::MarkCongestionExperienced carries the mark out-of-band,
// because fbufs are immutable in flight). Acks ride an uncontended reverse
// path with a fixed latency: incast congestion is a data-direction disease.
//
// All domains live on one simulated machine (the SwpWorld simplification:
// one clock, one fbuf pool — which is exactly what makes receiver memory
// pressure couple to the network). Each sender pins its unacked frames in a
// RetransmitLedger registered with the world's PressureManager, so the
// sweep's pageout stage can write cold retransmit-held fbufs to backing
// store, and credit-mode receivers size their grants from the pool's
// headroom (PressureManager::CreditFor).
//
// The same world runs all three transports — fixed-window SWP, credit,
// AIMD/ECN — differing only in IncastWorldConfig::kind, so the incast bench
// compares congestion policies, not worlds.
#ifndef SRC_FAULT_INCAST_WORLD_H_
#define SRC_FAULT_INCAST_WORLD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/latency.h"
#include "src/pressure/backoff.h"
#include "src/pressure/pressure.h"
#include "src/pressure/retransmit_ledger.h"
#include "src/proto/swp.h"
#include "src/proto/test_protocols.h"
#include "src/proto/transport.h"
#include "src/sim/event_loop.h"
#include "src/topo/topology.h"
#include "src/vm/machine.h"

namespace fbufs {

enum class TransportKind { kFixedWindow, kCredit, kAimd };

const char* TransportKindName(TransportKind k);

struct IncastWorldConfig {
  TransportKind kind = TransportKind::kFixedWindow;
  std::uint32_t racks = 2;
  std::uint32_t senders_per_rack = 4;

  // Fixed-window size (kFixedWindow) and the AIMD max_cwnd.
  std::uint32_t window = 8;
  // Credit transport: sender's budget before the first grant arrives, and
  // the ceiling CreditFor may grant per flow. One credit per flow keeps the
  // worst-case aggregate in-flight (flows × credit) at or under the
  // bottleneck queue — loss-freedom is the whole point of the scheme.
  std::uint32_t initial_credits = 1;
  std::uint32_t max_credit = 1;
  // AIMD slow-start threshold.
  std::uint32_t ssthresh = 2;

  // RTO above the worst legitimate RTT (ingress serialization plus two
  // near-full switch queues ≈ 45 ms at the default line rate and queue
  // depth), so a timeout means a drop, not patience running out.
  SimTime rto = 80 * kMillisecond;
  // Reverse-path (ack) latency; acks are tiny and never contend.
  SimTime ack_delay_ns = 20 * kMicrosecond;
  // Producer re-try pace when the window/credits close. Much shorter than
  // the RTO: acks arrive at RTT timescales (queueing + ack_delay), and a
  // producer that napped a whole RTO would quantize every transport's
  // goodput to window-per-RTO bursts, hiding the congestion dynamics this
  // world exists to show. The cap is RTT-scale too, for the same reason.
  SimTime park_initial = 250 * kMicrosecond;
  SimTime park_cap = 4 * kMillisecond;

  // Per-VCI ECN marking threshold at both switch tiers; 0 disables (the
  // fixed-window and credit configurations run drop-only fabrics).
  std::size_t ecn_threshold_pdus = 0;
  std::size_t switch_queue_pdus = 32;
  // OC-3 line rates. The fabric must be the bottleneck for congestion to
  // exist: all domains share one host CPU (one clock), which can source
  // roughly one PDU per ~0.6 ms of protocol + crossing work, so the line
  // rate sits well below that packet rate at the 32 KB PDU the benches use.
  // (At the paper's 516 Mbps a 32 KB PDU serializes in 0.5 ms — the CPU,
  // not the wire, would saturate first, and no queue would ever build.)
  double uplink_mbps = 155.0;  // sender NIC wire and ToR uplink line rate
  double core_mbps = 155.0;    // core downlink to the receiver: the bottleneck

  std::uint32_t phys_frames = 16384;
  std::uint64_t seed = 0x1ca5;
  // Watchdog only: deep in the collapse a fixed-window flow legitimately
  // starves for whole seconds (consecutive RTOs while the bottleneck
  // services other flows' duplicates). True wedges still surface — the
  // loop quiesces and the bench's drain check fails.
  SimTime stall_horizon = 10000 * kMillisecond;
  PressureConfig pressure;
};

class IncastWorld {
 public:
  explicit IncastWorld(const IncastWorldConfig& cfg);

  IncastWorld(const IncastWorld&) = delete;
  IncastWorld& operator=(const IncastWorld&) = delete;

  // The one-way data fabric below one sender transport: ingress wire → ToR
  // uplink queue → core downlink queue, then an evented delivery to the
  // receiver transport (with the ECN mark, when a switch raised one).
  // Drops anywhere on the path eat the frame silently — recovering it is
  // the transport's job.
  class FabricChannel : public Protocol {
   public:
    FabricChannel(IncastWorld* world, std::size_t flow, Domain* domain)
        : Protocol("incast-fabric", domain, world->stack_ptr()),
          world_(world),
          flow_(flow) {}

    Status Push(Message m) override;
    Status Pop(Message) override { return Status::kInvalidArgument; }
    bool touches_body() const override { return false; }

    std::uint64_t wire_drops() const { return wire_drops_; }
    std::uint64_t forwarded() const { return forwarded_; }

   private:
    IncastWorld* world_;
    std::size_t flow_;
    std::uint64_t wire_drops_ = 0;
    std::uint64_t forwarded_ = 0;
  };

  // The uncontended reverse path: delivers each ack to the peer sender a
  // fixed latency later.
  class AckChannel : public Protocol {
   public:
    AckChannel(IncastWorld* world, std::size_t flow, Domain* domain)
        : Protocol("incast-ack", domain, world->stack_ptr()),
          world_(world),
          flow_(flow) {}

    Status Push(Message m) override;
    Status Pop(Message) override { return Status::kInvalidArgument; }
    bool touches_body() const override { return false; }

   private:
    IncastWorld* world_;
    std::size_t flow_;
  };

  struct Flow {
    std::size_t rack = 0;
    std::uint32_t vci = 0;
    LinkId ingress = 0;
    Domain* sender_domain = nullptr;
    PathId tx_hdr = 0;
    PathId rx_hdr = 0;
    PathId data = 0;
    std::unique_ptr<RetransmitLedger> ledger;
    std::unique_ptr<Transport> sender;
    std::unique_ptr<Transport> receiver;
    std::unique_ptr<SinkProtocol> sink;
    std::unique_ptr<FabricChannel> fwd;
    std::unique_ptr<AckChannel> rev;

    // Producer state (the SwpWorld producer, one per flow).
    int target = 0;
    std::uint64_t bytes = 0;
    int accepted = 0;
    FlowBackoff backoff;
    std::uint64_t parks = 0;
    bool failed = false;
    std::function<void()> produce;

    // Per-flow latency decomposition (EnableLatency): the sender transport
    // feeds wire/retransmit/pin_hold; the producer and the delivery event
    // feed queue_wait and dispatch.
    LatencyDecomposition lat;
    SimTime wait_start = 0;
    bool waiting = false;
  };

  // Turns on latency-decomposition sampling for every flow (the transports
  // get AttachLatency, the producers time their backpressure waits). Call
  // before StartProducers.
  void EnableLatency();
  bool latency_enabled() const { return latency_enabled_; }

  // Starts every flow's producer: each keeps its window full until
  // |messages| of |bytes| each were accepted, parking on backpressure
  // (window closed, credits spent, congestion, pool exhausted) with the
  // shared capped-exponential backoff. Run the loop to quiescence after.
  void StartProducers(int messages, std::uint64_t bytes);

  // Stops one flow's producer cleanly (before terminating its domain —
  // a producer that outlives its domain is a use-after-free of the flow's
  // allocation path, not an interesting fault).
  void StopProducer(std::size_t flow);

  std::size_t flow_count() const { return flows_.size(); }
  Flow& flow(std::size_t i) { return *flows_[i]; }
  ProtocolStack* stack_ptr() { return &stack; }

  std::uint64_t total_delivered() const;
  std::uint64_t total_retransmissions() const;
  std::uint64_t total_accepted() const;
  std::uint64_t total_parks() const;
  std::uint64_t switch_drops();
  std::uint64_t ecn_marks();
  bool any_producer_stalled() const;
  bool any_producer_failed() const;

  NodeId core_node() const { return core_node_; }
  NodeId tor_node(std::size_t rack) const { return tor_nodes_[rack]; }

  Machine machine;
  FbufSystem fsys;
  Rpc rpc;
  ProtocolStack stack;
  Topology topo;
  PressureManager pressure;
  Domain* receiver_domain;
  EventLoop loop;

 private:
  IncastWorldConfig cfg_;
  std::vector<NodeId> tor_nodes_;
  NodeId core_node_ = kNoNode;
  bool latency_enabled_ = false;
  std::vector<std::unique_ptr<Flow>> flows_;
};

}  // namespace fbufs

#endif  // SRC_FAULT_INCAST_WORLD_H_
