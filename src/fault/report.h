// CampaignReport: the machine-readable record of one fault campaign.
//
// Serializes per-phase goodput / drop / retransmission deltas, the armed
// fault schedule, sweep rows, and every audit's results to
// CAMPAIGN_<name>.json (the BENCH_*.json convention, same %.10g number
// format). The JSON is a pure function of the campaign's deterministic
// state — same seed, same schedule => byte-identical file, which is the
// acceptance test for campaign determinism.
#ifndef SRC_FAULT_REPORT_H_
#define SRC_FAULT_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/auditor.h"
#include "src/sim/clock.h"

namespace fbufs {

class CampaignReport {
 public:
  struct Phase {
    std::string label;       // the fault (or "start"/"end") opening the phase
    SimTime start_ns = 0;
    SimTime end_ns = 0;
    std::uint64_t delivered_bytes = 0;  // sink bytes during the phase
    double goodput_mbps = 0;
    std::uint64_t drops = 0;            // link + switch + channel drops
    std::uint64_t retransmissions = 0;  // SWP campaigns
  };

  struct ScheduledFault {
    std::string label;
    std::string kind;
    SimTime at_ns = 0;
    SimTime duration_ns = 0;
    std::uint32_t percent = 0;
  };

  struct AuditEntry {
    std::string label;
    SimTime at_ns = 0;
    std::vector<HostAuditResult> hosts;
    bool has_swp = false;
    SwpAuditResult swp;
    // Multi-conversation campaigns: one audit per conversation, labelled.
    std::vector<std::pair<std::string, SwpAuditResult>> conversations;
    bool passed = false;
  };

  using Row = std::vector<std::pair<std::string, double>>;

  CampaignReport(std::string name, std::uint64_t seed)
      : name_(std::move(name)), seed_(seed) {}

  const std::string& name() const { return name_; }

  void AddScheduledFault(ScheduledFault f) { schedule_.push_back(std::move(f)); }
  void AddPhase(Phase p) { phases_.push_back(std::move(p)); }
  void AddAudit(AuditEntry a) { audits_.push_back(std::move(a)); }
  // Free-form numeric rows for sweep campaigns (one row per sweep point).
  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  // Campaign-specific verdict beyond the audits (e.g. "flow failed cleanly,
  // receiver data survived").
  void SetOutcome(bool ok, std::string note) {
    outcome_ok_ = ok;
    outcome_note_ = std::move(note);
  }

  const std::vector<Phase>& phases() const { return phases_; }
  const std::vector<AuditEntry>& audits() const { return audits_; }
  bool audits_passed() const;
  bool passed() const { return outcome_ok_ && audits_passed(); }
  const std::string& outcome_note() const { return outcome_note_; }

  std::string ToJson() const;
  // Writes CAMPAIGN_<name>.json in the working directory.
  bool Write() const;

 private:
  std::string name_;
  std::uint64_t seed_;
  std::vector<ScheduledFault> schedule_;
  std::vector<Phase> phases_;
  std::vector<AuditEntry> audits_;
  std::vector<Row> rows_;
  bool outcome_ok_ = true;
  std::string outcome_note_;
};

}  // namespace fbufs

#endif  // SRC_FAULT_REPORT_H_
