#include "src/fault/incast_world.h"

#include <algorithm>

namespace fbufs {

namespace {

MachineConfig MachineFor(const IncastWorldConfig& cfg) {
  MachineConfig m;
  m.phys_frames = cfg.phys_frames;
  return m;
}

// Sender and receiver run the same transport kind — the wire format (16 vs
// 24 byte header) must agree end to end.
std::unique_ptr<Transport> MakeTransport(const IncastWorldConfig& cfg,
                                         Domain* d, ProtocolStack* s,
                                         PathId hdr) {
  switch (cfg.kind) {
    case TransportKind::kFixedWindow:
      return std::make_unique<SwpProtocol>(d, s, hdr, cfg.window);
    case TransportKind::kCredit:
      return std::make_unique<CreditTransport>(d, s, hdr, cfg.initial_credits);
    case TransportKind::kAimd: {
      AimdPolicy::Config ac;
      ac.initial_cwnd = 1;
      ac.initial_ssthresh = cfg.ssthresh;
      ac.max_cwnd = cfg.window;
      return std::make_unique<AimdTransport>(d, s, hdr, ac);
    }
  }
  return nullptr;
}

}  // namespace

const char* TransportKindName(TransportKind k) {
  switch (k) {
    case TransportKind::kFixedWindow:
      return "swp";
    case TransportKind::kCredit:
      return "credit";
    case TransportKind::kAimd:
      return "aimd";
  }
  return "unknown";
}

IncastWorld::IncastWorld(const IncastWorldConfig& cfg)
    : machine(MachineFor(cfg)),
      fsys(&machine),
      rpc(&machine),
      stack(&machine, &fsys, &rpc),
      topo(cfg.seed),
      pressure(&fsys, cfg.pressure),
      receiver_domain(machine.CreateDomain("receiver")),
      cfg_(cfg) {
  fsys.AttachRpc(&rpc);
  fsys.AttachEventLoop(&loop);
  pressure.AttachEventLoop(&loop);

  const std::uint32_t flows = cfg.racks * cfg.senders_per_rack;
  stack.set_domain_count(1 + flows);

  // Fabric: one ToR switch per rack (port 0 = the uplink toward the core),
  // one core switch (port 0 = the downlink to the receiver — the incast
  // bottleneck every flow crosses).
  for (std::uint32_t r = 0; r < cfg.racks; ++r) {
    SwitchPortConfig up;
    up.mbps = cfg.uplink_mbps;
    up.queue_pdus = cfg.switch_queue_pdus;
    tor_nodes_.push_back(topo.AddSwitch("tor" + std::to_string(r), {up}));
    topo.switch_at(tor_nodes_.back())->set_ecn_threshold(cfg.ecn_threshold_pdus);
  }
  SwitchPortConfig down;
  down.mbps = cfg.core_mbps;
  down.queue_pdus = cfg.switch_queue_pdus;
  core_node_ = topo.AddSwitch("core", {down});
  topo.switch_at(core_node_)->set_ecn_threshold(cfg.ecn_threshold_pdus);

  for (std::uint32_t i = 0; i < flows; ++i) {
    auto f = std::make_unique<Flow>();
    f->rack = i / cfg.senders_per_rack;
    f->vci = 100 + i;
    Domain* sd = machine.CreateDomain("sender" + std::to_string(i));
    f->sender_domain = sd;
    f->tx_hdr = fsys.paths().Register({sd->id(), receiver_domain->id()});
    f->rx_hdr = fsys.paths().Register({receiver_domain->id(), sd->id()});
    f->data = fsys.paths().Register({sd->id(), receiver_domain->id()});
    f->ledger = std::make_unique<RetransmitLedger>();
    f->sender = MakeTransport(cfg, sd, &stack, f->tx_hdr);
    f->receiver = MakeTransport(cfg, receiver_domain, &stack, f->rx_hdr);
    f->sink = std::make_unique<SinkProtocol>(receiver_domain, &stack);
    f->fwd = std::make_unique<FabricChannel>(this, i, sd);
    f->rev = std::make_unique<AckChannel>(this, i, receiver_domain);
    // The ingress wire has no host node (the sender "NIC" is the link
    // itself); both endpoints record the rack's ToR for the fault scripts.
    f->ingress = topo.AddLink(tor_nodes_[f->rack], tor_nodes_[f->rack],
                              &machine.costs(), "ingress/" + std::to_string(i),
                              cfg.uplink_mbps);
    topo.switch_at(tor_nodes_[f->rack])->Route(f->vci, 0);
    topo.switch_at(core_node_)->Route(f->vci, 0);

    f->sender->set_below(f->fwd.get());
    f->receiver->set_below(f->rev.get());
    f->receiver->set_above(f->sink.get());
    f->sender->AttachTimer(&loop, cfg.rto);
    f->sender->AttachLedger(f->ledger.get());
    f->sender->InstallAbortOnTermination();
    pressure.AttachRetransmitLedger(f->ledger.get());
    if (cfg.kind == TransportKind::kCredit) {
      // The grant rides on every ack: the receiver sizes each flow's
      // in-flight budget to the pool's current headroom. This is the
      // backward pressure path — a squeezed pool shrinks grants toward 1.
      const std::size_t idx = i;
      f->receiver->SetCreditSource([this, idx, flows] {
        const Flow& fl = *flows_[idx];
        const std::uint64_t pdu_pages = PagesFor(fl.bytes > 0 ? fl.bytes : kPageSize);
        return pressure.CreditFor(pdu_pages, flows, cfg_.max_credit);
      });
    }
    f->backoff.policy.initial = cfg.park_initial;
    f->backoff.policy.multiplier = 2;
    f->backoff.policy.cap = cfg.park_cap;
    f->backoff.stall_horizon = cfg.stall_horizon;
    flows_.push_back(std::move(f));
  }
}

Status IncastWorld::FabricChannel::Push(Message m) {
  Flow& f = world_->flow(flow_);
  const std::uint64_t bytes = m.length();
  Machine& mach = *stack_->machine();
  // Serialize onto the sender's own wire, then queue through both switch
  // tiers analytically. A drop at any stage eats the frame (counted at the
  // dropping element); the bits upstream of the drop were still spent.
  const TopoLink::Outcome w =
      world_->topo.link(f.ingress).Transmit(bytes, mach.clock().Now());
  if (w.dropped) {
    wire_drops_++;
    return Status::kOk;
  }
  const SwitchNode::Outcome t1 =
      world_->topo.switch_at(world_->tor_node(f.rack))
          ->Forward(f.vci, bytes, w.arrival);
  if (t1.dropped) {
    return Status::kOk;
  }
  const SwitchNode::Outcome t2 =
      world_->topo.switch_at(world_->core_node())->Forward(f.vci, bytes, t1.done);
  if (t2.dropped) {
    return Status::kOk;
  }
  const bool marked = t1.ecn_marked || t2.ecn_marked;
  // Hold references across the flight; the delivery event drops them.
  Status st = stack_->RetainMessage(m, *domain());
  if (!Ok(st)) {
    return st;
  }
  forwarded_++;
  const SimTime arrival = t2.done;
  world_->loop.Schedule(
      std::max(world_->loop.Now(), arrival), "incast-deliver",
      [this, m, arrival, marked] {
        if (!domain()->alive()) {
          // The sender died mid-flight: §3.3 cleanup already dropped the
          // references this channel held, so the frame simply never lands.
          return;
        }
        stack_->machine()->clock().AdvanceToAtLeast(arrival);
        Flow& fl = world_->flow(flow_);
        if (world_->latency_enabled_) {
          // How late the event loop ran the delivery relative to the frame's
          // fabric arrival: receiver-side dispatch latency.
          const SimTime now = stack_->machine()->clock().Now();
          fl.lat.dispatch.push_back(now >= arrival ? now - arrival : 0);
        }
        if (marked) {
          // Out-of-band ECN: the mark arrives with the frame (fbufs are
          // immutable in flight — the header cannot be rewritten).
          fl.receiver->MarkCongestionExperienced();
        }
        // The actual crossing happens here, through the stack's proxy edge:
        // SendUpTo transfers the fbuf references into the receiver domain
        // (making it a holder — without that, receiver-side reads fault to
        // §3.2.4 absent-leaf zero pages), charges marshal + crossing, and
        // releases the receiver's references after the Pop unless the
        // transport retained (stashed out-of-order frames do).
        SendUpTo(fl.receiver.get(), m);
        stack_->FreeMessage(m, *domain());
      });
  return Status::kOk;
}

Status IncastWorld::AckChannel::Push(Message m) {
  // Receiver-domain references keep the ack header alive across the
  // reverse-path latency.
  Status st = stack_->RetainMessage(m, *domain());
  if (!Ok(st)) {
    return st;
  }
  Machine& mach = *stack_->machine();
  const SimTime arrival = mach.clock().Now() + world_->cfg_.ack_delay_ns;
  world_->loop.Schedule(
      std::max(world_->loop.Now(), arrival), "incast-ack",
      [this, m, arrival] {
        stack_->machine()->clock().AdvanceToAtLeast(arrival);
        Flow& fl = world_->flow(flow_);
        if (!fl.sender->aborted() && fl.sender_domain->alive()) {
          SendUpTo(fl.sender.get(), m);
        }
        stack_->FreeMessage(m, *domain());
      });
  return Status::kOk;
}

void IncastWorld::EnableLatency() {
  latency_enabled_ = true;
  for (auto& f : flows_) {
    f->sender->AttachLatency(&f->lat);
  }
}

void IncastWorld::StartProducers(int messages, std::uint64_t bytes) {
  for (auto& fp : flows_) {
    Flow* f = fp.get();
    f->target = messages;
    f->bytes = bytes;
    f->produce = [this, f] {
      while (f->accepted < f->target) {
        if (!f->sender_domain->alive()) {
          return;  // terminated mid-campaign: the flow ends, not fails
        }
        Fbuf* fb = nullptr;
        Status st = fsys.Allocate(*f->sender_domain, f->data, f->bytes,
                                  /*want_volatile=*/true, &fb);
        if (Ok(st)) {
          st = f->sender_domain->TouchRange(fb->base, f->bytes, Access::kWrite);
          if (Ok(st)) {
            st = f->sender->Push(Message::Whole(fb));
          }
          // The producer's reference always drops, push or no push.
          const Status free_st = fsys.Free(fb, *f->sender_domain);
          if (Ok(st) && !Ok(free_st)) {
            st = free_st;
          }
        }
        if (Ok(st)) {
          f->accepted++;
          if (latency_enabled_) {
            // Admission wait for this message: first refusal to acceptance.
            // Unparked accepts contribute a zero so count == accepted.
            const SimTime now = machine.clock().Now();
            f->lat.queue_wait.push_back(
                f->waiting && now >= f->wait_start ? now - f->wait_start : 0);
            f->waiting = false;
          }
          f->backoff.Progress(loop.Now());
          continue;
        }
        if (!IsBackpressure(st)) {
          f->failed = true;  // hard error: retrying cannot help
          return;
        }
        if (latency_enabled_ && !f->waiting) {
          f->waiting = true;
          f->wait_start = machine.clock().Now();
        }
        const auto delay = f->backoff.Park(loop.Now());
        if (!delay.has_value()) {
          return;  // watchdog: no progress inside the horizon — give up
        }
        f->parks++;
        loop.Schedule(std::max(loop.Now(), machine.clock().Now()) + *delay,
                      "incast-produce", f->produce);
        return;
      }
    };
    loop.Schedule(loop.Now(), "incast-produce", f->produce);
  }
}

void IncastWorld::StopProducer(std::size_t flow) {
  Flow& f = *flows_[flow];
  f.target = f.accepted;  // the pending produce event exits immediately
}

std::uint64_t IncastWorld::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& f : flows_) {
    n += f->sink->bytes_received();
  }
  return n;
}

std::uint64_t IncastWorld::total_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& f : flows_) {
    n += f->sender->retransmissions();
  }
  return n;
}

std::uint64_t IncastWorld::total_accepted() const {
  std::uint64_t n = 0;
  for (const auto& f : flows_) {
    n += static_cast<std::uint64_t>(f->accepted);
  }
  return n;
}

std::uint64_t IncastWorld::total_parks() const {
  std::uint64_t n = 0;
  for (const auto& f : flows_) {
    n += f->parks;
  }
  return n;
}

std::uint64_t IncastWorld::switch_drops() {
  std::uint64_t n = 0;
  for (std::size_t r = 0; r < tor_nodes_.size(); ++r) {
    n += topo.switch_at(tor_nodes_[r])->drops_total();
  }
  n += topo.switch_at(core_node_)->drops_total();
  return n;
}

std::uint64_t IncastWorld::ecn_marks() {
  std::uint64_t n = 0;
  for (std::size_t r = 0; r < tor_nodes_.size(); ++r) {
    n += topo.switch_at(tor_nodes_[r])->ecn_marks_total();
  }
  n += topo.switch_at(core_node_)->ecn_marks_total();
  return n;
}

bool IncastWorld::any_producer_stalled() const {
  for (const auto& f : flows_) {
    if (f->backoff.stalled) {
      return true;
    }
  }
  return false;
}

bool IncastWorld::any_producer_failed() const {
  for (const auto& f : flows_) {
    if (f->failed) {
      return true;
    }
  }
  return false;
}

}  // namespace fbufs
