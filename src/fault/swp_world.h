// SwpWorld: the two-peer SWP-over-lossy-channels world, packaged for fault
// campaigns.
//
// One machine, two domains, an SWP sender/receiver pair joined by two
// LossyChannels (independent SplitMix64 streams for the data and ack
// directions — that independence is what makes kAckPathOnlyLoss a precise
// instrument), a sink, and a producer that keeps the window full on the
// event loop. This is the swp_goodput bench's world, factored out so the
// campaigns and tests build the identical conversation.
#ifndef SRC_FAULT_SWP_WORLD_H_
#define SRC_FAULT_SWP_WORLD_H_

#include <cstdint>
#include <functional>

#include "src/pressure/backoff.h"
#include "src/proto/swp.h"
#include "src/proto/test_protocols.h"
#include "src/sim/event_loop.h"
#include "src/vm/machine.h"

namespace fbufs {

struct SwpWorldConfig {
  std::uint32_t window = 8;
  SimTime rto = 2 * kMillisecond;
  std::uint64_t fwd_seed = 11;
  std::uint64_t rev_seed = 13;
  std::uint32_t fwd_loss = 0;  // data-direction drop percent
  std::uint32_t rev_loss = 0;  // ack-direction drop percent
  // Simulated physical memory (pressure campaigns shrink this).
  std::uint32_t phys_frames = 16384;
  // Producer stall watchdog: no accepted message for this long (loop time)
  // fails the producer instead of retrying forever.
  SimTime stall_horizon = 250 * kMillisecond;
};

struct SwpWorld {
  explicit SwpWorld(const SwpWorldConfig& cfg = SwpWorldConfig());

  // Keeps the window full until |messages| of |bytes| each were accepted.
  // Backpressure (window full, pool exhausted, quota) parks the producer on
  // the shared capped-exponential backoff (initial delay = one RTO, by which
  // time the retransmission timer has fired and surviving acks opened the
  // window) and retries; the stall watchdog fails it after |stall_horizon|
  // without progress. Hard errors stop it immediately.
  // Call once, then run |loop| to quiescence.
  void StartProducer(int messages, std::uint64_t bytes);

  int accepted() const { return accepted_; }
  std::uint64_t producer_parks() const { return parks_; }
  // Watchdog verdict: the producer gave up without reaching its target.
  bool producer_stalled() const { return backoff_.stalled; }
  // A non-backpressure error stopped the producer.
  bool producer_failed() const { return producer_failed_; }

  Machine machine;
  FbufSystem fsys;
  Rpc rpc;
  ProtocolStack stack;
  Domain* sender_domain;
  Domain* receiver_domain;
  PathId tx_hdr;
  PathId rx_hdr;
  PathId data;
  SwpProtocol sender;
  SwpProtocol receiver;
  LossyChannel fwd;  // data direction
  LossyChannel rev;  // ack direction
  SinkProtocol sink;
  EventLoop loop;

 private:
  SimTime rto_;
  int target_ = 0;
  std::uint64_t bytes_ = 0;
  int accepted_ = 0;
  FlowBackoff backoff_;
  std::uint64_t parks_ = 0;
  bool producer_failed_ = false;
  std::function<void()> produce_;
};

}  // namespace fbufs

#endif  // SRC_FAULT_SWP_WORLD_H_
