// InvariantAuditor: checks the paper's §3.3 cleanup rules for real, after
// (and during) a fault campaign.
//
// Host-level invariants, per audited machine:
//   * zero leaked physical frames — every allocated frame is reachable from
//     at least one alive domain's mapping;
//   * frame refcounts equal the number of alive-domain mappings referencing
//     the frame (no silent over/under-counting);
//   * no dangling per-domain region mappings to destroyed fbufs;
//   * free lists consistent (every slot live, marked, right size class, on
//     a live allocator) and never caching a dead originator's fbufs.
//
// Protocol-level invariants (any Transport, checked at quiescence only — an
// open window mid-flow is normal):
//   * the send window is not wedged (nothing unacknowledged once the loop
//     went quiescent);
//   * the receiver stash drained (no out-of-order frame waiting forever);
//   * zero bytes copied — retransmission works from retained immutable
//     fbuf references (§2.1.3), loss or no loss;
//   * when a retransmit ledger is attached, pinned PDUs always equal the
//     sender's unacked window (mid-flow too — the equality is an invariant,
//     not a quiescence property) and the ledger drained at quiescence.
#ifndef SRC_FAULT_AUDITOR_H_
#define SRC_FAULT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fbuf/fbuf_system.h"
#include "src/proto/swp.h"
#include "src/vm/machine.h"

namespace fbufs {

struct HostAuditResult {
  std::string host;
  std::uint64_t leaked_frames = 0;       // allocated, referenced by no alive domain
  std::uint64_t refcount_mismatches = 0; // frame rc != alive-domain mappings
  std::uint64_t dangling_mappings = 0;   // region mapping into no current fbuf
  std::uint64_t free_list_errors = 0;
  std::uint64_t orphaned_live_fbufs = 0; // informational: §3.3 mid-drain state
  std::uint64_t live_fbufs = 0;          // informational
  std::uint64_t free_listed_fbufs = 0;   // informational
  bool passed = false;
};

struct SwpAuditResult {
  bool window_wedged = false;
  std::uint32_t unacked = 0;
  std::uint64_t stashed = 0;
  std::uint64_t bytes_copied = 0;
  // Ledger invariants (zero when no ledger is attached):
  std::uint64_t ledger_pinned = 0;    // PDUs still pinned at audit time
  std::uint64_t ledger_mismatch = 0;  // |pinned PDUs - unacked window|
  bool passed = false;
};

class InvariantAuditor {
 public:
  // Scans every physical frame of |m| against every alive domain's mappings
  // and folds in the fbuf system's own consistency counts.
  static HostAuditResult AuditHost(const std::string& name, Machine& m,
                                   const FbufSystem& fsys);

  // Quiescence-only: |sender| and |receiver| are the transport peers of one
  // conversation sharing |m|. An aborted sender (domain terminated mid-
  // retransmit) passes with an empty, reclaimed ledger — wedged is a live
  // flow that stopped, not a dead one that was cleaned up.
  static SwpAuditResult AuditSwp(const Transport& sender,
                                 const Transport& receiver, Machine& m);

  // Mid-flow ledger invariant: pinned PDUs == the sender's unacked window.
  // Call any time, quiescent or not.
  static bool LedgerConsistent(const Transport& sender);
};

}  // namespace fbufs

#endif  // SRC_FAULT_AUDITOR_H_
