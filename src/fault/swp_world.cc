#include "src/fault/swp_world.h"

#include <algorithm>

namespace fbufs {

namespace {
MachineConfig MachineFor(const SwpWorldConfig& cfg) {
  MachineConfig m;
  m.phys_frames = cfg.phys_frames;
  return m;
}
}  // namespace

SwpWorld::SwpWorld(const SwpWorldConfig& cfg)
    : machine(MachineFor(cfg)),
      fsys(&machine),
      rpc(&machine),
      stack(&machine, &fsys, &rpc),
      sender_domain(machine.CreateDomain("sender")),
      receiver_domain(machine.CreateDomain("receiver")),
      tx_hdr(fsys.paths().Register({sender_domain->id(), receiver_domain->id()})),
      rx_hdr(fsys.paths().Register({receiver_domain->id(), sender_domain->id()})),
      data(fsys.paths().Register({sender_domain->id(), receiver_domain->id()})),
      sender(sender_domain, &stack, tx_hdr, cfg.window),
      receiver(receiver_domain, &stack, rx_hdr, cfg.window),
      fwd(sender_domain, &stack, cfg.fwd_seed, cfg.fwd_loss),
      rev(receiver_domain, &stack, cfg.rev_seed, cfg.rev_loss),
      sink(receiver_domain, &stack),
      rto_(cfg.rto) {
  fsys.AttachRpc(&rpc);
  stack.set_domain_count(2);
  sender.set_below(&fwd);
  fwd.set_peer_above(&receiver);
  receiver.set_below(&rev);
  rev.set_peer_above(&sender);
  receiver.set_above(&sink);
  sender.AttachTimer(&loop, cfg.rto);
  fsys.AttachEventLoop(&loop);
  // The shared backoff, parameterized by the protocol's own timescale: the
  // first retry lands one RTO out (matching the retransmission timer), and
  // the ramp caps early enough that the producer probes a recovering pool
  // promptly.
  backoff_.policy.initial = cfg.rto;
  backoff_.policy.multiplier = 2;
  backoff_.policy.cap = 8 * cfg.rto;
  backoff_.stall_horizon = cfg.stall_horizon;
}

void SwpWorld::StartProducer(int messages, std::uint64_t bytes) {
  target_ = messages;
  bytes_ = bytes;
  produce_ = [this] {
    while (accepted_ < target_) {
      Fbuf* fb = nullptr;
      Status st = fsys.Allocate(*sender_domain, data, bytes_, true, &fb);
      if (Ok(st)) {
        st = sender_domain->TouchRange(fb->base, bytes_, Access::kWrite);
        if (Ok(st)) {
          st = sender.Push(Message::Whole(fb));
        }
        // The producer's reference always drops, push or no push.
        const Status free_st = fsys.Free(fb, *sender_domain);
        if (Ok(st) && !Ok(free_st)) {
          st = free_st;
        }
      }
      if (Ok(st)) {
        accepted_++;
        backoff_.Progress(loop.Now());
        continue;
      }
      if (!IsBackpressure(st)) {
        // Hard error (dead domain, protection): retrying cannot help.
        producer_failed_ = true;
        return;
      }
      const auto delay = backoff_.Park(loop.Now());
      if (!delay.has_value()) {
        return;  // watchdog: no progress inside the horizon — give up
      }
      parks_++;
      loop.Schedule(std::max(loop.Now(), machine.clock().Now()) + *delay,
                    "swp-produce", produce_);
      return;
    }
  };
  loop.Schedule(loop.Now(), "swp-produce", produce_);
}

}  // namespace fbufs
