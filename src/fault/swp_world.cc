#include "src/fault/swp_world.h"

#include <algorithm>

namespace fbufs {

SwpWorld::SwpWorld(const SwpWorldConfig& cfg)
    : machine(MachineConfig{}),
      fsys(&machine),
      rpc(&machine),
      stack(&machine, &fsys, &rpc),
      sender_domain(machine.CreateDomain("sender")),
      receiver_domain(machine.CreateDomain("receiver")),
      tx_hdr(fsys.paths().Register({sender_domain->id(), receiver_domain->id()})),
      rx_hdr(fsys.paths().Register({receiver_domain->id(), sender_domain->id()})),
      data(fsys.paths().Register({sender_domain->id(), receiver_domain->id()})),
      sender(sender_domain, &stack, tx_hdr, cfg.window),
      receiver(receiver_domain, &stack, rx_hdr, cfg.window),
      fwd(sender_domain, &stack, cfg.fwd_seed, cfg.fwd_loss),
      rev(receiver_domain, &stack, cfg.rev_seed, cfg.rev_loss),
      sink(receiver_domain, &stack),
      rto_(cfg.rto) {
  fsys.AttachRpc(&rpc);
  stack.set_domain_count(2);
  sender.set_below(&fwd);
  fwd.set_peer_above(&receiver);
  receiver.set_below(&rev);
  rev.set_peer_above(&sender);
  receiver.set_above(&sink);
  sender.AttachTimer(&loop, cfg.rto);
  fsys.AttachEventLoop(&loop);
}

void SwpWorld::StartProducer(int messages, std::uint64_t bytes) {
  target_ = messages;
  bytes_ = bytes;
  produce_ = [this] {
    while (accepted_ < target_) {
      Fbuf* fb = nullptr;
      if (!Ok(fsys.Allocate(*sender_domain, data, bytes_, true, &fb))) {
        return;
      }
      sender_domain->TouchRange(fb->base, bytes_, Access::kWrite);
      const Status st = sender.Push(Message::Whole(fb));
      fsys.Free(fb, *sender_domain);
      if (st == Status::kOk) {
        accepted_++;
      } else {
        loop.Schedule(std::max(loop.Now(), machine.clock().Now() + rto_),
                      "swp-produce", produce_);
        return;
      }
    }
  };
  loop.Schedule(loop.Now(), "swp-produce", produce_);
}

}  // namespace fbufs
