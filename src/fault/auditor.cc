#include "src/fault/auditor.h"

#include <vector>

namespace fbufs {

HostAuditResult InvariantAuditor::AuditHost(const std::string& name, Machine& m,
                                            const FbufSystem& fsys) {
  HostAuditResult r;
  r.host = name;

  // Count, per physical frame, the mappings alive domains still hold on it.
  // Dead domains' tombstones keep no entries (DestroyDomain unreferenced
  // them), so every allocated frame must be explained by an alive mapping —
  // a frame with references but no mapping is leaked for good: nobody can
  // ever reach it to free it.
  std::vector<std::uint32_t> mapping_count(m.pmem().total_frames(), 0);
  for (std::size_t i = 0; i < m.domain_count(); ++i) {
    Domain* d = m.domain(static_cast<DomainId>(i));
    if (d == nullptr || !d->alive()) {
      continue;
    }
    for (const auto& [vpn, entry] : d->entries()) {
      if (entry.frame != kInvalidFrame && entry.frame < mapping_count.size()) {
        mapping_count[entry.frame]++;
      }
    }
  }
  for (FrameId f = 0; f < m.pmem().total_frames(); ++f) {
    const std::uint32_t rc = m.pmem().RefCount(f);
    if (rc == mapping_count[f]) {
      continue;
    }
    if (rc > 0 && mapping_count[f] == 0) {
      r.leaked_frames++;
    } else {
      r.refcount_mismatches++;
    }
  }

  const FbufSystem::AuditCounts c = fsys.Audit();
  r.dangling_mappings = c.dangling_mappings;
  r.free_list_errors = c.free_list_errors;
  r.orphaned_live_fbufs = c.orphaned_live_fbufs;
  r.live_fbufs = c.live_fbufs;
  r.free_listed_fbufs = c.free_listed_fbufs;

  r.passed = r.leaked_frames == 0 && r.refcount_mismatches == 0 &&
             r.dangling_mappings == 0 && r.free_list_errors == 0;
  return r;
}

SwpAuditResult InvariantAuditor::AuditSwp(const Transport& sender,
                                          const Transport& receiver,
                                          Machine& m) {
  SwpAuditResult r;
  r.unacked = sender.unacked();
  r.window_wedged = r.unacked > 0 && !sender.aborted();
  r.stashed = receiver.stashed();
  r.bytes_copied = m.stats().bytes_copied;
  if (const RetransmitLedger* ledger = sender.ledger()) {
    r.ledger_pinned = ledger->pinned_pdus();
    const std::uint64_t unacked = sender.unacked();
    r.ledger_mismatch = r.ledger_pinned > unacked ? r.ledger_pinned - unacked
                                                  : unacked - r.ledger_pinned;
  }
  r.passed = !r.window_wedged && r.stashed == 0 && r.bytes_copied == 0 &&
             r.ledger_pinned == 0 && r.ledger_mismatch == 0;
  return r;
}

bool InvariantAuditor::LedgerConsistent(const Transport& sender) {
  const RetransmitLedger* ledger = sender.ledger();
  return ledger == nullptr || ledger->pinned_pdus() == sender.unacked();
}

}  // namespace fbufs
