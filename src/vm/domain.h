// Protection domain: one simulated address space with its own page tables,
// TLB and access rights.
//
// All data access by "software running in a domain" goes through the checked
// accessors here, so permission violations, TLB behaviour, copy-on-write and
// fbuf fault semantics genuinely happen. Devices (DMA) and tests that need to
// observe physical placement use the Debug* helpers, which charge nothing.
#ifndef SRC_VM_DOMAIN_H_
#define SRC_VM_DOMAIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/sim/phys_mem.h"
#include "src/vm/address_space.h"
#include "src/vm/pmap.h"
#include "src/vm/tlb.h"
#include "src/vm/types.h"

namespace fbufs {

class Machine;

// Machine-independent mapping state for one page (the upper level of the
// two-level VM system).
struct VmEntry {
  Prot prot = Prot::kNone;        // access the domain is permitted
  FrameId frame = kInvalidFrame;  // backing frame once materialized
  bool cow = false;               // writes must copy (or reclaim) the frame
  bool pmap_valid = false;        // low-level entry installed
  bool zero_fill = true;          // clear the frame when materializing
};

class Domain {
 public:
  Domain(Machine* machine, DomainId id, std::string name, bool trusted);

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  DomainId id() const { return id_; }
  const std::string& name() const { return name_; }
  // Trusted domains (the kernel) may originate fbufs whose immutability
  // need not be enforced.
  bool trusted() const { return trusted_; }
  bool alive() const { return alive_; }

  AddressSpace& aspace() { return aspace_; }
  Pmap& pmap() { return pmap_; }
  Tlb& tlb() { return tlb_; }
  Machine& machine() { return *machine_; }

  // --- Checked access (the only way domain code touches memory) -------------

  // Copies |len| bytes out of / into the domain's address space, page by
  // page, translating through TLB + pmap and taking faults as needed.
  Status ReadBytes(VirtAddr addr, void* dst, std::size_t len);
  Status WriteBytes(VirtAddr addr, const void* src, std::size_t len);

  Status ReadWord(VirtAddr addr, std::uint32_t* out);
  Status WriteWord(VirtAddr addr, std::uint32_t value);

  // Touches one word in every page of [addr, addr+len) — the paper's test
  // access pattern (producer writes one word per page, consumer reads one).
  Status TouchRange(VirtAddr addr, std::size_t len, Access access);

  // --- Internals used by the VM manager and debug-only observers ------------

  VmEntry* FindEntry(Vpn vpn) {
    auto it = vmap_.find(vpn);
    return it == vmap_.end() ? nullptr : &it->second;
  }
  const VmEntry* FindEntry(Vpn vpn) const {
    auto it = vmap_.find(vpn);
    return it == vmap_.end() ? nullptr : &it->second;
  }
  VmEntry& InsertEntry(Vpn vpn, const VmEntry& e) { return vmap_[vpn] = e; }
  void EraseEntry(Vpn vpn) { vmap_.erase(vpn); }
  std::unordered_map<Vpn, VmEntry>& entries() { return vmap_; }

  // Frame backing |vpn| per the machine-independent map, or kInvalidFrame.
  // No cost, no faults — for tests and DMA setup only.
  FrameId DebugFrame(Vpn vpn) const;

  void MarkDead() { alive_ = false; }

 private:
  friend class Machine;

  // Translates one page for |access|, taking the fault path if needed.
  // On success *frame is the backing frame.
  Status Translate(Vpn vpn, Access access, FrameId* frame);

  Machine* machine_;
  DomainId id_;
  std::string name_;
  bool trusted_;
  bool alive_ = true;
  AddressSpace aspace_;
  Pmap pmap_;
  Tlb tlb_;
  std::unordered_map<Vpn, VmEntry> vmap_;
};

}  // namespace fbufs

#endif  // SRC_VM_DOMAIN_H_
