// Per-domain software-filled TLB (MIPS R3000 style).
//
// Every translation a domain performs goes through its TLB. Misses are
// serviced in "software" from the pmap and charged the refill cost — this is
// exactly where the 3 us/page of cached/volatile fbuf transfers comes from in
// the paper. Mapping changes must flush matching entries (the per-page
// TLB/cache consistency action of the paper's step 2c/4b).
#ifndef SRC_VM_TLB_H_
#define SRC_VM_TLB_H_

#include <cstdint>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/stats.h"
#include "src/vm/pmap.h"
#include "src/vm/types.h"

namespace fbufs {

class Tlb {
 public:
  // The R3000 had 64 entries.
  static constexpr std::uint32_t kDefaultEntries = 64;

  Tlb(std::uint32_t capacity, SimClock* clock, const CostParams* costs, SimStats* stats)
      : capacity_(capacity), clock_(clock), costs_(costs), stats_(stats) {
    slots_.resize(capacity_);
  }

  // Multicore lane switch: charges follow the machine's active CPU clock.
  void set_clock(SimClock* clock) { clock_ = clock; }

  // Looks up |vpn|; on miss, charges the refill cost and consults |pmap|.
  // Returns the entry (valid frame) or nullptr if the pmap has no mapping
  // (the caller then takes the full fault path).
  const PmapEntry* Translate(Vpn vpn, const Pmap& pmap) {
    for (Slot& s : slots_) {
      if (s.valid && s.vpn == vpn) {
        return &s.entry;
      }
    }
    // Software refill.
    clock_->Advance(costs_->tlb_miss_ns);
    stats_->tlb_misses++;
    const PmapEntry* pe = pmap.Lookup(vpn);
    if (pe == nullptr) {
      return nullptr;
    }
    Insert(vpn, *pe);
    // Return the cached copy (stable for the duration of the access).
    return &slots_[last_inserted_].entry;
  }

  // Drops the entry for |vpn| and charges one consistency action. Called for
  // every page whose mapping or protection changed.
  void FlushPage(Vpn vpn) {
    clock_->Advance(costs_->tlb_flush_ns);
    stats_->tlb_flushes++;
    for (Slot& s : slots_) {
      if (s.valid && s.vpn == vpn) {
        s.valid = false;
      }
    }
  }

  // Invalidates the entry without charging (used when the cost is already
  // covered by an inclusive operation such as a protection trap).
  void InvalidatePage(Vpn vpn) {
    for (Slot& s : slots_) {
      if (s.valid && s.vpn == vpn) {
        s.valid = false;
      }
    }
  }

  void FlushAll() {
    for (Slot& s : slots_) {
      s.valid = false;
    }
  }

  std::uint32_t capacity() const { return capacity_; }

 private:
  struct Slot {
    bool valid = false;
    Vpn vpn = 0;
    PmapEntry entry;
  };

  void Insert(Vpn vpn, const PmapEntry& e) {
    // FIFO replacement (the R3000 used random; FIFO keeps runs deterministic).
    last_inserted_ = next_victim_;
    slots_[next_victim_] = Slot{true, vpn, e};
    next_victim_ = (next_victim_ + 1) % capacity_;
  }

  std::uint32_t capacity_;
  SimClock* clock_;
  const CostParams* costs_;
  SimStats* stats_;
  std::vector<Slot> slots_;
  std::uint32_t next_victim_ = 0;
  std::uint32_t last_inserted_ = 0;
};

}  // namespace fbufs

#endif  // SRC_VM_TLB_H_
