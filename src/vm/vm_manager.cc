#include "src/vm/vm_manager.h"

#include <cassert>
#include <cstring>

#include "src/vm/address_space.h"
#include "src/vm/machine.h"

namespace fbufs {

namespace {
// Effective low-level protection for an entry: copy-on-write pages are
// entered read-only so stores trap.
Prot PmapProt(const VmEntry& e) { return e.cow && CanWrite(e.prot) ? Prot::kRead : e.prot; }
}  // namespace

Status VmManager::MaterializeFrame(Domain& d, Vpn vpn, VmEntry& entry, bool clear) {
  (void)d;
  (void)vpn;
  auto frame = machine_->pmem().Allocate(clear);
  if (!frame.has_value()) {
    return Status::kNoMemory;
  }
  entry.frame = *frame;
  return Status::kOk;
}

Status VmManager::MapAnonymous(Domain& d, VirtAddr base, std::uint64_t pages, Prot prot,
                               bool eager, bool clear, ChargeMode mode) {
  SimClock& clock = machine_->clock();
  const CostParams& c = machine_->costs();
  LayerScope layer(machine_->attribution(), CostDomain::kVm);
  ActorScope actor(machine_->attribution(), d.id());
  for (std::uint64_t i = 0; i < pages; ++i) {
    const Vpn vpn = PageOf(base) + i;
    assert(d.FindEntry(vpn) == nullptr && "mapping over an existing page");
    VmEntry e;
    e.prot = prot;
    e.zero_fill = clear;
    if (mode == ChargeMode::kGeneral) {
      clock.Advance(c.alloc_page_kernel_ns);
    }
    if (eager) {
      const Status st = MaterializeFrame(d, vpn, e, clear);
      if (!Ok(st)) {
        // Partial failure: give back the pages this call already mapped, or
        // their frames stay pinned with no fbuf/buffer ever created.
        Unmap(d, base, i, mode);
        return st;
      }
      d.pmap().Set(vpn, e.frame, PmapProt(e));
      e.pmap_valid = true;
      clock.Advance(c.pt_update_ns);
    }
    d.InsertEntry(vpn, e);
  }
  return Status::kOk;
}

Status VmManager::MapFrame(Domain& d, Vpn vpn, FrameId frame, Prot prot, ChargeMode mode) {
  SimClock& clock = machine_->clock();
  const CostParams& c = machine_->costs();
  LayerScope layer(machine_->attribution(), CostDomain::kVm);
  ActorScope actor(machine_->attribution(), d.id());
  TraceSpan span(machine_->trace(), TraceCategory::kVm, "map-frame", d.id(), AddrOf(vpn));
  machine_->pmem().Ref(frame);
  VmEntry* existing = d.FindEntry(vpn);
  if (existing != nullptr) {
    if (existing->frame != kInvalidFrame) {
      machine_->pmem().Unref(existing->frame);
    }
    // Replacing a live translation requires a consistency action.
    d.tlb().FlushPage(vpn);
  }
  VmEntry e;
  e.prot = prot;
  e.frame = frame;
  e.zero_fill = false;
  e.pmap_valid = true;
  d.InsertEntry(vpn, e);
  d.pmap().Set(vpn, frame, prot);
  clock.Advance(c.pt_update_ns);
  if (mode == ChargeMode::kGeneral) {
    clock.Advance(c.remap_page_overhead_ns / 2);
  }
  return Status::kOk;
}

Status VmManager::Unmap(Domain& d, VirtAddr base, std::uint64_t pages, ChargeMode mode) {
  SimClock& clock = machine_->clock();
  const CostParams& c = machine_->costs();
  LayerScope layer(machine_->attribution(), CostDomain::kVm);
  ActorScope actor(machine_->attribution(), d.id());
  for (std::uint64_t i = 0; i < pages; ++i) {
    const Vpn vpn = PageOf(base) + i;
    VmEntry* e = d.FindEntry(vpn);
    if (e == nullptr) {
      continue;
    }
    if (e->pmap_valid) {
      d.pmap().Remove(vpn);
      clock.Advance(c.pt_update_ns);
      d.tlb().FlushPage(vpn);
    }
    if (e->frame != kInvalidFrame) {
      machine_->pmem().Unref(e->frame);
    }
    if (mode == ChargeMode::kGeneral) {
      clock.Advance(c.remap_page_overhead_ns / 2);
    }
    d.EraseEntry(vpn);
  }
  return Status::kOk;
}

Status VmManager::Protect(Domain& d, VirtAddr base, std::uint64_t pages, Prot prot,
                          bool trap_inclusive) {
  SimClock& clock = machine_->clock();
  const CostParams& c = machine_->costs();
  LayerScope layer(machine_->attribution(), CostDomain::kVm);
  ActorScope actor(machine_->attribution(), d.id());
  machine_->trace().Emit(TraceCategory::kVm, "protect", d.id(), base);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const Vpn vpn = PageOf(base) + i;
    VmEntry* e = d.FindEntry(vpn);
    if (e == nullptr) {
      return Status::kNotMapped;
    }
    e->prot = prot;
    if (e->pmap_valid) {
      d.pmap().SetProt(vpn, PmapProt(*e));
    }
    if (trap_inclusive) {
      // One inclusive trap covers the pt update and the TLB invalidation.
      clock.Advance(c.prot_change_ns);
      machine_->stats().tlb_flushes++;
      d.tlb().InvalidatePage(vpn);
    } else {
      if (e->pmap_valid) {
        clock.Advance(c.pt_update_ns);
      }
      d.tlb().FlushPage(vpn);
    }
  }
  return Status::kOk;
}

Status VmManager::ShareCow(Domain& src, VirtAddr src_base, Domain& dst, VirtAddr dst_base,
                           std::uint64_t pages) {
  for (std::uint64_t i = 0; i < pages; ++i) {
    const Vpn svpn = PageOf(src_base) + i;
    const Vpn dvpn = PageOf(dst_base) + i;
    VmEntry* se = src.FindEntry(svpn);
    if (se == nullptr) {
      return Status::kNotMapped;
    }
    if (se->frame == kInvalidFrame) {
      // Never touched: receiver gets its own zero-fill page; nothing shared.
      VmEntry de;
      de.prot = Prot::kReadWrite;
      de.zero_fill = se->zero_fill;
      dst.InsertEntry(dvpn, de);
      continue;
    }
    // Lazy strategy: mark both machine-independent entries COW and drop the
    // low-level state; the per-page cost is deferred to the two faults.
    se->cow = true;
    if (se->pmap_valid) {
      src.pmap().Remove(svpn);
      se->pmap_valid = false;
    }
    src.tlb().InvalidatePage(svpn);
    machine_->pmem().Ref(se->frame);
    VmEntry de;
    de.prot = Prot::kReadWrite;
    de.frame = se->frame;
    de.cow = true;
    de.zero_fill = false;
    VmEntry* old = dst.FindEntry(dvpn);
    if (old != nullptr) {
      if (old->frame != kInvalidFrame) {
        machine_->pmem().Unref(old->frame);
      }
      if (old->pmap_valid) {
        dst.pmap().Remove(dvpn);
      }
      dst.tlb().InvalidatePage(dvpn);
    }
    dst.InsertEntry(dvpn, de);
  }
  return Status::kOk;
}

Status VmManager::Remap(Domain& src, VirtAddr src_base, Domain& dst, VirtAddr dst_base,
                        std::uint64_t pages) {
  SimClock& clock = machine_->clock();
  const CostParams& c = machine_->costs();
  LayerScope layer(machine_->attribution(), CostDomain::kVm);
  ActorScope actor(machine_->attribution(), dst.id());
  for (std::uint64_t i = 0; i < pages; ++i) {
    const Vpn svpn = PageOf(src_base) + i;
    const Vpn dvpn = PageOf(dst_base) + i;
    VmEntry* se = src.FindEntry(svpn);
    if (se == nullptr) {
      return Status::kNotMapped;
    }
    VmEntry moved = *se;
    moved.cow = false;
    // Remove from the source: pt update + TLB consistency + two-level
    // bookkeeping (this is the general-purpose path the paper's §2.2
    // measures).
    if (se->pmap_valid) {
      src.pmap().Remove(svpn);
      clock.Advance(c.pt_update_ns);
      src.tlb().FlushPage(svpn);
    }
    src.EraseEntry(svpn);
    clock.Advance(c.remap_page_overhead_ns);
    // Enter into the destination.
    assert(dst.FindEntry(dvpn) == nullptr && "remap target already mapped");
    if (moved.frame != kInvalidFrame) {
      dst.pmap().Set(dvpn, moved.frame, PmapProt(moved));
      moved.pmap_valid = true;
      clock.Advance(c.pt_update_ns);
    } else {
      moved.pmap_valid = false;
    }
    dst.InsertEntry(dvpn, moved);
  }
  return Status::kOk;
}

Status VmManager::HandleFault(Domain& d, Vpn vpn, Access access) {
  SimClock& clock = machine_->clock();
  const CostParams& c = machine_->costs();
  SimStats& stats = machine_->stats();
  LayerScope layer(machine_->attribution(), CostDomain::kVm);
  ActorScope actor(machine_->attribution(), d.id());
  TraceSpan span(machine_->trace(), TraceCategory::kVm, "vm-fault", d.id(), AddrOf(vpn));
  VmEntry* e = d.FindEntry(vpn);

  // The fbuf region has its own fault semantics (absent-data reads, lazy
  // on-demand mapping, page-in of swapped fbuf pages): hand the hook every
  // region fault it can possibly resolve.
  if (InFbufRegion(AddrOf(vpn)) && fbuf_hook_ &&
      (e == nullptr || !Allows(e->prot, access) || e->frame == kInvalidFrame)) {
    return fbuf_hook_(d, vpn, access);
  }
  if (e == nullptr) {
    stats.prot_faults++;
    return Status::kNotMapped;
  }

  if (!Allows(e->prot, access)) {
    stats.prot_faults++;
    return Status::kProtection;
  }

  // Permitted by the machine-independent map: a resolvable fault.
  if (access == Access::kWrite && e->cow && e->frame != kInvalidFrame) {
    machine_->trace().Emit(TraceCategory::kVm, "fault-cow-write", d.id(), AddrOf(vpn));
    clock.Advance(c.page_fault_ns);
    stats.page_faults++;
    if (machine_->pmem().RefCount(e->frame) > 1) {
      // Still shared: copy the page.
      auto copy = machine_->pmem().Allocate(/*clear=*/false);
      if (!copy.has_value()) {
        return Status::kNoMemory;
      }
      std::memcpy(machine_->pmem().Data(*copy), machine_->pmem().Data(e->frame), kPageSize);
      clock.Advance(c.CopyCost(kPageSize));
      stats.bytes_copied += kPageSize;
      machine_->pmem().Unref(e->frame);
      e->frame = *copy;
    }
    // Sole owner (again): write access can simply be restored.
    e->cow = false;
    d.pmap().Set(vpn, e->frame, e->prot);
    e->pmap_valid = true;
    clock.Advance(c.pt_update_ns);
    return Status::kOk;
  }

  if (e->frame == kInvalidFrame) {
    // Zero-fill: first touch materializes the page.
    machine_->trace().Emit(TraceCategory::kVm, "fault-zero-fill", d.id(), AddrOf(vpn));
    clock.Advance(c.page_fault_ns);
    stats.page_faults++;
    const Status st = MaterializeFrame(d, vpn, *e, e->zero_fill);
    if (!Ok(st)) {
      return st;
    }
    d.pmap().Set(vpn, e->frame, PmapProt(*e));
    e->pmap_valid = true;
    clock.Advance(c.pt_update_ns);
    return Status::kOk;
  }

  if (!e->pmap_valid) {
    // Lazily invalidated low-level entry (COW receiver's first access).
    clock.Advance(c.page_fault_ns);
    stats.page_faults++;
    d.pmap().Set(vpn, e->frame, PmapProt(*e));
    e->pmap_valid = true;
    clock.Advance(c.pt_update_ns);
    return Status::kOk;
  }

  // pmap entry exists and permits the access but the TLB said otherwise:
  // stale entry; nothing to do (caller invalidated it).
  return Status::kOk;
}

}  // namespace fbufs
