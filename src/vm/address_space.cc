#include "src/vm/address_space.h"

#include <cassert>

namespace fbufs {

std::optional<VirtAddr> AddressSpace::Allocate(std::uint64_t pages) {
  const std::uint64_t bytes = pages * kPageSize;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= bytes) {
      const VirtAddr base = it->first;
      const std::uint64_t remaining = it->second - bytes;
      free_.erase(it);
      if (remaining > 0) {
        free_[base + bytes] = remaining;
      }
      return base;
    }
  }
  return std::nullopt;
}

void AddressSpace::Free(VirtAddr base, std::uint64_t pages) {
  const std::uint64_t bytes = pages * kPageSize;
  assert(bytes > 0);
  auto [it, inserted] = free_.emplace(base, bytes);
  assert(inserted && "double free of virtual range");
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_.erase(it);
    }
  }
}

std::uint64_t AddressSpace::free_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [base, len] : free_) {
    total += len;
  }
  return total;
}

}  // namespace fbufs
