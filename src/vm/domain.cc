#include "src/vm/domain.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/vm/machine.h"

namespace fbufs {

Domain::Domain(Machine* machine, DomainId id, std::string name, bool trusted)
    : machine_(machine),
      id_(id),
      name_(std::move(name)),
      trusted_(trusted),
      pmap_(&machine->stats()),
      tlb_(machine->tlb_entries(), &machine->clock(), &machine->costs(), &machine->stats()) {}

Status Domain::Translate(Vpn vpn, Access access, FrameId* frame) {
  // TLB refills and fault handling are VM-layer work no matter who touched
  // the address.
  LayerScope layer(machine_->attribution(), CostDomain::kVm);
  ActorScope actor(machine_->attribution(), id_);
  // At most one fault retry: a successful fault installs a pmap entry the
  // refill can use; a second failure is a genuine violation.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const PmapEntry* pe = tlb_.Translate(vpn, pmap_);
    if (pe != nullptr && Allows(pe->prot, access)) {
      *frame = pe->frame;
      return Status::kOk;
    }
    if (pe != nullptr) {
      // Stale or insufficient rights in the TLB; drop before the fault path.
      tlb_.InvalidatePage(vpn);
    }
    const Status st = machine_->vm().HandleFault(*this, vpn, access);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kProtection;
}

Status Domain::ReadBytes(VirtAddr addr, void* dst, std::size_t len) {
  Attribution& attr = machine_->attribution();
  ActorScope actor(attr, id_);
  // Data touching is application work unless an enclosing layer (msg, proto)
  // already claimed it.
  LayerScope layer(attr, attr.CurrentLayer() == CostDomain::kOther ? CostDomain::kApp
                                                                   : attr.CurrentLayer());
  auto* out = static_cast<std::uint8_t*>(dst);
  while (len > 0) {
    const Vpn vpn = PageOf(addr);
    const std::uint64_t off = PageOffset(addr);
    const std::size_t chunk = static_cast<std::size_t>(std::min<std::uint64_t>(len, kPageSize - off));
    FrameId frame = kInvalidFrame;
    const Status st = Translate(vpn, Access::kRead, &frame);
    if (!Ok(st)) {
      return st;
    }
    std::memcpy(out, machine_->pmem().Data(frame) + off, chunk);
    machine_->clock().Advance(((chunk + 3) / 4) * machine_->costs().mem_word_ns);
    out += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::kOk;
}

Status Domain::WriteBytes(VirtAddr addr, const void* src, std::size_t len) {
  Attribution& attr = machine_->attribution();
  ActorScope actor(attr, id_);
  LayerScope layer(attr, attr.CurrentLayer() == CostDomain::kOther ? CostDomain::kApp
                                                                   : attr.CurrentLayer());
  const auto* in = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    const Vpn vpn = PageOf(addr);
    const std::uint64_t off = PageOffset(addr);
    const std::size_t chunk = static_cast<std::size_t>(std::min<std::uint64_t>(len, kPageSize - off));
    FrameId frame = kInvalidFrame;
    const Status st = Translate(vpn, Access::kWrite, &frame);
    if (!Ok(st)) {
      return st;
    }
    std::memcpy(machine_->pmem().Data(frame) + off, in, chunk);
    machine_->clock().Advance(((chunk + 3) / 4) * machine_->costs().mem_word_ns);
    in += chunk;
    addr += chunk;
    len -= chunk;
  }
  return Status::kOk;
}

Status Domain::ReadWord(VirtAddr addr, std::uint32_t* out) {
  return ReadBytes(addr, out, sizeof(*out));
}

Status Domain::WriteWord(VirtAddr addr, std::uint32_t value) {
  return WriteBytes(addr, &value, sizeof(value));
}

Status Domain::TouchRange(VirtAddr addr, std::size_t len, Access access) {
  const VirtAddr end = addr + len;
  for (VirtAddr a = addr; a < end; a = (PageOf(a) + 1) << kPageShift) {
    if (access == Access::kRead) {
      std::uint32_t scratch = 0;
      const Status st = ReadWord(a, &scratch);
      if (!Ok(st)) {
        return st;
      }
    } else {
      const Status st = WriteWord(a, 0xfb0fb0f5u);
      if (!Ok(st)) {
        return st;
      }
    }
  }
  return Status::kOk;
}

FrameId Domain::DebugFrame(Vpn vpn) const {
  const VmEntry* e = FindEntry(vpn);
  return e == nullptr ? kInvalidFrame : e->frame;
}

}  // namespace fbufs
