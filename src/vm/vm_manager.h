// VM manager: the kernel's mapping operations and fault handler.
//
// All mapping changes go through here so that costs are charged exactly where
// the paper's base mechanism pays them: per-page physical page-table updates,
// per-page TLB/cache consistency actions, page faults, page clears, and the
// extra bookkeeping of general-purpose (non-fbuf) paths.
#ifndef SRC_VM_VM_MANAGER_H_
#define SRC_VM_VM_MANAGER_H_

#include <cstdint>
#include <functional>

#include "src/sim/phys_mem.h"
#include "src/vm/types.h"

namespace fbufs {

class Machine;
class Domain;
struct VmEntry;

// How an operation is charged.
//  kGeneral:     full general-purpose VM path — charges machine-independent
//                map bookkeeping on top of page-table work (used by ordinary
//                anonymous memory and the remap/copy/COW baselines).
//  kStreamlined: the fbuf region's restricted path — same virtual address in
//                every domain, dedicated allocator — which skips the
//                general-purpose bookkeeping (this is the paper's
//                "restricted dynamic read sharing" optimization).
enum class ChargeMode { kGeneral, kStreamlined };

class VmManager {
 public:
  explicit VmManager(Machine* machine) : machine_(machine) {}

  // Maps |pages| anonymous zero-fill pages at |base|. With |eager| the frames
  // are materialized and entered now (allocation cost paid up front); lazily
  // otherwise (first touch faults). |clear| controls security clearing.
  Status MapAnonymous(Domain& d, VirtAddr base, std::uint64_t pages, Prot prot, bool eager,
                      bool clear, ChargeMode mode);

  // Maps an existing frame (shared memory) at |vpn| with |prot|; takes a
  // reference on the frame. If the domain already had a mapping there it is
  // replaced (old frame unreferenced, TLB entry flushed).
  Status MapFrame(Domain& d, Vpn vpn, FrameId frame, Prot prot, ChargeMode mode);

  // Removes mappings for [base, base + pages*kPageSize). Frames are
  // unreferenced; pmap entries removed and TLBs kept consistent.
  Status Unmap(Domain& d, VirtAddr base, std::uint64_t pages, ChargeMode mode);

  // Changes protection. With |trap_inclusive| the cost charged is the single
  // inclusive "raise/lower protection" trap (prot_change_ns per page), which
  // already covers the pt update and TLB invalidation — this is the operation
  // non-volatile fbufs pay twice per transfer. Otherwise pt-update + flush
  // costs are charged individually.
  Status Protect(Domain& d, VirtAddr base, std::uint64_t pages, Prot prot, bool trap_inclusive);

  // Mach-style copy-on-write share of [src_base, +pages) into dst at
  // dst_base. Lazy: no per-page cost now; both sides' low-level entries are
  // invalidated, so the next access in either domain faults (the paper's
  // "two page faults for each transfer").
  Status ShareCow(Domain& src, VirtAddr src_base, Domain& dst, VirtAddr dst_base,
                  std::uint64_t pages);

  // DASH-style remap with move semantics: the pages leave |src| and appear in
  // |dst| at |dst_base|. Charges the general remap path per page (pt work on
  // both sides plus two-level bookkeeping).
  Status Remap(Domain& src, VirtAddr src_base, Domain& dst, VirtAddr dst_base,
               std::uint64_t pages);

  // The fault path: called by Domain::Translate when the TLB refill finds no
  // (or an insufficient) pmap entry. Resolves zero-fill, COW, lazy-pmap and
  // fbuf-region faults; returns kProtection / kNotMapped for true violations.
  Status HandleFault(Domain& d, Vpn vpn, Access access);

  // The fbuf layer registers this to give reads of unmapped fbuf-region pages
  // the paper's "absent data leaf" semantics.
  using FbufFaultHook = std::function<Status(Domain&, Vpn, Access)>;
  void set_fbuf_fault_hook(FbufFaultHook hook) { fbuf_hook_ = std::move(hook); }

 private:
  Status MaterializeFrame(Domain& d, Vpn vpn, VmEntry& entry, bool clear);

  Machine* machine_;
  FbufFaultHook fbuf_hook_;
};

}  // namespace fbufs

#endif  // SRC_VM_VM_MANAGER_H_
