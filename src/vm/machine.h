// Machine: one simulated shared-memory host.
//
// Owns the CPU lanes (each with its own clock), cost model, statistics,
// physical memory, the protection domains and the VM manager. Higher layers
// (fbuf system, IPC, devices) attach to a Machine.
//
// Multicore model: a Machine has num_cpus CPU lanes. Each lane is a
// schedulable Resource with its own monotonic SimClock — lanes overlap in
// simulated time, work on one lane is serial. Exactly one lane is *active*
// at any moment of simulation (the simulator itself is single-threaded);
// clock(), trace timestamps and physical-memory charges all route to the
// active lane. Code that runs work on a specific CPU brackets it with
// CpuScope (or lets a DispatchQueue's context hooks do it). With the default
// num_cpus == 1 nothing ever switches, lane 0's clock is the machine clock,
// and every pre-multicore number is reproduced bit for bit.
#ifndef SRC_VM_MACHINE_H_
#define SRC_VM_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/attribution.h"
#include "src/obs/metrics.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/dispatch.h"
#include "src/sim/phys_mem.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/vm/domain.h"
#include "src/vm/types.h"
#include "src/vm/vm_manager.h"

namespace fbufs {

class LifecycleTracker;

struct MachineConfig {
  std::uint32_t phys_frames = 16384;  // 64 MB of simulated physical memory
  std::uint32_t tlb_entries = Tlb::kDefaultEntries;
  CostParams costs = CostParams::DecStation5000();
  std::string name = "host";
  // Number of CPU lanes. 1 preserves the single-clock model exactly.
  std::uint32_t num_cpus = 1;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = MachineConfig());

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // The active CPU lane's clock. With one lane this is *the* machine clock;
  // with several it is the timeline of whichever lane is currently running.
  SimClock& clock() { return *active_clock_; }
  const SimClock& clock() const { return *active_clock_; }

  std::uint32_t num_cpus() const { return static_cast<std::uint32_t>(cpus_.size()); }
  CpuLane& cpu_lane(std::uint32_t i) { return *cpus_[i]; }
  const CpuLane& cpu_lane(std::uint32_t i) const { return *cpus_[i]; }
  SimClock& cpu_clock(std::uint32_t i) { return cpus_[i]->clock(); }
  const SimClock& cpu_clock(std::uint32_t i) const { return cpus_[i]->clock(); }
  std::uint32_t active_cpu() const { return active_cpu_; }

  // Switches the active lane: subsequent clock()/trace/pmem charges land on
  // lane |i| and attribution cells gain its cpu coordinate. Prefer CpuScope.
  void SetActiveCpu(std::uint32_t i);

  // The machine-wide elapsed time: the furthest lane's clock. Equals
  // clock().Now() on a single-CPU machine.
  SimTime ElapsedNs() const;

  const CostParams& costs() const { return costs_; }
  CostParams& mutable_costs() { return costs_; }
  SimStats& stats() { return stats_; }
  PhysMem& pmem() { return pmem_; }
  VmManager& vm() { return vm_; }
  Trace& trace() { return trace_; }
  Attribution& attribution() { return attr_; }
  const Attribution& attribution() const { return attr_; }

  // Optional metrics sink; null until a bench or test attaches one. Hot
  // paths guard every observation with this null check.
  MetricsRegistry* metrics() { return metrics_; }
  void AttachMetrics(MetricsRegistry* m) { metrics_ = m; }

  // Optional fbuf provenance tracker (src/obs/lifecycle.h); same attach
  // discipline as metrics — null until a bench, campaign or test opts in.
  LifecycleTracker* lifecycle() { return lifecycle_; }
  void AttachLifecycle(LifecycleTracker* t) { lifecycle_ = t; }

  const std::string& name() const { return config_.name; }
  std::uint32_t tlb_entries() const { return config_.tlb_entries; }

  // Domain 0 is the kernel (created at construction, trusted).
  Domain& kernel() { return *domains_[kKernelDomainId]; }

  // Creates a user protection domain. Pointers remain valid for the life of
  // the Machine (dead domains are kept as tombstones).
  Domain* CreateDomain(const std::string& name, bool trusted = false);

  // nullptr if the id is unknown; dead domains are still returned (check
  // alive()).
  Domain* domain(DomainId id);

  // Tears a domain down: runs termination hooks (fbuf cleanup), then unmaps
  // everything and marks the domain dead. Models both orderly exit and crash
  // (the hooks see which references were never relinquished).
  void DestroyDomain(DomainId id);

  // Hooks run at the start of DestroyDomain, before mappings are torn down.
  using TerminationHook = std::function<void(Domain&)>;
  void AddTerminationHook(TerminationHook hook) {
    termination_hooks_.push_back(std::move(hook));
  }

  std::size_t domain_count() const { return domains_.size(); }

 private:
  MachineConfig config_;
  Attribution attr_;
  // Lanes precede every member that captures a clock pointer (trace_, pmem_).
  std::vector<std::unique_ptr<CpuLane>> cpus_;
  std::uint32_t active_cpu_ = 0;
  SimClock* active_clock_ = nullptr;
  Trace trace_;
  MetricsRegistry* metrics_ = nullptr;
  LifecycleTracker* lifecycle_ = nullptr;
  CostParams costs_;
  SimStats stats_;
  PhysMem pmem_;
  VmManager vm_;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::vector<TerminationHook> termination_hooks_;
};

// RAII active-CPU switch: runs the enclosed work on lane |cpu|, restores the
// previously active lane on exit. No-cost when the lane is already active.
class CpuScope {
 public:
  CpuScope(Machine& m, std::uint32_t cpu) : m_(&m), prev_(m.active_cpu()) {
    if (cpu != prev_) {
      m_->SetActiveCpu(cpu);
    }
  }
  ~CpuScope() {
    if (m_->active_cpu() != prev_) {
      m_->SetActiveCpu(prev_);
    }
  }
  CpuScope(const CpuScope&) = delete;
  CpuScope& operator=(const CpuScope&) = delete;

 private:
  Machine* m_;
  std::uint32_t prev_;
};

}  // namespace fbufs

#endif  // SRC_VM_MACHINE_H_
