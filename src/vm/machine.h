// Machine: one simulated shared-memory host.
//
// Owns the clock, cost model, statistics, physical memory, the protection
// domains and the VM manager. Higher layers (fbuf system, IPC, devices)
// attach to a Machine.
#ifndef SRC_VM_MACHINE_H_
#define SRC_VM_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/attribution.h"
#include "src/obs/metrics.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/phys_mem.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/vm/domain.h"
#include "src/vm/types.h"
#include "src/vm/vm_manager.h"

namespace fbufs {

struct MachineConfig {
  std::uint32_t phys_frames = 16384;  // 64 MB of simulated physical memory
  std::uint32_t tlb_entries = Tlb::kDefaultEntries;
  CostParams costs = CostParams::DecStation5000();
  std::string name = "host";
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = MachineConfig());

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  SimClock& clock() { return clock_; }
  const CostParams& costs() const { return costs_; }
  CostParams& mutable_costs() { return costs_; }
  SimStats& stats() { return stats_; }
  PhysMem& pmem() { return pmem_; }
  VmManager& vm() { return vm_; }
  Trace& trace() { return trace_; }
  Attribution& attribution() { return attr_; }
  const Attribution& attribution() const { return attr_; }

  // Optional metrics sink; null until a bench or test attaches one. Hot
  // paths guard every observation with this null check.
  MetricsRegistry* metrics() { return metrics_; }
  void AttachMetrics(MetricsRegistry* m) { metrics_ = m; }

  const std::string& name() const { return config_.name; }
  std::uint32_t tlb_entries() const { return config_.tlb_entries; }

  // Domain 0 is the kernel (created at construction, trusted).
  Domain& kernel() { return *domains_[kKernelDomainId]; }

  // Creates a user protection domain. Pointers remain valid for the life of
  // the Machine (dead domains are kept as tombstones).
  Domain* CreateDomain(const std::string& name, bool trusted = false);

  // nullptr if the id is unknown; dead domains are still returned (check
  // alive()).
  Domain* domain(DomainId id);

  // Tears a domain down: runs termination hooks (fbuf cleanup), then unmaps
  // everything and marks the domain dead. Models both orderly exit and crash
  // (the hooks see which references were never relinquished).
  void DestroyDomain(DomainId id);

  // Hooks run at the start of DestroyDomain, before mappings are torn down.
  using TerminationHook = std::function<void(Domain&)>;
  void AddTerminationHook(TerminationHook hook) {
    termination_hooks_.push_back(std::move(hook));
  }

  std::size_t domain_count() const { return domains_.size(); }

 private:
  MachineConfig config_;
  SimClock clock_;
  Attribution attr_;
  Trace trace_{&clock_};
  MetricsRegistry* metrics_ = nullptr;
  CostParams costs_;
  SimStats stats_;
  PhysMem pmem_;
  VmManager vm_;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::vector<TerminationHook> termination_hooks_;
};

}  // namespace fbufs

#endif  // SRC_VM_MACHINE_H_
