#include "src/vm/types.h"

namespace fbufs {

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kNoMemory:
      return "no-memory";
    case Status::kNoVirtualSpace:
      return "no-virtual-space";
    case Status::kProtection:
      return "protection-violation";
    case Status::kNotMapped:
      return "not-mapped";
    case Status::kInvalidArgument:
      return "invalid-argument";
    case Status::kQuotaExceeded:
      return "quota-exceeded";
    case Status::kBadPointer:
      return "bad-pointer";
    case Status::kCycle:
      return "cycle";
    case Status::kNotOwner:
      return "not-owner";
    case Status::kExhausted:
      return "exhausted";
    case Status::kNotFound:
      return "not-found";
    case Status::kTruncated:
      return "truncated";
    case Status::kBackpressure:
      return "backpressure";
    case Status::kCongestion:
      return "congestion";
    case Status::kCreditExhausted:
      return "credit-exhausted";
  }
  return "unknown";
}

}  // namespace fbufs
