// Virtual address range allocator for one protection domain.
//
// Tracks which page-aligned ranges of the private part of a domain's address
// space are reserved. The globally shared fbuf region is carved out at
// construction and never handed to private allocations; its internal
// sub-allocation (chunks) is managed by the fbuf layer.
#ifndef SRC_VM_ADDRESS_SPACE_H_
#define SRC_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/vm/types.h"

namespace fbufs {

// Address-space layout shared by all domains.
//
//   [kPrivateBase, kPrivateEnd)    private mappings (heap, message buffers)
//   [kFbufRegionBase, +size)       globally shared fbuf region
constexpr VirtAddr kPrivateBase = 0x0000'0000'0001'0000ULL;
constexpr VirtAddr kPrivateEnd = 0x0000'0000'4000'0000ULL;   // 1 GB of private VA
constexpr VirtAddr kFbufRegionBase = 0x0000'0000'8000'0000ULL;
constexpr std::uint64_t kFbufRegionPages = 64 * 1024;        // 256 MB region
constexpr VirtAddr kFbufRegionEnd = kFbufRegionBase + kFbufRegionPages * kPageSize;

inline bool InFbufRegion(VirtAddr a) { return a >= kFbufRegionBase && a < kFbufRegionEnd; }

class AddressSpace {
 public:
  // Default: the private range of a domain's address space.
  AddressSpace() { free_[kPrivateBase] = kPrivateEnd - kPrivateBase; }

  // Empty allocator to be seeded with Extend() — used by fbuf allocators to
  // manage the virtual space of the chunks they own.
  struct Empty {};
  explicit AddressSpace(Empty) {}

  // Adds [base, base + pages*kPageSize) to the pool.
  void Extend(VirtAddr base, std::uint64_t pages) { Free(base, pages); }

  // First-fit allocation of |pages| contiguous pages from the private range.
  std::optional<VirtAddr> Allocate(std::uint64_t pages);

  // Returns a previously allocated range. The caller passes exactly the
  // (base, pages) it got from Allocate.
  void Free(VirtAddr base, std::uint64_t pages);

  std::uint64_t free_bytes() const;

 private:
  // start -> length of free extents, coalesced.
  std::map<VirtAddr, std::uint64_t> free_;
};

}  // namespace fbufs

#endif  // SRC_VM_ADDRESS_SPACE_H_
