// Machine-dependent ("physical") page table for one protection domain.
//
// This is the lower level of the paper's two-level VM system: the structure
// the hardware (here: the simulated TLB refill handler) consults. Entries are
// installed/removed/changed by the VM manager, which charges the page-table
// update cost; the pmap itself only counts operations.
#ifndef SRC_VM_PMAP_H_
#define SRC_VM_PMAP_H_

#include <cstdint>
#include <unordered_map>

#include "src/sim/phys_mem.h"
#include "src/sim/stats.h"
#include "src/vm/types.h"

namespace fbufs {

struct PmapEntry {
  FrameId frame = kInvalidFrame;
  Prot prot = Prot::kNone;
};

class Pmap {
 public:
  explicit Pmap(SimStats* stats) : stats_(stats) {}

  // Installs or replaces the entry for |vpn|. Counts one pt update.
  void Set(Vpn vpn, FrameId frame, Prot prot) {
    entries_[vpn] = PmapEntry{frame, prot};
    stats_->pt_updates++;
  }

  // Changes only the protection of an existing entry. Counts one pt update.
  // Returns false if there is no entry.
  bool SetProt(Vpn vpn, Prot prot) {
    auto it = entries_.find(vpn);
    if (it == entries_.end()) {
      return false;
    }
    it->second.prot = prot;
    stats_->pt_updates++;
    return true;
  }

  // Removes the entry for |vpn|. Counts one pt update if present.
  bool Remove(Vpn vpn) {
    if (entries_.erase(vpn) == 0) {
      return false;
    }
    stats_->pt_updates++;
    return true;
  }

  // Hardware-side lookup (used by the TLB refill handler). No cost, no count.
  const PmapEntry* Lookup(Vpn vpn) const {
    auto it = entries_.find(vpn);
    return it == entries_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  SimStats* stats_;
  std::unordered_map<Vpn, PmapEntry> entries_;
};

}  // namespace fbufs

#endif  // SRC_VM_PMAP_H_
