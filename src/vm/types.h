// Common virtual-memory types: addresses, protections, status codes.
#ifndef SRC_VM_TYPES_H_
#define SRC_VM_TYPES_H_

#include <cstdint>

#include "src/sim/cost_model.h"

namespace fbufs {

// A simulated virtual address. All domains share one 64-bit address-space
// layout (the fbuf region occupies the same range everywhere).
using VirtAddr = std::uint64_t;
// Virtual page number: VirtAddr >> kPageShift.
using Vpn = std::uint64_t;

using DomainId = std::uint32_t;
constexpr DomainId kKernelDomainId = 0;
constexpr DomainId kInvalidDomainId = static_cast<DomainId>(-1);

inline Vpn PageOf(VirtAddr addr) { return addr >> kPageShift; }
inline VirtAddr AddrOf(Vpn vpn) { return vpn << kPageShift; }
inline std::uint64_t PageOffset(VirtAddr addr) { return addr & (kPageSize - 1); }
inline std::uint64_t PagesFor(std::uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

// Page protection. Write implies the ability to store; read to load.
enum class Prot : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,  // write-only is representable but unused in practice
  kReadWrite = 3,
};

inline bool CanRead(Prot p) {
  return (static_cast<std::uint8_t>(p) & static_cast<std::uint8_t>(Prot::kRead)) != 0;
}
inline bool CanWrite(Prot p) {
  return (static_cast<std::uint8_t>(p) & static_cast<std::uint8_t>(Prot::kWrite)) != 0;
}

enum class Access : std::uint8_t { kRead, kWrite };

inline bool Allows(Prot p, Access a) {
  return a == Access::kRead ? CanRead(p) : CanWrite(p);
}

// Status codes. The simulator uses status returns (never exceptions) for
// recoverable conditions; programming errors assert.
enum class Status : std::uint8_t {
  kOk = 0,
  kNoMemory,        // physical memory exhausted
  kNoVirtualSpace,  // virtual address range exhausted
  kProtection,      // access violation (simulated SIGSEGV)
  kNotMapped,       // no mapping at the address
  kInvalidArgument,
  kQuotaExceeded,   // fbuf chunk quota hit
  kBadPointer,      // DAG pointer outside the fbuf region
  kCycle,           // DAG traversal found a cycle
  kNotOwner,        // operation requires fbuf ownership
  kExhausted,       // resource (port queue, window) exhausted
  kNotFound,
  kTruncated,       // reassembly/extract produced fewer bytes than asked
  kBackpressure,    // refused while the host sheds memory pressure
  kCongestion,      // congestion window closed (AIMD transport backed off)
  kCreditExhausted, // receiver-granted credits spent; await the next grant
};

const char* StatusName(Status s);

inline bool Ok(Status s) { return s == Status::kOk; }

}  // namespace fbufs

#endif  // SRC_VM_TYPES_H_
