#include "src/vm/machine.h"

#include <algorithm>
#include <cassert>

namespace fbufs {

namespace {

std::vector<std::unique_ptr<CpuLane>> MakeLanes(const MachineConfig& config) {
  const std::uint32_t n = std::max<std::uint32_t>(1, config.num_cpus);
  std::vector<std::unique_ptr<CpuLane>> lanes;
  lanes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // A single-CPU machine keeps the historical resource name "cpu/<host>";
    // multicore lanes are "cpu/<host>/<i>".
    std::string name = "cpu/" + config.name;
    if (n > 1) {
      name += "/" + std::to_string(i);
    }
    lanes.push_back(std::make_unique<CpuLane>(std::move(name), i));
  }
  return lanes;
}

}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      cpus_(MakeLanes(config)),
      active_clock_(&cpus_[0]->clock()),
      trace_(active_clock_),
      costs_(config.costs),
      pmem_(config.phys_frames, active_clock_, &costs_, &stats_),
      vm_(this) {
  // Attach the time-attribution profiler to every lane clock before any
  // charge can occur, so attr_.total() == sum of lane clocks holds for the
  // Machine's whole life (and per-lane conservation holds via the cpu
  // coordinate SetActiveCpu maintains).
  for (const auto& lane : cpus_) {
    lane->clock().SetChargeHook(&Attribution::ClockHook, &attr_);
  }
  domains_.push_back(std::make_unique<Domain>(this, kKernelDomainId, "kernel",
                                              /*trusted=*/true));
}

void Machine::SetActiveCpu(std::uint32_t i) {
  assert(i < cpus_.size() && "SetActiveCpu: no such lane");
  if (i == active_cpu_) {
    return;
  }
  active_cpu_ = i;
  active_clock_ = &cpus_[i]->clock();
  attr_.SetCpu(i);
  trace_.set_clock(active_clock_);
  pmem_.set_clock(active_clock_);
  // Domains cache the clock in their TLBs; keep them on the active lane.
  for (const auto& d : domains_) {
    if (d != nullptr) {
      d->tlb().set_clock(active_clock_);
    }
  }
}

SimTime Machine::ElapsedNs() const {
  SimTime t = 0;
  for (const auto& lane : cpus_) {
    t = std::max(t, lane->clock().Now());
  }
  return t;
}

Domain* Machine::CreateDomain(const std::string& name, bool trusted) {
  const DomainId id = static_cast<DomainId>(domains_.size());
  domains_.push_back(std::make_unique<Domain>(this, id, name, trusted));
  return domains_.back().get();
}

Domain* Machine::domain(DomainId id) {
  if (id >= domains_.size()) {
    return nullptr;
  }
  return domains_[id].get();
}

void Machine::DestroyDomain(DomainId id) {
  Domain* d = domain(id);
  assert(d != nullptr && d->alive() && "destroying unknown or dead domain");
  assert(id != kKernelDomainId && "the kernel does not terminate");
  for (const TerminationHook& hook : termination_hooks_) {
    hook(*d);
  }
  // Tear down whatever the hooks left behind (private memory, stray
  // mappings). No costs: the domain is gone; cleanup is kernel background
  // work and the paper does not account it.
  std::vector<Vpn> vpns;
  vpns.reserve(d->entries().size());
  for (const auto& [vpn, entry] : d->entries()) {
    vpns.push_back(vpn);
  }
  for (Vpn vpn : vpns) {
    VmEntry* e = d->FindEntry(vpn);
    if (e != nullptr && e->frame != kInvalidFrame) {
      pmem_.Unref(e->frame);
    }
    d->pmap().Remove(vpn);
    d->EraseEntry(vpn);
  }
  d->tlb().FlushAll();
  d->MarkDead();
}

}  // namespace fbufs
