#include "src/vm/machine.h"

#include <cassert>

namespace fbufs {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      costs_(config.costs),
      pmem_(config.phys_frames, &clock_, &costs_, &stats_),
      vm_(this) {
  // Attach the time-attribution profiler before any charge can occur, so
  // attr_.total() == clock_.Now() holds for the Machine's whole life.
  clock_.SetChargeHook(&Attribution::ClockHook, &attr_);
  domains_.push_back(std::make_unique<Domain>(this, kKernelDomainId, "kernel",
                                              /*trusted=*/true));
}

Domain* Machine::CreateDomain(const std::string& name, bool trusted) {
  const DomainId id = static_cast<DomainId>(domains_.size());
  domains_.push_back(std::make_unique<Domain>(this, id, name, trusted));
  return domains_.back().get();
}

Domain* Machine::domain(DomainId id) {
  if (id >= domains_.size()) {
    return nullptr;
  }
  return domains_[id].get();
}

void Machine::DestroyDomain(DomainId id) {
  Domain* d = domain(id);
  assert(d != nullptr && d->alive() && "destroying unknown or dead domain");
  assert(id != kKernelDomainId && "the kernel does not terminate");
  for (const TerminationHook& hook : termination_hooks_) {
    hook(*d);
  }
  // Tear down whatever the hooks left behind (private memory, stray
  // mappings). No costs: the domain is gone; cleanup is kernel background
  // work and the paper does not account it.
  std::vector<Vpn> vpns;
  vpns.reserve(d->entries().size());
  for (const auto& [vpn, entry] : d->entries()) {
    vpns.push_back(vpn);
  }
  for (Vpn vpn : vpns) {
    VmEntry* e = d->FindEntry(vpn);
    if (e != nullptr && e->frame != kInvalidFrame) {
      pmem_.Unref(e->frame);
    }
    d->pmap().Remove(vpn);
    d->EraseEntry(vpn);
  }
  d->tlb().FlushAll();
  d->MarkDead();
}

}  // namespace fbufs
