// Two DecStations connected by a null modem between their Osiris boards:
// the paper's end-to-end UDP/IP experiment (Figures 5 and 6, and the §4 CPU
// load measurements).
//
// Each host is a full simulated machine (own clock, VM, fbuf system, IPC,
// protocol stack, adapter). Data really crosses: PDU bytes are gathered
// from the sender's physical frames and scattered into receiver fbufs.
// Throughput and CPU load come from the pipeline of four serial resources:
// sender CPU, sender-side bus DMA, the wire, receiver-side bus DMA and
// receiver CPU — each modelled with its own busy-until timeline, CPU time
// being whatever the real protocol stack charges.
#ifndef SRC_NET_TESTBED_H_
#define SRC_NET_TESTBED_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/net/atm.h"
#include "src/net/driver.h"
#include "src/net/link.h"
#include "src/net/osiris.h"
#include "src/proto/ip.h"
#include "src/proto/loopback_stack.h"
#include "src/proto/test_protocols.h"
#include "src/proto/udp.h"

namespace fbufs {

// Where the stack's layers live (per host; both hosts are configured the
// same way, mirrored, as in the paper).
enum class StackPlacement {
  kKernelOnly,          // everything in the kernel (Fig 5 "kernel-kernel")
  kUserKernel,          // test protocol in a user domain ("user-user")
  kUserNetserverKernel  // UDP in a netserver domain ("user-netserver-user")
};

struct TestbedConfig {
  StackPlacement placement = StackPlacement::kUserKernel;
  std::uint64_t pdu_size = 16 * 1024;  // IP PDU (paper: 16 KB; 32 KB variant in §4)
  // Receiver-side reassembly buffers: cached per-VCI fbufs vs the uncached
  // fallback queue. Per the paper's footnote 5, uncached fbufs incur
  // additional cost only in the receiving host.
  bool cached = true;
  // Sender-side immutability: volatile vs secured-on-transfer. Non-volatile
  // fbufs cost only in the transmitting host (the receiver's originator is
  // the trusted kernel).
  bool volatile_fbufs = true;
  // Sender-side allocator caching (kept on even in the Figure 6
  // configuration; turn off to study a fully uncached sender).
  bool sender_cached = true;
  std::uint32_t window = 8;  // sliding-window flow control, in messages
  bool integrated = true;
  MachineConfig machine;     // cost model for both hosts
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  struct Result {
    double throughput_mbps = 0;
    double sender_cpu_load = 0;
    double receiver_cpu_load = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    SimTime elapsed_ns = 0;
  };

  // Streams |messages| test messages of |bytes| each from the sender's test
  // protocol to the receiver's sink. |warmup| extra messages are sent first
  // and excluded from the measurement (pipeline fill, cold fbuf caches).
  Result Run(std::uint64_t messages, std::uint64_t bytes, std::uint64_t warmup = 0);

  // One host: a complete machine with its protocol stack.
  struct Host {
    explicit Host(const TestbedConfig& config, bool is_sender);

    Machine machine;
    FbufSystem fsys;
    Rpc rpc;
    OsirisAdapter adapter;
    std::unique_ptr<ProtocolStack> stack;
    // Sender side uses source/udp/ip/driver; receiver driver/ip/udp/sink.
    std::unique_ptr<SourceProtocol> source;
    std::unique_ptr<UdpProtocol> udp;
    std::unique_ptr<IpProtocol> ip;
    std::unique_ptr<DriverProtocol> driver;
    std::unique_ptr<SinkProtocol> sink;
  };

  Host& sender() { return *sender_; }
  Host& receiver() { return *receiver_; }
  NullModemLink& link() { return link_; }

  static constexpr std::uint32_t kVci = 42;

 private:
  struct StagedPdu {
    std::vector<std::uint8_t> payload;
    SimTime ready = 0;
  };

  TestbedConfig config_;
  std::unique_ptr<Host> sender_;
  std::unique_ptr<Host> receiver_;
  NullModemLink link_;
  std::deque<StagedPdu> staged_;
  // Cell-level reassembly on the receiving adapter (single VCI in use).
  AtmReassembler reassembler_;
};

}  // namespace fbufs

#endif  // SRC_NET_TESTBED_H_
