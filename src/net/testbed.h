// DecStations connected by a null modem between their Osiris boards:
// the paper's end-to-end UDP/IP experiment (Figures 5 and 6, and the §4 CPU
// load measurements), generalized to many concurrent flows.
//
// Each host is a full simulated machine (own clock, VM, fbuf system, IPC,
// protocol stack, adapter). Data really crosses: PDU bytes are gathered
// from the sender's physical frames and scattered into receiver fbufs.
//
// Time is coordinated by a discrete-event engine (src/sim/event_loop.h):
// sends, DMA completions, wire deliveries and acknowledgements are scheduled
// events, and each serial resource in the pipeline — every sender CPU, each
// adapter's DMA engine per direction, the wire, the receiver CPU — is a
// Resource with its own utilization accounting. Throughput and CPU load
// fall out of the schedule. The engine supports multiple concurrent flows
// over distinct VCIs from multiple sender hosts into one receiving host
// (the paper's testbed is the one-flow special case).
#ifndef SRC_NET_TESTBED_H_
#define SRC_NET_TESTBED_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/net/atm.h"
#include "src/net/driver.h"
#include "src/net/link.h"
#include "src/net/osiris.h"
#include "src/proto/ip.h"
#include "src/proto/loopback_stack.h"
#include "src/proto/test_protocols.h"
#include "src/proto/udp.h"
#include "src/sim/event_loop.h"

namespace fbufs {

// Where the stack's layers live (per host; both hosts are configured the
// same way, mirrored, as in the paper).
enum class StackPlacement {
  kKernelOnly,          // everything in the kernel (Fig 5 "kernel-kernel")
  kUserKernel,          // test protocol in a user domain ("user-user")
  kUserNetserverKernel  // UDP in a netserver domain ("user-netserver-user")
};

struct TestbedConfig {
  StackPlacement placement = StackPlacement::kUserKernel;
  std::uint64_t pdu_size = 16 * 1024;  // IP PDU (paper: 16 KB; 32 KB variant in §4)
  // Receiver-side reassembly buffers: cached per-VCI fbufs vs the uncached
  // fallback queue. Per the paper's footnote 5, uncached fbufs incur
  // additional cost only in the receiving host.
  bool cached = true;
  // Sender-side immutability: volatile vs secured-on-transfer. Non-volatile
  // fbufs cost only in the transmitting host (the receiver's originator is
  // the trusted kernel).
  bool volatile_fbufs = true;
  // Sender-side allocator caching (kept on even in the Figure 6
  // configuration; turn off to study a fully uncached sender).
  bool sender_cached = true;
  std::uint32_t window = 8;  // sliding-window flow control, in messages
  bool integrated = true;
  MachineConfig machine;     // cost model for all hosts
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  struct Result {
    double throughput_mbps = 0;
    double sender_cpu_load = 0;
    double receiver_cpu_load = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    SimTime elapsed_ns = 0;
  };

  // Streams |messages| test messages of |bytes| each from the sender's test
  // protocol to the receiver's sink. |warmup| extra messages are sent first
  // and excluded from the measurement (pipeline fill, cold fbuf caches).
  // Shorthand for RunFlows with traffic on the built-in flow only.
  Result Run(std::uint64_t messages, std::uint64_t bytes, std::uint64_t warmup = 0);

  // --- Multi-flow operation ----------------------------------------------------
  // Adds a flow: a new sender host transmitting on |vci| to a new sink bound
  // at |port| on the receiving host. Flow 0 (VCI kVci, port 2000) exists
  // from construction. Returns the flow index.
  std::size_t AddFlow(std::uint32_t vci, std::uint16_t port);

  struct FlowTraffic {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t warmup = 0;
  };

  struct FlowResult {
    double throughput_mbps = 0;
    double sender_cpu_load = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    SimTime elapsed_ns = 0;
    bool failed = false;
  };

  struct ResourceUse {
    std::string name;
    SimTime busy_ns = 0;
    double utilization = 0;  // over the run's measurement window
  };

  struct MultiResult {
    std::vector<FlowResult> flows;
    double aggregate_mbps = 0;
    double receiver_cpu_load = 0;
    SimTime elapsed_ns = 0;
    std::vector<ResourceUse> resources;
    bool failed = false;
  };

  // Schedules traffic[i] on flow i (entries beyond the flow count are
  // ignored; zero-message entries leave a flow idle), runs the event loop to
  // quiescence, and reports per-flow and per-resource results.
  MultiResult RunFlows(const std::vector<FlowTraffic>& traffic);

  // One host: a complete machine with its protocol stack.
  struct Host {
    Host(const TestbedConfig& config, bool is_sender, std::uint32_t vci,
         std::uint16_t port, const std::string& name);

    Machine machine;
    FbufSystem fsys;
    Rpc rpc;
    OsirisAdapter adapter;
    Resource cpu;
    std::unique_ptr<ProtocolStack> stack;
    // Sender side uses source/udp/ip/driver; receiver driver/ip/udp/sink.
    std::unique_ptr<SourceProtocol> source;
    std::unique_ptr<UdpProtocol> udp;
    std::unique_ptr<IpProtocol> ip;
    std::unique_ptr<DriverProtocol> driver;
    std::unique_ptr<SinkProtocol> sink;
    std::uint32_t vci = 0;

    // PDUs handed to the adapter by the driver, awaiting DMA scheduling.
    struct StagedPdu {
      std::vector<std::uint8_t> payload;
      SimTime ready = 0;
    };
    std::deque<StagedPdu> staged;
  };

  Host& sender() { return *senders_[0]; }
  Host& sender(std::size_t flow) { return *senders_[flow]; }
  Host& receiver() { return *receiver_; }
  NullModemLink& link() { return link_; }
  EventLoop& loop() { return loop_; }
  std::size_t flow_count() const { return flows_.size(); }
  SinkProtocol& flow_sink(std::size_t flow) { return *flows_[flow].sink; }

  static constexpr std::uint32_t kVci = 42;

 private:
  // A unidirectional sender-host -> receiver-sink circuit.
  struct Flow {
    std::uint32_t vci = 0;
    std::uint16_t port = 0;
    std::size_t sender = 0;  // index into senders_ (one flow per sender host)
    SinkProtocol* sink = nullptr;
    AtmReassembler reassembler;
    // Receiver-side endpoint objects owned for flows beyond the first.
    std::unique_ptr<SinkProtocol> owned_sink;
  };

  // Per-flow state of one RunFlows invocation.
  struct FlowRun {
    FlowTraffic traffic;
    std::uint64_t total = 0;      // warmup + messages
    std::uint64_t next = 0;       // next message index to send
    std::uint64_t completed = 0;  // messages fully delivered
    std::vector<SimTime> ack_time;
    std::vector<bool> acked;
    std::vector<std::uint64_t> pdus_left;
    SimTime t0_tx = 0;
    SimTime t0_rx = 0;
    SimTime tx_end = 0;
    SimTime rx_end = 0;
    SimTime tx_busy = 0;
    SimTime rx_busy = 0;
    bool failed = false;
  };

  static void WireSender(Host* host);
  SimTime Key(SimTime t) const;
  void ScheduleSenderStep(std::size_t flow);
  void SenderStep(std::size_t flow);
  void SchedulePduPipeline(std::size_t flow, std::uint64_t msg,
                           Host::StagedPdu pdu);
  void DeliverEvent(std::size_t flow, std::uint64_t msg,
                    std::vector<std::uint8_t> payload, SimTime rx_dma_done);
  void CompleteMessage(std::size_t flow, std::uint64_t msg);

  TestbedConfig config_;
  EventLoop loop_;
  std::vector<std::unique_ptr<Host>> senders_;
  std::unique_ptr<Host> receiver_;
  NullModemLink link_;
  std::vector<Flow> flows_;
  std::vector<FlowRun> runs_;          // live during RunFlows
  std::vector<bool> step_pending_;     // one sender-step event in flight per flow
};

}  // namespace fbufs

#endif  // SRC_NET_TESTBED_H_
