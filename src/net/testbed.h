// The testbed moved to the topology fabric (it is the trivial one-link
// topology); this shim keeps historical include paths working.
#ifndef SRC_NET_TESTBED_H_
#define SRC_NET_TESTBED_H_

#include "src/topo/testbed.h"

#endif  // SRC_NET_TESTBED_H_
