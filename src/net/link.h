// Null-modem ATM link between two Osiris boards (the paper's testbed):
// 622 Mbps raw, 516 Mbps net of cell overhead. The wire is a serial
// Resource in the event engine's sense; transmission of a PDU occupies it
// for WireTime(bytes), and utilization falls out of the resource accounting.
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace fbufs {

class NullModemLink {
 public:
  explicit NullModemLink(const CostParams* costs)
      : costs_(costs), wire_("wire") {}

  // A PDU whose last byte left the sender's adapter at |ready| finishes
  // crossing the wire at the returned time.
  SimTime Transmit(std::uint64_t bytes, SimTime ready) {
    bytes_carried_ += bytes;
    pdus_carried_++;
    return wire_.Acquire(ready, costs_->WireTime(bytes));
  }

  SimTime busy_until() const { return wire_.busy_until(); }
  std::uint64_t bytes_carried() const { return bytes_carried_; }
  std::uint64_t pdus_carried() const { return pdus_carried_; }

  Resource& wire() { return wire_; }
  const Resource& wire() const { return wire_; }

  void Reset() {
    wire_.Reset();
    bytes_carried_ = 0;
    pdus_carried_ = 0;
  }

 private:
  const CostParams* costs_;
  Resource wire_;
  std::uint64_t bytes_carried_ = 0;
  std::uint64_t pdus_carried_ = 0;
};

}  // namespace fbufs

#endif  // SRC_NET_LINK_H_
