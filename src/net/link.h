// Null-modem ATM link between two Osiris boards (the paper's testbed):
// 622 Mbps raw, 516 Mbps net of cell overhead. The wire is a serial
// resource; transmission of a PDU occupies it for WireTime(bytes).
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <algorithm>
#include <cstdint>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"

namespace fbufs {

class NullModemLink {
 public:
  explicit NullModemLink(const CostParams* costs) : costs_(costs) {}

  // A PDU whose last byte left the sender's adapter at |ready| finishes
  // crossing the wire at the returned time.
  SimTime Transmit(std::uint64_t bytes, SimTime ready) {
    const SimTime start = std::max(ready, busy_until_);
    busy_until_ = start + costs_->WireTime(bytes);
    bytes_carried_ += bytes;
    pdus_carried_++;
    return busy_until_;
  }

  SimTime busy_until() const { return busy_until_; }
  std::uint64_t bytes_carried() const { return bytes_carried_; }
  std::uint64_t pdus_carried() const { return pdus_carried_; }

  void Reset() {
    busy_until_ = 0;
    bytes_carried_ = 0;
    pdus_carried_ = 0;
  }

 private:
  const CostParams* costs_;
  SimTime busy_until_ = 0;
  std::uint64_t bytes_carried_ = 0;
  std::uint64_t pdus_carried_ = 0;
};

}  // namespace fbufs

#endif  // SRC_NET_LINK_H_
