// Null-modem ATM link between two Osiris boards (the paper's testbed):
// 622 Mbps raw, 516 Mbps net of cell overhead. The wire is a serial
// Resource in the event engine's sense; transmission of a PDU occupies it
// for WireTime(bytes), and utilization falls out of the resource accounting.
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace fbufs {

class NullModemLink {
 public:
  // |name| labels the wire Resource (topologies name each link); |mbps|
  // overrides the cost model's net link rate, 0 keeping the default
  // (516 Mbps, the paper's testbed).
  explicit NullModemLink(const CostParams* costs, std::string name = "wire",
                         double mbps = 0.0)
      : costs_(costs), wire_(std::move(name)), mbps_(mbps) {}

  // A PDU whose last byte left the sender's adapter at |ready| finishes
  // crossing the wire at the returned time.
  SimTime Transmit(std::uint64_t bytes, SimTime ready) {
    bytes_carried_ += bytes;
    pdus_carried_++;
    return wire_.Acquire(ready, WireTime(bytes));
  }

  // Serialization time for |bytes| at this link's rate.
  SimTime WireTime(std::uint64_t bytes) const {
    if (mbps_ <= 0.0) {
      return costs_->WireTime(bytes);
    }
    return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 * 1000.0 / mbps_);
  }

  SimTime busy_until() const { return wire_.busy_until(); }
  std::uint64_t bytes_carried() const { return bytes_carried_; }
  std::uint64_t pdus_carried() const { return pdus_carried_; }

  Resource& wire() { return wire_; }
  const Resource& wire() const { return wire_; }

  void Reset() {
    wire_.Reset();
    bytes_carried_ = 0;
    pdus_carried_ = 0;
  }

 private:
  const CostParams* costs_;
  Resource wire_;
  double mbps_;  // 0 = use the cost model's link rate
  std::uint64_t bytes_carried_ = 0;
  std::uint64_t pdus_carried_ = 0;
};

}  // namespace fbufs

#endif  // SRC_NET_LINK_H_
