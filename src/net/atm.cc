#include "src/net/atm.h"

#include <cstring>

namespace fbufs {

std::uint32_t Crc32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

std::vector<AtmCell> AtmSegmenter::Segment(const std::vector<std::uint8_t>& pdu,
                                           std::uint32_t vci) {
  // Total bytes on the wire: payload + padding + 8-byte trailer, a multiple
  // of the cell payload size, with the trailer in the last 8 bytes.
  const std::size_t with_trailer = pdu.size() + sizeof(AalTrailer);
  const std::size_t cells_needed =
      (with_trailer + AtmCell::kPayloadBytes - 1) / AtmCell::kPayloadBytes;
  const std::size_t total = cells_needed * AtmCell::kPayloadBytes;

  std::vector<std::uint8_t> frame(total, 0);
  std::memcpy(frame.data(), pdu.data(), pdu.size());
  AalTrailer trailer;
  trailer.length = static_cast<std::uint32_t>(pdu.size());
  trailer.crc = Crc32(pdu.data(), pdu.size());
  std::memcpy(frame.data() + total - sizeof(trailer), &trailer, sizeof(trailer));

  std::vector<AtmCell> cells(cells_needed);
  for (std::size_t i = 0; i < cells_needed; ++i) {
    cells[i].vci = vci;
    cells[i].end_of_pdu = (i + 1 == cells_needed);
    std::memcpy(cells[i].payload, frame.data() + i * AtmCell::kPayloadBytes,
                AtmCell::kPayloadBytes);
  }
  return cells;
}

Status AtmReassembler::Push(const AtmCell& cell, std::vector<std::uint8_t>* pdu) {
  buffer_.insert(buffer_.end(), cell.payload, cell.payload + AtmCell::kPayloadBytes);
  if (!cell.end_of_pdu) {
    return Status::kExhausted;
  }
  // Last cell: the trailer occupies the final 8 bytes.
  Status result = Status::kTruncated;
  if (buffer_.size() >= sizeof(AalTrailer)) {
    AalTrailer trailer;
    std::memcpy(&trailer, buffer_.data() + buffer_.size() - sizeof(trailer),
                sizeof(trailer));
    if (trailer.length <= buffer_.size() - sizeof(trailer) &&
        Crc32(buffer_.data(), trailer.length) == trailer.crc) {
      pdu->assign(buffer_.begin(), buffer_.begin() + trailer.length);
      pdus_ok_++;
      result = Status::kOk;
    }
  }
  if (result != Status::kOk) {
    pdus_bad_++;
  }
  buffer_.clear();
  return result;
}

}  // namespace fbufs
