#include "src/net/testbed.h"

#include <algorithm>
#include <cassert>

namespace fbufs {

namespace {

// Appends |d| unless it repeats the previous element (layers in the same
// domain collapse to one hop).
void AppendHop(std::vector<DomainId>* hops, DomainId d) {
  if (hops->empty() || hops->back() != d) {
    hops->push_back(d);
  }
}

std::uint32_t DomainCount(StackPlacement p) {
  switch (p) {
    case StackPlacement::kKernelOnly:
      return 1;
    case StackPlacement::kUserKernel:
      return 2;
    case StackPlacement::kUserNetserverKernel:
      return 3;
  }
  return 1;
}

MachineConfig Named(MachineConfig cfg, const std::string& name) {
  cfg.name = name;
  return cfg;
}

}  // namespace

Testbed::Host::Host(const TestbedConfig& config, bool is_sender,
                    std::uint32_t host_vci, std::uint16_t port,
                    const std::string& name)
    : machine(Named(config.machine, name)),
      fsys(&machine),
      rpc(&machine),
      adapter(&machine.costs()),
      cpu("cpu/" + name),
      vci(host_vci) {
  fsys.AttachRpc(&rpc);

  Domain* kernel = &machine.kernel();
  Domain* app = kernel;
  Domain* udp_dom = kernel;
  switch (config.placement) {
    case StackPlacement::kKernelOnly:
      break;
    case StackPlacement::kUserKernel:
      app = machine.CreateDomain("app");
      break;
    case StackPlacement::kUserNetserverKernel:
      app = machine.CreateDomain("app");
      udp_dom = machine.CreateDomain("netserver");
      break;
  }

  ProtocolStack::Config scfg;
  scfg.integrated = config.integrated;
  stack = std::make_unique<ProtocolStack>(&machine, &fsys, &rpc, scfg);
  stack->set_domain_count(DomainCount(config.placement));

  // Data path: the domains a data fbuf visits on this host.
  std::vector<DomainId> data_hops;
  if (is_sender) {
    AppendHop(&data_hops, app->id());
    AppendHop(&data_hops, udp_dom->id());
    AppendHop(&data_hops, kernel->id());
  } else {
    AppendHop(&data_hops, kernel->id());
    AppendHop(&data_hops, udp_dom->id());
    AppendHop(&data_hops, app->id());
  }
  const bool side_cached = is_sender ? config.sender_cached : config.cached;
  PathId data_path = kNoPath;
  PathId udp_hdr_path = kNoPath;
  PathId ip_hdr_path = kNoPath;
  if (side_cached) {
    data_path = fsys.paths().Register(data_hops);
  }
  // Header fbufs are always path-cached: protocols know their own domain
  // sequence regardless of the adapter's demux ability.
  std::vector<DomainId> hdr_hops;
  AppendHop(&hdr_hops, udp_dom->id());
  AppendHop(&hdr_hops, kernel->id());
  udp_hdr_path = fsys.paths().Register(hdr_hops);
  ip_hdr_path = fsys.paths().Register({kernel->id()});

  udp = std::make_unique<UdpProtocol>(udp_dom, stack.get(), udp_hdr_path);
  ip = std::make_unique<IpProtocol>(kernel, stack.get(), ip_hdr_path, config.pdu_size);
  driver = std::make_unique<DriverProtocol>(kernel, stack.get(), &adapter, host_vci);

  if (is_sender) {
    source = std::make_unique<SourceProtocol>(app, stack.get(), data_path,
                                              config.volatile_fbufs);
    source->set_below(udp.get());
    udp->set_below(ip.get());
    udp->SetDefaultPorts(1000, port);
    ip->set_below(driver.get());
  } else {
    sink = std::make_unique<SinkProtocol>(app, stack.get());
    driver->set_above(ip.get());
    ip->set_above(udp.get());
    udp->Bind(port, sink.get());
    if (config.cached) {
      // The adapter demuxes this VCI into pre-allocated per-path buffers;
      // without registration every PDU falls back to the uncached queue.
      adapter.RegisterVci(host_vci, data_path);
    }
  }
}

Testbed::Testbed(const TestbedConfig& config)
    : config_(config),
      receiver_(std::make_unique<Host>(config, /*is_sender=*/false, kVci,
                                       /*port=*/2000, "receiver")),
      link_(&receiver_->machine.costs()) {
  senders_.push_back(std::make_unique<Host>(config, /*is_sender=*/true, kVci,
                                            /*port=*/2000, "sender0"));
  WireSender(senders_[0].get());

  Flow flow0;
  flow0.vci = kVci;
  flow0.port = 2000;
  flow0.sender = 0;
  flow0.sink = receiver_->sink.get();
  flows_.push_back(std::move(flow0));
}

void Testbed::WireSender(Host* host) {
  host->driver->set_on_transmit(
      [host](std::vector<std::uint8_t> payload, std::uint32_t vci) {
        (void)vci;
        host->staged.push_back(
            Host::StagedPdu{std::move(payload), host->machine.clock().Now()});
      });
}

std::size_t Testbed::AddFlow(std::uint32_t vci, std::uint16_t port) {
  const std::size_t index = flows_.size();
  senders_.push_back(std::make_unique<Host>(
      config_, /*is_sender=*/true, vci, port, "sender" + std::to_string(index)));
  WireSender(senders_.back().get());

  Flow flow;
  flow.vci = vci;
  flow.port = port;
  flow.sender = index;

  // Receiver-side endpoint: a sink of its own (in a fresh application domain
  // unless everything runs in the kernel), demuxed by UDP port; the adapter
  // demuxes the VCI into the flow's own cached data path.
  Host& rx = *receiver_;
  Domain* kernel = &rx.machine.kernel();
  Domain* app = config_.placement == StackPlacement::kKernelOnly
                    ? kernel
                    : rx.machine.CreateDomain("app-flow" + std::to_string(index));
  flow.owned_sink = std::make_unique<SinkProtocol>(app, rx.stack.get());
  flow.sink = flow.owned_sink.get();
  rx.udp->Bind(port, flow.sink);
  if (config_.cached) {
    std::vector<DomainId> data_hops;
    AppendHop(&data_hops, kernel->id());
    AppendHop(&data_hops, rx.udp->domain()->id());
    AppendHop(&data_hops, app->id());
    const PathId data_path = rx.fsys.paths().Register(data_hops);
    rx.adapter.RegisterVci(vci, data_path);
  }

  flows_.push_back(std::move(flow));
  return index;
}

SimTime Testbed::Key(SimTime t) const {
  // Event keys order dispatch; handlers derive simulated times from host
  // clocks and resource busy-untils. A computed time can lie behind the
  // loop's dispatch floor (host timelines are only partially ordered), so
  // clamp the key — never the value.
  return std::max(t, loop_.Now());
}

void Testbed::ScheduleSenderStep(std::size_t flow) {
  FlowRun& run = runs_[flow];
  if (step_pending_[flow] || run.failed || run.next >= run.total) {
    return;
  }
  step_pending_[flow] = true;
  Host& tx = *senders_[flows_[flow].sender];
  loop_.Schedule(Key(tx.machine.clock().Now()),
                 "send/" + std::to_string(flow) + "/" + std::to_string(run.next),
                 [this, flow] {
                   step_pending_[flow] = false;
                   SenderStep(flow);
                 });
}

void Testbed::SenderStep(std::size_t flow) {
  FlowRun& run = runs_[flow];
  if (run.failed || run.next >= run.total) {
    return;
  }
  Host& tx = *senders_[flows_[flow].sender];
  SimClock& tx_clock = tx.machine.clock();
  const std::uint64_t m = run.next;

  // Sliding-window flow control: do not run more than |window| messages
  // ahead of the receiver's acknowledgements. If the ack is still in
  // flight, stay quiescent; its arrival reschedules this step.
  if (config_.window > 0 && m >= config_.window && !run.acked[m - config_.window]) {
    return;
  }

  if (m == run.traffic.warmup) {
    // Measurement starts here: pipeline full, fbuf caches warm.
    run.t0_tx = tx_clock.Now();
    run.tx_busy = 0;
  }
  if (config_.window > 0 && m >= config_.window) {
    tx_clock.AdvanceToAtLeast(run.ack_time[m - config_.window]);
  }

  const SimTime tx_before = tx_clock.Now();
  const Status st = tx.source->SendOne(run.traffic.bytes);
  if (!Ok(st)) {
    run.failed = true;
    return;
  }
  const SimTime tx_after = tx_clock.Now();
  tx.cpu.RecordBusy(tx_before, tx_after);
  run.tx_busy += tx_after - tx_before;
  run.tx_end = tx_after;
  run.next++;

  // The send staged PDUs with the adapter (plus anything staged by hand
  // before the run, drained FIFO and attributed to this message). Pipe each
  // through TX DMA -> wire -> RX DMA and schedule its delivery.
  run.pdus_left[m] = tx.staged.size();
  if (tx.staged.empty()) {
    // Nothing crossed the wire (degenerate send): acknowledge immediately
    // so the window never deadlocks.
    run.completed++;
    if (m + 1 == run.traffic.warmup) {
      run.t0_rx = receiver_->machine.clock().Now();
      run.rx_busy = 0;
    }
    run.ack_time[m] = tx_clock.Now();
    run.acked[m] = true;
  } else {
    while (!tx.staged.empty()) {
      Host::StagedPdu pdu = std::move(tx.staged.front());
      tx.staged.pop_front();
      SchedulePduPipeline(flow, m, std::move(pdu));
      if (run.failed) {
        return;
      }
    }
  }
  ScheduleSenderStep(flow);
}

void Testbed::SchedulePduPipeline(std::size_t flow, std::uint64_t msg,
                                  Host::StagedPdu pdu) {
  FlowRun& run = runs_[flow];
  Flow& f = flows_[flow];
  Host& tx = *senders_[f.sender];

  // The PDU really crosses as ATM cells: segment with the AAL5 trailer,
  // reassemble (length + CRC verified) on the receiving board. The three
  // serial resources are acquired in pipeline order; each acquisition
  // advances that resource's busy-until, never a host clock.
  const std::vector<AtmCell> cells = AtmSegmenter::Segment(pdu.payload, f.vci);
  const std::uint64_t wire_bytes = cells.size() * AtmCell::kPayloadBytes;
  const SimTime tx_dma_done = tx.adapter.TxDma(wire_bytes, pdu.ready);
  const SimTime arrived = link_.Transmit(wire_bytes, tx_dma_done);
  const SimTime rx_dma_done = receiver_->adapter.RxDma(wire_bytes, arrived);

  std::vector<std::uint8_t> reassembled;
  Status cell_st = Status::kExhausted;
  for (const AtmCell& cell : cells) {
    cell_st = f.reassembler.Push(cell, &reassembled);
  }
  if (!Ok(cell_st)) {
    run.failed = true;  // CRC failure cannot happen on this link
    return;
  }

  loop_.Schedule(
      Key(rx_dma_done),
      "deliver/" + std::to_string(flow) + "/" + std::to_string(msg),
      [this, flow, msg, payload = std::move(reassembled), rx_dma_done]() mutable {
        DeliverEvent(flow, msg, std::move(payload), rx_dma_done);
      });
}

void Testbed::DeliverEvent(std::size_t flow, std::uint64_t msg,
                           std::vector<std::uint8_t> payload,
                           SimTime rx_dma_done) {
  FlowRun& run = runs_[flow];
  if (run.failed) {
    return;
  }
  Host& rx = *receiver_;
  SimClock& rx_clock = rx.machine.clock();
  // The receiving CPU picks the PDU up no earlier than its DMA completion;
  // it may already be past that point serving another delivery.
  rx_clock.AdvanceToAtLeast(rx_dma_done);

  const SimTime rx_before = rx_clock.Now();
  const Status st =
      rx.driver->DeliverPdu(payload, flows_[flow].vci, config_.volatile_fbufs);
  if (!Ok(st)) {
    run.failed = true;
    return;
  }
  const SimTime rx_after = rx_clock.Now();
  rx.cpu.RecordBusy(rx_before, rx_after);
  run.rx_busy += rx_after - rx_before;
  run.rx_end = rx_after;

  assert(run.pdus_left[msg] > 0);
  if (--run.pdus_left[msg] == 0) {
    CompleteMessage(flow, msg);
  }
}

void Testbed::CompleteMessage(std::size_t flow, std::uint64_t msg) {
  FlowRun& run = runs_[flow];
  Host& rx = *receiver_;
  if (msg + 1 == run.traffic.warmup) {
    // The last warmup message is fully delivered: the receiver's
    // measurement window starts now.
    run.t0_rx = rx.machine.clock().Now();
    run.rx_busy = 0;
  }
  // The acknowledgement rides back over the (otherwise idle) reverse
  // channel: one cell's worth of latency.
  const SimTime ack_t = rx.machine.clock().Now() + rx.machine.costs().WireTime(48);
  run.completed++;
  loop_.Schedule(Key(ack_t),
                 "ack/" + std::to_string(flow) + "/" + std::to_string(msg),
                 [this, flow, msg, ack_t] {
                   FlowRun& r = runs_[flow];
                   r.ack_time[msg] = ack_t;
                   r.acked[msg] = true;
                   ScheduleSenderStep(flow);
                 });
}

Testbed::MultiResult Testbed::RunFlows(const std::vector<FlowTraffic>& traffic) {
  MultiResult mr;
  mr.flows.resize(flows_.size());

  runs_.assign(flows_.size(), FlowRun{});
  step_pending_.assign(flows_.size(), false);

  // Restart resource accounting: utilization is reported over this run
  // (warmup included), not the testbed's lifetime.
  SimTime run_start = receiver_->machine.clock().Now();
  receiver_->cpu.ResetAccounting(run_start);
  receiver_->adapter.rx_dma().ResetAccounting(receiver_->adapter.rx_dma().busy_until());
  link_.wire().ResetAccounting(link_.wire().busy_until());

  bool any = false;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    FlowRun& run = runs_[i];
    if (i < traffic.size()) {
      run.traffic = traffic[i];
    }
    run.total = run.traffic.warmup + run.traffic.messages;
    Host& tx = *senders_[flows_[i].sender];
    tx.cpu.ResetAccounting(tx.machine.clock().Now());
    tx.adapter.tx_dma().ResetAccounting(tx.adapter.tx_dma().busy_until());
    run.t0_tx = tx.machine.clock().Now();
    run.t0_rx = receiver_->machine.clock().Now();
    run.tx_end = run.t0_tx;
    run.rx_end = run.t0_rx;
    if (run.total == 0) {
      continue;
    }
    run.ack_time.assign(run.total, 0);
    run.acked.assign(run.total, false);
    run.pdus_left.assign(run.total, 0);
    run_start = std::min(run_start, run.t0_tx);
    any = true;
    ScheduleSenderStep(i);
  }

  if (any) {
    loop_.Run();
  }

  SimTime global_end = run_start;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    FlowRun& run = runs_[i];
    FlowResult& fr = mr.flows[i];
    fr.messages = run.traffic.messages;
    fr.bytes = run.traffic.messages * run.traffic.bytes;
    fr.failed = run.failed;
    mr.failed = mr.failed || run.failed;
    if (run.total == 0 || run.failed) {
      continue;
    }
    const SimTime tx_elapsed = run.tx_end - run.t0_tx;
    const SimTime rx_elapsed = run.rx_end > run.t0_rx ? run.rx_end - run.t0_rx : 0;
    const SimTime wire_tail =
        link_.busy_until() > run.t0_tx ? link_.busy_until() - run.t0_tx : 0;
    fr.elapsed_ns = std::max({tx_elapsed, rx_elapsed, wire_tail});
    if (fr.elapsed_ns > 0) {
      fr.throughput_mbps = static_cast<double>(fr.bytes) * 8.0 * 1000.0 /
                           static_cast<double>(fr.elapsed_ns);
      fr.sender_cpu_load = static_cast<double>(run.tx_busy) /
                           static_cast<double>(fr.elapsed_ns);
    }
    global_end = std::max({global_end, run.tx_end, run.rx_end});
    mr.elapsed_ns = std::max(mr.elapsed_ns, fr.elapsed_ns);
  }
  global_end = std::max(global_end, link_.busy_until());

  std::uint64_t total_bytes = 0;
  SimTime total_rx_busy = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    total_bytes += mr.flows[i].bytes;
    total_rx_busy += runs_[i].rx_busy;
  }
  // Legacy single-flow semantics: the receiver's load over the same window
  // the flow's throughput was computed over. With several flows the window
  // is the longest flow's.
  if (mr.elapsed_ns > 0) {
    mr.receiver_cpu_load = static_cast<double>(total_rx_busy) /
                           static_cast<double>(mr.elapsed_ns);
  }
  const SimTime window = global_end > run_start ? global_end - run_start : 0;
  if (window > 0) {
    mr.aggregate_mbps = static_cast<double>(total_bytes) * 8.0 * 1000.0 /
                        static_cast<double>(window);
  }

  auto report = [&](const Resource& r) {
    ResourceUse use;
    use.name = r.name();
    use.busy_ns = r.busy_ns();
    if (window > 0) {
      use.utilization =
          static_cast<double>(r.busy_ns()) / static_cast<double>(window);
    }
    mr.resources.push_back(std::move(use));
  };
  for (const auto& tx : senders_) {
    report(tx->cpu);
    report(tx->adapter.tx_dma());
  }
  report(link_.wire());
  report(receiver_->adapter.rx_dma());
  report(receiver_->cpu);
  return mr;
}

Testbed::Result Testbed::Run(std::uint64_t messages, std::uint64_t bytes,
                             std::uint64_t warmup) {
  std::vector<FlowTraffic> traffic(1);
  traffic[0].messages = messages;
  traffic[0].bytes = bytes;
  traffic[0].warmup = warmup;
  const MultiResult mr = RunFlows(traffic);

  Result result;
  result.messages = messages;
  result.bytes = messages * bytes;
  const FlowResult& fr = mr.flows[0];
  if (fr.failed) {
    result.throughput_mbps = -1;
    return result;
  }
  result.elapsed_ns = fr.elapsed_ns;
  result.throughput_mbps = fr.throughput_mbps;
  result.sender_cpu_load = fr.sender_cpu_load;
  result.receiver_cpu_load = mr.receiver_cpu_load;
  return result;
}

}  // namespace fbufs
