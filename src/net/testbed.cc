#include "src/net/testbed.h"

#include <cassert>

namespace fbufs {

namespace {

// Appends |d| unless it repeats the previous element (layers in the same
// domain collapse to one hop).
void AppendHop(std::vector<DomainId>* hops, DomainId d) {
  if (hops->empty() || hops->back() != d) {
    hops->push_back(d);
  }
}

std::uint32_t DomainCount(StackPlacement p) {
  switch (p) {
    case StackPlacement::kKernelOnly:
      return 1;
    case StackPlacement::kUserKernel:
      return 2;
    case StackPlacement::kUserNetserverKernel:
      return 3;
  }
  return 1;
}

}  // namespace

Testbed::Host::Host(const TestbedConfig& config, bool is_sender)
    : machine(config.machine), fsys(&machine), rpc(&machine), adapter(&machine.costs()) {
  fsys.AttachRpc(&rpc);

  Domain* kernel = &machine.kernel();
  Domain* app = kernel;
  Domain* udp_dom = kernel;
  switch (config.placement) {
    case StackPlacement::kKernelOnly:
      break;
    case StackPlacement::kUserKernel:
      app = machine.CreateDomain("app");
      break;
    case StackPlacement::kUserNetserverKernel:
      app = machine.CreateDomain("app");
      udp_dom = machine.CreateDomain("netserver");
      break;
  }

  ProtocolStack::Config scfg;
  scfg.integrated = config.integrated;
  stack = std::make_unique<ProtocolStack>(&machine, &fsys, &rpc, scfg);
  stack->set_domain_count(DomainCount(config.placement));

  // Data path: the domains a data fbuf visits on this host.
  std::vector<DomainId> data_hops;
  if (is_sender) {
    AppendHop(&data_hops, app->id());
    AppendHop(&data_hops, udp_dom->id());
    AppendHop(&data_hops, kernel->id());
  } else {
    AppendHop(&data_hops, kernel->id());
    AppendHop(&data_hops, udp_dom->id());
    AppendHop(&data_hops, app->id());
  }
  const bool side_cached = is_sender ? config.sender_cached : config.cached;
  PathId data_path = kNoPath;
  PathId udp_hdr_path = kNoPath;
  PathId ip_hdr_path = kNoPath;
  if (side_cached) {
    data_path = fsys.paths().Register(data_hops);
  }
  // Header fbufs are always path-cached: protocols know their own domain
  // sequence regardless of the adapter's demux ability.
  std::vector<DomainId> hdr_hops;
  AppendHop(&hdr_hops, udp_dom->id());
  AppendHop(&hdr_hops, kernel->id());
  udp_hdr_path = fsys.paths().Register(hdr_hops);
  ip_hdr_path = fsys.paths().Register({kernel->id()});

  udp = std::make_unique<UdpProtocol>(udp_dom, stack.get(), udp_hdr_path);
  ip = std::make_unique<IpProtocol>(kernel, stack.get(), ip_hdr_path, config.pdu_size);
  driver = std::make_unique<DriverProtocol>(kernel, stack.get(), &adapter, kVci);

  if (is_sender) {
    source = std::make_unique<SourceProtocol>(app, stack.get(), data_path,
                                              config.volatile_fbufs);
    source->set_below(udp.get());
    udp->set_below(ip.get());
    udp->SetDefaultPorts(1000, 2000);
    ip->set_below(driver.get());
  } else {
    sink = std::make_unique<SinkProtocol>(app, stack.get());
    driver->set_above(ip.get());
    ip->set_above(udp.get());
    udp->Bind(2000, sink.get());
    if (config.cached) {
      // The adapter demuxes this VCI into pre-allocated per-path buffers;
      // without registration every PDU falls back to the uncached queue.
      adapter.RegisterVci(kVci, data_path);
    }
  }
}

Testbed::Testbed(const TestbedConfig& config)
    : config_(config),
      sender_(std::make_unique<Host>(config, /*is_sender=*/true)),
      receiver_(std::make_unique<Host>(config, /*is_sender=*/false)),
      link_(&sender_->machine.costs()) {
  sender_->driver->set_on_transmit(
      [this](std::vector<std::uint8_t> payload, std::uint32_t vci) {
        (void)vci;
        staged_.push_back(StagedPdu{std::move(payload), sender_->machine.clock().Now()});
      });
}

Testbed::Result Testbed::Run(std::uint64_t messages, std::uint64_t bytes,
                             std::uint64_t warmup) {
  Result result;
  result.messages = messages;
  result.bytes = messages * bytes;

  SimClock& tx_clock = sender_->machine.clock();
  SimClock& rx_clock = receiver_->machine.clock();
  const std::uint64_t total = warmup + messages;
  SimTime tx_busy = 0;
  SimTime rx_busy = 0;
  std::vector<SimTime> ack_time(total, 0);
  SimTime t0_tx = tx_clock.Now();
  SimTime t0_rx = rx_clock.Now();

  for (std::uint64_t m = 0; m < total; ++m) {
    if (m == warmup) {
      t0_tx = tx_clock.Now();
      t0_rx = rx_clock.Now();
      tx_busy = 0;
      rx_busy = 0;
    }
    // Sliding-window flow control: do not run more than |window| messages
    // ahead of the receiver's acknowledgements.
    if (config_.window > 0 && m >= config_.window) {
      tx_clock.AdvanceTo(ack_time[m - config_.window]);
    }

    const SimTime tx_before = tx_clock.Now();
    const Status st = sender_->source->SendOne(bytes);
    if (!Ok(st)) {
      result.throughput_mbps = -1;
      return result;
    }
    tx_busy += tx_clock.Now() - tx_before;

    // Drain this message's PDUs through adapter DMA -> wire -> adapter DMA
    // -> receiver stack.
    while (!staged_.empty()) {
      StagedPdu pdu = std::move(staged_.front());
      staged_.pop_front();
      // The PDU really crosses as ATM cells: segment with the AAL5 trailer,
      // reassemble (length + CRC verified) on the receiving board.
      const std::vector<AtmCell> cells = AtmSegmenter::Segment(pdu.payload, kVci);
      const std::uint64_t wire_bytes = cells.size() * AtmCell::kPayloadBytes;
      const SimTime tx_dma_done = sender_->adapter.TxDma(wire_bytes, pdu.ready);
      const SimTime arrived = link_.Transmit(wire_bytes, tx_dma_done);
      const SimTime rx_dma_done = receiver_->adapter.RxDma(wire_bytes, arrived);
      std::vector<std::uint8_t> reassembled;
      Status cell_st = Status::kExhausted;
      for (const AtmCell& cell : cells) {
        cell_st = reassembler_.Push(cell, &reassembled);
      }
      if (!Ok(cell_st)) {
        result.throughput_mbps = -1;  // CRC failure cannot happen on this link
        return result;
      }
      rx_clock.AdvanceTo(rx_dma_done);
      const SimTime rx_before = rx_clock.Now();
      const Status rst =
          receiver_->driver->DeliverPdu(reassembled, kVci, config_.volatile_fbufs);
      if (!Ok(rst)) {
        result.throughput_mbps = -1;
        return result;
      }
      rx_busy += rx_clock.Now() - rx_before;
    }
    // The acknowledgement rides back over the (otherwise idle) reverse
    // channel: one cell's worth of latency.
    ack_time[m] = rx_clock.Now() + sender_->machine.costs().WireTime(48);
  }

  const SimTime tx_elapsed = tx_clock.Now() - t0_tx;
  const SimTime rx_elapsed = rx_clock.Now() - t0_rx;
  result.elapsed_ns = std::max(
      {tx_elapsed, rx_elapsed, link_.busy_until() - t0_tx});
  result.throughput_mbps =
      static_cast<double>(result.bytes) * 8.0 * 1000.0 / static_cast<double>(result.elapsed_ns);
  result.sender_cpu_load = static_cast<double>(tx_busy) / static_cast<double>(result.elapsed_ns);
  result.receiver_cpu_load =
      static_cast<double>(rx_busy) / static_cast<double>(result.elapsed_ns);
  return result;
}

}  // namespace fbufs
