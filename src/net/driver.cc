#include "src/net/driver.h"

#include <cstring>

namespace fbufs {

Status DriverProtocol::Push(Message m) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kNet);
  ActorScope actor(machine.attribution(), domain()->id());
  TraceSpan span(machine.trace(), TraceCategory::kNet, "driver-tx", vci_, m.length());
  machine.clock().Advance(machine.costs().driver_pdu_ns +
                          m.length() * machine.costs().driver_byte_ns);

  // Gather the PDU bytes straight from physical memory (DMA does the work;
  // no CPU data-touch cost, no permission path — the board masters the bus).
  last_tx_fbuf_ = nullptr;
  std::vector<std::uint8_t> payload(m.length());
  std::uint64_t pos = 0;
  Status status = Status::kOk;
  m.ForEachExtent([&](const Extent& e) {
    if (!Ok(status)) {
      return;
    }
    if (e.fb != nullptr) {
      last_tx_fbuf_ = e.fb;  // ends on the payload: headers precede it
    }
    if (e.fb == nullptr) {
      std::memset(payload.data() + pos, 0, e.len);
      pos += e.len;
      return;
    }
    Domain* orig = machine.domain(e.fb->originator);
    std::uint64_t done = 0;
    while (done < e.len) {
      const VirtAddr a = e.addr + done;
      const std::uint64_t in_page = std::min(e.len - done, kPageSize - PageOffset(a));
      const FrameId frame = orig != nullptr ? orig->DebugFrame(PageOf(a)) : kInvalidFrame;
      if (frame == kInvalidFrame) {
        status = Status::kNotMapped;
        return;
      }
      std::memcpy(payload.data() + pos, machine.pmem().Data(frame) + PageOffset(a), in_page);
      pos += in_page;
      done += in_page;
    }
  });
  if (!Ok(status)) {
    return status;
  }
  pdus_sent_++;
  if (on_transmit_) {
    on_transmit_(std::move(payload), vci_);
  }
  return Status::kOk;
}

Status DriverProtocol::DeliverPdu(const std::vector<std::uint8_t>& payload, std::uint32_t vci,
                                  bool volatile_fbufs) {
  Machine& machine = *stack_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kNet);
  ActorScope actor(machine.attribution(), domain()->id());
  TraceSpan span(machine.trace(), TraceCategory::kNet, "driver-rx", vci, payload.size());
  machine.clock().Advance(machine.costs().driver_pdu_ns +
                          payload.size() * machine.costs().driver_byte_ns);

  // The adapter picked cached-per-path or uncached reassembly buffering when
  // the first cell's VCI was seen. DMA overwrites the whole buffer, so no
  // security clearing is needed even for a fresh one.
  const PathId path = adapter_->PathForVci(vci);
  Fbuf* fb = nullptr;
  Status st = stack_->fsys()->Allocate(*domain(), path, payload.size(), volatile_fbufs, &fb,
                                       /*clear=*/false);
  if (!Ok(st)) {
    return st;
  }
  // Scatter the payload into the fbuf frames (again DMA: no CPU cost).
  std::uint64_t pos = 0;
  while (pos < payload.size()) {
    const VirtAddr a = fb->base + pos;
    const std::uint64_t in_page = std::min<std::uint64_t>(payload.size() - pos,
                                                          kPageSize - PageOffset(a));
    const FrameId frame = domain()->DebugFrame(PageOf(a));
    if (frame == kInvalidFrame) {
      stack_->fsys()->Free(fb, *domain());
      return Status::kNotMapped;
    }
    std::memcpy(machine.pmem().Data(frame) + PageOffset(a), payload.data() + pos, in_page);
    pos += in_page;
  }
  pdus_received_++;
  last_rx_fbuf_ = fb;
  st = SendUp(Message::Leaf(fb, 0, payload.size()));
  const Status free_st = stack_->fsys()->Free(fb, *domain());
  return Ok(st) ? free_st : st;
}

}  // namespace fbufs
