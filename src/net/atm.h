// ATM cells and AAL5-style segmentation/reassembly.
//
// The Osiris board moves PDUs as streams of 53-byte ATM cells (48-byte
// payload). This module implements the real wire format the simulated link
// carries: segmentation of a PDU into cells tagged with VCI and an
// end-of-PDU marker, and reassembly with length and CRC-32 verification, so
// cell loss and corruption are detectable exactly as AAL5 detects them.
#ifndef SRC_NET_ATM_H_
#define SRC_NET_ATM_H_

#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace fbufs {

struct AtmCell {
  static constexpr std::size_t kPayloadBytes = 48;

  std::uint32_t vci = 0;
  bool end_of_pdu = false;  // AAL5 uses the PTI bit of the last cell
  std::uint8_t payload[kPayloadBytes] = {};
};

// AAL5-style trailer carried in the last cell: payload length + CRC.
struct AalTrailer {
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};
static_assert(sizeof(AalTrailer) == 8);

// CRC-32 (IEEE 802.3 polynomial, bitwise implementation — clarity over
// speed; the simulator is not bandwidth-bound on host cycles here).
std::uint32_t Crc32(const std::uint8_t* data, std::size_t len);

class AtmSegmenter {
 public:
  // Segments |pdu| into cells for |vci|: payload, zero padding, and the
  // 8-byte trailer aligned to the end of the final cell.
  static std::vector<AtmCell> Segment(const std::vector<std::uint8_t>& pdu,
                                      std::uint32_t vci);
};

class AtmReassembler {
 public:
  // Feeds one arriving cell. Returns kOk and fills |*pdu| when the cell
  // completes a PDU whose length and CRC verify; kTruncated when the
  // end-of-PDU cell arrives but verification fails (the PDU is discarded);
  // kExhausted while more cells are needed.
  Status Push(const AtmCell& cell, std::vector<std::uint8_t>* pdu);

  std::uint64_t pdus_ok() const { return pdus_ok_; }
  std::uint64_t pdus_bad() const { return pdus_bad_; }
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::uint64_t pdus_ok_ = 0;
  std::uint64_t pdus_bad_ = 0;
};

}  // namespace fbufs

#endif  // SRC_NET_ATM_H_
