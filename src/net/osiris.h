// Simulated Osiris ATM adapter (Bellcore prototype, Aurora testbed).
//
// Models the two properties the paper's results hinge on:
//   * per-cell DMA over the TurboChannel with start-up latency and bus
//     contention — the 367 -> 285 Mbps I/O ceiling (CostParams::DmaTime);
//   * hardware demultiplexing by VCI with per-data-path pre-allocated cached
//     fbufs for the 16 most recently used paths, falling back to uncached
//     fbufs for the rest (§5.2).
//
// The DMA engine is a serial resource per direction; it runs concurrently
// with the host CPU (DMA time never lands on the machine clock).
#ifndef SRC_NET_OSIRIS_H_
#define SRC_NET_OSIRIS_H_

#include <cstdint>
#include <list>
#include <string>
#include <utility>

#include "src/fbuf/fbuf.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace fbufs {

class OsirisAdapter {
 public:
  static constexpr std::size_t kMaxCachedVcis = 16;

  // |name_prefix| distinguishes the DMA resources of multi-adapter hosts
  // (relays); the default keeps the historical "tx-dma"/"rx-dma" names.
  explicit OsirisAdapter(const CostParams* costs, const std::string& name_prefix = "")
      : costs_(costs),
        tx_dma_(name_prefix + "tx-dma"),
        rx_dma_(name_prefix + "rx-dma") {}

  // --- DMA timing ------------------------------------------------------------
  // Each direction's DMA engine is a serial Resource; it runs concurrently
  // with the host CPU (DMA time never lands on the machine clock).
  //
  // A transmit PDU handed to the adapter at |ready| has fully crossed the
  // bus at the returned time.
  SimTime TxDma(std::uint64_t bytes, SimTime ready) {
    return tx_dma_.Acquire(ready, costs_->DmaTime(bytes));
  }

  // A receive PDU whose cells arrived by |ready| is fully reassembled in
  // main memory at the returned time.
  SimTime RxDma(std::uint64_t bytes, SimTime ready) {
    return rx_dma_.Acquire(ready, costs_->DmaTime(bytes));
  }

  Resource& tx_dma() { return tx_dma_; }
  Resource& rx_dma() { return rx_dma_; }

  // --- VCI demultiplexing -----------------------------------------------------
  // The driver registers the I/O data path for a virtual circuit; the
  // adapter keeps reassembly buffers for the 16 most recently used VCIs.
  void RegisterVci(std::uint32_t vci, PathId path) {
    Touch(vci, path);
  }

  // Data path for an incoming PDU's VCI; kNoPath means "use an uncached
  // buffer" (unknown VCI or evicted from the MRU table).
  PathId PathForVci(std::uint32_t vci) {
    for (auto it = mru_.begin(); it != mru_.end(); ++it) {
      if (it->first == vci) {
        const PathId path = it->second;
        Touch(vci, path);
        cached_hits_++;
        return path;
      }
    }
    uncached_fallbacks_++;
    return kNoPath;
  }

  std::uint64_t cached_hits() const { return cached_hits_; }
  std::uint64_t uncached_fallbacks() const { return uncached_fallbacks_; }
  std::size_t tracked_vcis() const { return mru_.size(); }

 private:
  void Touch(std::uint32_t vci, PathId path) {
    for (auto it = mru_.begin(); it != mru_.end(); ++it) {
      if (it->first == vci) {
        mru_.erase(it);
        break;
      }
    }
    mru_.emplace_front(vci, path);
    if (mru_.size() > kMaxCachedVcis) {
      mru_.pop_back();
    }
  }

  const CostParams* costs_;
  Resource tx_dma_;
  Resource rx_dma_;
  std::list<std::pair<std::uint32_t, PathId>> mru_;
  std::uint64_t cached_hits_ = 0;
  std::uint64_t uncached_fallbacks_ = 0;
};

}  // namespace fbufs

#endif  // SRC_NET_OSIRIS_H_
