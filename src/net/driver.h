// Osiris device driver: the kernel-domain protocol at the bottom of the
// stack.
//
// Transmit: extracts the PDU's bytes (DMA — data is gathered directly from
// the fbuf frames, costing no CPU beyond per-PDU bookkeeping) and hands them
// to the testbed's link.
//
// Receive: the adapter has already chosen a reassembly buffer policy by VCI
// (cached path vs uncached); the driver allocates the fbuf, the "DMA'd"
// payload is placed into its frames without CPU cost, and the PDU is pushed
// up the protocol stack.
#ifndef SRC_NET_DRIVER_H_
#define SRC_NET_DRIVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/osiris.h"
#include "src/proto/protocol.h"

namespace fbufs {

class DriverProtocol : public Protocol {
 public:
  // |on_transmit| receives (payload bytes, vci) for every PDU pushed down.
  using TransmitFn = std::function<void(std::vector<std::uint8_t>, std::uint32_t)>;

  DriverProtocol(Domain* kernel, ProtocolStack* stack, OsirisAdapter* adapter,
                 std::uint32_t vci)
      : Protocol("osiris-driver", kernel, stack), adapter_(adapter), vci_(vci) {}

  void set_on_transmit(TransmitFn fn) { on_transmit_ = std::move(fn); }

  // The driver's per-PDU interrupt/bookkeeping cost applies, but the data
  // itself moves by DMA: gather directly from physical frames.
  Status Push(Message m) override;

  Status Pop(Message) override { return Status::kInvalidArgument; }

  // Receive path: called by the testbed when a PDU has been DMA'd into main
  // memory. Allocates the reassembly fbuf per the adapter's VCI decision and
  // pushes the PDU up the stack.
  Status DeliverPdu(const std::vector<std::uint8_t>& payload, std::uint32_t vci,
                    bool volatile_fbufs);

  // The driver never reads message bodies (DMA moves them).
  bool touches_body() const override { return false; }

  std::uint64_t pdus_sent() const { return pdus_sent_; }
  std::uint64_t pdus_received() const { return pdus_received_; }

  // The fbufs behind the most recent receive (DeliverPdu allocation) and
  // transmit (the payload extent pushed down — the final extent, since
  // protocol headers are prepended in front of it). Tests use these to
  // assert pointer identity across a relay's fbuf-to-fbuf forwarding path.
  const Fbuf* last_rx_fbuf() const { return last_rx_fbuf_; }
  const Fbuf* last_tx_fbuf() const { return last_tx_fbuf_; }

 private:
  OsirisAdapter* adapter_;
  std::uint32_t vci_;
  TransmitFn on_transmit_;
  std::uint64_t pdus_sent_ = 0;
  std::uint64_t pdus_received_ = 0;
  const Fbuf* last_rx_fbuf_ = nullptr;
  const Fbuf* last_tx_fbuf_ = nullptr;
};

}  // namespace fbufs

#endif  // SRC_NET_DRIVER_H_
