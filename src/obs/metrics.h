// Named metrics: counters, gauges and log-scale latency histograms.
//
// A MetricsRegistry is a flat, name-keyed bag of instruments that subsystems
// opt into (a Machine carries an optional registry pointer; everything is
// off — a null check — until a bench or test attaches one). Instruments are
// created on first use and held by stable pointers, so hot paths pay one map
// lookup at attach time, not per observation. Export is deterministic: the
// registry serializes in name order with integer-only values, so same seed
// means byte-identical JSON.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/clock.h"

namespace fbufs {

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(std::int64_t v) {
    value_ = v;
    if (v > max_) {
      max_ = v;
    }
    if (v < min_) {
      min_ = v;
    }
    samples_++;
  }
  std::int64_t value() const { return value_; }
  std::int64_t max() const { return max_; }
  std::int64_t min() const { return samples_ == 0 ? 0 : min_; }
  std::uint64_t samples() const { return samples_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
  std::int64_t min_ = INT64_MAX;
  std::uint64_t samples_ = 0;
};

// Log2-bucketed histogram: bucket b counts observations in [2^b, 2^(b+1))
// (bucket 0 additionally holds 0). 64 buckets cover the full uint64 range —
// right for latencies spanning nanoseconds to seconds.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(std::uint64_t v) {
    buckets_[BucketFor(v)]++;
    count_++;
    sum_ += v;
    if (count_ == 1 || v < min_) {
      min_ = v;
    }
    if (v > max_) {
      max_ = v;
    }
  }

  static int BucketFor(std::uint64_t v) {
    if (v < 2) {
      return 0;
    }
    int b = 0;
    while (v > 1) {
      v >>= 1;
      b++;
    }
    return b;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket(int b) const { return buckets_[b]; }

  // Log-bucket quantile estimate: finds the bucket where cumulative count
  // crosses q * count, interpolates linearly inside it, and clamps to the
  // observed [min, max]. q <= 0 returns min, q >= 1 returns max, an empty
  // histogram returns 0. Deterministic and allocation-free.
  std::uint64_t ApproxQuantile(double q) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  // Instruments are created on first request and live as long as the
  // registry; returned pointers are stable.
  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  Gauge* GetGauge(const std::string& name) { return &gauges_[name]; }
  Histogram* GetHistogram(const std::string& name) { return &histograms_[name]; }

  // --- Timestamped sampling (trace counter tracks) ---------------------------
  // Off by default: Sample() is then just Gauge::Set. When enabled, every
  // Sample() also appends a (time, value) point to the gauge's series so the
  // trace exporter can render it as a Chrome counter track. Bounded per
  // series; once full, further points update the gauge but are not logged.
  void EnableTraceSampling(std::size_t max_points_per_series = 65536) {
    sampling_ = true;
    max_points_ = max_points_per_series;
  }
  bool trace_sampling() const { return sampling_; }

  using Series = std::vector<std::pair<SimTime, std::int64_t>>;

  void Sample(const std::string& name, SimTime when, std::int64_t value) {
    GetGauge(name)->Set(value);
    if (sampling_) {
      Series& s = series_[name];
      if (s.size() < max_points_) {
        s.emplace_back(when, value);
      }
    }
  }

  const std::map<std::string, Series>& series() const { return series_; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  // Deterministic JSON object: {"counters":{...},"gauges":{...},
  // "histograms":{...}} in name order, integer values only. Empty buckets
  // are omitted from histogram serialization.
  std::string ToJson() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Series> series_;
  bool sampling_ = false;
  std::size_t max_points_ = 0;
};

}  // namespace fbufs

#endif  // SRC_OBS_METRICS_H_
