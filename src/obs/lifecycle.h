// Fbuf provenance: the lifecycle tracker records every state transition of
// every fbuf as a *journey* — allocate, map/TLB materialize, cross-domain
// transfer (sync IPC or ring handoff), retransmit/serve pins, pageout,
// degradation copies, and the final dealloc — each hop stamped with
// (SimTime, domain, CPU lane, layer).
//
// Identity: FbufId values are recycled through the per-(domain, path) free
// lists, so a journey is keyed by *allocation instance*, not by id. OnAlloc
// opens a journey and maps the id to it; OnFree / OnAbort close the journey
// and drop the mapping, so the next allocation of the same id opens a fresh
// journey. Hops on an id with no open journey are ignored (a tracker
// attached mid-run sees only journeys born after it).
//
// Provenance is a *checked* invariant, not best-effort logging: Reconcile()
// verifies that every ended journey is properly terminated (last hop kFree,
// or kAbort for a journey torn down with its domain) and that every
// recorded pin on a normally-ended journey has a recorded release. The
// fault campaigns run it next to the InvariantAuditor after every run.
//
// Export: TraceExporter::AddLifecycleFlows renders each journey as Chrome
// flow events ('s'/'t'/'f' arrows across per-domain lanes), so one fbuf's
// path through the host reads directly off the Perfetto timeline.
#ifndef SRC_OBS_LIFECYCLE_H_
#define SRC_OBS_LIFECYCLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/fbuf/fbuf.h"
#include "src/sim/clock.h"
#include "src/vm/types.h"

namespace fbufs {

class Machine;

// One state transition in a journey. The layer is the subsystem that drove
// the transition (static strings: "fbuf", "ipc", "ring", "proto", "serve",
// "pressure"), matching the hook's home in the source tree.
enum class HopKind : std::uint8_t {
  kAlloc = 0,     // journey opens (arg: bytes; cache hit vs carve in layer arg)
  kMaterialize,   // mapping / TLB entries built in a receiving domain
  kTransfer,      // cross-domain reference transfer (sync IPC path)
  kRingSubmit,    // handoff descriptor written into a transfer-ring SQ
  kRingDeliver,   // descriptor drained by the consumer (body ran)
  kPin,           // retained against reclaim (RetransmitLedger / FileServer)
  kUnpin,         // pin released (ack arrived / dealloc notice returned)
  kPageOut,       // pressure sweep moved the pages to backing store
  kPageIn,        // faulted back in from backing store
  kDegradeCopy,   // degraded path staged a copy instead of a reference
  kNotice,        // §3.3 dealloc notice applied (piggyback or ring)
  kFree,          // journey ends: final release back to the owner
  kAbort,         // journey ends: domain termination force-released it
  kCount,
};

const char* HopKindName(HopKind k);

struct LifecycleHop {
  SimTime time = 0;
  HopKind kind = HopKind::kAlloc;
  DomainId domain = kInvalidDomainId;
  std::uint32_t cpu = 0;
  const char* layer = "";  // static string supplied by the hook site
  std::uint64_t arg = 0;   // bytes, peer domain, seq, request id — per kind
};

struct Journey {
  std::uint64_t id = 0;  // unique per allocation instance, never recycled
  FbufId fbuf = kInvalidFbufId;
  std::uint64_t bytes = 0;
  DomainId originator = kInvalidDomainId;
  bool ended = false;
  bool aborted = false;
  std::uint32_t pins = 0;
  std::uint32_t unpins = 0;
  std::vector<LifecycleHop> hops;
};

class LifecycleTracker {
 public:
  // |max_journeys| bounds memory: once reached, new allocations are counted
  // (dropped_journeys) but not recorded. Reconcile only covers recorded
  // journeys, so a capped run is still internally consistent.
  explicit LifecycleTracker(Machine* machine,
                            std::size_t max_journeys = 1 << 16);

  LifecycleTracker(const LifecycleTracker&) = delete;
  LifecycleTracker& operator=(const LifecycleTracker&) = delete;

  // Opens a journey for a fresh allocation instance of |fb|. If the id is
  // somehow still mapped (a missed free), the stale journey is force-ended
  // so bookkeeping self-heals rather than cross-wiring two allocations.
  void OnAlloc(FbufId fb, DomainId domain, std::uint64_t bytes,
               bool cache_hit);

  // Records a mid-journey hop on the open journey of |fb| (no-op when none).
  // kPin / kUnpin additionally bump the journey's pin counters.
  void Hop(FbufId fb, HopKind kind, DomainId domain, const char* layer,
           std::uint64_t arg = 0);

  // Ends the journey: the fbuf returned to its owner (free list or destroy).
  void OnFree(FbufId fb, DomainId domain, const char* layer);

  // Ends the journey with an abort hop: the §3.3 termination sweep
  // force-released the dying domain's hold.
  void OnAbort(FbufId fb, DomainId domain, const char* layer);

  // --- Reconciliation ---------------------------------------------------------
  struct Reconciliation {
    std::uint64_t open = 0;           // journeys still in flight
    std::uint64_t ended = 0;          // journeys that closed normally
    std::uint64_t aborted = 0;        // journeys closed by domain termination
    std::uint64_t pin_imbalance = 0;  // ended (non-abort) with pins != unpins
    std::uint64_t bad_end = 0;        // ended journeys not ending kFree/kAbort
    std::uint64_t dropped = 0;        // allocations past the journey cap
    bool passed() const { return pin_imbalance == 0 && bad_end == 0; }
  };
  Reconciliation Reconcile() const;

  const std::deque<Journey>& journeys() const { return journeys_; }
  std::size_t open_count() const { return open_.size(); }
  std::uint64_t total_hops() const { return total_hops_; }
  std::uint64_t dropped_journeys() const { return dropped_; }

 private:
  Journey* Open(FbufId fb);
  void Stamp(LifecycleHop* hop);
  void End(FbufId fb, DomainId domain, const char* layer, bool abort);

  Machine* machine_;
  std::size_t max_journeys_;
  std::deque<Journey> journeys_;
  std::map<FbufId, std::size_t> open_;  // fbuf id -> index into journeys_
  std::uint64_t next_id_ = 1;
  std::uint64_t total_hops_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace fbufs

#endif  // SRC_OBS_LIFECYCLE_H_
