#include "src/obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "src/obs/lifecycle.h"

namespace fbufs {

namespace {

// Lane (tid) per trace category inside a host process. Markers share the
// phase lane.
std::uint32_t TidFor(TraceCategory c) { return static_cast<std::uint32_t>(c); }

}  // namespace

std::string TraceExporter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

void TraceExporter::AppendTimestamp(std::string* out, SimTime ns) {
  // Microseconds with nanosecond precision, integer arithmetic only.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
  out->append(buf);
}

void TraceExporter::AppendMeta(std::uint32_t pid, std::uint32_t tid, const char* what,
                               const std::string& name) {
  ExportEvent e;
  e.pid = pid;
  e.tid = tid;
  e.ph = 'M';
  e.name = what;
  e.args = "\"name\":\"" + Escape(name) + "\"";
  events_.push_back(std::move(e));
}

void TraceExporter::AddHost(const std::string& name, std::uint32_t pid, const Trace& trace) {
  AppendMeta(pid, 0, "process_name", name);
  for (std::uint8_t c = 0; c < static_cast<std::uint8_t>(TraceCategory::kCount); ++c) {
    AppendMeta(pid, TidFor(static_cast<TraceCategory>(c)), "thread_name",
               TraceCategoryName(static_cast<TraceCategory>(c)));
  }
  for (const TraceEvent& ev : trace.Snapshot()) {
    ExportEvent e;
    e.pid = pid;
    e.tid = TidFor(ev.category);
    e.ts = ev.time;
    e.name = ev.what;
    e.cat = TraceCategoryName(ev.category);
    switch (ev.phase) {
      case TracePhase::kBegin:
        e.ph = 'B';
        break;
      case TracePhase::kEnd:
        e.ph = 'E';
        break;
      case TracePhase::kMarker:
        e.ph = 'i';
        break;
      case TracePhase::kInstant:
        e.ph = 'i';
        break;
    }
    if (e.ph != 'E') {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "\"a\":%" PRIu64 ",\"b\":%" PRIu64, ev.a, ev.b);
      e.args = buf;
    }
    events_.push_back(std::move(e));
  }
}

void TraceExporter::AddResource(const Resource& resource) {
  const std::uint32_t tid = next_resource_tid_++;
  if (tid == 0) {
    AppendMeta(kResourcePid, 0, "process_name", "resources");
  }
  AppendMeta(kResourcePid, tid, "thread_name", resource.name());
  for (const Resource::BusyInterval& iv : resource.intervals()) {
    ExportEvent e;
    e.pid = kResourcePid;
    e.tid = tid;
    e.ts = iv.start;
    e.dur = iv.end - iv.start;
    e.ph = 'X';
    e.name = "busy";
    e.cat = "resource";
    events_.push_back(std::move(e));
  }
}

void TraceExporter::AddCounterTracks(const std::string& name, std::uint32_t pid,
                                     const MetricsRegistry& metrics,
                                     SimTime final_ts) {
  AppendMeta(pid, 0, "process_name", name);
  auto counter = [&](const std::string& track, SimTime ts, std::string args) {
    ExportEvent e;
    e.pid = pid;
    e.tid = 0;
    e.ts = ts;
    e.ph = 'C';
    e.name = track;
    e.cat = "metric";
    e.args = std::move(args);
    events_.push_back(std::move(e));
  };
  for (const auto& [track, series] : metrics.series()) {
    for (const auto& [when, value] : series) {
      counter(track, when, "\"value\":" + std::to_string(value));
    }
  }
  for (const auto& [track, gauge] : metrics.gauges()) {
    if (metrics.series().count(track) != 0) {
      continue;  // already a full track above
    }
    counter(track, final_ts, "\"value\":" + std::to_string(gauge.value()));
  }
  for (const auto& [track, hist] : metrics.histograms()) {
    counter(track, final_ts,
            "\"count\":" + std::to_string(hist.count()) +
                ",\"p50\":" + std::to_string(hist.ApproxQuantile(0.5)) +
                ",\"p99\":" + std::to_string(hist.ApproxQuantile(0.99)));
  }
}

void TraceExporter::AddLifecycleFlows(const std::string& name,
                                      std::uint32_t pid,
                                      const LifecycleTracker& tracker) {
  AppendMeta(pid, 0, "process_name", name);
  // One lane per domain, allocated in first-encounter order across the
  // deterministic journey sequence, so same-seed exports stay identical.
  std::map<DomainId, std::uint32_t> lanes;
  auto lane = [&](DomainId d) {
    auto it = lanes.find(d);
    if (it != lanes.end()) {
      return it->second;
    }
    const std::uint32_t tid = static_cast<std::uint32_t>(lanes.size());
    lanes.emplace(d, tid);
    AppendMeta(pid, tid, "thread_name", "domain" + std::to_string(d));
    return tid;
  };
  for (const Journey& j : tracker.journeys()) {
    const std::size_t n = j.hops.size();
    for (std::size_t i = 0; i < n; ++i) {
      const LifecycleHop& hop = j.hops[i];
      const std::uint32_t tid = lane(hop.domain);
      // The hop slice: a fixed-width marker the flow arrows can bind to
      // (Chrome flow events attach to the slice enclosing their timestamp).
      ExportEvent x;
      x.pid = pid;
      x.tid = tid;
      x.ts = hop.time;
      x.dur = 1000;
      x.ph = 'X';
      x.name = HopKindName(hop.kind);
      x.cat = "lifecycle";
      x.args = "\"journey\":" + std::to_string(j.id) +
               ",\"fbuf\":" + std::to_string(j.fbuf) +
               ",\"layer\":\"" + Escape(hop.layer) +
               "\",\"cpu\":" + std::to_string(hop.cpu) +
               ",\"arg\":" + std::to_string(hop.arg);
      events_.push_back(std::move(x));
      if (n < 2) {
        continue;  // a single-hop journey has no arrow to draw
      }
      ExportEvent f;
      f.pid = pid;
      f.tid = tid;
      f.ts = hop.time;
      f.ph = i == 0 ? 's' : (i + 1 == n ? 'f' : 't');
      f.name = "fbuf-journey";
      f.cat = "lifecycle";
      f.flow_id = j.id;
      events_.push_back(std::move(f));
    }
  }
}

void TraceExporter::AddLaneConservation(const std::string& lane_name,
                                        SimTime busy, SimTime elapsed) {
  const std::uint32_t tid = next_lane_tid_++;
  if (tid == 0) {
    AppendMeta(kConservationPid, 0, "process_name", "conservation");
  }
  AppendMeta(kConservationPid, tid, "thread_name", lane_name);
  ExportEvent e;
  e.pid = kConservationPid;
  e.tid = tid;
  e.ts = elapsed;
  e.ph = 'i';
  e.name = "lane_conservation";
  e.cat = "conservation";
  const SimTime idle = elapsed >= busy ? elapsed - busy : 0;
  e.args = "\"busy\":" + std::to_string(busy) +
           ",\"idle\":" + std::to_string(idle) +
           ",\"elapsed\":" + std::to_string(elapsed);
  events_.push_back(std::move(e));
}

std::string TraceExporter::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const ExportEvent& e : events_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"";
    out += Escape(e.name);
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    if (e.ph != 'M') {
      out += ",\"ts\":";
      AppendTimestamp(&out, e.ts);
    }
    if (e.ph == 'X') {
      out += ",\"dur\":";
      AppendTimestamp(&out, e.dur);
    }
    if (e.ph == 'i') {
      // Thread-scoped instants; markers read better process-wide but "t"
      // keeps them on their category lane.
      out += ",\"s\":\"t\"";
    }
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
      out += ",\"id\":";
      out += std::to_string(e.flow_id);
      if (e.ph == 'f') {
        // Bind the terminating arrow to the enclosing slice, matching the
        // 's'/'t' steps (Chrome's bp:"e" flow-end convention).
        out += ",\"bp\":\"e\"";
      }
    }
    if (!e.cat.empty()) {
      out += ",\"cat\":\"";
      out += Escape(e.cat);
      out += "\"";
    }
    if (!e.args.empty()) {
      out += ",\"args\":{";
      out += e.args;
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool TraceExporter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

}  // namespace fbufs
