#include "src/obs/metrics.h"

#include <sstream>

namespace fbufs {

std::uint64_t Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) {
      continue;
    }
    const std::uint64_t before = seen;
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target) {
      // Interpolate linearly inside bucket b ([2^b, 2^(b+1)-1]; bucket 0
      // holds 0 and 1), then clamp to the observed range so the estimate
      // never leaves [min, max].
      const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << b);
      const std::uint64_t hi =
          b >= 63 ? UINT64_MAX : (std::uint64_t{2} << b) - 1;
      const double frac = (target - static_cast<double>(before)) /
                          static_cast<double>(buckets_[b]);
      std::uint64_t v =
          lo + static_cast<std::uint64_t>(frac * static_cast<double>(hi - lo));
      if (v < min_) {
        v = min_;
      }
      if (v > max_) {
        v = max_;
      }
      return v;
    }
  }
  return max_;
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os << "{";
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c.value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"value\":" << g.value()
       << ",\"min\":" << g.min() << ",\"max\":" << g.max() << ",\"samples\":" << g.samples()
       << "}";
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << h.count()
       << ",\"sum\":" << h.sum() << ",\"min\":" << h.min() << ",\"max\":" << h.max()
       << ",\"p50\":" << h.ApproxQuantile(0.5) << ",\"p99\":" << h.ApproxQuantile(0.99)
       << ",\"buckets\":{";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket(b) == 0) {
        continue;
      }
      os << (bfirst ? "" : ",") << "\"" << b << "\":" << h.bucket(b);
      bfirst = false;
    }
    os << "}}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace fbufs
