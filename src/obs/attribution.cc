#include "src/obs/attribution.h"

#include <sstream>

namespace fbufs {

const char* CostDomainName(CostDomain d) {
  switch (d) {
    case CostDomain::kVm:
      return "vm";
    case CostDomain::kFbuf:
      return "fbuf";
    case CostDomain::kIpc:
      return "ipc";
    case CostDomain::kBaseline:
      return "baseline";
    case CostDomain::kProto:
      return "proto";
    case CostDomain::kNet:
      return "net";
    case CostDomain::kCache:
      return "cache";
    case CostDomain::kMsg:
      return "msg";
    case CostDomain::kApp:
      return "app";
    case CostDomain::kDispatch:
      return "dispatch";
    case CostDomain::kRing:
      return "ring";
    case CostDomain::kWait:
      return "wait";
    case CostDomain::kOther:
      return "other";
    case CostDomain::kCount:
      break;
  }
  return "?";
}

SimTime Attribution::ByLayer(CostDomain d) const {
  SimTime sum = 0;
  for (const auto& [key, ns] : cells_) {
    if (key.layer == d) {
      sum += ns;
    }
  }
  return sum;
}

SimTime Attribution::ByDomain(DomainId d) const {
  SimTime sum = 0;
  for (const auto& [key, ns] : cells_) {
    if (key.domain == d) {
      sum += ns;
    }
  }
  return sum;
}

SimTime Attribution::ByPath(AttrPathId p) const {
  SimTime sum = 0;
  for (const auto& [key, ns] : cells_) {
    if (key.path == p) {
      sum += ns;
    }
  }
  return sum;
}

SimTime Attribution::ByCpu(std::uint32_t c) const {
  SimTime sum = 0;
  for (const auto& [key, ns] : cells_) {
    if (key.cpu == c) {
      sum += ns;
    }
  }
  return sum;
}

SimTime Attribution::Snapshot::ByLayer(CostDomain d) const {
  SimTime sum = 0;
  for (const auto& [key, ns] : cells) {
    if (key.layer == d) {
      sum += ns;
    }
  }
  return sum;
}

Attribution::Snapshot Attribution::Snapshot::Since(const Snapshot& base) const {
  Snapshot delta;
  delta.total = total - base.total;
  for (const auto& [key, ns] : cells) {
    auto it = base.cells.find(key);
    const SimTime before = it == base.cells.end() ? 0 : it->second;
    if (ns > before) {
      delta.cells[key] = ns - before;
    }
  }
  return delta;
}

std::string Attribution::DebugString() const {
  std::ostringstream os;
  os << "total=" << total_ << "ns";
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(CostDomain::kCount); ++i) {
    const CostDomain d = static_cast<CostDomain>(i);
    const SimTime ns = ByLayer(d);
    if (ns > 0) {
      os << " " << CostDomainName(d) << "=" << ns;
    }
  }
  return os.str();
}

}  // namespace fbufs
