// Time-attribution profiler: where every simulated nanosecond went.
//
// The paper's whole argument is a cost decomposition (Tables 1/2 charge each
// transfer facility per page for clearing, copying, mapping and TLB/cache
// consistency). SimStats counts *operations*; this profiler accounts *time*,
// broken down three ways at once:
//
//   * layer  (CostDomain) — which subsystem charged the clock (vm, fbuf,
//     ipc, baseline, proto, net, cache, msg, app, wait);
//   * actor  — the protection domain on whose behalf the charge was made;
//   * path   — the I/O data path the work belonged to.
//
// The accumulator hangs off the host's SimClock via its charge hook, so
// every clock movement — explicit Advance charges and event-delivery waits
// alike — lands in exactly one (layer, actor, path) cell. That makes the
// conservation invariant structural rather than aspirational:
//
//     sum over all cells == host clock elapsed, always.
//
// Charge sites tag themselves with cheap RAII scopes (LayerScope,
// ActorScope, PathScope); the innermost layer wins, so VM work performed on
// behalf of an fbuf transfer is attributed to the VM layer while the fbuf
// bookkeeping around it stays with the fbuf layer. Untagged charges fall
// into kOther — visible, never lost. Event-delivery waits (AdvanceTo) are
// attributed to kWait. Attribution charges zero simulated time itself, so
// enabling it cannot perturb any bench number.
#ifndef SRC_OBS_ATTRIBUTION_H_
#define SRC_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/sim/clock.h"
#include "src/vm/types.h"

namespace fbufs {

// Mirrors src/fbuf/fbuf.h (not included here: obs sits below fbuf).
using AttrPathId = std::uint32_t;
inline constexpr AttrPathId kAttrNoPath = static_cast<AttrPathId>(-1);

// The layer a clock charge belongs to. One value per subsystem that charges
// simulated time, plus kWait (event-delivery idle time) and kOther (charges
// no scope claimed).
enum class CostDomain : std::uint8_t {
  kVm = 0,    // page tables, TLB/cache consistency, faults, protection
  kFbuf,      // fbuf allocation, transfer, caching, region bookkeeping
  kIpc,       // cross-domain RPC crossings
  kBaseline,  // copy / COW / remap comparison facilities
  kProto,     // protocol processing (UDP/IP/SWP/test protocols)
  kNet,       // device driver and adapter work
  kCache,     // file cache disk access
  kMsg,       // message-layer data touching (checksums, HBIO copies, fills)
  kApp,       // application data touching (TouchRange word reads/writes)
  kDispatch,  // evented dispatch overhead (enqueue/run scheduling cost)
  kRing,      // shared-memory transfer rings (descriptor writes, doorbells)
  kWait,      // clock moved to an event delivery time (host was idle)
  kOther,     // charge with no enclosing scope
  kCount,
};

const char* CostDomainName(CostDomain d);

class Attribution {
 public:
  // One accumulation cell: (layer, acting domain, path, cpu). Ordered so
  // serialization is deterministic. The cpu dimension is 0 for the whole
  // life of a single-CPU machine, so single-CPU cell sets are unchanged.
  struct Key {
    CostDomain layer = CostDomain::kOther;
    DomainId domain = kInvalidDomainId;
    AttrPathId path = kAttrNoPath;
    std::uint32_t cpu = 0;

    bool operator<(const Key& o) const {
      if (layer != o.layer) {
        return layer < o.layer;
      }
      if (domain != o.domain) {
        return domain < o.domain;
      }
      if (path != o.path) {
        return path < o.path;
      }
      return cpu < o.cpu;
    }
    bool operator==(const Key& o) const {
      return layer == o.layer && domain == o.domain && path == o.path && cpu == o.cpu;
    }
  };

  Attribution() { Revalidate(); }

  Attribution(const Attribution&) = delete;
  Attribution& operator=(const Attribution&) = delete;

  // --- Recording (called from the SimClock charge hook) ----------------------
  void Record(SimTime ns) {
    *work_cell_ += ns;
    total_ += ns;
  }
  void RecordWait(SimTime ns) {
    *wait_cell_ += ns;
    total_ += ns;
  }

  // The SimClock::ChargeHook thunk: |ctx| is the Attribution*.
  static void ClockHook(void* ctx, SimTime ns, bool wait) {
    auto* a = static_cast<Attribution*>(ctx);
    if (wait) {
      a->RecordWait(ns);
    } else {
      a->Record(ns);
    }
  }

  // --- Context (scopes below maintain these) ---------------------------------
  void PushLayer(CostDomain d) {
    if (depth_ < kMaxDepth) {
      stack_[depth_] = d;
    }
    depth_++;
    Revalidate();
  }
  void PopLayer() {
    depth_--;
    Revalidate();
  }
  CostDomain CurrentLayer() const {
    if (depth_ == 0) {
      return CostDomain::kOther;
    }
    const std::size_t top = depth_ <= kMaxDepth ? depth_ - 1 : kMaxDepth - 1;
    return stack_[top];
  }

  DomainId actor() const { return actor_; }
  void SetActor(DomainId d) {
    actor_ = d;
    Revalidate();
  }
  AttrPathId path() const { return path_; }
  void SetPath(AttrPathId p) {
    path_ = p;
    Revalidate();
  }
  std::uint32_t cpu() const { return cpu_; }
  // The CPU lane charges land on. Maintained by Machine::SetActiveCpu, not
  // by a scope here: the active lane is machine state, not call-site state.
  void SetCpu(std::uint32_t c) {
    cpu_ = c;
    Revalidate();
  }

  // --- Inspection -------------------------------------------------------------
  // Total attributed time. The conservation invariant: equals the host
  // clock's Now() whenever the accumulator was attached at clock birth.
  SimTime total() const { return total_; }

  SimTime ByLayer(CostDomain d) const;
  SimTime ByDomain(DomainId d) const;
  SimTime ByPath(AttrPathId p) const;
  // Per-lane total: on a multicore machine this equals that lane's clock
  // (per-lane conservation); summed over lanes it equals total().
  SimTime ByCpu(std::uint32_t c) const;
  const std::map<Key, SimTime>& cells() const { return cells_; }

  // A value-semantics copy for windowed measurement (bench warmup).
  struct Snapshot {
    std::map<Key, SimTime> cells;
    SimTime total = 0;

    SimTime ByLayer(CostDomain d) const;
    // Cell-wise difference against an earlier snapshot of the same
    // accumulator (assumes monotonic growth).
    Snapshot Since(const Snapshot& base) const;
  };
  Snapshot Take() const { return Snapshot{cells_, total_}; }

  // Deterministic single-line summary (nonzero layers only), for debugging.
  std::string DebugString() const;

 private:
  static constexpr std::size_t kMaxDepth = 16;

  // Re-resolves the cached cell pointers after any context change; Record
  // and RecordWait stay two additions each.
  void Revalidate() {
    work_cell_ = &cells_[Key{CurrentLayer(), actor_, path_, cpu_}];
    wait_cell_ = &cells_[Key{CostDomain::kWait, actor_, path_, cpu_}];
  }

  std::map<Key, SimTime> cells_;
  SimTime total_ = 0;
  SimTime* work_cell_ = nullptr;
  SimTime* wait_cell_ = nullptr;
  CostDomain stack_[kMaxDepth] = {};
  std::size_t depth_ = 0;
  DomainId actor_ = kInvalidDomainId;
  AttrPathId path_ = kAttrNoPath;
  std::uint32_t cpu_ = 0;
};

// --- Tagging scopes (RAII; nestable; innermost wins) ---------------------------

class LayerScope {
 public:
  LayerScope(Attribution& a, CostDomain d) : a_(&a) { a_->PushLayer(d); }
  ~LayerScope() { a_->PopLayer(); }
  LayerScope(const LayerScope&) = delete;
  LayerScope& operator=(const LayerScope&) = delete;

 private:
  Attribution* a_;
};

class ActorScope {
 public:
  ActorScope(Attribution& a, DomainId d) : a_(&a), prev_(a.actor()) { a_->SetActor(d); }
  ~ActorScope() { a_->SetActor(prev_); }
  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  Attribution* a_;
  DomainId prev_;
};

class PathScope {
 public:
  PathScope(Attribution& a, AttrPathId p) : a_(&a), prev_(a.path()) { a_->SetPath(p); }
  ~PathScope() { a_->SetPath(prev_); }
  PathScope(const PathScope&) = delete;
  PathScope& operator=(const PathScope&) = delete;

 private:
  Attribution* a_;
  AttrPathId prev_;
};

}  // namespace fbufs

#endif  // SRC_OBS_ATTRIBUTION_H_
