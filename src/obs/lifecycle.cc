#include "src/obs/lifecycle.h"

#include "src/vm/machine.h"

namespace fbufs {

const char* HopKindName(HopKind k) {
  switch (k) {
    case HopKind::kAlloc:
      return "alloc";
    case HopKind::kMaterialize:
      return "materialize";
    case HopKind::kTransfer:
      return "transfer";
    case HopKind::kRingSubmit:
      return "ring-submit";
    case HopKind::kRingDeliver:
      return "ring-deliver";
    case HopKind::kPin:
      return "pin";
    case HopKind::kUnpin:
      return "unpin";
    case HopKind::kPageOut:
      return "pageout";
    case HopKind::kPageIn:
      return "pagein";
    case HopKind::kDegradeCopy:
      return "degrade-copy";
    case HopKind::kNotice:
      return "notice";
    case HopKind::kFree:
      return "free";
    case HopKind::kAbort:
      return "abort";
    case HopKind::kCount:
      break;
  }
  return "?";
}

LifecycleTracker::LifecycleTracker(Machine* machine, std::size_t max_journeys)
    : machine_(machine), max_journeys_(max_journeys) {}

void LifecycleTracker::Stamp(LifecycleHop* hop) {
  hop->time = machine_->clock().Now();
  hop->cpu = machine_->active_cpu();
}

Journey* LifecycleTracker::Open(FbufId fb) {
  auto it = open_.find(fb);
  return it == open_.end() ? nullptr : &journeys_[it->second];
}

void LifecycleTracker::OnAlloc(FbufId fb, DomainId domain, std::uint64_t bytes,
                               bool cache_hit) {
  if (Journey* stale = Open(fb)) {
    // A missed free would cross-wire two allocation instances; close the
    // stale journey (flagged by its bad end in Reconcile) and start clean.
    stale->ended = true;
    open_.erase(fb);
  }
  if (journeys_.size() >= max_journeys_) {
    dropped_++;
    return;
  }
  Journey j;
  j.id = next_id_++;
  j.fbuf = fb;
  j.bytes = bytes;
  j.originator = domain;
  LifecycleHop hop;
  Stamp(&hop);
  hop.kind = HopKind::kAlloc;
  hop.domain = domain;
  hop.layer = cache_hit ? "fbuf:cached" : "fbuf:carve";
  hop.arg = bytes;
  j.hops.push_back(hop);
  total_hops_++;
  open_[fb] = journeys_.size();
  journeys_.push_back(std::move(j));
}

void LifecycleTracker::Hop(FbufId fb, HopKind kind, DomainId domain,
                           const char* layer, std::uint64_t arg) {
  Journey* j = Open(fb);
  if (j == nullptr) {
    return;
  }
  LifecycleHop hop;
  Stamp(&hop);
  hop.kind = kind;
  hop.domain = domain;
  hop.layer = layer;
  hop.arg = arg;
  j->hops.push_back(hop);
  total_hops_++;
  if (kind == HopKind::kPin) {
    j->pins++;
  } else if (kind == HopKind::kUnpin) {
    j->unpins++;
  }
}

void LifecycleTracker::End(FbufId fb, DomainId domain, const char* layer,
                           bool abort) {
  Journey* j = Open(fb);
  if (j == nullptr) {
    return;
  }
  LifecycleHop hop;
  Stamp(&hop);
  hop.kind = abort ? HopKind::kAbort : HopKind::kFree;
  hop.domain = domain;
  hop.layer = layer;
  j->hops.push_back(hop);
  total_hops_++;
  j->ended = true;
  j->aborted = abort;
  open_.erase(fb);
}

void LifecycleTracker::OnFree(FbufId fb, DomainId domain, const char* layer) {
  End(fb, domain, layer, /*abort=*/false);
}

void LifecycleTracker::OnAbort(FbufId fb, DomainId domain, const char* layer) {
  End(fb, domain, layer, /*abort=*/true);
}

LifecycleTracker::Reconciliation LifecycleTracker::Reconcile() const {
  Reconciliation r;
  r.dropped = dropped_;
  for (const Journey& j : journeys_) {
    if (!j.ended) {
      r.open++;
      continue;
    }
    if (j.aborted) {
      r.aborted++;
    } else {
      r.ended++;
      if (j.pins != j.unpins) {
        r.pin_imbalance++;
      }
    }
    if (j.hops.empty() || (j.hops.back().kind != HopKind::kFree &&
                           j.hops.back().kind != HopKind::kAbort)) {
      r.bad_end++;
    }
  }
  return r;
}

}  // namespace fbufs
