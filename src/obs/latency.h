// End-to-end latency decomposition: where a message's time went.
//
// A LatencyDecomposition collects exact per-sample slices of one flow's
// end-to-end latency:
//
//   queue_wait — admission delay before the transport accepted the PDU
//                (backpressure parking, issue-queue overflow)
//   wire       — last transmission to delivery/acknowledgement (serialization
//                + fabric + DMA; Karn-style, excludes earlier losses)
//   dispatch   — delivery-ready to handler-ran (event-loop / dispatch-queue
//                latency on the receiving side)
//   retransmit — first transmission to last transmission (zero unless the
//                PDU was retransmitted)
//   pin_hold   — how long a retained/pinned reference was held (push-to-ack
//                on the sender, pin-to-release in the file server)
//
// Samples are exact (no bucketing); quantiles are nearest-rank over the
// sorted sample set, so p50/p99/p999 are actual observed values and the JSON
// is deterministic for same-seed runs. Slices a workload never exercises
// stay empty and report count 0.
#ifndef SRC_OBS_LATENCY_H_
#define SRC_OBS_LATENCY_H_

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace fbufs {

struct LatencyDecomposition {
  std::vector<SimTime> queue_wait;
  std::vector<SimTime> wire;
  std::vector<SimTime> dispatch;
  std::vector<SimTime> retransmit;
  std::vector<SimTime> pin_hold;

  // Nearest-rank quantile over a SORTED sample vector: the smallest sample
  // with cumulative rank >= q * n. Empty vectors report 0.
  static SimTime Quantile(const std::vector<SimTime>& sorted, double q) {
    if (sorted.empty()) {
      return 0;
    }
    if (q <= 0.0) {
      return sorted.front();
    }
    if (q >= 1.0) {
      return sorted.back();
    }
    std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size()) + 0.999999);
    if (rank == 0) {
      rank = 1;
    }
    if (rank > sorted.size()) {
      rank = sorted.size();
    }
    return sorted[rank - 1];
  }

  std::uint64_t total_samples() const {
    return static_cast<std::uint64_t>(queue_wait.size() + wire.size() +
                                      dispatch.size() + retransmit.size() +
                                      pin_hold.size());
  }

  void Merge(const LatencyDecomposition& other) {
    auto append = [](std::vector<SimTime>& dst, const std::vector<SimTime>& src) {
      dst.insert(dst.end(), src.begin(), src.end());
    };
    append(queue_wait, other.queue_wait);
    append(wire, other.wire);
    append(dispatch, other.dispatch);
    append(retransmit, other.retransmit);
    append(pin_hold, other.pin_hold);
  }

  // {"queue_wait":{"count":N,"p50":..,"p99":..,"p999":..}, ...} — one object
  // per slice, fixed order, integer nanoseconds.
  std::string ToJson() const {
    std::ostringstream out;
    out << "{";
    const struct {
      const char* name;
      const std::vector<SimTime>* samples;
    } slices[] = {
        {"queue_wait", &queue_wait}, {"wire", &wire},
        {"dispatch", &dispatch},     {"retransmit", &retransmit},
        {"pin_hold", &pin_hold},
    };
    bool first = true;
    for (const auto& s : slices) {
      std::vector<SimTime> sorted = *s.samples;
      std::sort(sorted.begin(), sorted.end());
      if (!first) {
        out << ", ";
      }
      first = false;
      out << "\"" << s.name << "\": {\"count\": " << sorted.size()
          << ", \"p50\": " << Quantile(sorted, 0.5)
          << ", \"p99\": " << Quantile(sorted, 0.99)
          << ", \"p999\": " << Quantile(sorted, 0.999) << "}";
    }
    out << "}";
    return out.str();
  }
};

}  // namespace fbufs

#endif  // SRC_OBS_LATENCY_H_
