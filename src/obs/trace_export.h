// Chrome trace_event JSON export.
//
// Renders per-host Trace rings (spans, instants, phase markers) and
// EventLoop Resource busy intervals into the Chrome trace_event format, so a
// simulated run can be loaded into Perfetto (ui.perfetto.dev) or
// chrome://tracing and inspected on a real timeline UI.
//
// Mapping: each host is a process (pid); within a host, each TraceCategory
// is a thread lane (tid), so nested spans in one category render as a stack
// and concurrent layers sit side by side. Resources get their own lanes of
// "X" (complete) events under a shared "resources" pid. Phase markers become
// process-scoped instants. Timestamps are simulated nanoseconds printed as
// microseconds with three decimals — pure integer formatting, so export is
// deterministic: same seed, byte-identical file.
#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/sim/trace.h"

namespace fbufs {

class LifecycleTracker;

class TraceExporter {
 public:
  // Adds one host's trace ring as a process lane group. |pid| must be unique
  // per host; the snapshot is taken at call time.
  void AddHost(const std::string& name, std::uint32_t pid, const Trace& trace);

  // Adds a resource's recorded busy intervals (requires
  // Resource::set_record_intervals(true) before the run) as a lane of "X"
  // events under the shared resources process.
  void AddResource(const Resource& resource);

  // Renders a MetricsRegistry as Chrome counter tracks ("C" events) under
  // process |pid| named |name|. Timestamped series (EnableTraceSampling +
  // Sample) become full tracks; gauges without a series get a single final
  // point at |final_ts|; histograms get a summary point (count, p50, p99).
  // Iteration is in name order, so export stays deterministic.
  void AddCounterTracks(const std::string& name, std::uint32_t pid,
                        const MetricsRegistry& metrics, SimTime final_ts);

  // Renders every journey the tracker recorded as Chrome flow events under
  // process |pid| named |name|: one lane (tid) per domain, a short "X" slice
  // per hop (named after the hop kind, args carry journey/fbuf/layer/cpu),
  // and an 's'/'t'/'f' flow chain with id = journey id binding the hops, so
  // one fbuf's path renders as arrows across the domain lanes in Perfetto.
  void AddLifecycleFlows(const std::string& name, std::uint32_t pid,
                         const LifecycleTracker& tracker);

  // One "lane_conservation" instant at |elapsed| for CPU lane |lane_name|:
  // args carry busy/idle/elapsed so tools/validate_traces.py can re-check
  // busy + idle == elapsed per lane. Lanes share a "conservation" process.
  void AddLaneConservation(const std::string& lane_name, SimTime busy,
                           SimTime elapsed);

  // The complete trace document: {"traceEvents":[...],"displayTimeUnit":"ns"}.
  std::string ToJson() const;

  // Writes ToJson() to |path|; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  std::size_t event_count() const { return events_.size(); }

 private:
  struct ExportEvent {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    SimTime ts = 0;
    SimTime dur = 0;         // "X" events only
    char ph = 'i';           // B, E, i, X, M, C, s, t, f
    std::string name;
    std::string args;        // pre-rendered JSON object body, may be empty
    std::string cat;
    std::uint64_t flow_id = 0;  // 's'/'t'/'f' events only
  };

  void AppendMeta(std::uint32_t pid, std::uint32_t tid, const char* what,
                  const std::string& name);

  static std::string Escape(const std::string& s);
  static void AppendTimestamp(std::string* out, SimTime ns);

  std::vector<ExportEvent> events_;
  std::uint32_t next_resource_tid_ = 0;
  std::uint32_t next_lane_tid_ = 0;
  static constexpr std::uint32_t kResourcePid = 9999;
  static constexpr std::uint32_t kConservationPid = 9998;
};

}  // namespace fbufs

#endif  // SRC_OBS_TRACE_EXPORT_H_
