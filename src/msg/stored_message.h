// Integrated buffer management / transfer (§3.2.3) and the safe walker
// defences for volatile DAGs (§3.2.4).
//
// A StoredMessage is an aggregate object whose DAG nodes themselves live in
// an fbuf, at the same virtual address in every domain of the path. Sending
// it across a boundary passes only the root reference; the kernel walks the
// DAG and transfers the reachable fbufs that are not already mapped. The
// receiver reconstructs a Message view by traversing the stored nodes —
// defensively, because a volatile DAG can be scribbled by its originator at
// any time:
//   * every pointer is range-checked against the fbuf region;
//   * traversal detects cycles and bounds node count;
//   * reads of pages the receiver has no mapping for complete as absent
//     data (the VM maps an all-zero page, which decodes as an empty leaf).
#ifndef SRC_MSG_STORED_MESSAGE_H_
#define SRC_MSG_STORED_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "src/fbuf/fbuf_system.h"
#include "src/msg/message.h"

namespace fbufs {

// On-fbuf node encoding. 32 bytes. An all-zero record decodes as an empty
// leaf — that is deliberate: the VM's absent-data page (all zeros) must read
// as "no data here".
struct RawNode {
  static constexpr std::uint32_t kLeaf = 0;
  static constexpr std::uint32_t kPair = 1;

  std::uint32_t type = kLeaf;
  std::uint32_t reserved = 0;
  std::uint64_t a = 0;    // leaf: data address | pair: left child address
  std::uint64_t b = 0;    // leaf: unused       | pair: right child address
  std::uint64_t len = 0;  // leaf: extent bytes | pair: total bytes
};
static_assert(sizeof(RawNode) == 32);

struct StoredMessage {
  Fbuf* node_fbuf = nullptr;  // holds the serialized DAG; root at offset 0
  VirtAddr root = 0;
  std::uint64_t length = 0;
  // Every fbuf the message needs on the other side: node fbuf first, then
  // the data fbufs in first-reference order.
  std::vector<Fbuf*> fbufs;
};

// Outcome details of a defensive traversal.
struct WalkReport {
  std::uint64_t nodes_visited = 0;
  std::uint64_t bad_pointers = 0;    // out-of-region references substituted
  std::uint64_t absent_leaves = 0;   // unmapped/zero nodes read as no-data
  std::uint64_t cycle_cut = 0;       // back-edges cut
  bool truncated = false;            // node budget exhausted
};

class IntegratedTransfer {
 public:
  // Maximum nodes a single traversal will visit before declaring the DAG
  // malicious (bounds work even against cycle-free blowups).
  static constexpr std::uint64_t kMaxNodes = 65536;

  explicit IntegratedTransfer(FbufSystem* fsys) : fsys_(fsys) {}

  // Serializes |m|'s DAG into a fresh node fbuf allocated by |originator| on
  // |path|, producing a StoredMessage whose root is the node fbuf's base.
  Status Store(Domain& originator, PathId path, const Message& m, bool want_volatile,
               StoredMessage* out);

  // Passes the aggregate by reference: transfers the node fbuf and every
  // reachable data fbuf that is not already mapped in |to|. No list is
  // marshalled and nothing is rebuilt (that is the optimization).
  Status Send(StoredMessage& sm, Domain& from, Domain& to);

  // Defensive traversal by |receiver| starting at |root|. On success *out is
  // a Message view over the referenced extents. With |strict| true, bad
  // pointers and cycles fail with kBadPointer/kCycle instead of substituting
  // absent data.
  Status Load(Domain& receiver, VirtAddr root, Message* out, WalkReport* report = nullptr,
              bool strict = false);

  // Releases the references |holder| got from Send/Store (node + data
  // fbufs).
  Status FreeAll(StoredMessage& sm, Domain& holder);

 private:
  FbufSystem* fsys_;
};

}  // namespace fbufs

#endif  // SRC_MSG_STORED_MESSAGE_H_
