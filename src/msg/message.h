// Aggregate object: the x-kernel-style immutable message DAG (§3.1, Fig. 2).
//
// A Message is a directed acyclic graph whose leaves reference byte extents
// inside fbufs. Messages are immutable: join/split/clip produce new views
// that share the underlying buffers — no data moves. This is the abstraction
// protocols use: headers are prepended by concatenation, fragmentation is
// slicing, reassembly is joining.
//
// This header is the private (per-domain, heap-allocated) representation;
// stored_message.h provides the integrated form where the DAG itself lives
// in fbufs and crosses domains by reference (§3.2.3).
#ifndef SRC_MSG_MESSAGE_H_
#define SRC_MSG_MESSAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/fbuf/fbuf.h"
#include "src/vm/domain.h"
#include "src/vm/types.h"

namespace fbufs {

// One contiguous run of message bytes.
struct Extent {
  Fbuf* fb = nullptr;  // nullptr for absent data (reads as zeros)
  VirtAddr addr = 0;
  std::uint64_t len = 0;
};

class Message {
 public:
  // The empty message.
  Message() = default;

  // A leaf over [off, off+len) of |fb|'s bytes.
  static Message Leaf(Fbuf* fb, std::uint64_t off, std::uint64_t len);

  // A leaf over the whole (requested) size of |fb|.
  static Message Whole(Fbuf* fb) { return Leaf(fb, 0, fb->bytes); }

  // An "absent data" leaf: |len| bytes that read as zeros and reference no
  // buffer. This is what a safe traversal substitutes for invalid DAG
  // references.
  static Message Absent(std::uint64_t len);

  // Join: logical concatenation, sharing both operands (the paper's buffer
  // aggregation; protocols use it to attach headers and reassemble ADUs).
  static Message Concat(const Message& left, const Message& right);

  // Clip: the sub-message [off, off+len); shares the underlying buffers.
  // Out-of-range requests are truncated to the available bytes.
  Message Slice(std::uint64_t off, std::uint64_t len) const;

  // Split at |at|: {head, tail} views.
  std::pair<Message, Message> Split(std::uint64_t at) const {
    return {Slice(0, at), Slice(at, length() - std::min(at, length()))};
  }

  std::uint64_t length() const { return root_ ? root_->len : 0; }
  bool empty() const { return length() == 0; }

  // Leaf-order walk of the extents.
  void ForEachExtent(const std::function<void(const Extent&)>& fn) const;
  std::vector<Extent> Extents() const;

  // The distinct fbufs this message references, in first-appearance order.
  std::vector<Fbuf*> Fbufs() const;

  // --- Data access through a domain (checked; absent data reads zeros) ------
  Status CopyOut(Domain& d, std::uint64_t off, void* dst, std::uint64_t len) const;
  // Touch one word per page of every extent (the paper's consumer pattern).
  Status Touch(Domain& d, Access access) const;
  // Full-content checksum-style read returning a 16-bit one's complement sum
  // (used by protocols; charges the per-byte checksum cost).
  Status Checksum(Domain& d, std::uint16_t* out) const;

  // Number of DAG nodes (for integrated storage sizing and tests).
  std::size_t NodeCount() const;

 private:
  struct Node {
    // Leaf when left == nullptr.
    std::shared_ptr<Node> left;
    std::shared_ptr<Node> right;
    Extent extent;  // valid for leaves
    std::uint64_t len = 0;
  };

  explicit Message(std::shared_ptr<Node> root) : root_(std::move(root)) {}

  static Message FromExtents(const std::vector<Extent>& extents);

  std::shared_ptr<Node> root_;
};

}  // namespace fbufs

#endif  // SRC_MSG_MESSAGE_H_
