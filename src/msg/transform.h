// Whole-data manipulations under immutability (§5.2).
//
// "Since fbufs are immutable, data modifications require the use of a new
// buffer. Within the network subsystem, this does not incur a performance
// penalty, since data manipulations are either applied to the entire data
// (presentation conversions, encryption), or they are localized to the
// header/trailer." This header provides both idioms:
//   * TransformMessage — apply a byte-wise function (encryption, byte
//     swapping, presentation conversion) over an aggregate, producing a new
//     fbuf-backed message;
//   * ReplaceHeader — swap the first N bytes for new content by buffer
//     editing: the body is shared, never copied.
#ifndef SRC_MSG_TRANSFORM_H_
#define SRC_MSG_TRANSFORM_H_

#include <cstdint>
#include <functional>

#include "src/fbuf/fbuf_system.h"
#include "src/msg/message.h"

namespace fbufs {

// Byte-wise transformation: output byte = fn(input byte, absolute offset).
using ByteTransform = std::function<std::uint8_t(std::uint8_t, std::uint64_t)>;

// Applies |fn| over all of |in|, read by |d|, into a fresh fbuf allocated on
// |path|. The caller owns the new fbuf (one reference in |d|); |in| is
// untouched. *out views the whole result.
inline Status TransformMessage(FbufSystem* fsys, Domain& d, PathId path, const Message& in,
                               const ByteTransform& fn, Message* out, Fbuf** out_fbuf) {
  if (in.empty()) {
    return Status::kInvalidArgument;
  }
  Fbuf* fb = nullptr;
  Status st = fsys->Allocate(d, path, in.length(), /*want_volatile=*/true, &fb,
                             /*clear=*/false);
  if (!Ok(st)) {
    return st;
  }
  std::uint8_t buf[1024];
  std::uint64_t off = 0;
  while (off < in.length()) {
    const std::uint64_t n = std::min<std::uint64_t>(sizeof(buf), in.length() - off);
    st = in.CopyOut(d, off, buf, n);
    if (!Ok(st)) {
      fsys->Free(fb, d);
      return st;
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      buf[i] = fn(buf[i], off + i);
    }
    st = d.WriteBytes(fb->base + off, buf, n);
    if (!Ok(st)) {
      fsys->Free(fb, d);
      return st;
    }
    off += n;
  }
  *out_fbuf = fb;
  *out = Message::Whole(fb);
  return Status::kOk;
}

// Header editing: returns a message whose first |old_header_bytes| bytes of
// |in| are replaced by |new_header|. Pure buffer editing — the body bytes
// are shared with |in|, nothing is copied.
inline Message ReplaceHeader(const Message& in, std::uint64_t old_header_bytes,
                             const Message& new_header) {
  return Message::Concat(new_header, in.Slice(old_header_bytes,
                                              in.length() - old_header_bytes));
}

}  // namespace fbufs

#endif  // SRC_MSG_TRANSFORM_H_
