// Application data-unit generator (§5.2).
//
// The paper's proposed high-bandwidth I/O interface hands applications an
// immutable buffer aggregate; to spare programmers the non-contiguity, a
// generator-like operation retrieves data at the granularity of an
// application-defined unit (a record, a line of text). Copying happens only
// when a unit straddles a buffer-fragment boundary.
#ifndef SRC_MSG_GENERATOR_H_
#define SRC_MSG_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/msg/message.h"

namespace fbufs {

class UnitGenerator {
 public:
  // Fixed-size units of |unit_size| bytes over |m|, read by |d|.
  UnitGenerator(const Message& m, Domain* d, std::uint64_t unit_size);

  // Retrieves the next unit into |out| (resized to the unit length; the last
  // unit may be short). *zero_copy reports whether the unit lay entirely
  // within one fragment — the case a real system would return by reference.
  // Returns kNotFound when the message is exhausted.
  Status Next(std::vector<std::uint8_t>* out, bool* zero_copy);

  // Retrieves bytes up to and including the next |delimiter| (or the end of
  // the message) — the "line of text" use case.
  Status NextDelimited(std::uint8_t delimiter, std::vector<std::uint8_t>* out,
                       bool* zero_copy);

  bool Done() const { return offset_ >= extents_total_; }
  std::uint64_t units_returned() const { return units_returned_; }
  std::uint64_t units_copied() const { return units_copied_; }

 private:
  // Finds the extent containing message offset |off|; returns the index and
  // sets |*within| to the offset inside the extent.
  std::size_t LocateExtent(std::uint64_t off, std::uint64_t* within) const;
  Status Emit(std::uint64_t len, std::vector<std::uint8_t>* out, bool* zero_copy);

  Message message_;
  Domain* domain_;
  std::uint64_t unit_size_;
  std::vector<Extent> extents_;
  std::vector<std::uint64_t> extent_starts_;
  std::uint64_t extents_total_ = 0;
  std::uint64_t offset_ = 0;
  std::uint64_t units_returned_ = 0;
  std::uint64_t units_copied_ = 0;
};

}  // namespace fbufs

#endif  // SRC_MSG_GENERATOR_H_
