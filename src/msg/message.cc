#include "src/msg/message.h"

#include <algorithm>
#include <cassert>

#include "src/vm/machine.h"

namespace fbufs {

Message Message::Leaf(Fbuf* fb, std::uint64_t off, std::uint64_t len) {
  assert(fb != nullptr);
  assert(off + len <= fb->pages * kPageSize);
  auto n = std::make_shared<Node>();
  n->extent = Extent{fb, fb->base + off, len};
  n->len = len;
  return Message(std::move(n));
}

Message Message::Absent(std::uint64_t len) {
  auto n = std::make_shared<Node>();
  n->extent = Extent{nullptr, 0, len};
  n->len = len;
  return Message(std::move(n));
}

Message Message::Concat(const Message& left, const Message& right) {
  if (left.empty()) {
    return right;
  }
  if (right.empty()) {
    return left;
  }
  auto n = std::make_shared<Node>();
  n->left = left.root_;
  n->right = right.root_;
  n->len = left.length() + right.length();
  return Message(std::move(n));
}

void Message::ForEachExtent(const std::function<void(const Extent&)>& fn) const {
  if (!root_) {
    return;
  }
  // Explicit stack: messages can be deep chains of concatenations.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->left) {
      stack.push_back(n->right.get());
      stack.push_back(n->left.get());
    } else if (n->extent.len > 0) {
      fn(n->extent);
    }
  }
}

std::vector<Extent> Message::Extents() const {
  std::vector<Extent> out;
  ForEachExtent([&out](const Extent& e) { out.push_back(e); });
  return out;
}

std::vector<Fbuf*> Message::Fbufs() const {
  std::vector<Fbuf*> out;
  ForEachExtent([&out](const Extent& e) {
    if (e.fb != nullptr && std::find(out.begin(), out.end(), e.fb) == out.end()) {
      out.push_back(e.fb);
    }
  });
  return out;
}

Message Message::FromExtents(const std::vector<Extent>& extents) {
  Message m;
  // Right-fold so extents stay in order.
  for (auto it = extents.rbegin(); it != extents.rend(); ++it) {
    auto n = std::make_shared<Node>();
    n->extent = *it;
    n->len = it->len;
    m = Concat(Message(std::move(n)), m);
  }
  return m;
}

Message Message::Slice(std::uint64_t off, std::uint64_t len) const {
  std::vector<Extent> kept;
  std::uint64_t pos = 0;
  const std::uint64_t end = off + len;
  ForEachExtent([&](const Extent& e) {
    const std::uint64_t e_end = pos + e.len;
    if (e_end > off && pos < end) {
      const std::uint64_t lo = std::max(pos, off);
      const std::uint64_t hi = std::min(e_end, end);
      Extent part = e;
      part.addr += lo - pos;
      part.len = hi - lo;
      kept.push_back(part);
    }
    pos += e.len;
  });
  return FromExtents(kept);
}

Status Message::CopyOut(Domain& d, std::uint64_t off, void* dst, std::uint64_t len) const {
  auto* out = static_cast<std::uint8_t*>(dst);
  std::uint64_t pos = 0;
  std::uint64_t copied = 0;
  Status status = Status::kOk;
  ForEachExtent([&](const Extent& e) {
    if (!Ok(status) || copied == len) {
      pos += e.len;
      return;
    }
    const std::uint64_t e_end = pos + e.len;
    const std::uint64_t want_end = off + len;
    if (e_end > off + copied && pos < want_end) {
      const std::uint64_t lo = std::max(pos, off + copied);
      const std::uint64_t hi = std::min(e_end, want_end);
      if (e.fb == nullptr) {
        // Absent data reads as zeros.
        std::fill(out + (lo - off), out + (hi - off), 0);
      } else {
        status = d.ReadBytes(e.addr + (lo - pos), out + (lo - off), hi - lo);
      }
      copied += hi - lo;
    }
    pos += e.len;
  });
  if (!Ok(status)) {
    return status;
  }
  return copied == len ? Status::kOk : Status::kTruncated;
}

Status Message::Touch(Domain& d, Access access) const {
  Status status = Status::kOk;
  ForEachExtent([&](const Extent& e) {
    if (!Ok(status) || e.fb == nullptr) {
      return;
    }
    const Status st = d.TouchRange(e.addr, e.len, access);
    if (!Ok(st)) {
      status = st;
    }
  });
  return status;
}

Status Message::Checksum(Domain& d, std::uint16_t* out) const {
  std::uint32_t sum = 0;
  Status status = Status::kOk;
  std::uint8_t carry_byte = 0;
  bool have_carry = false;
  ForEachExtent([&](const Extent& e) {
    if (!Ok(status)) {
      return;
    }
    std::uint8_t buf[1024];
    std::uint64_t done = 0;
    while (done < e.len) {
      const std::uint64_t n = std::min<std::uint64_t>(sizeof(buf), e.len - done);
      if (e.fb == nullptr) {
        // zeros contribute nothing, but parity of the byte count matters
        if ((n % 2 != 0)) {
          have_carry = !have_carry;
        }
        done += n;
        continue;
      }
      const Status st = d.ReadBytes(e.addr + done, buf, n);
      if (!Ok(st)) {
        status = st;
        return;
      }
      for (std::uint64_t i = 0; i < n; ++i) {
        if (have_carry) {
          sum += (static_cast<std::uint32_t>(carry_byte) << 8) | buf[i];
          have_carry = false;
        } else {
          carry_byte = buf[i];
          have_carry = true;
        }
      }
      done += n;
    }
  });
  if (!Ok(status)) {
    return status;
  }
  if (have_carry) {
    sum += static_cast<std::uint32_t>(carry_byte) << 8;
  }
  {
    LayerScope layer(d.machine().attribution(), CostDomain::kMsg);
    ActorScope actor(d.machine().attribution(), d.id());
    d.machine().clock().Advance(d.machine().costs().ChecksumCost(length()));
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  *out = static_cast<std::uint16_t>(~sum);
  return Status::kOk;
}

std::size_t Message::NodeCount() const {
  if (!root_) {
    return 0;
  }
  std::size_t count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    count++;
    if (n->left) {
      stack.push_back(n->left.get());
      stack.push_back(n->right.get());
    }
  }
  return count;
}

}  // namespace fbufs
