#include "src/msg/stored_message.h"

#include <cassert>
#include <cstring>
#include <unordered_set>

namespace fbufs {

namespace {

// Serializes the extent list as a right-leaning chain rooted at record 0.
void BuildRecords(const std::vector<Extent>& extents, VirtAddr base,
                  std::vector<RawNode>* records) {
  assert(!extents.empty());
  // Pre-compute record addresses: the chain uses records
  //   pair_0, pair_1, ..., pair_{n-2}, then leaves l_0..l_{n-1}
  // with pair_i = (leaf_i, pair_{i+1}) and the last pair's right = leaf_{n-1}.
  const std::size_t n = extents.size();
  if (n == 1) {
    RawNode leaf;
    leaf.type = RawNode::kLeaf;
    leaf.a = extents[0].addr;
    leaf.len = extents[0].len;
    records->push_back(leaf);
    return;
  }
  const std::size_t pair_count = n - 1;
  auto record_addr = [base](std::size_t index) {
    return base + index * sizeof(RawNode);
  };
  std::uint64_t total = 0;
  for (const Extent& e : extents) {
    total += e.len;
  }
  records->resize(pair_count + n);
  std::uint64_t remaining = total;
  for (std::size_t i = 0; i < pair_count; ++i) {
    RawNode& pair = (*records)[i];
    pair.type = RawNode::kPair;
    pair.a = record_addr(pair_count + i);  // leaf_i
    pair.b = i + 1 < pair_count ? record_addr(i + 1) : record_addr(pair_count + n - 1);
    pair.len = remaining;
    remaining -= extents[i].len;
  }
  for (std::size_t i = 0; i < n; ++i) {
    RawNode& leaf = (*records)[pair_count + i];
    leaf.type = RawNode::kLeaf;
    leaf.a = extents[i].addr;
    leaf.len = extents[i].len;
  }
}

}  // namespace

Status IntegratedTransfer::Store(Domain& originator, PathId path, const Message& m,
                                 bool want_volatile, StoredMessage* out) {
  *out = StoredMessage{};
  const std::vector<Extent> extents = m.Extents();
  if (extents.empty()) {
    return Status::kInvalidArgument;
  }
  std::vector<RawNode> records;
  BuildRecords(extents, 0, &records);

  Fbuf* node_fbuf = nullptr;
  const std::uint64_t bytes = records.size() * sizeof(RawNode);
  Status st = fsys_->Allocate(originator, path, bytes, want_volatile, &node_fbuf);
  if (!Ok(st)) {
    return st;
  }
  // Addresses were computed relative to 0; rebase onto the actual fbuf.
  std::vector<RawNode> rebased;
  rebased.reserve(records.size());
  BuildRecords(extents, node_fbuf->base, &rebased);
  st = originator.WriteBytes(node_fbuf->base, rebased.data(), bytes);
  if (!Ok(st)) {
    fsys_->Free(node_fbuf, originator);
    return st;
  }

  out->node_fbuf = node_fbuf;
  out->root = node_fbuf->base;
  out->length = m.length();
  out->fbufs.push_back(node_fbuf);
  for (Fbuf* fb : m.Fbufs()) {
    out->fbufs.push_back(fb);
  }
  return Status::kOk;
}

Status IntegratedTransfer::Send(StoredMessage& sm, Domain& from, Domain& to) {
  for (Fbuf* fb : sm.fbufs) {
    const Status st = fsys_->Transfer(fb, from, to);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

Status IntegratedTransfer::Load(Domain& receiver, VirtAddr root, Message* out,
                                WalkReport* report, bool strict) {
  WalkReport local;
  WalkReport& rep = report != nullptr ? *report : local;
  rep = WalkReport{};
  *out = Message();

  if (!InFbufRegion(root) || root % alignof(RawNode) != 0) {
    rep.bad_pointers++;
    return strict ? Status::kBadPointer : Status::kOk;
  }

  Message result;
  std::unordered_set<VirtAddr> visited;
  std::vector<VirtAddr> stack{root};
  while (!stack.empty()) {
    const VirtAddr addr = stack.back();
    stack.pop_back();
    if (rep.nodes_visited >= kMaxNodes) {
      rep.truncated = true;
      if (strict) {
        return Status::kExhausted;
      }
      break;
    }
    if (!InFbufRegion(addr) || addr % alignof(RawNode) != 0 ||
        addr + sizeof(RawNode) > kFbufRegionEnd) {
      rep.bad_pointers++;
      if (strict) {
        return Status::kBadPointer;
      }
      continue;
    }
    if (!visited.insert(addr).second) {
      rep.cycle_cut++;
      if (strict) {
        return Status::kCycle;
      }
      continue;
    }
    RawNode node;
    const Status st = receiver.ReadBytes(addr, &node, sizeof(node));
    if (!Ok(st)) {
      // Unreadable even via the absent-data path (e.g. out of memory).
      return st;
    }
    rep.nodes_visited++;
    if (node.type == RawNode::kPair) {
      stack.push_back(node.b);  // right below left so leaves pop in order
      stack.push_back(node.a);
      continue;
    }
    if (node.type != RawNode::kLeaf) {
      rep.bad_pointers++;
      if (strict) {
        return Status::kBadPointer;
      }
      continue;
    }
    if (node.len == 0) {
      rep.absent_leaves++;
      continue;
    }
    if (!InFbufRegion(node.a) || node.a + node.len > kFbufRegionEnd) {
      rep.bad_pointers++;
      if (strict) {
        return Status::kBadPointer;
      }
      result = Message::Concat(result, Message::Absent(node.len));
      continue;
    }
    Fbuf* fb = fsys_->FindByAddr(node.a);
    if (fb == nullptr || node.a + node.len > fb->end()) {
      rep.bad_pointers++;
      if (strict) {
        return Status::kBadPointer;
      }
      result = Message::Concat(result, Message::Absent(node.len));
      continue;
    }
    result = Message::Concat(result, Message::Leaf(fb, node.a - fb->base, node.len));
  }
  *out = result;
  return Status::kOk;
}

Status IntegratedTransfer::FreeAll(StoredMessage& sm, Domain& holder) {
  Status first_error = Status::kOk;
  for (Fbuf* fb : sm.fbufs) {
    if (fb->IsHeldBy(holder.id())) {
      const Status st = fsys_->Free(fb, holder);
      if (!Ok(st) && Ok(first_error)) {
        first_error = st;
      }
    }
  }
  return first_error;
}

}  // namespace fbufs
