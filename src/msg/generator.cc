#include "src/msg/generator.h"

#include <algorithm>

#include "src/vm/machine.h"

namespace fbufs {

UnitGenerator::UnitGenerator(const Message& m, Domain* d, std::uint64_t unit_size)
    : message_(m), domain_(d), unit_size_(unit_size) {
  extents_ = m.Extents();
  std::uint64_t pos = 0;
  extent_starts_.reserve(extents_.size());
  for (const Extent& e : extents_) {
    extent_starts_.push_back(pos);
    pos += e.len;
  }
  extents_total_ = pos;
}

std::size_t UnitGenerator::LocateExtent(std::uint64_t off, std::uint64_t* within) const {
  auto it = std::upper_bound(extent_starts_.begin(), extent_starts_.end(), off);
  const std::size_t idx = static_cast<std::size_t>(it - extent_starts_.begin()) - 1;
  *within = off - extent_starts_[idx];
  return idx;
}

Status UnitGenerator::Emit(std::uint64_t len, std::vector<std::uint8_t>* out,
                           bool* zero_copy) {
  std::uint64_t within = 0;
  const std::size_t idx = LocateExtent(offset_, &within);
  const bool fits = within + len <= extents_[idx].len;
  *zero_copy = fits;
  out->resize(len);
  const Status st = message_.CopyOut(*domain_, offset_, out->data(), len);
  if (!Ok(st)) {
    return st;
  }
  if (!fits) {
    // The unit straddles a fragment boundary: a real implementation copies
    // it into contiguous storage here.
    LayerScope layer(domain_->machine().attribution(), CostDomain::kMsg);
    ActorScope actor(domain_->machine().attribution(), domain_->id());
    domain_->machine().clock().Advance(domain_->machine().costs().CopyCost(len));
    domain_->machine().stats().bytes_copied += len;
    units_copied_++;
  }
  units_returned_++;
  offset_ += len;
  return Status::kOk;
}

Status UnitGenerator::Next(std::vector<std::uint8_t>* out, bool* zero_copy) {
  if (Done()) {
    return Status::kNotFound;
  }
  const std::uint64_t len = std::min(unit_size_, extents_total_ - offset_);
  return Emit(len, out, zero_copy);
}

Status UnitGenerator::NextDelimited(std::uint8_t delimiter, std::vector<std::uint8_t>* out,
                                    bool* zero_copy) {
  if (Done()) {
    return Status::kNotFound;
  }
  // Scan for the delimiter through the checked read path, chunk by chunk.
  std::uint64_t len = 0;
  std::uint8_t buf[256];
  bool found = false;
  while (!found && offset_ + len < extents_total_) {
    const std::uint64_t n =
        std::min<std::uint64_t>(sizeof(buf), extents_total_ - offset_ - len);
    const Status st = message_.CopyOut(*domain_, offset_ + len, buf, n);
    if (!Ok(st)) {
      return st;
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if (buf[i] == delimiter) {
        len += i + 1;
        found = true;
        break;
      }
    }
    if (!found) {
      len += n;
    }
  }
  return Emit(len, out, zero_copy);
}

}  // namespace fbufs
