// The high-bandwidth I/O interface the paper proposes in §5.2, as a library.
//
// The UNIX read/write interface has copy semantics and accepts unaligned
// buffers anywhere in the address space, which defeats every VM-based
// transfer technique. This channel is the proposed alternative: programs
// exchange immutable buffer aggregates. A producer obtains fbuf-backed
// buffers, fills them, and Puts an aggregate; a consumer Gets the aggregate
// and reads it in place (or through the UnitGenerator at its own record
// granularity). A compatibility ReadCopy() shows what the old interface
// costs.
#ifndef SRC_MSG_HBIO_H_
#define SRC_MSG_HBIO_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/fbuf/endpoint.h"
#include "src/ipc/rpc.h"
#include "src/msg/generator.h"
#include "src/msg/message.h"

namespace fbufs {

class HbioChannel {
 public:
  // A unidirectional channel from |producer| to |consumer|.
  HbioChannel(FbufSystem* fsys, Rpc* rpc, EndpointManager* endpoints, Domain* producer,
              Domain* consumer, std::size_t queue_capacity = 64)
      : fsys_(fsys),
        rpc_(rpc),
        producer_(producer),
        consumer_(consumer),
        capacity_(queue_capacity) {
    endpoint_ = endpoints->Create(*producer, {producer->id(), consumer->id()});
    endpoints_ = endpoints;
  }

  ~HbioChannel() { Close(); }

  HbioChannel(const HbioChannel&) = delete;
  HbioChannel& operator=(const HbioChannel&) = delete;

  // --- Producer side -----------------------------------------------------------
  // A writable, path-cached I/O buffer. The producer fills it through its
  // domain accessors and wraps it in a Message (possibly aggregating many).
  Status GetBuffer(std::uint64_t bytes, Fbuf** out) {
    return endpoints_->AllocateBuffer(endpoint_, *producer_, bytes, /*want_volatile=*/true,
                                      out);
  }

  // Sends an aggregate: transfers references to the consumer domain (one
  // IPC crossing) and queues it. The producer's references are released —
  // copy semantics mean it could keep them by re-Transferring to itself.
  Status Put(const Message& m) {
    if (queue_.size() >= capacity_) {
      return Status::kExhausted;
    }
    rpc_->ChargeCrossing(*producer_, *consumer_);
    for (Fbuf* fb : m.Fbufs()) {
      const Status st = fsys_->Transfer(fb, *producer_, *consumer_);
      if (!Ok(st)) {
        return st;
      }
      const Status free_st = fsys_->Free(fb, *producer_);
      if (!Ok(free_st)) {
        return free_st;
      }
    }
    queue_.push_back(m);
    return Status::kOk;
  }

  // --- Consumer side -----------------------------------------------------------
  // Dequeues the next aggregate; the consumer reads it in place and must
  // call Done() when finished.
  std::optional<Message> Get() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    Message m = queue_.front();
    queue_.pop_front();
    return m;
  }

  // Releases the consumer's references on a Get()-returned aggregate.
  Status Done(const Message& m) {
    for (Fbuf* fb : m.Fbufs()) {
      const Status st = fsys_->Free(fb, *consumer_);
      if (!Ok(st)) {
        return st;
      }
    }
    return Status::kOk;
  }

  // Record-granular consumption (§5.2's generator operation).
  UnitGenerator Reader(const Message& m, std::uint64_t unit_size) {
    return UnitGenerator(m, consumer_, unit_size);
  }

  // --- Legacy compatibility ------------------------------------------------------
  // The old interface: copies the aggregate into the caller's contiguous
  // private buffer, paying the memory-bandwidth cost the new interface
  // avoids. Provided so applications can migrate incrementally.
  Status ReadCopy(const Message& m, void* buf, std::uint64_t len) {
    const std::uint64_t n = std::min(len, m.length());
    LayerScope layer(fsys_->machine().attribution(), CostDomain::kMsg);
    ActorScope actor(fsys_->machine().attribution(), consumer_->id());
    const Status st = m.CopyOut(*consumer_, 0, buf, n);
    if (!Ok(st)) {
      return st;
    }
    Machine& machine = fsys_->machine();
    machine.clock().Advance(machine.costs().CopyCost(n));
    machine.stats().bytes_copied += n;
    return Status::kOk;
  }

  // Destroys the endpoint (and thereby the path and its buffers).
  void Close() {
    if (endpoint_ != nullptr && endpoint_->alive) {
      // Drop anything still queued, push the deallocation notices through
      // (endpoint teardown forces the exchange), then kill the path.
      while (auto m = Get()) {
        Done(*m);
      }
      fsys_->FlushNotices(consumer_->id(), producer_->id());
      endpoints_->Destroy(endpoint_);
    }
  }

  std::size_t queued() const { return queue_.size(); }
  Endpoint* endpoint() { return endpoint_; }

 private:
  FbufSystem* fsys_;
  Rpc* rpc_;
  EndpointManager* endpoints_ = nullptr;
  Domain* producer_;
  Domain* consumer_;
  std::size_t capacity_;
  Endpoint* endpoint_ = nullptr;
  std::deque<Message> queue_;
};

}  // namespace fbufs

#endif  // SRC_MSG_HBIO_H_
