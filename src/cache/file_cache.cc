#include "src/cache/file_cache.h"

#include <cstring>

namespace fbufs {

FileCache::FileCache(FbufSystem* fsys, const FileCacheConfig& config)
    : fsys_(fsys), config_(config), kernel_(&fsys->machine().kernel()) {
  cache_path_ = fsys_->paths().Register({kernel_->id()});
}

void FileCache::TouchLru(const Key& key, CachedBlock& cb) {
  lru_.erase(cb.lru_pos);
  lru_.push_front(key);
  cb.lru_pos = lru_.begin();
}

Status FileCache::FetchFromDisk(const Key& key, Message* out) {
  Machine& machine = fsys_->machine();
  LayerScope layer(machine.attribution(), CostDomain::kCache);
  ActorScope actor(machine.attribution(), kernel_->id());
  PathScope pscope(machine.attribution(), cache_path_);
  TraceSpan span(machine.trace(), TraceCategory::kFbuf, "disk-fetch", key.file, key.block);
  Fbuf* fb = nullptr;
  // Disk DMA overwrites the whole block: no security clearing needed.
  Status st = fsys_->Allocate(*kernel_, cache_path_, config_.block_bytes,
                              /*want_volatile=*/true, &fb, /*clear=*/false);
  if (!Ok(st)) {
    return st;
  }
  // The simulated disk: access latency plus sequential transfer.
  machine.clock().Advance(config_.disk_access_ns);
  machine.clock().Advance(config_.block_bytes * 8 * 1000 / config_.disk_mbps);
  disk_reads_++;
  // Deterministic content so tests can verify identity: byte i of block b of
  // file f is a simple mix of (f, b, i).
  for (std::uint64_t page = 0; page < fb->pages; ++page) {
    const FrameId frame = kernel_->DebugFrame(PageOf(fb->base) + page);
    if (frame == kInvalidFrame) {
      fsys_->Free(fb, *kernel_);
      return Status::kNotMapped;
    }
    std::uint8_t* data = machine.pmem().Data(frame);
    const std::uint64_t base = page * kPageSize;
    for (std::uint64_t i = 0; i < kPageSize && base + i < config_.block_bytes; ++i) {
      data[i] = static_cast<std::uint8_t>(key.file * 37 + key.block * 11 + base + i);
    }
  }
  *out = Message::Leaf(fb, 0, config_.block_bytes);
  return Status::kOk;
}

bool FileCache::Evict(const Key& key, EvictReason reason) {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) {
    return false;
  }
  if (it->second.pins > 0) {
    pin_blocked_evictions_++;
    return false;
  }
  for (Fbuf* fb : it->second.content.Fbufs()) {
    fsys_->Free(fb, *kernel_);
  }
  lru_.erase(it->second.lru_pos);
  blocks_.erase(it);
  switch (reason) {
    case EvictReason::kCapacity:
      capacity_evictions_++;
      break;
    case EvictReason::kOverwrite:
      overwrite_evictions_++;
      break;
    case EvictReason::kPressure:
      pressure_evictions_++;
      break;
  }
  return true;
}

bool FileCache::EvictOneUnpinned(EvictReason reason) {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto bit = blocks_.find(*it);
    if (bit == blocks_.end() || bit->second.pins > 0) {
      pin_blocked_evictions_++;
      continue;
    }
    const Key victim = *it;  // copy: Evict erases the list node behind *it
    return Evict(victim, reason);
  }
  return false;
}

Status FileCache::Read(FileId file, std::uint64_t block, Domain& reader, Message* out) {
  const Key key{file, block};
  auto it = blocks_.find(key);
  if (it == blocks_.end()) {
    misses_++;
    while (blocks_.size() >= config_.capacity_blocks &&
           EvictOneUnpinned(EvictReason::kCapacity)) {
    }
    Message fetched;
    const Status st = FetchFromDisk(key, &fetched);
    if (!Ok(st)) {
      return st;
    }
    lru_.push_front(key);
    it = blocks_.emplace(key, CachedBlock{fetched, lru_.begin()}).first;
  } else {
    hits_++;
    TouchLru(key, it->second);
  }
  // Grant the reader references; read-only mappings are built on first use
  // and retained afterwards (the block's "path" warms per reader). A
  // partial grant (dead reader, quota) rolls back so the failure leaves the
  // reader holding nothing.
  std::vector<Fbuf*> granted;
  for (Fbuf* fb : it->second.content.Fbufs()) {
    const Status st = fsys_->Transfer(fb, *kernel_, reader);
    if (!Ok(st)) {
      for (Fbuf* g : granted) {
        fsys_->Free(g, reader);
      }
      return st;
    }
    granted.push_back(fb);
  }
  *out = it->second.content;
  return Status::kOk;
}

Status FileCache::Release(const Message& m, Domain& reader) {
  for (Fbuf* fb : m.Fbufs()) {
    const Status st = fsys_->Free(fb, reader);
    if (!Ok(st)) {
      return st;
    }
  }
  return Status::kOk;
}

Status FileCache::Write(FileId file, std::uint64_t block, Domain& writer, const Message& m) {
  if (m.length() != config_.block_bytes) {
    return Status::kInvalidArgument;
  }
  const Key key{file, block};
  // A pinned block has readers mid-transfer: replacing its content now
  // would yank frames out from under them. Busy — retry once they unpin.
  auto existing = blocks_.find(key);
  if (existing != blocks_.end() && existing->second.pins > 0) {
    pin_blocked_evictions_++;
    return Status::kExhausted;
  }
  // Capture by reference and freeze: the cache must not be exposed to
  // asynchronous modification by the writer (volatile fbufs are secured).
  // A partial capture rolls the kernel's references back out.
  std::vector<Fbuf*> captured;
  auto rollback = [&](Status st) {
    for (Fbuf* c : captured) {
      fsys_->Free(c, *kernel_);
    }
    return st;
  };
  for (Fbuf* fb : m.Fbufs()) {
    Status st = fsys_->Transfer(fb, writer, *kernel_);
    if (!Ok(st)) {
      return rollback(st);
    }
    captured.push_back(fb);
    st = fsys_->Secure(fb, *kernel_);
    if (!Ok(st)) {
      return rollback(st);
    }
  }
  Evict(key, EvictReason::kOverwrite);
  lru_.push_front(key);
  blocks_.emplace(key, CachedBlock{m, lru_.begin()});
  while (blocks_.size() > config_.capacity_blocks &&
         EvictOneUnpinned(EvictReason::kCapacity)) {
  }
  return Status::kOk;
}

std::uint64_t FileCache::Shrink(std::uint64_t target_blocks) {
  std::uint64_t evicted = 0;
  while (blocks_.size() > target_blocks &&
         EvictOneUnpinned(EvictReason::kPressure)) {
    evicted++;
  }
  return evicted;
}

Status FileCache::Pin(FileId file, std::uint64_t block) {
  auto it = blocks_.find(Key{file, block});
  if (it == blocks_.end()) {
    return Status::kNotFound;
  }
  if (it->second.pins++ == 0) {
    pinned_blocks_++;
  }
  total_pins_++;
  return Status::kOk;
}

Status FileCache::Unpin(FileId file, std::uint64_t block) {
  auto it = blocks_.find(Key{file, block});
  if (it == blocks_.end()) {
    return Status::kNotFound;
  }
  if (it->second.pins == 0) {
    return Status::kInvalidArgument;
  }
  if (--it->second.pins == 0) {
    pinned_blocks_--;
  }
  total_pins_--;
  return Status::kOk;
}

bool FileCache::IsPinned(FileId file, std::uint64_t block) const {
  auto it = blocks_.find(Key{file, block});
  return it != blocks_.end() && it->second.pins > 0;
}

bool FileCache::Resident(FileId file, std::uint64_t block) const {
  return blocks_.find(Key{file, block}) != blocks_.end();
}

}  // namespace fbufs
