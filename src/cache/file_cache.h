// Unified buffer cache: file blocks stored in fbufs.
//
// §2.2 of the paper notes that with fbufs "the network subsystem can share
// physical memory dynamically with other subsystems, applications and file
// caches". This module builds that out: a kernel file cache whose blocks
// are fbufs, so
//   * a cache hit hands an application a read-only mapping of the block —
//     a zero-copy read();
//   * the same block can be shared by any number of readers, safely,
//     because fbufs are immutable;
//   * a write is the application's own immutable fbuf captured by
//     reference — a zero-copy write();
//   * cache memory competes with network buffering in one physical pool,
//     and eviction returns fbufs to their path's free list.
// (This is the design direction that later became IO-Lite.)
#ifndef SRC_CACHE_FILE_CACHE_H_
#define SRC_CACHE_FILE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "src/fbuf/fbuf_system.h"
#include "src/msg/message.h"

namespace fbufs {

using FileId = std::uint32_t;

struct FileCacheConfig {
  std::uint64_t block_bytes = 8192;
  std::uint64_t capacity_blocks = 64;
  // A 1993-class disk: average access latency and sustained bandwidth.
  SimTime disk_access_ns = 15 * kMillisecond;
  std::uint64_t disk_mbps = 16;  // 2 MB/s
};

class FileCache {
 public:
  // The cache runs in the kernel; blocks are allocated on per-consumer
  // paths so repeat readers hit warm mappings.
  FileCache(FbufSystem* fsys, const FileCacheConfig& config = FileCacheConfig());

  FileCache(const FileCache&) = delete;
  FileCache& operator=(const FileCache&) = delete;

  // Reads one block: on a hit the reader gains a reference to the cached
  // fbuf (mapping work only the first time); on a miss the block is "read
  // from disk" into a fresh kernel fbuf. *out views exactly the block's
  // bytes. The reader must Release() the message when done. On any failure
  // — backing region exhausted on the miss path, or a partial reference
  // grant — the Status propagates and every reference already granted to
  // |reader| is rolled back (nothing is silently staged; PR 4 discipline).
  Status Read(FileId file, std::uint64_t block, Domain& reader, Message* out);

  // Releases a reader's references from a previous Read.
  Status Release(const Message& m, Domain& reader);

  // --- Pinning ---------------------------------------------------------------
  // A pinned block cannot be evicted — not by capacity churn, not by a
  // pressure Shrink, not by an overwrite — until its pin count drops to
  // zero. The serve subsystem pins blocks it has in flight on the network
  // and unpins when the flow's dealloc notice returns (§3.3), so pressure
  // sweeps can never pull a frame out from under an unfinished transfer.
  // Pin/Unpin address resident blocks only: kNotFound otherwise.
  Status Pin(FileId file, std::uint64_t block);
  Status Unpin(FileId file, std::uint64_t block);
  bool IsPinned(FileId file, std::uint64_t block) const;
  bool Resident(FileId file, std::uint64_t block) const;

  // Zero-copy write: captures a reference to the application's immutable
  // aggregate as the block's new content (the old block is dropped). |m|
  // must be exactly block_bytes long and the writer must hold its fbufs.
  // Writing over a pinned block returns kExhausted (busy — retryable once
  // the in-flight readers unpin); partial capture failures roll back the
  // kernel references already taken.
  Status Write(FileId file, std::uint64_t block, Domain& writer, const Message& m);

  // Drops clean blocks, least recently used first, until at most
  // |target_blocks| remain (a pressure-driven eviction). Pinned blocks are
  // passed over, so the sweep may leave more than |target_blocks| resident.
  // Returns blocks evicted.
  std::uint64_t Shrink(std::uint64_t target_blocks);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Memory-driven evictions: capacity + pressure. Overwrites drop the old
  // block too, but that is content replacement, not memory reclaim, so they
  // are counted separately.
  std::uint64_t evictions() const { return capacity_evictions_ + pressure_evictions_; }
  std::uint64_t capacity_evictions() const { return capacity_evictions_; }
  std::uint64_t overwrite_evictions() const { return overwrite_evictions_; }
  std::uint64_t pressure_evictions() const { return pressure_evictions_; }
  std::uint64_t disk_reads() const { return disk_reads_; }
  std::uint64_t resident_blocks() const { return blocks_.size(); }
  std::uint64_t pinned_blocks() const { return pinned_blocks_; }
  std::uint64_t total_pins() const { return total_pins_; }
  // Eviction attempts (direct or scan passes) refused because the victim
  // was pinned.
  std::uint64_t pin_blocked_evictions() const { return pin_blocked_evictions_; }
  const FileCacheConfig& config() const { return config_; }

 private:
  struct Key {
    FileId file;
    std::uint64_t block;
    bool operator<(const Key& o) const {
      return file != o.file ? file < o.file : block < o.block;
    }
  };

  struct CachedBlock {
    // Content is either a kernel-originated fbuf (read path) or a captured
    // application aggregate (write path); either way, immutable.
    Message content;
    std::list<Key>::iterator lru_pos;
    // In-flight references held by servers (FileServer pins blocks for the
    // duration of a network transfer); eviction refuses pinned blocks.
    std::uint32_t pins = 0;
  };

  // Why a block is being dropped; each reason has its own counter.
  enum class EvictReason { kCapacity, kOverwrite, kPressure };

  void TouchLru(const Key& key, CachedBlock& cb);
  Status FetchFromDisk(const Key& key, Message* out);
  // Returns true if the block was resident, unpinned, and got dropped.
  bool Evict(const Key& key, EvictReason reason);
  // Evicts the least-recently-used unpinned block; false when every
  // resident block is pinned (the cache transiently exceeds its target).
  bool EvictOneUnpinned(EvictReason reason);

  FbufSystem* fsys_;
  FileCacheConfig config_;
  Domain* kernel_;
  PathId cache_path_;
  std::map<Key, CachedBlock> blocks_;
  std::list<Key> lru_;  // front = most recent

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t capacity_evictions_ = 0;
  std::uint64_t overwrite_evictions_ = 0;
  std::uint64_t pressure_evictions_ = 0;
  std::uint64_t disk_reads_ = 0;
  std::uint64_t pinned_blocks_ = 0;
  std::uint64_t total_pins_ = 0;
  std::uint64_t pin_blocked_evictions_ = 0;
};

}  // namespace fbufs

#endif  // SRC_CACHE_FILE_CACHE_H_
