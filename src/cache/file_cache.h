// Unified buffer cache: file blocks stored in fbufs.
//
// §2.2 of the paper notes that with fbufs "the network subsystem can share
// physical memory dynamically with other subsystems, applications and file
// caches". This module builds that out: a kernel file cache whose blocks
// are fbufs, so
//   * a cache hit hands an application a read-only mapping of the block —
//     a zero-copy read();
//   * the same block can be shared by any number of readers, safely,
//     because fbufs are immutable;
//   * a write is the application's own immutable fbuf captured by
//     reference — a zero-copy write();
//   * cache memory competes with network buffering in one physical pool,
//     and eviction returns fbufs to their path's free list.
// (This is the design direction that later became IO-Lite.)
#ifndef SRC_CACHE_FILE_CACHE_H_
#define SRC_CACHE_FILE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "src/fbuf/fbuf_system.h"
#include "src/msg/message.h"

namespace fbufs {

using FileId = std::uint32_t;

struct FileCacheConfig {
  std::uint64_t block_bytes = 8192;
  std::uint64_t capacity_blocks = 64;
  // A 1993-class disk: average access latency and sustained bandwidth.
  SimTime disk_access_ns = 15 * kMillisecond;
  std::uint64_t disk_mbps = 16;  // 2 MB/s
};

class FileCache {
 public:
  // The cache runs in the kernel; blocks are allocated on per-consumer
  // paths so repeat readers hit warm mappings.
  FileCache(FbufSystem* fsys, const FileCacheConfig& config = FileCacheConfig());

  FileCache(const FileCache&) = delete;
  FileCache& operator=(const FileCache&) = delete;

  // Reads one block: on a hit the reader gains a reference to the cached
  // fbuf (mapping work only the first time); on a miss the block is "read
  // from disk" into a fresh kernel fbuf. *out views exactly the block's
  // bytes. The reader must Release() the message when done.
  Status Read(FileId file, std::uint64_t block, Domain& reader, Message* out);

  // Releases a reader's references from a previous Read.
  Status Release(const Message& m, Domain& reader);

  // Zero-copy write: captures a reference to the application's immutable
  // aggregate as the block's new content (the old block is dropped). |m|
  // must be exactly block_bytes long and the writer must hold its fbufs.
  Status Write(FileId file, std::uint64_t block, Domain& writer, const Message& m);

  // Drops clean blocks, least recently used first, until at most
  // |target_blocks| remain (a pressure-driven eviction). Returns blocks
  // evicted.
  std::uint64_t Shrink(std::uint64_t target_blocks);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Memory-driven evictions: capacity + pressure. Overwrites drop the old
  // block too, but that is content replacement, not memory reclaim, so they
  // are counted separately.
  std::uint64_t evictions() const { return capacity_evictions_ + pressure_evictions_; }
  std::uint64_t capacity_evictions() const { return capacity_evictions_; }
  std::uint64_t overwrite_evictions() const { return overwrite_evictions_; }
  std::uint64_t pressure_evictions() const { return pressure_evictions_; }
  std::uint64_t disk_reads() const { return disk_reads_; }
  std::uint64_t resident_blocks() const { return blocks_.size(); }

 private:
  struct Key {
    FileId file;
    std::uint64_t block;
    bool operator<(const Key& o) const {
      return file != o.file ? file < o.file : block < o.block;
    }
  };

  struct CachedBlock {
    // Content is either a kernel-originated fbuf (read path) or a captured
    // application aggregate (write path); either way, immutable.
    Message content;
    std::list<Key>::iterator lru_pos;
  };

  // Why a block is being dropped; each reason has its own counter.
  enum class EvictReason { kCapacity, kOverwrite, kPressure };

  void TouchLru(const Key& key, CachedBlock& cb);
  Status FetchFromDisk(const Key& key, Message* out);
  // Returns true if the block was resident and got dropped.
  bool Evict(const Key& key, EvictReason reason);

  FbufSystem* fsys_;
  FileCacheConfig config_;
  Domain* kernel_;
  PathId cache_path_;
  std::map<Key, CachedBlock> blocks_;
  std::list<Key> lru_;  // front = most recent

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t capacity_evictions_ = 0;
  std::uint64_t overwrite_evictions_ = 0;
  std::uint64_t pressure_evictions_ = 0;
  std::uint64_t disk_reads_ = 0;
};

}  // namespace fbufs

#endif  // SRC_CACHE_FILE_CACHE_H_
