#include "src/ipc/rpc.h"

#include <cassert>

namespace fbufs {

void Rpc::RegisterService(Domain& server, ServiceId svc, Handler handler) {
  services_[svc] = Service{server.id(), std::move(handler)};
}

void Rpc::ChargeCrossing(Domain& a, Domain& b) {
  if (a.id() == b.id()) {
    return;
  }
  LayerScope layer(machine_->attribution(), CostDomain::kIpc);
  ActorScope actor(machine_->attribution(), a.id());
  const CostParams& c = machine_->costs();
  const bool kernel_involved = a.id() == kKernelDomainId || b.id() == kKernelDomainId;
  machine_->trace().Emit(TraceCategory::kIpc, "crossing", a.id(), b.id());
  machine_->clock().Advance(kernel_involved ? c.ipc_kernel_user_ns : c.ipc_user_user_ns);
  machine_->stats().ipc_calls++;
}

Status Rpc::Invoke(Domain& caller, Domain& callee, const std::function<Status()>& fn) {
  if (caller.id() == callee.id()) {
    return fn();
  }
  TraceSpan span(machine_->trace(), TraceCategory::kIpc, "ipc-invoke", caller.id(),
                 callee.id());
  ChargeCrossing(caller, callee);
  for (const PiggybackHook& hook : hooks_) {
    hook(caller, callee);
  }
  const Status st = fn();
  for (const PiggybackHook& hook : hooks_) {
    hook(callee, caller);
  }
  return st;
}

Status Rpc::Call(Domain& caller, ServiceId svc, RpcArgs& args) {
  auto it = services_.find(svc);
  if (it == services_.end()) {
    return Status::kNotFound;
  }
  Domain* server = machine_->domain(it->second.server);
  assert(server != nullptr);
  if (!server->alive()) {
    return Status::kNotFound;
  }
  if (server->id() != caller.id()) {
    TraceSpan span(machine_->trace(), TraceCategory::kIpc, "ipc-call", caller.id(),
                   server->id());
    ChargeCrossing(caller, *server);
    for (const PiggybackHook& hook : hooks_) {
      hook(caller, *server);  // request direction
    }
  }
  const Status st = it->second.handler(args);
  if (server->id() != caller.id()) {
    for (const PiggybackHook& hook : hooks_) {
      hook(*server, caller);  // reply direction
    }
  }
  return st;
}

}  // namespace fbufs
