#include "src/ipc/rpc.h"

#include <cassert>
#include <memory>
#include <utility>

#include "src/ipc/dispatch.h"

namespace fbufs {

void Rpc::RegisterService(Domain& server, ServiceId svc, Handler handler) {
  services_[svc] = Service{server.id(), std::move(handler)};
}

void Rpc::ChargeCrossing(Domain& a, Domain& b) {
  if (a.id() == b.id()) {
    return;
  }
  LayerScope layer(machine_->attribution(), CostDomain::kIpc);
  ActorScope actor(machine_->attribution(), a.id());
  const CostParams& c = machine_->costs();
  const bool kernel_involved = a.id() == kKernelDomainId || b.id() == kKernelDomainId;
  machine_->trace().Emit(TraceCategory::kIpc, "crossing", a.id(), b.id());
  machine_->clock().Advance(kernel_involved ? c.ipc_kernel_user_ns : c.ipc_user_user_ns);
  machine_->stats().ipc_calls++;
}

Status Rpc::Invoke(Domain& caller, Domain& callee, const std::function<Status()>& fn) {
  if (caller.id() == callee.id()) {
    return fn();
  }
  TraceSpan span(machine_->trace(), TraceCategory::kIpc, "ipc-invoke", caller.id(),
                 callee.id());
  ChargeCrossing(caller, callee);
  for (const PiggybackHook& hook : hooks_) {
    hook(caller, callee);
  }
  const Status st = fn();
  for (const PiggybackHook& hook : hooks_) {
    hook(callee, caller);
  }
  return st;
}

Status Rpc::Call(Domain& caller, ServiceId svc, RpcArgs& args) {
  auto it = services_.find(svc);
  if (it == services_.end()) {
    return Status::kNotFound;
  }
  Domain* server = machine_->domain(it->second.server);
  assert(server != nullptr);
  if (!server->alive()) {
    return Status::kNotFound;
  }
  if (server->id() != caller.id()) {
    TraceSpan span(machine_->trace(), TraceCategory::kIpc, "ipc-call", caller.id(),
                   server->id());
    ChargeCrossing(caller, *server);
    for (const PiggybackHook& hook : hooks_) {
      hook(caller, *server);  // request direction
    }
  }
  const Status st = it->second.handler(args);
  if (server->id() != caller.id()) {
    for (const PiggybackHook& hook : hooks_) {
      hook(*server, caller);  // reply direction
    }
  }
  return st;
}

bool Rpc::UseSyncPath() const {
  return dispatcher_ == nullptr || machine_->num_cpus() <= 1;
}

void Rpc::ChargeCrossingAsync(Domain& a, Domain& b, CrossingDone done) {
  if (UseSyncPath() || a.id() == b.id()) {
    ChargeCrossing(a, b);
    if (done) {
      done(machine_->clock().Now());
    }
    return;
  }
  const SimTime ready = machine_->clock().Now();
  const DomainId from = a.id();
  const DomainId to = b.id();
  dispatcher_->RunInDomain(
      to, ready,
      "crossing/" + std::to_string(from) + ">" + std::to_string(to),
      [this, from, to] {
        // ChargeCrossing lands on the callee's lane: the dispatch queue's
        // context hooks have made it the active CPU.
        ChargeCrossing(*machine_->domain(from), *machine_->domain(to));
      },
      [done = std::move(done)](SimTime finish) {
        if (done) {
          done(finish);
        }
      });
}

void Rpc::CallAsync(Domain& caller, ServiceId svc, RpcArgs args, AsyncDone done) {
  auto it = services_.find(svc);
  if (it == services_.end()) {
    if (done) {
      done(Status::kNotFound, args, machine_->clock().Now());
    }
    return;
  }
  Domain* server = machine_->domain(it->second.server);
  assert(server != nullptr);
  if (UseSyncPath() || server->id() == caller.id()) {
    const Status st = Call(caller, svc, args);
    if (done) {
      done(st, args, machine_->clock().Now());
    }
    return;
  }
  if (!server->alive()) {
    if (done) {
      done(Status::kNotFound, args, machine_->clock().Now());
    }
    return;
  }
  const SimTime ready = machine_->clock().Now();
  const DomainId caller_id = caller.id();
  const DomainId server_id = server->id();
  // Shared between work (runs on the callee's lane) and completion.
  struct CallState {
    Status st = Status::kNotFound;
    RpcArgs args;
  };
  auto state = std::make_shared<CallState>();
  state->args = args;
  dispatcher_->RunInDomain(
      server_id, ready, "rpc/" + std::to_string(svc),
      [this, caller_id, server_id, svc, state] {
        Domain* c = machine_->domain(caller_id);
        Domain* s = machine_->domain(server_id);
        if (!s->alive()) {
          state->st = Status::kNotFound;
          return;
        }
        auto sit = services_.find(svc);
        if (sit == services_.end() || sit->second.server != server_id) {
          state->st = Status::kNotFound;
          return;
        }
        TraceSpan span(machine_->trace(), TraceCategory::kIpc, "ipc-call",
                       caller_id, server_id);
        ChargeCrossing(*c, *s);
        for (const PiggybackHook& hook : hooks_) {
          hook(*c, *s);  // request direction
        }
        state->st = sit->second.handler(state->args);
        for (const PiggybackHook& hook : hooks_) {
          hook(*s, *c);  // reply direction
        }
      },
      [state, done = std::move(done)](SimTime finish) {
        if (done) {
          done(state->st, state->args, finish);
        }
      });
}

}  // namespace fbufs
