// Ports: unidirectional bounded message queues between domains.
//
// Used where the paper's system uses asynchronous notification (the device
// driver handing received PDUs to the protocol stack, explicit deallocation
// messages). Enqueue/dequeue carry only small control records; bulk data is
// referenced by fbuf id.
#ifndef SRC_IPC_PORT_H_
#define SRC_IPC_PORT_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/vm/types.h"

namespace fbufs {

struct PortMessage {
  std::uint32_t kind = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class Port {
 public:
  explicit Port(std::size_t capacity = 256) : capacity_(capacity) {}

  Status Send(const PortMessage& m) {
    if (queue_.size() >= capacity_) {
      return Status::kExhausted;
    }
    queue_.push_back(m);
    return Status::kOk;
  }

  std::optional<PortMessage> Receive() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    PortMessage m = queue_.front();
    queue_.pop_front();
    return m;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<PortMessage> queue_;
};

}  // namespace fbufs

#endif  // SRC_IPC_PORT_H_
