#include "src/ipc/dispatch.h"

#include <cassert>
#include <utility>

namespace fbufs {

Dispatcher::Dispatcher(Machine* machine, EventLoop* loop)
    : machine_(machine), loop_(loop) {
  cpu_queues_.resize(machine_->num_cpus());
}

void Dispatcher::BindDomain(DomainId d, std::uint32_t cpu) {
  assert(cpu < machine_->num_cpus());
  assert(domain_queues_.find(d) == domain_queues_.end() &&
         "BindDomain after the domain's queue exists");
  bindings_[d] = cpu;
}

std::uint32_t Dispatcher::CpuForDomain(DomainId d) const {
  auto it = bindings_.find(d);
  if (it != bindings_.end()) {
    return it->second;
  }
  return static_cast<std::uint32_t>(d) % machine_->num_cpus();
}

std::unique_ptr<DispatchQueue> Dispatcher::MakeQueue(std::uint32_t cpu,
                                                     const std::string& name) {
  auto q = std::make_unique<DispatchQueue>(loop_, &machine_->cpu_lane(cpu), name);
  DispatchQueue* raw = q.get();
  // Every item runs with its lane active; the previous lane is restored on
  // exit. Saved in the enter hook (items never nest — the queue is serial —
  // so one slot per queue suffices).
  auto prev = std::make_shared<std::uint32_t>(0);
  q->SetContextHooks(
      [this, cpu, prev] {
        *prev = machine_->active_cpu();
        machine_->SetActiveCpu(cpu);
      },
      [this, prev] { machine_->SetActiveCpu(*prev); });
  q->SetWaitObserver([this, raw](SimTime start, SimTime wait) {
    MetricsRegistry* m = machine_->metrics();
    if (m != nullptr) {
      m->GetHistogram("dispatch.wait_ns/" + raw->name())->Observe(wait);
      m->Sample("dispatch.depth/" + raw->name(), start,
                static_cast<std::int64_t>(raw->depth()));
    }
  });
  return q;
}

DispatchQueue& Dispatcher::QueueForCpu(std::uint32_t cpu) {
  assert(cpu < cpu_queues_.size());
  if (cpu_queues_[cpu] == nullptr) {
    cpu_queues_[cpu] = MakeQueue(
        cpu, machine_->name() + "/cpu" + std::to_string(cpu));
  }
  return *cpu_queues_[cpu];
}

DispatchQueue& Dispatcher::QueueForDomain(DomainId d) {
  auto it = domain_queues_.find(d);
  if (it == domain_queues_.end()) {
    const std::uint32_t cpu = CpuForDomain(d);
    it = domain_queues_
             .emplace(d, MakeQueue(cpu, machine_->name() + "/dom" + std::to_string(d)))
             .first;
  }
  return *it->second;
}

void Dispatcher::Submit(DispatchQueue& q, SimTime ready, std::string label,
                        DispatchQueue::Work work, DispatchQueue::Done done) {
  // The path active at submission time owns whatever queueing delay the item
  // accumulates; the work itself re-establishes its own scopes when it runs.
  const AttrPathId path = machine_->attribution().path();
  q.Enqueue(
      ready, std::move(label),
      [this, work = std::move(work)] {
        {
          // The run-queue pop and context switch to the servicing thread.
          LayerScope layer(machine_->attribution(), CostDomain::kDispatch);
          machine_->clock().Advance(machine_->costs().dispatch_ns);
        }
        work();
      },
      std::move(done),
      [this, path](SimTime wait) { path_wait_ns_[path] += wait; });
}

void Dispatcher::RunOnCpu(std::uint32_t cpu, SimTime ready, std::string label,
                          DispatchQueue::Work work, DispatchQueue::Done done) {
  Submit(QueueForCpu(cpu), ready, std::move(label), std::move(work), std::move(done));
}

void Dispatcher::RunInDomain(DomainId domain, SimTime ready, std::string label,
                             DispatchQueue::Work work, DispatchQueue::Done done) {
  Submit(QueueForDomain(domain), ready, std::move(label), std::move(work),
         std::move(done));
}

SimTime Dispatcher::TotalWaitNs() const {
  SimTime total = 0;
  for (const auto& q : cpu_queues_) {
    if (q != nullptr) {
      total += q->total_wait_ns();
    }
  }
  for (const auto& [d, q] : domain_queues_) {
    total += q->total_wait_ns();
  }
  return total;
}

SimTime Dispatcher::MaxWaitNs() const {
  SimTime m = 0;
  for (const auto& q : cpu_queues_) {
    if (q != nullptr && q->max_wait_ns() > m) {
      m = q->max_wait_ns();
    }
  }
  for (const auto& [d, q] : domain_queues_) {
    if (q->max_wait_ns() > m) {
      m = q->max_wait_ns();
    }
  }
  return m;
}

}  // namespace fbufs
