// Synchronous cross-domain invocation (Mach-IPC / x-kernel-proxy class).
//
// The simulator's control-transfer path: a call from one domain into a
// service registered by another charges the round-trip crossing latency
// (kernel/user or user/user), counts statistics, and gives interested
// layers (the fbuf system) a chance to piggyback data — deallocation
// notices ride on these messages exactly as §3.3 of the paper describes.
#ifndef SRC_IPC_RPC_H_
#define SRC_IPC_RPC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/vm/machine.h"
#include "src/vm/types.h"

namespace fbufs {

class Dispatcher;

using ServiceId = std::uint32_t;

// Small by-value argument block carried by a call (fits in registers /
// message body; large data travels as fbufs, never here).
struct RpcArgs {
  std::uint64_t word[6] = {0, 0, 0, 0, 0, 0};
};

class Rpc {
 public:
  explicit Rpc(Machine* machine) : machine_(machine) {}

  Rpc(const Rpc&) = delete;
  Rpc& operator=(const Rpc&) = delete;

  using Handler = std::function<Status(RpcArgs&)>;

  // Registers |svc| as implemented by |server|. Re-registration replaces.
  void RegisterService(Domain& server, ServiceId svc, Handler handler);

  // Synchronous call: charges the crossing latency for the (caller, server)
  // pair, runs piggyback hooks for both directions (call and reply), then
  // invokes the handler. Calls within one domain are plain procedure calls
  // (no latency, no hooks).
  Status Call(Domain& caller, ServiceId svc, RpcArgs& args);

  // Charges one crossing without invoking anything (used by layers that
  // model a message send whose processing is accounted elsewhere).
  void ChargeCrossing(Domain& a, Domain& b);

  // Generic synchronous invocation: charges the crossing, runs piggyback
  // hooks for both directions around |fn| (which executes "in" |callee|).
  // Same-domain calls degenerate to a plain call. Used by the protocol
  // graph's proxy objects.
  Status Invoke(Domain& caller, Domain& callee, const std::function<Status()>& fn);

  // Piggyback hooks run on every cross-domain call, once per direction:
  // hook(from, to) for the request and hook(to, from) for the reply.
  using PiggybackHook = std::function<void(Domain& from, Domain& to)>;
  void AddPiggybackHook(PiggybackHook hook) { hooks_.push_back(std::move(hook)); }

  // --- Evented path (multicore) ----------------------------------------------
  // With a dispatcher attached and num_cpus > 1, the *Async entry points stop
  // charging on the caller: the crossing plus handler run as a work item on
  // the callee domain's dispatch queue (on its bound CPU lane), and the
  // completion callback fires with the finish time on that lane. Without a
  // dispatcher — or on a single-CPU machine — they degenerate to the exact
  // synchronous path, so every pre-multicore schedule is preserved.
  void AttachDispatcher(Dispatcher* d) { dispatcher_ = d; }
  Dispatcher* dispatcher() { return dispatcher_; }

  // |args| travel by value into the callee; the completion sees the handler's
  // mutations (the reply message).
  using AsyncDone = std::function<void(Status, const RpcArgs&, SimTime)>;
  void CallAsync(Domain& caller, ServiceId svc, RpcArgs args, AsyncDone done);

  using CrossingDone = std::function<void(SimTime)>;
  void ChargeCrossingAsync(Domain& a, Domain& b, CrossingDone done = {});

  Machine& machine() { return *machine_; }

 private:
  struct Service {
    DomainId server = kInvalidDomainId;
    Handler handler;
  };

  bool UseSyncPath() const;

  Machine* machine_;
  Dispatcher* dispatcher_ = nullptr;
  std::map<ServiceId, Service> services_;
  std::vector<PiggybackHook> hooks_;
};

}  // namespace fbufs

#endif  // SRC_IPC_RPC_H_
