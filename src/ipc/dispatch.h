// Machine-level dispatcher: binds dispatch queues to a Machine's CPU lanes.
//
// The sim-layer DispatchQueue knows nothing about Machines or attribution;
// this layer owns the wiring. A Dispatcher keeps one queue per CPU lane plus
// one queue per protection domain (each domain's queue is bound to a fixed
// lane, like a single-threaded server process pinned to a CPU). Work routed
// through a Dispatcher runs with the machine's active CPU switched to the
// servicing lane — clock charges, trace timestamps and attribution cells all
// land on that lane — and pays the modeled per-dispatch scheduling cost
// under CostDomain::kDispatch.
//
// Placement policy: a domain runs on CpuForDomain(d) — an explicit
// BindDomain() pin, defaulting to round-robin by domain id. Receive
// processing steers by VCI via CpuForVci (RSS): one flow always lands on
// one lane, distinct flows spread.
#ifndef SRC_IPC_DISPATCH_H_
#define SRC_IPC_DISPATCH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/dispatch.h"
#include "src/sim/event_loop.h"
#include "src/vm/machine.h"

namespace fbufs {

class Dispatcher {
 public:
  Dispatcher(Machine* machine, EventLoop* loop);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  Machine& machine() { return *machine_; }

  // Pins |d|'s queue to |cpu|. Only legal before the domain's queue first
  // runs work; existing queue bindings are not migrated.
  void BindDomain(DomainId d, std::uint32_t cpu);

  std::uint32_t CpuForDomain(DomainId d) const;
  std::uint32_t CpuForVci(std::uint32_t vci) const {
    return RssSteer(vci, machine_->num_cpus());
  }

  // Runs |work| on CPU lane |cpu|, no earlier than |ready|, serialized
  // behind everything already queued for that lane's queue. |work| executes
  // with the lane active and is charged the per-dispatch cost first; |done|
  // (optional) fires with the completion time on the lane.
  void RunOnCpu(std::uint32_t cpu, SimTime ready, std::string label,
                DispatchQueue::Work work, DispatchQueue::Done done = {});

  // Runs |work| in |domain|'s queue (on its bound CPU).
  void RunInDomain(DomainId domain, SimTime ready, std::string label,
                   DispatchQueue::Work work, DispatchQueue::Done done = {});

  DispatchQueue& QueueForCpu(std::uint32_t cpu);
  DispatchQueue& QueueForDomain(DomainId d);

  // Aggregate queueing delay across every queue this dispatcher owns: the
  // scheduler-induced latency of the run, reported by the multicore bench.
  SimTime TotalWaitNs() const;
  SimTime MaxWaitNs() const;

  // Queueing delay sliced by the I/O path that was active when the work was
  // submitted (kAttrNoPath collects untagged submissions). Waits are latency,
  // not CPU time, so they sit beside the attribution cells, keyed the same
  // way the profiler keys its path coordinate.
  const std::map<AttrPathId, SimTime>& PathWaitNs() const { return path_wait_ns_; }

 private:
  // Wraps |work| with the active-CPU switch and the dispatch cost, and
  // enqueues it on |q|.
  void Submit(DispatchQueue& q, SimTime ready, std::string label,
              DispatchQueue::Work work, DispatchQueue::Done done);
  std::unique_ptr<DispatchQueue> MakeQueue(std::uint32_t cpu, const std::string& name);

  Machine* machine_;
  EventLoop* loop_;
  std::map<DomainId, std::uint32_t> bindings_;
  std::map<AttrPathId, SimTime> path_wait_ns_;
  std::vector<std::unique_ptr<DispatchQueue>> cpu_queues_;   // index = lane
  std::map<DomainId, std::unique_ptr<DispatchQueue>> domain_queues_;
};

}  // namespace fbufs

#endif  // SRC_IPC_DISPATCH_H_
