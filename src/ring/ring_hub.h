// RingHub: the per-host registry of transfer rings.
//
// Rings are directional and pairwise — one (producer, consumer) pair per
// ring — so a host with a three-domain data path runs several. The hub owns
// them, keyed by the pair, creates them lazily when auto-create is on (the
// protocol stack asks for a ring the first time a delivery crosses a pair),
// and plugs into FbufSystem as its RingNoticeTransport so §3.3 dealloc
// notices ride the rings too: a notice whose (holder, owner) pair has a
// ring — or can get one — becomes a ring entry instead of joining the
// piggyback pending list. A full SQ falls back to the legacy list, which is
// exactly the paper's behavior when the fast path is saturated.
//
// The hub registers a machine termination hook so every ring touching a
// dying domain drains synchronously (notices applied, handoffs aborted)
// before the domain's queues disappear. It must therefore be constructed
// after the FbufSystem — hooks run in registration order, and the fbuf
// sweep must settle holder state before rings apply their queued notices.
#ifndef SRC_RING_RING_HUB_H_
#define SRC_RING_RING_HUB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "src/fbuf/fbuf_system.h"
#include "src/ring/transfer_ring.h"

namespace fbufs {

class RingHub : public RingNoticeTransport {
 public:
  RingHub(Machine* machine, FbufSystem* fsys, Rpc* rpc, EventLoop* loop,
          RingConfig default_config = RingConfig{}, bool auto_create = true);

  RingHub(const RingHub&) = delete;
  RingHub& operator=(const RingHub&) = delete;

  // Creates (or returns) the ring carrying producer -> consumer traffic.
  TransferRing* CreateRing(Domain& producer, Domain& consumer);

  // Lookup; with auto-create on, makes the ring if both domains are alive.
  // Returns nullptr (caller takes the sync path) otherwise, or when the
  // existing ring is dead.
  TransferRing* RingFor(DomainId producer, DomainId consumer);

  // RingNoticeTransport: route a dealloc notice onto the (holder, owner)
  // ring. False — notice joins the legacy pending list — when there is no
  // ring or its SQ is full.
  bool SubmitDeallocNotice(DomainId holder, DomainId owner, FbufId fb) override;

  // Rings every idle non-empty doorbell (bench epilogue: cut timer tails).
  void FlushAll();

  const RingConfig& default_config() const { return cfg_; }
  void set_default_config(const RingConfig& c) { cfg_ = c; }

  using Key = std::pair<DomainId, DomainId>;
  const std::map<Key, std::unique_ptr<TransferRing>>& rings() const {
    return rings_;
  }

  // --- Aggregates across all rings (bench JSON) -----------------------------
  std::map<AttrPathId, SimTime> PathOccupancyNs() const;
  std::uint64_t TotalSubmitted() const;
  std::uint64_t TotalConsumed() const;
  std::uint64_t TotalDoorbells() const;
  std::uint64_t TotalSqFull() const;

 private:
  Machine* machine_;
  FbufSystem* fsys_;
  Rpc* rpc_;
  EventLoop* loop_;
  RingConfig cfg_;
  bool auto_create_;
  std::map<Key, std::unique_ptr<TransferRing>> rings_;
};

}  // namespace fbufs

#endif  // SRC_RING_RING_HUB_H_
