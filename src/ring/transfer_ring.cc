#include "src/ring/transfer_ring.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/fbuf/fbuf_system.h"
#include "src/ipc/dispatch.h"
#include "src/ipc/rpc.h"
#include "src/obs/attribution.h"
#include "src/obs/metrics.h"
#include "src/sim/trace.h"

namespace fbufs {

namespace {
bool IsPowerOfTwo(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

TransferRing::TransferRing(Machine* machine, FbufSystem* fsys, Rpc* rpc,
                           EventLoop* loop, Domain& producer, Domain& consumer,
                           RingConfig config, std::string name)
    : machine_(machine),
      fsys_(fsys),
      rpc_(rpc),
      loop_(loop),
      producer_(producer.id()),
      consumer_(consumer.id()),
      cfg_(config),
      name_(std::move(name)) {
  assert(loop_ != nullptr && "rings drain through the event loop");
  assert(IsPowerOfTwo(cfg_.sq_slots) && "SQ slot count must be a power of two");
  assert(IsPowerOfTwo(cfg_.cq_slots) && "CQ slot count must be a power of two");
  assert(cfg_.doorbell_batch >= 1);
  assert(cfg_.drain_budget >= 1);
  assert(producer_ != consumer_ && "a ring pairs two distinct domains");
  slots_.resize(cfg_.sq_slots);
}

SimTime TransferRing::KeyNow() const {
  return std::max(loop_->Now(), machine_->clock().Now());
}

void TransferRing::SampleDepth() {
  MetricsRegistry* m = machine_->metrics();
  if (m != nullptr) {
    m->Sample(name_ + "/sq_depth", machine_->clock().Now(),
              static_cast<std::int64_t>(SqDepth()));
  }
}

Status TransferRing::SubmitHandoff(AttrPathId path, Body body, Abort abort,
                                   Done done) {
  Entry e;
  e.op = Op::kHandoff;
  e.path = path;
  e.body = std::move(body);
  e.abort = std::move(abort);
  e.done = std::move(done);
  return Submit(std::move(e));
}

Status TransferRing::SubmitDealloc(FbufId fb, AttrPathId path) {
  Entry e;
  e.op = Op::kDealloc;
  e.fb = fb;
  e.path = path;
  return Submit(std::move(e));
}

Status TransferRing::Submit(Entry e) {
  if (dead_) {
    return Status::kNotFound;
  }
  if (SqDepth() >= cfg_.sq_slots) {
    stats_.sq_full++;
    return Status::kExhausted;
  }
  {
    // The descriptor write: a few cache lines into shared memory, charged to
    // the producer on whatever lane it is running.
    LayerScope layer(machine_->attribution(), CostDomain::kRing);
    ActorScope actor(machine_->attribution(), producer_);
    PathScope pscope(machine_->attribution(), e.path);
    machine_->clock().Advance(machine_->costs().ring_entry_ns);
  }
  machine_->trace().Emit(TraceCategory::kIpc, "ring-submit", producer_,
                         static_cast<std::uint64_t>(e.op));
  e.submitted = machine_->clock().Now();
  slots_[sq_tail_ & (cfg_.sq_slots - 1)] = std::move(e);
  sq_tail_++;
  stats_.submitted++;
  SampleDepth();
  if (state_ == State::kIdle) {
    if (SqDepth() >= cfg_.doorbell_batch) {
      RingDoorbell(false);
    } else {
      ArmFlushTimer();
    }
  }
  // In-flight or armed consumers coalesce: the pending doorbell or the
  // running drain will pick this entry up with no further crossing.
  return Status::kOk;
}

void TransferRing::Flush() {
  if (!dead_ && state_ == State::kIdle && !SqEmpty()) {
    RingDoorbell(true);
  }
}

void TransferRing::ArmFlushTimer() {
  if (flush_timer_armed_ || dead_) {
    return;
  }
  flush_timer_armed_ = true;
  loop_->Schedule(KeyNow() + cfg_.flush_delay_ns, "ring-flush/" + name_,
                  [this] {
                    flush_timer_armed_ = false;
                    if (!dead_ && state_ == State::kIdle && !SqEmpty()) {
                      RingDoorbell(true);
                    }
                  });
}

void TransferRing::RingDoorbell(bool from_flush) {
  state_ = State::kDoorbellInFlight;
  stats_.doorbells++;
  if (from_flush) {
    stats_.flush_doorbells++;
  }
  {
    // MMIO-class store telling the consumer the SQ went non-empty.
    LayerScope layer(machine_->attribution(), CostDomain::kRing);
    ActorScope actor(machine_->attribution(), producer_);
    machine_->clock().Advance(machine_->costs().ring_doorbell_ns);
  }
  machine_->trace().Emit(TraceCategory::kIpc, "ring-doorbell", producer_,
                         SqDepth());
  MetricsRegistry* m = machine_->metrics();
  if (m != nullptr) {
    m->GetHistogram(name_ + "/batch")->Observe(SqDepth());
    m->Sample(name_ + "/doorbells", machine_->clock().Now(),
              static_cast<std::int64_t>(stats_.doorbells));
  }
  Domain* p = machine_->domain(producer_);
  Domain* c = machine_->domain(consumer_);
  if (p == nullptr || c == nullptr || !p->alive() || !c->alive()) {
    state_ = State::kIdle;
    return;
  }
  // The one crossing a batch pays. Lands on the consumer's dispatch queue
  // under the multicore model; degenerates to a synchronous charge otherwise.
  rpc_->ChargeCrossingAsync(*p, *c, [this](SimTime at) { OnDoorbell(at); });
}

void TransferRing::OnDoorbell(SimTime at) {
  if (dead_) {
    return;
  }
  state_ = State::kArmed;
  ScheduleDrain(at);
}

void TransferRing::ScheduleDrain(SimTime ready) {
  if (drain_scheduled_ || dead_) {
    return;
  }
  drain_scheduled_ = true;
  Dispatcher* d = rpc_->dispatcher();
  if (d != nullptr && machine_->num_cpus() > 1) {
    d->RunInDomain(consumer_, ready, "ring-drain/" + name_,
                   [this] { DrainPass(); });
  } else {
    loop_->Schedule(std::max(ready, KeyNow()), "ring-drain/" + name_,
                    [this] { DrainPass(); });
  }
}

void TransferRing::DrainPass() {
  drain_scheduled_ = false;
  if (dead_) {
    return;
  }
  std::vector<Completion> batch;
  std::uint32_t consumed = 0;
  while (!SqEmpty() && consumed < cfg_.drain_budget &&
         cq_inflight_ < cfg_.cq_slots) {
    Entry e = std::move(slots_[sq_head_ & (cfg_.sq_slots - 1)]);
    sq_head_++;
    {
      // The descriptor read on the consumer side.
      LayerScope layer(machine_->attribution(), CostDomain::kRing);
      ActorScope actor(machine_->attribution(), consumer_);
      PathScope pscope(machine_->attribution(), e.path);
      machine_->clock().Advance(machine_->costs().ring_entry_ns);
    }
    const SimTime now = machine_->clock().Now();
    const SimTime waited = now > e.submitted ? now - e.submitted : 0;
    path_occupancy_ns_[e.path] += waited;
    MetricsRegistry* m = machine_->metrics();
    if (m != nullptr) {
      m->GetHistogram(name_ + "/sq_wait_ns")->Observe(waited);
    }
    Status st = Status::kOk;
    if (e.op == Op::kDealloc) {
      fsys_->ApplyRingNotice(producer_, consumer_, e.fb);
    } else if (e.body) {
      st = e.body();
    }
    stats_.consumed++;
    consumed++;
    cq_inflight_++;
    batch.push_back(Completion{st, e.path, std::move(e.done)});
  }
  SampleDepth();
  const SimTime after = machine_->clock().Now();
  if (!batch.empty()) {
    ScheduleCompletions(std::move(batch), after);
  }
  if (!SqEmpty()) {
    if (cq_inflight_ >= cfg_.cq_slots) {
      // CQ full: resume once the producer harvests. Rescheduling now would
      // spin at the same simulated instant making no progress.
      drain_waiting_cq_ = true;
    } else {
      // Budget exhausted: stay armed, keep draining — no new doorbell.
      ScheduleDrain(after);
    }
  } else {
    state_ = State::kIdle;
  }
}

void TransferRing::ScheduleCompletions(std::vector<Completion> batch,
                                       SimTime ready) {
  auto run = [this, batch = std::move(batch)]() mutable {
    HarvestCompletions(batch);
  };
  Dispatcher* d = rpc_->dispatcher();
  if (d != nullptr && machine_->num_cpus() > 1) {
    d->RunInDomain(producer_, ready, "ring-complete/" + name_, std::move(run));
  } else {
    loop_->Schedule(std::max(ready, KeyNow()), "ring-complete/" + name_,
                    std::move(run));
  }
}

void TransferRing::HarvestCompletions(std::vector<Completion>& batch) {
  for (Completion& c : batch) {
    {
      // The CQE read back on the producer side.
      LayerScope layer(machine_->attribution(), CostDomain::kRing);
      ActorScope actor(machine_->attribution(), producer_);
      PathScope pscope(machine_->attribution(), c.path);
      machine_->clock().Advance(machine_->costs().ring_entry_ns);
    }
    if (cq_inflight_ > 0) {
      cq_inflight_--;
    }
    if (c.done) {
      c.done(c.status, machine_->clock().Now());
    }
  }
  if (drain_waiting_cq_ && !dead_) {
    drain_waiting_cq_ = false;
    ScheduleDrain(machine_->clock().Now());
  }
}

void TransferRing::OnDomainTerminated(Domain& d) {
  if (dead_ || (d.id() != producer_ && d.id() != consumer_)) {
    return;
  }
  dead_ = true;
  // Kernel-side teardown: no cost charges (cleanup is background work, same
  // as FbufSystem's termination sweep). Notices still apply — §3.3 teardown
  // settles what the dead domain owed or was owed; ApplyRingNotice handles
  // the defunct-allocator case by destroying instead of free-listing.
  while (!SqEmpty()) {
    Entry e = std::move(slots_[sq_head_ & (cfg_.sq_slots - 1)]);
    sq_head_++;
    if (e.op == Op::kDealloc) {
      fsys_->ApplyRingNotice(producer_, consumer_, e.fb);
      stats_.consumed++;
    } else {
      if (e.abort) {
        e.abort();
      }
      stats_.aborted++;
      if (e.done) {
        e.done(Status::kNotFound, machine_->clock().Now());
      }
    }
  }
  SampleDepth();
}

}  // namespace fbufs
