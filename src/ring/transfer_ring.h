// Shared-memory transfer rings: batched cross-domain fbuf handoffs.
//
// A TransferRing pairs a producer domain with a consumer domain through a
// pair of fixed-size shared-memory queues, io_uring style: a submission
// queue (SQ) of handoff descriptors written by the producer and read by the
// consumer, and a completion queue (CQ) flowing the other way. Descriptors
// carry either an fbuf handoff (the control transfer of a delivery whose
// data pages already moved via FbufSystem::Transfer) or a §3.3 deallocation
// notice. Because both queues live in memory mapped into both domains,
// writing a descriptor costs a few cache lines (ring_entry_ns), not an IPC.
//
// The doorbell is where the crossing cost lives. The consumer is in one of
// three states: idle (not watching the ring), doorbell-in-flight (a wakeup
// crossing is on its way) or armed (actively draining). Only an idle
// consumer needs a doorbell — one Rpc crossing, charged through the normal
// ChargeCrossingAsync path so it lands on the consumer's dispatch queue and
// CPU lane under the multicore model. Submissions that find the consumer
// already in-flight or armed coalesce for free, so a burst of K transfers
// pays one crossing: crossings/transfer -> 1/K, which is the whole point.
// A flush timer bounds the latency of a sub-batch tail: if fewer than
// doorbell_batch entries accumulate, the doorbell rings after
// flush_delay_ns anyway.
//
// Backpressure: a full SQ refuses the submission with Status::kExhausted —
// retryable per FlowBackoff::IsBackpressure — rather than queueing
// unboundedly. A full CQ pauses draining until the producer harvests
// completions.
//
// Determinism: all deferred work runs through the EventLoop with
// (time, seq) keys; same seed, same schedule, same JSON.
#ifndef SRC_RING_TRANSFER_RING_H_
#define SRC_RING_TRANSFER_RING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/fbuf/fbuf.h"
#include "src/sim/event_loop.h"
#include "src/vm/domain.h"
#include "src/vm/machine.h"

namespace fbufs {

class FbufSystem;
class Rpc;

struct RingConfig {
  std::uint32_t sq_slots = 64;       // power of two
  std::uint32_t cq_slots = 64;       // power of two
  std::uint32_t doorbell_batch = 8;  // entries accumulated while idle before ringing
  std::uint32_t drain_budget = 16;   // max entries consumed per drain pass
  SimTime flush_delay_ns = 50000;    // sub-batch tail latency bound
};

class TransferRing {
 public:
  enum class Op : std::uint8_t {
    kHandoff,  // control transfer of a delivery (body runs in the consumer)
    kDealloc,  // §3.3 deallocation notice (producer freed consumer's fbuf)
  };

  // Runs in the consumer when the entry is drained.
  using Body = std::function<Status()>;
  // Best-effort cleanup if the ring dies with the entry still queued.
  using Abort = std::function<void()>;
  // Fires on the producer side when the completion is harvested.
  using Done = std::function<void(Status, SimTime)>;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t consumed = 0;
    std::uint64_t doorbells = 0;
    std::uint64_t flush_doorbells = 0;  // doorbells rung by the flush timer
    std::uint64_t sq_full = 0;          // submissions refused (backpressure)
    std::uint64_t aborted = 0;          // handoffs dropped at teardown
  };

  TransferRing(Machine* machine, FbufSystem* fsys, Rpc* rpc, EventLoop* loop,
               Domain& producer, Domain& consumer, RingConfig config,
               std::string name);

  TransferRing(const TransferRing&) = delete;
  TransferRing& operator=(const TransferRing&) = delete;

  // Queues a handoff descriptor. Charges the producer one ring_entry_ns slot
  // write; full SQ returns Status::kExhausted without side effects.
  Status SubmitHandoff(AttrPathId path, Body body, Abort abort = {},
                       Done done = {});

  // Queues a §3.3 dealloc notice for |fb| (owned by the consumer, freed by
  // the producer). Applied via FbufSystem::ApplyRingNotice when drained.
  Status SubmitDealloc(FbufId fb, AttrPathId path);

  // Rings the doorbell now if the consumer is idle and entries are queued
  // (benches use this to cut the flush-timer tail off a measured burst).
  void Flush();

  // Either endpoint died: drain the SQ synchronously — notices still apply
  // (§3.3 teardown delivers what the dead domain owed), handoffs abort.
  void OnDomainTerminated(Domain& d);

  DomainId producer() const { return producer_; }
  DomainId consumer() const { return consumer_; }
  const std::string& name() const { return name_; }
  const Stats& stats() const { return stats_; }
  bool dead() const { return dead_; }
  std::uint32_t SqDepth() const { return sq_tail_ - sq_head_; }
  bool SqEmpty() const { return sq_tail_ == sq_head_; }

  // Time descriptors sat in the SQ (submit -> consume), sliced by path:
  // ring-occupancy latency, reported beside dispatch waits in bench JSON.
  const std::map<AttrPathId, SimTime>& PathOccupancyNs() const {
    return path_occupancy_ns_;
  }

 private:
  enum class State : std::uint8_t { kIdle, kDoorbellInFlight, kArmed };

  struct Entry {
    Op op = Op::kHandoff;
    FbufId fb = kInvalidFbufId;
    AttrPathId path = kAttrNoPath;
    SimTime submitted = 0;
    Body body;
    Abort abort;
    Done done;
  };

  struct Completion {
    Status status = Status::kOk;
    AttrPathId path = kAttrNoPath;
    Done done;
  };

  Status Submit(Entry e);
  void RingDoorbell(bool from_flush);
  void ArmFlushTimer();
  void OnDoorbell(SimTime at);
  void ScheduleDrain(SimTime ready);
  void DrainPass();
  void ScheduleCompletions(std::vector<Completion> batch, SimTime ready);
  void HarvestCompletions(std::vector<Completion>& batch);
  void SampleDepth();
  // Event keys must not run behind the loop's floor; lane clocks and the
  // loop clock are only partially ordered.
  SimTime KeyNow() const;

  Machine* machine_;
  FbufSystem* fsys_;
  Rpc* rpc_;
  EventLoop* loop_;
  DomainId producer_;
  DomainId consumer_;
  RingConfig cfg_;
  std::string name_;

  std::vector<Entry> slots_;
  // Free-running indices; slot = index & (sq_slots - 1). Depth never exceeds
  // sq_slots, so wraparound of the 32-bit counters is harmless.
  std::uint32_t sq_head_ = 0;
  std::uint32_t sq_tail_ = 0;
  std::uint32_t cq_inflight_ = 0;

  State state_ = State::kIdle;
  bool drain_scheduled_ = false;
  bool drain_waiting_cq_ = false;
  bool flush_timer_armed_ = false;
  bool dead_ = false;

  Stats stats_;
  std::map<AttrPathId, SimTime> path_occupancy_ns_;
};

}  // namespace fbufs

#endif  // SRC_RING_TRANSFER_RING_H_
