#include "src/ring/ring_hub.h"

#include <utility>

namespace fbufs {

RingHub::RingHub(Machine* machine, FbufSystem* fsys, Rpc* rpc, EventLoop* loop,
                 RingConfig default_config, bool auto_create)
    : machine_(machine),
      fsys_(fsys),
      rpc_(rpc),
      loop_(loop),
      cfg_(default_config),
      auto_create_(auto_create) {
  machine_->AddTerminationHook([this](Domain& d) {
    for (auto& [key, ring] : rings_) {
      ring->OnDomainTerminated(d);
    }
  });
}

TransferRing* RingHub::CreateRing(Domain& producer, Domain& consumer) {
  const Key key{producer.id(), consumer.id()};
  auto it = rings_.find(key);
  if (it != rings_.end()) {
    return it->second.get();
  }
  auto ring = std::make_unique<TransferRing>(
      machine_, fsys_, rpc_, loop_, producer, consumer, cfg_,
      "ring/" + producer.name() + ">" + consumer.name());
  TransferRing* raw = ring.get();
  rings_.emplace(key, std::move(ring));
  return raw;
}

TransferRing* RingHub::RingFor(DomainId producer, DomainId consumer) {
  if (producer == consumer) {
    return nullptr;
  }
  auto it = rings_.find(Key{producer, consumer});
  if (it != rings_.end()) {
    return it->second->dead() ? nullptr : it->second.get();
  }
  if (!auto_create_) {
    return nullptr;
  }
  Domain* p = machine_->domain(producer);
  Domain* c = machine_->domain(consumer);
  if (p == nullptr || c == nullptr || !p->alive() || !c->alive()) {
    return nullptr;
  }
  return CreateRing(*p, *c);
}

bool RingHub::SubmitDeallocNotice(DomainId holder, DomainId owner, FbufId fb) {
  TransferRing* ring = RingFor(holder, owner);
  if (ring == nullptr) {
    return false;
  }
  const Fbuf* f = fsys_->Get(fb);
  const AttrPathId path = f != nullptr ? f->path : kAttrNoPath;
  return Ok(ring->SubmitDealloc(fb, path));
}

void RingHub::FlushAll() {
  for (auto& [key, ring] : rings_) {
    ring->Flush();
  }
}

std::map<AttrPathId, SimTime> RingHub::PathOccupancyNs() const {
  std::map<AttrPathId, SimTime> out;
  for (const auto& [key, ring] : rings_) {
    for (const auto& [path, ns] : ring->PathOccupancyNs()) {
      out[path] += ns;
    }
  }
  return out;
}

std::uint64_t RingHub::TotalSubmitted() const {
  std::uint64_t n = 0;
  for (const auto& [key, ring] : rings_) {
    n += ring->stats().submitted;
  }
  return n;
}

std::uint64_t RingHub::TotalConsumed() const {
  std::uint64_t n = 0;
  for (const auto& [key, ring] : rings_) {
    n += ring->stats().consumed;
  }
  return n;
}

std::uint64_t RingHub::TotalDoorbells() const {
  std::uint64_t n = 0;
  for (const auto& [key, ring] : rings_) {
    n += ring->stats().doorbells;
  }
  return n;
}

std::uint64_t RingHub::TotalSqFull() const {
  std::uint64_t n = 0;
  for (const auto& [key, ring] : rings_) {
    n += ring->stats().sq_full;
  }
  return n;
}

}  // namespace fbufs
