#include "src/fbuf/fbuf_system.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

#include "src/obs/lifecycle.h"

namespace fbufs {

FbufSystem::FbufSystem(Machine* machine, const FbufConfig& config)
    : machine_(machine), config_(config) {
  region_va_.Extend(kFbufRegionBase, kFbufRegionPages);
  machine_->vm().set_fbuf_fault_hook(
      [this](Domain& d, Vpn vpn, Access access) { return RegionFault(d, vpn, access); });
  machine_->AddTerminationHook([this](Domain& d) { OnDomainTerminated(d); });
}

void FbufSystem::AttachRpc(Rpc* rpc) {
  rpc_ = rpc;
  rpc->AddPiggybackHook(
      [this](Domain& from, Domain& to) { DeliverNotices(from.id(), to.id()); });
}

FbufSystem::Allocator& FbufSystem::GetAllocator(DomainId domain, PathId path, bool cached) {
  const std::uint64_t key = AllocatorKey(domain, path);
  auto it = allocators_.find(key);
  if (it == allocators_.end()) {
    Allocator a;
    a.domain = domain;
    a.path = path;
    a.cached = cached;
    it = allocators_.emplace(key, std::move(a)).first;
  }
  return it->second;
}

std::map<std::uint64_t, std::vector<FbufId>>& FbufSystem::CpuFreeLists(Allocator& a) {
  if (a.cpu_free_lists.size() < machine_->num_cpus()) {
    a.cpu_free_lists.resize(machine_->num_cpus());
  }
  return a.cpu_free_lists[machine_->active_cpu()];
}

std::vector<std::map<std::uint64_t, std::vector<FbufId>>*> FbufSystem::AllFreeListMaps(
    Allocator& a) {
  std::vector<std::map<std::uint64_t, std::vector<FbufId>>*> maps;
  maps.reserve(1 + a.cpu_free_lists.size());
  maps.push_back(&a.free_lists);
  for (auto& m : a.cpu_free_lists) {
    maps.push_back(&m);
  }
  return maps;
}

std::vector<const std::map<std::uint64_t, std::vector<FbufId>>*> FbufSystem::AllFreeListMaps(
    const Allocator& a) {
  std::vector<const std::map<std::uint64_t, std::vector<FbufId>>*> maps;
  maps.reserve(1 + a.cpu_free_lists.size());
  maps.push_back(&a.free_lists);
  for (const auto& m : a.cpu_free_lists) {
    maps.push_back(&m);
  }
  return maps;
}

Status FbufSystem::GrowAllocator(Allocator& a, std::uint64_t pages) {
  // Round the request up to whole chunks; grab them contiguously so a single
  // fbuf can span them.
  const std::uint64_t chunks_needed =
      (pages + config_.chunk_pages - 1) / config_.chunk_pages;
  if (a.chunks + chunks_needed > config_.chunk_quota) {
    return Status::kQuotaExceeded;
  }
  // Per-path page quota: a cached path's allocator may not grow past it.
  if (config_.path_page_quota > 0 && a.cached &&
      (a.chunks + chunks_needed) * config_.chunk_pages > config_.path_page_quota) {
    return Status::kQuotaExceeded;
  }
  const std::uint64_t grant_pages = chunks_needed * config_.chunk_pages;
  auto base = region_va_.Allocate(grant_pages);
  if (!base.has_value()) {
    return Status::kNoVirtualSpace;
  }
  // Requesting chunks from the kernel is the (rare) kernel involvement of
  // the two-level scheme.
  machine_->clock().Advance(machine_->costs().va_alloc_ns);
  machine_->stats().va_allocs++;
  a.chunks += static_cast<std::uint32_t>(chunks_needed);
  a.chunk_ranges.emplace_back(*base, grant_pages);
  a.va.Extend(*base, grant_pages);
  return Status::kOk;
}

Status FbufSystem::Allocate(Domain& originator, PathId path, std::uint64_t bytes,
                            bool want_volatile, Fbuf** out, std::optional<bool> clear) {
  const bool clear_pages = clear.value_or(config_.clear_new_pages);
  *out = nullptr;
  if (bytes == 0) {
    return Status::kInvalidArgument;
  }
  // A terminated domain cannot originate: its paths are dead and its
  // allocators defunct, and the default-allocator fallback must not quietly
  // resurrect allocation into a tombstone (the frames could never be
  // reclaimed — DestroyDomain already ran its entry teardown).
  if (!originator.alive()) {
    return Status::kInvalidArgument;
  }
  LayerScope layer(machine_->attribution(), CostDomain::kFbuf);
  ActorScope actor(machine_->attribution(), originator.id());
  PathScope pscope(machine_->attribution(), path);
  TraceSpan span(machine_->trace(), TraceCategory::kFbuf, "fbuf-alloc", originator.id(), bytes);
  const SimTime alloc_start = machine_->clock().Now();
  machine_->stats().fbuf_allocs++;
  // The watermark check: crossing the pool's high-pressure mark schedules an
  // evented reclamation sweep, so free lists and clean cache blocks drain
  // before allocations start failing.
  if (pressure_ != nullptr) {
    pressure_->OnAllocate();
  }
  Status st = AllocateInternal(originator, path, bytes, want_volatile, out, clear_pages);
  if ((st == Status::kNoMemory || st == Status::kNoVirtualSpace) && pressure_ != nullptr &&
      pressure_->OnAllocationFailure(PagesFor(bytes)) > 0) {
    // The emergency sweep found something to give back: one retry.
    st = AllocateInternal(originator, path, bytes, want_volatile, out, clear_pages);
  }
  if (Ok(st) && machine_->metrics() != nullptr) {
    machine_->metrics()->GetHistogram("fbuf.alloc_latency_ns")
        ->Observe(machine_->clock().Now() - alloc_start);
  }
  return st;
}

Status FbufSystem::AllocateInternal(Domain& originator, PathId path, std::uint64_t bytes,
                                    bool want_volatile, Fbuf** out, bool clear_pages) {
  const std::uint64_t pages = PagesFor(bytes);

  // Resolve the data path: unknown/dead paths, or paths this domain does not
  // originate, fall back to the default (uncached) allocator.
  const IoPath* io_path = paths_.Get(path);
  const bool cached = io_path != nullptr && io_path->originator() == originator.id();
  Allocator& a = GetAllocator(originator.id(), cached ? path : kNoPath, cached);
  if (a.defunct) {
    return Status::kInvalidArgument;
  }

  // Fast path: reuse a cached fbuf of the right size. LIFO order keeps the
  // warmest (most likely memory-resident) fbuf on top; the FIFO ablation
  // takes from the cold end instead. On a multicore machine the allocating
  // lane's own cache is tried first (warm for this CPU), falling back to the
  // shared lists before carving.
  if (cached) {
    std::map<std::uint64_t, std::vector<FbufId>>* lists = &a.free_lists;
    if (machine_->num_cpus() > 1) {
      auto& mine = CpuFreeLists(a);
      auto cit = mine.find(pages);
      if (cit != mine.end() && !cit->second.empty()) {
        lists = &mine;
      }
    }
    auto it = lists->find(pages);
    if (it != lists->end() && !it->second.empty()) {
      FbufId reuse_id;
      if (config_.lifo_free_lists) {
        reuse_id = it->second.back();
        it->second.pop_back();
      } else {
        reuse_id = it->second.front();
        it->second.erase(it->second.begin());
      }
      Fbuf* fb = fbufs_[reuse_id].get();
      machine_->stats().fbuf_cache_hits++;
      machine_->trace().Emit(TraceCategory::kFbuf, "alloc-cache-hit", fb->id, fb->base);
      fb->free_listed = false;
      fb->is_volatile = want_volatile;
      fb->bytes = bytes;
      fb->holders.push_back(originator.id());
      const Status st = EnsureMaterialized(fb);
      if (!Ok(st)) {
        // Roll the reuse back: the fbuf returns to its free-list slot (any
        // pages materialized before the failure keep their frames — a
        // free-listed fbuf may be partially resident). Without this the
        // fbuf would be neither free-listed nor handed out: a leak.
        fb->holders.pop_back();
        fb->free_listed = true;
        if (config_.lifo_free_lists) {
          it->second.push_back(reuse_id);
        } else {
          it->second.insert(it->second.begin(), reuse_id);
        }
        return st;
      }
      a.last_alloc = machine_->clock().Now();
      if (machine_->lifecycle() != nullptr) {
        machine_->lifecycle()->OnAlloc(fb->id, originator.id(), bytes,
                                       /*cache_hit=*/true);
      }
      *out = fb;
      return Status::kOk;
    }
  }

  // Carving grows the domain's footprint: charge the quota (shrinking the
  // domain's own free lists first if that is what stands in the way).
  const Status quota_st = ChargeQuota(originator, pages);
  if (!Ok(quota_st)) {
    return quota_st;
  }

  // Carve a new fbuf out of the allocator's chunks.
  auto va = a.va.Allocate(pages);
  if (!va.has_value()) {
    const Status st = GrowAllocator(a, pages);
    if (!Ok(st)) {
      return st;
    }
    va = a.va.Allocate(pages);
    if (!va.has_value()) {
      return Status::kNoVirtualSpace;
    }
  }

  auto fb = std::make_unique<Fbuf>();
  fb->id = static_cast<FbufId>(fbufs_.size());
  fb->base = *va;
  fb->pages = pages;
  fb->bytes = bytes;
  fb->originator = originator.id();
  fb->path = cached ? path : kNoPath;
  fb->cached = cached;
  fb->is_volatile = want_volatile;
  fb->holders.push_back(originator.id());
  a.outstanding++;

  // Map read/write into the originator, eagerly materialized: the paper's
  // streamlined region path (no general-purpose allocation bookkeeping).
  const Status st = machine_->vm().MapAnonymous(originator, fb->base, pages, Prot::kReadWrite,
                                                /*eager=*/true, clear_pages,
                                                ChargeMode::kStreamlined);
  if (!Ok(st)) {
    a.va.Free(fb->base, pages);
    a.outstanding--;
    return st;
  }
  machine_->trace().Emit(TraceCategory::kFbuf, "alloc-carve", fb->id, fb->base);
  a.last_alloc = machine_->clock().Now();
  owned_pages_[originator.id()] += pages;
  if (machine_->lifecycle() != nullptr) {
    machine_->lifecycle()->OnAlloc(fb->id, originator.id(), bytes,
                                   /*cache_hit=*/false);
  }
  *out = fb.get();
  fbufs_.push_back(std::move(fb));
  return Status::kOk;
}

void FbufSystem::SetDomainQuota(DomainId d, std::uint64_t pages) {
  if (pages == 0) {
    quota_overrides_.erase(d);
  } else {
    quota_overrides_[d] = pages;
  }
}

std::uint64_t FbufSystem::DomainQuotaFor(DomainId d) const {
  const auto it = quota_overrides_.find(d);
  return it != quota_overrides_.end() ? it->second : config_.domain_page_quota;
}

std::uint64_t FbufSystem::DomainPagesInUse(DomainId d) const {
  const auto it = owned_pages_.find(d);
  return it != owned_pages_.end() ? it->second : 0;
}

Status FbufSystem::ChargeQuota(Domain& d, std::uint64_t pages) {
  const std::uint64_t quota = DomainQuotaFor(d.id());
  if (quota == 0) {
    return Status::kOk;
  }
  std::uint64_t in_use = DomainPagesInUse(d.id());
  if (in_use + pages <= quota) {
    return Status::kOk;
  }
  // The domain's own cached-but-idle fbufs count against it; give those back
  // before refusing the allocation.
  ShrinkDomainFreeLists(d.id(), in_use + pages - quota);
  in_use = DomainPagesInUse(d.id());
  return in_use + pages <= quota ? Status::kOk : Status::kQuotaExceeded;
}

std::uint64_t FbufSystem::ShrinkDomainFreeLists(DomainId d, std::uint64_t pages_needed) {
  std::uint64_t released = 0;
  for (auto& [key, a] : allocators_) {
    if (a.domain != d) {
      continue;
    }
    for (auto* lists : AllFreeListMaps(a)) {
      for (auto& [pages, list] : *lists) {
        // Coldest first: the front of each list is the least recently freed.
        while (!list.empty() && released < pages_needed) {
          const FbufId id = list.front();
          list.erase(list.begin());
          Fbuf* fb = fbufs_[id].get();
          if (fb->dead || !fb->free_listed) {
            continue;
          }
          fb->free_listed = false;
          released += fb->pages;
          DestroyFbuf(fb);
        }
        if (released >= pages_needed) {
          break;
        }
      }
      if (released >= pages_needed) {
        break;
      }
    }
    if (released >= pages_needed) {
      break;
    }
  }
  return released;
}

std::uint64_t FbufSystem::ShrinkIdlePaths(SimTime idle_ns) {
  const SimTime now = machine_->clock().Now();
  std::uint64_t released = 0;
  for (auto& [key, a] : allocators_) {
    if (!a.cached || a.defunct || now - a.last_alloc < idle_ns) {
      continue;
    }
    for (auto* lists : AllFreeListMaps(a)) {
      for (auto& [pages, list] : *lists) {
        while (!list.empty()) {
          const FbufId id = list.front();
          list.erase(list.begin());
          Fbuf* fb = fbufs_[id].get();
          if (fb->dead || !fb->free_listed) {
            continue;
          }
          fb->free_listed = false;
          released += fb->pages;
          DestroyFbuf(fb);
        }
      }
    }
    // Fully drained: give the chunks back to the region. The allocator stays
    // live (unlike a defunct one) — the path restarts cold, growing fresh
    // chunks on its next allocation.
    if (a.outstanding == 0 && !a.chunk_ranges.empty()) {
      for (const auto& [base, pages] : a.chunk_ranges) {
        region_va_.Free(base, pages);
      }
      a.chunk_ranges.clear();
      a.chunks = 0;
      a.va = AddressSpace(AddressSpace::Empty{});
    }
  }
  return released;
}

Status FbufSystem::EnsureMaterialized(Fbuf* fb) {
  Domain* orig = machine_->domain(fb->originator);
  assert(orig != nullptr);
  for (std::uint64_t i = 0; i < fb->pages; ++i) {
    const Vpn vpn = PageOf(fb->base) + i;
    VmEntry* oe = orig->FindEntry(vpn);
    assert(oe != nullptr);
    if (oe->frame != kInvalidFrame) {
      continue;
    }
    // The frame was reclaimed while the fbuf sat on its free list. A fresh
    // frame may carry another domain's old data, so it is always cleared.
    auto frame = machine_->pmem().Allocate(/*clear=*/true);
    if (!frame.has_value()) {
      return Status::kNoMemory;
    }
    oe->frame = *frame;
    orig->pmap().Set(vpn, *frame, oe->prot);
    oe->pmap_valid = true;
    machine_->clock().Advance(machine_->costs().pt_update_ns);
    // Receivers keep their (retained) mappings; their low-level entries are
    // refreshed lazily on next touch.
    for (DomainId rid : fb->mapped) {
      Domain* r = machine_->domain(rid);
      if (r == nullptr || !r->alive()) {
        continue;
      }
      VmEntry* re = r->FindEntry(vpn);
      if (re != nullptr) {
        machine_->pmem().Ref(*frame);
        re->frame = *frame;
        re->pmap_valid = false;
        r->pmap().Remove(vpn);
        r->tlb().InvalidatePage(vpn);
      }
    }
  }
  return Status::kOk;
}

Status FbufSystem::Transfer(Fbuf* fb, Domain& from, Domain& to, bool lazy) {
  if (fb == nullptr || fb->dead) {
    return Status::kInvalidArgument;
  }
  // Transfers into a terminated domain fail cleanly: the kernel would only
  // have to relinquish the reference again, and mapping work against torn-
  // down page tables is a use-after-free waiting to happen.
  if (!to.alive()) {
    return Status::kInvalidArgument;
  }
  if (!fb->IsHeldBy(from.id())) {
    return Status::kNotOwner;
  }
  LayerScope layer(machine_->attribution(), CostDomain::kFbuf);
  ActorScope actor(machine_->attribution(), from.id());
  PathScope pscope(machine_->attribution(), fb->path);
  machine_->stats().fbuf_transfers++;
  TraceSpan span(machine_->trace(), TraceCategory::kFbuf, "fbuf-transfer", fb->id,
                 (static_cast<std::uint64_t>(from.id()) << 32) | to.id());

  // Eager immutability for non-volatile fbufs leaving an untrusted
  // originator.
  Domain* orig = machine_->domain(fb->originator);
  if (!fb->is_volatile && !fb->secured && orig != nullptr && !orig->trusted()) {
    const Status st = SecureInternal(fb);
    if (!Ok(st)) {
      return st;
    }
  }

  fb->holders.push_back(to.id());
  if (machine_->lifecycle() != nullptr) {
    machine_->lifecycle()->Hop(
        fb->id, HopKind::kTransfer, to.id(), "ipc",
        (static_cast<std::uint64_t>(from.id()) << 32) | to.id());
  }
  if (lazy) {
    // Reference only; pages map on first touch via the region fault path.
    return Status::kOk;
  }
  if (to.id() != fb->originator && !fb->IsMappedIn(to.id())) {
    // Same virtual addresses in every domain: only the receiver's page-table
    // entries are created; no address allocation, no data movement.
    Domain* od = machine_->domain(fb->originator);
    for (std::uint64_t i = 0; i < fb->pages; ++i) {
      const Vpn vpn = PageOf(fb->base) + i;
      const VmEntry* oe = od != nullptr ? od->FindEntry(vpn) : nullptr;
      if (oe == nullptr || oe->frame == kInvalidFrame) {
        continue;  // untouched page; receiver read would see absent data
      }
      const Status st = machine_->vm().MapFrame(to, vpn, oe->frame, Prot::kRead,
                                                ChargeMode::kStreamlined);
      if (!Ok(st)) {
        return st;
      }
    }
    fb->mapped.push_back(to.id());
    if (machine_->lifecycle() != nullptr) {
      machine_->lifecycle()->Hop(fb->id, HopKind::kMaterialize, to.id(), "fbuf",
                                 fb->pages);
    }
  }
  return Status::kOk;
}

Status FbufSystem::SecureInternal(Fbuf* fb) {
  machine_->trace().Emit(TraceCategory::kFbuf, "secure", fb->id, fb->base);
  Domain* orig = machine_->domain(fb->originator);
  if (orig == nullptr || !orig->alive()) {
    fb->secured = true;
    return Status::kOk;
  }
  const Status st = machine_->vm().Protect(*orig, fb->base, fb->pages, Prot::kRead,
                                           /*trap_inclusive=*/true);
  if (!Ok(st)) {
    return st;
  }
  fb->secured = true;
  return Status::kOk;
}

Status FbufSystem::Secure(Fbuf* fb, Domain& requester) {
  if (fb == nullptr || fb->dead) {
    return Status::kInvalidArgument;
  }
  if (!fb->IsHeldBy(requester.id())) {
    return Status::kNotOwner;
  }
  Domain* orig = machine_->domain(fb->originator);
  if (fb->secured || (orig != nullptr && orig->trusted())) {
    return Status::kOk;  // no-op: already immutable or trusted originator
  }
  LayerScope layer(machine_->attribution(), CostDomain::kFbuf);
  ActorScope actor(machine_->attribution(), requester.id());
  PathScope pscope(machine_->attribution(), fb->path);
  return SecureInternal(fb);
}

Status FbufSystem::AddRef(Fbuf* fb, Domain& d) {
  if (fb == nullptr || fb->dead || fb->free_listed) {
    return Status::kInvalidArgument;
  }
  if (!fb->IsHeldBy(d.id())) {
    return Status::kNotOwner;
  }
  fb->holders.push_back(d.id());
  return Status::kOk;
}

void FbufSystem::RestoreOriginatorWrite(Fbuf* fb) {
  if (!fb->secured) {
    return;
  }
  Domain* orig = machine_->domain(fb->originator);
  if (orig != nullptr && orig->alive()) {
    machine_->vm().Protect(*orig, fb->base, fb->pages, Prot::kReadWrite,
                           /*trap_inclusive=*/true);
  }
  fb->secured = false;
}

Status FbufSystem::Free(Fbuf* fb, Domain& d) {
  if (fb == nullptr || fb->dead || fb->free_listed) {
    return Status::kInvalidArgument;
  }
  LayerScope layer(machine_->attribution(), CostDomain::kFbuf);
  ActorScope actor(machine_->attribution(), d.id());
  PathScope pscope(machine_->attribution(), fb->path);
  auto it = std::find(fb->holders.begin(), fb->holders.end(), d.id());
  if (it == fb->holders.end()) {
    return Status::kNotOwner;
  }
  fb->holders.erase(it);

  // An uncached fbuf's receiver unmaps its pages as it releases them (the
  // mapping has no future value); cached mappings are retained for reuse.
  if (!fb->cached && d.id() != fb->originator && !fb->IsHeldBy(d.id())) {
    auto mit = std::find(fb->mapped.begin(), fb->mapped.end(), d.id());
    if (mit != fb->mapped.end()) {
      machine_->vm().Unmap(d, fb->base, fb->pages, ChargeMode::kStreamlined);
      fb->mapped.erase(mit);
    }
  }

  if (!fb->holders.empty()) {
    return Status::kOk;
  }

  Domain* orig = machine_->domain(fb->originator);
  if (d.id() == fb->originator || orig == nullptr || !orig->alive()) {
    // Local release, or the owner is gone (the kernel reclaims on its
    // behalf): no cross-domain notification needed.
    ReturnToOwner(fb);
    return Status::kOk;
  }

  // Final release by a receiver: the notice travels by ring when a transport
  // accepts it, otherwise it queues for piggybacking on RPC traffic.
  if (notice_transport_ != nullptr &&
      notice_transport_->SubmitDeallocNotice(d.id(), fb->originator, fb->id)) {
    return Status::kOk;
  }
  auto& pending = pending_notices_[{d.id(), fb->originator}];
  pending.push_back(fb->id);
  if (pending.size() >= config_.notice_threshold) {
    ScheduleFlush(d.id(), fb->originator);
  }
  return Status::kOk;
}

void FbufSystem::ScheduleFlush(DomainId holder, DomainId owner) {
  if (loop_ == nullptr) {
    FlushNotices(holder, owner);
    return;
  }
  if (!flush_scheduled_.insert({holder, owner}).second) {
    return;  // a flush event for this pair is already in flight
  }
  const SimTime key = std::max(loop_->Now(), machine_->clock().Now());
  loop_->Schedule(key, "fbuf-dealloc-flush", [this, holder, owner] {
    flush_scheduled_.erase({holder, owner});
    FlushNotices(holder, owner);
  });
}

void FbufSystem::FlushNotices(DomainId holder, DomainId owner) {
  auto it = pending_notices_.find({holder, owner});
  if (it == pending_notices_.end() || it->second.empty()) {
    return;
  }
  LayerScope layer(machine_->attribution(), CostDomain::kFbuf);
  ActorScope actor(machine_->attribution(), holder);
  // An explicit message: pay a crossing.
  Domain* h = machine_->domain(holder);
  Domain* o = machine_->domain(owner);
  if (rpc_ != nullptr && h != nullptr && o != nullptr && h->alive() && o->alive()) {
    rpc_->ChargeCrossing(*h, *o);
  }
  machine_->stats().dealloc_messages++;
  DeliverNotices(holder, owner);
}

void FbufSystem::DeliverNotices(DomainId from, DomainId to) {
  auto it = pending_notices_.find({from, to});
  if (it == pending_notices_.end() || it->second.empty()) {
    return;
  }
  std::vector<FbufId> ids;
  ids.swap(it->second);
  machine_->trace().Emit(TraceCategory::kIpc, "dealloc-notices", from, ids.size());
  machine_->stats().dealloc_notices += ids.size();
  for (FbufId id : ids) {
    Fbuf* fb = fbufs_[id].get();
    if (!fb->dead) {
      if (machine_->lifecycle() != nullptr) {
        machine_->lifecycle()->Hop(fb->id, HopKind::kNotice, to, "ipc", from);
      }
      ReturnToOwner(fb);
    }
  }
}

void FbufSystem::ApplyRingNotice(DomainId holder, DomainId owner, FbufId id) {
  if (id >= fbufs_.size()) {
    return;
  }
  Fbuf* fb = fbufs_[id].get();
  // The notice may have been overtaken: domain termination already drained
  // it, or the fbuf died with its path. Never return a held or listed fbuf.
  if (fb == nullptr || fb->dead || fb->free_listed || !fb->holders.empty()) {
    return;
  }
  machine_->trace().Emit(TraceCategory::kIpc, "dealloc-notices", holder, 1);
  machine_->stats().dealloc_notices++;
  LayerScope layer(machine_->attribution(), CostDomain::kFbuf);
  ActorScope actor(machine_->attribution(), owner);
  PathScope pscope(machine_->attribution(), fb->path);
  if (machine_->lifecycle() != nullptr) {
    machine_->lifecycle()->Hop(fb->id, HopKind::kNotice, owner, "ring", holder);
  }
  ReturnToOwner(fb);
}

void FbufSystem::ReturnToOwner(Fbuf* fb) {
  assert(fb->holders.empty());
  machine_->trace().Emit(TraceCategory::kFbuf, "return-to-owner", fb->id, fb->base);
  if (machine_->lifecycle() != nullptr) {
    // A drain into a terminated originator is the tail of the §3.3 sweep
    // (survivors held references past the axe): the journey was cut short
    // by the termination, so it ends in an abort hop, not a normal free.
    Domain* owner = machine_->domain(fb->originator);
    if (owner == nullptr || !owner->alive()) {
      machine_->lifecycle()->OnAbort(fb->id, fb->originator, "fbuf");
    } else {
      machine_->lifecycle()->OnFree(fb->id, fb->originator, "fbuf");
    }
  }
  // A freed fbuf's contents are dead: any paged-out copies go with them.
  DropSwap(fb->id);
  RestoreOriginatorWrite(fb);
  Allocator& a = GetAllocator(fb->originator, fb->path, fb->cached);
  const IoPath* path = fb->path == kNoPath ? nullptr : paths_.Get(fb->path);
  const bool path_alive = fb->path == kNoPath || (path != nullptr && path->alive);
  if (fb->cached && !a.defunct && path_alive) {
    fb->free_listed = true;
    if (machine_->num_cpus() > 1) {
      // The freeing lane keeps the fbuf in its own cache (it is warm there).
      CpuFreeLists(a)[fb->pages].push_back(fb->id);
    } else {
      a.free_lists[fb->pages].push_back(fb->id);
    }
    return;
  }
  DestroyFbuf(fb);
}

void FbufSystem::DestroyFbuf(Fbuf* fb) {
  assert(!fb->dead);
  // Remove receiver mappings, then the originator's.
  for (DomainId rid : fb->mapped) {
    Domain* r = machine_->domain(rid);
    if (r != nullptr && r->alive()) {
      machine_->vm().Unmap(*r, fb->base, fb->pages, ChargeMode::kStreamlined);
    }
  }
  fb->mapped.clear();
  Domain* orig = machine_->domain(fb->originator);
  if (orig != nullptr && orig->alive()) {
    machine_->vm().Unmap(*orig, fb->base, fb->pages, ChargeMode::kStreamlined);
  }
  fb->dead = true;
  fb->free_listed = false;
  DropSwap(fb->id);
  auto owned = owned_pages_.find(fb->originator);
  if (owned != owned_pages_.end()) {
    owned->second -= fb->pages <= owned->second ? fb->pages : owned->second;
  }
  Allocator& a = GetAllocator(fb->originator, fb->path, fb->cached);
  if (!a.defunct) {
    a.va.Free(fb->base, fb->pages);
  }
  assert(a.outstanding > 0);
  a.outstanding--;
  ReleaseAllocatorIfDrained(a);
}

void FbufSystem::ReleaseAllocatorIfDrained(Allocator& a) {
  if (!a.defunct || a.outstanding != 0) {
    return;
  }
  for (const auto& [base, pages] : a.chunk_ranges) {
    region_va_.Free(base, pages);
  }
  a.chunk_ranges.clear();
  a.chunks = 0;
}

std::uint64_t FbufSystem::ReclaimFreeMemory(std::uint64_t max_pages) {
  std::uint64_t reclaimed = 0;
  // Coldest first: free lists push_back on release, so the front of each
  // list is the least recently freed fbuf.
  std::vector<Fbuf*> victims;
  for (auto& [key, a] : allocators_) {
    for (auto* lists : AllFreeListMaps(a)) {
      for (auto& [pages, list] : *lists) {
        for (FbufId id : list) {
          victims.push_back(fbufs_[id].get());
        }
      }
    }
  }
  // Uncached fbufs are destroyed at free time and never free-listed, so the
  // victim list covers everything reclaimable.
  for (Fbuf* fb : victims) {
    if (reclaimed >= max_pages) {
      break;
    }
    if (!fb->free_listed || fb->dead) {
      continue;
    }
    Domain* orig = machine_->domain(fb->originator);
    if (orig == nullptr || !orig->alive()) {
      continue;
    }
    for (std::uint64_t i = 0; i < fb->pages; ++i) {
      const Vpn vpn = PageOf(fb->base) + i;
      VmEntry* oe = orig->FindEntry(vpn);
      if (oe == nullptr || oe->frame == kInvalidFrame) {
        continue;
      }
      // Contents are discarded, never paged out (§3.3). Background daemon
      // work: operation counts but no foreground time charged.
      for (DomainId rid : fb->mapped) {
        Domain* r = machine_->domain(rid);
        if (r == nullptr || !r->alive()) {
          continue;
        }
        VmEntry* re = r->FindEntry(vpn);
        if (re != nullptr && re->frame != kInvalidFrame) {
          machine_->pmem().Unref(re->frame);
          re->frame = kInvalidFrame;
          re->pmap_valid = false;
          r->pmap().Remove(vpn);
          r->tlb().InvalidatePage(vpn);
        }
      }
      machine_->pmem().Unref(oe->frame);
      oe->frame = kInvalidFrame;
      oe->pmap_valid = false;
      orig->pmap().Remove(vpn);
      orig->tlb().InvalidatePage(vpn);
      reclaimed++;
    }
  }
  return reclaimed;
}

void FbufSystem::DestroyPath(PathId path) {
  paths_.MarkDead(path);
  for (auto& fbp : fbufs_) {
    Fbuf* fb = fbp.get();
    if (fb->path != path || fb->dead) {
      continue;
    }
    if (fb->free_listed) {
      fb->free_listed = false;
      DestroyFbuf(fb);
    }
    // In-flight fbufs are destroyed when their last reference drains
    // (ReturnToOwner sees the dead path).
  }
  // The path's allocators can never serve again (allocation falls back to
  // the default allocator): mark them defunct so their chunks return to the
  // region once the last fbuf drains.
  for (auto& [key, a] : allocators_) {
    if (a.path == path) {
      a.free_lists.clear();
      a.cpu_free_lists.clear();
      a.defunct = true;
      ReleaseAllocatorIfDrained(a);
    }
  }
}

void FbufSystem::OnDomainTerminated(Domain& d) {
  // 1. The domain's endpoints die with it: destroy every path it is on.
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const IoPath* p = paths_.Get(static_cast<PathId>(i));
    if (p != nullptr && p->Contains(d.id())) {
      DestroyPath(static_cast<PathId>(i));
    }
  }
  // 2. Its allocators are defunct: the kernel retains their chunks until all
  //    external references drain, then reclaims the region space.
  for (auto& [key, a] : allocators_) {
    if (a.domain == d.id()) {
      a.defunct = true;
      // Free-listed fbufs of defunct allocators are destroyed now.
      for (auto* lists : AllFreeListMaps(a)) {
        for (auto& [pages, list] : *lists) {
          for (FbufId id : list) {
            Fbuf* fb = fbufs_[id].get();
            if (!fb->dead && fb->free_listed) {
              fb->free_listed = false;
              DestroyFbuf(fb);
            }
          }
        }
      }
      a.free_lists.clear();
      a.cpu_free_lists.clear();
      ReleaseAllocatorIfDrained(a);
    }
  }
  // 3. References the dying domain holds on other domains' fbufs are
  //    relinquished by the kernel on its behalf (abnormal termination may
  //    have skipped the frees).
  for (auto& fbp : fbufs_) {
    Fbuf* fb = fbp.get();
    if (fb->dead) {
      continue;
    }
    bool released = false;
    for (auto it = fb->holders.begin(); it != fb->holders.end();) {
      if (*it == d.id()) {
        it = fb->holders.erase(it);
        released = true;
      } else {
        ++it;
      }
    }
    auto mit = std::find(fb->mapped.begin(), fb->mapped.end(), d.id());
    if (mit != fb->mapped.end()) {
      fb->mapped.erase(mit);
    }
    if (released && fb->holders.empty()) {
      // The kernel released the dying domain's last hold: the journey ends in
      // an abort hop, not a normal free (Reconcile exempts aborted journeys
      // from pin balance — their releases can never be recorded).
      if (machine_->lifecycle() != nullptr) {
        machine_->lifecycle()->OnAbort(fb->id, d.id(), "fbuf");
      }
      ReturnToOwner(fb);
    }
  }
  // 4. Settle pending notices involving the dead domain: deliver those it
  //    owed to (live) owners, and drain those owed to it — a notice-parked
  //    fbuf has zero holders and is not free-listed, so nothing else will
  //    ever return it; dropping the list would strand its pages forever.
  //    The drain destroys them (the dead owner's allocators are defunct)
  //    and the provenance record shows the abort.
  for (auto& [pair, list] : pending_notices_) {
    if ((pair.first == d.id() || pair.second == d.id()) && !list.empty()) {
      std::vector<FbufId> ids;
      ids.swap(list);
      for (FbufId id : ids) {
        Fbuf* fb = fbufs_[id].get();
        if (!fb->dead && fb->holders.empty()) {
          // MarkDead runs after these hooks, so ReturnToOwner would still
          // see the dying owner as alive — record the abort explicitly.
          if (pair.second == d.id() && machine_->lifecycle() != nullptr) {
            machine_->lifecycle()->OnAbort(fb->id, d.id(), "fbuf");
          }
          ReturnToOwner(fb);
        }
      }
    }
  }
}

std::uint64_t FbufSystem::PageOutFbuf(Fbuf* fb, std::uint64_t max_pages) {
  if (fb == nullptr || fb->dead || fb->free_listed) {
    return 0;  // free-listed memory is discarded, not paged (§3.3)
  }
  Domain* orig = machine_->domain(fb->originator);
  if (orig == nullptr || !orig->alive()) {
    return 0;
  }
  std::uint64_t swapped = 0;
  for (std::uint64_t i = 0; i < fb->pages && swapped < max_pages; ++i) {
    const Vpn vpn = PageOf(fb->base) + i;
    VmEntry* oe = orig->FindEntry(vpn);
    if (oe == nullptr || oe->frame == kInvalidFrame) {
      continue;
    }
    // Write the contents to the backing store (asynchronous write-behind:
    // no foreground time), then break every mapping of the frame.
    const std::uint8_t* data = machine_->pmem().Data(oe->frame);
    swap_[{fb->id, i}].assign(data, data + kPageSize);
    for (DomainId rid : fb->mapped) {
      Domain* r = machine_->domain(rid);
      if (r == nullptr || !r->alive()) {
        continue;
      }
      VmEntry* re = r->FindEntry(vpn);
      if (re != nullptr && re->frame != kInvalidFrame) {
        machine_->pmem().Unref(re->frame);
        re->frame = kInvalidFrame;
        re->pmap_valid = false;
        r->pmap().Remove(vpn);
        r->tlb().InvalidatePage(vpn);
      }
    }
    machine_->pmem().Unref(oe->frame);
    oe->frame = kInvalidFrame;
    oe->pmap_valid = false;
    orig->pmap().Remove(vpn);
    orig->tlb().InvalidatePage(vpn);
    machine_->stats().pages_swapped_out++;
    swapped++;
  }
  if (swapped > 0 && machine_->lifecycle() != nullptr) {
    machine_->lifecycle()->Hop(fb->id, HopKind::kPageOut, fb->originator,
                               "pressure", swapped);
  }
  return swapped;
}

std::uint64_t FbufSystem::PageOutInUse(std::uint64_t max_pages) {
  std::uint64_t swapped = 0;
  for (auto& fbp : fbufs_) {
    if (swapped >= max_pages) {
      break;
    }
    swapped += PageOutFbuf(fbp.get(), max_pages - swapped);
  }
  return swapped;
}

Status FbufSystem::PageIn(Domain& d, Vpn vpn, Fbuf* fb) {
  Machine& m = *machine_;
  m.trace().Emit(TraceCategory::kFbuf, "page-in", fb->id, AddrOf(vpn));
  m.clock().Advance(m.costs().page_fault_ns);
  m.stats().page_faults++;
  if (m.lifecycle() != nullptr) {
    m.lifecycle()->Hop(fb->id, HopKind::kPageIn, d.id(), "pressure",
                       AddrOf(vpn));
  }

  const std::uint64_t index = vpn - PageOf(fb->base);
  Domain* orig = m.domain(fb->originator);
  VmEntry* oe = orig != nullptr && orig->alive() ? orig->FindEntry(vpn) : nullptr;

  // Locate or rebuild the frame.
  FrameId frame = kInvalidFrame;
  if (oe != nullptr && oe->frame != kInvalidFrame) {
    frame = oe->frame;  // another holder faulted it in already
  } else {
    auto it = swap_.find({fb->id, index});
    const bool from_swap = it != swap_.end();
    auto fresh = m.pmem().Allocate(/*clear=*/!from_swap);
    if (!fresh.has_value()) {
      return Status::kNoMemory;
    }
    frame = *fresh;
    if (from_swap) {
      std::memcpy(m.pmem().Data(frame), it->second.data(), kPageSize);
      swap_.erase(it);
      m.clock().Advance(m.costs().page_in_ns);
      m.stats().pages_swapped_in++;
    }
    if (oe != nullptr) {
      oe->frame = frame;
      oe->pmap_valid = false;
    } else {
      // Originator gone: the faulting domain's entry owns the reference.
      VmEntry* de = d.FindEntry(vpn);
      if (de == nullptr) {
        return Status::kNotMapped;
      }
      de->frame = frame;
    }
    // Refresh the other mappers' machine-independent entries lazily.
    for (DomainId rid : fb->mapped) {
      Domain* r = m.domain(rid);
      if (r == nullptr || !r->alive()) {
        continue;
      }
      VmEntry* re = r->FindEntry(vpn);
      if (re != nullptr && re->frame == kInvalidFrame) {
        m.pmem().Ref(frame);
        re->frame = frame;
        re->pmap_valid = false;
      }
    }
  }

  // Install the low-level mapping for the faulting domain.
  VmEntry* de = d.FindEntry(vpn);
  if (de == nullptr) {
    return Status::kNotMapped;
  }
  if (de->frame == kInvalidFrame) {
    // (Covers the case where d is neither originator nor in mapped; the
    //  loops above normally already set this.)
    m.pmem().Ref(frame);
    de->frame = frame;
  }
  d.pmap().Set(vpn, de->frame, de->prot);
  de->pmap_valid = true;
  m.clock().Advance(m.costs().pt_update_ns);
  return Status::kOk;
}

void FbufSystem::DropSwap(FbufId id) {
  auto it = swap_.lower_bound({id, 0});
  while (it != swap_.end() && it->first.first == id) {
    it = swap_.erase(it);
  }
}

Status FbufSystem::RegionFault(Domain& d, Vpn vpn, Access access) {
  LayerScope layer(machine_->attribution(), CostDomain::kFbuf);
  ActorScope actor(machine_->attribution(), d.id());
  VmEntry* e = d.FindEntry(vpn);
  if (e != nullptr) {
    if (!Allows(e->prot, access)) {
      // Mapped but insufficient rights: receiver writing an immutable fbuf,
      // or a secured originator writing — a genuine protection violation.
      machine_->stats().prot_faults++;
      return Status::kProtection;
    }
    // Permitted access to a page without a frame: page it (back) in.
    Fbuf* fb = FindByAddr(AddrOf(vpn));
    if (fb != nullptr && !fb->dead) {
      return PageIn(d, vpn, fb);
    }
    // No live fbuf behind the entry (e.g. a stale absent-data page whose
    // frame was never dropped — should not happen): fail closed.
    machine_->stats().prot_faults++;
    return Status::kNotMapped;
  }
  if (access == Access::kWrite || !config_.absent_leaf_reads) {
    machine_->stats().prot_faults++;
    return access == Access::kWrite ? Status::kProtection : Status::kNotMapped;
  }
  // On-demand mapping: a domain holding a reference (lazy transfer) gets the
  // real frame, read-only, one page at a time.
  Fbuf* fb = FindByAddr(AddrOf(vpn));
  if (fb != nullptr && fb->IsHeldBy(d.id())) {
    Domain* orig = machine_->domain(fb->originator);
    const VmEntry* oe = orig != nullptr ? orig->FindEntry(vpn) : nullptr;
    if (oe != nullptr && oe->frame != kInvalidFrame) {
      machine_->clock().Advance(machine_->costs().page_fault_ns);
      machine_->stats().page_faults++;
      machine_->pmem().Ref(oe->frame);
      VmEntry e;
      e.prot = Prot::kRead;
      e.frame = oe->frame;
      e.zero_fill = false;
      e.pmap_valid = true;
      d.InsertEntry(vpn, e);
      d.pmap().Set(vpn, oe->frame, Prot::kRead);
      machine_->clock().Advance(machine_->costs().pt_update_ns);
      if (!fb->IsMappedIn(d.id())) {
        fb->mapped.push_back(d.id());
      }
      return Status::kOk;
    }
  }
  // §3.2.4: a read of a region page the domain has no permission for maps an
  // all-zero page (the encoding of a leaf node with no data) and completes.
  machine_->trace().Emit(TraceCategory::kFbuf, "absent-leaf", d.id(), AddrOf(vpn));
  machine_->clock().Advance(machine_->costs().page_fault_ns);
  machine_->stats().page_faults++;
  auto frame = machine_->pmem().Allocate(/*clear=*/true);
  if (!frame.has_value()) {
    return Status::kNoMemory;
  }
  VmEntry leaf;
  leaf.prot = Prot::kRead;
  leaf.frame = *frame;
  leaf.zero_fill = false;
  leaf.pmap_valid = true;
  d.InsertEntry(vpn, leaf);
  d.pmap().Set(vpn, *frame, Prot::kRead);
  machine_->clock().Advance(machine_->costs().pt_update_ns);
  return Status::kOk;
}

Fbuf* FbufSystem::Get(FbufId id) {
  return id < fbufs_.size() ? fbufs_[id].get() : nullptr;
}

Fbuf* FbufSystem::FindByAddr(VirtAddr addr) {
  if (!InFbufRegion(addr)) {
    return nullptr;
  }
  for (auto& fbp : fbufs_) {
    Fbuf* fb = fbp.get();
    if (!fb->dead && addr >= fb->base && addr < fb->end()) {
      return fb;
    }
  }
  return nullptr;
}

std::size_t FbufSystem::PendingNotices(DomainId holder, DomainId owner) const {
  auto it = pending_notices_.find({holder, owner});
  return it == pending_notices_.end() ? 0 : it->second.size();
}

std::uint32_t FbufSystem::AllocatorChunks(DomainId domain, PathId path) const {
  auto it = allocators_.find(AllocatorKey(domain, path));
  return it == allocators_.end() ? 0 : it->second.chunks;
}

FbufSystem::AuditCounts FbufSystem::Audit() const {
  AuditCounts c;
  // Interval set of current (non-dead) fbufs, for the dangling-mapping scan.
  std::map<VirtAddr, VirtAddr> extents;  // base -> end
  for (const auto& fbp : fbufs_) {
    const Fbuf* fb = fbp.get();
    if (fb->dead) {
      c.dead_fbufs++;
      continue;
    }
    extents[fb->base] = fb->end();
    Domain* orig = machine_->domain(fb->originator);
    const bool orphaned = orig == nullptr || !orig->alive();
    if (fb->free_listed) {
      c.free_listed_fbufs++;
      if (orphaned) {
        // §3.3: a dead originator's fbufs drain to destruction; caching one
        // for reuse would cache memory nobody can ever hand out again.
        c.free_list_errors++;
      }
    } else {
      c.live_fbufs++;
      if (orphaned) {
        c.orphaned_live_fbufs++;
      }
    }
  }
  for (const auto& [key, a] : allocators_) {
    for (const auto* lists : AllFreeListMaps(a)) {
      for (const auto& [pages, list] : *lists) {
        for (FbufId id : list) {
          c.free_list_entries++;
          const Fbuf* fb = fbufs_[id].get();
          if (fb->dead || !fb->free_listed || fb->pages != pages || a.defunct) {
            c.free_list_errors++;
          }
        }
      }
    }
  }
  for (std::size_t i = 0; i < machine_->domain_count(); ++i) {
    Domain* dom = machine_->domain(static_cast<DomainId>(i));
    if (dom == nullptr || !dom->alive()) {
      continue;
    }
    for (const auto& [vpn, entry] : dom->entries()) {
      const VirtAddr addr = AddrOf(vpn);
      if (!InFbufRegion(addr) || entry.zero_fill) {
        continue;  // private mapping, or an absent-data leaf (§3.2.4)
      }
      auto it = extents.upper_bound(addr);
      if (it == extents.begin() || std::prev(it)->second <= addr) {
        c.dangling_mappings++;
      }
    }
  }
  return c;
}

std::uint64_t FbufSystem::LiveFbufCount() const {
  std::uint64_t n = 0;
  for (const auto& fbp : fbufs_) {
    if (!fbp->dead && !fbp->free_listed) {
      n++;
    }
  }
  return n;
}

std::uint64_t FbufSystem::FreeListedFbufCount() const {
  std::uint64_t n = 0;
  for (const auto& fbp : fbufs_) {
    if (!fbp->dead && fbp->free_listed) {
      n++;
    }
  }
  return n;
}

std::uint64_t FbufSystem::PagesOwnedBy(DomainId d) const {
  std::uint64_t pages = 0;
  for (const auto& fbp : fbufs_) {
    if (!fbp->dead && fbp->originator == d) {
      pages += fbp->pages;
    }
  }
  return pages;
}

std::size_t FbufSystem::FreeListSize(DomainId domain, PathId path) const {
  const auto it = allocators_.find(AllocatorKey(domain, path));
  if (it == allocators_.end()) {
    return 0;
  }
  std::size_t n = 0;
  for (const auto* lists : AllFreeListMaps(it->second)) {
    for (const auto& [pages, list] : *lists) {
      n += list.size();
    }
  }
  return n;
}

std::string FbufSystem::DebugDump() const {
  std::ostringstream os;
  os << "fbuf region: " << RegionFreePages() << "/" << kFbufRegionPages << " pages free, "
     << swap_.size() << " pages in swap\n";
  for (const auto& [key, a] : allocators_) {
    std::size_t free_count = 0;
    for (const auto* lists : AllFreeListMaps(a)) {
      for (const auto& [pages, list] : *lists) {
        free_count += list.size();
      }
    }
    os << "  allocator dom=" << a.domain << " path=";
    if (a.path == kNoPath) {
      os << "default";
    } else {
      os << a.path;
    }
    os << (a.cached ? " cached" : " uncached") << (a.defunct ? " DEFUNCT" : "")
       << " chunks=" << a.chunks << " outstanding=" << a.outstanding
       << " free-listed=" << free_count << "\n";
  }
  std::size_t live = 0, listed = 0, dead = 0;
  for (const auto& fbp : fbufs_) {
    if (fbp->dead) {
      dead++;
    } else if (fbp->free_listed) {
      listed++;
    } else {
      live++;
      os << "  fbuf " << fbp->id << " @0x" << std::hex << fbp->base << std::dec << " "
         << fbp->pages << "p orig=" << fbp->originator
         << (fbp->is_volatile ? " volatile" : " secured-mode")
         << (fbp->secured ? " SECURED" : "") << " holders=" << fbp->holders.size()
         << " mapped-in=" << fbp->mapped.size() << "\n";
    }
  }
  os << "  totals: " << live << " in flight, " << listed << " free-listed, " << dead
     << " destroyed\n";
  return os.str();
}

}  // namespace fbufs
