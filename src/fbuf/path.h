// I/O data paths: the ordered sequence of protection domains a buffer
// visits, identified at allocation time via the communication endpoint.
#ifndef SRC_FBUF_PATH_H_
#define SRC_FBUF_PATH_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/fbuf/fbuf.h"
#include "src/vm/types.h"

namespace fbufs {

struct IoPath {
  PathId id = kNoPath;
  // Originator first, final consumer last.
  std::vector<DomainId> domains;
  bool alive = true;

  DomainId originator() const { return domains.front(); }

  bool Contains(DomainId d) const {
    for (DomainId x : domains) {
      if (x == d) {
        return true;
      }
    }
    return false;
  }
};

class PathRegistry {
 public:
  // An optional admission check consulted before any registration. The
  // pressure manager installs one that refuses (kBackpressure) while any
  // path on the host is degraded: a host shedding memory pressure should
  // not take on new I/O paths, whose allocators would immediately deepen
  // the shortage.
  using AdmissionGate = std::function<Status()>;
  void SetAdmissionGate(AdmissionGate gate) { gate_ = std::move(gate); }
  void ClearAdmissionGate() { gate_ = nullptr; }

  // Registers a data path. |domains| must be non-empty; the first entry is
  // the originator. Refuses (without consuming an id) when the admission
  // gate objects.
  Status Register(std::vector<DomainId> domains, PathId* out) {
    if (gate_ != nullptr) {
      const Status st = gate_();
      if (!Ok(st)) {
        refused_++;
        *out = kNoPath;
        return st;
      }
    }
    const PathId id = static_cast<PathId>(paths_.size());
    paths_.push_back(IoPath{id, std::move(domains), true});
    *out = id;
    return Status::kOk;
  }

  // Legacy convenience: kNoPath signals refusal (callers allocate from the
  // default, uncached allocator — correct, just not path-cached).
  PathId Register(std::vector<DomainId> domains) {
    PathId id = kNoPath;
    Register(std::move(domains), &id);
    return id;
  }

  std::uint64_t refused() const { return refused_; }

  const IoPath* Get(PathId id) const {
    if (id >= paths_.size() || !paths_[id].alive) {
      return nullptr;
    }
    return &paths_[id];
  }

  // Marks the path dead (communication endpoint destroyed). The fbuf system
  // reacts by deallocating the path's buffers.
  void MarkDead(PathId id) {
    if (id < paths_.size()) {
      paths_[id].alive = false;
    }
  }

  std::size_t size() const { return paths_.size(); }

 private:
  std::vector<IoPath> paths_;
  AdmissionGate gate_;
  std::uint64_t refused_ = 0;
};

}  // namespace fbufs

#endif  // SRC_FBUF_PATH_H_
