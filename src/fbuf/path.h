// I/O data paths: the ordered sequence of protection domains a buffer
// visits, identified at allocation time via the communication endpoint.
#ifndef SRC_FBUF_PATH_H_
#define SRC_FBUF_PATH_H_

#include <cstdint>
#include <vector>

#include "src/fbuf/fbuf.h"
#include "src/vm/types.h"

namespace fbufs {

struct IoPath {
  PathId id = kNoPath;
  // Originator first, final consumer last.
  std::vector<DomainId> domains;
  bool alive = true;

  DomainId originator() const { return domains.front(); }

  bool Contains(DomainId d) const {
    for (DomainId x : domains) {
      if (x == d) {
        return true;
      }
    }
    return false;
  }
};

class PathRegistry {
 public:
  // Registers a data path. |domains| must be non-empty; the first entry is
  // the originator.
  PathId Register(std::vector<DomainId> domains) {
    const PathId id = static_cast<PathId>(paths_.size());
    paths_.push_back(IoPath{id, std::move(domains), true});
    return id;
  }

  const IoPath* Get(PathId id) const {
    if (id >= paths_.size() || !paths_[id].alive) {
      return nullptr;
    }
    return &paths_[id];
  }

  // Marks the path dead (communication endpoint destroyed). The fbuf system
  // reacts by deallocating the path's buffers.
  void MarkDead(PathId id) {
    if (id < paths_.size()) {
      paths_[id].alive = false;
    }
  }

  std::size_t size() const { return paths_.size(); }

 private:
  std::vector<IoPath> paths_;
};

}  // namespace fbufs

#endif  // SRC_FBUF_PATH_H_
