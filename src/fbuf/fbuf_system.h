// FbufSystem: the fbuf allocation and cross-domain transfer facility (§3).
//
// Implements the paper's full design:
//   * a globally shared fbuf region, identical virtual addresses in every
//     domain (restricted dynamic read sharing, §3.2.1);
//   * a two-level allocation scheme — the kernel hands fixed-size chunks of
//     the region to per-domain, per-data-path allocators, which satisfy
//     allocations locally (§3.3);
//   * fbuf caching: on final release, write permission returns to the
//     originator and the fbuf goes on the path allocator's LIFO free list
//     with all receiver mappings retained (§3.2.2);
//   * volatile fbufs: immutability enforced lazily, on a receiver's explicit
//     Secure() request — a no-op for trusted originators (§3.2.4);
//   * pageable fbufs: a reclaim pass discards the physical memory of
//     free-listed fbufs without paging out (§3.3);
//   * deallocation notices piggybacked on RPC traffic, with explicit
//     messages only past a threshold (§3.3);
//   * chunk quotas against region exhaustion and domain-termination
//     cleanup rules (§3.3);
//   * "absent data" read fault semantics inside the region (§3.2.4).
#ifndef SRC_FBUF_FBUF_SYSTEM_H_
#define SRC_FBUF_FBUF_SYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/fbuf/fbuf.h"
#include "src/fbuf/path.h"
#include "src/ipc/rpc.h"
#include "src/sim/event_loop.h"
#include "src/vm/address_space.h"
#include "src/vm/machine.h"
#include "src/vm/types.h"

namespace fbufs {

struct FbufConfig {
  // Pages per chunk the kernel hands to user-level allocators (64 KB).
  std::uint64_t chunk_pages = 16;
  // Maximum chunks any single allocator may own (region-exhaustion guard).
  std::uint32_t chunk_quota = 1024;
  // Pending deallocation notices that force an explicit message.
  std::uint32_t notice_threshold = 64;
  // Security-clear pages when a new fbuf is carved (cached reuse never
  // clears — that saving is part of the caching optimization).
  bool clear_new_pages = true;
  // Reads of unmapped region pages map an all-zero "absent data" leaf
  // instead of faulting (§3.2.4). Disable to study the strict alternative.
  bool absent_leaf_reads = true;
  // Free lists are LIFO (§3.3: the front of the list is most likely to
  // still have physical memory). Set false for the FIFO ablation.
  bool lifo_free_lists = true;
  // Default per-domain cap on region pages a domain may own as originator
  // (live + free-listed fbufs). 0 = unlimited. A domain over its quota may
  // still reuse its own free-listed fbufs (usage does not grow), and a carve
  // attempt first shrinks the domain's own free lists before failing.
  // SetDomainQuota overrides per domain.
  std::uint64_t domain_page_quota = 0;
  // Per-path cap on pages a cached path allocator may hold in chunks.
  // 0 = unlimited. Enforced when the allocator grows.
  std::uint64_t path_page_quota = 0;
};

// Installed by the pressure subsystem (src/pressure): OnAllocate runs at the
// top of every allocation (the watermark check — it may schedule an evented
// reclamation sweep); OnAllocationFailure runs synchronously as the last
// resort before an allocation fails for lack of physical frames or region
// space, and returns the pages it reclaimed (nonzero → the allocation is
// retried once).
class PressureHooks {
 public:
  virtual ~PressureHooks() = default;
  virtual void OnAllocate() = 0;
  virtual std::uint64_t OnAllocationFailure(std::uint64_t pages_needed) = 0;
};

// Installed by the ring subsystem (src/ring): an alternative carrier for
// §3.3 deallocation notices. When a transport is attached, a receiver's
// final release offers the notice to it first; accepted notices travel as
// ring entries (batched, amortized doorbell) and the transport later calls
// FbufSystem::ApplyRingNotice on the owner's side. A false return falls back
// to the classic pending-list path (piggyback + threshold flush), e.g. when
// the pair has no ring or its submission queue is full.
class RingNoticeTransport {
 public:
  virtual ~RingNoticeTransport() = default;
  virtual bool SubmitDeallocNotice(DomainId holder, DomainId owner, FbufId fb) = 0;
};

class FbufSystem {
 public:
  explicit FbufSystem(Machine* machine, const FbufConfig& config = FbufConfig());

  FbufSystem(const FbufSystem&) = delete;
  FbufSystem& operator=(const FbufSystem&) = delete;

  Machine& machine() { return *machine_; }
  const FbufConfig& config() const { return config_; }
  PathRegistry& paths() { return paths_; }

  // Routes deallocation notices over |rpc| (piggybacked on every crossing).
  void AttachRpc(Rpc* rpc);

  // Defers threshold-triggered explicit deallocation messages to |loop|:
  // instead of flushing synchronously inside Free, a flush event is
  // scheduled (one per (holder, owner) pair at a time). Notices that
  // piggyback on RPC traffic in the meantime make the event a no-op.
  // Without a loop attached the flush stays synchronous.
  void AttachEventLoop(EventLoop* loop) { loop_ = loop; }

  // Pressure integration (src/pressure installs these; nullptr detaches).
  void SetPressureHooks(PressureHooks* hooks) { pressure_ = hooks; }

  // Ring integration (src/ring installs this; nullptr detaches and restores
  // the classic piggyback/threshold notice path for every future release).
  void SetNoticeTransport(RingNoticeTransport* t) { notice_transport_ = t; }

  // Applies one ring-delivered deallocation notice on the owner's side:
  // the fbuf returns to its originator's allocator exactly as a piggybacked
  // notice would return it. Safe against the fbuf having died or been
  // handled in the meantime (domain termination drains rings).
  void ApplyRingNotice(DomainId holder, DomainId owner, FbufId id);

  // --- Quotas ----------------------------------------------------------------
  // Overrides the config's per-domain page quota for |d| (0 restores the
  // config default). Quotas cap growth: carving new pages past the quota
  // fails with kQuotaExceeded, but reuse of the domain's own free-listed
  // fbufs is always allowed (usage does not grow).
  void SetDomainQuota(DomainId d, std::uint64_t pages);
  std::uint64_t DomainQuotaFor(DomainId d) const;
  // Pages currently charged against |d|'s quota (incrementally maintained;
  // equals PagesOwnedBy for a consistent system).
  std::uint64_t DomainPagesInUse(DomainId d) const;

  // --- Allocation ------------------------------------------------------------
  // Allocates an fbuf of |bytes| in |originator|. With a live |path| whose
  // originator is |originator|, the allocation is served by the cached
  // per-path allocator (free-list reuse); otherwise by the domain's default
  // allocator, yielding an uncached fbuf. |want_volatile| selects lazy
  // (volatile) vs eager (secured-on-transfer) immutability enforcement.
  // |clear| overrides the config's security-clearing policy for this
  // allocation: a device driver whose DMA fully overwrites the buffer may
  // skip the clear (pass false).
  Status Allocate(Domain& originator, PathId path, std::uint64_t bytes, bool want_volatile,
                  Fbuf** out, std::optional<bool> clear = std::nullopt);

  // --- Transfer (copy semantics — the sender keeps its reference) -------------
  // Gives |to| a reference to and read access on |fb|. For a non-volatile
  // fbuf leaving an untrusted originator, write permission is revoked
  // eagerly. Charges only per-page mapping work that is actually needed;
  // control-transfer latency is the IPC layer's business.
  //
  // With |lazy| true only the reference moves; pages are mapped on demand
  // when the receiver actually touches them (a page fault installs the real
  // frame read-only). This is how an intermediate domain that never reads a
  // message's body — the paper's netserver running UDP — avoids all mapping
  // cost for it (§4, Figure 6 discussion).
  Status Transfer(Fbuf* fb, Domain& from, Domain& to, bool lazy = false);

  // Lazy immutability: revoke the originator's write access at a receiver's
  // request. No-op for trusted originators and already-secured fbufs.
  Status Secure(Fbuf* fb, Domain& requester);

  // A domain already holding a reference acquires another (retention across
  // asynchronous processing, e.g. reassembly or retransmission buffers).
  // Purely local: no mapping work, no kernel involvement.
  Status AddRef(Fbuf* fb, Domain& d);

  // Drops |d|'s reference. The final release returns the fbuf to its
  // originator's allocator: directly if |d| is the originator, else via a
  // deallocation notice (piggybacked, or an explicit message past the
  // threshold).
  Status Free(Fbuf* fb, Domain& d);

  // --- Memory pressure ---------------------------------------------------------
  // The pageout daemon's fbuf rule: discard (never page out) the physical
  // memory of free-listed fbufs, coldest (least recently freed) first, up to
  // |max_pages|. Returns the number of pages reclaimed.
  std::uint64_t ReclaimFreeMemory(std::uint64_t max_pages = ~std::uint64_t{0});

  // Fbufs are pageable, not wired (§2.1.3): under heavier pressure the
  // daemon pages out *in-use* fbuf pages to the backing store, preserving
  // their contents. The next touch by any holder faults the page back in
  // (page_in_ns). Returns pages swapped out.
  std::uint64_t PageOutInUse(std::uint64_t max_pages = ~std::uint64_t{0});

  // Pages out one specific in-use fbuf (the PressureManager's targeted
  // pageout stage: cold retransmit-pinned fbufs go first, rather than
  // whatever PageOutInUse's scan order happens to visit). Same mechanics as
  // PageOutInUse; returns pages swapped out.
  std::uint64_t PageOutFbuf(Fbuf* fb, std::uint64_t max_pages = ~std::uint64_t{0});

  std::uint64_t SwapResidentPages() const { return swap_.size(); }

  // Destroys the free-listed fbufs of cached allocators that have not served
  // an allocation for |idle_ns| (per the machine clock), releasing their
  // frames and region space. The reclamation sweep's last stage: unlike
  // ReclaimFreeMemory this gives back virtual space and chunk quota, at the
  // cost of cold restarts for the path. Returns pages released.
  std::uint64_t ShrinkIdlePaths(SimTime idle_ns);

  // --- Endpoint / domain lifecycle ----------------------------------------------
  // Communication endpoint destroyed: free-listed fbufs of the path are
  // destroyed now; in-flight ones when their references drain.
  void DestroyPath(PathId path);

  // Registered as a Machine termination hook; also callable directly.
  void OnDomainTerminated(Domain& d);

  // --- Introspection (tests, benches) --------------------------------------------
  Fbuf* Get(FbufId id);
  // Resolves an address inside the region to the live fbuf containing it
  // (nullptr if none). Used by the integrated aggregate transfer to find the
  // fbufs a stored DAG references.
  Fbuf* FindByAddr(VirtAddr addr);
  std::size_t PendingNotices(DomainId holder, DomainId owner) const;
  // Immediately sends an explicit deallocation message for the pair.
  void FlushNotices(DomainId holder, DomainId owner);
  std::uint32_t AllocatorChunks(DomainId domain, PathId path) const;
  std::uint64_t RegionFreePages() const { return region_va_.free_bytes() / kPageSize; }

  // --- Leak audit (fault campaigns, §3.3 cleanup rules) -------------------------
  // Aggregate consistency counts over the fbuf table and the alive domains'
  // region mappings; every *_errors / dangling / orphaned field must be zero
  // in a healthy system. O(fbufs + region entries).
  struct AuditCounts {
    std::uint64_t live_fbufs = 0;         // allocated, neither free-listed nor dead
    std::uint64_t free_listed_fbufs = 0;
    std::uint64_t dead_fbufs = 0;
    std::uint64_t free_list_entries = 0;
    // Live fbufs whose originator domain has died: §3.3 requires them to
    // drain to destruction when their references drop, never to a free list.
    // Nonzero is legal mid-drain; a free-listed one counts as an error.
    std::uint64_t orphaned_live_fbufs = 0;
    // Free-list slots violating their invariants: entry dead, not marked
    // free_listed, in the wrong size class, or on a defunct allocator.
    std::uint64_t free_list_errors = 0;
    // Region mappings of alive domains that point into no current fbuf —
    // per-domain mappings left dangling after an fbuf was destroyed.
    std::uint64_t dangling_mappings = 0;
  };
  AuditCounts Audit() const;
  std::uint64_t LiveFbufCount() const;
  std::uint64_t FreeListedFbufCount() const;
  // Region pages owned by |d| as originator (live + free-listed fbufs).
  std::uint64_t PagesOwnedBy(DomainId d) const;
  std::size_t FreeListSize(DomainId domain, PathId path) const;

  // Human-readable snapshot of the whole fbuf system: allocators, live
  // fbufs, free lists, swap residency. For debugging and the examples.
  std::string DebugDump() const;

 private:
  struct Allocator {
    DomainId domain = kInvalidDomainId;
    PathId path = kNoPath;
    bool cached = false;
    bool defunct = false;
    std::uint32_t chunks = 0;
    std::uint64_t outstanding = 0;  // carved fbufs not yet destroyed
    SimTime last_alloc = 0;         // machine-clock time of the last allocation
    AddressSpace va{AddressSpace::Empty{}};
    // LIFO free lists, one per fbuf size in pages.
    std::map<std::uint64_t, std::vector<FbufId>> free_lists;
    // Per-CPU free-list caches (slab/percpu idiom), populated only on
    // multicore machines: Free pushes onto the freeing lane's cache and
    // Allocate tries the allocating lane's cache before the shared lists,
    // so flows pinned to different CPUs stop contending on one LIFO. Quota
    // and audit accounting treat these exactly like the shared lists.
    // Always empty on a single-CPU machine.
    std::vector<std::map<std::uint64_t, std::vector<FbufId>>> cpu_free_lists;
    std::vector<std::pair<VirtAddr, std::uint64_t>> chunk_ranges;
  };

  static std::uint64_t AllocatorKey(DomainId d, PathId p) {
    return (static_cast<std::uint64_t>(d) << 32) | p;
  }

  Allocator& GetAllocator(DomainId domain, PathId path, bool cached);
  // The active CPU lane's free-list cache of |a| (lazily sized). Multicore
  // only; never called on a single-CPU machine.
  std::map<std::uint64_t, std::vector<FbufId>>& CpuFreeLists(Allocator& a);
  // Every free-list map of |a|: the shared one first, then each per-CPU
  // cache. Shrink/reclaim/audit walks cover all of them.
  static std::vector<std::map<std::uint64_t, std::vector<FbufId>>*> AllFreeListMaps(
      Allocator& a);
  static std::vector<const std::map<std::uint64_t, std::vector<FbufId>>*>
  AllFreeListMaps(const Allocator& a);
  Status GrowAllocator(Allocator& a, std::uint64_t pages);
  Status AllocateInternal(Domain& originator, PathId path, std::uint64_t bytes,
                          bool want_volatile, Fbuf** out, bool clear_pages);
  // Quota growth check for |d| carving |pages| new pages; shrinks the
  // domain's own free lists before giving up.
  Status ChargeQuota(Domain& d, std::uint64_t pages);
  // Destroys free-listed fbufs owned by |d| until |pages_needed| pages were
  // released (or none remain). Returns pages released.
  std::uint64_t ShrinkDomainFreeLists(DomainId d, std::uint64_t pages_needed);
  Status CarveFbuf(Allocator& a, Domain& originator, std::uint64_t pages, std::uint64_t bytes,
                   bool want_volatile, Fbuf** out);
  // Re-materializes any reclaimed pages of a free-listed fbuf being reused.
  Status EnsureMaterialized(Fbuf* fb);
  Status SecureInternal(Fbuf* fb);
  void RestoreOriginatorWrite(Fbuf* fb);
  // Final-release handling in the owner: free-list (cached) or destroy.
  void ReturnToOwner(Fbuf* fb);
  // Unmaps everywhere, frees frames, releases VA.
  void DestroyFbuf(Fbuf* fb);
  void ReleaseAllocatorIfDrained(Allocator& a);
  void DeliverNotices(DomainId from, DomainId to);
  // Flushes now, or schedules a flush event when a loop is attached.
  void ScheduleFlush(DomainId holder, DomainId owner);
  // The VM fault hook for the fbuf region.
  Status RegionFault(Domain& d, Vpn vpn, Access access);
  // Brings a paged-out (or never-materialized) fbuf page back for |d|.
  Status PageIn(Domain& d, Vpn vpn, Fbuf* fb);
  void DropSwap(FbufId id);

  Machine* machine_;
  FbufConfig config_;
  PathRegistry paths_;
  Rpc* rpc_ = nullptr;
  EventLoop* loop_ = nullptr;
  PressureHooks* pressure_ = nullptr;
  RingNoticeTransport* notice_transport_ = nullptr;
  std::map<DomainId, std::uint64_t> quota_overrides_;
  std::map<DomainId, std::uint64_t> owned_pages_;  // quota charge per domain
  // (holder, owner) pairs with a flush event already in flight.
  std::set<std::pair<DomainId, DomainId>> flush_scheduled_;
  AddressSpace region_va_{AddressSpace::Empty{}};
  std::map<std::uint64_t, Allocator> allocators_;
  std::vector<std::unique_ptr<Fbuf>> fbufs_;
  // (holder, owner) -> fbuf ids freed by holder, awaiting delivery to owner.
  std::map<std::pair<DomainId, DomainId>, std::vector<FbufId>> pending_notices_;
  // Backing store for paged-out in-use fbuf pages: (fbuf, page) -> bytes.
  std::map<std::pair<FbufId, std::uint64_t>, std::vector<std::uint8_t>> swap_;
};

}  // namespace fbufs

#endif  // SRC_FBUF_FBUF_SYSTEM_H_
