// Fbuf: one fast buffer — contiguous virtual pages in the globally shared
// fbuf region.
//
// An fbuf is created by an originator domain, is immutable once transferred
// (enforced eagerly for non-volatile fbufs, on request via Secure() for
// volatile ones), and is reference-counted across the domains of its I/O
// data path. Cached fbufs return to a per-(domain, path) LIFO free list on
// final release, retaining all receiver mappings so reuse costs nothing.
#ifndef SRC_FBUF_FBUF_H_
#define SRC_FBUF_FBUF_H_

#include <cstdint>
#include <vector>

#include "src/vm/types.h"

namespace fbufs {

using FbufId = std::uint32_t;
constexpr FbufId kInvalidFbufId = static_cast<FbufId>(-1);

using PathId = std::uint32_t;
// "No path known at allocation time": the default allocator serves uncached
// fbufs (§5.2 of the paper).
constexpr PathId kNoPath = static_cast<PathId>(-1);

struct Fbuf {
  FbufId id = kInvalidFbufId;
  VirtAddr base = 0;
  std::uint64_t pages = 0;
  std::uint64_t bytes = 0;  // requested size (<= pages * kPageSize)
  DomainId originator = kInvalidDomainId;
  PathId path = kNoPath;
  bool cached = false;
  bool is_volatile = true;
  // Originator write access currently revoked (immutability enforced).
  bool secured = false;
  // Sitting on its allocator's free list.
  bool free_listed = false;
  // Destroyed (uncached fbuf after final free, or torn down with its path).
  bool dead = false;
  // Receiver domains with live mappings (persist across free for cached
  // fbufs — that is the whole point of fbuf caching).
  std::vector<DomainId> mapped;
  // Domains currently holding a reference; the originator appears while it
  // holds one. Multiset semantics: a domain may hold several references.
  std::vector<DomainId> holders;

  VirtAddr end() const { return base + pages * kPageSize; }

  bool IsMappedIn(DomainId d) const {
    for (DomainId m : mapped) {
      if (m == d) {
        return true;
      }
    }
    return false;
  }

  bool IsHeldBy(DomainId d) const {
    for (DomainId h : holders) {
      if (h == d) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace fbufs

#endif  // SRC_FBUF_FBUF_H_
