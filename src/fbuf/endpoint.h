// Communication endpoints: the application-visible handle that identifies
// an I/O data path at buffer-allocation time (§2.1.2).
//
// "An application can easily identify the I/O data path of a buffer at the
// time of allocation by referring to the communication endpoint it intends
// to use." Endpoints own their path: destroying the endpoint destroys the
// path, which deallocates the path's fbufs (§3.3).
#ifndef SRC_FBUF_ENDPOINT_H_
#define SRC_FBUF_ENDPOINT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fbuf/fbuf_system.h"

namespace fbufs {

using EndpointId = std::uint32_t;
constexpr EndpointId kInvalidEndpointId = static_cast<EndpointId>(-1);

struct Endpoint {
  EndpointId id = kInvalidEndpointId;
  PathId path = kNoPath;
  DomainId owner = kInvalidDomainId;
  bool alive = true;
};

class EndpointManager {
 public:
  explicit EndpointManager(FbufSystem* fsys) : fsys_(fsys) {
    // Endpoints die with their owning domain, taking their paths along.
    fsys->machine().AddTerminationHook([this](Domain& d) {
      for (auto& ep : endpoints_) {
        if (ep->alive && ep->owner == d.id()) {
          ep->alive = false;
          // The path itself is torn down by the fbuf system's own hook.
        }
      }
    });
  }

  // Opens an endpoint in |owner| whose traffic will traverse |domains|
  // (owner first).
  Endpoint* Create(Domain& owner, std::vector<DomainId> domains) {
    auto ep = std::make_unique<Endpoint>();
    ep->id = static_cast<EndpointId>(endpoints_.size());
    ep->owner = owner.id();
    ep->path = fsys_->paths().Register(std::move(domains));
    endpoints_.push_back(std::move(ep));
    return endpoints_.back().get();
  }

  // Closes the endpoint; its path dies and the path's fbufs are released
  // (free-listed ones immediately, in-flight ones as references drain).
  void Destroy(Endpoint* ep) {
    if (ep == nullptr || !ep->alive) {
      return;
    }
    ep->alive = false;
    fsys_->DestroyPath(ep->path);
  }

  // Allocates an I/O buffer for this endpoint: the path is implied, which is
  // exactly what enables fbuf caching.
  Status AllocateBuffer(Endpoint* ep, Domain& d, std::uint64_t bytes, bool want_volatile,
                        Fbuf** out) {
    if (ep == nullptr || !ep->alive) {
      return Status::kInvalidArgument;
    }
    return fsys_->Allocate(d, ep->path, bytes, want_volatile, out);
  }

  Endpoint* Get(EndpointId id) {
    return id < endpoints_.size() ? endpoints_[id].get() : nullptr;
  }

 private:
  FbufSystem* fsys_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace fbufs

#endif  // SRC_FBUF_ENDPOINT_H_
