#include "src/topo/testbed.h"

#include <utility>

namespace fbufs {

Testbed::Testbed(const TestbedConfig& config) : config_(config) {
  // Host construction order (receiver, then sender0) matches the historical
  // testbed; the wire's timing comes from the receiver's cost model.
  receiver_node_ = topo_.AddHost(std::make_unique<SimHost>(
      config, HostRole::kReceiver, kVci, /*port=*/2000, "receiver"));
  sender_nodes_.push_back(topo_.AddHost(std::make_unique<SimHost>(
      config, HostRole::kSender, kVci, /*port=*/2000, "sender0")));
  link_ = topo_.AddLink(sender_nodes_[0], receiver_node_,
                        &topo_.host(receiver_node_)->machine.costs(), "wire");
  runner_ = std::make_unique<TopologyRunner>(&topo_, &loop_);

  TopologyRunner::Leg leg;
  leg.tx = sender_nodes_[0];
  leg.rx = receiver_node_;
  leg.vci = kVci;
  leg.hops.push_back(TopologyRunner::Hop{link_, kNoNode});
  runner_->AddFlow({leg}, topo_.host(receiver_node_)->sink.get(),
                   config.window);
}

std::size_t Testbed::AddFlow(std::uint32_t vci, std::uint16_t port) {
  const std::size_t index = runner_->flow_count();
  const NodeId tx = topo_.AddHost(std::make_unique<SimHost>(
      config_, HostRole::kSender, vci, port, "sender" + std::to_string(index)));
  sender_nodes_.push_back(tx);
  SinkProtocol* sink =
      topo_.host(receiver_node_)->AddFlowEndpoint(vci, port, index);

  // Every flow shares the single null-modem wire, as before.
  TopologyRunner::Leg leg;
  leg.tx = tx;
  leg.rx = receiver_node_;
  leg.vci = vci;
  leg.hops.push_back(TopologyRunner::Hop{link_, kNoNode});
  return runner_->AddFlow({leg}, sink, config_.window);
}

Testbed::Result Testbed::Run(std::uint64_t messages, std::uint64_t bytes,
                             std::uint64_t warmup) {
  std::vector<FlowTraffic> traffic(1);
  traffic[0].messages = messages;
  traffic[0].bytes = bytes;
  traffic[0].warmup = warmup;
  const MultiResult mr = RunFlows(traffic);

  Result result;
  result.messages = messages;
  result.bytes = messages * bytes;
  const FlowResult& fr = mr.flows[0];
  if (fr.failed) {
    result.throughput_mbps = -1;
    return result;
  }
  result.elapsed_ns = fr.elapsed_ns;
  result.throughput_mbps = fr.throughput_mbps;
  result.sender_cpu_load = fr.sender_cpu_load;
  result.receiver_cpu_load = mr.receiver_cpu_load;
  return result;
}

}  // namespace fbufs
