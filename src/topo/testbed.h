// DecStations connected by a null modem between their Osiris boards:
// the paper's end-to-end UDP/IP experiment (Figures 5 and 6, and the §4 CPU
// load measurements), generalized to many concurrent flows.
//
// Since the topology fabric landed (src/topo/topology.h), the testbed is
// the trivial one-link topology: one receiver host, N sender hosts sharing
// one wire, one flow per sender, scheduled by TopologyRunner. The runner's
// one-link schedule is the historical testbed schedule, so fig5/fig6/
// cpu_load numbers reproduce byte-identically.
#ifndef SRC_TOPO_TESTBED_H_
#define SRC_TOPO_TESTBED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/atm.h"
#include "src/net/driver.h"
#include "src/net/link.h"
#include "src/net/osiris.h"
#include "src/proto/ip.h"
#include "src/proto/loopback_stack.h"
#include "src/proto/test_protocols.h"
#include "src/proto/udp.h"
#include "src/sim/event_loop.h"
#include "src/topo/topo_runner.h"
#include "src/topo/topology.h"

namespace fbufs {

// The historical testbed configuration: per-host stack placement plus the
// run-level window.
struct TestbedConfig : SimHostConfig {
  std::uint32_t window = 8;  // sliding-window flow control, in messages
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  // One host: a complete machine with its protocol stack.
  using Host = SimHost;

  // Flow/result types now live at namespace scope (src/topo/topo_runner.h);
  // aliased here for the testbed's historical clients.
  using FlowTraffic = ::fbufs::FlowTraffic;
  using FlowResult = ::fbufs::FlowResult;
  using ResourceUse = ::fbufs::ResourceUse;
  using MultiResult = ::fbufs::MultiResult;

  struct Result {
    double throughput_mbps = 0;
    double sender_cpu_load = 0;
    double receiver_cpu_load = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    SimTime elapsed_ns = 0;
  };

  // Streams |messages| test messages of |bytes| each from the sender's test
  // protocol to the receiver's sink. |warmup| extra messages are sent first
  // and excluded from the measurement (pipeline fill, cold fbuf caches).
  // Shorthand for RunFlows with traffic on the built-in flow only.
  Result Run(std::uint64_t messages, std::uint64_t bytes, std::uint64_t warmup = 0);

  // Adds a flow: a new sender host transmitting on |vci| (over the shared
  // wire) to a new sink bound at |port| on the receiving host. Flow 0
  // (VCI kVci, port 2000) exists from construction. Returns the flow index.
  std::size_t AddFlow(std::uint32_t vci, std::uint16_t port);

  // Schedules traffic[i] on flow i (entries beyond the flow count are
  // ignored; zero-message entries leave a flow idle), runs the event loop to
  // quiescence, and reports per-flow and per-resource results.
  MultiResult RunFlows(const std::vector<FlowTraffic>& traffic) {
    return runner_->RunFlows(traffic);
  }

  Host& sender() { return *topo_.host(sender_nodes_[0]); }
  Host& sender(std::size_t flow) { return *topo_.host(sender_nodes_[flow]); }
  Host& receiver() { return *topo_.host(receiver_node_); }
  NullModemLink& link() { return topo_.link(link_).wire_link(); }
  EventLoop& loop() { return loop_; }
  Topology& topology() { return topo_; }
  TopologyRunner& runner() { return *runner_; }
  std::size_t flow_count() const { return runner_->flow_count(); }
  SinkProtocol& flow_sink(std::size_t flow) { return runner_->flow_sink(flow); }

  static constexpr std::uint32_t kVci = 42;

 private:
  TestbedConfig config_;
  EventLoop loop_;
  Topology topo_;
  std::unique_ptr<TopologyRunner> runner_;
  std::vector<NodeId> sender_nodes_;
  NodeId receiver_node_ = kNoNode;
  LinkId link_ = 0;
};

}  // namespace fbufs

#endif  // SRC_TOPO_TESTBED_H_
