// Declarative topology construction: name a shape and its parameters, get a
// wired graph plus a runner with one flow per sender — the reproducible,
// config-driven construction style of the gem5/SimBricks lineage, on our
// deterministic event engine.
//
// Shapes:
//   kDirect      — one sender, one link, one receiver (the paper's testbed);
//   kStar        — K senders, each on its own link straight into the
//                  receiver's adapter (fan-in contends at RX DMA / CPU);
//   kFanInSwitch — K senders -> ATM switch -> one trunk -> receiver: all
//                  VCIs route to one bounded output port, so the port and
//                  trunk are shared bottlenecks and overload sheds PDUs;
//   kRelayChain  — sender -> relay host(s) -> receiver: each relay receives
//                  into fbufs and forwards fbuf-to-fbuf onto its second
//                  adapter (the paper's cross-domain forwarding path).
#ifndef SRC_TOPO_TOPO_CONFIG_H_
#define SRC_TOPO_TOPO_CONFIG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/topo/topo_runner.h"
#include "src/topo/topology.h"

namespace fbufs {

enum class TopologyShape { kDirect, kStar, kFanInSwitch, kRelayChain };

struct TopologyConfig {
  TopologyShape shape = TopologyShape::kDirect;
  SimHostConfig host;      // stack configuration shared by every host
  std::uint32_t window = 8;
  std::size_t senders = 1;  // kStar / kFanInSwitch
  std::size_t relays = 1;   // kRelayChain
  // Link rates in Mbps; 0 uses the cost model's default (516, the paper's
  // testbed wire).
  double sender_link_mbps = 0;
  double trunk_mbps = 0;                // switch -> receiver trunk
  SwitchPortConfig switch_port;         // kFanInSwitch shared output port
  std::uint32_t base_vci = 42;          // flow i uses base_vci + i
  std::uint16_t base_port = 2000;       // flow i delivers to base_port + i
  std::uint64_t seed = 0x5eed;          // per-link loss-Rng seed base
};

// A built scenario: the graph, its event loop, a runner with one flow per
// sender, and the node/flow ids needed to drive and inspect it.
struct BuiltTopology {
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<TopologyRunner> runner;
  std::vector<std::size_t> flows;       // flow index per sender
  std::vector<NodeId> sender_nodes;
  std::vector<NodeId> relay_nodes;      // kRelayChain only
  NodeId receiver_node = kNoNode;
  NodeId switch_node = kNoNode;         // kFanInSwitch only
  std::vector<LinkId> sender_links;     // one per sender
  LinkId trunk_link = 0;                // kFanInSwitch only
};

BuiltTopology BuildTopology(const TopologyConfig& cfg);

}  // namespace fbufs

#endif  // SRC_TOPO_TOPO_CONFIG_H_
