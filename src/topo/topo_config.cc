#include "src/topo/topo_config.h"

#include <string>
#include <utility>

namespace fbufs {

namespace {

using Leg = TopologyRunner::Leg;
using Hop = TopologyRunner::Hop;

// The receiver is always built first so its machine is the cost-model
// reference for link timing (matching the historical testbed).
NodeId BuildReceiver(BuiltTopology* b, const TopologyConfig& cfg,
                     std::uint32_t vci, std::uint16_t port) {
  b->receiver_node = b->topo->AddHost(std::make_unique<SimHost>(
      cfg.host, HostRole::kReceiver, vci, port, "receiver"));
  return b->receiver_node;
}

const CostParams* ReceiverCosts(BuiltTopology* b) {
  return &b->topo->host(b->receiver_node)->machine.costs();
}

}  // namespace

BuiltTopology BuildTopology(const TopologyConfig& cfg) {
  BuiltTopology b;
  b.loop = std::make_unique<EventLoop>();
  b.topo = std::make_unique<Topology>(cfg.seed);

  switch (cfg.shape) {
    case TopologyShape::kDirect: {
      const NodeId rx = BuildReceiver(&b, cfg, cfg.base_vci, cfg.base_port);
      const NodeId tx = b.topo->AddHost(std::make_unique<SimHost>(
          cfg.host, HostRole::kSender, cfg.base_vci, cfg.base_port, "sender0"));
      b.sender_nodes.push_back(tx);
      const LinkId wire = b.topo->AddLink(tx, rx, ReceiverCosts(&b), "wire",
                                          cfg.sender_link_mbps);
      b.sender_links.push_back(wire);
      b.runner = std::make_unique<TopologyRunner>(b.topo.get(), b.loop.get());
      b.flows.push_back(b.runner->AddFlow(
          {Leg{tx, rx, cfg.base_vci, {Hop{wire, kNoNode}}}},
          b.topo->host(rx)->sink.get(), cfg.window));
      break;
    }

    case TopologyShape::kStar: {
      const NodeId rx = BuildReceiver(&b, cfg, cfg.base_vci, cfg.base_port);
      b.runner = std::make_unique<TopologyRunner>(b.topo.get(), b.loop.get());
      for (std::size_t i = 0; i < cfg.senders; ++i) {
        const std::uint32_t vci = cfg.base_vci + static_cast<std::uint32_t>(i);
        const std::uint16_t port =
            static_cast<std::uint16_t>(cfg.base_port + i);
        const NodeId tx = b.topo->AddHost(std::make_unique<SimHost>(
            cfg.host, HostRole::kSender, vci, port,
            "sender" + std::to_string(i)));
        b.sender_nodes.push_back(tx);
        const LinkId wire =
            b.topo->AddLink(tx, rx, ReceiverCosts(&b),
                            "wire/" + std::to_string(i), cfg.sender_link_mbps);
        b.sender_links.push_back(wire);
        SinkProtocol* sink =
            i == 0 ? b.topo->host(rx)->sink.get()
                   : b.topo->host(rx)->AddFlowEndpoint(vci, port, i);
        b.flows.push_back(b.runner->AddFlow(
            {Leg{tx, rx, vci, {Hop{wire, kNoNode}}}}, sink, cfg.window));
      }
      break;
    }

    case TopologyShape::kFanInSwitch: {
      const NodeId rx = BuildReceiver(&b, cfg, cfg.base_vci, cfg.base_port);
      b.switch_node = b.topo->AddSwitch("sw0", {cfg.switch_port});
      b.trunk_link = b.topo->AddLink(b.switch_node, rx, ReceiverCosts(&b),
                                     "trunk", cfg.trunk_mbps);
      b.runner = std::make_unique<TopologyRunner>(b.topo.get(), b.loop.get());
      for (std::size_t i = 0; i < cfg.senders; ++i) {
        const std::uint32_t vci = cfg.base_vci + static_cast<std::uint32_t>(i);
        const std::uint16_t port =
            static_cast<std::uint16_t>(cfg.base_port + i);
        const NodeId tx = b.topo->AddHost(std::make_unique<SimHost>(
            cfg.host, HostRole::kSender, vci, port,
            "sender" + std::to_string(i)));
        b.sender_nodes.push_back(tx);
        const LinkId uplink = b.topo->AddLink(
            tx, b.switch_node, ReceiverCosts(&b), "wire/" + std::to_string(i),
            cfg.sender_link_mbps);
        b.sender_links.push_back(uplink);
        b.topo->switch_at(b.switch_node)->Route(vci, 0);
        SinkProtocol* sink =
            i == 0 ? b.topo->host(rx)->sink.get()
                   : b.topo->host(rx)->AddFlowEndpoint(vci, port, i);
        // One leg, two hops: uplink into the switch, then the trunk.
        b.flows.push_back(b.runner->AddFlow(
            {Leg{tx, rx, vci,
                 {Hop{uplink, b.switch_node}, Hop{b.trunk_link, kNoNode}}}},
            sink, cfg.window));
      }
      break;
    }

    case TopologyShape::kRelayChain: {
      // VCIs/ports advance per leg: sender speaks base_vci/base_port to the
      // first relay, which forwards on base_vci+1/base_port+1, and so on.
      const std::uint32_t last_vci =
          cfg.base_vci + static_cast<std::uint32_t>(cfg.relays);
      const std::uint16_t last_port =
          static_cast<std::uint16_t>(cfg.base_port + cfg.relays);
      const NodeId rx = BuildReceiver(&b, cfg, last_vci, last_port);
      const NodeId tx = b.topo->AddHost(std::make_unique<SimHost>(
          cfg.host, HostRole::kSender, cfg.base_vci, cfg.base_port, "sender0"));
      b.sender_nodes.push_back(tx);
      for (std::size_t r = 0; r < cfg.relays; ++r) {
        RelayWiring wiring;
        wiring.out_vci = cfg.base_vci + static_cast<std::uint32_t>(r + 1);
        wiring.out_port = static_cast<std::uint16_t>(cfg.base_port + r + 1);
        b.relay_nodes.push_back(b.topo->AddHost(std::make_unique<SimHost>(
            cfg.host, HostRole::kRelay,
            cfg.base_vci + static_cast<std::uint32_t>(r),
            static_cast<std::uint16_t>(cfg.base_port + r),
            "relay" + std::to_string(r), &wiring)));
      }
      b.runner = std::make_unique<TopologyRunner>(b.topo.get(), b.loop.get());
      std::vector<Leg> legs;
      NodeId prev = tx;
      for (std::size_t r = 0; r <= cfg.relays; ++r) {
        const NodeId next = r < cfg.relays ? b.relay_nodes[r] : rx;
        const LinkId wire = b.topo->AddLink(
            prev, next, ReceiverCosts(&b), "wire/" + std::to_string(r),
            cfg.sender_link_mbps);
        b.sender_links.push_back(wire);
        legs.push_back(Leg{prev, next,
                           cfg.base_vci + static_cast<std::uint32_t>(r),
                           {Hop{wire, kNoNode}}});
        prev = next;
      }
      b.flows.push_back(b.runner->AddFlow(
          std::move(legs), b.topo->host(rx)->sink.get(), cfg.window));
      break;
    }
  }
  return b;
}

}  // namespace fbufs
