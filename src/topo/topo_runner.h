// TopologyRunner: schedules flows end-to-end over a Topology on the event
// engine and reports per-flow throughput/goodput plus per-resource
// utilization.
//
// A flow is a route of one or more legs. Each leg runs the full testbed
// pipeline — segment to ATM cells, TX DMA, one or more wire hops (each
// optionally through a switch), RX DMA, reassemble — and ends at either the
// final receiver (sink delivery, "deliver/<flow>/<msg>") or a relay host
// ("relay/<flow>/<msg>"), which receives the PDU into fbufs, forwards
// fbuf-to-fbuf across its domains onto the second adapter, and the next leg
// carries what it staged. Dropped PDUs (lossy link, full switch queue) are
// counted and still complete their message's flow-control accounting, so
// the sender window never hangs on loss.
//
// The two-host Testbed is the one-link special case: with a single leg and
// a single hop this runner executes exactly the historical testbed schedule
// (same events, same labels, same resource-acquire order), so fig5/fig6/
// cpu_load reproduce byte-identically.
#ifndef SRC_TOPO_TOPO_RUNNER_H_
#define SRC_TOPO_TOPO_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/atm.h"
#include "src/pressure/backoff.h"
#include "src/sim/event_loop.h"
#include "src/topo/topology.h"

namespace fbufs {

struct FlowTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t warmup = 0;
};

struct FlowResult {
  double throughput_mbps = 0;
  double sender_cpu_load = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  SimTime elapsed_ns = 0;
  bool failed = false;
  // Loss-aware accounting: bytes that actually reached the flow's sink
  // during the measurement window, and PDUs shed along the route.
  std::uint64_t delivered_bytes = 0;
  double goodput_mbps = 0;
  std::uint64_t pdus_dropped = 0;
  // Fault-campaign observability: messages whose flow-control accounting
  // completed (warmup included), and whether the run went quiescent with
  // work left but no failure — a wedged window, which the credit scheme is
  // supposed to make impossible even under loss.
  std::uint64_t completed_messages = 0;
  bool stalled = false;
  // Backpressure accounting (SetBackpressure): times the flow parked on a
  // backoff timer, and whether the stall watchdog failed it for making no
  // progress inside the horizon.
  std::uint64_t backpressure_parks = 0;
  bool stall_failed = false;
};

struct ResourceUse {
  std::string name;
  SimTime busy_ns = 0;
  double utilization = 0;  // over the run's measurement window
};

struct MultiResult {
  std::vector<FlowResult> flows;
  double aggregate_mbps = 0;
  double receiver_cpu_load = 0;
  SimTime elapsed_ns = 0;
  std::vector<ResourceUse> resources;
  bool failed = false;
};

class TopologyRunner {
 public:
  TopologyRunner(Topology* topo, EventLoop* loop) : topo_(topo), loop_(loop) {}

  // One wire hop: a link, optionally terminating at a switch that forwards
  // onto the next hop's link.
  struct Hop {
    LinkId link = 0;
    NodeId via_switch = kNoNode;  // set when the hop lands on a switch
  };

  // One leg: |tx| stages PDUs on its outbound adapter, they cross |hops|,
  // and |rx| receives them (a relay continues onto the next leg, the last
  // leg's rx is the final receiver).
  struct Leg {
    NodeId tx = 0;
    NodeId rx = 0;
    std::uint32_t vci = 0;  // VCI the PDUs carry on this leg
    std::vector<Hop> hops;
  };

  // Adds a flow along |legs| delivering into |sink| (a sink on the last
  // leg's rx host). |window| is the sliding-window depth in messages.
  // Returns the flow index.
  std::size_t AddFlow(std::vector<Leg> legs, SinkProtocol* sink,
                      std::uint32_t window);

  // Enables backpressure handling: a send or delivery failing with a
  // backpressure status (pool exhausted, quota, no region space) parks the
  // flow on a backoff timer and retries, instead of failing the run. A flow
  // making no progress for |stall_horizon| of loop time is failed by the
  // watchdog (FlowResult::stall_failed). Hard errors still fail immediately.
  // The happy path schedules no extra events, so runs that never hit
  // pressure dispatch identically with or without this.
  void SetBackpressure(const BackoffPolicy& policy, SimTime stall_horizon) {
    backpressure_on_ = true;
    bp_policy_ = policy;
    bp_horizon_ = stall_horizon;
  }

  // Schedules traffic[i] on flow i (entries beyond the flow count are
  // ignored; zero-message entries leave a flow idle), runs the event loop to
  // quiescence, and reports per-flow and per-resource results.
  MultiResult RunFlows(const std::vector<FlowTraffic>& traffic);

  std::size_t flow_count() const { return flows_.size(); }
  SinkProtocol& flow_sink(std::size_t flow) { return *flows_[flow].sink; }

 private:
  struct Flow {
    std::vector<Leg> legs;
    SinkProtocol* sink = nullptr;
    std::uint32_t window = 8;
    // One reassembler per leg (each leg is its own AAL5 conversation).
    std::vector<std::unique_ptr<AtmReassembler>> reassemblers;
  };

  // Per-flow state of one RunFlows invocation.
  struct FlowRun {
    FlowTraffic traffic;
    std::uint64_t total = 0;      // warmup + messages
    std::uint64_t next = 0;       // next message index to send
    std::uint64_t completed = 0;  // messages fully delivered
    std::vector<SimTime> ack_time;
    std::vector<bool> acked;
    std::vector<std::uint64_t> pdus_left;
    std::uint64_t dropped = 0;         // PDUs shed along the route
    std::uint64_t sink_bytes_start = 0;
    SimTime t0_tx = 0;
    SimTime t0_rx = 0;
    SimTime tx_end = 0;
    SimTime rx_end = 0;
    SimTime tx_busy = 0;
    SimTime rx_busy = 0;
    // RSS steering (multicore hosts): the lane this flow's send and receive
    // processing is pinned to. Always 0 on single-CPU machines.
    std::uint32_t tx_cpu = 0;
    std::uint32_t rx_cpu = 0;
    bool failed = false;
    // Backpressure: one backoff per end of the flow (the sender parks on
    // allocation failures, the receiver on delivery failures).
    FlowBackoff tx_backoff;
    FlowBackoff rx_backoff;
    std::uint64_t parks = 0;
    bool stall_failed = false;
  };

  SimHost& TxHost(std::size_t flow) { return *topo_->host(flows_[flow].legs.front().tx); }
  SimHost& RxHost(std::size_t flow) { return *topo_->host(flows_[flow].legs.back().rx); }

  SimTime Key(SimTime t) const;
  void ScheduleSenderStep(std::size_t flow);
  void SenderStep(std::size_t flow);
  // Parks one end of |flow| on its backoff timer after a backpressure
  // failure; |retry| re-runs the failed step. Fails the flow when the stall
  // watchdog's horizon is exhausted.
  void ParkFlow(std::size_t flow, FlowBackoff& backoff, const std::string& label,
                EventLoop::Handler retry);
  // Pipes one staged PDU through leg |leg| of |flow|; schedules its arrival
  // event (deliver on the last leg, relay otherwise) or records the drop.
  void RunLeg(std::size_t flow, std::size_t leg, std::uint64_t msg,
              SimHost::StagedPdu pdu);
  void DeliverEvent(std::size_t flow, std::uint64_t msg,
                    std::vector<std::uint8_t> payload, SimTime rx_dma_done);
  // Multicore receive path: enqueues the delivery on the receiver host's
  // dispatcher, pinned to the flow's RSS lane. Queueing delay behind other
  // flows sharing the lane is measured by the dispatch queue.
  void DeliverMulticore(std::size_t flow, std::uint64_t msg,
                        std::vector<std::uint8_t> payload, SimTime rx_dma_done);
  void RelayEvent(std::size_t flow, std::size_t leg, std::uint64_t msg,
                  std::vector<std::uint8_t> payload, SimTime rx_dma_done);
  void PduDropped(std::size_t flow, std::uint64_t msg);
  void CompleteMessage(std::size_t flow, std::uint64_t msg);

  Topology* topo_;
  EventLoop* loop_;
  std::vector<Flow> flows_;
  std::vector<FlowRun> runs_;       // live during RunFlows
  std::vector<bool> step_pending_;  // one sender-step event in flight per flow
  bool backpressure_on_ = false;
  BackoffPolicy bp_policy_;
  SimTime bp_horizon_ = 0;
};

}  // namespace fbufs

#endif  // SRC_TOPO_TOPO_RUNNER_H_
