#include "src/topo/sim_host.h"

#include <utility>

namespace fbufs {

namespace {

// Appends |d| unless it repeats the previous element (layers in the same
// domain collapse to one hop).
void AppendHop(std::vector<DomainId>* hops, DomainId d) {
  if (hops->empty() || hops->back() != d) {
    hops->push_back(d);
  }
}

std::uint32_t DomainCount(StackPlacement p) {
  switch (p) {
    case StackPlacement::kKernelOnly:
      return 1;
    case StackPlacement::kUserKernel:
      return 2;
    case StackPlacement::kUserNetserverKernel:
      return 3;
  }
  return 1;
}

MachineConfig Named(MachineConfig cfg, const std::string& name) {
  cfg.name = name;
  return cfg;
}

}  // namespace

SimHost::SimHost(const SimHostConfig& cfg, HostRole host_role,
                 std::uint32_t host_vci, std::uint16_t port,
                 const std::string& name, const RelayWiring* relay)
    : machine(Named(cfg.machine, name)),
      fsys(&machine),
      rpc(&machine),
      adapter(&machine.costs()),
      cpu(machine.cpu_lane(0)),
      vci(host_vci),
      role(host_role),
      config(cfg) {
  fsys.AttachRpc(&rpc);

  Domain* kernel = &machine.kernel();
  Domain* app = kernel;
  Domain* udp_dom = kernel;
  switch (config.placement) {
    case StackPlacement::kKernelOnly:
      break;
    case StackPlacement::kUserKernel:
      app = machine.CreateDomain("app");
      break;
    case StackPlacement::kUserNetserverKernel:
      app = machine.CreateDomain("app");
      udp_dom = machine.CreateDomain("netserver");
      break;
  }

  ProtocolStack::Config scfg;
  scfg.integrated = config.integrated;
  stack = std::make_unique<ProtocolStack>(&machine, &fsys, &rpc, scfg);
  stack->set_domain_count(DomainCount(config.placement));

  const bool is_sender = role == HostRole::kSender;

  // Data path: the domains a data fbuf visits on this host. A relay's data
  // enters like a receiver's (kernel upward) and then revisits the kernel on
  // the way back out.
  std::vector<DomainId> data_hops;
  if (is_sender) {
    AppendHop(&data_hops, app->id());
    AppendHop(&data_hops, udp_dom->id());
    AppendHop(&data_hops, kernel->id());
  } else {
    AppendHop(&data_hops, kernel->id());
    AppendHop(&data_hops, udp_dom->id());
    AppendHop(&data_hops, app->id());
    if (role == HostRole::kRelay) {
      AppendHop(&data_hops, udp_dom->id());
      AppendHop(&data_hops, kernel->id());
    }
  }
  const bool side_cached = is_sender ? config.sender_cached : config.cached;
  PathId data_path = kNoPath;
  PathId udp_hdr_path = kNoPath;
  PathId ip_hdr_path = kNoPath;
  if (side_cached) {
    data_path = fsys.paths().Register(data_hops);
  }
  // Header fbufs are always path-cached: protocols know their own domain
  // sequence regardless of the adapter's demux ability.
  std::vector<DomainId> hdr_hops;
  AppendHop(&hdr_hops, udp_dom->id());
  AppendHop(&hdr_hops, kernel->id());
  udp_hdr_path = fsys.paths().Register(hdr_hops);
  ip_hdr_path = fsys.paths().Register({kernel->id()});

  udp = std::make_unique<UdpProtocol>(udp_dom, stack.get(), udp_hdr_path);
  ip = std::make_unique<IpProtocol>(kernel, stack.get(), ip_hdr_path, config.pdu_size);
  driver = std::make_unique<DriverProtocol>(kernel, stack.get(), &adapter, host_vci);

  switch (role) {
    case HostRole::kSender:
      source = std::make_unique<SourceProtocol>(app, stack.get(), data_path,
                                                config.volatile_fbufs);
      source->set_below(udp.get());
      udp->set_below(ip.get());
      udp->SetDefaultPorts(1000, port);
      ip->set_below(driver.get());
      WireTransmit(driver.get());
      break;

    case HostRole::kReceiver:
      sink = std::make_unique<SinkProtocol>(app, stack.get());
      driver->set_above(ip.get());
      ip->set_above(udp.get());
      udp->Bind(port, sink.get());
      if (config.cached) {
        // The adapter demuxes this VCI into pre-allocated per-path buffers;
        // without registration every PDU falls back to the uncached queue.
        adapter.RegisterVci(host_vci, data_path);
      }
      break;

    case HostRole::kRelay: {
      assert(relay != nullptr && "relay host needs RelayWiring");
      // Inbound: like a receiver, but the port is bound to the relay
      // protocol instead of a sink.
      relay_proto = std::make_unique<RelayProtocol>(app, stack.get());
      driver->set_above(ip.get());
      ip->set_above(udp.get());
      udp->Bind(port, relay_proto.get());
      if (config.cached) {
        adapter.RegisterVci(host_vci, data_path);
      }
      // Outbound: like a sender, rooted at the relay protocol, onto a
      // second board. The same data fbufs flow back down — only header
      // fbufs are allocated on this side.
      adapter_out = std::make_unique<OsirisAdapter>(&machine.costs(), name + "/out-");
      std::vector<DomainId> out_hdr_hops;
      AppendHop(&out_hdr_hops, udp_dom->id());
      AppendHop(&out_hdr_hops, kernel->id());
      const PathId udp_out_hdr = fsys.paths().Register(out_hdr_hops);
      const PathId ip_out_hdr = fsys.paths().Register({kernel->id()});
      udp_out = std::make_unique<UdpProtocol>(udp_dom, stack.get(), udp_out_hdr);
      ip_out = std::make_unique<IpProtocol>(kernel, stack.get(), ip_out_hdr,
                                            config.pdu_size);
      driver_out = std::make_unique<DriverProtocol>(kernel, stack.get(),
                                                    adapter_out.get(), relay->out_vci);
      relay_proto->set_below(udp_out.get());
      udp_out->set_below(ip_out.get());
      udp_out->SetDefaultPorts(1000, relay->out_port);
      ip_out->set_below(driver_out.get());
      WireTransmit(driver_out.get());
      break;
    }
  }
}

void SimHost::EnableRings(EventLoop* loop, const RingConfig& cfg) {
  if (ring_hub != nullptr) {
    ring_hub->set_default_config(cfg);
    return;
  }
  ring_hub = std::make_unique<RingHub>(&machine, &fsys, &rpc, loop, cfg,
                                       /*auto_create=*/true);
  stack->EnableRings(ring_hub.get());
  fsys.SetNoticeTransport(ring_hub.get());
}

void SimHost::WireTransmit(DriverProtocol* out_driver) {
  out_driver->set_on_transmit(
      [this](std::vector<std::uint8_t> payload, std::uint32_t out_vci) {
        (void)out_vci;
        staged.push_back(StagedPdu{std::move(payload), machine.clock().Now()});
      });
}

SinkProtocol* SimHost::AddFlowEndpoint(std::uint32_t flow_vci,
                                       std::uint16_t flow_port,
                                       std::size_t index) {
  Domain* kernel = &machine.kernel();
  Domain* app = config.placement == StackPlacement::kKernelOnly
                    ? kernel
                    : machine.CreateDomain("app-flow" + std::to_string(index));
  auto flow_sink = std::make_unique<SinkProtocol>(app, stack.get());
  SinkProtocol* raw = flow_sink.get();
  extra_sinks_.push_back(std::move(flow_sink));
  udp->Bind(flow_port, raw);
  if (config.cached) {
    std::vector<DomainId> data_hops;
    AppendHop(&data_hops, kernel->id());
    AppendHop(&data_hops, udp->domain()->id());
    AppendHop(&data_hops, app->id());
    const PathId data_path = fsys.paths().Register(data_hops);
    adapter.RegisterVci(flow_vci, data_path);
  }
  return raw;
}

}  // namespace fbufs
