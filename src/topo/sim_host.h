// One simulated host: a complete machine (own clock, VM, fbuf system, IPC,
// protocol stack, Osiris adapter) playing one of three roles in a topology.
//
//   * kSender   — test source -> UDP -> IP -> driver -> adapter (the paper's
//                 transmitting DecStation);
//   * kReceiver — adapter -> driver -> IP -> UDP -> sink (the receiving one);
//   * kRelay    — both at once on two adapters: PDUs arrive into fbufs on
//                 the in-board, climb to a relay protocol in an application
//                 domain, and are pushed straight back down a second stack
//                 onto the out-board. The forwarding is fbuf-to-fbuf: the
//                 relay only moves references (lazy transfer, bodies never
//                 mapped into the app domain), exercising the paper's cheap
//                 cross-domain forwarding claim for real.
//
// This is Testbed::Host factored out so arbitrary topologies (src/topo/
// topology.h) can instantiate hosts; the Testbed's two-host null modem is
// the trivial client.
#ifndef SRC_TOPO_SIM_HOST_H_
#define SRC_TOPO_SIM_HOST_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/ipc/dispatch.h"
#include "src/net/driver.h"
#include "src/net/osiris.h"
#include "src/proto/ip.h"
#include "src/proto/test_protocols.h"
#include "src/proto/udp.h"
#include "src/ring/ring_hub.h"
#include "src/sim/event_loop.h"

namespace fbufs {

// Where the stack's layers live (per host; both hosts are configured the
// same way, mirrored, as in the paper).
enum class StackPlacement {
  kKernelOnly,          // everything in the kernel (Fig 5 "kernel-kernel")
  kUserKernel,          // test protocol in a user domain ("user-user")
  kUserNetserverKernel  // UDP in a netserver domain ("user-netserver-user")
};

struct SimHostConfig {
  StackPlacement placement = StackPlacement::kUserKernel;
  std::uint64_t pdu_size = 16 * 1024;  // IP PDU (paper: 16 KB; 32 KB variant in §4)
  // Receiver-side reassembly buffers: cached per-VCI fbufs vs the uncached
  // fallback queue. Per the paper's footnote 5, uncached fbufs incur
  // additional cost only in the receiving host.
  bool cached = true;
  // Sender-side immutability: volatile vs secured-on-transfer. Non-volatile
  // fbufs cost only in the transmitting host (the receiver's originator is
  // the trusted kernel).
  bool volatile_fbufs = true;
  // Sender-side allocator caching (kept on even in the Figure 6
  // configuration; turn off to study a fully uncached sender).
  bool sender_cached = true;
  bool integrated = true;
  MachineConfig machine;  // cost model for all hosts
};

enum class HostRole { kSender, kReceiver, kRelay };

// How a relay host's outbound side is addressed.
struct RelayWiring {
  std::uint32_t out_vci = 0;   // VCI stamped on forwarded PDUs
  std::uint16_t out_port = 0;  // destination UDP port on the next host
};

// The relay's application-domain protocol: receives a reassembled datagram
// from the in-stack's UDP and pushes it unchanged down the out-stack. It
// never touches the body, so the proxy edges move fbuf references lazily —
// data pages are never mapped into the relay's app domain, let alone copied.
class RelayProtocol : public Protocol {
 public:
  RelayProtocol(Domain* domain, ProtocolStack* stack)
      : Protocol("relay", domain, stack) {}

  Status Push(Message) override { return Status::kInvalidArgument; }

  Status Pop(Message m) override {
    Machine& machine = *stack_->machine();
    LayerScope layer(machine.attribution(), CostDomain::kProto);
    ActorScope actor(machine.attribution(), domain()->id());
    machine.clock().Advance(machine.costs().proto_pdu_ns);
    m.ForEachExtent([this](const Extent& e) {
      if (e.fb != nullptr && first_extent_fbuf_ == nullptr) {
        first_extent_fbuf_ = e.fb;
      }
    });
    forwarded_++;
    bytes_forwarded_ += m.length();
    return SendDown(m);  // below() is the out-stack's UDP
  }

  bool touches_body() const override { return false; }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t bytes_forwarded() const { return bytes_forwarded_; }
  // First data-bearing fbuf of the most recent forward (pointer-identity
  // checks against the drivers' last_rx/last_tx fbufs).
  const Fbuf* first_extent_fbuf() const { return first_extent_fbuf_; }
  void reset_first_extent_fbuf() { first_extent_fbuf_ = nullptr; }

 private:
  std::uint64_t forwarded_ = 0;
  std::uint64_t bytes_forwarded_ = 0;
  const Fbuf* first_extent_fbuf_ = nullptr;
};

class SimHost {
 public:
  SimHost(const SimHostConfig& config, HostRole role, std::uint32_t vci,
          std::uint16_t port, const std::string& name,
          const RelayWiring* relay = nullptr);

  Machine machine;
  FbufSystem fsys;
  Rpc rpc;
  OsirisAdapter adapter;  // sender TX / receiver + relay RX
  // CPU lane 0 of the machine — the host CPU of the single-core model. The
  // multicore runner addresses lanes through machine.cpu_lane(i) directly.
  Resource& cpu;
  // Evented dispatch (multicore runs only): created by the TopologyRunner
  // when the host has more than one CPU lane.
  std::unique_ptr<Dispatcher> dispatcher;
  // Transfer rings (opt-in): batched descriptor handoffs replace per-delivery
  // synchronous crossings on every (src, dst) pair the stack touches, and
  // dealloc notices ride the rings instead of the piggyback list.
  std::unique_ptr<RingHub> ring_hub;
  std::unique_ptr<ProtocolStack> stack;
  // Sender side uses source/udp/ip/driver; receiver driver/ip/udp/sink.
  std::unique_ptr<SourceProtocol> source;
  std::unique_ptr<UdpProtocol> udp;
  std::unique_ptr<IpProtocol> ip;
  std::unique_ptr<DriverProtocol> driver;
  std::unique_ptr<SinkProtocol> sink;
  std::uint32_t vci = 0;
  HostRole role = HostRole::kSender;
  SimHostConfig config;

  // Relay-only: the outbound board and its stack (relay -> udp_out ->
  // ip_out -> driver_out -> adapter_out).
  std::unique_ptr<OsirisAdapter> adapter_out;
  std::unique_ptr<RelayProtocol> relay_proto;
  std::unique_ptr<UdpProtocol> udp_out;
  std::unique_ptr<IpProtocol> ip_out;
  std::unique_ptr<DriverProtocol> driver_out;

  // PDUs handed to the adapter by the (outbound) driver, awaiting DMA
  // scheduling.
  struct StagedPdu {
    std::vector<std::uint8_t> payload;
    SimTime ready = 0;
  };
  std::deque<StagedPdu> staged;

  // Receiver-side endpoint for an additional flow: a sink of its own (in a
  // fresh application domain unless everything runs in the kernel), demuxed
  // by UDP port; the adapter demuxes the VCI into the flow's own cached data
  // path. |index| names the domain ("app-flow<index>").
  SinkProtocol* AddFlowEndpoint(std::uint32_t flow_vci, std::uint16_t flow_port,
                                std::size_t index);

  // Switches this host's cross-domain deliveries and dealloc notices onto
  // transfer rings draining through |loop|. Call after any dispatcher is
  // attached; idempotent per host (subsequent calls only update the config).
  void EnableRings(EventLoop* loop, const RingConfig& cfg = RingConfig{});

  // The adapter feeding a leg that leaves this host.
  OsirisAdapter& out_adapter() {
    return role == HostRole::kRelay ? *adapter_out : adapter;
  }

 private:
  // Installs the driver -> staged hand-off on the outbound driver.
  void WireTransmit(DriverProtocol* out_driver);

  std::vector<std::unique_ptr<SinkProtocol>> extra_sinks_;
};

}  // namespace fbufs

#endif  // SRC_TOPO_SIM_HOST_H_
