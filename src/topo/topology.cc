#include "src/topo/topology.h"

#include <utility>

namespace fbufs {

SwitchNode::SwitchNode(std::string name, std::vector<SwitchPortConfig> ports)
    : name_(std::move(name)) {
  ports_.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    ports_.emplace_back(ports[i],
                        "switch/" + name_ + "/port" + std::to_string(i));
  }
}

void SwitchNode::Route(std::uint32_t vci, std::size_t port) {
  assert(port < ports_.size());
  routes_[vci] = port;
}

SwitchNode::Outcome SwitchNode::Forward(std::uint32_t vci, std::uint64_t bytes,
                                        SimTime arrival) {
  auto it = routes_.find(vci);
  if (it == routes_.end()) {
    unroutable_++;
    return {arrival, true};
  }
  Port& p = ports_[it->second];
  // PDUs whose transmission completed by |arrival| have left the queue.
  while (!p.in_flight.empty() && p.in_flight.front().done <= arrival) {
    auto depth = p.vci_depth.find(p.in_flight.front().vci);
    if (depth != p.vci_depth.end() && --depth->second == 0) {
      p.vci_depth.erase(depth);
    }
    p.in_flight.pop_front();
  }
  if (p.in_flight.size() >= p.cfg.queue_pdus) {
    p.drops++;
    return {arrival, true};
  }
  const SimTime serialize =
      static_cast<SimTime>(static_cast<double>(bytes) * 8.0 * 1000.0 / p.cfg.mbps) +
      p.cfg.per_pdu_ns;
  const SimTime done = p.line.Acquire(arrival, serialize);
  p.in_flight.push_back({done, vci});
  p.forwarded++;
  const std::size_t depth_after = ++p.vci_depth[vci];
  bool marked = false;
  if (ecn_threshold_pdus_ > 0 && depth_after > ecn_threshold_pdus_) {
    marked = true;
    p.ecn_marks++;
  }
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("switch." + name_ + ".queue_depth")
        ->Observe(p.in_flight.size());
  }
  return {done, false, marked};
}

std::uint64_t SwitchNode::drops_total() const {
  std::uint64_t n = unroutable_;
  for (const Port& p : ports_) {
    n += p.drops;
  }
  return n;
}

std::uint64_t SwitchNode::ecn_marks_total() const {
  std::uint64_t n = 0;
  for (const Port& p : ports_) {
    n += p.ecn_marks;
  }
  return n;
}

NodeId Topology::AddHost(std::unique_ptr<SimHost> host) {
  const NodeId id = hosts_.size();
  hosts_.push_back(std::move(host));
  switches_.push_back(nullptr);
  return id;
}

NodeId Topology::AddSwitch(const std::string& name,
                           std::vector<SwitchPortConfig> ports) {
  const NodeId id = hosts_.size();
  hosts_.push_back(nullptr);
  switches_.push_back(std::make_unique<SwitchNode>(name, std::move(ports)));
  return id;
}

LinkId Topology::AddLink(NodeId from, NodeId to, const CostParams* costs,
                         std::string name, double mbps) {
  const LinkId id = links_.size();
  links_.push_back(std::make_unique<TopoLink>(costs, std::move(name), mbps, from,
                                              to, seed_ ^ (0x9e3779b9u * (id + 1))));
  return id;
}

}  // namespace fbufs
