#include "src/topo/topo_runner.h"

#include <algorithm>
#include <cassert>

namespace fbufs {

std::size_t TopologyRunner::AddFlow(std::vector<Leg> legs, SinkProtocol* sink,
                                    std::uint32_t window) {
  assert(!legs.empty());
  Flow flow;
  flow.legs = std::move(legs);
  flow.sink = sink;
  flow.window = window;
  for (std::size_t i = 0; i < flow.legs.size(); ++i) {
    flow.reassemblers.push_back(std::make_unique<AtmReassembler>());
  }
  flows_.push_back(std::move(flow));
  return flows_.size() - 1;
}

SimTime TopologyRunner::Key(SimTime t) const {
  // Event keys order dispatch; handlers derive simulated times from host
  // clocks and resource busy-untils. A computed time can lie behind the
  // loop's dispatch floor (host timelines are only partially ordered), so
  // clamp the key — never the value.
  return std::max(t, loop_->Now());
}

void TopologyRunner::ScheduleSenderStep(std::size_t flow) {
  FlowRun& run = runs_[flow];
  if (step_pending_[flow] || run.failed || run.next >= run.total) {
    return;
  }
  step_pending_[flow] = true;
  SimHost& tx = TxHost(flow);
  loop_->Schedule(Key(tx.machine.cpu_clock(run.tx_cpu).Now()),
                  "send/" + std::to_string(flow) + "/" + std::to_string(run.next),
                  [this, flow] {
                    step_pending_[flow] = false;
                    SenderStep(flow);
                  });
}

void TopologyRunner::ParkFlow(std::size_t flow, FlowBackoff& backoff,
                              const std::string& label, EventLoop::Handler retry) {
  FlowRun& run = runs_[flow];
  const auto delay = backoff.Park(loop_->Now());
  if (!delay.has_value()) {
    // No progress for the whole horizon: the watchdog gives up so the run
    // drains and the §3.3 invariants can be audited over what remains.
    run.stall_failed = true;
    run.failed = true;
    return;
  }
  run.parks++;
  loop_->Schedule(Key(loop_->Now() + *delay), label, std::move(retry));
}

void TopologyRunner::SenderStep(std::size_t flow) {
  FlowRun& run = runs_[flow];
  if (run.failed || run.next >= run.total) {
    return;
  }
  const std::uint32_t window = flows_[flow].window;
  SimHost& tx = TxHost(flow);
  // The whole step runs on the flow's send lane (a no-op on 1-CPU hosts).
  CpuScope cpu_scope(tx.machine, run.tx_cpu);
  SimClock& tx_clock = tx.machine.cpu_clock(run.tx_cpu);
  const std::uint64_t m = run.next;

  // Sliding-window flow control: do not run more than |window| messages
  // ahead of the receiver's acknowledgements. If the ack is still in
  // flight, stay quiescent; its arrival reschedules this step.
  if (window > 0 && m >= window && !run.acked[m - window]) {
    return;
  }

  if (m == run.traffic.warmup) {
    // Measurement starts here: pipeline full, fbuf caches warm.
    run.t0_tx = tx_clock.Now();
    run.tx_busy = 0;
  }
  if (window > 0 && m >= window) {
    tx_clock.AdvanceToAtLeast(run.ack_time[m - window]);
  }

  const SimTime tx_before = tx_clock.Now();
  const Status st = tx.source->SendOne(run.traffic.bytes);
  if (!Ok(st)) {
    if (backpressure_on_ && IsBackpressure(st)) {
      // Pool/quota pressure: park and retry this same message instead of
      // failing the flow — memory may free up (or the watchdog gives up).
      ParkFlow(flow, run.tx_backoff,
               "park/" + std::to_string(flow) + "/" + std::to_string(m),
               [this, flow] { SenderStep(flow); });
      return;
    }
    run.failed = true;
    return;
  }
  if (backpressure_on_) {
    run.tx_backoff.Progress(loop_->Now());
  }
  const SimTime tx_after = tx_clock.Now();
  tx.machine.cpu_lane(run.tx_cpu).RecordBusy(tx_before, tx_after);
  run.tx_busy += tx_after - tx_before;
  run.tx_end = tx_after;
  run.next++;

  // The send staged PDUs with the adapter (plus anything staged by hand
  // before the run, drained FIFO and attributed to this message). Pipe each
  // through the first leg of the route and schedule its arrival.
  run.pdus_left[m] = tx.staged.size();
  if (tx.staged.empty()) {
    // Nothing crossed the wire (degenerate send): acknowledge immediately
    // so the window never deadlocks.
    run.completed++;
    if (m + 1 == run.traffic.warmup) {
      run.t0_rx = RxHost(flow).machine.cpu_clock(run.rx_cpu).Now();
      run.rx_busy = 0;
    }
    run.ack_time[m] = tx_clock.Now();
    run.acked[m] = true;
  } else {
    while (!tx.staged.empty()) {
      SimHost::StagedPdu pdu = std::move(tx.staged.front());
      tx.staged.pop_front();
      RunLeg(flow, 0, m, std::move(pdu));
      if (run.failed) {
        return;
      }
    }
  }
  ScheduleSenderStep(flow);
}

void TopologyRunner::RunLeg(std::size_t flow, std::size_t leg_i,
                            std::uint64_t msg, SimHost::StagedPdu pdu) {
  FlowRun& run = runs_[flow];
  Flow& f = flows_[flow];
  const Leg& leg = f.legs[leg_i];
  SimHost& tx = *topo_->host(leg.tx);

  // The PDU really crosses as ATM cells: segment with the AAL5 trailer,
  // reassemble (length + CRC verified) on the receiving board. The serial
  // resources are acquired in pipeline order; each acquisition advances
  // that resource's busy-until, never a host clock.
  const std::vector<AtmCell> cells = AtmSegmenter::Segment(pdu.payload, leg.vci);
  const std::uint64_t wire_bytes = cells.size() * AtmCell::kPayloadBytes;
  SimTime t = tx.out_adapter().TxDma(wire_bytes, pdu.ready);
  for (const Hop& hop : leg.hops) {
    const TopoLink::Outcome wire_out = topo_->link(hop.link).Transmit(wire_bytes, t);
    t = wire_out.arrival;
    if (wire_out.dropped) {
      PduDropped(flow, msg);
      return;
    }
    if (hop.via_switch != kNoNode) {
      const SwitchNode::Outcome fwd =
          topo_->switch_at(hop.via_switch)->Forward(leg.vci, wire_bytes, t);
      if (fwd.dropped) {
        PduDropped(flow, msg);
        return;
      }
      t = fwd.done;
    }
  }
  SimHost& rx = *topo_->host(leg.rx);
  const SimTime rx_dma_done = rx.adapter.RxDma(wire_bytes, t);

  std::vector<std::uint8_t> reassembled;
  Status cell_st = Status::kExhausted;
  for (const AtmCell& cell : cells) {
    cell_st = f.reassemblers[leg_i]->Push(cell, &reassembled);
  }
  if (!Ok(cell_st)) {
    run.failed = true;  // CRC failure cannot happen on these links
    return;
  }

  if (leg_i + 1 == f.legs.size()) {
    loop_->Schedule(
        Key(rx_dma_done),
        "deliver/" + std::to_string(flow) + "/" + std::to_string(msg),
        [this, flow, msg, payload = std::move(reassembled), rx_dma_done]() mutable {
          DeliverEvent(flow, msg, std::move(payload), rx_dma_done);
        });
  } else {
    loop_->Schedule(
        Key(rx_dma_done),
        "relay/" + std::to_string(flow) + "/" + std::to_string(msg),
        [this, flow, leg_i, msg, payload = std::move(reassembled),
         rx_dma_done]() mutable {
          RelayEvent(flow, leg_i, msg, std::move(payload), rx_dma_done);
        });
  }
}

void TopologyRunner::DeliverEvent(std::size_t flow, std::uint64_t msg,
                                  std::vector<std::uint8_t> payload,
                                  SimTime rx_dma_done) {
  FlowRun& run = runs_[flow];
  if (run.failed) {
    return;
  }
  SimHost& rx = RxHost(flow);
  if (rx.machine.num_cpus() > 1) {
    DeliverMulticore(flow, msg, std::move(payload), rx_dma_done);
    return;
  }
  SimClock& rx_clock = rx.machine.clock();
  // The receiving CPU picks the PDU up no earlier than its DMA completion;
  // it may already be past that point serving another delivery.
  rx_clock.AdvanceToAtLeast(rx_dma_done);

  const SimTime rx_before = rx_clock.Now();
  const Status st = rx.driver->DeliverPdu(payload, flows_[flow].legs.back().vci,
                                          rx.config.volatile_fbufs);
  if (!Ok(st)) {
    if (backpressure_on_ && IsBackpressure(st)) {
      // The receiver could not buffer the PDU (its pool/quota is the
      // bottleneck): park the delivery and retry with the same payload.
      ParkFlow(flow, run.rx_backoff,
               "rxpark/" + std::to_string(flow) + "/" + std::to_string(msg),
               [this, flow, msg, payload = std::move(payload), rx_dma_done]() mutable {
                 DeliverEvent(flow, msg, std::move(payload), rx_dma_done);
               });
      return;
    }
    run.failed = true;
    return;
  }
  if (backpressure_on_) {
    run.rx_backoff.Progress(loop_->Now());
  }
  const SimTime rx_after = rx_clock.Now();
  rx.cpu.RecordBusy(rx_before, rx_after);
  run.rx_busy += rx_after - rx_before;
  run.rx_end = rx_after;

  assert(run.pdus_left[msg] > 0);
  if (--run.pdus_left[msg] == 0) {
    CompleteMessage(flow, msg);
  }
}

void TopologyRunner::DeliverMulticore(std::size_t flow, std::uint64_t msg,
                                      std::vector<std::uint8_t> payload,
                                      SimTime rx_dma_done) {
  FlowRun& run = runs_[flow];
  SimHost& rx = RxHost(flow);
  assert(rx.dispatcher != nullptr && "multicore receiver without a dispatcher");
  // RSS steering: every PDU of this flow is serviced on run.rx_cpu. The
  // dispatch queue serializes it behind other flows hashed to the same lane;
  // the lane's RecordBusy is performed by the queue itself.
  rx.dispatcher->RunOnCpu(
      run.rx_cpu, rx_dma_done,
      "deliver/" + std::to_string(flow) + "/" + std::to_string(msg),
      [this, flow, msg, payload = std::move(payload), rx_dma_done]() mutable {
        FlowRun& r = runs_[flow];
        if (r.failed) {
          return;
        }
        SimHost& rxh = RxHost(flow);
        SimClock& lane_clock = rxh.machine.clock();  // active lane = rx_cpu
        const SimTime rx_before = lane_clock.Now();
        const Status st = rxh.driver->DeliverPdu(
            payload, flows_[flow].legs.back().vci, rxh.config.volatile_fbufs);
        if (!Ok(st)) {
          if (backpressure_on_ && IsBackpressure(st)) {
            ParkFlow(flow, r.rx_backoff,
                     "rxpark/" + std::to_string(flow) + "/" + std::to_string(msg),
                     [this, flow, msg, payload = std::move(payload),
                      rx_dma_done]() mutable {
                       DeliverEvent(flow, msg, std::move(payload), rx_dma_done);
                     });
            return;
          }
          r.failed = true;
          return;
        }
        if (backpressure_on_) {
          r.rx_backoff.Progress(loop_->Now());
        }
        const SimTime rx_after = lane_clock.Now();
        r.rx_busy += rx_after - rx_before;
        r.rx_end = rx_after;
        assert(r.pdus_left[msg] > 0);
        if (--r.pdus_left[msg] == 0) {
          CompleteMessage(flow, msg);
        }
      });
}

void TopologyRunner::RelayEvent(std::size_t flow, std::size_t leg_i,
                                std::uint64_t msg,
                                std::vector<std::uint8_t> payload,
                                SimTime rx_dma_done) {
  FlowRun& run = runs_[flow];
  if (run.failed) {
    return;
  }
  const Leg& leg = flows_[flow].legs[leg_i];
  SimHost& relay = *topo_->host(leg.rx);
  // RSS: a multicore relay services this leg's VCI on a fixed lane.
  const std::uint32_t relay_cpu = RssSteer(leg.vci, relay.machine.num_cpus());
  CpuScope cpu_scope(relay.machine, relay_cpu);
  SimClock& clock = relay.machine.cpu_clock(relay_cpu);
  clock.AdvanceToAtLeast(rx_dma_done);

  const SimTime before = clock.Now();
  // Into fbufs, up to the relay protocol, and straight back down onto the
  // second adapter — the forwarded PDUs land in relay.staged.
  const Status st =
      relay.driver->DeliverPdu(payload, leg.vci, relay.config.volatile_fbufs);
  if (!Ok(st)) {
    run.failed = true;
    return;
  }
  const SimTime after = clock.Now();
  relay.machine.cpu_lane(relay_cpu).RecordBusy(before, after);

  // This leg's PDU is consumed; whatever the out-driver staged continues on
  // the next leg under the same message. The consumed PDU is decremented
  // only after the new ones are counted, so the tally can't hit zero while
  // forwarded PDUs are still in flight.
  run.pdus_left[msg] += relay.staged.size();
  while (!relay.staged.empty()) {
    SimHost::StagedPdu pdu = std::move(relay.staged.front());
    relay.staged.pop_front();
    RunLeg(flow, leg_i + 1, msg, std::move(pdu));
    if (run.failed) {
      return;
    }
  }
  assert(run.pdus_left[msg] > 0);
  if (--run.pdus_left[msg] == 0) {
    CompleteMessage(flow, msg);
  }
}

void TopologyRunner::PduDropped(std::size_t flow, std::uint64_t msg) {
  FlowRun& run = runs_[flow];
  run.dropped++;
  // The dropped PDU still completes the message's flow-control accounting:
  // the window is a credit scheme, not a reliability protocol, and a lossy
  // run must drain rather than hang (goodput reports the shortfall).
  assert(run.pdus_left[msg] > 0);
  if (--run.pdus_left[msg] == 0) {
    CompleteMessage(flow, msg);
  }
}

void TopologyRunner::CompleteMessage(std::size_t flow, std::uint64_t msg) {
  FlowRun& run = runs_[flow];
  SimHost& rx = RxHost(flow);
  SimClock& rx_clock = rx.machine.cpu_clock(run.rx_cpu);
  if (msg + 1 == run.traffic.warmup) {
    // The last warmup message is fully delivered: the receiver's
    // measurement window starts now.
    run.t0_rx = rx_clock.Now();
    run.rx_busy = 0;
  }
  // The acknowledgement rides back over the (otherwise idle) reverse
  // channel: one cell's worth of latency.
  const SimTime ack_t = rx_clock.Now() + rx.machine.costs().WireTime(48);
  run.completed++;
  loop_->Schedule(Key(ack_t),
                  "ack/" + std::to_string(flow) + "/" + std::to_string(msg),
                  [this, flow, msg, ack_t] {
                    FlowRun& r = runs_[flow];
                    r.ack_time[msg] = ack_t;
                    r.acked[msg] = true;
                    ScheduleSenderStep(flow);
                  });
}

MultiResult TopologyRunner::RunFlows(const std::vector<FlowTraffic>& traffic) {
  MultiResult mr;
  mr.flows.resize(flows_.size());

  runs_.assign(flows_.size(), FlowRun{});
  step_pending_.assign(flows_.size(), false);

  // Multicore hosts get an evented dispatcher (receive processing and RPCs
  // queue on their RSS lane). Single-CPU hosts keep the synchronous path —
  // no dispatcher, no extra events, byte-identical schedules.
  for (NodeId n = 0; n < topo_->node_count(); ++n) {
    SimHost* h = topo_->is_switch(n) ? nullptr : topo_->host(n);
    if (h != nullptr && h->machine.num_cpus() > 1 && h->dispatcher == nullptr) {
      h->dispatcher = std::make_unique<Dispatcher>(&h->machine, loop_);
      h->rpc.AttachDispatcher(h->dispatcher.get());
    }
  }
  // Resets every CPU lane of |h| at its own clock (multicore lanes run on
  // independent timelines; with one lane this is the historical reset).
  auto reset_cpus = [](SimHost* h) {
    for (std::uint32_t c = 0; c < h->machine.num_cpus(); ++c) {
      CpuLane& lane = h->machine.cpu_lane(c);
      lane.ResetAccounting(lane.clock().Now());
    }
  };

  // Restart resource accounting: utilization is reported over this run
  // (warmup included), not the topology's lifetime.
  SimTime run_start = 0;
  bool run_start_set = false;
  for (NodeId n = 0; n < topo_->node_count(); ++n) {
    if (topo_->is_switch(n)) {
      SwitchNode* sw = topo_->switch_at(n);
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        Resource& r = sw->port_resource(p);
        r.ResetAccounting(r.busy_until());
      }
      continue;
    }
    SimHost* h = topo_->host(n);
    if (h == nullptr) {
      continue;
    }
    switch (h->role) {
      case HostRole::kReceiver: {
        const SimTime now = h->machine.clock().Now();
        if (!run_start_set || now < run_start) {
          run_start = now;
          run_start_set = true;
        }
        reset_cpus(h);
        h->adapter.rx_dma().ResetAccounting(h->adapter.rx_dma().busy_until());
        break;
      }
      case HostRole::kRelay:
        reset_cpus(h);
        h->adapter.rx_dma().ResetAccounting(h->adapter.rx_dma().busy_until());
        h->adapter_out->tx_dma().ResetAccounting(
            h->adapter_out->tx_dma().busy_until());
        break;
      case HostRole::kSender:
        break;  // reset per flow below
    }
  }
  for (LinkId l = 0; l < topo_->link_count(); ++l) {
    Resource& w = topo_->link(l).wire();
    w.ResetAccounting(w.busy_until());
  }

  bool any = false;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    FlowRun& run = runs_[i];
    if (i < traffic.size()) {
      run.traffic = traffic[i];
    }
    run.total = run.traffic.warmup + run.traffic.messages;
    if (backpressure_on_) {
      run.tx_backoff.policy = bp_policy_;
      run.tx_backoff.stall_horizon = bp_horizon_;
      run.tx_backoff.last_progress = loop_->Now();
      run.rx_backoff = run.tx_backoff;
    }
    SimHost& tx = TxHost(i);
    SimHost& rxh = RxHost(i);
    // RSS steering: the flow's first-leg VCI picks its send lane, the last
    // leg's VCI its receive lane (always lane 0 on single-CPU machines).
    run.tx_cpu = RssSteer(flows_[i].legs.front().vci, tx.machine.num_cpus());
    run.rx_cpu = RssSteer(flows_[i].legs.back().vci, rxh.machine.num_cpus());
    reset_cpus(&tx);
    tx.out_adapter().tx_dma().ResetAccounting(
        tx.out_adapter().tx_dma().busy_until());
    run.t0_tx = tx.machine.cpu_clock(run.tx_cpu).Now();
    run.t0_rx = rxh.machine.cpu_clock(run.rx_cpu).Now();
    run.tx_end = run.t0_tx;
    run.rx_end = run.t0_rx;
    run.sink_bytes_start = flows_[i].sink->bytes_received();
    if (run.total == 0) {
      continue;
    }
    run.ack_time.assign(run.total, 0);
    run.acked.assign(run.total, false);
    run.pdus_left.assign(run.total, 0);
    if (!run_start_set || run.t0_tx < run_start) {
      run_start = run_start_set ? std::min(run_start, run.t0_tx) : run.t0_tx;
      run_start_set = true;
    }
    any = true;
    ScheduleSenderStep(i);
  }

  if (any) {
    loop_->Run();
  }

  SimTime global_end = run_start;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    FlowRun& run = runs_[i];
    FlowResult& fr = mr.flows[i];
    fr.messages = run.traffic.messages;
    fr.bytes = run.traffic.messages * run.traffic.bytes;
    fr.pdus_dropped = run.dropped;
    fr.failed = run.failed;
    fr.completed_messages = run.completed;
    fr.stalled = !run.failed && run.total > 0 && run.completed < run.total;
    fr.backpressure_parks = run.parks;
    fr.stall_failed = run.stall_failed;
    mr.failed = mr.failed || run.failed;
    if (run.total == 0 || run.failed) {
      continue;
    }
    const SimTime tx_elapsed = run.tx_end - run.t0_tx;
    const SimTime rx_elapsed = run.rx_end > run.t0_rx ? run.rx_end - run.t0_rx : 0;
    SimTime wire_tail = 0;
    for (const Leg& leg : flows_[i].legs) {
      for (const Hop& hop : leg.hops) {
        const SimTime bu = topo_->link(hop.link).busy_until();
        if (bu > run.t0_tx) {
          wire_tail = std::max(wire_tail, bu - run.t0_tx);
        }
      }
    }
    fr.elapsed_ns = std::max({tx_elapsed, rx_elapsed, wire_tail});
    if (fr.elapsed_ns > 0) {
      fr.throughput_mbps = static_cast<double>(fr.bytes) * 8.0 * 1000.0 /
                           static_cast<double>(fr.elapsed_ns);
      fr.sender_cpu_load = static_cast<double>(run.tx_busy) /
                           static_cast<double>(fr.elapsed_ns);
    }
    // Goodput: bytes that actually reached the sink, warmup excluded (loss
    // may eat into warmup; the shortfall is attributed to the measured part
    // only when warmup was fully delivered).
    const std::uint64_t delivered_total =
        flows_[i].sink->bytes_received() - run.sink_bytes_start;
    const std::uint64_t warmup_bytes = run.traffic.warmup * run.traffic.bytes;
    fr.delivered_bytes =
        delivered_total > warmup_bytes ? delivered_total - warmup_bytes : 0;
    if (fr.elapsed_ns > 0) {
      fr.goodput_mbps = static_cast<double>(fr.delivered_bytes) * 8.0 * 1000.0 /
                        static_cast<double>(fr.elapsed_ns);
    }
    global_end = std::max({global_end, run.tx_end, run.rx_end});
    mr.elapsed_ns = std::max(mr.elapsed_ns, fr.elapsed_ns);
  }
  for (LinkId l = 0; l < topo_->link_count(); ++l) {
    global_end = std::max(global_end, topo_->link(l).busy_until());
  }
  for (NodeId n = 0; n < topo_->node_count(); ++n) {
    if (topo_->is_switch(n)) {
      SwitchNode* sw = topo_->switch_at(n);
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        global_end = std::max(global_end, sw->port_resource(p).busy_until());
      }
      continue;
    }
    SimHost* h = topo_->host(n);
    if (h == nullptr) {
      continue;
    }
    global_end = std::max({global_end, h->adapter.tx_dma().busy_until(),
                           h->adapter.rx_dma().busy_until()});
    if (h->adapter_out != nullptr) {
      global_end = std::max({global_end, h->adapter_out->tx_dma().busy_until(),
                             h->adapter_out->rx_dma().busy_until()});
    }
  }

  std::uint64_t total_bytes = 0;
  SimTime total_rx_busy = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    total_bytes += mr.flows[i].bytes;
    total_rx_busy += runs_[i].rx_busy;
  }
  // Legacy single-flow semantics: the receiver's load over the same window
  // the flow's throughput was computed over. With several flows the window
  // is the longest flow's.
  if (mr.elapsed_ns > 0) {
    mr.receiver_cpu_load = static_cast<double>(total_rx_busy) /
                           static_cast<double>(mr.elapsed_ns);
  }
  const SimTime window = global_end > run_start ? global_end - run_start : 0;
  if (window > 0) {
    mr.aggregate_mbps = static_cast<double>(total_bytes) * 8.0 * 1000.0 /
                        static_cast<double>(window);
  }

  auto report = [&](const Resource& r) {
    ResourceUse use;
    use.name = r.name();
    use.busy_ns = r.busy_ns();
    if (window > 0) {
      // A saturated resource's last occupancy can overhang the window close
      // (Acquire books the whole occupancy up front); trim it and clamp so a
      // bottleneck reads as ~1.0, never more.
      SimTime busy = r.busy_ns();
      if (r.busy_until() > global_end) {
        const SimTime overhang = r.busy_until() - global_end;
        busy = overhang >= busy ? 0 : busy - overhang;
      }
      const double u = static_cast<double>(busy) / static_cast<double>(window);
      use.utilization = u > 1.0 ? 1.0 : u;
    }
    mr.resources.push_back(std::move(use));
  };
  // A multicore host reports every CPU lane (each is its own resource row);
  // single-CPU hosts report the historical "cpu/<host>" row.
  auto report_cpus = [&](SimHost* h) {
    for (std::uint32_t c = 0; c < h->machine.num_cpus(); ++c) {
      report(h->machine.cpu_lane(c));
    }
  };
  // Report order: sender-side resources per flow, then the fabric (switch
  // ports, link wires), then relay and receiver hosts. The one-link testbed
  // reduces to the historical order: sender cpu/tx-dma, wire, rx-dma, cpu.
  std::vector<bool> tx_reported(topo_->node_count(), false);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const NodeId n = flows_[i].legs.front().tx;
    if (tx_reported[n]) {
      continue;
    }
    tx_reported[n] = true;
    SimHost* tx = topo_->host(n);
    report_cpus(tx);
    report(tx->out_adapter().tx_dma());
  }
  for (NodeId n = 0; n < topo_->node_count(); ++n) {
    if (topo_->is_switch(n)) {
      SwitchNode* sw = topo_->switch_at(n);
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        report(sw->port_resource(p));
      }
    }
  }
  for (LinkId l = 0; l < topo_->link_count(); ++l) {
    report(topo_->link(l).wire());
  }
  for (NodeId n = 0; n < topo_->node_count(); ++n) {
    SimHost* h = topo_->is_switch(n) ? nullptr : topo_->host(n);
    if (h != nullptr && h->role == HostRole::kRelay) {
      report_cpus(h);
      report(h->adapter.rx_dma());
      report(h->adapter_out->tx_dma());
    }
  }
  for (NodeId n = 0; n < topo_->node_count(); ++n) {
    SimHost* h = topo_->is_switch(n) ? nullptr : topo_->host(n);
    if (h != nullptr && h->role == HostRole::kReceiver) {
      report(h->adapter.rx_dma());
      report_cpus(h);
    }
  }
  return mr;
}

}  // namespace fbufs
