// Topology fabric: a graph of nodes (hosts, ATM switches) and unidirectional
// links on the event engine.
//
// Every link's wire and every switch output port is a Resource with its own
// bandwidth and utilization accounting, so when flows converge the schedule
// itself shows where the bottleneck sits (wire vs switch port vs receiver
// DMA vs receiver CPU). Links support deterministic loss injection: each
// link draws from its own SplitMix64 stream (seeded from the topology seed
// and the link id), so traces replay byte-identically and toggling loss on
// one link never perturbs another's stream.
//
// Switches forward per-VCI to an output port with a bounded queue measured
// in PDUs: a PDU arriving at a full queue is dropped (counted, observable),
// never stalled — exactly how an output-queued ATM switch sheds load.
#ifndef SRC_TOPO_TOPOLOGY_H_
#define SRC_TOPO_TOPOLOGY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/sim/rng.h"
#include "src/obs/metrics.h"
#include "src/topo/sim_host.h"

namespace fbufs {

using NodeId = std::size_t;
using LinkId = std::size_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

// A unidirectional link: a NullModemLink wire plus loss injection.
class TopoLink {
 public:
  TopoLink(const CostParams* costs, std::string name, double mbps, NodeId from,
           NodeId to, std::uint64_t seed)
      : wire_(costs, std::move(name), mbps), from_(from), to_(to), rng_(seed) {}

  struct Outcome {
    SimTime arrival = 0;
    bool dropped = false;
  };

  // The PDU occupies the wire whether or not it is then lost (the bits were
  // serialized either way); a drop is decided at the far end. The Rng is
  // only consulted while loss is enabled, so a loss-free link's stream never
  // advances and enabling loss elsewhere cannot shift it.
  Outcome Transmit(std::uint64_t bytes, SimTime ready) {
    const SimTime arrival = wire_.Transmit(bytes, ready);
    if (drop_percent_ > 0 && rng_.Chance(drop_percent_, 100)) {
      drops_++;
      return {arrival, true};
    }
    return {arrival, false};
  }

  // Saturates at 100: a drop probability beyond certainty is a script bug,
  // not a heavier loss regime.
  void set_drop_percent(std::uint32_t p) { drop_percent_ = p > 100 ? 100 : p; }
  std::uint32_t drop_percent() const { return drop_percent_; }
  std::uint64_t drops() const { return drops_; }

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  NullModemLink& wire_link() { return wire_; }
  Resource& wire() { return wire_.wire(); }
  SimTime busy_until() const { return wire_.busy_until(); }

 private:
  NullModemLink wire_;
  NodeId from_;
  NodeId to_;
  Rng rng_;
  std::uint32_t drop_percent_ = 0;
  std::uint64_t drops_ = 0;
};

struct SwitchPortConfig {
  double mbps = 516.0;          // output line rate
  std::size_t queue_pdus = 32;  // bounded output queue, in PDUs
  SimTime per_pdu_ns = 0;       // fixed forwarding cost per PDU
};

// An output-queued ATM switch: per-VCI routing to an output port whose line
// is a serial Resource. Queue occupancy is tracked analytically as the
// completion times of PDUs not yet fully transmitted; arrival at a full
// queue drops the PDU.
class SwitchNode {
 public:
  SwitchNode(std::string name, std::vector<SwitchPortConfig> ports);

  void Route(std::uint32_t vci, std::size_t port);

  struct Outcome {
    SimTime done = 0;
    bool dropped = false;
    // ECN: this PDU saw its VCI's queue standing above the marking
    // threshold. Fbufs are immutable in flight, so the mark travels
    // out-of-band with the delivery — the receiving transport echoes it in
    // its next ack (Transport::MarkCongestionExperienced).
    bool ecn_marked = false;
  };

  // A PDU fully received at |arrival| leaves the switch at the returned
  // time, or is dropped (unroutable VCI or full output queue).
  Outcome Forward(std::uint32_t vci, std::uint64_t bytes, SimTime arrival);

  // ECN marking threshold, in PDUs of one VCI standing in one output queue.
  // Zero (the default) disables marking: the switch sheds by dropping only,
  // which is what the fixed-window incast collapse measures. The threshold
  // is deliberately per-VCI, not per-port: one incast victim flow must not
  // get every crossing flow marked.
  void set_ecn_threshold(std::size_t pdus) { ecn_threshold_pdus_ = pdus; }
  std::size_t ecn_threshold() const { return ecn_threshold_pdus_; }

  // Runtime queue knob (fault campaigns): PDUs already queued stay; new
  // arrivals see the new bound. Zero means every arrival is shed.
  void set_port_queue_limit(std::size_t port, std::size_t pdus) {
    ports_[port].cfg.queue_pdus = pdus;
  }
  std::size_t port_queue_limit(std::size_t port) const {
    return ports_[port].cfg.queue_pdus;
  }

  // Optional metrics sink: each Forward observes the output port's queue
  // depth (after enqueue) into "switch.<name>.queue_depth".
  void AttachMetrics(MetricsRegistry* m) { metrics_ = m; }

  const std::string& name() const { return name_; }
  std::size_t port_count() const { return ports_.size(); }
  Resource& port_resource(std::size_t i) { return ports_[i].line; }
  std::uint64_t port_drops(std::size_t i) const { return ports_[i].drops; }
  std::uint64_t port_forwarded(std::size_t i) const { return ports_[i].forwarded; }
  std::uint64_t port_ecn_marks(std::size_t i) const { return ports_[i].ecn_marks; }
  std::uint64_t unroutable() const { return unroutable_; }
  std::uint64_t drops_total() const;
  std::uint64_t ecn_marks_total() const;

 private:
  struct QueuedPdu {
    SimTime done = 0;        // completion time of this queued/in-service PDU
    std::uint32_t vci = 0;   // which flow it belongs to (per-VCI ECN depth)
  };

  struct Port {
    explicit Port(const SwitchPortConfig& c, const std::string& rname)
        : cfg(c), line(rname) {}
    SwitchPortConfig cfg;
    Resource line;
    std::deque<QueuedPdu> in_flight;  // queued + in-service PDUs, by completion
    std::map<std::uint32_t, std::size_t> vci_depth;  // standing PDUs per VCI
    std::uint64_t drops = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t ecn_marks = 0;
  };

  std::string name_;
  std::vector<Port> ports_;
  std::map<std::uint32_t, std::size_t> routes_;
  std::uint64_t unroutable_ = 0;
  std::size_t ecn_threshold_pdus_ = 0;
  MetricsRegistry* metrics_ = nullptr;
};

// The graph. Nodes are added in a fixed order (construction order is part of
// a scenario's deterministic identity); links reference nodes by id.
class Topology {
 public:
  explicit Topology(std::uint64_t seed = 0x5eed) : seed_(seed) {}

  NodeId AddHost(std::unique_ptr<SimHost> host);
  NodeId AddSwitch(const std::string& name, std::vector<SwitchPortConfig> ports);

  // A unidirectional link |from| -> |to|. |mbps| of 0 uses |costs|'s link
  // rate (516 Mbps, the paper's testbed).
  LinkId AddLink(NodeId from, NodeId to, const CostParams* costs,
                 std::string name, double mbps = 0.0);

  SimHost* host(NodeId id) { return hosts_[id].get(); }
  SwitchNode* switch_at(NodeId id) { return switches_[id].get(); }
  bool is_switch(NodeId id) const {
    return id < switches_.size() && switches_[id] != nullptr;
  }
  TopoLink& link(LinkId id) { return *links_[id]; }
  std::size_t node_count() const { return hosts_.size(); }
  std::size_t link_count() const { return links_.size(); }

 private:
  std::uint64_t seed_;
  // Parallel arrays indexed by NodeId: exactly one of hosts_[i],
  // switches_[i] is non-null.
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<std::unique_ptr<SwitchNode>> switches_;
  std::vector<std::unique_ptr<TopoLink>> links_;
};

}  // namespace fbufs

#endif  // SRC_TOPO_TOPOLOGY_H_
