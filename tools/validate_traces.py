#!/usr/bin/env python3
"""Validates Chrome trace_event exports (TRACE_*.json).

Checks, per file: the document parses, traceEvents is non-empty, every
begin span has a matching end (per pid/tid the B/E stream must be properly
bracketed), at least one instant (phase marker) is present, counter ('C')
events carry numeric args with non-decreasing timestamps per track, and
every lane_conservation instant balances to the nanosecond
(busy + idle == elapsed). Transfer-ring counter tracks get their own
checks: every '<ring>/sq_depth' track must come with a matching
'<ring>/doorbells' track, depths must be non-negative, and doorbell counts
must be non-decreasing; traces from ablation_rings must contain at least
one ring track. Flow events (fbuf journeys) are checked for binding: every
flow chain opens with exactly one 's' per (pid, name, id), every 't'/'f'
follows a matching 's', timestamps never run backwards along a chain, each
chain is terminated by exactly one 'f' (carrying Chrome's bp:"e"), and
nothing follows the 'f'. Traces from incast and server must additionally
carry at least one lifecycle flow and at least one histogram counter track
(count/p50/p99 args, from MetricsRegistry export). Exits non-zero on the
first violation. Used by CI after bench/campaigns, bench/multicore,
bench/ablation_rings, bench/incast and bench/server run.
"""
import json
import sys


def check_conservation(path, e):
    args = e.get("args", {})
    for k in ("busy", "idle", "elapsed"):
        if not isinstance(args.get(k), int):
            raise SystemExit(f"{path}: lane_conservation missing int arg '{k}': {e}")
    if args["busy"] + args["idle"] != args["elapsed"]:
        raise SystemExit(
            f"{path}: lane conservation violated on pid={e.get('pid')} "
            f"tid={e.get('tid')}: busy {args['busy']} + idle {args['idle']} "
            f"!= elapsed {args['elapsed']}")
    if args["busy"] < 0 or args["idle"] < 0:
        raise SystemExit(f"{path}: negative lane time: {args}")


def check_ring_tracks(path, counter_values):
    """Every ring exports sq_depth (gauge, >= 0) and doorbells (monotone)."""
    rings = 0
    for name, values in counter_values.items():
        if not name.endswith("/sq_depth"):
            continue
        rings += 1
        ring = name[: -len("/sq_depth")]
        if any(v < 0 for v in values):
            raise SystemExit(f"{path}: negative SQ depth on track '{name}'")
        bells = counter_values.get(ring + "/doorbells")
        if bells is None:
            raise SystemExit(
                f"{path}: ring '{ring}' has sq_depth but no doorbells track")
        if any(b < a for a, b in zip(bells, bells[1:])):
            raise SystemExit(
                f"{path}: doorbell count decreases on track '{ring}/doorbells'")
    return rings


def check_flow_event(path, e, flows):
    """One step of a flow chain: 's' opens, 't' continues, 'f' closes."""
    ph = e["ph"]
    if "id" not in e:
        raise SystemExit(f"{path}: flow event '{e['name']}' ({ph}) has no id")
    key = (e.get("pid"), e["name"], e["id"])
    ts = e.get("ts", 0)
    chain = flows.get(key)
    if ph == "s":
        if chain is not None:
            raise SystemExit(
                f"{path}: duplicate flow start for {key} (ids must be "
                f"unique per journey)")
        flows[key] = {"ts": ts, "closed": False}
        return
    if chain is None:
        raise SystemExit(f"{path}: flow '{ph}' without a matching 's': {key}")
    if chain["closed"]:
        raise SystemExit(f"{path}: flow event after 'f' on chain {key}")
    if ts < chain["ts"]:
        raise SystemExit(
            f"{path}: flow chain {key} runs backwards "
            f"({chain['ts']} -> {ts})")
    chain["ts"] = ts
    if ph == "f":
        if e.get("bp") != "e":
            raise SystemExit(
                f"{path}: flow end on chain {key} lacks bp:\"e\" binding")
        chain["closed"] = True


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    if not events:
        raise SystemExit(f"{path}: empty traceEvents")
    stacks = {}
    counter_ts = {}
    counter_values = {}
    flows = {}
    hist_tracks = set()
    begins = ends = instants = counters = lanes_checked = 0
    for e in events:
        ph = e["ph"]
        lane = (e.get("pid"), e.get("tid"))
        if ph == "B":
            begins += 1
            stacks.setdefault(lane, []).append(e["name"])
        elif ph == "E":
            ends += 1
            stack = stacks.get(lane)
            if not stack:
                raise SystemExit(f"{path}: E without B on lane {lane}: {e['name']}")
            stack.pop()
        elif ph == "i":
            instants += 1
            if e["name"] == "lane_conservation":
                check_conservation(path, e)
                lanes_checked += 1
        elif ph == "C":
            counters += 1
            args = e.get("args", {})
            if not args:
                raise SystemExit(f"{path}: counter '{e['name']}' with no args")
            for k, v in args.items():
                if not isinstance(v, (int, float)):
                    raise SystemExit(
                        f"{path}: counter '{e['name']}' arg '{k}' not numeric: {v!r}")
            track = (lane, e["name"])
            ts = e.get("ts", 0)
            if track in counter_ts and ts < counter_ts[track]:
                raise SystemExit(
                    f"{path}: counter '{e['name']}' timestamps go backwards "
                    f"({counter_ts[track]} -> {ts})")
            counter_ts[track] = ts
            counter_values.setdefault(e["name"], []).extend(args.values())
            if {"count", "p50", "p99"} <= set(args):
                hist_tracks.add(e["name"])
        elif ph in ("s", "t", "f"):
            check_flow_event(path, e, flows)
    if begins != ends:
        raise SystemExit(f"{path}: unbalanced spans ({begins} B vs {ends} E)")
    for lane, stack in stacks.items():
        if stack:
            raise SystemExit(f"{path}: {len(stack)} unclosed span(s) on lane {lane}")
    if instants == 0:
        raise SystemExit(f"{path}: no instants (phase markers missing)")
    for key, chain in flows.items():
        if not chain["closed"]:
            raise SystemExit(f"{path}: flow chain {key} never reaches 'f'")
    rings = check_ring_tracks(path, counter_values)
    if "ablation_rings" in path and rings == 0:
        raise SystemExit(f"{path}: ablation_rings trace has no ring counter tracks")
    # Exact basenames: campaign traces (e.g. TRACE_server_churn.json) carry
    # host spans only, not metrics/lifecycle processes.
    base = path.rsplit("/", 1)[-1]
    if base in ("TRACE_incast.json", "TRACE_server.json"):
        # These benches attach a MetricsRegistry and a LifecycleTracker; an
        # export without histogram tracks or journeys means a hook came loose.
        if not hist_tracks:
            raise SystemExit(f"{path}: no histogram counter tracks "
                             f"(count/p50/p99) in a metrics-armed trace")
        if not flows:
            raise SystemExit(f"{path}: no fbuf journey flow chains "
                             f"in a lifecycle-armed trace")
    ringinfo = f", {rings} ring track(s)" if rings else ""
    extra = f", {lanes_checked} lane(s) conserved" if lanes_checked else ""
    flowinfo = f", {len(flows)} flow chain(s)" if flows else ""
    histinfo = f", {len(hist_tracks)} histogram track(s)" if hist_tracks else ""
    print(f"{path}: {len(events)} events, {begins} spans, {instants} instants, "
          f"{counters} counter points{extra}{ringinfo}{flowinfo}{histinfo}")


def main(argv):
    if len(argv) < 2:
        raise SystemExit("usage: validate_traces.py TRACE_a.json [TRACE_b.json ...]")
    for path in argv[1:]:
        validate(path)


if __name__ == "__main__":
    main(sys.argv)
