#!/usr/bin/env python3
"""Validates Chrome trace_event exports (TRACE_*.json).

Checks, per file: the document parses, traceEvents is non-empty, every
begin span has a matching end (per pid/tid the B/E stream must be properly
bracketed), at least one instant (phase marker) is present, counter ('C')
events carry numeric args with non-decreasing timestamps per track, and
every lane_conservation instant balances to the nanosecond
(busy + idle == elapsed). Exits non-zero on the first violation. Used by
CI after bench/campaigns and bench/multicore run.
"""
import json
import sys


def check_conservation(path, e):
    args = e.get("args", {})
    for k in ("busy", "idle", "elapsed"):
        if not isinstance(args.get(k), int):
            raise SystemExit(f"{path}: lane_conservation missing int arg '{k}': {e}")
    if args["busy"] + args["idle"] != args["elapsed"]:
        raise SystemExit(
            f"{path}: lane conservation violated on pid={e.get('pid')} "
            f"tid={e.get('tid')}: busy {args['busy']} + idle {args['idle']} "
            f"!= elapsed {args['elapsed']}")
    if args["busy"] < 0 or args["idle"] < 0:
        raise SystemExit(f"{path}: negative lane time: {args}")


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    if not events:
        raise SystemExit(f"{path}: empty traceEvents")
    stacks = {}
    counter_ts = {}
    begins = ends = instants = counters = lanes_checked = 0
    for e in events:
        ph = e["ph"]
        lane = (e.get("pid"), e.get("tid"))
        if ph == "B":
            begins += 1
            stacks.setdefault(lane, []).append(e["name"])
        elif ph == "E":
            ends += 1
            stack = stacks.get(lane)
            if not stack:
                raise SystemExit(f"{path}: E without B on lane {lane}: {e['name']}")
            stack.pop()
        elif ph == "i":
            instants += 1
            if e["name"] == "lane_conservation":
                check_conservation(path, e)
                lanes_checked += 1
        elif ph == "C":
            counters += 1
            args = e.get("args", {})
            if not args:
                raise SystemExit(f"{path}: counter '{e['name']}' with no args")
            for k, v in args.items():
                if not isinstance(v, (int, float)):
                    raise SystemExit(
                        f"{path}: counter '{e['name']}' arg '{k}' not numeric: {v!r}")
            track = (lane, e["name"])
            ts = e.get("ts", 0)
            if track in counter_ts and ts < counter_ts[track]:
                raise SystemExit(
                    f"{path}: counter '{e['name']}' timestamps go backwards "
                    f"({counter_ts[track]} -> {ts})")
            counter_ts[track] = ts
    if begins != ends:
        raise SystemExit(f"{path}: unbalanced spans ({begins} B vs {ends} E)")
    for lane, stack in stacks.items():
        if stack:
            raise SystemExit(f"{path}: {len(stack)} unclosed span(s) on lane {lane}")
    if instants == 0:
        raise SystemExit(f"{path}: no instants (phase markers missing)")
    extra = f", {lanes_checked} lane(s) conserved" if lanes_checked else ""
    print(f"{path}: {len(events)} events, {begins} spans, {instants} instants, "
          f"{counters} counter points{extra}")


def main(argv):
    if len(argv) < 2:
        raise SystemExit("usage: validate_traces.py TRACE_a.json [TRACE_b.json ...]")
    for path in argv[1:]:
        validate(path)


if __name__ == "__main__":
    main(sys.argv)
