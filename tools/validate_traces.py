#!/usr/bin/env python3
"""Validates Chrome trace_event exports (TRACE_*.json).

Checks, per file: the document parses, traceEvents is non-empty, every
begin span has a matching end (per pid/tid the B/E stream must be properly
bracketed), and at least one instant (phase marker) is present. Exits
non-zero on the first violation. Used by CI after bench/campaigns runs.
"""
import json
import sys


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    if not events:
        raise SystemExit(f"{path}: empty traceEvents")
    stacks = {}
    begins = ends = instants = 0
    for e in events:
        ph = e["ph"]
        lane = (e.get("pid"), e.get("tid"))
        if ph == "B":
            begins += 1
            stacks.setdefault(lane, []).append(e["name"])
        elif ph == "E":
            ends += 1
            stack = stacks.get(lane)
            if not stack:
                raise SystemExit(f"{path}: E without B on lane {lane}: {e['name']}")
            stack.pop()
        elif ph == "i":
            instants += 1
    if begins != ends:
        raise SystemExit(f"{path}: unbalanced spans ({begins} B vs {ends} E)")
    for lane, stack in stacks.items():
        if stack:
            raise SystemExit(f"{path}: {len(stack)} unclosed span(s) on lane {lane}")
    if instants == 0:
        raise SystemExit(f"{path}: no instants (phase markers missing)")
    print(f"{path}: {len(events)} events, {begins} spans, {instants} instants")


def main(argv):
    if len(argv) < 2:
        raise SystemExit("usage: validate_traces.py TRACE_a.json [TRACE_b.json ...]")
    for path in argv[1:]:
        validate(path)


if __name__ == "__main__":
    main(sys.argv)
