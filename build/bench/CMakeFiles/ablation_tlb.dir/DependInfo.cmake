
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_tlb.cc" "bench/CMakeFiles/ablation_tlb.dir/ablation_tlb.cc.o" "gcc" "bench/CMakeFiles/ablation_tlb.dir/ablation_tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fbufs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fbufs_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/fbufs_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/fbuf/CMakeFiles/fbufs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/fbufs_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fbufs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/fbufs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fbufs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
