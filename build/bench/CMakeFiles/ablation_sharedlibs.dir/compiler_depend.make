# Empty compiler generated dependencies file for ablation_sharedlibs.
# This may be replaced when dependencies are built.
