file(REMOVE_RECURSE
  "CMakeFiles/ablation_sharedlibs.dir/ablation_sharedlibs.cc.o"
  "CMakeFiles/ablation_sharedlibs.dir/ablation_sharedlibs.cc.o.d"
  "ablation_sharedlibs"
  "ablation_sharedlibs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sharedlibs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
