# Empty compiler generated dependencies file for swp_goodput.
# This may be replaced when dependencies are built.
