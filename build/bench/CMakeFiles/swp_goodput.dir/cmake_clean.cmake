file(REMOVE_RECURSE
  "CMakeFiles/swp_goodput.dir/swp_goodput.cc.o"
  "CMakeFiles/swp_goodput.dir/swp_goodput.cc.o.d"
  "swp_goodput"
  "swp_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
