# Empty dependencies file for ablation_domains.
# This may be replaced when dependencies are built.
