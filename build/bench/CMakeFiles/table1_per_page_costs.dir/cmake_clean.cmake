file(REMOVE_RECURSE
  "CMakeFiles/table1_per_page_costs.dir/table1_per_page_costs.cc.o"
  "CMakeFiles/table1_per_page_costs.dir/table1_per_page_costs.cc.o.d"
  "table1_per_page_costs"
  "table1_per_page_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_per_page_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
