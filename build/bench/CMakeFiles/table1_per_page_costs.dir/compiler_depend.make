# Empty compiler generated dependencies file for table1_per_page_costs.
# This may be replaced when dependencies are built.
