# Empty dependencies file for fig4_udp_loopback.
# This may be replaced when dependencies are built.
