file(REMOVE_RECURSE
  "CMakeFiles/fig4_udp_loopback.dir/fig4_udp_loopback.cc.o"
  "CMakeFiles/fig4_udp_loopback.dir/fig4_udp_loopback.cc.o.d"
  "fig4_udp_loopback"
  "fig4_udp_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_udp_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
