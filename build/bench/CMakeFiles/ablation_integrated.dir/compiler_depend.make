# Empty compiler generated dependencies file for ablation_integrated.
# This may be replaced when dependencies are built.
