file(REMOVE_RECURSE
  "CMakeFiles/ablation_integrated.dir/ablation_integrated.cc.o"
  "CMakeFiles/ablation_integrated.dir/ablation_integrated.cc.o.d"
  "ablation_integrated"
  "ablation_integrated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_integrated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
