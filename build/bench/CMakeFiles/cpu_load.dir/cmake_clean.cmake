file(REMOVE_RECURSE
  "CMakeFiles/cpu_load.dir/cpu_load.cc.o"
  "CMakeFiles/cpu_load.dir/cpu_load.cc.o.d"
  "cpu_load"
  "cpu_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
