# Empty dependencies file for remap_microbench.
# This may be replaced when dependencies are built.
