file(REMOVE_RECURSE
  "CMakeFiles/remap_microbench.dir/remap_microbench.cc.o"
  "CMakeFiles/remap_microbench.dir/remap_microbench.cc.o.d"
  "remap_microbench"
  "remap_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remap_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
