file(REMOVE_RECURSE
  "CMakeFiles/fig6_endtoend_uncached.dir/fig6_endtoend_uncached.cc.o"
  "CMakeFiles/fig6_endtoend_uncached.dir/fig6_endtoend_uncached.cc.o.d"
  "fig6_endtoend_uncached"
  "fig6_endtoend_uncached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_endtoend_uncached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
