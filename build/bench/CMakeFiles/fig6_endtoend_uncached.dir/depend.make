# Empty dependencies file for fig6_endtoend_uncached.
# This may be replaced when dependencies are built.
