# Empty dependencies file for ablation_freelist.
# This may be replaced when dependencies are built.
