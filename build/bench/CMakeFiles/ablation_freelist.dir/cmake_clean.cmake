file(REMOVE_RECURSE
  "CMakeFiles/ablation_freelist.dir/ablation_freelist.cc.o"
  "CMakeFiles/ablation_freelist.dir/ablation_freelist.cc.o.d"
  "ablation_freelist"
  "ablation_freelist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_freelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
