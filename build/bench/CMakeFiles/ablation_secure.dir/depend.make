# Empty dependencies file for ablation_secure.
# This may be replaced when dependencies are built.
