file(REMOVE_RECURSE
  "CMakeFiles/ablation_secure.dir/ablation_secure.cc.o"
  "CMakeFiles/ablation_secure.dir/ablation_secure.cc.o.d"
  "ablation_secure"
  "ablation_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
