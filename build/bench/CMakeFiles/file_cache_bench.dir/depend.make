# Empty dependencies file for file_cache_bench.
# This may be replaced when dependencies are built.
