file(REMOVE_RECURSE
  "CMakeFiles/file_cache_bench.dir/file_cache_bench.cc.o"
  "CMakeFiles/file_cache_bench.dir/file_cache_bench.cc.o.d"
  "file_cache_bench"
  "file_cache_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_cache_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
