file(REMOVE_RECURSE
  "CMakeFiles/fig3_single_crossing.dir/fig3_single_crossing.cc.o"
  "CMakeFiles/fig3_single_crossing.dir/fig3_single_crossing.cc.o.d"
  "fig3_single_crossing"
  "fig3_single_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_single_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
