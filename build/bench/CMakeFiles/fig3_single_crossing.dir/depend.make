# Empty dependencies file for fig3_single_crossing.
# This may be replaced when dependencies are built.
