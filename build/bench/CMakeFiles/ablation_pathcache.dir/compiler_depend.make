# Empty compiler generated dependencies file for ablation_pathcache.
# This may be replaced when dependencies are built.
