file(REMOVE_RECURSE
  "CMakeFiles/ablation_pathcache.dir/ablation_pathcache.cc.o"
  "CMakeFiles/ablation_pathcache.dir/ablation_pathcache.cc.o.d"
  "ablation_pathcache"
  "ablation_pathcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pathcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
