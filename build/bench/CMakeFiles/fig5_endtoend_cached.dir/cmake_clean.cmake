file(REMOVE_RECURSE
  "CMakeFiles/fig5_endtoend_cached.dir/fig5_endtoend_cached.cc.o"
  "CMakeFiles/fig5_endtoend_cached.dir/fig5_endtoend_cached.cc.o.d"
  "fig5_endtoend_cached"
  "fig5_endtoend_cached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_endtoend_cached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
