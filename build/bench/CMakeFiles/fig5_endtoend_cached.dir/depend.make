# Empty dependencies file for fig5_endtoend_cached.
# This may be replaced when dependencies are built.
