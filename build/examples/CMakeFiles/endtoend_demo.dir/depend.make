# Empty dependencies file for endtoend_demo.
# This may be replaced when dependencies are built.
