file(REMOVE_RECURSE
  "CMakeFiles/endtoend_demo.dir/endtoend_demo.cpp.o"
  "CMakeFiles/endtoend_demo.dir/endtoend_demo.cpp.o.d"
  "endtoend_demo"
  "endtoend_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
