# Empty compiler generated dependencies file for fbufs_baseline.
# This may be replaced when dependencies are built.
