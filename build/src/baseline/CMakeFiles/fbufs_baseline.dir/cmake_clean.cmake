file(REMOVE_RECURSE
  "CMakeFiles/fbufs_baseline.dir/copy_transfer.cc.o"
  "CMakeFiles/fbufs_baseline.dir/copy_transfer.cc.o.d"
  "CMakeFiles/fbufs_baseline.dir/cow_transfer.cc.o"
  "CMakeFiles/fbufs_baseline.dir/cow_transfer.cc.o.d"
  "CMakeFiles/fbufs_baseline.dir/remap_transfer.cc.o"
  "CMakeFiles/fbufs_baseline.dir/remap_transfer.cc.o.d"
  "libfbufs_baseline.a"
  "libfbufs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
