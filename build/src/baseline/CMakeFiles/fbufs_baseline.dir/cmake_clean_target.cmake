file(REMOVE_RECURSE
  "libfbufs_baseline.a"
)
