file(REMOVE_RECURSE
  "libfbufs_cache.a"
)
