file(REMOVE_RECURSE
  "CMakeFiles/fbufs_cache.dir/file_cache.cc.o"
  "CMakeFiles/fbufs_cache.dir/file_cache.cc.o.d"
  "libfbufs_cache.a"
  "libfbufs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
