# Empty dependencies file for fbufs_cache.
# This may be replaced when dependencies are built.
