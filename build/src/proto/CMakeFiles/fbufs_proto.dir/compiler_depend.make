# Empty compiler generated dependencies file for fbufs_proto.
# This may be replaced when dependencies are built.
