file(REMOVE_RECURSE
  "CMakeFiles/fbufs_proto.dir/ip.cc.o"
  "CMakeFiles/fbufs_proto.dir/ip.cc.o.d"
  "CMakeFiles/fbufs_proto.dir/loopback_stack.cc.o"
  "CMakeFiles/fbufs_proto.dir/loopback_stack.cc.o.d"
  "CMakeFiles/fbufs_proto.dir/protocol.cc.o"
  "CMakeFiles/fbufs_proto.dir/protocol.cc.o.d"
  "CMakeFiles/fbufs_proto.dir/swp.cc.o"
  "CMakeFiles/fbufs_proto.dir/swp.cc.o.d"
  "CMakeFiles/fbufs_proto.dir/udp.cc.o"
  "CMakeFiles/fbufs_proto.dir/udp.cc.o.d"
  "libfbufs_proto.a"
  "libfbufs_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
