file(REMOVE_RECURSE
  "libfbufs_proto.a"
)
