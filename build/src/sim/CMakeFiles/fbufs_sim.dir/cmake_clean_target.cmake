file(REMOVE_RECURSE
  "libfbufs_sim.a"
)
