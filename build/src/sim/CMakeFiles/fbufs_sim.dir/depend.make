# Empty dependencies file for fbufs_sim.
# This may be replaced when dependencies are built.
