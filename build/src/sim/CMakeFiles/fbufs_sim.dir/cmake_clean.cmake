file(REMOVE_RECURSE
  "CMakeFiles/fbufs_sim.dir/cost_model.cc.o"
  "CMakeFiles/fbufs_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/fbufs_sim.dir/phys_mem.cc.o"
  "CMakeFiles/fbufs_sim.dir/phys_mem.cc.o.d"
  "CMakeFiles/fbufs_sim.dir/stats.cc.o"
  "CMakeFiles/fbufs_sim.dir/stats.cc.o.d"
  "CMakeFiles/fbufs_sim.dir/trace.cc.o"
  "CMakeFiles/fbufs_sim.dir/trace.cc.o.d"
  "libfbufs_sim.a"
  "libfbufs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
