file(REMOVE_RECURSE
  "libfbufs_core.a"
)
