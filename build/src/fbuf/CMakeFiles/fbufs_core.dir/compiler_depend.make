# Empty compiler generated dependencies file for fbufs_core.
# This may be replaced when dependencies are built.
