file(REMOVE_RECURSE
  "CMakeFiles/fbufs_core.dir/fbuf_system.cc.o"
  "CMakeFiles/fbufs_core.dir/fbuf_system.cc.o.d"
  "libfbufs_core.a"
  "libfbufs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
