file(REMOVE_RECURSE
  "libfbufs_vm.a"
)
