
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/address_space.cc" "src/vm/CMakeFiles/fbufs_vm.dir/address_space.cc.o" "gcc" "src/vm/CMakeFiles/fbufs_vm.dir/address_space.cc.o.d"
  "/root/repo/src/vm/domain.cc" "src/vm/CMakeFiles/fbufs_vm.dir/domain.cc.o" "gcc" "src/vm/CMakeFiles/fbufs_vm.dir/domain.cc.o.d"
  "/root/repo/src/vm/machine.cc" "src/vm/CMakeFiles/fbufs_vm.dir/machine.cc.o" "gcc" "src/vm/CMakeFiles/fbufs_vm.dir/machine.cc.o.d"
  "/root/repo/src/vm/types.cc" "src/vm/CMakeFiles/fbufs_vm.dir/types.cc.o" "gcc" "src/vm/CMakeFiles/fbufs_vm.dir/types.cc.o.d"
  "/root/repo/src/vm/vm_manager.cc" "src/vm/CMakeFiles/fbufs_vm.dir/vm_manager.cc.o" "gcc" "src/vm/CMakeFiles/fbufs_vm.dir/vm_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fbufs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
