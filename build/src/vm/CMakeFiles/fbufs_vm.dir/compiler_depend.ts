# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fbufs_vm.
