# Empty dependencies file for fbufs_vm.
# This may be replaced when dependencies are built.
