file(REMOVE_RECURSE
  "CMakeFiles/fbufs_vm.dir/address_space.cc.o"
  "CMakeFiles/fbufs_vm.dir/address_space.cc.o.d"
  "CMakeFiles/fbufs_vm.dir/domain.cc.o"
  "CMakeFiles/fbufs_vm.dir/domain.cc.o.d"
  "CMakeFiles/fbufs_vm.dir/machine.cc.o"
  "CMakeFiles/fbufs_vm.dir/machine.cc.o.d"
  "CMakeFiles/fbufs_vm.dir/types.cc.o"
  "CMakeFiles/fbufs_vm.dir/types.cc.o.d"
  "CMakeFiles/fbufs_vm.dir/vm_manager.cc.o"
  "CMakeFiles/fbufs_vm.dir/vm_manager.cc.o.d"
  "libfbufs_vm.a"
  "libfbufs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
