# Empty compiler generated dependencies file for fbufs_net.
# This may be replaced when dependencies are built.
