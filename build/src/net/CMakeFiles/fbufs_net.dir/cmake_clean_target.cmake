file(REMOVE_RECURSE
  "libfbufs_net.a"
)
