file(REMOVE_RECURSE
  "CMakeFiles/fbufs_net.dir/atm.cc.o"
  "CMakeFiles/fbufs_net.dir/atm.cc.o.d"
  "CMakeFiles/fbufs_net.dir/driver.cc.o"
  "CMakeFiles/fbufs_net.dir/driver.cc.o.d"
  "CMakeFiles/fbufs_net.dir/testbed.cc.o"
  "CMakeFiles/fbufs_net.dir/testbed.cc.o.d"
  "libfbufs_net.a"
  "libfbufs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
