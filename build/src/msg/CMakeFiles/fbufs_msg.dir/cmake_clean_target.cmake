file(REMOVE_RECURSE
  "libfbufs_msg.a"
)
