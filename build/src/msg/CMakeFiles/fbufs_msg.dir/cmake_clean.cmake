file(REMOVE_RECURSE
  "CMakeFiles/fbufs_msg.dir/generator.cc.o"
  "CMakeFiles/fbufs_msg.dir/generator.cc.o.d"
  "CMakeFiles/fbufs_msg.dir/message.cc.o"
  "CMakeFiles/fbufs_msg.dir/message.cc.o.d"
  "CMakeFiles/fbufs_msg.dir/stored_message.cc.o"
  "CMakeFiles/fbufs_msg.dir/stored_message.cc.o.d"
  "libfbufs_msg.a"
  "libfbufs_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
