# Empty compiler generated dependencies file for fbufs_msg.
# This may be replaced when dependencies are built.
