# Empty dependencies file for fbufs_ipc.
# This may be replaced when dependencies are built.
