file(REMOVE_RECURSE
  "CMakeFiles/fbufs_ipc.dir/rpc.cc.o"
  "CMakeFiles/fbufs_ipc.dir/rpc.cc.o.d"
  "libfbufs_ipc.a"
  "libfbufs_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbufs_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
