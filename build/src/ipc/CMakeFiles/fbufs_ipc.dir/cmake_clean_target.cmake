file(REMOVE_RECURSE
  "libfbufs_ipc.a"
)
