# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/fbuf_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/stored_message_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/swp_test[1]_include.cmake")
include("/root/repo/build/tests/hbio_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/file_cache_test[1]_include.cmake")
include("/root/repo/build/tests/paging_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/cow_property_test[1]_include.cmake")
include("/root/repo/build/tests/atm_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fbuf_edge_test[1]_include.cmake")
include("/root/repo/build/tests/msg_edge_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/domain_access_test[1]_include.cmake")
include("/root/repo/build/tests/multiflow_test[1]_include.cmake")
