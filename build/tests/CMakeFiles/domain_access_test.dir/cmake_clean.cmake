file(REMOVE_RECURSE
  "CMakeFiles/domain_access_test.dir/domain_access_test.cc.o"
  "CMakeFiles/domain_access_test.dir/domain_access_test.cc.o.d"
  "domain_access_test"
  "domain_access_test.pdb"
  "domain_access_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_access_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
