# Empty dependencies file for domain_access_test.
# This may be replaced when dependencies are built.
