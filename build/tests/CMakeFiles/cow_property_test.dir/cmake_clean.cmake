file(REMOVE_RECURSE
  "CMakeFiles/cow_property_test.dir/cow_property_test.cc.o"
  "CMakeFiles/cow_property_test.dir/cow_property_test.cc.o.d"
  "cow_property_test"
  "cow_property_test.pdb"
  "cow_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
