# Empty dependencies file for cow_property_test.
# This may be replaced when dependencies are built.
