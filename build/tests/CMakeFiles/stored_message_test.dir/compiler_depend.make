# Empty compiler generated dependencies file for stored_message_test.
# This may be replaced when dependencies are built.
