file(REMOVE_RECURSE
  "CMakeFiles/stored_message_test.dir/stored_message_test.cc.o"
  "CMakeFiles/stored_message_test.dir/stored_message_test.cc.o.d"
  "stored_message_test"
  "stored_message_test.pdb"
  "stored_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stored_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
