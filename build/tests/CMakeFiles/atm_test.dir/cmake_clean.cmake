file(REMOVE_RECURSE
  "CMakeFiles/atm_test.dir/atm_test.cc.o"
  "CMakeFiles/atm_test.dir/atm_test.cc.o.d"
  "atm_test"
  "atm_test.pdb"
  "atm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
