# Empty dependencies file for hbio_test.
# This may be replaced when dependencies are built.
