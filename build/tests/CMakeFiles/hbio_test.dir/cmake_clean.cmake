file(REMOVE_RECURSE
  "CMakeFiles/hbio_test.dir/hbio_test.cc.o"
  "CMakeFiles/hbio_test.dir/hbio_test.cc.o.d"
  "hbio_test"
  "hbio_test.pdb"
  "hbio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
