file(REMOVE_RECURSE
  "CMakeFiles/multiflow_test.dir/multiflow_test.cc.o"
  "CMakeFiles/multiflow_test.dir/multiflow_test.cc.o.d"
  "multiflow_test"
  "multiflow_test.pdb"
  "multiflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
