# Empty compiler generated dependencies file for multiflow_test.
# This may be replaced when dependencies are built.
