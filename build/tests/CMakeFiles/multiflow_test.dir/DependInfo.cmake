
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multiflow_test.cc" "tests/CMakeFiles/multiflow_test.dir/multiflow_test.cc.o" "gcc" "tests/CMakeFiles/multiflow_test.dir/multiflow_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/fbufs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/fbufs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/fbufs_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/fbuf/CMakeFiles/fbufs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/fbufs_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fbufs_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fbufs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
