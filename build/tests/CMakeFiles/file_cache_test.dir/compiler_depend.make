# Empty compiler generated dependencies file for file_cache_test.
# This may be replaced when dependencies are built.
