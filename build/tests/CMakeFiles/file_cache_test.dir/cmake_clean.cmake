file(REMOVE_RECURSE
  "CMakeFiles/file_cache_test.dir/file_cache_test.cc.o"
  "CMakeFiles/file_cache_test.dir/file_cache_test.cc.o.d"
  "file_cache_test"
  "file_cache_test.pdb"
  "file_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
