file(REMOVE_RECURSE
  "CMakeFiles/fbuf_test.dir/fbuf_test.cc.o"
  "CMakeFiles/fbuf_test.dir/fbuf_test.cc.o.d"
  "fbuf_test"
  "fbuf_test.pdb"
  "fbuf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
