# Empty dependencies file for fbuf_test.
# This may be replaced when dependencies are built.
