file(REMOVE_RECURSE
  "CMakeFiles/fbuf_edge_test.dir/fbuf_edge_test.cc.o"
  "CMakeFiles/fbuf_edge_test.dir/fbuf_edge_test.cc.o.d"
  "fbuf_edge_test"
  "fbuf_edge_test.pdb"
  "fbuf_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbuf_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
