# Empty dependencies file for fbuf_edge_test.
# This may be replaced when dependencies are built.
