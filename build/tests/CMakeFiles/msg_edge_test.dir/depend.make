# Empty dependencies file for msg_edge_test.
# This may be replaced when dependencies are built.
