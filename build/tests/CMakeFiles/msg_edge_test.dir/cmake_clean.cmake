file(REMOVE_RECURSE
  "CMakeFiles/msg_edge_test.dir/msg_edge_test.cc.o"
  "CMakeFiles/msg_edge_test.dir/msg_edge_test.cc.o.d"
  "msg_edge_test"
  "msg_edge_test.pdb"
  "msg_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
