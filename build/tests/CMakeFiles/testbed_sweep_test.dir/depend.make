# Empty dependencies file for testbed_sweep_test.
# This may be replaced when dependencies are built.
