// Ablation: the third-domain cache/TLB-pressure penalty (§4).
//
// The paper attributes the extra penalty of the user-netserver-user path to
// duplicated x-kernel program text thrashing the instruction cache and TLB
// ("Because our version of Mach/Unix does not support shared libraries...
// The use of shared libraries should help mitigate this effect"). The model
// exposes that as cache_pressure_ns; sweeping it to zero simulates perfect
// shared libraries and shows how much of the medium-size gap it explains.
#include <cstdio>

#include "src/topo/testbed.h"

namespace fbufs {
namespace bench {
namespace {

double Run(StackPlacement p, SimTime pressure_ns, std::uint64_t bytes) {
  TestbedConfig cfg;
  cfg.placement = p;
  cfg.machine.costs.cache_pressure_ns = pressure_ns;
  Testbed tb(cfg);
  return tb.Run(10, bytes, /*warmup=*/2).throughput_mbps;
}

int Main() {
  std::printf("\n=== Ablation: duplicated program text vs shared libraries (§4) ===\n");
  std::printf("(user-netserver-user throughput, Mbps, by per-PDU pressure charge)\n\n");
  std::printf("%10s %14s %14s %14s %16s\n", "size(KB)", "0us(shared)", "15us", "30us(dflt)",
              "user-user ref");
  for (const std::uint64_t kb : {8ull, 16ull, 64ull, 256ull}) {
    std::printf("%10llu %14.1f %14.1f %14.1f %16.1f\n", (unsigned long long)kb,
                Run(StackPlacement::kUserNetserverKernel, 0, kb * 1024),
                Run(StackPlacement::kUserNetserverKernel, 15000, kb * 1024),
                Run(StackPlacement::kUserNetserverKernel, 30000, kb * 1024),
                Run(StackPlacement::kUserKernel, 30000, kb * 1024));
  }
  std::printf(
      "\nreading: with the pressure term zeroed (perfect shared libraries) the\n"
      "netserver curve closes most of its gap to user-user at medium sizes — the\n"
      "remainder is genuine IPC latency. Matches the paper's diagnosis that the\n"
      "second crossing's outsized penalty is cache/TLB pressure, not latency.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
