// Ablation A6: the adapter's path cache (§5.2).
//
// The Osiris driver keeps pre-allocated cached fbufs for the 16 most
// recently used VCIs; other traffic falls back to uncached fbufs. Sweeping
// the number of concurrently active VCIs shows the cliff when the working
// set exceeds the table.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/topo/testbed.h"

namespace fbufs {
namespace bench {
namespace {

// Average receive-side CPU cost per PDU with |vcis| active circuits
// delivering round-robin.
double PerPduUs(std::uint32_t vcis, std::string* attr_json = nullptr) {
  TestbedConfig cfg;
  cfg.placement = StackPlacement::kUserKernel;
  cfg.cached = true;
  Testbed tb(cfg);
  Testbed::Host& rx = tb.receiver();
  // Register one data path per VCI (all sharing the same domain chain).
  std::vector<PathId> paths;
  for (std::uint32_t v = 0; v < vcis; ++v) {
    const PathId p = rx.fsys.paths().Register(
        {kKernelDomainId, rx.sink->domain()->id()});
    rx.adapter.RegisterVci(100 + v, p);
    paths.push_back(p);
  }
  // One 16 KB single-fragment PDU per delivery: build a valid IP+UDP PDU.
  const std::uint64_t body = 16 * 1024;
  std::vector<std::uint8_t> payload(IpProtocol::kHeaderBytes + UdpProtocol::kHeaderBytes + body);
  // IP header
  IpHeader ih;
  ih.total_length = static_cast<std::uint32_t>(payload.size());
  ih.id = 1;
  ih.frag_offset = 0;
  ih.adu_length = static_cast<std::uint32_t>(payload.size() - IpProtocol::kHeaderBytes);
  {
    IpHeader t = ih;
    t.checksum = 0;
    const auto* w16 = reinterpret_cast<const std::uint16_t*>(&t);
    std::uint32_t s = 0;
    for (std::size_t i = 0; i < sizeof(t) / 2; ++i) {
      s += w16[i];
    }
    while (s >> 16) {
      s = (s & 0xffff) + (s >> 16);
    }
    ih.checksum = static_cast<std::uint16_t>(~s);
  }
  std::memcpy(payload.data(), &ih, sizeof(ih));
  UdpHeader uh;
  uh.src_port = 1;
  uh.dst_port = 2000;
  uh.length = static_cast<std::uint32_t>(UdpProtocol::kHeaderBytes + body);
  {
    UdpHeader t = uh;
    t.checksum = 0;
    const auto* w16 = reinterpret_cast<const std::uint16_t*>(&t);
    std::uint32_t s = 0;
    for (std::size_t i = 0; i < sizeof(t) / 2; ++i) {
      s += w16[i];
    }
    while (s >> 16) {
      s = (s & 0xffff) + (s >> 16);
    }
    uh.checksum = static_cast<std::uint16_t>(~s);
  }
  std::memcpy(payload.data() + IpProtocol::kHeaderBytes, &uh, sizeof(uh));

  const int kWarm = static_cast<int>(vcis) * 2;
  const int kIters = static_cast<int>(vcis) * 6;
  for (int i = 0; i < kWarm; ++i) {
    rx.driver->DeliverPdu(payload, 100 + (i % vcis), true);
  }
  const SimTime before = rx.machine.clock().Now();
  for (int i = 0; i < kIters; ++i) {
    rx.driver->DeliverPdu(payload, 100 + (i % vcis), true);
  }
  if (attr_json != nullptr) {
    *attr_json = "{\n    \"receiver\": " + TimeAttributionJson(rx.machine) +
                 "\n  }";
  }
  return (rx.machine.clock().Now() - before) / 1000.0 / kIters;
}

int Main() {
  std::printf("\n=== Ablation A6: adapter path cache (16 MRU VCIs) vs active circuits ===\n");
  std::printf("%14s %16s\n", "active-vcis", "us/PDU (rx)");
  JsonReport report("ablation_pathcache");
  std::string attr_json;
  for (const std::uint32_t v : {1u, 4u, 8u, 16u, 17u, 24u, 32u}) {
    // Last point (32 VCIs, cache-thrashing) supplies the breakdown; every
    // point is conservation-checked.
    const double us = PerPduUs(v, &attr_json);
    std::printf("%14u %16.1f\n", v, us);
    report.BeginRow()
        .Field("active_vcis", static_cast<double>(v))
        .Field("us_per_pdu_rx", us);
  }
  report.RawSection("time_attribution", attr_json);
  report.Write();
  std::printf(
      "\nreading: up to 16 circuits every PDU reuses a cached per-path fbuf; past the MRU\n"
      "table the round-robin defeats it and every delivery pays the uncached path.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
