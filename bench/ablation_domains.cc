// Ablation: "How many domains?" (§5.1).
//
// The paper argues fbufs remove the throughput penalty of deep domain
// chains for large messages. We push messages through a forwarding chain of
// N protection domains (driver -> filter_1 -> ... -> filter_{N-2} -> sink)
// with cached fbufs vs physical copying, and report throughput vs N.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/copy_transfer.h"

namespace fbufs {
namespace bench {
namespace {

constexpr std::uint64_t kMessageBytes = 256 * 1024;
constexpr int kIters = 8;

double FbufChainMbps(int domains) {
  MachineConfig mcfg;
  Machine machine(mcfg);
  FbufConfig fcfg;
  FbufSystem fsys(&machine, fcfg);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  std::vector<Domain*> chain;
  std::vector<DomainId> ids;
  for (int i = 0; i < domains; ++i) {
    chain.push_back(machine.CreateDomain("hop" + std::to_string(i)));
    ids.push_back(chain.back()->id());
  }
  const PathId path = fsys.paths().Register(ids);

  auto one = [&]() {
    Fbuf* fb = nullptr;
    if (!Ok(fsys.Allocate(*chain[0], path, kMessageBytes, true, &fb))) {
      return false;
    }
    chain[0]->TouchRange(fb->base, kMessageBytes, Access::kWrite);
    for (int i = 0; i + 1 < domains; ++i) {
      rpc.ChargeCrossing(*chain[i], *chain[i + 1]);
      if (!Ok(fsys.Transfer(fb, *chain[i], *chain[i + 1]))) {
        return false;
      }
      if (!Ok(fsys.Free(fb, *chain[i]))) {
        return false;
      }
    }
    chain[domains - 1]->TouchRange(fb->base, kMessageBytes, Access::kRead);
    return Ok(fsys.Free(fb, *chain[domains - 1]));
  };
  one();  // warm the path cache and mappings
  const SimTime before = machine.clock().Now();
  for (int i = 0; i < kIters; ++i) {
    if (!one()) {
      return -1;
    }
  }
  const SimTime elapsed = machine.clock().Now() - before;
  return kMessageBytes * kIters * 8.0 * 1000.0 / static_cast<double>(elapsed);
}

double CopyChainMbps(int domains) {
  MachineConfig mcfg;
  Machine machine(mcfg);
  CopyTransfer copy(&machine);
  std::vector<Domain*> chain;
  for (int i = 0; i < domains; ++i) {
    chain.push_back(machine.CreateDomain("hop" + std::to_string(i)));
  }
  BufferRef ref;
  if (!Ok(copy.Alloc(*chain[0], kMessageBytes, &ref))) {
    return -1;
  }
  auto one = [&]() {
    chain[0]->TouchRange(ref.sender_addr, kMessageBytes, Access::kWrite);
    BufferRef hop = ref;
    for (int i = 0; i + 1 < domains; ++i) {
      machine.clock().Advance(machine.costs().ipc_user_user_ns);
      if (!Ok(copy.Send(hop, *chain[i], *chain[i + 1]))) {
        return false;
      }
      hop.sender_addr = hop.receiver_addr;
    }
    chain[domains - 1]->TouchRange(hop.receiver_addr, kMessageBytes, Access::kRead);
    return true;
  };
  one();
  const SimTime before = machine.clock().Now();
  for (int i = 0; i < kIters; ++i) {
    if (!one()) {
      return -1;
    }
  }
  const SimTime elapsed = machine.clock().Now() - before;
  return kMessageBytes * kIters * 8.0 * 1000.0 / static_cast<double>(elapsed);
}

int Main() {
  std::printf("\n=== Ablation: throughput vs protection-domain chain depth (§5.1) ===\n");
  std::printf("(256 KB messages forwarded hop by hop, Mbps)\n\n");
  std::printf("%10s %14s %10s %14s\n", "domains", "cached-fbufs", "copying", "fbuf/copy");
  for (const int n : {2, 3, 4, 5, 6, 8}) {
    const double f = FbufChainMbps(n);
    const double c = CopyChainMbps(n);
    std::printf("%10d %14.0f %10.0f %13.1fx\n", n, f, c, f / c);
  }
  std::printf(
      "\nreading: with cached fbufs each extra domain costs one IPC latency and TLB\n"
      "touches; with copying it costs a full memory-bandwidth pass over the data. This\n"
      "is the paper's §5.1 answer to \"how many domains?\": with fbufs, server-based\n"
      "structures stop being a throughput question.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
