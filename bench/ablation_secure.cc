// Ablation A4: eager vs lazy immutability enforcement (§2.1.3, §3.2.4).
//
// Eager (non-volatile) pays the raise/restore protection trap on every
// transfer. Lazy (volatile + Secure-on-request) pays it only for the
// fraction of messages whose receiver actually interprets the data. The
// crossover: lazy wins whenever that fraction is below 100%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/fbuf_adapter.h"

namespace fbufs {
namespace bench {
namespace {

// Per-page cost with the given policy; |secure_percent| of messages have a
// receiver that calls Secure() before reading (only meaningful for lazy).
double PerPageUs(bool eager, std::uint32_t secure_percent) {
  BenchWorld w;
  FbufTransferAdapter f(&w.fsys, w.path, /*cached=*/true, /*volatile=*/!eager);
  constexpr std::uint64_t kPages = 96;
  constexpr int kIters = 20;
  int secured = 0;
  auto cycle = [&](int i) {
    BufferRef ref;
    f.Alloc(*w.src, kPages * kPageSize, &ref);
    w.src->TouchRange(ref.sender_addr, ref.bytes, Access::kWrite);
    f.Send(ref, *w.src, *w.dst);
    if (!eager && static_cast<std::uint32_t>(i * 100 / kIters) < secure_percent) {
      w.fsys.Secure(w.fsys.Get(static_cast<FbufId>(ref.cookie)), *w.dst);
      secured++;
    }
    w.dst->TouchRange(ref.receiver_addr, ref.bytes, Access::kRead);
    f.ReceiverFree(ref, *w.dst);
    f.SenderFree(ref, *w.src);
  };
  for (int i = 0; i < 3; ++i) {
    cycle(kIters);  // warmup, never secures
  }
  const SimTime before = w.machine.clock().Now();
  for (int i = 0; i < kIters; ++i) {
    cycle(i);
  }
  return (w.machine.clock().Now() - before) / 1000.0 / (kIters * kPages);
}

int Main() {
  std::printf("\n=== Ablation A4: eager vs lazy immutability enforcement ===\n");
  std::printf("eager (non-volatile):        %6.1f us/page\n", PerPageUs(true, 0));
  std::printf("\nlazy (volatile + Secure on demand), by fraction of receivers that\n"
              "interpret the data:\n");
  std::printf("%14s %12s\n", "interpret-%", "us/page");
  for (const std::uint32_t p : {0u, 25u, 50u, 75u, 100u}) {
    std::printf("%13u%% %12.1f\n", p, PerPageUs(false, p));
  }
  std::printf(
      "\nreading: at 100%% lazy equals eager (same traps, just later); below that lazy\n"
      "scales the protection cost by actual need — the paper's rationale for volatile\n"
      "fbufs as the default (§3.2.4).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
