// Ablation: shared-memory transfer rings vs per-delivery synchronous RPC.
//
// The Figure 4 world (UDP/IP loopback over three domains: originator ->
// netserver -> receiver, cached fbufs), driven in bursts of K messages with
// the ring doorbell batch set to K. On the synchronous path every delivery
// pays its own crossing; on the ring path a burst's descriptors share one
// doorbell per ring, so crossings/transfer -> 1/K and the mid-size curves
// lift from the 3-domain sync line toward the single-domain ceiling, which
// is exactly the amortization claim the ring subsystem makes.
//
// Every point hard-checks attribution conservation (TimeAttributionJson
// aborts on any hole, per-lane and to the nanosecond) plus two shape
// invariants: measured crossings/transfer tracks 1/K, and for every size the
// largest-K goodput beats both K=1 and the synchronous baseline. The last
// ring point exports TRACE_ablation_rings.json with ring sq_depth/doorbell
// counter tracks and a lane-conservation instant, and contributes the
// "metrics" section (log2 histograms with p50/p99) plus the per-path
// ring-occupancy slices to BENCH_ablation_rings.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace_export.h"
#include "src/pressure/backoff.h"
#include "src/proto/loopback_stack.h"
#include "src/ring/ring_hub.h"

namespace fbufs {
namespace bench {
namespace {

struct PointResult {
  double goodput_mbps = 0;
  double crossings_per_transfer = 0;  // ipc crossings / ring submissions
  double ipc_per_message = 0;
  std::uint64_t messages = 0;
  std::uint64_t ipc_calls = 0;
  std::uint64_t submissions = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t sq_full = 0;
  std::uint64_t ring_errors = 0;
};

enum class Mode { kSingleDomain, kSync, kRinged };

// One measurement world. |artifact| non-null on the showcase point: that run
// records metrics/trace and leaves the attribution + metrics JSON behind.
struct Artifacts {
  std::string attribution_json;
  std::string metrics_json;
};

PointResult RunPoint(Mode mode, std::uint32_t batch, std::uint64_t size,
                     int rounds, Artifacts* artifacts) {
  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine, FbufConfig{});
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  LoopbackStackConfig cfg;
  cfg.pdu_size = 4096;
  cfg.three_domains = mode != Mode::kSingleDomain;
  cfg.cached_paths = true;
  LoopbackStack ls(&machine, &fsys, &rpc, cfg);

  EventLoop loop;
  RingHub hub(&machine, &fsys, &rpc, &loop,
              RingConfig{/*sq_slots=*/256, /*cq_slots=*/256,
                         /*doorbell_batch=*/batch, /*drain_budget=*/64,
                         /*flush_delay_ns=*/50000},
              /*auto_create=*/true);
  MetricsRegistry metrics;
  if (mode == Mode::kRinged) {
    ls.stack().EnableRings(&hub);
    fsys.SetNoticeTransport(&hub);
    if (artifacts != nullptr) {
      metrics.EnableTraceSampling();
      machine.trace().SetCapacity(std::size_t{1} << 16);
      machine.trace().Enable(TraceCategory::kIpc);
      machine.trace().Enable(TraceCategory::kPhase);
      machine.cpu_lane(0).set_record_intervals(true);
      machine.AttachMetrics(&metrics);
    }
  }

  const bool ringed = mode == Mode::kRinged;
  auto send_burst = [&]() -> bool {
    for (std::uint32_t i = 0; i < batch; ++i) {
      Status st = ls.SendMessage(size);
      if (ringed && IsBackpressure(st)) {
        // Full SQ: drain the consumer, then retry once — the contract a
        // FlowBackoff caller follows.
        loop.Run();
        st = ls.SendMessage(size);
      }
      if (!Ok(st)) {
        return false;
      }
    }
    if (ringed) {
      hub.FlushAll();
      loop.Run();
    }
    return true;
  };

  for (int i = 0; i < 2; ++i) {
    if (!send_burst()) {
      return PointResult{};
    }
  }
  const SimTime before = machine.clock().Now();
  const std::uint64_t ipc_before = machine.stats().ipc_calls;
  const std::uint64_t sub_before = hub.TotalSubmitted();
  for (int i = 0; i < rounds; ++i) {
    if (!send_burst()) {
      return PointResult{};
    }
  }
  const SimTime elapsed = machine.clock().Now() - before;

  PointResult p;
  p.messages = static_cast<std::uint64_t>(rounds) * batch;
  p.ipc_calls = machine.stats().ipc_calls - ipc_before;
  p.submissions = hub.TotalSubmitted() - sub_before;
  p.doorbells = hub.TotalDoorbells();
  p.sq_full = hub.TotalSqFull();
  p.ring_errors = ls.stack().ring_errors();
  p.goodput_mbps = static_cast<double>(size) * p.messages * 8.0 * 1000.0 /
                   static_cast<double>(elapsed);
  p.ipc_per_message =
      static_cast<double>(p.ipc_calls) / static_cast<double>(p.messages);
  p.crossings_per_transfer =
      p.submissions > 0
          ? static_cast<double>(p.ipc_calls) / static_cast<double>(p.submissions)
          : 0;

  if (p.ring_errors != 0) {
    std::fprintf(stderr, "ablation_rings: %llu deferred deliveries failed\n",
                 static_cast<unsigned long long>(p.ring_errors));
    std::abort();
  }
  if (ringed) {
    // Amortization invariant: crossings per ring transfer tracks 1/K. The
    // slack covers the handful of flush-timer doorbells on notice rings.
    const double ratio = p.crossings_per_transfer;
    const double k = static_cast<double>(batch);
    if (ratio > 2.0 / k + 0.02 || ratio < 0.2 / k) {
      std::fprintf(stderr,
                   "ablation_rings: crossings/transfer %.4f out of range for "
                   "K=%u (expected ~%.4f)\n",
                   ratio, batch, 1.0 / k);
      std::abort();
    }
  }

  // Conservation, hard-checked on every sweep point; the artifact point also
  // keeps the JSON (with per-path ring-occupancy slices) for the report.
  const std::map<AttrPathId, SimTime> occupancy = hub.PathOccupancyNs();
  AttributionJsonOptions opts;
  opts.per_path = true;
  opts.per_cpu = true;
  if (ringed) {
    opts.per_path_ring_occupancy = &occupancy;
  }
  const std::string attr = TimeAttributionJson(machine, opts);
  if (artifacts != nullptr && ringed) {
    artifacts->attribution_json = attr;
    artifacts->metrics_json = metrics.ToJson();
    TraceExporter ex;
    ex.AddHost(machine.name(), 1, machine.trace());
    ex.AddResource(machine.cpu_lane(0));
    ex.AddCounterTracks("metrics/rings", 9000, metrics, machine.ElapsedNs());
    ex.AddLaneConservation("cpu/" + machine.name(),
                           machine.attribution().ByCpu(0), machine.ElapsedNs());
    const std::string path = "TRACE_ablation_rings.json";
    if (ex.WriteFile(path)) {
      std::fprintf(stderr, "wrote %s (%zu events)\n", path.c_str(),
                   ex.event_count());
    }
    machine.AttachMetrics(nullptr);
  }
  return p;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const std::vector<std::uint64_t> sizes =
      smoke ? std::vector<std::uint64_t>{8192, 65536}
            : std::vector<std::uint64_t>{2048,  4096,  8192,   16384,
                                         32768, 65536, 131072, 262144};
  const std::vector<std::uint32_t> batches =
      smoke ? std::vector<std::uint32_t>{1, 4, 16}
            : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32};
  const std::uint64_t target_messages = smoke ? 16 : 64;

  PrintHeader("Ablation: transfer rings vs synchronous RPC (loopback, Mbps)");
  std::printf("%10s %12s %12s", "size", "1-domain", "sync-3dom");
  for (std::uint32_t k : batches) {
    std::printf("   ring K=%-4u", k);
  }
  std::printf("\n");

  JsonReport report("ablation_rings");
  Artifacts artifacts;
  for (const std::uint64_t size : sizes) {
    auto rounds_for = [&](std::uint32_t k) {
      const std::uint64_t r = target_messages / k;
      return static_cast<int>(r > 0 ? r : 1);
    };
    const PointResult single =
        RunPoint(Mode::kSingleDomain, 1, size, rounds_for(1), nullptr);
    const PointResult sync =
        RunPoint(Mode::kSync, 1, size, rounds_for(1), nullptr);
    std::printf("%10llu %12.1f %12.1f", static_cast<unsigned long long>(size),
                single.goodput_mbps, sync.goodput_mbps);
    report.BeginRow()
        .Field("mode", "single_domain")
        .Field("size", static_cast<double>(size))
        .Field("goodput_mbps", single.goodput_mbps)
        .Field("ipc_per_message", single.ipc_per_message);
    report.BeginRow()
        .Field("mode", "sync")
        .Field("size", static_cast<double>(size))
        .Field("goodput_mbps", sync.goodput_mbps)
        .Field("ipc_per_message", sync.ipc_per_message);

    double prev = 0;
    double first_k = 0;
    for (const std::uint32_t k : batches) {
      const bool last_point = size == sizes.back() && k == batches.back();
      const PointResult p = RunPoint(Mode::kRinged, k, size, rounds_for(k),
                                     last_point ? &artifacts : nullptr);
      std::printf("   %11.1f", p.goodput_mbps);
      report.BeginRow()
          .Field("mode", "ring")
          .Field("size", static_cast<double>(size))
          .Field("doorbell_batch", static_cast<double>(k))
          .Field("goodput_mbps", p.goodput_mbps)
          .Field("crossings_per_transfer", p.crossings_per_transfer)
          .Field("ipc_per_message", p.ipc_per_message)
          .Field("ring_submissions", static_cast<double>(p.submissions))
          .Field("ring_doorbells", static_cast<double>(p.doorbells))
          .Field("ring_sq_full", static_cast<double>(p.sq_full));
      if (k == batches.front()) {
        first_k = p.goodput_mbps;
      }
      // Monotone lift: more amortization never loses (small slack for the
      // flush-timer tail shifting between K values).
      if (prev > 0 && p.goodput_mbps < prev * 0.98) {
        std::fprintf(stderr,
                     "ablation_rings: goodput fell from %.1f to %.1f Mbps "
                     "going to K=%u at size %llu\n",
                     prev, p.goodput_mbps, k,
                     static_cast<unsigned long long>(size));
        std::abort();
      }
      prev = p.goodput_mbps;
      if (k == batches.back() &&
          (p.goodput_mbps <= sync.goodput_mbps ||
           p.goodput_mbps <= first_k)) {
        std::fprintf(stderr,
                     "ablation_rings: K=%u (%.1f Mbps) failed to beat sync "
                     "(%.1f) or K=%u (%.1f) at size %llu\n",
                     k, p.goodput_mbps, sync.goodput_mbps, batches.front(),
                     first_k, static_cast<unsigned long long>(size));
        std::abort();
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape: ring K=1 trails sync (extra descriptor + doorbell work, same\n"
      "crossing count); from K=2 up the shared doorbell amortizes the crossing\n"
      "and the mid-size curves climb toward the single-domain ceiling as\n"
      "crossings/transfer -> 1/K.\n");

  report.RawSection("time_attribution", artifacts.attribution_json);
  report.RawSection("metrics", artifacts.metrics_json);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main(int argc, char** argv) { return fbufs::bench::Main(argc, argv); }
