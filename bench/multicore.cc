// Multicore scaling study: flows x CPUs on the fan-in topology.
//
// K senders push small PDUs through an ATM switch onto a fat trunk into one
// receiver whose machine has N CPU lanes. Receive processing for each flow
// is RSS-steered by VCI to a fixed lane and runs through the receiver's
// evented dispatch queues, so flows sharing a lane serialize behind each
// other (the queueing delay is measured, not modeled away). With one lane
// the receiving CPU is the bottleneck; adding lanes scales goodput until a
// hardware resource — RX DMA or the trunk — saturates instead, which is
// where real multicore hosts stop benefiting too.
//
// Every point hard-checks attribution conservation on the receiver, per
// lane and to the nanosecond: the time attributed to lane i must equal lane
// i's clock exactly, and the sum over lanes must equal the attributed
// total. The last point also exports TRACE_multicore.json with per-lane
// busy intervals, dispatch-queue depth/wait counter tracks, and one
// lane_conservation instant per lane for tools/validate_traces.py.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace_export.h"
#include "src/topo/topo_config.h"

namespace fbufs {
namespace bench {
namespace {

constexpr std::uint64_t kPduBytes = 2 * 1024;

struct SweepPoint {
  std::size_t flows = 0;
  std::uint32_t cpus = 0;
  double goodput_mbps = 0;     // sum of per-flow delivered rates
  double rx_lane_util = 0;     // hottest receiver lane
  double rx_dma_util = 0;
  double trunk_util = 0;
  std::uint64_t dispatch_items = 0;
  double dispatch_wait_total_us = 0;  // queueing delay behind busy lanes
  double dispatch_wait_max_us = 0;
  std::string bottleneck;
  double bottleneck_util = 0;
};

struct PointArtifacts {
  std::string attribution_json;  // receiver, per-path + per-lane breakdown
  std::string metrics_json;      // receiver metrics (histograms with p50/p99)
  bool export_trace = false;
};

SweepPoint RunPoint(std::size_t flows, std::uint32_t cpus,
                    std::uint64_t messages, PointArtifacts* artifacts) {
  TopologyConfig cfg;
  cfg.shape = TopologyShape::kFanInSwitch;
  cfg.senders = flows;
  cfg.host.pdu_size = kPduBytes;
  cfg.host.machine.num_cpus = cpus;
  // The uplinks and switch port run well above what one receiving CPU can
  // absorb at this PDU size, so with few lanes the receiver's CPU is the
  // ceiling; the 80 Mbps trunk is sized so that once enough lanes are added
  // the wire takes over as the bottleneck — the point past which more cores
  // stop paying, exactly the crossover the sweep is after.
  cfg.sender_link_mbps = 622.0;
  cfg.switch_port.mbps = 2400.0;
  cfg.switch_port.queue_pdus = 256;
  cfg.trunk_mbps = 80.0;

  BuiltTopology b = BuildTopology(cfg);
  SimHost* rx = b.topo->host(b.receiver_node);

  MetricsRegistry metrics;
  if (artifacts != nullptr && artifacts->export_trace) {
    metrics.EnableTraceSampling();
    rx->machine.trace().SetCapacity(std::size_t{1} << 16);
    rx->machine.trace().EnableAll();
    for (std::uint32_t c = 0; c < rx->machine.num_cpus(); ++c) {
      rx->machine.cpu_lane(c).set_record_intervals(true);
    }
  }
  rx->machine.AttachMetrics(&metrics);

  std::vector<FlowTraffic> traffic(flows);
  for (FlowTraffic& t : traffic) {
    t.messages = messages;
    t.bytes = kPduBytes;
    t.warmup = 4;
  }
  const MultiResult mr = b.runner->RunFlows(traffic);

  SweepPoint p;
  p.flows = flows;
  p.cpus = cpus;
  for (const FlowResult& f : mr.flows) {
    p.goodput_mbps += f.goodput_mbps;
  }
  for (const ResourceUse& r : mr.resources) {
    const bool rx_lane = r.name == "cpu/receiver" ||
                         r.name.rfind("cpu/receiver/", 0) == 0;
    if (rx_lane) {
      p.rx_lane_util = std::max(p.rx_lane_util, r.utilization);
    } else if (r.name == "rx-dma") {
      p.rx_dma_util = std::max(p.rx_dma_util, r.utilization);
    } else if (r.name == "trunk") {
      p.trunk_util = r.utilization;
    }
    if (r.utilization > p.bottleneck_util) {
      p.bottleneck_util = r.utilization;
      p.bottleneck = r.name;
    }
  }
  if (rx->dispatcher != nullptr) {
    p.dispatch_wait_total_us =
        static_cast<double>(rx->dispatcher->TotalWaitNs()) / 1000.0;
    p.dispatch_wait_max_us =
        static_cast<double>(rx->dispatcher->MaxWaitNs()) / 1000.0;
    for (std::uint32_t c = 0; c < rx->machine.num_cpus(); ++c) {
      p.dispatch_items += rx->dispatcher->QueueForCpu(c).completed();
    }
  }

  // Conservation, checked on every point (TimeAttributionJson aborts on any
  // violation): total attributed == sum of lane clocks, and with per_cpu
  // each lane's cells == that lane's clock, nanosecond-exact.
  AttributionJsonOptions opts;
  opts.per_path = true;
  opts.per_cpu = true;
  opts.dispatch_wait_ns =
      rx->dispatcher != nullptr
          ? static_cast<long long>(rx->dispatcher->TotalWaitNs())
          : 0;
  if (rx->dispatcher != nullptr) {
    // Slice the queueing delay by submitting path: "by_path" entries become
    // {"ns", "dispatch_wait_ns"} objects, CPU time beside parked latency.
    opts.per_path_dispatch_wait = &rx->dispatcher->PathWaitNs();
  }
  const std::string attr = TimeAttributionJson(rx->machine, opts);
  if (artifacts != nullptr) {
    artifacts->attribution_json = "{\n    \"receiver\": " + attr + "\n  }";
    artifacts->metrics_json = metrics.ToJson();
    if (artifacts->export_trace) {
      TraceExporter ex;
      std::uint32_t pid = 1;
      for (NodeId n = 0; n < b.topo->node_count(); ++n) {
        SimHost* h = b.topo->is_switch(n) ? nullptr : b.topo->host(n);
        if (h != nullptr) {
          ex.AddHost(h->machine.name(), pid++, h->machine.trace());
        }
      }
      for (std::uint32_t c = 0; c < rx->machine.num_cpus(); ++c) {
        ex.AddResource(rx->machine.cpu_lane(c));
      }
      ex.AddCounterTracks("metrics/receiver", 9000, metrics,
                          rx->machine.ElapsedNs());
      const SimTime elapsed = rx->machine.ElapsedNs();
      const Attribution& a = rx->machine.attribution();
      for (std::uint32_t c = 0; c < rx->machine.num_cpus(); ++c) {
        ex.AddLaneConservation(
            "cpu/receiver/" + std::to_string(c), a.ByCpu(c), elapsed);
      }
      const std::string path = "TRACE_multicore.json";
      if (ex.WriteFile(path)) {
        std::fprintf(stderr, "wrote %s (%zu events)\n", path.c_str(),
                     ex.event_count());
      }
    }
  }
  rx->machine.AttachMetrics(nullptr);
  return p;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const std::uint64_t messages = smoke ? 48 : 256;
  const std::vector<std::size_t> flow_counts =
      smoke ? std::vector<std::size_t>{1, 2, 4} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::uint32_t> cpu_counts = {1, 2, 4};

  std::printf("\n=== Multicore receiver scaling "
              "(fan-in, %llu KB PDUs, RSS by VCI, evented dispatch) ===\n",
              static_cast<unsigned long long>(kPduBytes / 1024));
  std::printf("%6s %5s %9s %8s %8s %8s %7s %10s %9s  %s\n", "flows", "cpus",
              "goodput", "rx-lane", "rx-dma", "trunk", "disp#", "wait-tot",
              "wait-max", "bottleneck");

  JsonReport report("multicore");
  std::string attr_json;
  std::string metrics_json;
  for (std::size_t flows : flow_counts) {
    for (std::uint32_t cpus : cpu_counts) {
      const bool last = flows == flow_counts.back() && cpus == cpu_counts.back();
      PointArtifacts artifacts;
      artifacts.export_trace = last;
      const SweepPoint p = RunPoint(flows, cpus, messages, &artifacts);
      if (last) {
        attr_json = artifacts.attribution_json;
        metrics_json = artifacts.metrics_json;
      }
      std::printf("%6zu %5u %7.1fMb %7.0f%% %7.0f%% %7.0f%% %7llu %8.1fus "
                  "%7.1fus  %s (%.0f%%)\n",
                  p.flows, p.cpus, p.goodput_mbps, p.rx_lane_util * 100.0,
                  p.rx_dma_util * 100.0, p.trunk_util * 100.0,
                  static_cast<unsigned long long>(p.dispatch_items),
                  p.dispatch_wait_total_us, p.dispatch_wait_max_us,
                  p.bottleneck.c_str(), p.bottleneck_util * 100.0);
      report.BeginRow()
          .Field("flows", static_cast<double>(p.flows))
          .Field("cpus", static_cast<double>(p.cpus))
          .Field("aggregate_goodput_mbps", p.goodput_mbps)
          .Field("rx_lane_util", p.rx_lane_util)
          .Field("rx_dma_util", p.rx_dma_util)
          .Field("trunk_util", p.trunk_util)
          .Field("dispatch_items", static_cast<double>(p.dispatch_items))
          .Field("dispatch_wait_total_us", p.dispatch_wait_total_us)
          .Field("dispatch_wait_max_us", p.dispatch_wait_max_us)
          .Field("bottleneck", p.bottleneck)
          .Field("bottleneck_util", p.bottleneck_util);
    }
  }
  report.RawSection("time_attribution", attr_json);
  report.RawSection("metrics", metrics_json);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main(int argc, char** argv) { return fbufs::bench::Main(argc, argv); }
