// Incast congestion sweep: fan-in degree x congestion policy, on the
// rack-structured IncastWorld (R racks of S senders converging on one
// receiver through ToR uplinks and a core downlink with bounded queues).
//
// The sweep holds the fabric fixed and scales the fan-in past the point
// where the fixed-window transport's aggregate in-flight (window x flows)
// exceeds the bottleneck queue. Past that knee the classic collapse
// unfolds: tail drops punch holes in every window, go-back-all
// retransmission resends whole windows into the same full queue, and
// goodput falls even though the wire never idles. The credit transport
// sizes aggregate in-flight below the queue via receiver grants
// (PressureManager::CreditFor against fbuf-pool headroom), and the AIMD
// transport backs off on per-VCI ECN marks before the queue overflows —
// both cross the same knee within a fraction of their pre-knee goodput.
//
// The bench self-checks that shape (collapse for fixed-window, graceful
// degradation for credit and AIMD), full drainage, the per-conversation
// window/ledger audit, and the host §3.3 audit at every point, and exits
// nonzero when any check fails. Deterministic: the same build writes a
// byte-identical BENCH_incast.json and TRACE_incast.json on every run.
// --smoke trims the sweep to the two points the self-checks need.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/auditor.h"
#include "src/fault/incast_world.h"
#include "src/obs/lifecycle.h"
#include "src/obs/trace_export.h"

namespace fbufs {
namespace bench {
namespace {

// 32 KB PDUs serialize in ~1.7 ms at the OC-3 line rate — several times the
// shared host CPU's ~0.6 ms per-PDU protocol cost, so the fabric (not the
// CPU) is the bottleneck and switch queues actually build.
constexpr std::uint64_t kPduBytes = 8 * kPageSize;

struct PointResult {
  TransportKind kind = TransportKind::kFixedWindow;
  std::uint32_t fanin = 0;
  double goodput_mbps = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t switch_drops = 0;
  std::uint64_t ecn_marks = 0;
  std::uint64_t parks = 0;
  std::uint64_t accepted = 0;
  bool drained = false;
  bool stalled = false;
  bool failed = false;
  bool audit_passed = false;
  // Fbuf provenance: journeys recorded, and whether they reconciled (every
  // journey ends kFree/kAbort, every pin released, nothing left open).
  std::uint64_t journeys = 0;
  bool journeys_ok = false;
  std::string latency_json;  // per-point LatencyDecomposition::ToJson()
};

IncastWorldConfig ConfigFor(TransportKind kind, std::uint32_t fanin) {
  IncastWorldConfig cfg;
  cfg.kind = kind;
  cfg.racks = 2;
  cfg.senders_per_rack = fanin / cfg.racks;
  // Fixed window and the AIMD cwnd cap. Queue, window, and fan-in place the
  // knee between 4 and 8 senders: at fan-in 4 the fixed-window aggregate
  // (4x8 PDUs) just fits the core queue; at 8 and 16 it overloads it 2-4x
  // continuously, so every RTO's go-back-all resends a mostly-received
  // window into a full queue and the duplicates steal bottleneck capacity
  // from new data — the sustained-waste half of the collapse, on top of the
  // synchronized-stall half. AIMD shares the cap but its ECN response keeps
  // it from probing that high; credit's aggregate (1 per flow) never
  // exceeds the queue at any swept fan-in.
  cfg.window = 8;
  cfg.initial_credits = 1;
  cfg.max_credit = 1;
  cfg.ssthresh = 2;
  // Mark when a flow's standing share of a switch queue exceeds two PDUs,
  // so AIMD converges below the drop point instead of probing into it.
  cfg.ecn_threshold_pdus = kind == TransportKind::kAimd ? 2 : 0;
  cfg.switch_queue_pdus = 32;
  return cfg;
}

PointResult RunPoint(TransportKind kind, std::uint32_t fanin, int messages,
                     std::string* attr_json, bool export_trace) {
  PointResult r;
  r.kind = kind;
  r.fanin = fanin;

  const IncastWorldConfig cfg = ConfigFor(kind, fanin);
  IncastWorld w(cfg);
  // Provenance and latency decomposition ride every point: the tracker and
  // the per-flow sample vectors are pure host-side observers, so attaching
  // them never moves a simulated timestamp.
  LifecycleTracker lifecycle(&w.machine);
  w.machine.AttachLifecycle(&lifecycle);
  w.EnableLatency();
  MetricsRegistry metrics;
  if (export_trace) {
    metrics.EnableTraceSampling();
    w.machine.AttachMetrics(&metrics);
    for (std::uint32_t rk = 0; rk < cfg.racks; ++rk) {
      w.topo.switch_at(w.tor_node(rk))->AttachMetrics(&metrics);
    }
    w.topo.switch_at(w.core_node())->AttachMetrics(&metrics);
    w.machine.trace().SetCapacity(std::size_t{1} << 17);
    w.machine.trace().EnableAll();
    for (LinkId l = 0; l < w.topo.link_count(); ++l) {
      w.topo.link(l).wire().set_record_intervals(true);
    }
    for (std::uint32_t rk = 0; rk < cfg.racks; ++rk) {
      w.topo.switch_at(w.tor_node(rk))->port_resource(0).set_record_intervals(true);
    }
    w.topo.switch_at(w.core_node())->port_resource(0).set_record_intervals(true);
  }

  w.StartProducers(messages, kPduBytes);
  w.loop.Run();
  const SimTime elapsed = w.loop.Now();

  r.delivered = w.total_delivered();
  r.retransmissions = w.total_retransmissions();
  r.switch_drops = w.switch_drops();
  r.ecn_marks = w.ecn_marks();
  r.parks = w.total_parks();
  r.accepted = w.total_accepted();
  r.stalled = w.any_producer_stalled();
  r.failed = w.any_producer_failed();
  r.drained =
      r.accepted == static_cast<std::uint64_t>(messages) * w.flow_count() &&
      r.delivered == r.accepted * kPduBytes;
  if (elapsed > 0) {
    r.goodput_mbps = static_cast<double>(r.delivered) * 8.0 * 1000.0 /
                     static_cast<double>(elapsed);
  }

  // Per-conversation audit (window drained, stash empty, zero copies,
  // ledger empty) plus the host-wide §3.3 audit.
  bool audits = true;
  for (std::size_t i = 0; i < w.flow_count(); ++i) {
    IncastWorld::Flow& f = w.flow(i);
    audits = audits &&
             InvariantAuditor::AuditSwp(*f.sender, *f.receiver, w.machine).passed;
  }
  audits =
      audits && InvariantAuditor::AuditHost("incast", w.machine, w.fsys).passed;
  r.audit_passed = audits;

  // Journey reconciliation next to the §3.3 audit: a drained incast run must
  // close every journey (kFree), balance every retransmit pin, and leave
  // nothing open or dropped.
  const LifecycleTracker::Reconciliation rec = lifecycle.Reconcile();
  r.journeys = lifecycle.journeys().size();
  r.journeys_ok = rec.passed() && rec.open == 0 && rec.dropped == 0;
  if (!r.journeys_ok) {
    std::fprintf(stderr,
                 "incast: journey reconciliation failed: open=%llu "
                 "pin_imbalance=%llu bad_end=%llu dropped=%llu\n",
                 static_cast<unsigned long long>(rec.open),
                 static_cast<unsigned long long>(rec.pin_imbalance),
                 static_cast<unsigned long long>(rec.bad_end),
                 static_cast<unsigned long long>(rec.dropped));
  }

  // End-to-end latency decomposition, merged across the point's flows.
  LatencyDecomposition lat;
  for (std::size_t i = 0; i < w.flow_count(); ++i) {
    lat.Merge(w.flow(i).lat);
  }
  r.latency_json = lat.ToJson();

  if (attr_json != nullptr) {
    // Satellite slicing: one attribution bucket per conversation, claiming
    // its header and data paths (the cells already carry the path id).
    std::vector<std::pair<std::string, std::vector<AttrPathId>>> flows;
    for (std::size_t i = 0; i < w.flow_count(); ++i) {
      const IncastWorld::Flow& f = w.flow(i);
      flows.emplace_back("flow" + std::to_string(i),
                         std::vector<AttrPathId>{
                             static_cast<AttrPathId>(f.tx_hdr),
                             static_cast<AttrPathId>(f.rx_hdr),
                             static_cast<AttrPathId>(f.data)});
    }
    AttributionJsonOptions opts;
    opts.flows = &flows;
    *attr_json = TimeAttributionJson(w.machine, opts);
  }
  if (export_trace) {
    TraceExporter ex;
    ex.AddHost(w.machine.name(), 1, w.machine.trace());
    for (std::uint32_t rk = 0; rk < cfg.racks; ++rk) {
      ex.AddResource(w.topo.switch_at(w.tor_node(rk))->port_resource(0));
    }
    ex.AddResource(w.topo.switch_at(w.core_node())->port_resource(0));
    ex.AddCounterTracks("metrics/incast", 30, metrics, elapsed);
    ex.AddLifecycleFlows("lifecycle/incast", 31, lifecycle);
    if (ex.WriteFile("TRACE_incast.json")) {
      std::fprintf(stderr, "wrote TRACE_incast.json (%zu events)\n",
                   ex.event_count());
    }
  }
  // The tracker and registry die with this frame while the world's teardown
  // still frees fbufs — detach so destructors never chase a dead observer.
  w.machine.AttachLifecycle(nullptr);
  w.machine.AttachMetrics(nullptr);
  return r;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  // Pre-knee and post-knee points are load-bearing (the self-checks compare
  // them); the interior points draw the curve in full mode.
  const std::vector<std::uint32_t> fanins =
      smoke ? std::vector<std::uint32_t>{2, 16}
            : std::vector<std::uint32_t>{2, 4, 8, 16};
  const int messages = smoke ? 10 : 40;
  const std::vector<TransportKind> kinds = {
      TransportKind::kFixedWindow, TransportKind::kCredit, TransportKind::kAimd};

  PrintHeader("Incast fan-in sweep (congestion policy x senders)");
  std::printf("%8s %6s %12s %8s %8s %7s %7s %7s\n", "kind", "fanin", "goodput",
              "retx", "drops", "marks", "parks", "audit");

  JsonReport json("incast");
  std::string attr_json;
  std::string lat_section;  // {"<kind>_fanin<N>": {slices...}, ...}
  std::vector<std::vector<PointResult>> results(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (const std::uint32_t fanin : fanins) {
      // The trace snapshot: the fixed-window transport at the worst fan-in,
      // where the retransmission storm is visible. Attribution comes from
      // every point (the last written wins), conservation-checked each time.
      const bool trace = kinds[k] == TransportKind::kFixedWindow &&
                         fanin == fanins.back();
      const PointResult r =
          RunPoint(kinds[k], fanin, messages, &attr_json, trace);
      results[k].push_back(r);
      std::printf("%8s %6u %9.1f Mb %8llu %8llu %7llu %7llu %7s%s%s%s\n",
                  TransportKindName(r.kind), r.fanin, r.goodput_mbps,
                  static_cast<unsigned long long>(r.retransmissions),
                  static_cast<unsigned long long>(r.switch_drops),
                  static_cast<unsigned long long>(r.ecn_marks),
                  static_cast<unsigned long long>(r.parks),
                  r.audit_passed ? "clean" : "DIRTY",
                  r.drained ? "" : "  UNDRAINED",
                  r.stalled ? "  STALLED" : "", r.failed ? "  FAILED" : "");
      json.BeginRow()
          .Field("transport", TransportKindName(r.kind))
          .Field("fanin", static_cast<double>(r.fanin))
          .Field("goodput_mbps", r.goodput_mbps)
          .Field("delivered_bytes", static_cast<double>(r.delivered))
          .Field("retransmissions", static_cast<double>(r.retransmissions))
          .Field("switch_drops", static_cast<double>(r.switch_drops))
          .Field("ecn_marks", static_cast<double>(r.ecn_marks))
          .Field("backpressure_parks", static_cast<double>(r.parks))
          .Field("drained", r.drained ? 1.0 : 0.0)
          .Field("audit_passed", r.audit_passed ? 1.0 : 0.0)
          .Field("journeys", static_cast<double>(r.journeys))
          .Field("journeys_ok", r.journeys_ok ? 1.0 : 0.0);
      lat_section += (lat_section.empty() ? "{\n    " : ",\n    ");
      lat_section += "\"" + std::string(TransportKindName(r.kind)) + "_fanin" +
                     std::to_string(r.fanin) + "\": " + r.latency_json;
    }
  }
  lat_section += "\n  }";
  json.RawSection("time_attribution", attr_json);
  json.RawSection("latency_decomposition", lat_section);
  json.Write();

  // --- Self-checks: collapse vs graceful degradation --------------------------
  bool ok = true;
  auto fail = [&ok](const std::string& why) {
    std::printf("SELF-CHECK FAILED: %s\n", why.c_str());
    ok = false;
  };

  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (const PointResult& r : results[k]) {
      const std::string at = std::string(TransportKindName(r.kind)) +
                             " fanin=" + std::to_string(r.fanin);
      if (!r.drained || r.stalled || r.failed) {
        fail("point did not drain cleanly (" + at + ")");
      }
      if (!r.audit_passed) {
        fail("post-run audit failed (" + at + ")");
      }
      if (!r.journeys_ok || r.journeys == 0) {
        fail("journey reconciliation failed (" + at + ")");
      }
      if (r.goodput_mbps <= 0) {
        fail("zero goodput (" + at + ")");
      }
    }
  }

  // Pre-knee baseline: the smallest fan-in (aggregate in-flight far below
  // the queue for every policy). Post-knee: the largest.
  const PointResult& swp_pre = results[0].front();
  const PointResult& swp_post = results[0].back();
  const PointResult& credit_pre = results[1].front();
  const PointResult& credit_post = results[1].back();
  const PointResult& aimd_pre = results[2].front();
  const PointResult& aimd_post = results[2].back();

  // Fixed-window: the storm must be real (drops, whole-window retransmits)
  // and goodput must collapse well below the pre-knee level.
  if (swp_post.switch_drops == 0) {
    fail("fixed-window never overflowed a switch queue past the knee");
  }
  if (swp_post.retransmissions == 0) {
    fail("fixed-window never retransmitted past the knee");
  }
  if (swp_post.goodput_mbps > swp_pre.goodput_mbps * 0.7) {
    fail("fixed-window did not collapse: " +
         std::to_string(swp_post.goodput_mbps) + " vs pre-knee " +
         std::to_string(swp_pre.goodput_mbps));
  }
  // Credit and AIMD: within 20% of their own pre-knee goodput at the same
  // post-knee fan-in where fixed-window collapsed.
  if (credit_post.goodput_mbps < credit_pre.goodput_mbps * 0.8) {
    fail("credit degraded past 20%: " + std::to_string(credit_post.goodput_mbps) +
         " vs pre-knee " + std::to_string(credit_pre.goodput_mbps));
  }
  if (aimd_post.goodput_mbps < aimd_pre.goodput_mbps * 0.8) {
    fail("aimd degraded past 20%: " + std::to_string(aimd_post.goodput_mbps) +
         " vs pre-knee " + std::to_string(aimd_pre.goodput_mbps));
  }
  // The AIMD signal path must actually fire post-knee: marks seen at the
  // switch, echoed, and answered with multiplicative decreases.
  if (aimd_post.ecn_marks == 0) {
    fail("aimd post-knee run never raised an ECN mark");
  }

  std::printf("\n%s\n", ok ? "incast sweep self-checks passed"
                           : "INCAST SWEEP SELF-CHECK FAILURES (see above)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main(int argc, char** argv) { return fbufs::bench::Main(argc, argv); }
