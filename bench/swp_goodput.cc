// Extension bench: SWP goodput vs frame-loss rate.
//
// Reliable transport built on fbufs retransmits from retained references —
// zero copies regardless of loss. This bench reports goodput degradation
// and the retransmission amplification as the channel worsens.
//
// Retransmission is driven by the discrete-event engine: every transmit
// arms a real 2 ms retransmission timeout on the EventLoop, and a producer
// event keeps the window full. Quiescence of the loop is the end of the
// experiment.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/proto/swp.h"
#include "src/proto/test_protocols.h"
#include "src/sim/event_loop.h"
#include "src/vm/machine.h"

namespace fbufs {
namespace bench {
namespace {

constexpr SimTime kRto = 2 * kMillisecond;

struct RunResult {
  double goodput_mbps;
  double retx_per_msg;
  std::uint64_t timer_fires;
  std::uint64_t bytes_copied;
};

RunResult Run(std::uint32_t drop_percent, std::string* attr_json = nullptr,
              std::string* metrics_json = nullptr) {
  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  ProtocolStack stack(&machine, &fsys, &rpc);
  stack.set_domain_count(2);
  Domain* sd = machine.CreateDomain("sender");
  Domain* rd = machine.CreateDomain("receiver");
  const PathId tx_hdr = fsys.paths().Register({sd->id(), rd->id()});
  const PathId rx_hdr = fsys.paths().Register({rd->id(), sd->id()});
  const PathId data = fsys.paths().Register({sd->id(), rd->id()});
  SwpProtocol sender(sd, &stack, tx_hdr, 8);
  SwpProtocol receiver(rd, &stack, rx_hdr, 8);
  LossyChannel fwd(sd, &stack, 11, drop_percent);
  LossyChannel rev(rd, &stack, 13, drop_percent);
  SinkProtocol sink(rd, &stack);
  sender.set_below(&fwd);
  fwd.set_peer_above(&receiver);
  receiver.set_below(&rev);
  rev.set_peer_above(&sender);
  receiver.set_above(&sink);

  EventLoop loop;
  sender.AttachTimer(&loop, kRto);
  fsys.AttachEventLoop(&loop);
  MetricsRegistry metrics;
  machine.AttachMetrics(&metrics);

  constexpr int kMessages = 64;
  constexpr std::uint64_t kBytes = 32 * 1024;
  const SimTime t0 = machine.clock().Now();
  int accepted = 0;

  // The producer keeps the window full: push until kExhausted, then retry
  // one RTO later (by which time the retransmission timer has fired and any
  // surviving acks have opened the window).
  std::function<void()> produce = [&] {
    while (accepted < kMessages) {
      Fbuf* fb = nullptr;
      if (!Ok(fsys.Allocate(*sd, data, kBytes, true, &fb))) {
        return;
      }
      sd->TouchRange(fb->base, kBytes, Access::kWrite);
      const Status st = sender.Push(Message::Whole(fb));
      fsys.Free(fb, *sd);
      if (st == Status::kOk) {
        accepted++;
      } else {
        loop.Schedule(std::max(loop.Now(), machine.clock().Now() + kRto),
                      "swp-produce", produce);
        return;
      }
    }
  };
  loop.Schedule(loop.Now(), "swp-produce", produce);
  // Quiescence: producer done, every frame acknowledged, timer gone quiet.
  loop.Run();

  const double seconds = (machine.clock().Now() - t0) / 1e9;
  if (attr_json != nullptr) {
    *attr_json = TimeAttributionJson(machine);
  }
  if (metrics_json != nullptr) {
    *metrics_json = metrics.ToJson();
  }
  machine.AttachMetrics(nullptr);
  return RunResult{sink.bytes_received() * 8.0 / seconds / 1e6,
                   static_cast<double>(sender.retransmissions()) / kMessages,
                   sender.timer_fires(), machine.stats().bytes_copied};
}

int Main() {
  std::printf("\n=== SWP (sliding window) goodput vs loss — fbuf retention extension ===\n");
  std::printf("(64 x 32 KB messages, window 8, 2 ms event-driven retransmission timeout)\n\n");
  std::printf("%8s %14s %14s %14s %14s\n", "loss-%", "goodput-Mbps", "retx/msg",
              "timer-fires", "bytes-copied");
  JsonReport report("swp_goodput");
  std::string attr_json;
  std::string metrics_json;
  for (const std::uint32_t loss : {0u, 5u, 10u, 20u, 40u, 60u}) {
    // The last sweep point's attribution (60% loss: retransmission-heavy)
    // lands in the report; every point is conservation-checked.
    const RunResult r = Run(loss, &attr_json, &metrics_json);
    std::printf("%8u %14.1f %14.2f %14llu %14llu\n", loss, r.goodput_mbps, r.retx_per_msg,
                static_cast<unsigned long long>(r.timer_fires),
                static_cast<unsigned long long>(r.bytes_copied));
    report.BeginRow()
        .Field("loss_percent", static_cast<double>(loss))
        .Field("goodput_mbps", r.goodput_mbps)
        .Field("retx_per_msg", r.retx_per_msg)
        .Field("timer_fires", static_cast<double>(r.timer_fires))
        .Field("bytes_copied", static_cast<double>(r.bytes_copied));
  }
  report.RawSection("time_attribution", attr_json);
  report.RawSection("metrics", metrics_json);
  report.Write();
  std::printf(
      "\nreading: retransmissions grow with loss, yet bytes-copied stays zero — the\n"
      "sender retransmits from retained immutable fbufs (copy semantics, §2.1.3).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
