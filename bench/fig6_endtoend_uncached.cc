// Reproduces Figure 6: end-to-end UDP/IP throughput with uncached,
// non-volatile fbufs — the configuration "comparable to the best one can
// achieve with page remapping". Receiver reassembly buffers come from the
// driver's uncached fallback queue; sender buffers are secured on transfer.
//
// Expected shape (paper): user-user tops out ~252 Mbps (a 12% degradation
// from the 285 Mbps kernel-kernel baseline); user-netserver-user is only
// marginally lower, because UDP never touches the message body, so body
// pages are never mapped into the netserver domain.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/topo/testbed.h"

namespace fbufs {
namespace bench {
namespace {

double Run(StackPlacement p, std::uint64_t size, bool kernel_baseline) {
  TestbedConfig cfg;
  cfg.placement = p;
  cfg.pdu_size = 16 * 1024;
  cfg.cached = kernel_baseline;          // baseline keeps cached buffers
  cfg.volatile_fbufs = kernel_baseline;  // and volatile semantics
  Testbed tb(cfg);
  const std::uint64_t messages = std::max<std::uint64_t>(8, (16ull << 20) / size);
  return tb.Run(messages, size, /*warmup=*/2).throughput_mbps;
}

int Main() {
  std::printf(
      "\n=== Figure 6: end-to-end UDP/IP throughput, uncached/non-volatile fbufs (Mbps) "
      "===\n");
  std::printf("%10s %15s %12s %22s\n", "size(KB)", "kernel-kernel", "user-user",
              "user-netserver-user");
  JsonReport report("fig6_endtoend_uncached");
  const std::vector<std::uint64_t> kb = {4, 8, 16, 32, 64, 128, 256, 512, 1024};
  for (const std::uint64_t s : kb) {
    const double kk = Run(StackPlacement::kKernelOnly, s * 1024, /*kernel_baseline=*/true);
    const double uu = Run(StackPlacement::kUserKernel, s * 1024, false);
    const double unu = Run(StackPlacement::kUserNetserverKernel, s * 1024, false);
    std::printf("%10llu %15.1f %12.1f %22.1f\n", static_cast<unsigned long long>(s),
                kk, uu, unu);
    report.BeginRow()
        .Field("size_kb", static_cast<double>(s))
        .Field("kernel_kernel_mbps", kk)
        .Field("user_user_mbps", uu)
        .Field("user_netserver_user_mbps", unu);
  }
  // Per-layer time breakdown from one representative uncached configuration
  // (user-user, 256 KB messages); conservation-checked per host.
  {
    TestbedConfig cfg;
    cfg.placement = StackPlacement::kUserKernel;
    cfg.pdu_size = 16 * 1024;
    cfg.cached = false;
    cfg.volatile_fbufs = false;
    Testbed tb(cfg);
    tb.Run(64, 256 * 1024, /*warmup=*/2);
    report.RawSection(
        "time_attribution",
        "{\n    \"sender\": " + TimeAttributionJson(tb.sender().machine) +
            ",\n    \"receiver\": " + TimeAttributionJson(tb.receiver().machine) +
            "\n  }");
  }
  report.Write();
  std::printf(
      "\nshape checks: user-user ~12%% below the kernel-kernel baseline (paper: 252 vs 285\n"
      "Mbps); user-netserver-user only marginally lower (body pages never mapped there).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
