// Reproduces Figure 5: end-to-end UDP/IP throughput between two hosts over
// the simulated Osiris/ATM testbed, using cached/volatile fbufs, as a
// function of message size. Three placements: kernel-kernel, user-user,
// user-netserver-user. IP PDU = 16 KB, sliding-window flow control.
//
// Expected shape (paper): maximum ~285 Mbps, I/O (TurboChannel DMA) bound;
// domain crossings nearly free for >= 256 KB messages; medium sizes pay
// per-crossing IPC latency, with the third domain costing extra via
// cache/TLB pressure.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/topo/testbed.h"

namespace fbufs {
namespace bench {
namespace {

double Run(StackPlacement p, std::uint64_t size) {
  TestbedConfig cfg;
  cfg.placement = p;
  cfg.pdu_size = 16 * 1024;
  cfg.cached = true;
  cfg.volatile_fbufs = true;
  Testbed tb(cfg);
  const std::uint64_t messages = std::max<std::uint64_t>(8, (16ull << 20) / size);
  return tb.Run(messages, size, /*warmup=*/2).throughput_mbps;
}

int Main() {
  std::printf(
      "\n=== Figure 5: end-to-end UDP/IP throughput, cached/volatile fbufs (Mbps) ===\n");
  std::printf("%10s %15s %12s %22s\n", "size(KB)", "kernel-kernel", "user-user",
              "user-netserver-user");
  JsonReport report("fig5_endtoend_cached");
  const std::vector<std::uint64_t> kb = {4, 8, 16, 32, 64, 128, 256, 512, 1024};
  for (const std::uint64_t s : kb) {
    const double kk = Run(StackPlacement::kKernelOnly, s * 1024);
    const double uu = Run(StackPlacement::kUserKernel, s * 1024);
    const double unu = Run(StackPlacement::kUserNetserverKernel, s * 1024);
    std::printf("%10llu %15.1f %12.1f %22.1f\n", static_cast<unsigned long long>(s),
                kk, uu, unu);
    report.BeginRow()
        .Field("size_kb", static_cast<double>(s))
        .Field("kernel_kernel_mbps", kk)
        .Field("user_user_mbps", uu)
        .Field("user_netserver_user_mbps", unu);
  }
  // Per-layer time breakdown from one representative configuration
  // (user-user, 256 KB messages). TimeAttributionJson aborts if any host's
  // attributed time disagrees with its clock.
  {
    TestbedConfig cfg;
    cfg.placement = StackPlacement::kUserKernel;
    cfg.pdu_size = 16 * 1024;
    cfg.cached = true;
    cfg.volatile_fbufs = true;
    Testbed tb(cfg);
    tb.Run(64, 256 * 1024, /*warmup=*/2);
    report.RawSection(
        "time_attribution",
        "{\n    \"sender\": " + TimeAttributionJson(tb.sender().machine) +
            ",\n    \"receiver\": " + TimeAttributionJson(tb.receiver().machine) +
            "\n  }");
  }
  report.Write();
  std::printf(
      "\nshape checks: ceiling ~285 Mbps (paper: 285, I/O bound); crossings negligible at\n"
      ">= 256 KB; medium sizes penalized per crossing, third domain worst (cache/TLB).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
