// Ablation A3: the chunk quota as a region-exhaustion guard (§3.3).
//
// A misbehaving receiver never deallocates. Without a quota it would drain
// the shared fbuf region's virtual space for everyone; with one, the
// offending allocator is cut off while other paths keep working.
#include <cstdio>

#include "bench/bench_util.h"

namespace fbufs {
namespace bench {
namespace {

int Main() {
  std::printf("\n=== Ablation A3: chunk quota vs a receiver that never frees ===\n");
  std::printf("%8s %18s %20s %22s\n", "quota", "allocs-before-cut", "region-pages-used",
              "other-path-usable");
  for (const std::uint32_t quota : {4u, 16u, 64u, 256u}) {
    MachineConfig mcfg;
    Machine machine(mcfg);
    FbufConfig fcfg;
    fcfg.chunk_pages = 4;
    fcfg.chunk_quota = quota;
    FbufSystem fsys(&machine, fcfg);
    Domain* src = machine.CreateDomain("src");
    Domain* evil = machine.CreateDomain("hoarder");
    Domain* other = machine.CreateDomain("other");
    const PathId bad_path = fsys.paths().Register({src->id(), evil->id()});
    const PathId good_path = fsys.paths().Register({src->id(), other->id()});

    const std::uint64_t region_before = fsys.RegionFreePages();
    int allocs = 0;
    while (true) {
      Fbuf* fb = nullptr;
      if (!Ok(fsys.Allocate(*src, bad_path, 4 * kPageSize, true, &fb))) {
        break;
      }
      fsys.Transfer(fb, *src, *evil);
      fsys.Free(fb, *src);  // the hoarder never frees its reference
      allocs++;
      if (allocs > 1 << 20) {
        break;  // unbounded: would exhaust the region
      }
    }
    const std::uint64_t used = region_before - fsys.RegionFreePages();
    // Other paths must still be able to allocate.
    Fbuf* ok_fb = nullptr;
    const bool other_ok = Ok(fsys.Allocate(*src, good_path, 4 * kPageSize, true, &ok_fb));
    std::printf("%8u %18d %20llu %22s\n", quota, allocs,
                static_cast<unsigned long long>(used), other_ok ? "yes" : "NO");
  }
  std::printf(
      "\nreading: the quota bounds how much of the region one data path can pin\n"
      "(allocs-before-cut = quota * chunk / fbuf); other allocators are unaffected.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
