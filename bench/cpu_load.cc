// Reproduces the §4 CPU-load measurements: receiving-host CPU load during
// the reception of 1 MB messages, cached vs uncached fbufs, at 16 KB and
// 32 KB IP PDU sizes.
//
// Paper: at 16 KB PDUs the receiving CPU is 88% loaded with cached fbufs and
// saturated with uncached ones; at 32 KB PDUs (protocol overheads roughly
// halved) the load is 55% cached while uncached remains near saturation —
// i.e. cached fbufs buy up to a 45% CPU reduction or up to 2x throughput.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/topo/testbed.h"

namespace fbufs {
namespace bench {
namespace {

Testbed::Result Run(bool cached, std::uint64_t pdu) {
  TestbedConfig cfg;
  cfg.placement = StackPlacement::kUserKernel;
  cfg.pdu_size = pdu;
  cfg.cached = cached;
  cfg.volatile_fbufs = cached;
  Testbed tb(cfg);
  return tb.Run(16, 1 << 20, /*warmup=*/2);
}

int Main() {
  std::printf("\n=== CPU load on the receiving host, 1 MB messages (paper §4) ===\n");
  std::printf("%8s %10s %12s %12s %14s\n", "pdu", "fbufs", "rx-load", "paper", "Mbps");
  struct Case {
    std::uint64_t pdu;
    bool cached;
    const char* paper;
  };
  const Case cases[] = {{16 * 1024, true, "88%"},
                        {16 * 1024, false, "saturated"},
                        {32 * 1024, true, "55%"},
                        {32 * 1024, false, "~saturated"}};
  JsonReport report("cpu_load");
  for (const Case& c : cases) {
    const auto r = Run(c.cached, c.pdu);
    std::printf("%6lluKB %10s %11.0f%% %12s %14.1f\n",
                static_cast<unsigned long long>(c.pdu / 1024),
                c.cached ? "cached" : "uncached", r.receiver_cpu_load * 100.0, c.paper,
                r.throughput_mbps);
    report.BeginRow()
        .Field("pdu_kb", static_cast<double>(c.pdu / 1024))
        .Field("fbufs", c.cached ? "cached" : "uncached")
        .Field("rx_cpu_load", r.receiver_cpu_load)
        .Field("throughput_mbps", r.throughput_mbps);
  }
  // Per-layer time breakdown of the receiving host in the headline
  // configuration (cached, 16 KB PDUs); conservation-checked.
  {
    TestbedConfig cfg;
    cfg.placement = StackPlacement::kUserKernel;
    cfg.pdu_size = 16 * 1024;
    cfg.cached = true;
    cfg.volatile_fbufs = true;
    Testbed tb(cfg);
    tb.Run(16, 1 << 20, /*warmup=*/2);
    report.RawSection(
        "time_attribution",
        "{\n    \"receiver\": " + TimeAttributionJson(tb.receiver().machine) +
            "\n  }");
  }
  report.Write();
  // The paper's headline ("up to 45% CPU reduction or up to 2x throughput")
  // compares the saturated uncached receiver against the cached one once
  // protocol overheads are halved (32 KB PDUs).
  const auto u16 = Run(false, 16 * 1024);
  const auto c32 = Run(true, 32 * 1024);
  std::printf("\ncached fbufs (32K PDU) vs uncached (16K PDU): %.0f%% CPU reduction "
              "(paper: up to 45%%)\n",
              (u16.receiver_cpu_load - c32.receiver_cpu_load) * 100.0);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
