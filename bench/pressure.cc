// Memory-pressure sweep: goodput vs pool size and hoarded share, with the
// pressure subsystem (quotas, sweeps, backpressure, degradation) engaged.
//
// Each sweep point builds a one-machine world: a sender→receiver data path
// driven through a DegradablePath, a PressureManager on the event loop, and
// a "hoarder" domain that pins physical frames until only |headroom| remain
// free. The sender paces itself at the machine cost model's service time,
// retains each PDU's fbuf for a fixed hold window (a retransmission buffer /
// slow consumer stand-in), parks on a capped-exponential backoff when the
// pool pushes back, and degrades to the copy path when pressure persists.
//
// The point of the sweep is the *shape* of the goodput curve: it must fall
// smoothly as the hoarder squeezes the pool — pool-limited first, then
// copy-limited — and never to zero (no cliff). The bench self-checks that
// shape, the degraded-regime markers (degraded_pdus > 0, bytes_copied > 0
// at the tightest points), and the §3.3 invariants after every point, and
// exits nonzero when any check fails. Everything is deterministic: the same
// build produces byte-identical BENCH_pressure.json on every run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/copy_transfer.h"
#include "src/fault/auditor.h"
#include "src/pressure/backoff.h"
#include "src/pressure/degradable.h"
#include "src/pressure/pressure.h"
#include "src/sim/event_loop.h"

namespace fbufs {
namespace bench {
namespace {

constexpr std::uint64_t kPduPages = 4;
constexpr std::uint64_t kPduBytes = kPduPages * kPageSize;
// Sender-side retention window: how long each PDU's frames stay pinned.
constexpr SimTime kHold = 4 * kMillisecond;

struct PointResult {
  std::uint64_t pool_frames = 0;
  std::uint64_t headroom = 0;  // free frames left after the hoarder; 0 = no hoarder
  std::uint64_t hoarded_frames = 0;
  double goodput_mbps = 0;
  std::uint64_t zero_copy_pdus = 0;
  std::uint64_t degraded_pdus = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t parks = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t pages_reclaimed = 0;
  std::uint64_t degradations = 0;
  std::uint64_t restorations = 0;
  bool stalled = false;
  bool hard_failed = false;
  bool audit_passed = false;
};

// One sweep point: |n| PDUs through a pool of |pool_frames| with the hoarder
// holding everything above |headroom| free frames (0 disables the hoarder).
PointResult RunPoint(std::uint64_t pool_frames, std::uint64_t headroom, std::uint64_t n,
                     std::string* attr_json = nullptr,
                     std::string* metrics_json = nullptr) {
  PointResult r;
  r.pool_frames = pool_frames;
  r.headroom = headroom;

  MachineConfig mc;
  mc.phys_frames = static_cast<std::uint32_t>(pool_frames);
  Machine machine(mc);
  FbufConfig fcfg;
  fcfg.clear_new_pages = false;
  FbufSystem fsys(&machine, fcfg);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  EventLoop loop;
  fsys.AttachEventLoop(&loop);
  MetricsRegistry metrics;
  machine.AttachMetrics(&metrics);

  PressureConfig pcfg;
  pcfg.low_free_frames = 16;
  pcfg.high_free_frames = 32;
  pcfg.degrade_after_failures = 3;
  PressureManager pressure(&fsys, pcfg);
  pressure.AttachEventLoop(&loop);

  CopyTransfer copy(&machine);
  Domain* src = machine.CreateDomain("src");
  Domain* dst = machine.CreateDomain("dst");
  Domain* hog = machine.CreateDomain("hoarder");
  const PathId path = fsys.paths().Register({src->id(), dst->id()});
  DegradablePath dp(&fsys, &copy, &pressure, src, dst, path);

  // The hoarder pins frames in chunk-sized uncached fbufs until only
  // |headroom| remain free, modelling a greedy/wedged peer domain.
  std::vector<Fbuf*> hoard;
  while (headroom > 0 && machine.pmem().free_frames() > headroom) {
    const std::uint64_t take = std::min<std::uint64_t>(
        machine.pmem().free_frames() - headroom, fsys.config().chunk_pages);
    Fbuf* fb = nullptr;
    if (!Ok(fsys.Allocate(*hog, kNoPath, take * kPageSize, false, &fb)) ||
        !Ok(hog->TouchRange(fb->base, take * kPageSize, Access::kWrite))) {
      if (fb != nullptr) {
        fsys.Free(fb, *hog);
      }
      break;
    }
    hoard.push_back(fb);
  }
  r.hoarded_frames = static_cast<std::uint64_t>(hoard.size()) == 0
                         ? 0
                         : pool_frames - machine.pmem().free_frames();

  // The producer: send, retain for kHold, pace the next send at this PDU's
  // machine-time service cost; park with capped-exponential backoff on
  // backpressure. The stall watchdog turns a wedged pool into a clean
  // failure instead of an endless retry loop.
  FlowBackoff backoff;
  backoff.policy.initial = kMillisecond / 4;
  backoff.policy.multiplier = 2;
  backoff.policy.cap = 2 * kMillisecond;
  backoff.stall_horizon = 250 * kMillisecond;
  backoff.last_progress = loop.Now();

  std::uint64_t sent = 0;
  SimTime end_time = 0;
  std::function<void()> step = [&] {
    const SimTime m0 = machine.clock().Now();
    Fbuf* retained = nullptr;
    const Status st = dp.SendPdu(kPduBytes, &retained);
    if (Ok(st)) {
      sent++;
      backoff.Progress(loop.Now());
      if (retained != nullptr) {
        Fbuf* fb = retained;
        loop.Schedule(loop.Now() + kHold, "pressure-bench/release",
                      [&fsys, fb, src] { fsys.Free(fb, *src); });
      }
      const SimTime dt = machine.clock().Now() - m0;
      if (sent == n) {
        end_time = loop.Now() + dt;
        return;
      }
      loop.Schedule(loop.Now() + dt, "pressure-bench/next", step);
      return;
    }
    if (!IsBackpressure(st)) {
      r.hard_failed = true;
      return;
    }
    const auto delay = backoff.Park(loop.Now());
    if (!delay.has_value()) {
      r.stalled = true;
      return;
    }
    r.parks++;
    loop.Schedule(loop.Now() + *delay, "pressure-bench/park", step);
  };
  loop.Schedule(loop.Now(), "pressure-bench/start", step);
  loop.Run();

  if (end_time > 0) {
    r.goodput_mbps = static_cast<double>(n * kPduBytes) * 8.0 * 1000.0 /
                     static_cast<double>(end_time);
  }
  r.zero_copy_pdus = dp.zero_copy_pdus();
  r.degraded_pdus = dp.degraded_pdus();
  r.bytes_copied = machine.stats().bytes_copied;
  r.sweeps = pressure.sweeps();
  r.pages_reclaimed = pressure.pages_reclaimed();
  r.degradations = pressure.degradations();
  r.restorations = pressure.restorations();

  // Release the hoard and audit: every frame accounted for, no dangling
  // per-domain mappings, free lists consistent.
  for (Fbuf* fb : hoard) {
    fsys.Free(fb, *hog);
  }
  const HostAuditResult audit = InvariantAuditor::AuditHost("bench", machine, fsys);
  r.audit_passed = audit.passed;
  if (attr_json != nullptr) {
    *attr_json = TimeAttributionJson(machine);
  }
  if (metrics_json != nullptr) {
    *metrics_json = metrics.ToJson();
  }
  machine.AttachMetrics(nullptr);
  return r;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const std::uint64_t n = smoke ? 24 : 64;
  const std::vector<std::uint64_t> pools =
      smoke ? std::vector<std::uint64_t>{1024, 256}
            : std::vector<std::uint64_t>{2048, 1024, 512, 256};
  // headroom 0 = no hoarder; then progressively tighter squeezes. The
  // tightest (12 frames) leaves less than the zero-copy working set but
  // enough for the copy path's bounded staging+landing footprint, so the
  // degraded regime is reachable and survivable.
  const std::vector<std::uint64_t> headrooms = {0, 96, 32, 12};

  PrintHeader("Memory-pressure sweep (pool size x hoarded share)");
  std::printf("%8s %9s %9s %12s %6s %6s %7s %7s %6s %6s %6s\n", "pool", "headroom",
              "hoarded", "goodput", "zc", "deg", "copied", "parks", "sweeps",
              "degr", "rest");

  JsonReport json("pressure");
  std::string attr_json;
  std::string metrics_json;
  std::vector<PointResult> results;
  for (const std::uint64_t pool : pools) {
    for (const std::uint64_t headroom : headrooms) {
      // The tightest point's breakdown (copy-path degradation visible as
      // baseline/msg time) lands in the report; all conservation-checked.
      const PointResult r = RunPoint(pool, headroom, n, &attr_json, &metrics_json);
      results.push_back(r);
      std::printf("%8llu %9llu %9llu %9.1f Mb %6llu %6llu %7llu %7llu %6llu %6llu %6llu%s%s%s\n",
                  static_cast<unsigned long long>(r.pool_frames),
                  static_cast<unsigned long long>(r.headroom),
                  static_cast<unsigned long long>(r.hoarded_frames), r.goodput_mbps,
                  static_cast<unsigned long long>(r.zero_copy_pdus),
                  static_cast<unsigned long long>(r.degraded_pdus),
                  static_cast<unsigned long long>(r.bytes_copied),
                  static_cast<unsigned long long>(r.parks),
                  static_cast<unsigned long long>(r.sweeps),
                  static_cast<unsigned long long>(r.degradations),
                  static_cast<unsigned long long>(r.restorations),
                  r.stalled ? "  STALLED" : "", r.hard_failed ? "  FAILED" : "",
                  r.audit_passed ? "" : "  AUDIT-VIOLATIONS");
      json.BeginRow()
          .Field("pool_frames", static_cast<double>(r.pool_frames))
          .Field("headroom", static_cast<double>(r.headroom))
          .Field("hoarded_frames", static_cast<double>(r.hoarded_frames))
          .Field("goodput_mbps", r.goodput_mbps)
          .Field("zero_copy_pdus", static_cast<double>(r.zero_copy_pdus))
          .Field("degraded_pdus", static_cast<double>(r.degraded_pdus))
          .Field("bytes_copied", static_cast<double>(r.bytes_copied))
          .Field("backpressure_parks", static_cast<double>(r.parks))
          .Field("pressure_sweeps", static_cast<double>(r.sweeps))
          .Field("pages_reclaimed", static_cast<double>(r.pages_reclaimed))
          .Field("degradations", static_cast<double>(r.degradations))
          .Field("restorations", static_cast<double>(r.restorations))
          .Field("stalled", r.stalled ? 1.0 : 0.0)
          .Field("audit_passed", r.audit_passed ? 1.0 : 0.0);
    }
  }
  json.RawSection("time_attribution", attr_json);
  json.RawSection("metrics", metrics_json);
  json.Write();

  // --- Self-checks: the degradation must be graceful --------------------------
  bool ok = true;
  auto fail = [&ok](const std::string& why) {
    std::printf("SELF-CHECK FAILED: %s\n", why.c_str());
    ok = false;
  };

  double max_goodput = 0;
  double min_goodput = 0;
  for (const PointResult& r : results) {
    if (r.stalled || r.hard_failed) {
      fail("point stalled or hard-failed (pool=" + std::to_string(r.pool_frames) +
           " headroom=" + std::to_string(r.headroom) + ")");
    }
    if (!r.audit_passed) {
      fail("post-run invariant audit failed (pool=" + std::to_string(r.pool_frames) +
           " headroom=" + std::to_string(r.headroom) + ")");
    }
    if (r.goodput_mbps <= 0) {
      fail("zero goodput (pool=" + std::to_string(r.pool_frames) +
           " headroom=" + std::to_string(r.headroom) + ")");
    }
    max_goodput = std::max(max_goodput, r.goodput_mbps);
    min_goodput = min_goodput == 0 ? r.goodput_mbps : std::min(min_goodput, r.goodput_mbps);
  }

  // Within each pool size, goodput must fall (within tolerance) as the
  // hoarder tightens — monotone degradation, not a step off a cliff.
  const std::size_t per_pool = headrooms.size();
  for (std::size_t p = 0; p < pools.size(); ++p) {
    for (std::size_t h = 1; h < per_pool; ++h) {
      const PointResult& loose = results[p * per_pool + h - 1];
      const PointResult& tight = results[p * per_pool + h];
      if (tight.goodput_mbps > loose.goodput_mbps * 1.15) {
        fail("goodput rose under tighter pressure (pool=" +
             std::to_string(pools[p]) + " headroom " +
             std::to_string(loose.headroom) + " -> " +
             std::to_string(tight.headroom) + ")");
      }
    }
    // Degraded-regime markers at the tightest squeeze: the copy fallback
    // carried real traffic.
    const PointResult& tightest = results[p * per_pool + per_pool - 1];
    if (tightest.degraded_pdus == 0 || tightest.bytes_copied == 0) {
      fail("tightest point never degraded to the copy path (pool=" +
           std::to_string(pools[p]) + ")");
    }
  }

  // No cliff: even the most squeezed point retains a usable fraction of the
  // unpressured goodput (the copy path's floor).
  if (max_goodput > 0 && min_goodput < max_goodput / 400.0) {
    fail("goodput cliff: min " + std::to_string(min_goodput) + " vs max " +
         std::to_string(max_goodput));
  }

  std::printf("\n%s\n", ok ? "pressure sweep self-checks passed"
                           : "PRESSURE SWEEP SELF-CHECK FAILURES (see above)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main(int argc, char** argv) { return fbufs::bench::Main(argc, argv); }
