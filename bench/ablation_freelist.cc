// Ablation A2: LIFO vs FIFO free lists under memory pressure (§3.3).
//
// The paper keeps free lists in LIFO order so that "fbufs at the front of
// the free list are most likely to have physical memory mapped to them".
// We fill a path's free list, let the pageout daemon reclaim the coldest
// half, and compare the cost of the next allocations: LIFO hands out warm
// fbufs; FIFO hands out reclaimed ones that must re-materialize (and be
// re-cleared) first.
#include <cstdio>

#include "bench/bench_util.h"

namespace fbufs {
namespace bench {
namespace {

double AvgAllocUs(bool lifo) {
  constexpr int kFbufs = 16;
  constexpr std::uint64_t kPages = 4;
  MachineConfig mcfg;
  Machine machine(mcfg);
  FbufConfig fcfg;
  fcfg.lifo_free_lists = lifo;
  FbufSystem fsys(&machine, fcfg);
  Domain* src = machine.CreateDomain("src");
  const PathId path = fsys.paths().Register({src->id()});

  // Populate the free list: allocate all, free all (free order = 0..N-1, so
  // fbuf 0 is the coldest).
  std::vector<Fbuf*> fbs;
  for (int i = 0; i < kFbufs; ++i) {
    Fbuf* fb = nullptr;
    fsys.Allocate(*src, path, kPages * kPageSize, true, &fb);
    src->TouchRange(fb->base, fb->bytes, Access::kWrite);
    fbs.push_back(fb);
  }
  for (Fbuf* fb : fbs) {
    fsys.Free(fb, *src);
  }
  // Memory pressure: the daemon reclaims the coldest half.
  fsys.ReclaimFreeMemory(kFbufs / 2 * kPages);

  // Measure the next half of the allocations.
  const SimTime before = machine.clock().Now();
  std::vector<Fbuf*> got;
  for (int i = 0; i < kFbufs / 2; ++i) {
    Fbuf* fb = nullptr;
    fsys.Allocate(*src, path, kPages * kPageSize, true, &fb);
    src->TouchRange(fb->base, fb->bytes, Access::kWrite);
    got.push_back(fb);
  }
  const SimTime elapsed = machine.clock().Now() - before;
  for (Fbuf* fb : got) {
    fsys.Free(fb, *src);
  }
  return elapsed / 1000.0 / (kFbufs / 2);
}

int Main() {
  std::printf("\n=== Ablation A2: free-list order under memory pressure ===\n");
  const double lifo = AvgAllocUs(true);
  const double fifo = AvgAllocUs(false);
  std::printf("LIFO (paper): %8.1f us/allocation\n", lifo);
  std::printf("FIFO:         %8.1f us/allocation\n", fifo);
  std::printf("LIFO advantage: %.1fx — warm fbufs keep their frames and mappings;\n"
              "FIFO dispenses reclaimed fbufs that pay re-materialization and clearing.\n",
              fifo / lifo);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
