// Macro-workload: the zero-copy file server under a web-shaped request mix.
//
// A ServeWorld star (one server host, a fan-in of client hosts) serves tens
// of thousands of logical request flows drawn from the classic web-server
// distributions: Zipf object popularity (the exponent swept across rows)
// and bounded-Pareto response sizes, both from the deterministic generators
// in bench_util.h. Every cache hit travels sendfile-style — the cached
// block's fbuf IS the wire payload, pinned for the flight, zero bytes
// copied — and every row reports p50/p99/p999 request latency, goodput,
// and hit ratio.
//
// Beyond the popularity sweep the same workload runs:
//   * over transfer rings (batched request crossings, same flows);
//   * under memory pressure (tight physical pool; misses that cannot stage
//     a block take the degraded copy path, pinned blocks ride it out);
//   * under fire (a client link flaps dark mid-download; a client's app
//     domain is destroyed mid-download).
//
// Every point hard-checks the §3.3 invariant audit on every host (zero
// leaked frames, refcounts exact, no dangling mappings), zero leftover
// pins/inflight requests on the server, per-lane attribution conservation
// (TimeAttributionJson aborts on any hole), and the zero-copy claim itself
// (server bytes_copied == 0 everywhere except the degraded-pressure row,
// which must copy). The churn row exports TRACE_server.json — server +
// victim-client timelines with the fault marked — and the whole table is
// written to BENCH_server.json, byte-identical across runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/auditor.h"
#include "src/obs/lifecycle.h"
#include "src/obs/trace_export.h"
#include "src/serve/serve_world.h"
#include "src/sim/rng.h"

namespace fbufs {
namespace bench {
namespace {

bool g_smoke = false;

// --- Workload ----------------------------------------------------------------

struct WorkloadConfig {
  std::uint64_t requests = 8000;
  std::uint32_t files = 400;
  std::uint32_t max_blocks = 8;  // Pareto-sized responses, in cache blocks
  unsigned zipf_quarters = 4;    // s = quarters/4
  SimTime interarrival_ns = 5000;
  std::uint64_t seed = 0x5e44ef11e5;
};

std::vector<ServeRequestSpec> BuildSchedule(const WorkloadConfig& wl,
                                            std::size_t clients,
                                            std::uint64_t block_bytes) {
  ZipfGenerator zipf(wl.seed, wl.files, wl.zipf_quarters);
  // Sizes from one block up to the full max_blocks response, alpha ~ 1.33.
  ParetoGenerator pareto(wl.seed ^ 0x9e3779b97f4a7c15ull, block_bytes,
                         wl.max_blocks * block_bytes, 3);
  Rng pick(wl.seed ^ 0xda7a5eed);
  std::vector<ServeRequestSpec> schedule;
  schedule.reserve(wl.requests);
  for (std::uint64_t i = 0; i < wl.requests; ++i) {
    ServeRequestSpec s;
    s.at = i * wl.interarrival_ns;
    s.client = static_cast<std::uint32_t>(pick.Next() % clients);
    s.file = static_cast<FileId>(zipf.Next());
    const std::uint64_t bytes = pareto.Next();
    s.blocks = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(wl.max_blocks,
                                (bytes + block_bytes - 1) / block_bytes));
    schedule.push_back(s);
  }
  return schedule;
}

// --- Hard checks -------------------------------------------------------------

// §3.3 invariant audit over every host of the world, plus the serve-side
// pin discipline: after a drained run nothing may stay pinned or inflight,
// no matter how the flows ended.
void AuditWorld(ServeWorld& w, const std::string& label) {
  bool ok = true;
  auto check = [&](SimHost& h) {
    const HostAuditResult r =
        InvariantAuditor::AuditHost(h.machine.name(), h.machine, h.fsys);
    if (!r.passed) {
      std::fprintf(stderr,
                   "server[%s]: §3.3 audit FAILED on %s: leaked=%llu "
                   "rc-mismatch=%llu dangling=%llu freelist=%llu\n",
                   label.c_str(), r.host.c_str(),
                   static_cast<unsigned long long>(r.leaked_frames),
                   static_cast<unsigned long long>(r.refcount_mismatches),
                   static_cast<unsigned long long>(r.dangling_mappings),
                   static_cast<unsigned long long>(r.free_list_errors));
      ok = false;
    }
  };
  check(w.server());
  for (std::size_t i = 0; i < w.client_count(); ++i) {
    check(w.client(i));
  }
  if (w.file_server().inflight_requests() != 0 || w.cache().total_pins() != 0) {
    std::fprintf(stderr,
                 "server[%s]: pin leak: %llu requests inflight, %llu pins "
                 "held after drain\n",
                 label.c_str(),
                 static_cast<unsigned long long>(
                     w.file_server().inflight_requests()),
                 static_cast<unsigned long long>(w.cache().total_pins()));
    ok = false;
  }
  if (!ok) {
    std::abort();
  }
}

SimTime Percentile(std::vector<SimTime> sorted_latencies, int permille) {
  if (sorted_latencies.empty()) {
    return 0;
  }
  const std::size_t idx =
      (sorted_latencies.size() - 1) * static_cast<std::size_t>(permille) / 1000;
  return sorted_latencies[idx];
}

// --- One measurement row -----------------------------------------------------

struct RowSpec {
  std::string variant;
  WorkloadConfig workload;
  std::size_t clients = 16;
  std::uint32_t max_inflight = 64;
  bool use_rings = false;
  bool tight_memory = false;  // pressure row: small pool + PressureManager
  SimTime stall_horizon = 0;  // 0 = the world's default watchdog
  // Faults, scheduled on the world's loop before the run. kNoFault = none.
  enum class Fault { kNone, kLinkFlap, kClientChurn };
  Fault fault = Fault::kNone;
  bool expect_copies = false;  // degraded row must copy; everyone else must not
  bool export_trace = false;
};

struct RowResult {
  ServeRunStats stats;
  std::uint64_t server_bytes_copied = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t pin_blocked_evictions = 0;
  SimTime p50 = 0, p99 = 0, p999 = 0;
  std::string attribution_json;
  // Fbuf provenance on the server machine: journeys recorded and aborted
  // (reconciliation itself is a hard check inside RunRow).
  std::uint64_t journeys = 0;
  std::uint64_t aborted_journeys = 0;
  std::string latency_json;  // ServeWorld LatencyDecomposition::ToJson()
};

RowResult RunRow(const RowSpec& spec) {
  ServeWorldConfig cfg;
  cfg.clients = spec.clients;
  cfg.max_inflight = spec.max_inflight;
  cfg.use_rings = spec.use_rings;
  if (spec.stall_horizon > 0) {
    cfg.stall_horizon = spec.stall_horizon;
  }
  cfg.cache.block_bytes = 8192;
  // A 90s disk array, not the single 2 MB/s spindle: the bench studies the
  // serving path, and a 15 ms seek per cold block would drown everything.
  cfg.cache.disk_access_ns = 1 * kMillisecond;
  cfg.cache.disk_mbps = 64;
  cfg.cache.capacity_blocks = 128;
  if (spec.tight_memory) {
    // The pinned working set of the in-flight responses exceeds the pool,
    // and a 4-page block is more than an emergency sweep can scrape out of
    // the request/header free lists once every resident block is pinned —
    // so miss-path staging genuinely fails and the degraded copy path must
    // carry real traffic (2-page blocks self-heal off that free-list float
    // forever; this is the same sizing the serve tests pin down).
    cfg.host.machine.phys_frames = 256;
    cfg.host.pdu_size = 32 * 1024;
    cfg.cache.block_bytes = 4 * kPageSize;
    cfg.cache.capacity_blocks = 512;  // memory, not capacity, is the limit
    cfg.attach_pressure = true;
  }
  ServeWorld world(cfg);

  // Provenance and latency sampling ride every row (host-side observers:
  // attaching them never moves a simulated timestamp). Journeys live on the
  // server machine, where the sendfile-style pins and cross-domain block
  // transfers happen.
  LifecycleTracker lifecycle(&world.server().machine, std::size_t{1} << 18);
  world.server().machine.AttachLifecycle(&lifecycle);
  world.EnableLatency();
  MetricsRegistry metrics;
  if (spec.export_trace) {
    metrics.EnableTraceSampling();
    world.server().machine.AttachMetrics(&metrics);
    world.server().machine.trace().SetCapacity(std::size_t{1} << 17);
    world.server().machine.trace().EnableAll();
    world.client(0).machine.trace().SetCapacity(std::size_t{1} << 15);
    world.client(0).machine.trace().EnableAll();
  }

  // Fault events interleave with the run's own events on the same loop.
  // Absolute times sit mid-schedule in both full and smoke mode.
  const SimTime mid =
      spec.workload.requests / 2 * spec.workload.interarrival_ns;
  switch (spec.fault) {
    case RowSpec::Fault::kNone:
      break;
    case RowSpec::Fault::kLinkFlap: {
      // Condition-based, not wall-clock: wire events ride the server's
      // miss-inflated machine clock, so a fixed time window can slide right
      // past all of them. Instead the link goes dark while the middle tenth
      // of the request completions is in flight — guaranteed to overlap
      // live downloads in any mode.
      const LinkId link = world.client_link(0);
      const std::uint64_t dark_at = spec.workload.requests / 4;
      const std::uint64_t restore_at = spec.workload.requests * 7 / 20;
      auto dark = std::make_shared<bool>(false);
      auto tick = std::make_shared<std::function<void()>>();
      // The watcher captures itself weakly (a strong self-capture would be
      // a shared_ptr cycle and leak); each scheduled hop holds the strong
      // reference that keeps the chain alive until the flap ends.
      std::weak_ptr<std::function<void()>> weak_tick = tick;
      *tick = [&world, link, dark_at, restore_at, dark, weak_tick] {
        auto self = weak_tick.lock();
        const std::uint64_t done = world.file_server().completed_requests();
        if (!*dark && done >= dark_at) {
          *dark = true;
          Trace& t = world.server().machine.trace();
          if (t.enabled(TraceCategory::kPhase)) {
            t.Marker(t.Intern("fault/flap/client0"));
          }
          world.topo().link(link).set_drop_percent(100);
        } else if (*dark && done >= restore_at) {
          world.topo().link(link).set_drop_percent(0);
          return;  // flap over; stop watching
        }
        world.loop().Schedule(world.loop().Now() + kMillisecond, "flap-watch",
                              [self] { (*self)(); });
      };
      world.loop().Schedule(0, "flap-watch", [tick] { (*tick)(); });
      break;
    }
    case RowSpec::Fault::kClientChurn: {
      // Client 0's app domain dies mid-download and its link flaps dark:
      // every flow on it fails; the abort notices must still release every
      // pin the server held for them.
      const LinkId link = world.client_link(0);
      world.loop().Schedule(mid, "fault/churn", [&world, link] {
        Trace& t = world.server().machine.trace();
        if (t.enabled(TraceCategory::kPhase)) {
          t.Marker(t.Intern("fault/churn/client0"));
        }
        SimHost& victim = world.client(0);
        victim.machine.DestroyDomain(victim.sink->domain()->id());
        world.topo().link(link).set_drop_percent(100);
      });
      world.loop().Schedule(mid + 20 * kMillisecond, "fault/churn-restore",
                            [&world, link] {
                              world.topo().link(link).set_drop_percent(0);
                            });
      break;
    }
  }

  const std::vector<ServeRequestSpec> schedule =
      BuildSchedule(spec.workload, cfg.clients, cfg.cache.block_bytes);
  RowResult r;
  r.stats = world.Run(schedule);

  // Hard checks, every row: §3.3 + pins, conservation, the zero-copy claim.
  AuditWorld(world, spec.variant);
  AttributionJsonOptions opts;
  opts.per_cpu = true;
  r.attribution_json = TimeAttributionJson(world.server().machine, opts);

  // Journey reconciliation next to the §3.3 audit: every ended journey must
  // close with kFree/kAbort and balance its serve pins. Cache-resident
  // blocks and the staging fbuf legitimately stay open at quiescence, so
  // open journeys are not an error here — unbalanced or badly-ended ones
  // are, as is overflowing the journey cap.
  const LifecycleTracker::Reconciliation rec = lifecycle.Reconcile();
  r.journeys = lifecycle.journeys().size();
  r.aborted_journeys = rec.aborted;
  if (!rec.passed() || rec.dropped != 0 || r.journeys == 0) {
    std::fprintf(stderr,
                 "server[%s]: journey reconciliation failed: journeys=%llu "
                 "open=%llu pin_imbalance=%llu bad_end=%llu dropped=%llu\n",
                 spec.variant.c_str(),
                 static_cast<unsigned long long>(r.journeys),
                 static_cast<unsigned long long>(rec.open),
                 static_cast<unsigned long long>(rec.pin_imbalance),
                 static_cast<unsigned long long>(rec.bad_end),
                 static_cast<unsigned long long>(rec.dropped));
    std::abort();
  }
  r.latency_json = world.latency().ToJson();

  r.server_bytes_copied = world.server().machine.stats().bytes_copied;
  if (!spec.expect_copies && r.server_bytes_copied != 0) {
    std::fprintf(stderr,
                 "server[%s]: zero-copy violated: %llu bytes copied on the "
                 "server\n",
                 spec.variant.c_str(),
                 static_cast<unsigned long long>(r.server_bytes_copied));
    std::abort();
  }
  if (spec.expect_copies &&
      (r.server_bytes_copied == 0 || r.stats.degraded_blocks == 0)) {
    std::fprintf(stderr,
                 "server[%s]: expected the degraded copy path to carry "
                 "traffic (copied=%llu, degraded=%llu)\n",
                 spec.variant.c_str(),
                 static_cast<unsigned long long>(r.server_bytes_copied),
                 static_cast<unsigned long long>(r.stats.degraded_blocks));
    std::abort();
  }
  if (r.stats.completed == 0) {
    std::fprintf(stderr, "server[%s]: no request ever completed\n",
                 spec.variant.c_str());
    std::abort();
  }

  std::vector<SimTime> lat = r.stats.latencies;
  std::sort(lat.begin(), lat.end());
  r.p50 = Percentile(lat, 500);
  r.p99 = Percentile(lat, 990);
  r.p999 = Percentile(lat, 999);
  r.cache_evictions = world.cache().evictions();
  r.pin_blocked_evictions = world.cache().pin_blocked_evictions();

  if (spec.export_trace) {
    // The acceptance flow: the exported trace must carry at least one
    // complete cross-domain journey — allocated, transferred across domains,
    // pinned for the flight, and finally freed — or the provenance story is
    // broken even if reconciliation balances.
    bool complete_flow = false;
    for (const Journey& j : lifecycle.journeys()) {
      if (!j.ended || j.aborted || j.pins == 0) {
        continue;
      }
      bool transferred = false;
      for (const LifecycleHop& h : j.hops) {
        transferred = transferred || h.kind == HopKind::kTransfer ||
                      h.kind == HopKind::kRingDeliver;
      }
      if (transferred) {
        complete_flow = true;
        break;
      }
    }
    if (!complete_flow) {
      std::fprintf(stderr,
                   "server[%s]: no complete alloc->transfer->pin->free "
                   "journey in the traced run\n",
                   spec.variant.c_str());
      std::abort();
    }
    TraceExporter ex;
    ex.AddHost(world.server().machine.name(), 1,
               world.server().machine.trace());
    ex.AddHost(world.client(0).machine.name(), 2,
               world.client(0).machine.trace());
    ex.AddLaneConservation("cpu/" + world.server().machine.name(),
                           world.server().machine.attribution().ByCpu(0),
                           world.server().machine.ElapsedNs());
    ex.AddCounterTracks("metrics/server", 30, metrics,
                        world.server().machine.ElapsedNs());
    ex.AddLifecycleFlows("lifecycle/server", 31, lifecycle);
    const std::string path = "TRACE_server.json";
    if (ex.WriteFile(path)) {
      std::fprintf(stderr, "wrote %s (%zu events)\n", path.c_str(),
                   ex.event_count());
    }
  }
  // The tracker and registry die with this frame while the world's teardown
  // still frees fbufs — detach so destructors never chase a dead observer.
  world.server().machine.AttachLifecycle(nullptr);
  world.server().machine.AttachMetrics(nullptr);
  return r;
}

void Report(JsonReport& report, std::string& lat_section, const RowSpec& spec,
            const RowResult& r) {
  std::printf("%-14s %8llu %9llu %7llu %7llu %9.3f %9.1f %9.1f %10.1f %8.1f\n",
              spec.variant.c_str(),
              static_cast<unsigned long long>(r.stats.requests),
              static_cast<unsigned long long>(r.stats.completed),
              static_cast<unsigned long long>(r.stats.failed),
              static_cast<unsigned long long>(r.stats.degraded_blocks),
              r.stats.hit_ratio, r.p50 / 1e6, r.p99 / 1e6, r.p999 / 1e6,
              r.stats.goodput_mbps);
  report.BeginRow()
      .Field("variant", spec.variant)
      .Field("zipf_s", static_cast<double>(spec.workload.zipf_quarters) / 4.0)
      .Field("clients", static_cast<double>(spec.clients))
      .Field("requests", static_cast<double>(r.stats.requests))
      .Field("completed", static_cast<double>(r.stats.completed))
      .Field("truncated", static_cast<double>(r.stats.truncated))
      .Field("failed", static_cast<double>(r.stats.failed))
      .Field("parks", static_cast<double>(r.stats.parks))
      .Field("served_blocks", static_cast<double>(r.stats.served_blocks))
      .Field("hit_ratio", r.stats.hit_ratio)
      .Field("degraded_blocks", static_cast<double>(r.stats.degraded_blocks))
      .Field("pdus_dropped", static_cast<double>(r.stats.pdus_dropped))
      .Field("discarded_pdus", static_cast<double>(r.stats.discarded_pdus))
      .Field("delivered_bytes", static_cast<double>(r.stats.delivered_bytes))
      .Field("goodput_mbps", r.stats.goodput_mbps)
      .Field("p50_ms", r.p50 / 1e6)
      .Field("p99_ms", r.p99 / 1e6)
      .Field("p999_ms", r.p999 / 1e6)
      .Field("server_bytes_copied", static_cast<double>(r.server_bytes_copied))
      .Field("cache_evictions", static_cast<double>(r.cache_evictions))
      .Field("pin_blocked_evictions",
             static_cast<double>(r.pin_blocked_evictions))
      .Field("journeys", static_cast<double>(r.journeys))
      .Field("aborted_journeys", static_cast<double>(r.aborted_journeys));
  lat_section += (lat_section.empty() ? "{\n    " : ",\n    ");
  lat_section += "\"" + spec.variant + "\": " + r.latency_json;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    }
  }

  WorkloadConfig base;
  base.requests = g_smoke ? 200 : 8000;
  base.files = g_smoke ? 64 : 400;
  const std::size_t clients = g_smoke ? 8 : 16;

  PrintHeader("File server macro-workload (Zipf popularity, Pareto sizes)");
  std::printf("%-14s %8s %9s %7s %7s %9s %9s %9s %10s %8s\n", "variant",
              "requests", "completed", "failed", "degr", "hit", "p50-ms",
              "p99-ms", "p999-ms", "Mbps");

  JsonReport report("server");
  std::string attribution_json;
  std::string lat_section;  // {"<variant>": {slices...}, ...}

  // Popularity sweep: the hit ratio (and with it latency and goodput) must
  // ride the Zipf exponent — steeper popularity concentrates the working
  // set into the cache.
  double prev_hit = -1.0;
  bool hit_monotone = true;
  for (const unsigned q : {3u, 4u, 5u}) {
    RowSpec spec;
    spec.variant = "zipf-s" + std::to_string(q * 25 / 100) + "." +
                   std::to_string(q * 25 % 100);
    spec.workload = base;
    spec.workload.zipf_quarters = q;
    spec.clients = clients;
    const RowResult r = RunRow(spec);
    Report(report, lat_section, spec, r);
    hit_monotone = hit_monotone && r.stats.hit_ratio > prev_hit;
    prev_hit = r.stats.hit_ratio;
    if (q == 4) {
      attribution_json = r.attribution_json;
    }
  }
  if (!hit_monotone) {
    std::fprintf(stderr,
                 "server: hit ratio failed to rise with the Zipf exponent\n");
    std::abort();
  }

  {
    RowSpec spec;
    spec.variant = "rings";
    spec.workload = base;
    spec.clients = clients;
    spec.use_rings = true;
    // Ring drains ride the server's clock, which cold-miss disk time pushes
    // far ahead of the arrival timeline (seconds, at the full request
    // count); the default watchdog horizon would fail flows that are merely
    // queued behind that, not wedged.
    spec.stall_horizon = (g_smoke ? 2000 : 30000) * kMillisecond;
    const RowResult r = RunRow(spec);
    Report(report, lat_section, spec, r);
    if (r.stats.failed != 0) {
      std::fprintf(stderr, "server[rings]: %llu flows failed with no fault\n",
                   static_cast<unsigned long long>(r.stats.failed));
      std::abort();
    }
  }
  {
    RowSpec spec;
    spec.variant = "pressure";
    spec.workload = base;
    spec.workload.requests = g_smoke ? 100 : 4000;
    // A wide file set keeps concurrent flows from sharing (and co-pinning)
    // the same hot blocks, so the pinned set is genuinely larger than the
    // tight pool.
    spec.workload.files = 512;
    spec.clients = clients;
    spec.max_inflight = 128;
    spec.tight_memory = true;
    spec.expect_copies = true;
    Report(report, lat_section, spec, RunRow(spec));
  }
  {
    RowSpec spec;
    spec.variant = "link-flap";
    spec.workload = base;
    spec.workload.requests = g_smoke ? 200 : 4000;
    spec.clients = clients;
    spec.fault = RowSpec::Fault::kLinkFlap;
    const RowResult r = RunRow(spec);
    Report(report, lat_section, spec, r);
    if (r.stats.pdus_dropped == 0) {
      std::fprintf(stderr, "server[link-flap]: the flap dropped nothing\n");
      std::abort();
    }
  }
  {
    RowSpec spec;
    spec.variant = "client-churn";
    spec.workload = base;
    spec.workload.requests = g_smoke ? 200 : 4000;
    spec.clients = clients;
    spec.fault = RowSpec::Fault::kClientChurn;
    spec.export_trace = true;
    const RowResult r = RunRow(spec);
    Report(report, lat_section, spec, r);
    if (r.stats.failed == 0) {
      std::fprintf(stderr, "server[client-churn]: no flow failed\n");
      std::abort();
    }
  }

  std::printf(
      "\nshape: hits are sendfile-style references (server bytes_copied is\n"
      "hard-checked zero outside the pressure row); steeper Zipf exponents\n"
      "concentrate the working set and lift the hit ratio; the pressure row\n"
      "serves real traffic through the degraded copy path; faults fail flows\n"
      "without leaking a single pin or frame (§3.3 audit on every row).\n");

  report.RawSection("time_attribution", attribution_json);
  report.RawSection("latency_decomposition", lat_section + "\n  }");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main(int argc, char** argv) { return fbufs::bench::Main(argc, argv); }
