// Ablation A5: integrated vs non-integrated aggregate transfer (§3.2.3).
//
// Non-integrated: at each boundary the aggregate is flattened into an fbuf
// list in the sender and rebuilt in the receiver (per-fbuf cost both
// sides). Integrated: the DAG itself lives in fbufs; only the root
// reference crosses; the receiver walks the stored DAG defensively. The gap
// grows with the number of fragments in the aggregate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/msg/stored_message.h"

namespace fbufs {
namespace bench {
namespace {

// Builds an aggregate of |fragments| single-page fbufs and transfers it
// once, returning simulated microseconds per message.
double TransferUs(bool integrated, int fragments, int iters = 8) {
  BenchWorld w;
  IntegratedTransfer xfer(&w.fsys);
  // Pre-build the fragment fbufs once (steady state: data fbufs are cached
  // and already mapped in the receiver after the warmup round).
  std::vector<Fbuf*> fbs;
  Message m;
  for (int i = 0; i < fragments; ++i) {
    Fbuf* fb = nullptr;
    w.fsys.Allocate(*w.src, w.path, kPageSize, true, &fb);
    w.src->TouchRange(fb->base, kPageSize, Access::kWrite);
    fbs.push_back(fb);
    m = Message::Concat(m, Message::Whole(fb));
  }
  auto one = [&]() {
    if (integrated) {
      StoredMessage sm;
      xfer.Store(*w.src, w.path, m, true, &sm);
      xfer.Send(sm, *w.src, *w.dst);
      Message got;
      xfer.Load(*w.dst, sm.root, &got);
      got.Touch(*w.dst, Access::kRead);
      xfer.FreeAll(sm, *w.dst);
      // Release only the node fbuf's originator ref; the data fbufs stay.
      w.fsys.Free(sm.node_fbuf, *w.src);
    } else {
      // Flatten + rebuild: per-fbuf marshal both sides, then per-fbuf
      // transfer and free.
      w.machine.clock().Advance(2 * static_cast<std::uint64_t>(fragments) *
                                w.machine.costs().fbuf_list_marshal_ns);
      for (Fbuf* fb : fbs) {
        w.fsys.Transfer(fb, *w.src, *w.dst);
      }
      m.Touch(*w.dst, Access::kRead);
      for (Fbuf* fb : fbs) {
        w.fsys.Free(fb, *w.dst);
      }
    }
  };
  one();  // warmup: builds receiver mappings
  const SimTime before = w.machine.clock().Now();
  for (int i = 0; i < iters; ++i) {
    one();
  }
  const SimTime elapsed = w.machine.clock().Now() - before;
  return elapsed / 1000.0 / iters;
}

int Main() {
  std::printf("\n=== Ablation A5: integrated vs non-integrated aggregate transfer ===\n");
  std::printf("(steady-state cost per transfer of an N-fragment aggregate, us)\n\n");
  std::printf("%12s %16s %16s\n", "fragments", "non-integrated", "integrated");
  for (const int n : {1, 2, 4, 8, 16, 32, 64}) {
    std::printf("%12d %16.1f %16.1f\n", n, TransferUs(false, n), TransferUs(true, n));
  }
  std::printf(
      "\nreading: integrated transfer replaces the per-fbuf flatten/rebuild with a walk of\n"
      "the in-region DAG (steps 2a/3c of the base mechanism eliminated, §3.2.3).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
