// Fan-in contention study on the topology fabric: K senders push through
// one ATM switch output port onto a single trunk into one receiver, sweeping
// sender count and IP PDU size.
//
// Each sender sits on its own 80 Mbps uplink, the switch output port runs
// at 140 Mbps with a bounded queue, and the trunk to the receiver is the
// paper's 516 Mbps testbed wire. The interesting output is where the
// bottleneck sits as load grows: one sender is limited by its own uplink;
// a few senders saturate the switch port (and its queue starts shedding
// PDUs); small PDUs shift the limit to the receiving host's per-PDU
// protocol costs — the same CPU ceiling the paper's §4 measurements chase.
//
// A second sweep removes the fabric caps entirely (kStar: every sender's
// wire lands straight on the receiver's adapter) to expose the other ceiling
// the paper measures: the Osiris board's TurboChannel DMA path, which bus
// contention limits to ~285 Mbps (CostParams::DmaTime) no matter how much
// the wires could carry. One sender is bound by its own uplink below that
// ceiling; two or more contend at rx-dma and their aggregate goodput pins
// to ~285 Mbps — the fig5/fig6 kernel-kernel ceiling, reached here by
// fan-in instead of message size.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/topo/topo_config.h"

namespace fbufs {
namespace bench {
namespace {

struct ClassUse {
  double uplink = 0;      // max over the senders' wires
  double switch_port = 0;
  double trunk = 0;
  double rx_dma = 0;
  double rx_cpu = 0;
};

struct SweepPoint {
  std::size_t senders = 0;
  std::uint64_t pdu = 0;
  double offered_mbps = 0;  // send-side aggregate
  double goodput_mbps = 0;  // sum of per-flow delivered rates
  std::uint64_t drops = 0;
  ClassUse use;
  std::string bottleneck;
  double bottleneck_util = 0;
};

SweepPoint RunPoint(const TopologyConfig& cfg,
                    std::uint64_t message_bytes = 0,
                    std::string* attr_json = nullptr,
                    std::string* metrics_json = nullptr) {
  BuiltTopology b = BuildTopology(cfg);
  // Default: single-fragment datagrams (message == one PDU): a shed PDU
  // costs exactly one datagram, so goodput degrades gracefully instead of
  // every loss killing a whole multi-fragment reassembly. Lossless sweeps
  // pass a larger |message_bytes| to amortize per-message costs instead.
  // 2 MB per sender either way.
  const std::uint64_t pdu = cfg.host.pdu_size;
  const std::uint64_t bytes = message_bytes != 0 ? message_bytes : pdu;
  std::vector<FlowTraffic> traffic(cfg.senders);
  for (FlowTraffic& t : traffic) {
    t.messages = (2 * 1024 * 1024) / bytes;
    t.bytes = bytes;
    t.warmup = 4;
  }
  MetricsRegistry metrics;
  b.topo->host(b.receiver_node)->machine.AttachMetrics(&metrics);
  const MultiResult mr = b.runner->RunFlows(traffic);
  if (attr_json != nullptr) {
    *attr_json = "{\n    \"receiver\": " +
                 TimeAttributionJson(b.topo->host(b.receiver_node)->machine) +
                 "\n  }";
  }
  if (metrics_json != nullptr) {
    *metrics_json = metrics.ToJson();
  }
  b.topo->host(b.receiver_node)->machine.AttachMetrics(nullptr);

  SweepPoint p;
  p.senders = cfg.senders;
  p.pdu = pdu;
  p.offered_mbps = mr.aggregate_mbps;
  for (const FlowResult& f : mr.flows) {
    p.goodput_mbps += f.goodput_mbps;
  }
  if (b.switch_node != kNoNode) {
    p.drops = b.topo->switch_at(b.switch_node)->drops_total();
  }
  for (const ResourceUse& r : mr.resources) {
    if (r.name.rfind("wire/", 0) == 0) {
      p.use.uplink = std::max(p.use.uplink, r.utilization);
    } else if (r.name.rfind("switch/", 0) == 0) {
      p.use.switch_port = std::max(p.use.switch_port, r.utilization);
    } else if (r.name == "trunk") {
      p.use.trunk = r.utilization;
    } else if (r.name == "rx-dma") {
      p.use.rx_dma = std::max(p.use.rx_dma, r.utilization);
    } else if (r.name == "cpu/receiver") {
      p.use.rx_cpu = r.utilization;
    }
    if (r.utilization > p.bottleneck_util) {
      p.bottleneck_util = r.utilization;
      p.bottleneck = r.name;
    }
  }
  return p;
}

// The paper's Osiris I/O ceiling: TurboChannel DMA start-up plus bus
// contention cap the adapter at ~285 Mbps (CostParams::DmaTime).
constexpr double kIoCeilingMbps = 285.0;

int Main() {
  std::printf("\n=== Fan-in through one switch port "
              "(80 Mbps uplinks, 140 Mbps port, 516 Mbps trunk) ===\n");
  std::printf("%8s %8s %9s %9s %7s %8s %8s %8s %8s %8s  %s\n", "senders",
              "pdu", "offered", "goodput", "drops", "uplink", "port", "trunk",
              "rx-dma", "rx-cpu", "bottleneck");
  JsonReport report("fanin_contention");
  std::string attr_json;
  std::string metrics_json;
  for (std::uint64_t pdu : {2 * 1024, 16 * 1024}) {
    for (std::size_t senders : {1, 2, 4, 8}) {
      // The last point (8 senders, 16 KB PDUs) supplies the receiver's
      // per-layer breakdown; each point is conservation-checked.
      TopologyConfig cfg;
      cfg.shape = TopologyShape::kFanInSwitch;
      cfg.senders = senders;
      cfg.host.pdu_size = pdu;
      cfg.sender_link_mbps = 80.0;
      cfg.switch_port.mbps = 140.0;
      const SweepPoint p = RunPoint(cfg, 0, &attr_json, &metrics_json);
      std::printf("%8zu %6lluKB %9.1f %9.1f %7llu %7.0f%% %7.0f%% %7.0f%% "
                  "%7.0f%% %7.0f%%  %s (%.0f%%)\n",
                  p.senders, static_cast<unsigned long long>(p.pdu / 1024),
                  p.offered_mbps, p.goodput_mbps,
                  static_cast<unsigned long long>(p.drops),
                  p.use.uplink * 100.0, p.use.switch_port * 100.0,
                  p.use.trunk * 100.0, p.use.rx_dma * 100.0,
                  p.use.rx_cpu * 100.0, p.bottleneck.c_str(),
                  p.bottleneck_util * 100.0);
      report.BeginRow()
          .Field("sweep", "fanin_switch")
          .Field("senders", static_cast<double>(p.senders))
          .Field("pdu_kb", static_cast<double>(p.pdu / 1024))
          .Field("offered_mbps", p.offered_mbps)
          .Field("aggregate_goodput_mbps", p.goodput_mbps)
          .Field("switch_drops", static_cast<double>(p.drops))
          .Field("uplink_util", p.use.uplink)
          .Field("switch_port_util", p.use.switch_port)
          .Field("trunk_util", p.use.trunk)
          .Field("rx_dma_util", p.use.rx_dma)
          .Field("rx_cpu_util", p.use.rx_cpu)
          .Field("bottleneck", p.bottleneck)
          .Field("bottleneck_util", p.bottleneck_util);
    }
  }

  // Adapter contention: star fan-in on 160 Mbps wires, no switch in the way.
  // Kernel-resident stacks and 256 KB messages (the fig5 ceiling regime)
  // keep per-PDU protocol and crossing costs off the critical path so the
  // adapter itself is what runs out. One sender is bound by its own wire
  // (160 < 285); from two senders up the offered load exceeds the adapter
  // and aggregate goodput pins to the TurboChannel ceiling regardless of
  // how many more wires feed it.
  std::printf("\n=== Adapter contention: star fan-in straight into rx-dma "
              "(160 Mbps wires, 16 KB PDUs) ===\n");
  std::printf("%8s %9s %9s %9s %9s %8s %8s  %s\n", "senders", "offered",
              "goodput", "ceiling", "of-ceil", "rx-dma", "rx-cpu",
              "bottleneck");
  bool ok = true;
  auto check = [&ok](bool cond, const std::string& why) {
    if (!cond) {
      std::printf("SELF-CHECK FAILED: %s\n", why.c_str());
      ok = false;
    }
  };
  for (std::size_t senders : {1, 2, 4}) {
    TopologyConfig cfg;
    cfg.shape = TopologyShape::kStar;
    cfg.senders = senders;
    cfg.host.pdu_size = 16 * 1024;
    cfg.host.placement = StackPlacement::kKernelOnly;
    cfg.sender_link_mbps = 160.0;
    const SweepPoint p = RunPoint(cfg, 256 * 1024);
    const double of_ceiling = p.goodput_mbps / kIoCeilingMbps;
    std::printf("%8zu %9.1f %9.1f %9.1f %8.0f%% %7.0f%% %7.0f%%  %s (%.0f%%)\n",
                p.senders, p.offered_mbps, p.goodput_mbps, kIoCeilingMbps,
                of_ceiling * 100.0, p.use.rx_dma * 100.0, p.use.rx_cpu * 100.0,
                p.bottleneck.c_str(), p.bottleneck_util * 100.0);
    report.BeginRow()
        .Field("sweep", "adapter_contention")
        .Field("senders", static_cast<double>(p.senders))
        .Field("pdu_kb", static_cast<double>(p.pdu / 1024))
        .Field("offered_mbps", p.offered_mbps)
        .Field("aggregate_goodput_mbps", p.goodput_mbps)
        .Field("io_ceiling_mbps", kIoCeilingMbps)
        .Field("fraction_of_ceiling", of_ceiling)
        .Field("rx_dma_util", p.use.rx_dma)
        .Field("rx_cpu_util", p.use.rx_cpu)
        .Field("bottleneck", p.bottleneck)
        .Field("bottleneck_util", p.bottleneck_util);
    if (senders == 1) {
      check(p.goodput_mbps < 0.75 * kIoCeilingMbps,
            "one sender on a 160 Mbps wire should sit well under the 285 "
            "Mbps adapter ceiling");
    } else {
      check(p.bottleneck == "rx-dma",
            "adapter fan-in should bottleneck at rx-dma, got " + p.bottleneck);
      check(p.goodput_mbps > 0.80 * kIoCeilingMbps &&
                p.goodput_mbps < 1.05 * kIoCeilingMbps,
            "aggregate goodput should pin near the 285 Mbps I/O ceiling");
    }
  }

  report.RawSection("time_attribution", attr_json);
  report.RawSection("metrics", metrics_json);
  report.Write();
  std::printf("\n%s\n", ok ? "fan-in self-checks passed"
                           : "FAN-IN SELF-CHECK FAILURES (see above)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
