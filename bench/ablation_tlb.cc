// Ablation A1: where does the 3 us/page of cached/volatile fbufs come from?
//
// Table 1's residual cost is software-serviced TLB misses (MIPS R3000).
// Sweeping the TLB size shows the cost vanish once the TLB covers the
// producer/consumer working set — and grow toward two misses per page when
// it does not.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/fbuf_adapter.h"

namespace fbufs {
namespace bench {
namespace {

double PerPageUs(std::uint32_t tlb_entries, std::uint64_t pages) {
  MachineConfig mcfg;
  mcfg.tlb_entries = tlb_entries;
  Machine machine(mcfg);
  FbufConfig fcfg;
  fcfg.clear_new_pages = false;
  FbufSystem fsys(&machine, fcfg);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  Domain* src = machine.CreateDomain("src");
  Domain* dst = machine.CreateDomain("dst");
  const PathId path = fsys.paths().Register({src->id(), dst->id()});
  FbufTransferAdapter f(&fsys, path, true, true);

  constexpr int kIters = 10;
  BufferRef ref;
  auto cycle = [&]() {
    f.Alloc(*src, pages * kPageSize, &ref);
    src->TouchRange(ref.sender_addr, ref.bytes, Access::kWrite);
    f.Send(ref, *src, *dst);
    dst->TouchRange(ref.receiver_addr, ref.bytes, Access::kRead);
    f.ReceiverFree(ref, *dst);
    f.SenderFree(ref, *src);
  };
  for (int i = 0; i < 3; ++i) {
    cycle();
  }
  const SimTime before = machine.clock().Now();
  for (int i = 0; i < kIters; ++i) {
    cycle();
  }
  return (machine.clock().Now() - before) / 1000.0 / (kIters * pages);
}

int Main() {
  std::printf("\n=== Ablation A1: cached/volatile per-page cost vs TLB size ===\n");
  std::printf("(64-page messages; the R3000 default is 64 entries -> ~3 us/page)\n\n");
  std::printf("%12s %14s\n", "tlb-entries", "us/page");
  for (const std::uint32_t entries : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    std::printf("%12u %14.2f\n", entries, PerPageUs(entries, 64));
  }
  std::printf(
      "\nreading: below ~2x the message's page count the producer and consumer evict each\n"
      "other's entries (2 misses/page = 3 us); with enough reach the cost collapses to\n"
      "bare word-touch time. This is the paper's claim that caching leaves only TLB cost.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
