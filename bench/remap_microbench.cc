// Reproduces the §2.2 re-evaluation of Tzou/Anderson-style page remapping on
// a "modern machine": the ping-pong per-page cost and the realistic one-way
// cost including allocation, clearing (0-100% of each page) and
// deallocation.
//
// Paper: 22 us/page ping-pong; 42-99 us/page realistic.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/remap_transfer.h"

namespace fbufs {
namespace bench {
namespace {

double PingPongUs() {
  BenchWorld w;
  RemapTransfer f(&w.machine, RemapTransfer::Mode::kPingPong);
  constexpr std::uint64_t kSmall = 96, kLarge = 192;
  constexpr int kIters = 10;
  auto run = [&](std::uint64_t pages) {
    BufferRef ref;
    f.Alloc(*w.src, pages * kPageSize, &ref);
    for (int i = 0; i < 2; ++i) {
      f.Send(ref, *w.src, *w.dst);
      f.SendBack(ref, *w.dst, *w.src);
    }
    const SimTime before = w.machine.clock().Now();
    for (int i = 0; i < kIters; ++i) {
      w.src->TouchRange(ref.sender_addr, ref.bytes, Access::kWrite);
      f.Send(ref, *w.src, *w.dst);
      w.dst->TouchRange(ref.sender_addr, ref.bytes, Access::kRead);
      f.SendBack(ref, *w.dst, *w.src);
    }
    const SimTime elapsed = w.machine.clock().Now() - before;
    f.SenderFree(ref, *w.src);
    return elapsed;
  };
  const SimTime t1 = run(kSmall);
  const SimTime t2 = run(kLarge);
  return static_cast<double>(t2 - t1) / 1000.0 / (kIters * (kLarge - kSmall)) / 2.0;
}

int Main() {
  std::printf("\n=== §2.2: DASH-style page remapping, re-evaluated ===\n");
  std::printf("ping-pong:        %5.1f us/page   (paper: 22)\n", PingPongUs());
  std::printf("\nrealistic one-way (alloc + clear + remap + dealloc):\n");
  std::printf("%14s %12s %10s\n", "cleared-%", "us/page", "paper");
  for (const std::uint32_t percent : {0u, 25u, 50u, 75u, 100u}) {
    BenchWorld w;
    RemapTransfer f(&w.machine, RemapTransfer::Mode::kRealistic, percent);
    const double us = PerPageSlopeUs(w, f, /*reuse_buffer=*/false);
    std::printf("%13u%% %12.1f %10.1f\n", percent, us, 42.0 + 57.0 * percent / 100.0);
  }
  std::printf("\npaper range: 42 (nothing cleared) to 99 us/page (fully cleared)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
