// Reproduces Figure 4: throughput of a UDP/IP local loopback test (an
// infinitely fast network) as a function of message size. Three
// configurations: all components in a single protection domain; three
// domains with cached fbufs; three domains with uncached fbufs.
//
// Expected shape (paper): cached fbufs give >2x the throughput of uncached
// across the whole range; at >= 64 KB the 3-domain cached curve reaches
// >= 90% of the single-domain curve; the single-domain curve shows a
// fragmentation anomaly just above the 4 KB PDU size.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/proto/loopback_stack.h"

namespace fbufs {
namespace bench {
namespace {

double RunSeries(bool three_domains, bool cached, std::uint64_t size) {
  MachineConfig mcfg;
  Machine machine(mcfg);
  FbufConfig fcfg;
  FbufSystem fsys(&machine, fcfg);
  Rpc rpc(&machine);
  fsys.AttachRpc(&rpc);
  LoopbackStackConfig cfg;
  cfg.pdu_size = 4096;
  cfg.three_domains = three_domains;
  cfg.cached_paths = cached;
  LoopbackStack ls(&machine, &fsys, &rpc, cfg);
  const int warmup = 2, iters = 6;
  for (int i = 0; i < warmup; ++i) {
    if (!Ok(ls.SendMessage(size))) {
      return -1;
    }
  }
  const SimTime before = machine.clock().Now();
  for (int i = 0; i < iters; ++i) {
    if (!Ok(ls.SendMessage(size))) {
      return -1;
    }
  }
  const SimTime elapsed = machine.clock().Now() - before;
  return static_cast<double>(size) * iters * 8.0 * 1000.0 / static_cast<double>(elapsed);
}

int Main() {
  PrintHeader("Figure 4: UDP/IP local loopback throughput (Mbps), IP PDU = 4 KB");
  std::printf("%10s %15s %18s %20s\n", "size", "single-domain", "3-domains-cached",
              "3-domains-uncached");
  const std::vector<std::uint64_t> sizes = {1024,   2048,   4096,   8192,   16384,  32768,
                                            65536, 131072, 262144, 524288, 1048576};
  for (const std::uint64_t size : sizes) {
    std::printf("%10llu %15.1f %18.1f %20.1f\n", static_cast<unsigned long long>(size),
                RunSeries(false, true, size), RunSeries(true, true, size),
                RunSeries(true, false, size));
  }
  std::printf(
      "\nshape checks: cached >= 2x uncached from moderate sizes up (IPC latency dominates\n"
      "both at the very small end); 3-domain cached within ~10%% of single-domain at\n"
      ">= 64-128 KB; single-domain dip just above the 4 KB PDU (fragmentation overhead).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
