// Fault-injection campaign driver: scripted failures against live worlds,
// with §3.3 cleanup rules audited under fire.
//
// Seven named campaigns, each writing CAMPAIGN_<name>.json:
//
//   loss_burst           — two senders fan in through one switch port; a 30%
//                          loss burst hits one uplink, the trunk flaps dark,
//                          then the switch queue is squeezed to one PDU.
//                          Per-phase goodput shows degradation and recovery;
//                          every host audits clean throughout.
//   ack_only_loss        — SWP pair: only the ack channel drops frames for a
//                          while. Data arrives fine, yet the sender
//                          retransmits (duplicates, not losses) until the
//                          cumulative acks get through — with zero bytes
//                          copied, because retransmission works from
//                          retained fbuf references (§2.1.3).
//   rto_sweep            — SWP pair at 20% symmetric loss, retransmission
//                          timeout swept 0.5–8 ms: goodput vs spurious-
//                          retransmission tradeoff, window never wedged.
//   terminate_originator — relay chain; the sender's app domain (the data
//                          fbufs' originator) is destroyed mid-flow. The
//                          flow fails cleanly, receiver-side data survives,
//                          and the terminated host audits with zero leaked
//                          frames and zero dangling mappings.
//   hoarder              — a third domain pins nearly the whole physical
//                          pool; the SWP producer parks on the shared
//                          backoff under exhaustion. Terminating the
//                          hoarder reclaims its entire quota (§3.3), the
//                          producer resumes, and the run drains clean.
//   server_churn         — a ServeWorld client's app domain is destroyed
//                          mid-download and its access link flaps dark. The
//                          dead client's flows fail, every other client
//                          drains, and the post-churn audit shows zero
//                          leaked frames with every cache pin released.
//   congestion_collapse  — sixteen fixed-window flows incast through the
//                          rack fabric; the core downlink queue is squeezed
//                          to four PDUs, a loss burst hits one ingress
//                          wire, and one sender's domain is destroyed
//                          mid-retransmit with its window pinned in the
//                          ledger. Survivors drain through the storm; the
//                          victim's ledger reclaims, its receiver-side
//                          conversation shuts down with no stranded stash,
//                          and every audit (host §3.3 plus per-conversation
//                          window/ledger) is clean.
//
// Everything is deterministic: same seed and schedule produce byte-identical
// JSON. --smoke scales message counts and fault times down for CI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/campaign.h"
#include "src/fault/incast_world.h"
#include "src/fault/swp_world.h"
#include "src/obs/lifecycle.h"
#include "src/obs/trace_export.h"
#include "src/serve/serve_world.h"
#include "src/sim/rng.h"
#include "src/topo/topo_config.h"

namespace fbufs {
namespace bench {
namespace {

// Smoke mode divides both the traffic and the fault timeline by this factor,
// keeping every fault inside the (shorter) run.
std::uint64_t g_scale = 1;

SimTime At(std::uint64_t ms) { return ms * kMillisecond / g_scale; }

void AuditAllHosts(CampaignRunner* cr, BuiltTopology* b) {
  for (NodeId n = 0; n < b->topo->node_count(); ++n) {
    if (b->topo->is_switch(n)) {
      continue;
    }
    SimHost* h = b->topo->host(n);
    cr->AddAuditedHost(h->machine.name(), &h->machine, &h->fsys);
  }
}

void PrintReport(const CampaignReport& r) {
  std::printf("\n--- campaign %s: %s ---\n", r.name().c_str(),
              r.passed() ? "PASSED" : "FAILED");
  std::printf("%-28s %10s %10s %12s %8s %6s\n", "phase", "start-ms", "end-ms",
              "goodput", "drops", "retx");
  for (const CampaignReport::Phase& p : r.phases()) {
    std::printf("%-28s %10.2f %10.2f %9.1f Mb %8llu %6llu\n", p.label.c_str(),
                p.start_ns / 1e6, p.end_ns / 1e6, p.goodput_mbps,
                static_cast<unsigned long long>(p.drops),
                static_cast<unsigned long long>(p.retransmissions));
  }
  for (const CampaignReport::AuditEntry& a : r.audits()) {
    std::printf("audit %-22s at %8.2f ms: %s", a.label.c_str(), a.at_ns / 1e6,
                a.passed ? "clean" : "VIOLATIONS");
    for (const HostAuditResult& h : a.hosts) {
      if (!h.passed) {
        std::printf("  [%s: leaked=%llu rc-mismatch=%llu dangling=%llu "
                    "freelist=%llu]",
                    h.host.c_str(),
                    static_cast<unsigned long long>(h.leaked_frames),
                    static_cast<unsigned long long>(h.refcount_mismatches),
                    static_cast<unsigned long long>(h.dangling_mappings),
                    static_cast<unsigned long long>(h.free_list_errors));
      }
    }
    if (a.has_swp && !a.swp.passed) {
      std::printf("  [swp: unacked=%u stashed=%llu copied=%llu]", a.swp.unacked,
                  static_cast<unsigned long long>(a.swp.stashed),
                  static_cast<unsigned long long>(a.swp.bytes_copied));
    }
    std::printf("\n");
  }
  if (!r.outcome_note().empty()) {
    std::printf("outcome: %s\n", r.outcome_note().c_str());
  }
}

// --- Journey reconciliation --------------------------------------------------
//
// Fbuf provenance audited beside the §3.3 audits: one LifecycleTracker per
// machine, attached before any traffic, reconciled after the run. Every
// recorded journey must end in kFree (or kAbort when its domain was
// terminated) with its pins balanced; termination campaigns additionally
// demand that the §3.3 sweep left at least one abort hop in the record.

class JourneyAudit {
 public:
  void Attach(Machine* m) {
    entries_.push_back({m, std::make_unique<LifecycleTracker>(m)});
    m->AttachLifecycle(entries_.back().tracker.get());
  }

  void AttachTopology(BuiltTopology* b) {
    for (NodeId n = 0; n < b->topo->node_count(); ++n) {
      if (b->topo->is_switch(n)) {
        continue;
      }
      SimHost* h = b->topo->host(n);
      if (h != nullptr) {
        Attach(&h->machine);
      }
    }
  }

  // Trackers die with this object while worlds may free fbufs afterwards —
  // never leave a machine pointing at a dead observer.
  ~JourneyAudit() {
    for (Entry& e : entries_) {
      e.machine->AttachLifecycle(nullptr);
    }
  }

  // Detaches and reconciles every tracker. |min_aborts| demands that at
  // least that many journeys ended in a §3.3 abort (termination campaigns).
  bool Finish(const std::string& campaign, std::uint64_t min_aborts = 0) {
    std::uint64_t journeys = 0;
    std::uint64_t aborted = 0;
    bool ok = true;
    for (Entry& e : entries_) {
      e.machine->AttachLifecycle(nullptr);
      const LifecycleTracker::Reconciliation rec = e.tracker->Reconcile();
      journeys += e.tracker->journeys().size();
      aborted += rec.aborted;
      if (std::getenv("JOURNEY_DEBUG") != nullptr) {
        std::fprintf(stderr,
                     "[journey-debug] %s %s: journeys=%zu open=%llu ended=%llu "
                     "aborted=%llu\n",
                     campaign.c_str(), e.machine->name().c_str(),
                     e.tracker->journeys().size(),
                     (unsigned long long)rec.open, (unsigned long long)rec.ended,
                     (unsigned long long)rec.aborted);
      }
      if (!rec.passed() || rec.dropped != 0) {
        std::fprintf(stderr,
                     "campaign %s: journey reconciliation failed on %s: "
                     "open=%llu pin_imbalance=%llu bad_end=%llu dropped=%llu\n",
                     campaign.c_str(), e.machine->name().c_str(),
                     static_cast<unsigned long long>(rec.open),
                     static_cast<unsigned long long>(rec.pin_imbalance),
                     static_cast<unsigned long long>(rec.bad_end),
                     static_cast<unsigned long long>(rec.dropped));
        ok = false;
      }
    }
    if (journeys == 0) {
      std::fprintf(stderr, "campaign %s: no journey was ever recorded\n",
                   campaign.c_str());
      ok = false;
    }
    if (aborted < min_aborts) {
      std::fprintf(stderr,
                   "campaign %s: expected >= %llu aborted journeys, saw %llu\n",
                   campaign.c_str(),
                   static_cast<unsigned long long>(min_aborts),
                   static_cast<unsigned long long>(aborted));
      ok = false;
    }
    return ok;
  }

 private:
  struct Entry {
    Machine* machine;
    std::unique_ptr<LifecycleTracker> tracker;
  };
  std::vector<Entry> entries_;
};

// --- Trace capture and export ------------------------------------------------
//
// Every campaign writes TRACE_<name>.json alongside its CAMPAIGN_<name>.json:
// a Chrome trace_event timeline (load in Perfetto) with one process per
// host, one lane per trace category, fault-phase markers from the
// CampaignRunner, and busy-interval lanes for the contended resources.
// Capture is armed right after world construction, while every trace ring
// is still empty.

constexpr std::size_t kTraceRing = std::size_t{1} << 17;

void ArmHostTrace(Machine& m) {
  m.trace().SetCapacity(kTraceRing);
  m.trace().EnableAll();
}

void ArmTopologyCapture(BuiltTopology* b) {
  for (NodeId n = 0; n < b->topo->node_count(); ++n) {
    if (b->topo->is_switch(n)) {
      SwitchNode* sw = b->topo->switch_at(n);
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        sw->port_resource(p).set_record_intervals(true);
      }
      continue;
    }
    SimHost* h = b->topo->host(n);
    if (h != nullptr) {
      ArmHostTrace(h->machine);
      h->cpu.set_record_intervals(true);
    }
  }
  for (LinkId l = 0; l < b->topo->link_count(); ++l) {
    b->topo->link(l).wire().set_record_intervals(true);
  }
}

void WriteTrace(const std::string& name, const TraceExporter& ex) {
  const std::string path = "TRACE_" + name + ".json";
  if (ex.WriteFile(path)) {
    std::fprintf(stderr, "wrote %s (%zu events)\n", path.c_str(),
                 ex.event_count());
  }
}

void ExportTopologyTrace(const std::string& name, BuiltTopology* b) {
  TraceExporter ex;
  std::uint32_t pid = 1;
  for (NodeId n = 0; n < b->topo->node_count(); ++n) {
    if (b->topo->is_switch(n)) {
      continue;
    }
    SimHost* h = b->topo->host(n);
    if (h != nullptr) {
      ex.AddHost(h->machine.name(), pid++, h->machine.trace());
    }
  }
  for (NodeId n = 0; n < b->topo->node_count(); ++n) {
    if (!b->topo->is_switch(n)) {
      continue;
    }
    SwitchNode* sw = b->topo->switch_at(n);
    for (std::size_t p = 0; p < sw->port_count(); ++p) {
      ex.AddResource(sw->port_resource(p));
    }
  }
  for (LinkId l = 0; l < b->topo->link_count(); ++l) {
    ex.AddResource(b->topo->link(l).wire());
  }
  WriteTrace(name, ex);
}

void ExportSwpTrace(const std::string& name, SwpWorld& w) {
  TraceExporter ex;
  ex.AddHost(w.machine.name(), 1, w.machine.trace());
  WriteTrace(name, ex);
}

// --- Campaign 1: loss burst, link flap, and queue squeeze under fan-in -------

CampaignReport RunLossBurst() {
  TopologyConfig cfg;
  cfg.shape = TopologyShape::kFanInSwitch;
  cfg.senders = 2;
  cfg.sender_link_mbps = 60.0;
  cfg.switch_port.mbps = 140.0;
  BuiltTopology b = BuildTopology(cfg);
  ArmTopologyCapture(&b);
  JourneyAudit ja;
  ja.AttachTopology(&b);

  CampaignRunner cr("loss_burst", cfg.seed, b.loop.get());
  cr.AttachTopology(b.topo.get(), b.runner.get());
  AuditAllHosts(&cr, &b);

  FaultSchedule s;
  s.name = "loss_burst";
  s.Add({.kind = FaultAction::Kind::kLossBurst,
         .at = At(80),
         .duration = At(80),
         .link = b.sender_links[0],
         .percent = 30,
         .label = "burst30/uplink0"});
  s.Add({.kind = FaultAction::Kind::kLinkFlap,
         .at = At(220),
         .duration = At(15),
         .link = b.trunk_link,
         .label = "flap/trunk"});
  s.Add({.kind = FaultAction::Kind::kSqueezeSwitchQueue,
         .at = At(300),
         .duration = At(60),
         .node = b.switch_node,
         .queue_pdus = 1,
         .label = "squeeze/port0"});
  cr.Arm(s);
  cr.ScheduleAudit(At(150), "mid-burst");

  // Single-fragment datagrams: one shed PDU costs one message, so goodput
  // degrades instead of collapsing (same choice as fanin_contention).
  std::vector<FlowTraffic> traffic(cfg.senders);
  for (FlowTraffic& t : traffic) {
    t.messages = 192 / g_scale;
    t.bytes = cfg.host.pdu_size;
    t.warmup = 4;
  }
  const MultiResult mr = b.runner->RunFlows(traffic);
  bool flows_ok = !mr.failed;
  for (const FlowResult& f : mr.flows) {
    flows_ok = flows_ok && !f.stalled;
  }
  flows_ok = flows_ok && ja.Finish("loss_burst");
  cr.SetOutcome(flows_ok, flows_ok
                              ? "all flows drained despite burst+flap+squeeze"
                              : "a flow failed or wedged");
  CampaignReport rep = cr.Finish();
  ExportTopologyTrace("loss_burst", &b);
  return rep;
}

// --- Campaign 2: loss on the ack path only -----------------------------------

CampaignReport RunAckOnlyLoss() {
  SwpWorldConfig wc;
  SwpWorld w(wc);
  ArmHostTrace(w.machine);
  JourneyAudit ja;
  ja.Attach(&w.machine);

  CampaignRunner cr("ack_only_loss", wc.fwd_seed ^ wc.rev_seed, &w.loop);
  cr.AttachSwp(&w.sender, &w.receiver, &w.fwd, &w.rev, &w.sink, &w.machine);
  cr.AddAuditedHost(w.machine.name(), &w.machine, &w.fsys);

  FaultSchedule s;
  s.name = "ack_only_loss";
  // With a clean ack path the whole run completes synchronously at loop
  // time zero (acks return in-call; only RTO recovery advances the clock),
  // so the loss window must open at t=0 — Arm() runs before the producer's
  // first event — and stay open across a few RTOs.
  s.Add({.kind = FaultAction::Kind::kAckPathOnlyLoss,
         .at = 0,
         .duration = At(6),
         .percent = 50,
         .label = "ack-loss50"});
  cr.Arm(s);
  cr.ScheduleAudit(At(2), "mid-ack-loss");

  w.StartProducer(static_cast<int>(96 / g_scale), 32 * 1024);
  w.loop.Run();

  const bool done = w.accepted() == static_cast<int>(96 / g_scale) &&
                    ja.Finish("ack_only_loss");
  const std::uint64_t dupes = w.receiver.duplicates_dropped();
  cr.SetOutcome(done && dupes > 0,
                done ? "window recovered; retransmissions were duplicates "
                       "(data path never lost a frame)"
                     : "producer never finished");
  CampaignReport rep = cr.Finish();
  ExportSwpTrace("ack_only_loss", w);
  return rep;
}

// --- Campaign 3: RTO sensitivity sweep at fixed symmetric loss ---------------

CampaignReport RunRtoSweep() {
  CampaignReport master("rto_sweep", 11 ^ 13);
  master.AddScheduledFault({"symmetric-loss20", "set_link_loss", 0, 0, 20});
  bool all_ok = true;
  TraceExporter ex;
  std::uint32_t pid = 1;
  const int messages = static_cast<int>(48 / g_scale);
  for (const SimTime rto_us : {500u, 1000u, 2000u, 4000u, 8000u}) {
    SwpWorldConfig wc;
    wc.rto = rto_us * kMicrosecond;
    wc.fwd_loss = 20;
    wc.rev_loss = 20;
    SwpWorld w(wc);
    ArmHostTrace(w.machine);
    JourneyAudit ja;
    ja.Attach(&w.machine);

    CampaignRunner cr("rto_sweep_point", 11 ^ 13, &w.loop);
    cr.AttachSwp(&w.sender, &w.receiver, &w.fwd, &w.rev, &w.sink, &w.machine);
    cr.AddAuditedHost(w.machine.name(), &w.machine, &w.fsys);
    cr.Arm(FaultSchedule{});

    const SimTime t0 = w.machine.clock().Now();
    w.StartProducer(messages, 32 * 1024);
    w.loop.Run();
    const SimTime elapsed = w.machine.clock().Now() - t0;

    CampaignReport point = cr.Finish();
    const bool ok = point.audits_passed() && w.accepted() == messages &&
                    ja.Finish("rto_sweep");
    all_ok = all_ok && ok;
    for (CampaignReport::AuditEntry a : point.audits()) {
      a.label = "rto=" + std::to_string(rto_us) + "us/" + a.label;
      master.AddAudit(std::move(a));
    }
    master.AddRow(
        {{"rto_us", static_cast<double>(rto_us)},
         {"goodput_mbps", elapsed > 0
                              ? static_cast<double>(w.sink.bytes_received()) *
                                    8.0 * 1000.0 / static_cast<double>(elapsed)
                              : 0.0},
         {"retx_per_msg", static_cast<double>(w.sender.retransmissions()) /
                              static_cast<double>(messages)},
         {"timer_fires", static_cast<double>(w.sender.timer_fires())},
         {"duplicates", static_cast<double>(w.receiver.duplicates_dropped())},
         {"wedged", w.sender.unacked() > 0 ? 1.0 : 0.0}});
    // Each sweep point becomes a process lane; the world dies with the
    // iteration, so the snapshot must be taken here.
    ex.AddHost("rto=" + std::to_string(rto_us) + "us", pid++,
               w.machine.trace());
  }
  master.SetOutcome(all_ok, all_ok ? "every RTO point drained and audited clean"
                                   : "a sweep point wedged or failed its audit");
  WriteTrace("rto_sweep", ex);
  return master;
}

// --- Campaign 4: terminate the data fbufs' originator mid-flow ---------------

CampaignReport RunTerminateOriginator() {
  TopologyConfig cfg;
  cfg.shape = TopologyShape::kRelayChain;
  cfg.relays = 1;
  BuiltTopology b = BuildTopology(cfg);
  ArmTopologyCapture(&b);
  JourneyAudit ja;
  ja.AttachTopology(&b);

  CampaignRunner cr("terminate_originator", cfg.seed, b.loop.get());
  cr.AttachTopology(b.topo.get(), b.runner.get());
  AuditAllHosts(&cr, &b);

  // The sender host's "app" domain runs the SourceProtocol — it is the
  // originator of every data fbuf in flight across the chain.
  FaultSchedule s;
  s.name = "terminate_originator";
  // Absolute, NOT smoke-scaled: per-message latency (~3.3 ms through the
  // chain) does not shrink with the traffic volume, and the termination
  // must land after the first deliveries in either mode.
  constexpr SimTime kAxe = 10 * kMillisecond;
  s.Add({.kind = FaultAction::Kind::kTerminateDomain,
         .at = kAxe,
         .node = b.sender_nodes[0],
         .domain = "app",
         .label = "terminate/sender-app"});
  cr.Arm(s);
  // Armed after the fault at the same timestamp, so it observes the world
  // immediately after the kernel's cleanup ran.
  cr.ScheduleAudit(kAxe, "post-terminate");

  std::vector<FlowTraffic> traffic(1);
  traffic[0].messages = 160 / g_scale;
  traffic[0].bytes = cfg.host.pdu_size;
  traffic[0].warmup = 4;
  const MultiResult mr = b.runner->RunFlows(traffic);

  const FlowResult& f = mr.flows[0];
  const std::uint64_t sink_bytes = b.runner->flow_sink(0).bytes_received();
  // The provenance record must reconcile with no orphans: the app's sends
  // are synchronous within events, so at the axe (an event boundary) it
  // holds nothing and every journey it opened has already closed — what
  // the audit proves here is that the §3.3 sweep left nothing open or
  // imbalanced, not that aborts occurred (a held buffer at the axe would
  // surface as an abort hop; the hoarder campaign exercises that arm).
  const bool ok = f.failed && !f.stalled && sink_bytes > 0 &&
                  ja.Finish("terminate_originator");
  cr.SetOutcome(
      ok, ok ? "flow failed cleanly at termination; receiver-side data "
               "delivered before the fault survived"
             : "expected a clean failure with surviving receiver data");
  CampaignReport rep = cr.Finish();
  ExportTopologyTrace("terminate_originator", &b);
  return rep;
}

// --- Campaign 5: terminate a hoarding domain, reclaiming its quota -----------

CampaignReport RunHoarder() {
  SwpWorldConfig wc;
  wc.phys_frames = 512;
  SwpWorld w(wc);
  ArmHostTrace(w.machine);
  JourneyAudit ja;
  ja.Attach(&w.machine);

  CampaignRunner cr("hoarder", wc.fwd_seed ^ wc.rev_seed, &w.loop);
  cr.AttachSwp(&w.sender, &w.receiver, &w.fwd, &w.rev, &w.sink, &w.machine);
  cr.AddAuditedHost(w.machine.name(), &w.machine, &w.fsys);

  // Before any traffic, a third domain grabs nearly the whole pool in
  // chunk-sized uncached fbufs, leaving fewer free frames than one data
  // message needs. The producer's first allocation fails and it parks on
  // the shared backoff.
  Domain* hoarder = w.machine.CreateDomain("hoarder");
  constexpr std::uint32_t kHeadroom = 6;
  while (w.machine.pmem().free_frames() > kHeadroom) {
    const std::uint64_t take =
        std::min<std::uint64_t>(w.machine.pmem().free_frames() - kHeadroom,
                                w.fsys.config().chunk_pages);
    Fbuf* fb = nullptr;
    if (!Ok(w.fsys.Allocate(*hoarder, kNoPath, take * kPageSize, false, &fb)) ||
        !Ok(hoarder->TouchRange(fb->base, take * kPageSize, Access::kWrite))) {
      if (fb != nullptr) {
        w.fsys.Free(fb, *hoarder);
      }
      break;
    }
    // The hoarder never frees: only its termination can give the frames back.
  }
  const DomainId hoarder_id = hoarder->id();
  const std::uint64_t hoarded = w.fsys.PagesOwnedBy(hoarder_id);

  FaultSchedule s;
  s.name = "hoarder";
  // Absolute, NOT smoke-scaled: the producer's backoff ramp (one RTO, then
  // doubling) must visibly fail a few times before the axe falls, whatever
  // the traffic volume.
  constexpr SimTime kAxe = 10 * kMillisecond;
  s.Add({.kind = FaultAction::Kind::kTerminateDomain,
         .at = kAxe,
         .domain = "hoarder",
         .label = "terminate/hoarder"});
  cr.Arm(s);
  // Immediately after the kernel's §3.3 cleanup reclaimed the hoard.
  cr.ScheduleAudit(kAxe, "post-terminate");

  const int messages = static_cast<int>(96 / g_scale);
  w.StartProducer(messages, 32 * 1024);
  w.loop.Run();

  const bool drained = w.accepted() == messages && !w.producer_stalled() &&
                       !w.producer_failed();
  const bool reclaimed = w.fsys.PagesOwnedBy(hoarder_id) == 0;
  // The hoarder's reclaimed fbufs must show as aborted journeys.
  const bool ok = drained && reclaimed && hoarded > 0 &&
                  w.producer_parks() > 0 &&
                  ja.Finish("hoarder", /*min_aborts=*/1);
  cr.SetOutcome(
      ok, ok ? "producer parked under exhaustion, resumed after the hoarder's "
               "termination returned its " +
                   std::to_string(hoarded) + " pages, and drained"
             : "expected park -> terminate -> full quota reclaim -> drain");
  CampaignReport rep = cr.Finish();
  ExportSwpTrace("hoarder", w);
  return rep;
}

// --- Campaign 6: destroy a file-serving client mid-download ------------------

CampaignReport RunServerChurn() {
  ServeWorldConfig wc;
  wc.clients = 4;
  ServeWorld world(wc);
  ArmHostTrace(world.server().machine);
  ArmHostTrace(world.client(0).machine);
  JourneyAudit ja;
  ja.Attach(&world.server().machine);
  for (std::size_t c = 0; c < world.client_count(); ++c) {
    ja.Attach(&world.client(c).machine);
  }

  CampaignRunner cr("server_churn", wc.topo_seed, &world.loop());
  // No TopologyRunner here — ServeWorld drives its own wire — so phase rows
  // carry audits and fault markers, not flow goodput.
  cr.AttachTopology(&world.topo(), nullptr);
  cr.AddAuditedHost(world.server().machine.name(), &world.server().machine,
                    &world.server().fsys);
  for (std::size_t c = 0; c < world.client_count(); ++c) {
    cr.AddAuditedHost(world.client(c).machine.name(), &world.client(c).machine,
                      &world.client(c).fsys);
  }

  FaultSchedule s;
  s.name = "server_churn";
  // Absolute, NOT smoke-scaled: each cache miss advances the server clock by
  // a disk access (~2 ms), so deliveries land long after the arrival storm
  // in either mode — the axe at 10 ms falls while downloads are in flight.
  constexpr SimTime kAxe = 10 * kMillisecond;
  s.Add({.kind = FaultAction::Kind::kTerminateDomain,
         .at = kAxe,
         .node = world.client_node(0),
         .domain = world.client(0).sink->domain()->name(),
         .label = "terminate/client0-app"});
  s.Add({.kind = FaultAction::Kind::kLinkFlap,
         .at = kAxe,
         .duration = At(20),
         .link = world.client_link(0),
         .label = "flap/client0-link"});
  cr.Arm(s);
  // Immediately after the kernel's §3.3 cleanup swept the dead domain.
  cr.ScheduleAudit(kAxe, "post-churn");

  std::vector<ServeRequestSpec> schedule;
  Rng pick(wc.topo_seed ^ 0xc402);
  const std::uint64_t requests = 2000 / g_scale;
  for (std::uint64_t i = 0; i < requests; ++i) {
    ServeRequestSpec r;
    r.at = i * 5000;  // 5 us interarrival: the storm outpaces the disk
    r.client = static_cast<std::uint32_t>(i % wc.clients);
    r.file = pick.Next() % 64;
    r.blocks = 1 + static_cast<std::uint32_t>(pick.Next() % 4);
    schedule.push_back(r);
  }
  const ServeRunStats st = world.Run(schedule);

  const bool pins_clean = world.cache().total_pins() == 0 &&
                          world.file_server().inflight_requests() == 0;
  // The in-flight state at the axe is server-side (pinned blocks for the
  // dead client's downloads, on fbufs whose originators stay alive): it
  // must unwind as failed sends whose journeys close with balanced pins —
  // exactly what Reconcile's pin_imbalance==0 certifies. The dead client's
  // own journeys all closed before the axe (its request/response handling
  // is synchronous within events), so no abort floor applies here.
  const bool ok = pins_clean && st.failed > 0 && st.completed > 0 &&
                  st.completed + st.failed == st.requests &&
                  ja.Finish("server_churn");
  cr.SetOutcome(
      ok, ok ? "dead client's " + std::to_string(st.failed) +
                   " flows failed cleanly; " + std::to_string(st.completed) +
                   " drained; every cache pin released"
             : "expected clean per-flow failure with zero retained pins");
  CampaignReport rep = cr.Finish();
  rep.AddRow({{"requests", static_cast<double>(st.requests)},
              {"completed", static_cast<double>(st.completed)},
              {"failed", static_cast<double>(st.failed)},
              {"served_blocks", static_cast<double>(st.served_blocks)},
              {"hit_ratio", st.hit_ratio},
              {"goodput_mbps", st.goodput_mbps}});

  TraceExporter ex;
  ex.AddHost(world.server().machine.name(), 1, world.server().machine.trace());
  ex.AddHost(world.client(0).machine.name(), 2, world.client(0).machine.trace());
  WriteTrace("server_churn", ex);
  return rep;
}

// --- Campaign 7: incast storm with a queue squeeze, loss burst, and axe ------

CampaignReport RunCongestionCollapse() {
  IncastWorldConfig wc;
  wc.kind = TransportKind::kFixedWindow;
  wc.racks = 2;
  // 16 flows x window 8 = 4x the core queue — past the incast bench's knee,
  // where the aggregate offered load (CPU-paced) genuinely exceeds the core
  // line rate and the queue stays saturated. Half that fan-in sits at the
  // margin where ack clocking keeps the queue near-empty and no fault can
  // raise a storm.
  wc.senders_per_rack = 8;
  IncastWorld w(wc);
  ArmHostTrace(w.machine);
  JourneyAudit ja;
  ja.Attach(&w.machine);
  for (std::uint32_t r = 0; r < wc.racks; ++r) {
    w.topo.switch_at(w.tor_node(r))->port_resource(0).set_record_intervals(true);
  }
  w.topo.switch_at(w.core_node())->port_resource(0).set_record_intervals(true);

  CampaignRunner cr("congestion_collapse", wc.seed, &w.loop);
  cr.AttachTopology(&w.topo, nullptr);
  cr.AddAuditedHost(w.machine.name(), &w.machine, &w.fsys);
  for (std::size_t i = 0; i < w.flow_count(); ++i) {
    IncastWorld::Flow& f = w.flow(i);
    cr.AddConversation("flow" + std::to_string(i), f.sender.get(),
                       f.receiver.get(), f.sink.get(), &w.machine);
  }

  constexpr std::size_t kVictim = 5;
  FaultSchedule s;
  s.name = "congestion_collapse";
  // Deepen the storm: the core downlink queue clamps to 4 PDUs for a while,
  // turning the steady overload into a drop frenzy.
  s.Add({.kind = FaultAction::Kind::kSqueezeSwitchQueue,
         .at = At(80),
         .duration = At(120),
         .node = w.core_node(),
         .port = 0,
         .queue_pdus = 4,
         .label = "squeeze-core4"});
  // A 30% loss burst on one sender's own ingress wire: that flow now loses
  // frames both at the wire and in the shared queues.
  s.Add({.kind = FaultAction::Kind::kLossBurst,
         .at = At(250),
         .duration = At(80),
         .link = w.flow(2).ingress,
         .percent = 30,
         .label = "ingress-loss30/flow2"});
  // The axe: one sender dies mid-retransmit, its whole window pinned in the
  // ledger. kNoNode routes MachineFor to the conversations' shared host.
  s.Add({.kind = FaultAction::Kind::kTerminateDomain,
         .at = At(400),
         .domain = "sender" + std::to_string(kVictim),
         .label = "terminate/sender5"});
  cr.Arm(s);
  cr.ScheduleAudit(At(150), "mid-squeeze");
  cr.ScheduleAudit(At(410), "post-terminate");

  // Producer teardown brackets the axe: stop feeding the victim just before
  // (a producer outliving its domain would be a use-after-free, not a
  // fault), and close the receiver half just after — its stashed
  // out-of-order frames hold references a dead peer can never complete, and
  // only an explicit shutdown releases them (§3.3 cleanup only runs for the
  // domain that died).
  w.loop.Schedule(At(399), "stop-victim-producer",
                  [&w] { w.StopProducer(kVictim); });
  w.loop.Schedule(At(401), "shutdown-victim-receiver",
                  [&w] { w.flow(kVictim).receiver->Shutdown(); });

  // Enough traffic that every window stays refilled across the whole fault
  // timeline — a storm needs sustained offered load, not one opening burst.
  const int messages = static_cast<int>(64 / g_scale);
  w.StartProducers(messages, 8 * kPageSize);
  w.loop.Run();

  // Survivors drain fully; the victim ends clean rather than complete.
  bool survivors_drained = true;
  for (std::size_t i = 0; i < w.flow_count(); ++i) {
    const IncastWorld::Flow& f = w.flow(i);
    if (i == kVictim) {
      continue;
    }
    survivors_drained = survivors_drained && f.accepted == messages &&
                        !f.backoff.stalled && !f.failed;
  }
  const IncastWorld::Flow& victim = w.flow(kVictim);
  const bool victim_clean = victim.ledger->pinned_pdus() == 0 &&
                            victim.receiver->stashed() == 0 &&
                            victim.sender->aborted();
  const bool storm = w.switch_drops() > 0 && w.total_retransmissions() > 0;
  // The axed sender's pinned window must end as aborted journeys; every
  // survivor's journey must close kFree with its retransmit pins balanced.
  const bool ok = survivors_drained && victim_clean && storm &&
                  ja.Finish("congestion_collapse", /*min_aborts=*/1);
  cr.SetOutcome(
      ok, ok ? "survivors drained through the storm (" +
                   std::to_string(w.switch_drops()) + " drops, " +
                   std::to_string(w.total_retransmissions()) +
                   " retransmissions); the axed sender's ledger reclaimed and "
                   "its receiver shut down with nothing stranded"
             : "expected storm + clean victim teardown + survivor drain");
  CampaignReport rep = cr.Finish();

  TraceExporter ex;
  ex.AddHost(w.machine.name(), 1, w.machine.trace());
  for (std::uint32_t r = 0; r < wc.racks; ++r) {
    ex.AddResource(w.topo.switch_at(w.tor_node(r))->port_resource(0));
  }
  ex.AddResource(w.topo.switch_at(w.core_node())->port_resource(0));
  WriteTrace("congestion_collapse", ex);
  return rep;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_scale = 4;
    }
  }
  std::printf("=== Fault-injection campaigns (%s mode) ===\n",
              g_scale > 1 ? "smoke" : "full");

  bool all_passed = true;
  const std::vector<CampaignReport> reports = {
      RunLossBurst(),   RunAckOnlyLoss(),   RunRtoSweep(),
      RunTerminateOriginator(), RunHoarder(), RunServerChurn(),
      RunCongestionCollapse()};
  for (const CampaignReport& r : reports) {
    PrintReport(r);
    r.Write();
    all_passed = all_passed && r.passed();
  }
  std::printf("\n%s\n", all_passed ? "all campaigns passed"
                                   : "CAMPAIGN FAILURES (see above)");
  return all_passed ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main(int argc, char** argv) { return fbufs::bench::Main(argc, argv); }
