// Reproduces Figure 3: throughput of a single protection-domain crossing as
// a function of message size, IPC latency included. Five mechanisms:
// Mach's native transfer (copy below 2 KB, COW above) and the four fbuf
// variants.
//
// Expected shape (paper): cached/volatile fbufs dominate at every size —
// "no special-casing is necessary to efficiently transfer small messages";
// Mach native is slightly faster than uncached/non-volatile fbufs below
// ~2 KB; cached/volatile saturates near 10 Gbps asymptotically.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/fbuf_adapter.h"
#include "src/baseline/mach_native.h"

namespace fbufs {
namespace bench {
namespace {

int Main() {
  PrintHeader("Figure 3: throughput across one domain boundary (Mbps, IPC included)");
  const std::vector<std::uint64_t> sizes = {64,    256,    1024,   4096,    16384,
                                            65536, 262144, 524288, 1048576};

  std::printf("%10s %14s %17s %18s %15s %14s\n", "size", "mach-native", "cached/volatile",
              "volatile-uncached", "cached-secured", "plain-fbufs");
  for (const std::uint64_t size : sizes) {
    double mach, cv, vu, cs, pf;
    {
      BenchWorld w;
      MachNativeTransfer f(&w.machine);
      mach = ThroughputMbps(w, f, size, true, true);
    }
    {
      BenchWorld w;
      FbufTransferAdapter f(&w.fsys, w.path, true, true);
      cv = ThroughputMbps(w, f, size, true, false);
    }
    {
      BenchWorld w;
      FbufTransferAdapter f(&w.fsys, kNoPath, false, true);
      vu = ThroughputMbps(w, f, size, true, false);
    }
    {
      BenchWorld w;
      FbufTransferAdapter f(&w.fsys, w.path, true, false);
      cs = ThroughputMbps(w, f, size, true, false);
    }
    {
      BenchWorld w;
      FbufTransferAdapter f(&w.fsys, kNoPath, false, false);
      pf = ThroughputMbps(w, f, size, true, false);
    }
    std::printf("%10llu %14.1f %17.1f %18.1f %15.1f %14.1f\n",
                static_cast<unsigned long long>(size), mach, cv, vu, cs, pf);
  }
  std::printf(
      "\nshape checks: cached/volatile highest at every size; mach-native vs plain fbufs\n"
      "crosses near the 2 KB copy/COW switch, as in the paper. (Cached/volatile jitter at\n"
      "the largest sizes is TLB reach: a 64-entry TLB covers 256 KB exactly, so per-page\n"
      "miss counts vary with message size — the same effect behind the paper's 3 us/page.)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
