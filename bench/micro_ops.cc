// Google-benchmark microbenchmarks of the library's own primitives: real
// wall-clock cost of the implementation, with the simulated time charged per
// operation reported as the "sim_us" counter.
#include <benchmark/benchmark.h>

#include "src/baseline/fbuf_adapter.h"
#include "src/fbuf/fbuf_system.h"
#include "src/ipc/rpc.h"
#include "src/msg/generator.h"
#include "src/msg/stored_message.h"
#include "src/vm/machine.h"

namespace fbufs {
namespace {

struct Fixture {
  Fixture() : machine(MachineConfig{}), fsys(&machine, Cfg()), rpc(&machine) {
    fsys.AttachRpc(&rpc);
    src = machine.CreateDomain("src");
    dst = machine.CreateDomain("dst");
    path = fsys.paths().Register({src->id(), dst->id()});
  }
  static FbufConfig Cfg() {
    FbufConfig f;
    f.clear_new_pages = false;
    return f;
  }
  Machine machine;
  FbufSystem fsys;
  Rpc rpc;
  Domain* src;
  Domain* dst;
  PathId path;
};

void BM_CachedAllocFree(benchmark::State& state) {
  Fixture fx;
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0)) * kPageSize;
  // Prime the free list.
  Fbuf* fb = nullptr;
  fx.fsys.Allocate(*fx.src, fx.path, bytes, true, &fb);
  fx.fsys.Free(fb, *fx.src);
  const SimTime t0 = fx.machine.clock().Now();
  std::uint64_t ops = 0;
  for (auto _ : state) {
    fx.fsys.Allocate(*fx.src, fx.path, bytes, true, &fb);
    fx.fsys.Free(fb, *fx.src);
    ops++;
  }
  state.counters["sim_us"] =
      benchmark::Counter((fx.machine.clock().Now() - t0) / 1000.0 / ops);
}
BENCHMARK(BM_CachedAllocFree)->Arg(1)->Arg(4)->Arg(16);

void BM_TransferCycle(benchmark::State& state) {
  Fixture fx;
  const bool cached = state.range(0) != 0;
  const std::uint64_t bytes = 16 * kPageSize;
  std::uint64_t ops = 0;
  const SimTime t0 = fx.machine.clock().Now();
  for (auto _ : state) {
    Fbuf* fb = nullptr;
    fx.fsys.Allocate(*fx.src, cached ? fx.path : kNoPath, bytes, true, &fb);
    fx.fsys.Transfer(fb, *fx.src, *fx.dst);
    fx.fsys.Free(fb, *fx.dst);
    fx.fsys.Free(fb, *fx.src);
    ops++;
  }
  state.counters["sim_us"] =
      benchmark::Counter((fx.machine.clock().Now() - t0) / 1000.0 / ops);
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_TransferCycle)->Arg(1)->Arg(0);

void BM_DomainTouch(benchmark::State& state) {
  Fixture fx;
  Fbuf* fb = nullptr;
  fx.fsys.Allocate(*fx.src, fx.path, 64 * kPageSize, true, &fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.src->TouchRange(fb->base, fb->bytes, Access::kWrite));
  }
}
BENCHMARK(BM_DomainTouch);

void BM_MessageSliceConcat(benchmark::State& state) {
  Fixture fx;
  Fbuf* fb = nullptr;
  fx.fsys.Allocate(*fx.src, fx.path, 64 * kPageSize, true, &fb);
  Message m = Message::Whole(fb);
  for (auto _ : state) {
    Message re;
    for (std::uint64_t off = 0; off < m.length(); off += 4096) {
      re = Message::Concat(re, m.Slice(off, 4096));
    }
    benchmark::DoNotOptimize(re.length());
  }
}
BENCHMARK(BM_MessageSliceConcat);

void BM_StoredMessageRoundTrip(benchmark::State& state) {
  Fixture fx;
  IntegratedTransfer xfer(&fx.fsys);
  Message m;
  for (int i = 0; i < 8; ++i) {
    Fbuf* fb = nullptr;
    fx.fsys.Allocate(*fx.src, fx.path, kPageSize, true, &fb);
    fx.src->TouchRange(fb->base, kPageSize, Access::kWrite);
    m = Message::Concat(m, Message::Whole(fb));
  }
  for (auto _ : state) {
    StoredMessage sm;
    xfer.Store(*fx.src, fx.path, m, true, &sm);
    xfer.Send(sm, *fx.src, *fx.dst);
    Message got;
    xfer.Load(*fx.dst, sm.root, &got);
    benchmark::DoNotOptimize(got.length());
    xfer.FreeAll(sm, *fx.dst);
    fx.fsys.Free(sm.node_fbuf, *fx.src);
  }
}
BENCHMARK(BM_StoredMessageRoundTrip);

void BM_RpcCrossing(benchmark::State& state) {
  Fixture fx;
  fx.rpc.RegisterService(*fx.dst, 1, [](RpcArgs&) { return Status::kOk; });
  RpcArgs args;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.rpc.Call(*fx.src, 1, args));
  }
}
BENCHMARK(BM_RpcCrossing);

void BM_UnitGenerator(benchmark::State& state) {
  Fixture fx;
  Message m;
  for (int i = 0; i < 8; ++i) {
    Fbuf* fb = nullptr;
    fx.fsys.Allocate(*fx.src, fx.path, kPageSize, true, &fb);
    m = Message::Concat(m, Message::Whole(fb));
  }
  for (auto _ : state) {
    UnitGenerator gen(m, fx.src, 100);
    std::vector<std::uint8_t> unit;
    bool zc;
    while (gen.Next(&unit, &zc) == Status::kOk) {
      benchmark::DoNotOptimize(unit.data());
    }
  }
}
BENCHMARK(BM_UnitGenerator);

}  // namespace
}  // namespace fbufs

BENCHMARK_MAIN();
