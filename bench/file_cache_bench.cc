// Extension bench: the unified buffer cache (src/cache).
//
// Measures effective read bandwidth as a function of hit ratio, comparing
// zero-copy fbuf reads with the legacy copying read() path — the §2.2
// argument for buffering network and file data in one fbuf pool.
#include <cstdio>
#include <vector>

#include "src/cache/file_cache.h"
#include "src/sim/rng.h"

namespace fbufs {
namespace bench {
namespace {

// Zipf-ish access: |hot_blocks| of the file take |hot_percent| of accesses.
double RunReads(bool zero_copy, std::uint32_t hot_percent) {
  Machine machine{MachineConfig{}};
  FbufSystem fsys(&machine);
  Domain* app = machine.CreateDomain("app");
  FileCacheConfig cfg;
  cfg.block_bytes = 8192;
  cfg.capacity_blocks = 32;
  FileCache cache(&fsys, cfg);
  Rng rng(17);
  constexpr int kAccesses = 400;
  constexpr std::uint64_t kHotBlocks = 16;   // fits in cache
  constexpr std::uint64_t kColdBlocks = 512; // does not

  std::vector<std::uint8_t> legacy(cfg.block_bytes);
  const SimTime t0 = machine.clock().Now();
  std::uint64_t bytes = 0;
  for (int i = 0; i < kAccesses; ++i) {
    const bool hot = rng.Chance(hot_percent, 100);
    const std::uint64_t block =
        hot ? rng.Below(kHotBlocks) : kHotBlocks + rng.Below(kColdBlocks);
    Message m;
    if (!Ok(cache.Read(1, block, *app, &m))) {
      return -1;
    }
    if (zero_copy) {
      m.Touch(*app, Access::kRead);  // consume in place
    } else {
      m.CopyOut(*app, 0, legacy.data(), legacy.size());
      machine.clock().Advance(machine.costs().CopyCost(legacy.size()));
    }
    cache.Release(m, *app);
    bytes += cfg.block_bytes;
  }
  const double seconds = (machine.clock().Now() - t0) / 1e9;
  return bytes * 8.0 / seconds / 1e6;
}

int Main() {
  std::printf("\n=== Unified buffer cache: read bandwidth vs locality (extension) ===\n");
  std::printf("(8 KB blocks, 32-block cache, 400 reads; disk = 15 ms + 2 MB/s)\n\n");
  std::printf("%12s %18s %18s\n", "hot-access%", "zero-copy Mbps", "copying Mbps");
  for (const std::uint32_t hot : {50u, 80u, 95u, 99u, 100u}) {
    std::printf("%11u%% %18.1f %18.1f\n", hot, RunReads(true, hot), RunReads(false, hot));
  }
  std::printf(
      "\nreading: at high hit ratios the copying interface is bounded by memory\n"
      "bandwidth while zero-copy reads ride the warm fbuf mappings; at low hit\n"
      "ratios the disk dominates both, as it should.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
