// Reproduces Table 1 of the paper: incremental per-page cost and calculated
// asymptotic throughput of each cross-domain transfer mechanism, measured
// with the paper's cycle (allocate, write one word per page, transfer, read
// one word per page, deallocate) and the slope method that factors out IPC
// latency. Also reports the page-clear cost the table excludes.
//
// Paper values (DecStation 5000/200):
//   fbufs, cached/volatile     3 us/page   10922 Mbps
//   fbufs, volatile           21 us/page    1560 Mbps
//   fbufs, cached             29 us/page    1130 Mbps
//   fbufs                     47 us/page     697 Mbps
//   Mach COW                 159 us/page     206 Mbps
//   Copy                     204 us/page     161 Mbps
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/baseline/copy_transfer.h"
#include "src/baseline/cow_transfer.h"
#include "src/baseline/fbuf_adapter.h"

namespace fbufs {
namespace bench {
namespace {

struct Row {
  const char* label;
  double paper_us;
  double measured_us;
};

void Report(const Row& r) {
  const double mbps = kPageSize * 8.0 / r.measured_us;
  std::printf("%-28s %10.1f %12.1f %14.0f %12.0f\n", r.label, r.measured_us, r.paper_us, mbps,
              kPageSize * 8.0 / r.paper_us);
}

int Main() {
  PrintHeader("Table 1: incremental per-page transfer costs");
  std::printf("%-28s %10s %12s %14s %12s\n", "mechanism", "us/page", "paper-us", "Mbps",
              "paper-Mbps");

  {
    BenchWorld w;
    FbufTransferAdapter f(&w.fsys, w.path, true, true);
    Report({"fbufs, cached/volatile", 3.0, PerPageSlopeUs(w, f, false)});
  }
  {
    BenchWorld w;
    FbufTransferAdapter f(&w.fsys, kNoPath, false, true);
    Report({"fbufs, volatile", 21.0, PerPageSlopeUs(w, f, false)});
  }
  {
    BenchWorld w;
    FbufTransferAdapter f(&w.fsys, w.path, true, false);
    Report({"fbufs, cached", 29.0, PerPageSlopeUs(w, f, false)});
  }
  {
    BenchWorld w;
    FbufTransferAdapter f(&w.fsys, kNoPath, false, false);
    Report({"fbufs", 47.0, PerPageSlopeUs(w, f, false)});
  }
  {
    BenchWorld w;
    CowTransfer f(&w.machine);
    Report({"Mach COW", 159.0, PerPageSlopeUs(w, f, true)});
  }
  {
    BenchWorld w;
    CopyTransfer f(&w.machine);
    Report({"Copy", 204.0, PerPageSlopeUs(w, f, true)});
  }

  // §4: the cost for clearing pages (excluded from the table above).
  {
    BenchWorld w;
    const SimTime before = w.machine.clock().Now();
    auto frame = w.machine.pmem().Allocate(/*clear=*/true);
    (void)frame;
    std::printf("\npage clear (excluded above): %.0f us/page  (paper: 57)\n",
                (w.machine.clock().Now() - before) / 1000.0);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fbufs

int main() { return fbufs::bench::Main(); }
