// Shared helpers for the reproduction benches: fixture world, the paper's
// allocate/write/send/read/free cycle, and table printing.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/baseline/transfer_facility.h"
#include "src/fbuf/fbuf_system.h"
#include "src/ipc/rpc.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"
#include "src/vm/machine.h"

namespace fbufs {
namespace bench {

// Machine + fbuf system + rpc with a source and a destination user domain
// and a registered two-domain data path; DecStation cost model.
struct BenchWorld {
  explicit BenchWorld(const FbufConfig& fcfg = DefaultFbufConfig())
      : machine(MachineConfig{}), fsys(&machine, fcfg), rpc(&machine) {
    fsys.AttachRpc(&rpc);
    src = machine.CreateDomain("src");
    dst = machine.CreateDomain("dst");
    path = fsys.paths().Register({src->id(), dst->id()});
  }

  static FbufConfig DefaultFbufConfig() {
    FbufConfig f;
    // Table 1 reports clearing separately (57 us/page on the DecStation).
    f.clear_new_pages = false;
    return f;
  }

  Machine machine;
  FbufSystem fsys;
  Rpc rpc;
  Domain* src = nullptr;
  Domain* dst = nullptr;
  PathId path = kNoPath;
};

// One paper cycle through a TransferFacility: write one word per page in the
// originator, send, read one word per page in the receiver, free. When
// |with_ipc| the cycle charges a cross-domain RPC (Figure 3 includes IPC
// latency; Table 1 factors it out by slope).
inline Status OneCycle(BenchWorld& w, TransferFacility& f, std::uint64_t bytes, bool with_ipc,
                       bool reuse_buffer, BufferRef* ref) {
  if (!reuse_buffer) {
    const Status st = f.Alloc(*w.src, bytes, ref);
    if (!Ok(st)) {
      return st;
    }
  }
  Status st = w.src->TouchRange(ref->sender_addr, ref->bytes, Access::kWrite);
  if (!Ok(st)) {
    return st;
  }
  if (with_ipc) {
    w.rpc.ChargeCrossing(*w.src, *w.dst);
  }
  st = f.Send(*ref, *w.src, *w.dst);
  if (!Ok(st)) {
    return st;
  }
  st = w.dst->TouchRange(ref->receiver_addr, ref->bytes, Access::kRead);
  if (!Ok(st)) {
    return st;
  }
  st = f.ReceiverFree(*ref, *w.dst);
  if (!Ok(st)) {
    return st;
  }
  if (!reuse_buffer) {
    st = f.SenderFree(*ref, *w.src);
  }
  return st;
}

// Simulated-time throughput in Mbps for |iters| cycles of |bytes| each.
inline double ThroughputMbps(BenchWorld& w, TransferFacility& f, std::uint64_t bytes,
                             bool with_ipc, bool reuse_buffer, int warmup = 3, int iters = 10) {
  BufferRef ref;
  if (reuse_buffer && !Ok(f.Alloc(*w.src, bytes, &ref))) {
    return -1;
  }
  for (int i = 0; i < warmup; ++i) {
    if (!Ok(OneCycle(w, f, bytes, with_ipc, reuse_buffer, &ref))) {
      return -1;
    }
  }
  const SimTime before = w.machine.clock().Now();
  for (int i = 0; i < iters; ++i) {
    if (!Ok(OneCycle(w, f, bytes, with_ipc, reuse_buffer, &ref))) {
      return -1;
    }
  }
  const SimTime elapsed = w.machine.clock().Now() - before;
  if (reuse_buffer) {
    f.SenderFree(ref, *w.src);
  }
  return static_cast<double>(bytes) * iters * 8.0 * 1000.0 / static_cast<double>(elapsed);
}

// Per-page incremental cost (microseconds) by slope between two sizes, which
// cancels per-message costs exactly as the paper's Table 1 method does.
inline double PerPageSlopeUs(BenchWorld& w, TransferFacility& f, bool reuse_buffer) {
  constexpr std::uint64_t kSmall = 96, kLarge = 192;
  constexpr int kIters = 10;
  auto run = [&](std::uint64_t pages) -> SimTime {
    BufferRef ref;
    if (reuse_buffer && !Ok(f.Alloc(*w.src, pages * kPageSize, &ref))) {
      return 0;
    }
    for (int i = 0; i < 3; ++i) {
      OneCycle(w, f, pages * kPageSize, false, reuse_buffer, &ref);
    }
    const SimTime before = w.machine.clock().Now();
    for (int i = 0; i < kIters; ++i) {
      OneCycle(w, f, pages * kPageSize, false, reuse_buffer, &ref);
    }
    const SimTime elapsed = w.machine.clock().Now() - before;
    if (reuse_buffer) {
      f.SenderFree(ref, *w.src);
    }
    return elapsed;
  };
  const SimTime t1 = run(kSmall);
  const SimTime t2 = run(kLarge);
  return static_cast<double>(t2 - t1) / 1000.0 / (kIters * (kLarge - kSmall));
}

// --- Deterministic heavy-tail generators -------------------------------------
//
// Workload generators for the server macro-benches: Zipf object popularity
// and bounded-Pareto sizes. Seeded on the repo's SplitMix64 Rng (never
// std::rand), and built from IEEE-754 exactly-rounded operations only
// (+ - * / sqrt; pow's rounding is libm-dependent), so the draw sequences
// are bit-identical across platforms and tests can pin them exactly.

// x^(q/4) for integer q >= 0: quarter powers from repeated multiplication
// and correctly-rounded square roots.
inline double PowQuarter(double x, unsigned q) {
  double whole = 1.0;
  for (unsigned i = 0; i < q / 4; ++i) {
    whole *= x;
  }
  double frac = 1.0;
  switch (q % 4) {
    case 0:
      break;
    case 1:
      frac = std::sqrt(std::sqrt(x));
      break;
    case 2:
      frac = std::sqrt(x);
      break;
    case 3:
      frac = std::sqrt(std::sqrt(x)) * std::sqrt(x);
      break;
  }
  return whole * frac;
}

// Zipf popularity: rank r in [1, n] drawn with probability proportional to
// 1 / r^s, the exponent in quarters (s_quarters = 4 ⇒ s = 1.0, the classic
// web-object curve). Inverse CDF over a precomputed cumulative table.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t seed, std::uint64_t n, unsigned s_quarters)
      : rng_(seed), cdf_(n) {
    double cum = 0.0;
    for (std::uint64_t r = 1; r <= n; ++r) {
      cum += 1.0 / PowQuarter(static_cast<double>(r), s_quarters);
      cdf_[r - 1] = cum;
    }
  }

  // Zero-based rank in [0, n); 0 is the most popular object.
  std::uint64_t Next() {
    // 53 mantissa bits of the raw draw: uniform in [0, 1), exactly.
    const double u =
        static_cast<double>(rng_.Next() >> 11) * (1.0 / 9007199254740992.0);
    const double target = u * cdf_.back();
    const std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), target) - cdf_.begin());
    return std::min<std::uint64_t>(idx, cdf_.size() - 1);
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

// Bounded-Pareto sizes in [x_min, x_max]: x_min * (1/U)^(q/4), a Pareto
// tail with exponent alpha = 4/q (q = 3 ⇒ alpha ≈ 1.33, the classic
// heavy-tailed file-size regime; q = 2 ⇒ alpha = 2, thinner).
class ParetoGenerator {
 public:
  ParetoGenerator(std::uint64_t seed, std::uint64_t x_min, std::uint64_t x_max,
                  unsigned inv_alpha_quarters)
      : rng_(seed), min_(x_min), max_(x_max), q_(inv_alpha_quarters) {}

  std::uint64_t Next() {
    // U in (0, 1]: the +1 keeps it nonzero, so 1/U stays finite.
    const double u = static_cast<double>((rng_.Next() >> 11) + 1) *
                     (1.0 / 9007199254740992.0);
    const double size = static_cast<double>(min_) * PowQuarter(1.0 / u, q_);
    if (!(size < static_cast<double>(max_))) {
      return max_;
    }
    const std::uint64_t s = static_cast<std::uint64_t>(size);
    return s < min_ ? min_ : s;
  }

 private:
  Rng rng_;
  std::uint64_t min_;
  std::uint64_t max_;
  unsigned q_;
};

// --- Output helpers ----------------------------------------------------------

// Machine-readable results: each bench accumulates rows of (key, value)
// fields and writes them as BENCH_<name>.json next to its stdout table, so
// sweeps can be diffed and plotted without scraping text.
class JsonReport {
 public:
  explicit JsonReport(std::string name)
      : name_(std::move(name)),
        wall_start_(std::chrono::steady_clock::now()),
        events_start_(EventLoop::TotalDispatched()) {}

  JsonReport& BeginRow() {
    rows_.emplace_back();
    return *this;
  }
  JsonReport& Field(const std::string& key, double value) {
    rows_.back().push_back(Entry{key, /*is_number=*/true, value, {}});
    return *this;
  }
  JsonReport& Field(const std::string& key, const std::string& value) {
    rows_.back().push_back(Entry{key, /*is_number=*/false, 0, value});
    return *this;
  }

  // Extra top-level section emitted after "rows". |raw_json| must already be
  // valid JSON (object, array or scalar); it is written verbatim.
  JsonReport& RawSection(const std::string& key, std::string raw_json) {
    sections_.emplace_back(key, std::move(raw_json));
    return *this;
  }

  // Writes BENCH_<name>.json in the working directory.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        const Entry& e = rows_[r][i];
        std::fprintf(f, "%s\"%s\": ", i == 0 ? "" : ", ", e.key.c_str());
        if (e.is_number) {
          if (e.num == e.num) {  // not NaN
            std::fprintf(f, "%.10g", e.num);
          } else {
            std::fprintf(f, "null");
          }
        } else {
          std::fprintf(f, "\"%s\"", e.str.c_str());
        }
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
    for (const auto& [key, raw] : sections_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), raw.c_str());
    }
    // Simulator self-throughput: host wall-clock and event-loop dispatch
    // rate since this report was constructed. Nondeterministic by nature, so
    // it is confined to one line — with the separating comma ON that line —
    // such that CI's strip (grep -v) leaves a file byte-identical to one
    // written without the section at all.
    {
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall_start_)
              .count();
      const std::uint64_t events = EventLoop::TotalDispatched() - events_start_;
      const double per_sec =
          wall_ms > 0.0 ? static_cast<double>(events) * 1000.0 / wall_ms : 0.0;
      std::fprintf(f,
                   "\n  ,\"sim_throughput\": {\"host_wall_ms\": %.3f, "
                   "\"events_dispatched\": %llu, \"events_per_sec\": %.6g}",
                   wall_ms, static_cast<unsigned long long>(events), per_sec);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string key;
    bool is_number;
    double num;
    std::string str;
  };
  std::string name_;
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t events_start_;
  std::vector<std::vector<Entry>> rows_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

// --- Time attribution --------------------------------------------------------

// Optional extras for TimeAttributionJson. The defaults reproduce the
// historical section byte-for-byte, so frozen BENCH_*.json files never move.
struct AttributionJsonOptions {
  // Emit "by_path": attributed ns per I/O path ("none" = untagged charges).
  bool per_path = false;
  // Emit "by_cpu": one entry per CPU lane, each hard-checked against that
  // lane's clock (per-lane conservation, exact to the nanosecond).
  bool per_cpu = false;
  // When >= 0, emit "dispatch_wait_ns": aggregate dispatch-queue wait. Wait
  // is queueing latency (work parked while its lane served someone else),
  // not CPU time, so it is reported beside the by_layer split, not in it.
  long long dispatch_wait_ns = -1;
  // When non-null, "by_path" entries become objects carrying latency slices
  // next to the attributed CPU time: per-path dispatch-queue wait
  // (Dispatcher::PathWaitNs) and per-path ring occupancy (time descriptors
  // sat in a transfer-ring SQ, RingHub::PathOccupancyNs). Both are latency,
  // not CPU time, so they sit beside "ns", never inside it. With both null
  // the historical flat {"path": ns} format is emitted, so frozen
  // BENCH_*.json files never move.
  const std::map<AttrPathId, SimTime>* per_path_dispatch_wait = nullptr;
  const std::map<AttrPathId, SimTime>* per_path_ring_occupancy = nullptr;
  // When non-null, emit "by_flow": attributed ns per named flow, where a
  // flow claims a set of path ids (the incast bench: one conversation's
  // header + data paths). Attribution cells already carry the path id, so
  // this is a pure regrouping of by_path — charges on paths no flow claims
  // are reported under "none". Emitted in the given flow order.
  const std::vector<std::pair<std::string, std::vector<AttrPathId>>>* flows =
      nullptr;
};

// Renders a machine's time-attribution state as a JSON object for a
// JsonReport "time_attribution" section, after hard-checking conservation:
// attributed time must equal the sum of the machine's CPU-lane clocks (a
// single-CPU machine's lane 0 is its host clock, so this is the historical
// check there). abort() rather than assert(): benches build RelWithDebInfo,
// where NDEBUG would silence an assert, and a conservation hole must never
// ship silently inside a BENCH_*.json.
inline std::string TimeAttributionJson(Machine& m,
                                       const AttributionJsonOptions& opts = {}) {
  const Attribution& attr = m.attribution();
  SimTime now = 0;
  for (std::uint32_t c = 0; c < m.num_cpus(); ++c) {
    now += m.cpu_clock(c).Now();
  }
  if (attr.total() != now) {
    std::fprintf(stderr,
                 "time-attribution conservation violated on %s: attributed "
                 "%llu ns, clock %llu ns\n",
                 m.name().c_str(), static_cast<unsigned long long>(attr.total()),
                 static_cast<unsigned long long>(now));
    std::abort();
  }
  std::string out = "{\n    \"clock_ns\": " + std::to_string(now) +
                    ",\n    \"attributed_ns\": " + std::to_string(attr.total()) +
                    ",\n    \"by_layer\": {";
  bool first = true;
  for (int i = 0; i < static_cast<int>(CostDomain::kCount); ++i) {
    const CostDomain d = static_cast<CostDomain>(i);
    const SimTime ns = attr.ByLayer(d);
    if (ns == 0) {
      continue;
    }
    out += first ? "" : ", ";
    out += "\"" + std::string(CostDomainName(d)) + "\": " + std::to_string(ns);
    first = false;
  }
  out += "}";
  if (opts.per_path) {
    // Collect the distinct paths from the cell map (already path-sorted
    // within a layer, so gather into an ordered set for determinism).
    std::map<AttrPathId, SimTime> by_path;
    for (const auto& [key, ns] : attr.cells()) {
      by_path[key.path] += ns;
    }
    const bool sliced = opts.per_path_dispatch_wait != nullptr ||
                        opts.per_path_ring_occupancy != nullptr;
    if (sliced) {
      // A path may have queueing latency without attributed CPU time (all
      // its work parked); make sure such paths still get an entry.
      if (opts.per_path_dispatch_wait != nullptr) {
        for (const auto& [p, ns] : *opts.per_path_dispatch_wait) {
          by_path[p] += 0;
        }
      }
      if (opts.per_path_ring_occupancy != nullptr) {
        for (const auto& [p, ns] : *opts.per_path_ring_occupancy) {
          by_path[p] += 0;
        }
      }
    }
    auto slice_of = [](const std::map<AttrPathId, SimTime>* m,
                       AttrPathId p) -> SimTime {
      if (m == nullptr) {
        return 0;
      }
      auto it = m->find(p);
      return it == m->end() ? 0 : it->second;
    };
    out += ",\n    \"by_path\": {";
    first = true;
    for (const auto& [p, ns] : by_path) {
      const SimTime wait = slice_of(opts.per_path_dispatch_wait, p);
      const SimTime occ = slice_of(opts.per_path_ring_occupancy, p);
      if (ns == 0 && wait == 0 && occ == 0) {
        continue;
      }
      out += first ? "" : ", ";
      out += "\"" +
             (p == kAttrNoPath ? std::string("none") : std::to_string(p)) +
             "\": ";
      if (sliced) {
        out += "{\"ns\": " + std::to_string(ns);
        if (opts.per_path_dispatch_wait != nullptr) {
          out += ", \"dispatch_wait_ns\": " + std::to_string(wait);
        }
        if (opts.per_path_ring_occupancy != nullptr) {
          out += ", \"ring_occupancy_ns\": " + std::to_string(occ);
        }
        out += "}";
      } else {
        out += std::to_string(ns);
      }
      first = false;
    }
    out += "}";
  }
  if (opts.flows != nullptr) {
    // Regroup the path-keyed cells by flow. Paths claimed by two flows are
    // double-charged — callers own disjointness; the "none" residue keeps
    // the section's total equal to attributed_ns when claims are disjoint.
    std::map<AttrPathId, std::size_t> owner;
    for (std::size_t i = 0; i < opts.flows->size(); ++i) {
      for (const AttrPathId p : (*opts.flows)[i].second) {
        owner.emplace(p, i);
      }
    }
    std::vector<SimTime> per_flow(opts.flows->size(), 0);
    SimTime unclaimed = 0;
    for (const auto& [key, ns] : attr.cells()) {
      auto it = owner.find(key.path);
      if (it == owner.end()) {
        unclaimed += ns;
      } else {
        per_flow[it->second] += ns;
      }
    }
    out += ",\n    \"by_flow\": {";
    first = true;
    for (std::size_t i = 0; i < opts.flows->size(); ++i) {
      out += first ? "" : ", ";
      out += "\"" + (*opts.flows)[i].first +
             "\": " + std::to_string(per_flow[i]);
      first = false;
    }
    if (unclaimed != 0) {
      out += first ? "" : ", ";
      out += "\"none\": " + std::to_string(unclaimed);
    }
    out += "}";
  }
  if (opts.per_cpu) {
    out += ",\n    \"by_cpu\": [";
    for (std::uint32_t c = 0; c < m.num_cpus(); ++c) {
      const SimTime lane_ns = attr.ByCpu(c);
      const SimTime lane_clock = m.cpu_clock(c).Now();
      if (lane_ns != lane_clock) {
        std::fprintf(
            stderr,
            "per-lane attribution conservation violated on %s cpu%u: "
            "attributed %llu ns, lane clock %llu ns\n",
            m.name().c_str(), c, static_cast<unsigned long long>(lane_ns),
            static_cast<unsigned long long>(lane_clock));
        std::abort();
      }
      out += (c == 0 ? "" : ", ") + std::to_string(lane_ns);
    }
    out += "]";
  }
  if (opts.dispatch_wait_ns >= 0) {
    out += ",\n    \"dispatch_wait_ns\": " + std::to_string(opts.dispatch_wait_ns);
  }
  out += "\n  }";
  return out;
}

// The common case: attach the machine's whole-run attribution to a report.
inline void AddTimeAttribution(JsonReport& report, Machine& m,
                               const AttributionJsonOptions& opts = {}) {
  report.RawSection("time_attribution", TimeAttributionJson(m, opts));
}

// Attaches the full metrics registry — counters, gauges, and every log2
// histogram with its count/p50/p99 summary — as a "metrics" section.
// MetricsRegistry::ToJson is deterministic (name-ordered, integers only), so
// double runs of a deterministic bench still cmp byte-identical.
inline void AddMetricsSummary(JsonReport& report, const MetricsRegistry& m) {
  report.RawSection("metrics", m.ToJson());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintSeriesHeader(const std::vector<std::string>& columns) {
  std::printf("%12s", "size");
  for (const std::string& c : columns) {
    std::printf("  %22s", c.c_str());
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace fbufs

#endif  // BENCH_BENCH_UTIL_H_
