// Calibration tests: the per-page transfer costs of Table 1 (and §2.2's
// remap numbers) must emerge from the simulator's operation sequences.
//
// Method: run the paper's cycle — allocate, write one word per page,
// transfer, read one word per page in the receiver, free — at two message
// sizes and take the slope, which cancels all per-message costs (IPC
// latency, address allocation) exactly as the paper's "incremental per-page
// cost independent of IPC latency".
#include <gtest/gtest.h>

#include <memory>

#include "src/baseline/copy_transfer.h"
#include "src/baseline/cow_transfer.h"
#include "src/baseline/fbuf_adapter.h"
#include "src/baseline/remap_transfer.h"
#include "src/baseline/transfer_facility.h"
#include "tests/test_util.h"

namespace fbufs {
namespace {

using testing_util::World;

constexpr std::uint64_t kSmallPages = 96;   // > 64 TLB entries: full eviction
constexpr std::uint64_t kLargePages = 192;
constexpr int kWarmup = 3;
constexpr int kIters = 8;

class CalibrationFixture {
 public:
  CalibrationFixture() {
    MachineConfig cfg;  // DecStation costs
    FbufConfig fcfg;
    fcfg.clear_new_pages = false;  // Table 1 excludes clearing (§4)
    world_ = std::make_unique<World>(cfg, fcfg);
    src_ = world_->AddDomain("src");
    dst_ = world_->AddDomain("dst");
    path_ = world_->fsys.paths().Register({src_->id(), dst_->id()});
  }

  // Simulated time for |iters| cycles at |pages| pages.
  SimTime RunCycles(TransferFacility& f, std::uint64_t pages, int iters, bool reuse_buffer) {
    BufferRef ref;
    if (reuse_buffer) {
      EXPECT_EQ(f.Alloc(*src_, pages * kPageSize, &ref), Status::kOk);
    }
    for (int i = 0; i < kWarmup; ++i) {
      OneCycle(f, pages, reuse_buffer, &ref);
    }
    const SimTime before = world_->machine.clock().Now();
    for (int i = 0; i < iters; ++i) {
      OneCycle(f, pages, reuse_buffer, &ref);
    }
    const SimTime elapsed = world_->machine.clock().Now() - before;
    if (reuse_buffer) {
      EXPECT_EQ(f.SenderFree(ref, *src_), Status::kOk);
    }
    return elapsed;
  }

  // Per-page slope in microseconds.
  double SlopeUs(TransferFacility& f, bool reuse_buffer) {
    const SimTime t1 = RunCycles(f, kSmallPages, kIters, reuse_buffer);
    const SimTime t2 = RunCycles(f, kLargePages, kIters, reuse_buffer);
    return static_cast<double>(t2 - t1) / 1000.0 / (kIters * (kLargePages - kSmallPages));
  }

  World& world() { return *world_; }
  Domain& src() { return *src_; }
  Domain& dst() { return *dst_; }
  PathId path() const { return path_; }

 private:
  void OneCycle(TransferFacility& f, std::uint64_t pages, bool reuse_buffer, BufferRef* ref) {
    if (!reuse_buffer) {
      ASSERT_EQ(f.Alloc(*src_, pages * kPageSize, ref), Status::kOk);
    }
    ASSERT_EQ(src_->TouchRange(ref->sender_addr, ref->bytes, Access::kWrite), Status::kOk);
    ASSERT_EQ(f.Send(*ref, *src_, *dst_), Status::kOk);
    ASSERT_EQ(dst_->TouchRange(ref->receiver_addr, ref->bytes, Access::kRead), Status::kOk);
    ASSERT_EQ(f.ReceiverFree(*ref, *dst_), Status::kOk);
    if (!reuse_buffer) {
      ASSERT_EQ(f.SenderFree(*ref, *src_), Status::kOk);
    }
  }

  std::unique_ptr<World> world_;
  Domain* src_ = nullptr;
  Domain* dst_ = nullptr;
  PathId path_ = kNoPath;
};

// Paper Table 1: 3 us/page, 10922 Mbps asymptotic.
TEST(Table1, CachedVolatileFbufs) {
  CalibrationFixture fx;
  FbufTransferAdapter f(&fx.world().fsys, fx.path(), /*cached=*/true, /*volatile=*/true);
  const double us = fx.SlopeUs(f, /*reuse_buffer=*/false);
  EXPECT_NEAR(us, 3.0, 0.5);
}

// Paper Table 1: 21 us/page, 1560 Mbps.
TEST(Table1, VolatileUncachedFbufs) {
  CalibrationFixture fx;
  FbufTransferAdapter f(&fx.world().fsys, kNoPath, /*cached=*/false, /*volatile=*/true);
  const double us = fx.SlopeUs(f, /*reuse_buffer=*/false);
  EXPECT_NEAR(us, 21.0, 2.0);
}

// Paper Table 1: 29 us/page, 1130 Mbps.
TEST(Table1, CachedSecuredFbufs) {
  CalibrationFixture fx;
  FbufTransferAdapter f(&fx.world().fsys, fx.path(), /*cached=*/true, /*volatile=*/false);
  const double us = fx.SlopeUs(f, /*reuse_buffer=*/false);
  EXPECT_NEAR(us, 29.0, 2.0);
}

// Paper Table 1: 47 us/page, 697 Mbps.
TEST(Table1, PlainFbufs) {
  CalibrationFixture fx;
  FbufTransferAdapter f(&fx.world().fsys, kNoPath, /*cached=*/false, /*volatile=*/false);
  const double us = fx.SlopeUs(f, /*reuse_buffer=*/false);
  EXPECT_NEAR(us, 47.0, 3.0);
}

// Paper Table 1: 159 us/page, 206 Mbps.
TEST(Table1, MachCow) {
  CalibrationFixture fx;
  CowTransfer f(&fx.world().machine);
  const double us = fx.SlopeUs(f, /*reuse_buffer=*/true);
  EXPECT_NEAR(us, 159.0, 8.0);
}

// Paper Table 1: 204 us/page, 161 Mbps.
TEST(Table1, PhysicalCopy) {
  CalibrationFixture fx;
  CopyTransfer f(&fx.world().machine);
  const double us = fx.SlopeUs(f, /*reuse_buffer=*/true);
  EXPECT_NEAR(us, 204.0, 8.0);
}

// §2.2: DASH-style remap, ping-pong test: ~22 us/page.
TEST(RemapCalibration, PingPong) {
  CalibrationFixture fx;
  RemapTransfer f(&fx.world().machine, RemapTransfer::Mode::kPingPong);
  auto run = [&](std::uint64_t pages, int iters) {
    BufferRef ref;
    EXPECT_EQ(f.Alloc(fx.src(), pages * kPageSize, &ref), Status::kOk);
    for (int i = 0; i < kWarmup; ++i) {
      EXPECT_EQ(f.Send(ref, fx.src(), fx.dst()), Status::kOk);
      EXPECT_EQ(f.SendBack(ref, fx.dst(), fx.src()), Status::kOk);
    }
    const SimTime before = fx.world().machine.clock().Now();
    for (int i = 0; i < iters; ++i) {
      EXPECT_EQ(fx.src().TouchRange(ref.sender_addr, ref.bytes, Access::kWrite), Status::kOk);
      EXPECT_EQ(f.Send(ref, fx.src(), fx.dst()), Status::kOk);
      EXPECT_EQ(fx.dst().TouchRange(ref.sender_addr, ref.bytes, Access::kRead), Status::kOk);
      EXPECT_EQ(f.SendBack(ref, fx.dst(), fx.src()), Status::kOk);
    }
    const SimTime elapsed = fx.world().machine.clock().Now() - before;
    EXPECT_EQ(f.SenderFree(ref, fx.src()), Status::kOk);
    return elapsed;
  };
  const SimTime t1 = run(kSmallPages, kIters);
  const SimTime t2 = run(kLargePages, kIters);
  // Two remaps (there and back) per iteration: halve for per-transfer cost.
  const double us =
      static_cast<double>(t2 - t1) / 1000.0 / (kIters * (kLargePages - kSmallPages)) / 2.0;
  EXPECT_NEAR(us, 22.0, 3.0);
}

// §2.2: realistic one-way remap with allocation/clear/deallocation:
// 42..99 us/page as the cleared fraction goes 0% -> 100%.
TEST(RemapCalibration, RealisticSweep) {
  for (const std::uint32_t percent : {0u, 50u, 100u}) {
    CalibrationFixture fx;
    RemapTransfer f(&fx.world().machine, RemapTransfer::Mode::kRealistic, percent);
    const double us = fx.SlopeUs(f, /*reuse_buffer=*/false);
    const double expected = 42.0 + 57.0 * percent / 100.0;
    EXPECT_NEAR(us, expected, 6.0) << "clear percent " << percent;
  }
}

// §4: filling a page with zeros costs 57 us on the DecStation.
TEST(Calibration, PageClearCost) {
  World w{MachineConfig{}};
  const SimTime before = w.machine.clock().Now();
  auto f = w.machine.pmem().Allocate(/*clear=*/true);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(w.machine.clock().Now() - before, 57000u);
}

// Asymptotic throughput check: bytes over slope must reproduce the paper's
// Mbps column within 10%.
TEST(Table1, AsymptoticThroughput) {
  struct Row {
    bool cached;
    bool vol;
    double mbps;
  };
  const Row rows[] = {
      {true, true, 10922.0}, {false, true, 1560.0}, {true, false, 1130.0}, {false, false, 697.0}};
  for (const Row& r : rows) {
    CalibrationFixture fx;
    FbufTransferAdapter f(&fx.world().fsys, r.cached ? fx.path() : kNoPath, r.cached, r.vol);
    const double us = fx.SlopeUs(f, false);
    const double mbps = kPageSize * 8.0 / us;  // bits per microsecond = Mbps
    EXPECT_NEAR(mbps, r.mbps, r.mbps * 0.15) << f.name();
  }
}

}  // namespace
}  // namespace fbufs
