// Tests for the baseline transfer facilities: semantics (copy vs move),
// data integrity, and the cost structure each mechanism is supposed to have.
#include <gtest/gtest.h>

#include "src/baseline/copy_transfer.h"
#include "src/baseline/cow_transfer.h"
#include "src/baseline/fbuf_adapter.h"
#include "src/baseline/mach_native.h"
#include "src/baseline/remap_transfer.h"
#include "tests/test_util.h"

namespace fbufs {
namespace {

using testing_util::World;
using testing_util::ZeroCostConfig;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : world_(ZeroCostConfig()) {
    src_ = world_.AddDomain("src");
    dst_ = world_.AddDomain("dst");
  }

  // Writes a pattern through the sender, sends, and verifies the receiver
  // view byte for byte.
  void RoundTrip(TransferFacility& f, std::uint64_t bytes) {
    BufferRef ref;
    ASSERT_EQ(f.Alloc(*src_, bytes, &ref), Status::kOk);
    std::vector<std::uint8_t> pattern(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i) {
      pattern[i] = static_cast<std::uint8_t>(i * 13 + 7);
    }
    ASSERT_EQ(src_->WriteBytes(ref.sender_addr, pattern.data(), bytes), Status::kOk);
    ASSERT_EQ(f.Send(ref, *src_, *dst_), Status::kOk);
    std::vector<std::uint8_t> got(bytes);
    ASSERT_EQ(dst_->ReadBytes(ref.receiver_addr, got.data(), bytes), Status::kOk);
    EXPECT_EQ(got, pattern) << f.name();
    ASSERT_EQ(f.ReceiverFree(ref, *dst_), Status::kOk);
    ASSERT_EQ(f.SenderFree(ref, *src_), Status::kOk);
  }

  World world_;
  Domain* src_;
  Domain* dst_;
};

TEST_F(BaselineTest, CopyTransferRoundTrip) {
  CopyTransfer f(&world_.machine);
  RoundTrip(f, 3 * kPageSize + 100);
}

TEST_F(BaselineTest, CopyTransferActuallyCopies) {
  CopyTransfer f(&world_.machine);
  BufferRef ref;
  ASSERT_EQ(f.Alloc(*src_, kPageSize, &ref), Status::kOk);
  ASSERT_EQ(src_->WriteWord(ref.sender_addr, 0x11), Status::kOk);
  ASSERT_EQ(f.Send(ref, *src_, *dst_), Status::kOk);
  EXPECT_NE(src_->DebugFrame(PageOf(ref.sender_addr)),
            dst_->DebugFrame(PageOf(ref.receiver_addr)));
  EXPECT_EQ(world_.machine.stats().bytes_copied, kPageSize);
  // True copy semantics: sender modifications after the send are invisible.
  ASSERT_EQ(src_->WriteWord(ref.sender_addr, 0x22), Status::kOk);
  std::uint32_t got = 0;
  ASSERT_EQ(dst_->ReadWord(ref.receiver_addr, &got), Status::kOk);
  EXPECT_EQ(got, 0x11u);
}

TEST_F(BaselineTest, CopyReceiverBufferIsPooled) {
  CopyTransfer f(&world_.machine);
  BufferRef a;
  ASSERT_EQ(f.Alloc(*src_, kPageSize, &a), Status::kOk);
  ASSERT_EQ(f.Send(a, *src_, *dst_), Status::kOk);
  const VirtAddr first = a.receiver_addr;
  ASSERT_EQ(f.ReceiverFree(a, *dst_), Status::kOk);
  ASSERT_EQ(f.Send(a, *src_, *dst_), Status::kOk);
  EXPECT_EQ(a.receiver_addr, first);  // same landing buffer reused
}

TEST_F(BaselineTest, CowTransferRoundTrip) {
  CowTransfer f(&world_.machine);
  RoundTrip(f, 2 * kPageSize);
}

TEST_F(BaselineTest, CowIsCopySemantics) {
  CowTransfer f(&world_.machine);
  BufferRef ref;
  ASSERT_EQ(f.Alloc(*src_, kPageSize, &ref), Status::kOk);
  ASSERT_EQ(src_->WriteWord(ref.sender_addr, 0xaa), Status::kOk);
  ASSERT_EQ(f.Send(ref, *src_, *dst_), Status::kOk);
  // Receiver reads, then the sender overwrites: receiver must not see it.
  std::uint32_t got = 0;
  ASSERT_EQ(dst_->ReadWord(ref.receiver_addr, &got), Status::kOk);
  EXPECT_EQ(got, 0xaau);
  ASSERT_EQ(src_->WriteWord(ref.sender_addr, 0xbb), Status::kOk);
  ASSERT_EQ(dst_->ReadWord(ref.receiver_addr, &got), Status::kOk);
  EXPECT_EQ(got, 0xaau);
  ASSERT_EQ(f.ReceiverFree(ref, *dst_), Status::kOk);
  ASSERT_EQ(f.SenderFree(ref, *src_), Status::kOk);
}

TEST_F(BaselineTest, CowSharesUntilWritten) {
  CowTransfer f(&world_.machine);
  BufferRef ref;
  ASSERT_EQ(f.Alloc(*src_, kPageSize, &ref), Status::kOk);
  ASSERT_EQ(src_->WriteWord(ref.sender_addr, 1), Status::kOk);
  ASSERT_EQ(f.Send(ref, *src_, *dst_), Status::kOk);
  std::uint32_t v;
  ASSERT_EQ(dst_->ReadWord(ref.receiver_addr, &v), Status::kOk);
  // Read-only sharing: same frame, nothing copied.
  EXPECT_EQ(src_->DebugFrame(PageOf(ref.sender_addr)),
            dst_->DebugFrame(PageOf(ref.receiver_addr)));
  EXPECT_EQ(world_.machine.stats().bytes_copied, 0u);
}

TEST_F(BaselineTest, RemapHasMoveSemantics) {
  RemapTransfer f(&world_.machine, RemapTransfer::Mode::kRealistic, 0);
  BufferRef ref;
  ASSERT_EQ(f.Alloc(*src_, kPageSize, &ref), Status::kOk);
  ASSERT_EQ(src_->WriteWord(ref.sender_addr, 0x77), Status::kOk);
  ASSERT_EQ(f.Send(ref, *src_, *dst_), Status::kOk);
  // The pages left the sender: its access now faults.
  std::uint32_t v;
  EXPECT_EQ(src_->ReadWord(ref.sender_addr, &v), Status::kNotMapped);
  // Same virtual address is valid in the receiver (shared range).
  ASSERT_EQ(dst_->ReadWord(ref.receiver_addr, &v), Status::kOk);
  EXPECT_EQ(v, 0x77u);
  ASSERT_EQ(f.ReceiverFree(ref, *dst_), Status::kOk);
}

TEST_F(BaselineTest, RemapPingPongReturnsBuffer) {
  RemapTransfer f(&world_.machine, RemapTransfer::Mode::kPingPong);
  BufferRef ref;
  ASSERT_EQ(f.Alloc(*src_, 2 * kPageSize, &ref), Status::kOk);
  ASSERT_EQ(src_->WriteWord(ref.sender_addr, 1), Status::kOk);
  ASSERT_EQ(f.Send(ref, *src_, *dst_), Status::kOk);
  ASSERT_EQ(f.SendBack(ref, *dst_, *src_), Status::kOk);
  std::uint32_t v;
  ASSERT_EQ(src_->ReadWord(ref.sender_addr, &v), Status::kOk);
  EXPECT_EQ(v, 1u);
  ASSERT_EQ(f.SenderFree(ref, *src_), Status::kOk);
}

TEST_F(BaselineTest, MachNativePicksCopyBelowThreshold) {
  MachNativeTransfer f(&world_.machine);
  BufferRef small;
  ASSERT_EQ(f.Alloc(*src_, 1024, &small), Status::kOk);
  ASSERT_EQ(src_->WriteWord(small.sender_addr, 5), Status::kOk);
  const std::uint64_t copied_before = world_.machine.stats().bytes_copied;
  ASSERT_EQ(f.Send(small, *src_, *dst_), Status::kOk);
  EXPECT_GT(world_.machine.stats().bytes_copied, copied_before);
}

TEST_F(BaselineTest, MachNativePicksCowAboveThreshold) {
  MachNativeTransfer f(&world_.machine);
  BufferRef big;
  ASSERT_EQ(f.Alloc(*src_, 8192, &big), Status::kOk);
  ASSERT_EQ(src_->WriteWord(big.sender_addr, 5), Status::kOk);
  const std::uint64_t copied_before = world_.machine.stats().bytes_copied;
  ASSERT_EQ(f.Send(big, *src_, *dst_), Status::kOk);
  std::uint32_t v;
  ASSERT_EQ(dst_->ReadWord(big.receiver_addr, &v), Status::kOk);
  // COW: read sharing copies nothing.
  EXPECT_EQ(world_.machine.stats().bytes_copied, copied_before);
}

TEST_F(BaselineTest, FbufAdapterMatchesDirectUse) {
  const PathId path = world_.fsys.paths().Register({src_->id(), dst_->id()});
  FbufTransferAdapter f(&world_.fsys, path, true, true);
  RoundTrip(f, 2 * kPageSize + 17);
  EXPECT_EQ(world_.machine.stats().bytes_copied, 0u);
}

// Parameterized sweep: every facility preserves data for a spread of sizes.
class AllFacilitiesTest : public BaselineTest,
                          public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(AllFacilitiesTest, DataIntegrityAcrossSizes) {
  const std::uint64_t bytes = GetParam();
  {
    CopyTransfer f(&world_.machine);
    RoundTrip(f, bytes);
  }
  {
    CowTransfer f(&world_.machine);
    RoundTrip(f, bytes);
  }
  {
    MachNativeTransfer f(&world_.machine);
    RoundTrip(f, bytes);
  }
  {
    const PathId p = world_.fsys.paths().Register({src_->id(), dst_->id()});
    FbufTransferAdapter f(&world_.fsys, p, true, true);
    RoundTrip(f, bytes);
  }
  {
    FbufTransferAdapter f(&world_.fsys, kNoPath, false, false);
    RoundTrip(f, bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllFacilitiesTest,
                         ::testing::Values(1, 100, kPageSize - 1, kPageSize, kPageSize + 1,
                                           3 * kPageSize, 16 * kPageSize + 123,
                                           64 * kPageSize));

}  // namespace
}  // namespace fbufs
