// Tests for the discrete-event engine: queue ordering and trace
// determinism, serial-resource accounting, the evented multi-flow testbed
// (several VCIs from several sender hosts into one receiver), and the
// evented deallocation-notice flush.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/topo/testbed.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace fbufs {
namespace {

using testing_util::World;
using testing_util::ZeroCostConfig;

TEST(EventLoop, DispatchesInTimeOrderWithFifoTies) {
  EventLoop loop;
  std::vector<std::string> order;
  loop.Schedule(30, "c", [&] { order.push_back("c"); });
  loop.Schedule(10, "a1", [&] { order.push_back("a1"); });
  loop.Schedule(10, "a2", [&] { order.push_back("a2"); });
  loop.Schedule(20, "b", [&] { order.push_back("b"); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "a2", "b", "c"}));
  EXPECT_EQ(loop.Now(), 30u);
  EXPECT_EQ(loop.events_dispatched(), 4u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, HandlersScheduleMoreWork) {
  EventLoop loop;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) {
      loop.ScheduleIn(100, "chain", chain);
    }
  };
  loop.Schedule(0, "chain", chain);
  loop.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(loop.Now(), 400u);
}

TEST(EventLoop, RunUntilStopsAtTheBoundary) {
  EventLoop loop;
  int fired = 0;
  for (SimTime t : {10u, 20u, 30u, 40u}) {
    loop.Schedule(t, "tick", [&] { fired++; });
  }
  loop.RunUntil(25);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.pending(), 2u);
  loop.Run();
  EXPECT_EQ(fired, 4);
}

TEST(EventLoop, CancelledEventNeverDispatches) {
  EventLoop loop;
  int fired = 0;
  const EventLoop::EventId doomed = loop.Schedule(10, "doomed", [&] { fired += 100; });
  loop.Schedule(20, "survivor", [&] { fired += 1; });
  EXPECT_EQ(loop.pending(), 2u);
  EXPECT_TRUE(loop.Cancel(doomed));
  // Cancelled events no longer count as pending, and cancelling twice fails.
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.Cancel(doomed));
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.events_dispatched(), 1u);
  EXPECT_EQ(loop.events_cancelled(), 1u);
}

TEST(EventLoop, CancelAfterDispatchOrOfUnknownIdFails) {
  EventLoop loop;
  const EventLoop::EventId id = loop.Schedule(5, "tick", [] {});
  loop.Run();
  EXPECT_FALSE(loop.Cancel(id));         // already dispatched
  EXPECT_FALSE(loop.Cancel(id + 1000));  // never scheduled
}

TEST(EventLoop, CancelledEventsStayOutOfTraceAndHash) {
  // Two loops schedule the same live events; one also schedules-and-cancels
  // an extra event. Trace and hash must be identical: cancellation leaves no
  // residue in the dispatched record.
  EventLoop clean;
  EventLoop noisy;
  for (EventLoop* loop : {&clean, &noisy}) {
    loop->set_record_trace(true);
    loop->Schedule(10, "a", [] {});
    loop->Schedule(20, "b", [] {});
  }
  noisy.Cancel(noisy.Schedule(15, "ghost", [] {}));
  clean.Run();
  noisy.Run();
  EXPECT_EQ(clean.trace().size(), 2u);
  EXPECT_TRUE(clean.trace() == noisy.trace());
  EXPECT_EQ(clean.trace_hash(), noisy.trace_hash());
}

TEST(EventLoop, RunUntilSkipsCancelledBoundaryEvents) {
  EventLoop loop;
  int fired = 0;
  const EventLoop::EventId head = loop.Schedule(10, "head", [&] { fired++; });
  loop.Schedule(30, "tail", [&] { fired++; });
  loop.Cancel(head);
  // The cancelled event sits at the queue head inside the bound; RunUntil
  // must discard it without dispatching and without stopping early.
  EXPECT_EQ(loop.RunUntil(20), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(loop.pending(), 1u);
  loop.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, IdenticalSchedulesHashIdentically) {
  auto drive = [](EventLoop& loop) {
    loop.set_record_trace(true);
    loop.Schedule(5, "x", [] {});
    loop.Schedule(5, "y", [] {});
    loop.Schedule(17, "z", [] {});
    loop.Run();
  };
  EventLoop a;
  EventLoop b;
  drive(a);
  drive(b);
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  EXPECT_EQ(a.trace(), b.trace());
  EventLoop c;
  c.Schedule(5, "x", [] {});
  c.Schedule(6, "y", [] {});  // one event shifted: different schedule
  c.Schedule(17, "z", [] {});
  c.Run();
  EXPECT_NE(a.trace_hash(), c.trace_hash());
}

TEST(Resource, AcquireIsBusyUntilAlgebra) {
  Resource r("dma");
  // Idle resource: starts at ready.
  EXPECT_EQ(r.Acquire(100, 50), 150u);
  // Busy resource: queues behind the previous acquisition.
  EXPECT_EQ(r.Acquire(120, 30), 180u);
  // Late arrival: starts at ready, leaving an idle gap.
  EXPECT_EQ(r.Acquire(500, 10), 510u);
  EXPECT_EQ(r.busy_until(), 510u);
  EXPECT_EQ(r.busy_ns(), 90u);
  EXPECT_EQ(r.acquisitions(), 3u);
  // Utilization over [0, 510]: 90 busy nanoseconds.
  EXPECT_NEAR(r.Utilization(510), 90.0 / 510.0, 1e-12);
}

TEST(Resource, AccountingWindowResets) {
  Resource r("wire");
  r.Acquire(0, 100);
  r.ResetAccounting(100);
  EXPECT_EQ(r.busy_ns(), 0u);
  r.Acquire(150, 50);
  EXPECT_EQ(r.busy_ns(), 50u);
  // An interval straddling the window start is clipped to it.
  r.ResetAccounting(250);
  r.RecordBusy(200, 300);
  EXPECT_EQ(r.busy_ns(), 50u);
}

TEST(Resource, UtilizationClampsAtFullOccupancy) {
  Resource r("port");
  // Acquire books whole occupancies up front: five back-to-back PDUs booked
  // at t=0 put 500ns of busy time on the ledger immediately.
  for (int i = 0; i < 5; ++i) {
    r.Acquire(0, 100);
  }
  EXPECT_EQ(r.busy_ns(), 500u);
  // Closing the window mid-schedule used to report 500/200 = 250%
  // utilization. A serial resource can never exceed 1.0 — clamp.
  EXPECT_EQ(r.Utilization(200), 1.0);
  // The busy_until()-aware variant trims the in-flight tail instead of
  // clamping: 500ns booked, 300ns of it past the window -> exactly full.
  EXPECT_EQ(r.UtilizationInWindow(200), 1.0);
  // Once the window covers the whole schedule both agree below 1.0.
  EXPECT_NEAR(r.Utilization(1000), 0.5, 1e-12);
  EXPECT_NEAR(r.UtilizationInWindow(1000), 0.5, 1e-12);
}

TEST(Resource, UtilizationInWindowTrimsOnlyTheOverhang) {
  Resource r("dma");
  r.Acquire(0, 100);    // [0, 100]
  r.Acquire(400, 200);  // [400, 600]
  // Window closes at 500: the second occupancy overhangs by 100ns. The
  // trimmed busy time is 100 + 100 = 200 over a 500ns window.
  EXPECT_NEAR(r.UtilizationInWindow(500), 200.0 / 500.0, 1e-12);
  // The plain variant keeps the full ledger (300/500).
  EXPECT_NEAR(r.Utilization(500), 300.0 / 500.0, 1e-12);
}

TEST(MultiFlow, ThreeVcisDeliverEverythingDeterministically) {
  TestbedConfig cfg;
  cfg.placement = StackPlacement::kUserKernel;
  Testbed tb(cfg);
  ASSERT_EQ(tb.AddFlow(43, 2001), 1u);
  ASSERT_EQ(tb.AddFlow(44, 2002), 2u);
  ASSERT_EQ(tb.flow_count(), 3u);

  constexpr std::uint64_t kMessages = 8;
  constexpr std::uint64_t kBytes = 64 * 1024;
  std::vector<Testbed::FlowTraffic> traffic(3);
  for (auto& t : traffic) {
    t.messages = kMessages;
    t.bytes = kBytes;
    t.warmup = 2;
  }
  const Testbed::MultiResult mr = tb.RunFlows(traffic);
  ASSERT_FALSE(mr.failed);

  double sum_mbps = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(mr.flows[i].failed) << "flow " << i;
    EXPECT_GT(mr.flows[i].throughput_mbps, 0.0) << "flow " << i;
    // Every message (warmup included) reached the flow's own sink intact.
    EXPECT_EQ(tb.flow_sink(i).received(), kMessages + 2) << "flow " << i;
    EXPECT_EQ(tb.flow_sink(i).bytes_received(), (kMessages + 2) * kBytes)
        << "flow " << i;
    sum_mbps += mr.flows[i].throughput_mbps;
  }
  // Three flows share one TurboChannel into the receiver: their goodput
  // cannot exceed the paper's ~285 Mbps I/O ceiling (DMA bound).
  EXPECT_LT(sum_mbps, 290.0);

  // Per-resource utilization is reported: 3 sender CPUs + 3 TX DMAs + wire
  // + RX DMA + receiver CPU, each within [0, 1].
  ASSERT_EQ(mr.resources.size(), 9u);
  bool saw_wire = false;
  for (const auto& r : mr.resources) {
    EXPECT_GE(r.utilization, 0.0) << r.name;
    EXPECT_LE(r.utilization, 1.0) << r.name;
    if (r.name == "wire") {
      saw_wire = true;
      EXPECT_GT(r.busy_ns, 0u);
    }
  }
  EXPECT_TRUE(saw_wire);
}

TEST(MultiFlow, SameSeedRunsAreByteIdentical) {
  auto run = [](std::vector<EventLoop::TraceEntry>* trace, std::uint64_t* hash,
                std::string* stats, Testbed::MultiResult* mr) {
    TestbedConfig cfg;
    cfg.placement = StackPlacement::kUserKernel;
    Testbed tb(cfg);
    tb.AddFlow(43, 2001);
    tb.AddFlow(44, 2002);
    tb.loop().set_record_trace(true);
    std::vector<Testbed::FlowTraffic> traffic(3);
    for (std::size_t i = 0; i < 3; ++i) {
      traffic[i].messages = 6;
      traffic[i].bytes = (i + 1) * 16 * 1024;  // asymmetric load
      traffic[i].warmup = 1;
    }
    *mr = tb.RunFlows(traffic);
    *trace = tb.loop().trace();
    *hash = tb.loop().trace_hash();
    *stats = tb.receiver().machine.stats().ToString();
  };

  std::vector<EventLoop::TraceEntry> trace_a, trace_b;
  std::uint64_t hash_a = 0, hash_b = 0;
  std::string stats_a, stats_b;
  Testbed::MultiResult mr_a, mr_b;
  run(&trace_a, &hash_a, &stats_a, &mr_a);
  run(&trace_b, &hash_b, &stats_b, &mr_b);

  // The event schedule itself is reproducible...
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(hash_a, hash_b);
  // ...and so is everything derived from it.
  EXPECT_EQ(stats_a, stats_b);
  ASSERT_EQ(mr_a.flows.size(), mr_b.flows.size());
  for (std::size_t i = 0; i < mr_a.flows.size(); ++i) {
    EXPECT_EQ(mr_a.flows[i].elapsed_ns, mr_b.flows[i].elapsed_ns);
    EXPECT_EQ(mr_a.flows[i].throughput_mbps, mr_b.flows[i].throughput_mbps);
  }
  EXPECT_EQ(mr_a.elapsed_ns, mr_b.elapsed_ns);
}

TEST(MultiFlow, LegacySingleFlowRunStillWorks) {
  TestbedConfig cfg;
  cfg.placement = StackPlacement::kUserKernel;
  Testbed tb(cfg);
  const Testbed::Result r = tb.Run(8, 32 * 1024, /*warmup=*/2);
  EXPECT_GT(r.throughput_mbps, 0.0);
  EXPECT_GT(r.sender_cpu_load, 0.0);
  EXPECT_GT(r.receiver_cpu_load, 0.0);
  EXPECT_EQ(tb.receiver().sink->received(), 10u);
}

TEST(FbufSystemEvented, ThresholdFlushBecomesAScheduledEvent) {
  FbufConfig fcfg;
  fcfg.notice_threshold = 4;
  World w(ZeroCostConfig(), fcfg);
  EventLoop loop;
  w.fsys.AttachEventLoop(&loop);
  Domain* s = w.AddDomain("s");
  Domain* d = w.AddDomain("d");
  const PathId p = w.fsys.paths().Register({s->id(), d->id()});
  for (int i = 0; i < 4; ++i) {
    Fbuf* fb = nullptr;
    ASSERT_EQ(w.fsys.Allocate(*s, p, kPageSize, true, &fb), Status::kOk);
    ASSERT_EQ(w.fsys.Transfer(fb, *s, *d), Status::kOk);
    ASSERT_EQ(w.fsys.Free(fb, *s), Status::kOk);
    ASSERT_EQ(w.fsys.Free(fb, *d), Status::kOk);
  }
  // The threshold was hit, but with a loop attached the explicit message is
  // an event, not a synchronous side effect of Free.
  EXPECT_EQ(w.machine.stats().dealloc_messages, 0u);
  EXPECT_EQ(w.fsys.PendingNotices(d->id(), s->id()), 4u);
  EXPECT_FALSE(loop.empty());
  loop.Run();
  EXPECT_EQ(w.machine.stats().dealloc_messages, 1u);
  EXPECT_EQ(w.fsys.PendingNotices(d->id(), s->id()), 0u);
}

}  // namespace
}  // namespace fbufs
