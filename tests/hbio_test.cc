// Tests for endpoints and the high-bandwidth I/O channel (§5.2).
#include <gtest/gtest.h>

#include "src/fbuf/endpoint.h"
#include "src/msg/hbio.h"
#include "tests/test_util.h"

namespace fbufs {
namespace {

using testing_util::World;
using testing_util::ZeroCostConfig;

class HbioTest : public ::testing::Test {
 protected:
  HbioTest() : world_(ZeroCostConfig()), endpoints_(&world_.fsys) {
    producer_ = world_.AddDomain("producer");
    consumer_ = world_.AddDomain("consumer");
  }

  World world_;
  EndpointManager endpoints_;
  Domain* producer_;
  Domain* consumer_;
};

TEST_F(HbioTest, EndpointAllocatesCachedBuffers) {
  Endpoint* ep = endpoints_.Create(*producer_, {producer_->id(), consumer_->id()});
  ASSERT_NE(ep, nullptr);
  Fbuf* fb = nullptr;
  ASSERT_EQ(endpoints_.AllocateBuffer(ep, *producer_, 1000, true, &fb), Status::kOk);
  EXPECT_TRUE(fb->cached);
  ASSERT_EQ(world_.fsys.Free(fb, *producer_), Status::kOk);
  // Reuse comes from the endpoint's path cache.
  Fbuf* again = nullptr;
  ASSERT_EQ(endpoints_.AllocateBuffer(ep, *producer_, 1000, true, &again), Status::kOk);
  EXPECT_EQ(again, fb);
}

TEST_F(HbioTest, DestroyedEndpointRefusesAllocation) {
  Endpoint* ep = endpoints_.Create(*producer_, {producer_->id()});
  endpoints_.Destroy(ep);
  Fbuf* fb = nullptr;
  EXPECT_EQ(endpoints_.AllocateBuffer(ep, *producer_, 100, true, &fb),
            Status::kInvalidArgument);
}

TEST_F(HbioTest, EndpointDestructionFreesPathBuffers) {
  Endpoint* ep = endpoints_.Create(*producer_, {producer_->id(), consumer_->id()});
  Fbuf* fb = nullptr;
  ASSERT_EQ(endpoints_.AllocateBuffer(ep, *producer_, kPageSize, true, &fb), Status::kOk);
  ASSERT_EQ(world_.fsys.Free(fb, *producer_), Status::kOk);
  ASSERT_TRUE(fb->free_listed);
  endpoints_.Destroy(ep);
  EXPECT_TRUE(fb->dead);
}

TEST_F(HbioTest, PutGetRoundTripZeroCopy) {
  HbioChannel chan(&world_.fsys, &world_.rpc, &endpoints_, producer_, consumer_);
  Fbuf* fb = nullptr;
  ASSERT_EQ(chan.GetBuffer(500, &fb), Status::kOk);
  std::vector<std::uint8_t> pattern(500);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_EQ(producer_->WriteBytes(fb->base, pattern.data(), pattern.size()), Status::kOk);
  ASSERT_EQ(chan.Put(Message::Whole(fb)), Status::kOk);

  auto m = chan.Get();
  ASSERT_TRUE(m.has_value());
  std::vector<std::uint8_t> got(m->length());
  ASSERT_EQ(m->CopyOut(*consumer_, 0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(got, pattern);
  EXPECT_EQ(world_.machine.stats().bytes_copied, 0u);
  ASSERT_EQ(chan.Done(*m), Status::kOk);
}

TEST_F(HbioTest, AggregatePutPreservesOrder) {
  HbioChannel chan(&world_.fsys, &world_.rpc, &endpoints_, producer_, consumer_);
  Message agg;
  for (int i = 0; i < 3; ++i) {
    Fbuf* fb = nullptr;
    ASSERT_EQ(chan.GetBuffer(100, &fb), Status::kOk);
    std::vector<std::uint8_t> part(100, static_cast<std::uint8_t>(i));
    ASSERT_EQ(producer_->WriteBytes(fb->base, part.data(), part.size()), Status::kOk);
    agg = Message::Concat(agg, Message::Whole(fb));
  }
  ASSERT_EQ(chan.Put(agg), Status::kOk);
  auto m = chan.Get();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->length(), 300u);
  std::uint8_t b = 0xff;
  ASSERT_EQ(m->CopyOut(*consumer_, 150, &b, 1), Status::kOk);
  EXPECT_EQ(b, 1);
  ASSERT_EQ(chan.Done(*m), Status::kOk);
}

TEST_F(HbioTest, QueueCapacityBounds) {
  HbioChannel chan(&world_.fsys, &world_.rpc, &endpoints_, producer_, consumer_,
                   /*queue_capacity=*/2);
  for (int i = 0; i < 2; ++i) {
    Fbuf* fb = nullptr;
    ASSERT_EQ(chan.GetBuffer(10, &fb), Status::kOk);
    ASSERT_EQ(chan.Put(Message::Whole(fb)), Status::kOk);
  }
  Fbuf* fb = nullptr;
  ASSERT_EQ(chan.GetBuffer(10, &fb), Status::kOk);
  EXPECT_EQ(chan.Put(Message::Whole(fb)), Status::kExhausted);
  ASSERT_EQ(world_.fsys.Free(fb, *producer_), Status::kOk);
}

TEST_F(HbioTest, ReaderConsumesRecords) {
  HbioChannel chan(&world_.fsys, &world_.rpc, &endpoints_, producer_, consumer_);
  Fbuf* fb = nullptr;
  ASSERT_EQ(chan.GetBuffer(1000, &fb), Status::kOk);
  ASSERT_EQ(producer_->TouchRange(fb->base, 1000, Access::kWrite), Status::kOk);
  ASSERT_EQ(chan.Put(Message::Whole(fb)), Status::kOk);
  auto m = chan.Get();
  ASSERT_TRUE(m.has_value());
  UnitGenerator reader = chan.Reader(*m, 100);
  std::vector<std::uint8_t> unit;
  bool zc;
  int records = 0;
  while (reader.Next(&unit, &zc) == Status::kOk) {
    records++;
  }
  EXPECT_EQ(records, 10);
  ASSERT_EQ(chan.Done(*m), Status::kOk);
}

TEST_F(HbioTest, LegacyReadCopyPaysBandwidth) {
  World w{MachineConfig{}};  // real costs
  EndpointManager eps(&w.fsys);
  Domain* prod = w.AddDomain("p");
  Domain* cons = w.AddDomain("c");
  HbioChannel chan(&w.fsys, &w.rpc, &eps, prod, cons);
  Fbuf* fb = nullptr;
  ASSERT_EQ(chan.GetBuffer(8 * kPageSize, &fb), Status::kOk);
  ASSERT_EQ(prod->TouchRange(fb->base, fb->bytes, Access::kWrite), Status::kOk);
  ASSERT_EQ(chan.Put(Message::Whole(fb)), Status::kOk);
  auto m = chan.Get();
  ASSERT_TRUE(m.has_value());
  std::vector<std::uint8_t> legacy(m->length());
  const SimTime before = w.machine.clock().Now();
  ASSERT_EQ(chan.ReadCopy(*m, legacy.data(), legacy.size()), Status::kOk);
  const SimTime copy_time = w.machine.clock().Now() - before;
  // The copy costs at least the memory-bandwidth floor (~201 us/page).
  EXPECT_GE(copy_time, 8 * w.machine.costs().copy_page_ns);
  EXPECT_EQ(w.machine.stats().bytes_copied, 8 * kPageSize);
  ASSERT_EQ(chan.Done(*m), Status::kOk);
}

TEST_F(HbioTest, CloseDrainsAndKillsPath) {
  auto chan = std::make_unique<HbioChannel>(&world_.fsys, &world_.rpc, &endpoints_,
                                            producer_, consumer_);
  Fbuf* fb = nullptr;
  ASSERT_EQ(chan->GetBuffer(100, &fb), Status::kOk);
  ASSERT_EQ(chan->Put(Message::Whole(fb)), Status::kOk);
  chan->Close();
  EXPECT_TRUE(fb->dead);
  Fbuf* after = nullptr;
  EXPECT_EQ(chan->GetBuffer(100, &after), Status::kInvalidArgument);
}

TEST_F(HbioTest, ProducerTerminationTearsDownEndpoint) {
  Endpoint* ep = endpoints_.Create(*producer_, {producer_->id(), consumer_->id()});
  world_.machine.DestroyDomain(producer_->id());
  EXPECT_FALSE(ep->alive);
  Fbuf* fb = nullptr;
  EXPECT_EQ(endpoints_.AllocateBuffer(ep, *consumer_, 100, true, &fb),
            Status::kInvalidArgument);
}

}  // namespace
}  // namespace fbufs
