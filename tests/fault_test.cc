// Fault-injection subsystem tests: knob clamping, leak-audit accessors,
// dead-domain guards, campaign determinism, and §3.3 cleanup under fire —
// including domain termination with fbufs in flight across a relay chain.
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/fault/campaign.h"
#include "src/fault/swp_world.h"
#include "src/topo/topo_config.h"

namespace fbufs {
namespace {

// --- Knob clamping -----------------------------------------------------------

TEST(FaultKnobs, TopoLinkDropPercentSaturatesAt100) {
  TopologyConfig cfg;
  BuiltTopology b = BuildTopology(cfg);
  TopoLink& link = b.topo->link(0);
  link.set_drop_percent(250);
  EXPECT_EQ(link.drop_percent(), 100u);
  link.set_drop_percent(100);
  EXPECT_EQ(link.drop_percent(), 100u);
  link.set_drop_percent(7);
  EXPECT_EQ(link.drop_percent(), 7u);
}

TEST(FaultKnobs, LossyChannelDropPercentSaturatesAt100) {
  SwpWorld w;
  LossyChannel ch(w.sender_domain, &w.stack, /*seed=*/7, /*drop_percent=*/300);
  EXPECT_EQ(ch.drop_percent(), 100u);
  ch.set_drop_percent(101);
  EXPECT_EQ(ch.drop_percent(), 100u);
  ch.set_drop_percent(40);
  EXPECT_EQ(ch.drop_percent(), 40u);
}

TEST(FaultKnobs, SwitchQueueLimitIsRuntimeAdjustable) {
  SwitchNode sw("sw", {SwitchPortConfig{}});
  sw.Route(42, 0);
  sw.set_port_queue_limit(0, 0);
  EXPECT_EQ(sw.port_queue_limit(0), 0u);
  EXPECT_TRUE(sw.Forward(42, 1000, 0).dropped);
  EXPECT_EQ(sw.port_drops(0), 1u);
  sw.set_port_queue_limit(0, 4);
  EXPECT_FALSE(sw.Forward(42, 1000, 0).dropped);
}

// --- Leak-audit accessors ----------------------------------------------------

struct AuditWorld {
  AuditWorld() : machine(MachineConfig{}), fsys(&machine), rpc(&machine) {
    fsys.AttachRpc(&rpc);
    src = machine.CreateDomain("src");
    dst = machine.CreateDomain("dst");
    path = fsys.paths().Register({src->id(), dst->id()});
  }
  Machine machine;
  FbufSystem fsys;
  Rpc rpc;
  Domain* src = nullptr;
  Domain* dst = nullptr;
  PathId path = kNoPath;
};

TEST(FbufAudit, AccessorsTrackTheFbufLifecycle) {
  AuditWorld w;
  Fbuf* a = nullptr;
  Fbuf* b = nullptr;
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, kPageSize, true, &a)));
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, kPageSize, true, &b)));
  EXPECT_EQ(w.fsys.LiveFbufCount(), 2u);
  EXPECT_EQ(w.fsys.FreeListedFbufCount(), 0u);
  EXPECT_EQ(w.fsys.PagesOwnedBy(w.src->id()), 2u);
  EXPECT_EQ(w.fsys.FreeListSize(w.src->id(), w.path), 0u);

  ASSERT_TRUE(Ok(w.fsys.Transfer(a, *w.src, *w.dst)));
  // Receiver releases first so the *originator* makes the final release and
  // the fbuf free-lists immediately (a receiver's final release would park
  // it in the batched dealloc-notice queue instead).
  ASSERT_TRUE(Ok(w.fsys.Free(a, *w.dst)));
  ASSERT_TRUE(Ok(w.fsys.Free(a, *w.src)));
  ASSERT_TRUE(Ok(w.fsys.Free(b, *w.src)));
  EXPECT_EQ(w.fsys.LiveFbufCount(), 0u);
  EXPECT_EQ(w.fsys.FreeListedFbufCount(), 2u);
  EXPECT_EQ(w.fsys.FreeListSize(w.src->id(), w.path), 2u);
  EXPECT_EQ(w.fsys.PagesOwnedBy(w.src->id()), 2u);  // cached, still owned

  const FbufSystem::AuditCounts c = w.fsys.Audit();
  EXPECT_EQ(c.free_list_entries, 2u);
  EXPECT_EQ(c.free_list_errors, 0u);
  EXPECT_EQ(c.dangling_mappings, 0u);
  EXPECT_EQ(c.orphaned_live_fbufs, 0u);

  // Terminating the originator destroys its free lists and the cached
  // fbufs on them; nothing may linger.
  w.machine.DestroyDomain(w.src->id());
  EXPECT_EQ(w.fsys.FreeListedFbufCount(), 0u);
  EXPECT_EQ(w.fsys.FreeListSize(w.src->id(), w.path), 0u);
  EXPECT_EQ(w.fsys.PagesOwnedBy(w.src->id()), 0u);
  const FbufSystem::AuditCounts after = w.fsys.Audit();
  EXPECT_EQ(after.free_list_errors, 0u);
  EXPECT_EQ(after.dangling_mappings, 0u);
}

TEST(FbufAudit, AllocateIntoTerminatedDomainFails) {
  AuditWorld w;
  w.machine.DestroyDomain(w.src->id());
  Fbuf* fb = nullptr;
  EXPECT_EQ(w.fsys.Allocate(*w.src, kNoPath, kPageSize, true, &fb),
            Status::kInvalidArgument);
  EXPECT_EQ(fb, nullptr);
  EXPECT_EQ(w.fsys.LiveFbufCount(), 0u);
}

TEST(FbufAudit, TransferToTerminatedDomainFailsCleanly) {
  AuditWorld w;
  Fbuf* fb = nullptr;
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, kPageSize, true, &fb)));
  w.machine.DestroyDomain(w.dst->id());
  EXPECT_EQ(w.fsys.Transfer(fb, *w.src, *w.dst), Status::kInvalidArgument);
  ASSERT_TRUE(Ok(w.fsys.Free(fb, *w.src)));
  const FbufSystem::AuditCounts c = w.fsys.Audit();
  EXPECT_EQ(c.dangling_mappings, 0u);
  EXPECT_EQ(c.orphaned_live_fbufs, 0u);
}

TEST(FbufAudit, HostAuditIsCleanOnAHealthyWorld) {
  AuditWorld w;
  Fbuf* fb = nullptr;
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 2 * kPageSize, true, &fb)));
  w.src->TouchRange(fb->base, 2 * kPageSize, Access::kWrite);
  ASSERT_TRUE(Ok(w.fsys.Transfer(fb, *w.src, *w.dst)));
  w.dst->TouchRange(fb->base, 2 * kPageSize, Access::kRead);
  const HostAuditResult mid =
      InvariantAuditor::AuditHost("host", w.machine, w.fsys);
  EXPECT_TRUE(mid.passed);
  EXPECT_EQ(mid.leaked_frames, 0u);
  EXPECT_EQ(mid.refcount_mismatches, 0u);
  ASSERT_TRUE(Ok(w.fsys.Free(fb, *w.src)));
  ASSERT_TRUE(Ok(w.fsys.Free(fb, *w.dst)));
  const HostAuditResult done =
      InvariantAuditor::AuditHost("host", w.machine, w.fsys);
  EXPECT_TRUE(done.passed);
}

// --- Campaigns ---------------------------------------------------------------

void AuditAllHosts(CampaignRunner* cr, BuiltTopology* b) {
  for (NodeId n = 0; n < b->topo->node_count(); ++n) {
    if (!b->topo->is_switch(n)) {
      SimHost* h = b->topo->host(n);
      cr->AddAuditedHost(h->machine.name(), &h->machine, &h->fsys);
    }
  }
}

struct TerminateOutcome {
  std::string json;
  bool report_passed = false;
  bool flow_failed = false;
  bool flow_stalled = false;
  std::uint64_t sink_bytes = 0;
};

// Relay chain, one relay; terminates the domain named |victim| on the chosen
// host mid-flow and returns the campaign verdict.
TerminateOutcome RunTerminateCampaign(bool terminate_relay,
                                      std::uint64_t pdu_size,
                                      std::uint64_t message_bytes,
                                      std::uint64_t messages,
                                      SimTime terminate_at) {
  TopologyConfig cfg;
  cfg.shape = TopologyShape::kRelayChain;
  cfg.relays = 1;
  cfg.host.pdu_size = pdu_size;
  BuiltTopology b = BuildTopology(cfg);

  CampaignRunner cr("test_terminate", cfg.seed, b.loop.get());
  cr.AttachTopology(b.topo.get(), b.runner.get());
  AuditAllHosts(&cr, &b);

  FaultSchedule s;
  FaultAction a;
  a.kind = FaultAction::Kind::kTerminateDomain;
  a.at = terminate_at;
  a.node = terminate_relay ? b.relay_nodes[0] : b.sender_nodes[0];
  a.domain = "app";
  a.label = terminate_relay ? "terminate/relay-app" : "terminate/sender-app";
  s.Add(a);
  cr.Arm(s);
  cr.ScheduleAudit(terminate_at, "post-terminate");

  std::vector<FlowTraffic> traffic(1);
  traffic[0].messages = messages;
  traffic[0].bytes = message_bytes;
  traffic[0].warmup = 2;
  const MultiResult mr = b.runner->RunFlows(traffic);

  TerminateOutcome out;
  out.flow_failed = mr.flows[0].failed;
  out.flow_stalled = mr.flows[0].stalled;
  out.sink_bytes = b.runner->flow_sink(0).bytes_received();
  CampaignReport report = cr.Finish();
  out.report_passed = report.audits_passed();
  out.json = report.ToJson();
  return out;
}

TEST(Campaigns, TerminateOriginatorMidFlowPassesInvariantAudit) {
  // ~3.3 ms/message end-to-end on the relay chain: 8 ms lets a couple of
  // messages land before the axe falls.
  const TerminateOutcome out = RunTerminateCampaign(
      /*terminate_relay=*/false, /*pdu=*/16 * 1024,
      /*message_bytes=*/16 * 1024, /*messages=*/30,
      /*terminate_at=*/8 * kMillisecond);
  // The flow fails cleanly (allocation in the dead originator is refused),
  // data already delivered survives at the receiver, and every host —
  // including the one with the terminated domain — audits leak-free.
  EXPECT_TRUE(out.flow_failed);
  EXPECT_FALSE(out.flow_stalled);
  EXPECT_GT(out.sink_bytes, 0u);
  EXPECT_TRUE(out.report_passed);
}

TEST(Campaigns, TerminateRelayWithFbufsInFlightFailsCleanly) {
  // 4 KB PDUs carrying 16 KB messages: every message is mid-reassembly on
  // the relay while its fragments cross, so termination catches fbufs in
  // flight (retained reassembly references, partially forwarded messages).
  // §3.3: the transfer into the dead domain is refused, the flow fails
  // cleanly — no use-after-free (ASan job) and no leaked frames.
  const TerminateOutcome out = RunTerminateCampaign(
      /*terminate_relay=*/true, /*pdu=*/4 * 1024,
      /*message_bytes=*/16 * 1024, /*messages=*/30,
      /*terminate_at=*/8 * kMillisecond);
  EXPECT_TRUE(out.flow_failed);
  EXPECT_FALSE(out.flow_stalled);
  EXPECT_GT(out.sink_bytes, 0u);
  EXPECT_TRUE(out.report_passed);
}

TEST(Campaigns, SameSeedProducesByteIdenticalReports) {
  const TerminateOutcome first = RunTerminateCampaign(
      false, 16 * 1024, 16 * 1024, 20, 1 * kMillisecond);
  const TerminateOutcome second = RunTerminateCampaign(
      false, 16 * 1024, 16 * 1024, 20, 1 * kMillisecond);
  EXPECT_EQ(first.json, second.json);
  EXPECT_FALSE(first.json.empty());
}

TEST(Campaigns, AckPathOnlyLossRecoversWithoutCopies) {
  SwpWorldConfig wc;
  SwpWorld w(wc);
  CampaignRunner cr("test_ack_loss", 0, &w.loop);
  cr.AttachSwp(&w.sender, &w.receiver, &w.fwd, &w.rev, &w.sink, &w.machine);
  cr.AddAuditedHost(w.machine.name(), &w.machine, &w.fsys);

  FaultSchedule s;
  FaultAction a;
  a.kind = FaultAction::Kind::kAckPathOnlyLoss;
  // A lossless run completes synchronously at loop time zero, so the window
  // must open at t=0 (Arm precedes the producer's first event) to bite.
  a.at = 0;
  a.duration = 6 * kMillisecond;
  a.percent = 50;
  a.label = "ack-loss";
  s.Add(a);
  cr.Arm(s);

  constexpr int kMessages = 24;
  w.StartProducer(kMessages, 32 * 1024);
  w.loop.Run();

  EXPECT_EQ(w.accepted(), kMessages);
  // The data path never lost a frame: every retransmission the ack loss
  // provoked arrived as a duplicate.
  EXPECT_EQ(w.fwd.dropped(), 0u);
  EXPECT_GT(w.rev.dropped(), 0u);
  CampaignReport report = cr.Finish();
  EXPECT_TRUE(report.audits_passed());
  const CampaignReport::AuditEntry& final_audit = report.audits().back();
  ASSERT_TRUE(final_audit.has_swp);
  EXPECT_FALSE(final_audit.swp.window_wedged);
  EXPECT_EQ(final_audit.swp.bytes_copied, 0u);
}

TEST(Campaigns, LinkFaultsRestoreTheirPriorValues) {
  TopologyConfig cfg;
  cfg.shape = TopologyShape::kFanInSwitch;
  cfg.senders = 2;
  BuiltTopology b = BuildTopology(cfg);
  CampaignRunner cr("test_restore", cfg.seed, b.loop.get());
  cr.AttachTopology(b.topo.get(), b.runner.get());
  AuditAllHosts(&cr, &b);

  FaultSchedule s;
  FaultAction burst;
  burst.kind = FaultAction::Kind::kLossBurst;
  burst.at = kMillisecond;
  burst.duration = 2 * kMillisecond;
  burst.link = b.sender_links[0];
  burst.percent = 30;
  burst.label = "burst";
  s.Add(burst);
  FaultAction squeeze;
  squeeze.kind = FaultAction::Kind::kSqueezeSwitchQueue;
  squeeze.at = kMillisecond;
  squeeze.duration = 2 * kMillisecond;
  squeeze.node = b.switch_node;
  squeeze.queue_pdus = 1;
  squeeze.label = "squeeze";
  s.Add(squeeze);
  cr.Arm(s);

  const std::size_t prior_queue = b.topo->switch_at(b.switch_node)
                                      ->port_queue_limit(0);
  std::vector<FlowTraffic> traffic(2);
  for (FlowTraffic& t : traffic) {
    t.messages = 40;
    t.bytes = cfg.host.pdu_size;
    t.warmup = 2;
  }
  const MultiResult mr = b.runner->RunFlows(traffic);
  EXPECT_FALSE(mr.failed);
  EXPECT_EQ(b.topo->link(b.sender_links[0]).drop_percent(), 0u);
  EXPECT_EQ(b.topo->switch_at(b.switch_node)->port_queue_limit(0), prior_queue);
  CampaignReport report = cr.Finish();
  EXPECT_TRUE(report.audits_passed());
}

// --- Quota edge cases --------------------------------------------------------

TEST(Quota, QuotaOfExactlyOneFbufAllowsReuseAndShrinksToFit) {
  AuditWorld w;
  w.fsys.SetDomainQuota(w.src->id(), 4);

  Fbuf* a = nullptr;
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &a)));
  EXPECT_EQ(w.fsys.DomainPagesInUse(w.src->id()), 4u);

  // A second carve would grow past the quota.
  Fbuf* b = nullptr;
  EXPECT_EQ(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &b),
            Status::kQuotaExceeded);

  // Freeing keeps the pages charged (free-listed fbufs still count), but
  // reuse of the domain's own free list is always allowed.
  ASSERT_TRUE(Ok(w.fsys.Free(a, *w.src)));
  EXPECT_EQ(w.fsys.DomainPagesInUse(w.src->id()), 4u);
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &b)));
  EXPECT_EQ(b, a);  // cache hit, no growth

  // A different size cannot reuse the free list, but the carve shrinks the
  // domain's own free-listed fbufs to make quota room.
  ASSERT_TRUE(Ok(w.fsys.Free(b, *w.src)));
  Fbuf* small = nullptr;
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 2 * kPageSize, true, &small)));
  EXPECT_EQ(w.fsys.DomainPagesInUse(w.src->id()), 2u);
  EXPECT_EQ(w.fsys.FreeListSize(w.src->id(), w.path), 0u);
  EXPECT_EQ(w.fsys.Audit().free_list_errors, 0u);
}

TEST(Quota, ShrinkingTheQuotaBelowUsageBlocksGrowthButNotReuse) {
  AuditWorld w;
  w.fsys.SetDomainQuota(w.src->id(), 16);
  Fbuf* a = nullptr;
  Fbuf* b = nullptr;
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &a)));
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &b)));
  EXPECT_EQ(w.fsys.DomainPagesInUse(w.src->id()), 8u);

  // Tighten the quota below what is already outstanding: existing fbufs are
  // unaffected, growth fails, reuse still works.
  w.fsys.SetDomainQuota(w.src->id(), 4);
  Fbuf* c = nullptr;
  EXPECT_EQ(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &c),
            Status::kQuotaExceeded);
  ASSERT_TRUE(Ok(w.fsys.Free(b, *w.src)));
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &c)));
  EXPECT_EQ(c, b);
  EXPECT_EQ(w.fsys.DomainPagesInUse(w.src->id()), 8u);
}

TEST(Quota, TerminationReleasesTheDomainsEntireQuotaCharge) {
  AuditWorld w;
  Fbuf* live = nullptr;
  Fbuf* cached = nullptr;
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 4 * kPageSize, true, &live)));
  ASSERT_TRUE(Ok(w.fsys.Allocate(*w.src, w.path, 2 * kPageSize, true, &cached)));
  ASSERT_TRUE(Ok(w.fsys.Free(cached, *w.src)));
  EXPECT_EQ(w.fsys.DomainPagesInUse(w.src->id()), 6u);

  const DomainId victim = w.src->id();
  w.machine.DestroyDomain(victim);
  EXPECT_EQ(w.fsys.DomainPagesInUse(victim), 0u);
  EXPECT_EQ(w.fsys.PagesOwnedBy(victim), 0u);
  const FbufSystem::AuditCounts audit = w.fsys.Audit();
  EXPECT_EQ(audit.free_list_errors, 0u);
  EXPECT_EQ(audit.dangling_mappings, 0u);
}

// --- Producer backoff under pool exhaustion ----------------------------------

TEST(SwpBackpressure, WindowNeverWedgesAcrossMultipleExhaustedRtos) {
  SwpWorldConfig wc;
  wc.phys_frames = 96;
  SwpWorld w(wc);

  // A hoarder leaves fewer free frames than one 8-page message needs; the
  // producer must park across several RTOs without wedging the window.
  Domain* hoarder = w.machine.CreateDomain("hoarder");
  std::vector<Fbuf*> hoard;
  while (w.machine.pmem().free_frames() > 6) {
    const std::uint64_t take =
        std::min<std::uint64_t>(w.machine.pmem().free_frames() - 6,
                                w.fsys.config().chunk_pages);
    Fbuf* fb = nullptr;
    ASSERT_TRUE(Ok(w.fsys.Allocate(*hoarder, kNoPath, take * kPageSize, false, &fb)));
    hoard.push_back(fb);
  }

  // Release the hoard after three RTOs' worth of failed retries. Anchor on
  // the machine clock: the hoard setup above charged allocation time, and
  // the producer's retries are scheduled relative to that clock.
  w.loop.Schedule(w.machine.clock().Now() + 3 * wc.rto, "release-hoard", [&w, &hoard] {
    for (Fbuf* fb : hoard) {
      w.fsys.Free(fb, *w.machine.domain(fb->originator));
    }
    hoard.clear();
  });

  const int kMessages = 12;
  w.StartProducer(kMessages, 32 * 1024);
  w.loop.Run();

  EXPECT_EQ(w.accepted(), kMessages);
  EXPECT_GE(w.producer_parks(), 2u);
  EXPECT_FALSE(w.producer_stalled());
  EXPECT_FALSE(w.producer_failed());
  EXPECT_EQ(w.sender.unacked(), 0u);  // the window drained, never wedged
  const FbufSystem::AuditCounts audit = w.fsys.Audit();
  EXPECT_EQ(audit.free_list_errors, 0u);
  EXPECT_EQ(audit.dangling_mappings, 0u);
}

TEST(SwpBackpressure, StallWatchdogFailsTheProducerInsteadOfSpinning) {
  SwpWorldConfig wc;
  wc.phys_frames = 64;
  wc.stall_horizon = 20 * kMillisecond;
  SwpWorld w(wc);

  // The hoard is never released: the watchdog must end the run cleanly.
  Domain* hoarder = w.machine.CreateDomain("hoarder");
  std::vector<Fbuf*> hoard;
  while (w.machine.pmem().free_frames() > 6) {
    const std::uint64_t take =
        std::min<std::uint64_t>(w.machine.pmem().free_frames() - 6,
                                w.fsys.config().chunk_pages);
    Fbuf* fb = nullptr;
    ASSERT_TRUE(Ok(w.fsys.Allocate(*hoarder, kNoPath, take * kPageSize, false, &fb)));
    hoard.push_back(fb);
  }

  w.StartProducer(4, 32 * 1024);
  w.loop.Run();  // must go quiescent — no endless retry loop

  EXPECT_TRUE(w.producer_stalled());
  EXPECT_FALSE(w.producer_failed());
  EXPECT_EQ(w.accepted(), 0);
  EXPECT_GE(w.producer_parks(), 1u);
}

}  // namespace
}  // namespace fbufs
